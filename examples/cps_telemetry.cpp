// CPS telemetry authentication — the paper's motivating deployment: mobile
// cyber-physical nodes (here, a vehicle fleet) continuously sign sensor
// readings; a roadside unit verifies them, amortizing cost with the
// per-identity pairing cache and same-signer batch verification.
//
//   $ ./examples/cps_telemetry [num_vehicles] [readings_per_vehicle]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cls/batch.hpp"
#include "cls/mccls.hpp"

namespace {

using namespace mccls;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

crypto::Bytes telemetry_reading(std::uint32_t vehicle, std::uint32_t tick) {
  crypto::ByteWriter w;
  w.put_field("speed_kmh");
  w.put_u32(40 + (vehicle * 7 + tick * 3) % 50);
  w.put_field("heading_deg");
  w.put_u32((vehicle * 31 + tick * 17) % 360);
  w.put_u64(1700000000ULL + tick);  // timestamp
  return w.take();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t vehicles = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint32_t readings = argc > 2 ? std::atoi(argv[2]) : 8;

  crypto::HmacDrbg rng(std::uint64_t{0xF1EE7});
  const cls::Kgc kgc = cls::Kgc::setup(rng);
  const cls::Mccls scheme;

  // Fleet enrolment: one partial key per vehicle identity.
  std::vector<cls::UserKeys> fleet;
  for (std::uint32_t v = 0; v < vehicles; ++v) {
    fleet.push_back(scheme.enroll(kgc, "vehicle-" + std::to_string(v), rng));
  }
  std::printf("Enrolled %u vehicles with the KGC.\n", vehicles);

  // Vehicles sign their readings (pairing-free; cheap on embedded CPUs).
  struct Signed {
    std::uint32_t vehicle;
    crypto::Bytes message;
    cls::McclsSignature signature;
  };
  std::vector<Signed> stream;
  const auto sign_start = Clock::now();
  for (std::uint32_t t = 0; t < readings; ++t) {
    for (std::uint32_t v = 0; v < vehicles; ++v) {
      auto msg = telemetry_reading(v, t);
      auto sig = cls::Mccls::sign_typed(kgc.params(), fleet[v], msg, rng);
      stream.push_back(Signed{v, std::move(msg), sig});
    }
  }
  std::printf("Signed %zu readings in %.1f ms.\n", stream.size(), ms_since(sign_start));

  // Roadside unit: verify one-by-one with a warm pairing cache...
  cls::PairingCache cache;
  const auto verify_start = Clock::now();
  std::size_t accepted = 0;
  for (const auto& s : stream) {
    accepted += cls::Mccls::verify_typed(kgc.params(), fleet[s.vehicle].id,
                                         fleet[s.vehicle].public_key.primary(), s.message,
                                         s.signature, &cache)
                    ? 1
                    : 0;
  }
  std::printf("Individually verified: %zu/%zu accepted in %.1f ms.\n", accepted,
              stream.size(), ms_since(verify_start));

  // ...or batch-verify each vehicle's readings with a single pairing.
  const auto batch_start = Clock::now();
  std::size_t batches_ok = 0;
  for (std::uint32_t v = 0; v < vehicles; ++v) {
    std::vector<cls::BatchItem> batch;
    for (const auto& s : stream) {
      if (s.vehicle == v) batch.push_back({s.message, s.signature});
    }
    batches_ok += cls::batch_verify(kgc.params(), fleet[v].id,
                                    fleet[v].public_key.primary(), batch, rng, &cache)
                      ? 1
                      : 0;
  }
  std::printf("Batch verified: %zu/%u vehicle batches accepted in %.1f ms.\n", batches_ok,
              vehicles, ms_since(batch_start));

  // An injected reading from a ghost vehicle (never enrolled) is rejected:
  // without the KGC-issued partial key its signature cannot verify against
  // the claimed identity.
  crypto::HmacDrbg ghost_rng(std::uint64_t{666});
  cls::UserKeys ghost{.id = "vehicle-0",  // impersonation attempt
                      .partial_key = kgc.params().p.mul(ghost_rng.next_nonzero_fq()),
                      .secret = ghost_rng.next_nonzero_fq(),
                      .public_key = fleet[0].public_key};
  const auto fake_msg = telemetry_reading(0, 999);
  const auto fake_sig = cls::Mccls::sign_typed(kgc.params(), ghost, fake_msg, ghost_rng);
  const bool ghost_accepted =
      cls::Mccls::verify_typed(kgc.params(), "vehicle-0", fleet[0].public_key.primary(),
                               fake_msg, fake_sig, &cache);
  std::printf("Ghost vehicle injection: %s\n",
              ghost_accepted ? "ACCEPT (BUG!)" : "REJECT (as designed)");

  return (accepted == stream.size() && batches_ok == vehicles && !ghost_accepted) ? 0 : 1;
}
