// Distributed KGC — thresholdized trust for infrastructure-less MANETs.
// The master key never exists at any single node: it is Shamir-shared among
// n share-holders, and any t of them jointly issue a partial private key
// that is byte-identical to a centralized KGC's output (paper related work:
// Zhou-Haas threshold key management, applied to the certificateless
// setting).
//
//   $ ./examples/distributed_kgc [n] [t]
#include <cstdio>
#include <cstdlib>

#include "cls/mccls.hpp"
#include "cls/threshold.hpp"
#include "pairing/pairing.hpp"

int main(int argc, char** argv) {
  using namespace mccls;

  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
  const std::size_t t = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  crypto::HmacDrbg rng(std::uint64_t{0xD157});
  const cls::ThresholdKgc kgc = cls::ThresholdKgc::deal(n, t, rng);
  std::printf("Dealt the master key to %zu share-holders, threshold %zu.\n", n, t);

  // Node "rover-1" asks t share-holders for contributions.
  std::vector<cls::PartialKeyShare> contributions;
  for (std::size_t i = 0; i < t; ++i) {
    contributions.push_back(cls::ThresholdKgc::issue_share(kgc.shares()[i], "rover-1"));
    std::printf("  share-holder #%u contributed\n", kgc.shares()[i].index);
  }
  const auto partial = kgc.combine(contributions);
  if (!partial) {
    std::fprintf(stderr, "combination failed\n");
    return 1;
  }

  // The combined key is a genuine partial private key: it satisfies the
  // public pairing relation ê(P, D_ID) == ê(Ppub, Q_ID).
  const bool genuine = pairing::pair(kgc.params().p, *partial) ==
                       pairing::pair(kgc.params().p_pub, cls::hash_id("rover-1"));
  std::printf("Pairing check on combined partial key: %s\n",
              genuine ? "GENUINE" : "INVALID");

  // Fewer than t contributions must not suffice.
  contributions.pop_back();
  std::printf("Combination from t-1 shares: %s\n",
              kgc.combine(contributions) ? "ACCEPTED (BUG!)" : "refused (as designed)");

  // From here on everything is ordinary McCLS.
  const cls::Mccls scheme;
  const cls::UserKeys rover = scheme.keygen(kgc.params(), "rover-1", *partial, rng);
  const auto message = crypto::as_bytes("waypoint reached: (412.7, 88.1)");
  const auto sig = scheme.sign(kgc.params(), rover, {message.data(), message.size()}, rng);
  const bool ok = scheme.verify(kgc.params(), "rover-1", rover.public_key,
                                {message.data(), message.size()}, sig);
  std::printf("Sign/verify with the threshold-issued key: %s\n", ok ? "ACCEPT" : "REJECT");

  return genuine && ok ? 0 : 1;
}
