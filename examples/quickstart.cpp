// Quickstart: the complete McCLS lifecycle in one file.
//
//   $ ./examples/quickstart
//
// Walks through Setup -> Extract-Partial-Private-Key -> Generate-Key-Pair ->
// CL-Sign -> CL-Verify, then shows that tampering is caught.
#include <cstdio>

#include "cls/mccls.hpp"
#include "crypto/encoding.hpp"

int main() {
  using namespace mccls;

  // 1. Setup: the Key Generation Center picks the master key s and
  //    publishes (P, Ppub = s·P). Randomness is a seeded DRBG here so the
  //    output is reproducible; seed from an entropy source in production.
  crypto::HmacDrbg rng(std::uint64_t{2008});
  const cls::Kgc kgc = cls::Kgc::setup(rng);
  std::printf("KGC set up. Ppub = %s...\n",
              crypto::to_hex(kgc.params().p_pub.to_bytes()).substr(0, 24).c_str());

  // 2. Enrolment: the KGC derives the partial private key D_ID = s·H1(ID);
  //    the user picks its own secret x and public key P_ID = x·Ppub.
  //    The KGC never sees x — there is no key escrow.
  const cls::Mccls scheme;
  const cls::UserKeys alice = scheme.enroll(kgc, "alice@cps.example", rng);
  std::printf("Enrolled %s; public key = %s...\n", alice.id.c_str(),
              crypto::to_hex(alice.public_key.to_bytes()).substr(0, 24).c_str());

  // 3. Sign. McCLS needs no pairing here — just two scalar multiplications.
  const std::string message = "actuator command: valve_7 := OPEN";
  const auto signature =
      scheme.sign(kgc.params(), alice, crypto::as_bytes(message), rng);
  std::printf("Signed %zu-byte message; signature is %zu bytes.\n", message.size(),
              signature.size());

  // 4. Verify. One pairing; the identity-constant ê(Ppub, Q_ID) is cached.
  cls::PairingCache cache;
  const bool ok = scheme.verify(kgc.params(), alice.id, alice.public_key,
                                crypto::as_bytes(message), signature, &cache);
  std::printf("Verification: %s\n", ok ? "ACCEPT" : "REJECT");

  // 5. Tampering is caught.
  const std::string forged = "actuator command: valve_7 := SHUT";
  const bool tampered = scheme.verify(kgc.params(), alice.id, alice.public_key,
                                      crypto::as_bytes(forged), signature, &cache);
  std::printf("Tampered message:  %s\n", tampered ? "ACCEPT (BUG!)" : "REJECT");

  return ok && !tampered ? 0 : 1;
}
