// Scheme shootout — Table 1 live: keygen/sign/verify every CLS scheme in
// the registry on the same message and print measured costs side by side,
// demonstrating the registry-driven polymorphic API.
//
//   $ ./examples/scheme_shootout [message]
#include <chrono>
#include <cstdio>
#include <string>

#include "cls/registry.hpp"

int main(int argc, char** argv) {
  using namespace mccls;
  using Clock = std::chrono::steady_clock;

  const std::string message = argc > 1 ? argv[1] : "route request: node-3 -> node-17";

  crypto::HmacDrbg rng(std::uint64_t{0x5407});
  const cls::Kgc kgc = cls::Kgc::setup(rng);

  std::printf("message: \"%s\"\n\n", message.c_str());
  std::printf("%-8s %12s %12s %14s %10s %9s\n", "scheme", "sign(ms)", "verify(ms)",
              "verify$(ms)", "sig(B)", "ok");

  for (const auto name : cls::scheme_names()) {
    const auto scheme = cls::make_scheme(name);
    const cls::UserKeys user = scheme->enroll(kgc, "shootout-node", rng);

    const auto t0 = Clock::now();
    const auto signature = scheme->sign(kgc.params(), user, crypto::as_bytes(message), rng);
    const auto t1 = Clock::now();
    const bool ok = scheme->verify(kgc.params(), "shootout-node", user.public_key,
                                   crypto::as_bytes(message), signature);
    const auto t2 = Clock::now();
    // Verify again with a warm pairing cache (deployment configuration).
    cls::PairingCache cache;
    (void)scheme->verify(kgc.params(), "shootout-node", user.public_key,
                         crypto::as_bytes(message), signature, &cache);
    const auto t3 = Clock::now();
    const bool ok_cached = scheme->verify(kgc.params(), "shootout-node", user.public_key,
                                          crypto::as_bytes(message), signature, &cache);
    const auto t4 = Clock::now();

    const auto ms = [](auto a, auto b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };
    std::printf("%-8s %12.2f %12.2f %14.2f %10zu %9s\n", std::string(name).c_str(),
                ms(t0, t1), ms(t1, t2), ms(t3, t4), signature.size(),
                ok && ok_cached ? "ACCEPT" : "REJECT");
  }

  std::printf("\n(verify$ = with warm per-identity pairing cache; "
              "see bench/bench_table1 for rigorous numbers)\n");
  return 0;
}
