// Secure routing demo — a miniature of the paper's §6 evaluation. Runs the
// same 20-node MANET scenario four ways (AODV / McCLS-secured, each with and
// without a 2-node black-hole attack) and prints a comparison report.
//
//   $ ./examples/secure_routing [max_speed_mps] [duration_s]
#include <cstdio>
#include <cstdlib>

#include "aodv/scenario.hpp"

int main(int argc, char** argv) {
  using namespace mccls::aodv;

  const double speed = argc > 1 ? std::atof(argv[1]) : 10.0;
  const double duration = argc > 2 ? std::atof(argv[2]) : 120.0;

  std::printf("MANET scenario: 20 nodes, 1500x300 m, random waypoint @ %.0f m/s, %g s\n\n",
              speed, duration);
  std::printf("%-24s %8s %8s %10s %10s %8s\n", "configuration", "PDR", "drop", "delay(ms)",
              "RREQratio", "authRej");

  const auto report = [&](const char* label, SecurityMode security, AttackType attack) {
    ScenarioConfig cfg;
    cfg.max_speed = speed;
    cfg.duration = duration;
    cfg.security = security;
    cfg.attack = attack;
    cfg.num_attackers = attack == AttackType::kNone ? 0 : 2;
    cfg.seed = 7;
    const ScenarioResult r = run_scenario_averaged(cfg, 3);
    std::printf("%-24s %8.3f %8.3f %10.2f %10.3f %8llu\n", label, r.pdr(), r.drop_ratio(),
                r.avg_delay() * 1e3, r.rreq_ratio(),
                static_cast<unsigned long long>(r.metrics.auth_rejected));
    return r;
  };

  report("AODV", SecurityMode::kNone, AttackType::kNone);
  report("AODV + black hole", SecurityMode::kNone, AttackType::kBlackHole);
  report("McCLS", SecurityMode::kModeled, AttackType::kNone);
  const ScenarioResult secured =
      report("McCLS + black hole", SecurityMode::kModeled, AttackType::kBlackHole);

  std::printf(
      "\nUnder attack, plain AODV loses the packets the black hole absorbs;\n"
      "the McCLS routing-authentication extension rejects the attacker's\n"
      "forged RREPs (authRej column), so its drop ratio stays at zero.\n");
  return secured.metrics.attacker_dropped == 0 ? 0 : 1;
}
