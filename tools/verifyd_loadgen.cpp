// verifyd_loadgen — multi-producer load generator for the verification
// service (src/svc). Pre-signs a corpus of McCLS requests, then hammers a
// VerifyService from P producer threads through the wire codec
// (submit_bytes), and reports throughput plus the service's own metrics
// block as BENCH-schema JSON.
//
// Signer skew is the interesting knob: the coalescer batches same-signer
// runs, so a Zipf-skewed population (--skew > 0) batches far better than a
// uniform one (--skew 0). A configurable fraction of forged signatures
// (--forge-pct) exercises the batch-failure fallback path under load.
//
//   verifyd_loadgen [--workers N] [--producers P] [--requests R]
//                   [--signers S] [--skew Z] [--queue CAP] [--no-coalesce]
//                   [--forge-pct PCT] [--seed N] [--json PATH]
//                   [--byid-pct PCT] [--fault] [--fault-rate F] [--stall-ms MS]
//                   [--vouchers] [--tcp] [--connect HOST:PORT]
//                   [--connections C] [--pipeline M]
//
// --byid-pct sends that fraction of the corpus as kind-3 verify-by-identity
// frames (no inline public key); the service resolves them through an
// in-memory signer directory. Fault mode (--fault, or any of
// --fault-rate/--stall-ms) degrades that directory behind the full
// ResilientResolver → FaultInjectingResolver pipeline, so the dump shows
// kUnavailable answers, retries and breaker behavior instead of silent
// kUnknownSigner misclassification.
//
// --vouchers pre-issues a KGC-signed voucher chain for every signer and puts
// a kgc::VoucherVerifyingResolver in front of that pipeline — the offline
// deployment shape. Under --fault-rate 1.0 (a total directory outage) every
// by-identity request for a vouched signer must still answer from the cached
// chain: the run is the nightly gate that "unavailable" stays 0.
//
// Fault mode composes with the in-process resolver pipeline only, so it is
// rejected together with --tcp/--connect: over TCP the resolver runs on the
// server side of the socket and a stalled/failed directory call surfaces as
// transport backpressure, which would silently re-label injected directory
// faults as netd artifacts instead of resolver verdicts.
//
// Transport: by default producers call submit_bytes in-process. --tcp boots
// the same service behind a netd NetServer on an ephemeral loopback port and
// drives it through one epoll MultiClient — C concurrent connections, up to
// M pipelined (unanswered) requests each; every mode above still applies,
// the frames are just carried by sockets. --connect HOST:PORT drives an
// already-running frame server instead (the corpus is still generated
// locally, so verdict counts only mean something if the remote shares this
// loadgen's seed — e.g. a --tcp run's twin); with it the service-metrics
// JSON is skipped, since the service lives elsewhere.
//
// Dropped (busy) requests are *not* retried: the loadgen measures offered
// vs. sustained load, so the busy count in the metrics dump is the
// backpressure signal. Over TCP there are no busy verdicts at all — worker
// saturation becomes EPOLLIN-off backpressure (netd's refusal contract), so
// the pause/resume counters printed at the end are that same signal.
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cls/epoch.hpp"
#include "cls/mccls.hpp"
#include "kgc/voucher.hpp"
#include "netd/client.hpp"
#include "netd/front.hpp"
#include "netd/server.hpp"
#include "svc/resolver.hpp"
#include "svc/service.hpp"

namespace {

using namespace mccls;

struct Options {
  unsigned workers = 4;
  unsigned producers = 2;
  std::size_t requests = 512;
  std::size_t signers = 32;
  double skew = 0.0;
  std::size_t queue_capacity = 256;
  bool coalesce = true;
  double forge_pct = 0.0;
  std::uint64_t seed = 0x10AD;
  std::string json_path;
  double byid_pct = 0.0;       ///< fraction sent as verify-by-identity frames
  bool fault = false;          ///< degrade the directory behind the pipeline
  double fault_rate = -1.0;    ///< <0 = unset (0.1 under bare --fault)
  std::uint32_t stall_ms = 0;  ///< injected stall per directory call
  bool vouchers = false;       ///< offline voucher cache in front of the pipeline
  bool tcp = false;            ///< self-host a NetServer and drive loopback
  std::string connect_host;    ///< drive an external frame server instead
  std::uint16_t connect_port = 0;
  std::size_t connections = 64;  ///< concurrent TCP connections
  std::size_t pipeline = 16;     ///< max unanswered requests per connection

  [[nodiscard]] bool tcp_mode() const { return tcp || !connect_host.empty(); }

  [[nodiscard]] bool fault_mode() const {
    return fault || fault_rate >= 0.0 || stall_ms > 0;
  }
  [[nodiscard]] double effective_fault_rate() const {
    return fault_rate >= 0.0 ? fault_rate : (fault ? 0.1 : 0.0);
  }
};

int usage() {
  std::fprintf(stderr,
               "usage: verifyd_loadgen [--workers N] [--producers P] [--requests R]\n"
               "                       [--signers S] [--skew Z] [--queue CAP]\n"
               "                       [--no-coalesce] [--forge-pct PCT] [--seed N]\n"
               "                       [--json PATH] [--byid-pct PCT] [--fault]\n"
               "                       [--fault-rate F] [--stall-ms MS] [--vouchers]\n"
               "                       [--tcp] [--connect HOST:PORT]\n"
               "                       [--connections C] [--pipeline M]\n"
               "\n"
               "  --vouchers  pre-issue a signed voucher chain per signer and resolve\n"
               "              by-identity requests through the offline voucher cache\n"
               "              (with --fault-rate 1.0: zero unavailable for vouched ids)\n"
               "  fault injection (--fault/--fault-rate/--stall-ms) degrades the\n"
               "  in-process resolver pipeline and cannot be combined with --tcp or\n"
               "  --connect: over TCP the injected directory faults would surface as\n"
               "  transport backpressure, not resolver verdicts\n");
  return 2;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--no-coalesce") {
      opt.coalesce = false;
      continue;
    }
    if (flag == "--fault") {
      opt.fault = true;
      continue;
    }
    if (flag == "--tcp") {
      opt.tcp = true;
      continue;
    }
    if (flag == "--vouchers") {
      opt.vouchers = true;
      continue;
    }
    if (i + 1 >= argc) return false;
    const char* value = argv[++i];
    if (flag == "--workers") {
      opt.workers = static_cast<unsigned>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--producers") {
      opt.producers = static_cast<unsigned>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--requests") {
      opt.requests = std::strtoull(value, nullptr, 10);
    } else if (flag == "--signers") {
      opt.signers = std::strtoull(value, nullptr, 10);
    } else if (flag == "--skew") {
      opt.skew = std::strtod(value, nullptr);
    } else if (flag == "--queue") {
      opt.queue_capacity = std::strtoull(value, nullptr, 10);
    } else if (flag == "--forge-pct") {
      opt.forge_pct = std::strtod(value, nullptr);
    } else if (flag == "--seed") {
      opt.seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--json") {
      opt.json_path = value;
    } else if (flag == "--byid-pct") {
      opt.byid_pct = std::strtod(value, nullptr);
    } else if (flag == "--fault-rate") {
      opt.fault_rate = std::strtod(value, nullptr);
    } else if (flag == "--stall-ms") {
      opt.stall_ms = static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--connect") {
      const std::string hp = value;
      const auto colon = hp.rfind(':');
      if (colon == std::string::npos || colon == 0 || colon + 1 == hp.size()) return false;
      opt.connect_host = hp.substr(0, colon);
      opt.connect_port =
          static_cast<std::uint16_t>(std::strtoul(hp.c_str() + colon + 1, nullptr, 10));
      if (opt.connect_port == 0) return false;
    } else if (flag == "--connections") {
      opt.connections = std::strtoull(value, nullptr, 10);
    } else if (flag == "--pipeline") {
      opt.pipeline = std::strtoull(value, nullptr, 10);
    } else {
      return false;
    }
  }
  if (opt.fault_rate > 1.0) return false;
  if (opt.tcp_mode() && (opt.connections == 0 || opt.pipeline == 0)) return false;
  // Fault injection lives in the in-process resolver pipeline; over TCP the
  // resolver sits behind the socket and injected faults would be re-labelled
  // as transport backpressure (see the file comment).
  if (opt.tcp_mode() && opt.fault_mode()) return false;
  return opt.workers > 0 && opt.producers > 0 && opt.requests > 0 && opt.signers > 0;
}

/// Zipf(s) sampler over [0, n): inverse-CDF lookup on a precomputed table.
/// s == 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    double total = 0;
    for (std::size_t k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  std::size_t sample(crypto::HmacDrbg& rng) const {
    std::array<std::uint8_t, 8> raw;
    rng.generate(raw);
    std::uint64_t bits = 0;
    for (const std::uint8_t b : raw) bits = bits << 8 | b;
    const double u = static_cast<double>(bits >> 11) * 0x1.0p-53;  // [0, 1)
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

/// Immutable id→key directory for the by-identity mix. Read-only after
/// setup, so concurrent resolve() needs no locking.
struct MapResolver final : svc::PkResolver {
  std::unordered_map<std::string, cls::PublicKey> keys;

  svc::ResolveResult resolve(std::string_view id) override {
    const auto it = keys.find(std::string(id));
    if (it == keys.end()) return svc::ResolveResult::not_vouched();
    return svc::ResolveResult::ok(it->second);
  }
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage();

  // ---- corpus: KGC, signers, pre-signed wire frames (all single-threaded,
  // off the clock; producers only replay bytes).
  crypto::HmacDrbg rng(opt.seed);
  const cls::Kgc kgc = cls::Kgc::setup(rng);
  const cls::Mccls scheme;
  std::vector<cls::UserKeys> signers;
  std::vector<std::string> ids;
  for (std::size_t s = 0; s < opt.signers; ++s) {
    ids.push_back("node-" + std::to_string(s));
    signers.push_back(scheme.enroll(kgc, ids.back(), rng));
  }

  const ZipfSampler sampler(opt.signers, opt.skew);
  std::vector<crypto::Bytes> frames;
  std::size_t forged = 0;
  std::size_t by_identity = 0;
  frames.reserve(opt.requests);
  for (std::size_t i = 0; i < opt.requests; ++i) {
    const cls::UserKeys& signer = signers[sampler.sample(rng)];
    crypto::ByteWriter msg;
    msg.put_u64(i);
    msg.put_field("loadgen payload");
    svc::VerifyRequest request{.request_id = i + 1,
                               .scheme = "McCLS",
                               .id = signer.id,
                               .public_key = signer.public_key,
                               .message = msg.take(),
                               .signature = {}};
    request.signature = scheme.sign(kgc.params(), signer, request.message, rng);
    if (opt.forge_pct > 0 &&
        static_cast<double>(i % 100) < opt.forge_pct) {  // deterministic mix
      request.signature[0] ^= 0x01;
      ++forged;
    }
    if (opt.byid_pct > 0 &&
        static_cast<double>((i + 50) % 100) < opt.byid_pct) {  // deterministic mix
      request.by_identity = true;
      request.public_key = {};
      ++by_identity;
    }
    frames.push_back(svc::encode_request(request));
  }

  // ---- resolver: in-memory signer directory, optionally degraded behind
  // the ResilientResolver → FaultInjectingResolver pipeline.
  MapResolver map_resolver;
  for (const cls::UserKeys& signer : signers) {
    map_resolver.keys.emplace(signer.id, signer.public_key);
  }
  svc::FaultInjectingResolver faulty(
      &map_resolver, svc::FaultConfig{.fail_rate = opt.effective_fault_rate(),
                                      .stall_ms = opt.stall_ms,
                                      .seed = opt.seed ^ 0xFA17ED5EEDULL});
  svc::ResilientResolver resilient(&faulty);
  svc::PkResolver* resolver = nullptr;
  if (opt.byid_pct > 0) {
    resolver = opt.fault_mode() ? static_cast<svc::PkResolver*>(&resilient)
                                : static_cast<svc::PkResolver*>(&map_resolver);
  }

  // ---- vouchers: pre-issue a signed chain per signer and put the offline
  // voucher cache in front of whatever pipeline --fault selected. Subjects
  // are scoped to epoch 0 but the cache also indexes the base identity the
  // frames carry, so every by-identity request answers from its voucher —
  // even at --fault-rate 1.0, when the inner pipeline never does.
  kgc::TrustAnchors anchors;
  std::optional<kgc::VoucherVerifyingResolver> vouching;
  if (opt.vouchers && resolver != nullptr) {
    const kgc::VoucherIssuer issuer(kgc.master_key_for_tests(), "kgc");
    anchors.add("kgc", issuer.public_key());
    kgc::VoucherResolverConfig vconfig;
    vconfig.capacity = 2 * opt.signers + 16;  // two entries per vouched signer
    vconfig.now = [] { return std::uint64_t{1'000}; };  // logical clock
    vconfig.current_epoch = [] { return cls::Epoch{0}; };
    vouching.emplace(resolver, &anchors, std::move(vconfig));
    std::uint64_t serial = 0;
    for (const cls::UserKeys& signer : signers) {
      const kgc::Voucher voucher = issuer.issue(
          cls::scoped_identity(signer.id, 0), signer.public_key.to_bytes(),
          /*epoch=*/0, /*not_before=*/0, /*not_after=*/1'000'000, ++serial);
      if (vouching->ingest({voucher}) != kgc::ChainVerdict::kOk) {
        std::fprintf(stderr, "error: voucher ingest failed for %s\n", signer.id.c_str());
        return 1;
      }
    }
    resolver = &*vouching;
  }

  // ---- service (in-process and --tcp self-host; absent under --connect,
  // where the service lives in another process)
  std::optional<svc::VerifyService> service;
  if (opt.connect_host.empty()) {
    service.emplace(kgc.params(),
                    svc::ServiceConfig{.workers = opt.workers,
                                       .queue_capacity = opt.queue_capacity,
                                       .coalesce = opt.coalesce,
                                       .seed = opt.seed ^ 0xD5ULL,
                                       .resolver = resolver});
    service->cache().warm(kgc.params(), ids);
    if (vouching) vouching->set_metrics(&service->metrics());
  }

  double seconds = 0.0;
  std::uint64_t wire_status[6] = {};  ///< TCP-mode verdicts, by wire status
  std::size_t peak_connected = 0;
  netd::NetdMetrics::Snapshot net{};

  if (opt.tcp_mode()) {
    // ---- TCP: NetServer (self-hosted on an ephemeral loopback port unless
    // --connect) driven by one epoll client, C connections x M pipelined.
    std::optional<netd::VerifydFrontEnd> front;
    std::optional<netd::NetServer> server;
    std::string host = opt.connect_host.empty() ? "127.0.0.1" : opt.connect_host;
    std::uint16_t port = opt.connect_port;
    if (service) {
      front.emplace(*service);
      server.emplace(netd::NetdConfig{.max_connections = opt.connections + 64,
                                      .idle_timeout_ms = 60000,
                                      .tick_ms = 5},
                     &*front);
      if (!server->start()) {
        std::fprintf(stderr, "error: %s\n", server->error().c_str());
        return 1;
      }
      port = server->port();
    }
    netd::MultiClient client(
        netd::MultiClient::Config{.host = host,
                                  .port = port,
                                  .connections = opt.connections,
                                  .pipeline = opt.pipeline,
                                  .run_timeout_ms = 600000});
    const auto start = std::chrono::steady_clock::now();
    const bool ok = client.run(
        // Frame i goes to connection i % C as its (i / C)-th request.
        [&](std::size_t conn, std::size_t seq) -> std::optional<crypto::Bytes> {
          const std::size_t index = seq * opt.connections + conn;
          if (index >= frames.size()) return std::nullopt;
          return frames[index];
        },
        [&](std::size_t, crypto::Bytes payload) {
          if (const auto response = svc::decode_response(payload)) {
            ++wire_status[static_cast<std::uint8_t>(response->status)];
          }
        });
    seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                  .count();
    peak_connected = client.peak_connected();
    if (!ok) {
      std::fprintf(stderr, "error: %s\n", client.error().c_str());
      return 1;
    }
    if (client.responses() < frames.size()) {
      std::fprintf(stderr, "error: %llu of %zu requests unanswered\n",
                   static_cast<unsigned long long>(frames.size() - client.responses()),
                   frames.size());
      return 1;
    }
    if (server) {
      server->stop();
      net = server->metrics().snapshot();
    }
  } else {
    // ---- in-process: P producer threads replay frames through submit_bytes.
    std::atomic<std::size_t> completed{0};
    const auto completion = [&completed](const svc::VerifyResponse&) {
      completed.fetch_add(1, std::memory_order_relaxed);
    };
    const auto start = std::chrono::steady_clock::now();
    {
      std::vector<std::jthread> producers;
      for (unsigned p = 0; p < opt.producers; ++p) {
        producers.emplace_back([&, p] {
          for (std::size_t i = p; i < frames.size(); i += opt.producers) {
            (void)service->submit_bytes(frames[i], completion);
          }
        });
      }
    }
    // Every submission answers exactly once (verified/rejected/busy/malformed).
    while (completed.load(std::memory_order_relaxed) < opt.requests) {
      std::this_thread::yield();
    }
    seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                  .count();
  }

  if (opt.tcp_mode()) {
    std::printf("offered %zu requests (%zu forged, %zu by-identity) over %zu TCP "
                "connections (pipeline %zu) to %s in %.3f s\n",
                opt.requests, forged, by_identity, opt.connections, opt.pipeline,
                service ? "a loopback netd server" : "a remote server", seconds);
    const double processed = static_cast<double>(
        wire_status[0] + wire_status[1]);  // kVerified + kRejected
    std::printf("  sustained:  %.0f verifications/s (%.1f us/signature)\n",
                processed / seconds, processed > 0 ? seconds * 1e6 / processed : 0.0);
    std::printf("  verdicts:   %llu verified, %llu rejected, %llu busy, %llu malformed, "
                "%llu unknown-signer, %llu unavailable\n",
                static_cast<unsigned long long>(wire_status[0]),
                static_cast<unsigned long long>(wire_status[1]),
                static_cast<unsigned long long>(wire_status[2]),
                static_cast<unsigned long long>(wire_status[3]),
                static_cast<unsigned long long>(wire_status[4]),
                static_cast<unsigned long long>(wire_status[5]));
    std::printf("  transport:  peak %zu concurrent connections, %llu backpressure "
                "pauses / %llu resumes, %llu dispatch retries\n",
                peak_connected, static_cast<unsigned long long>(net.backpressure_pauses),
                static_cast<unsigned long long>(net.backpressure_resumes),
                static_cast<unsigned long long>(net.dispatch_retries));
  }
  if (!service) return 0;  // --connect: the remote owns its metrics

  const auto snapshot = service->metrics().snapshot();
  if (!opt.tcp_mode()) {
    const double processed = static_cast<double>(snapshot.verified + snapshot.rejected);
    std::printf("offered %zu requests (%zu forged, %zu by-identity) from %u producers "
                "to %u workers in %.3f s\n",
                opt.requests, forged, by_identity, opt.producers, opt.workers, seconds);
    std::printf("  sustained:  %.0f verifications/s (%.1f us/signature)\n",
                processed / seconds, processed > 0 ? seconds * 1e6 / processed : 0.0);
    std::printf("  verdicts:   %llu verified, %llu rejected, %llu busy, %llu malformed, "
                "%llu unknown-signer, %llu unavailable\n",
                static_cast<unsigned long long>(snapshot.verified),
                static_cast<unsigned long long>(snapshot.rejected),
                static_cast<unsigned long long>(snapshot.busy),
                static_cast<unsigned long long>(snapshot.malformed),
                static_cast<unsigned long long>(snapshot.unknown_signer),
                static_cast<unsigned long long>(snapshot.unavailable));
  }
  if (vouching) {
    std::printf("  vouchers:   %zu cached, %llu hits, %llu expired, %llu bad-sig\n",
                vouching->cached(),
                static_cast<unsigned long long>(snapshot.voucher_hits),
                static_cast<unsigned long long>(snapshot.voucher_expired),
                static_cast<unsigned long long>(snapshot.voucher_bad_sig));
  }
  if (opt.fault_mode()) {
    std::printf("  faults:     rate %.2f stall %u ms -> %llu injected, %llu retries, "
                "%llu fast-fails, %llu trips (breaker %llu)\n",
                opt.effective_fault_rate(), opt.stall_ms,
                static_cast<unsigned long long>(faulty.injected_failures()),
                static_cast<unsigned long long>(snapshot.resolve_retries),
                static_cast<unsigned long long>(snapshot.breaker_fast_fails),
                static_cast<unsigned long long>(snapshot.breaker_trips),
                static_cast<unsigned long long>(snapshot.breaker_state));
  }
  std::printf("  coalescing: %llu batches (mean size %.2f), %llu singles, %llu fallbacks\n",
              static_cast<unsigned long long>(snapshot.batches),
              snapshot.mean_batch_size(),
              static_cast<unsigned long long>(snapshot.single_verifies),
              static_cast<unsigned long long>(snapshot.batch_fallbacks));

  const std::string json = service->metrics().to_json("verifyd_loadgen");
  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path, std::ios::trunc);
    out << json;
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", opt.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", opt.json_path.c_str());
  } else {
    std::fputs(json.c_str(), stdout);
  }
  return 0;
}
