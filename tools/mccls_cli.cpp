// mccls_cli — file-based command-line front end for the McCLS library.
//
//   mccls_cli setup   --dir DIR [--seed N]
//       Run KGC Setup; writes DIR/kgc.master (secret) and DIR/kgc.pub.
//   mccls_cli enroll  --dir DIR --id ID [--seed N]
//       Extract a partial private key for ID and generate the user key pair;
//       writes DIR/ID.key (secret) and DIR/ID.pub (public).
//   mccls_cli sign    --dir DIR --id ID --text MESSAGE
//       Sign MESSAGE with ID's key; prints the signature as hex.
//   mccls_cli verify  --dir DIR --id ID --text MESSAGE --sig HEX
//       Verify; prints ACCEPT or REJECT and exits 0/1 accordingly.
//   mccls_cli batch-verify --dir DIR --id ID --msgdir MSGDIR [--seed N]
//                          [--resolve kgcd] [--retries N] [--fault-rate F]
//       Verify every MSGDIR/NAME.sig (hex) against MSGDIR/NAME.msg (raw
//       bytes) as one same-signer batch (single amortized pairing); prints
//       ACCEPT or REJECT and exits 0/1. With --resolve kgcd the signer's
//       key comes from the daemon's directory (DIR/kgcd) through the
//       resilient resolver pipeline instead of DIR/ID.pub; a transient
//       directory failure is retried --retries times (default 3) and then
//       exits 3 — availability is never conflated with a verdict. With
//       --anchors FILE --voucher FILE the key comes from an offline voucher
//       chain instead: FILE lines are "NAME HEX" trust anchors, the chain
//       (hex, as written by `kgc vouch --out`) is verified against them
//       ([--now T] [--epoch N] pin the clock/epoch policy; defaults: wall
//       clock, no epoch gate) — no daemon, no network, no key files.
//   mccls_cli inspect --sig HEX
//       Pretty-print the components of a serialized McCLS signature.
//   mccls_cli kgc enroll   --dir DIR --id ID [--epoch N] [--seed N]
//       Enroll ID with the persistent KGC daemon (state under DIR/kgcd):
//       generates the user key pair locally, submits the public key over the
//       kgc wire protocol, and writes DIR/ID.key holding the epoch-scoped
//       identity ("ID@epoch-N") the signer must sign under.
//   mccls_cli kgc lookup   --dir DIR --id ID [--epoch N]
//       Resolve ID's public key from the daemon's directory.
//   mccls_cli kgc revoke   --dir DIR --id ID [--epoch N]
//       Revoke ID (resolution stops now; issuance stops at the next epoch).
//   mccls_cli kgc vouch    --dir DIR --id ID [--epoch N] [--out FILE]
//       Fetch the daemon's signed voucher chain for ID (kVouch wire op),
//       print the binding it attests, and emit the encoded chain as hex
//       (to FILE with --out). Anyone holding the issuer's vouching key —
//       byte-identical to DIR/kgc.pub — can then verify the binding fully
//       offline: see batch-verify --anchors.
//   mccls_cli kgc snapshot --dir DIR [--epoch N]
//       Compact the daemon's state: snapshot + WAL truncation.
//   mccls_cli serve --dir DIR [--port P] [--kgc-port P] [--workers W]
//                   [--epoch N] [--seed N]
//       Boot the daemon from DIR and serve both wire protocols over TCP
//       (src/netd): a verifyd endpoint answering svc v2 verify requests
//       (by-identity requests resolve through the daemon's directory) and a
//       kgcd endpoint answering enroll/lookup/revoke/snapshot. Port 0 (the
//       default) picks an ephemeral port; both are printed as
//       "LABEL listening on 127.0.0.1:PORT". Runs until SIGINT/SIGTERM.
//
// The kgc subcommands boot a Kgcd instance per invocation: state persists
// across invocations through the WAL+snapshot store in DIR/kgcd, so every
// run exercises the crash-recovery replay path. With --connect HOST:PORT,
// kgc enroll|lookup|revoke speak the same wire protocol to a remote server
// (for example `mccls_cli serve` in another process) instead of booting a
// local daemon — exit codes are preserved, and a connection-level failure
// exits 3 (transient), never conflated with a refusal (1). batch-verify
// accepts --connect the same way: the signer's key is then resolved over
// the kgc wire rather than from DIR/ID.pub or a co-located daemon.
//
// Key files are hex-encoded, length-delimited records (see read/write_file).
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cls/batch.hpp"
#include "cls/keyfile.hpp"
#include "cls/mccls.hpp"
#include "crypto/hash.hpp"
#include "kgc/kgcd.hpp"
#include "kgc/voucher.hpp"
#include "netd/client.hpp"
#include "netd/front.hpp"
#include "netd/server.hpp"
#include "svc/resolver.hpp"
#include "svc/service.hpp"

namespace {

using namespace mccls;

// ------------------------------------------------------------- file utils

bool write_file(const std::string& path, const crypto::Bytes& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << crypto::to_hex(content) << "\n";
  return static_cast<bool>(out);
}

std::optional<crypto::Bytes> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string hex;
  in >> hex;
  return crypto::from_hex(hex);
}

// ------------------------------------------------------------ arg parsing

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  [[nodiscard]] const std::string* get(const std::string& key) const {
    const auto it = options.find(key);
    return it == options.end() ? nullptr : &it->second;
  }
};

std::optional<Args> parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args args;
  args.command = argv[1];
  int first_option = 2;
  // Two-word commands: "kgc <subcommand>".
  if (args.command == "kgc") {
    if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) return std::nullopt;
    args.command += ' ';
    args.command += argv[2];
    first_option = 3;
  }
  for (int i = first_option; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) return std::nullopt;
    args.options[argv[i] + 2] = argv[i + 1];
  }
  return args;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  mccls_cli setup   --dir DIR [--seed N]\n"
               "  mccls_cli enroll  --dir DIR --id ID [--seed N]\n"
               "  mccls_cli sign    --dir DIR --id ID --text MESSAGE\n"
               "  mccls_cli verify  --dir DIR --id ID --text MESSAGE --sig HEX\n"
               "  mccls_cli batch-verify --dir DIR --id ID --msgdir MSGDIR [--seed N]\n"
               "                         [--resolve kgcd] [--retries N] [--fault-rate F]\n"
               "                         [--connect HOST:PORT]\n"
               "                         [--anchors FILE --voucher FILE [--now T] [--epoch N]]\n"
               "  mccls_cli inspect --sig HEX\n"
               "  mccls_cli kgc enroll   --dir DIR --id ID [--epoch N] [--seed N]\n"
               "  mccls_cli kgc lookup   --dir DIR --id ID [--epoch N]\n"
               "  mccls_cli kgc revoke   --dir DIR --id ID [--epoch N]\n"
               "  mccls_cli kgc vouch    --dir DIR --id ID [--epoch N] [--out FILE]\n"
               "      (kgc enroll/lookup/revoke/vouch also accept --connect HOST:PORT)\n"
               "  mccls_cli kgc snapshot --dir DIR [--epoch N]\n"
               "  mccls_cli serve --dir DIR [--port P] [--kgc-port P] [--workers W]\n"
               "                  [--epoch N] [--seed N]\n");
  return 2;
}

std::uint64_t seed_from(const Args& args) {
  if (const auto* s = args.get("seed")) return std::strtoull(s->c_str(), nullptr, 10);
  // Fall back to a time-derived seed for interactive use.
  return static_cast<std::uint64_t>(std::time(nullptr));
}

// Key (de)coding lives in the library: cls/keyfile.hpp.

std::optional<cls::SystemParams> load_params(const std::string& dir) {
  const auto pub = read_file(dir + "/kgc.pub");
  if (!pub || pub->size() != ec::G1::kEncodedSize) return std::nullopt;
  const auto p_pub = ec::G1::from_bytes(*pub);
  if (!p_pub) return std::nullopt;
  return cls::SystemParams{.p = ec::G1::generator(), .p_pub = *p_pub};
}

// --------------------------------------------------------------- commands

int cmd_setup(const Args& args) {
  const auto* dir = args.get("dir");
  if (dir == nullptr) return usage();
  std::error_code ec;
  std::filesystem::create_directories(*dir, ec);
  crypto::HmacDrbg rng(seed_from(args));
  const cls::Kgc kgc = cls::Kgc::setup(rng);
  const auto p_pub = kgc.params().p_pub.to_bytes();
  if (!write_file(*dir + "/kgc.master", cls::encode_master_key(kgc.master_key_for_tests())) ||
      !write_file(*dir + "/kgc.pub", crypto::Bytes(p_pub.begin(), p_pub.end()))) {
    std::fprintf(stderr, "error: cannot write key files under %s\n", dir->c_str());
    return 1;
  }
  std::printf("KGC initialized in %s\nPpub = %s\n", dir->c_str(),
              crypto::to_hex(p_pub).c_str());
  return 0;
}

int cmd_enroll(const Args& args) {
  const auto* dir = args.get("dir");
  const auto* id = args.get("id");
  if (dir == nullptr || id == nullptr) return usage();
  const auto master_bytes = read_file(*dir + "/kgc.master");
  if (!master_bytes) {
    std::fprintf(stderr, "error: no KGC in %s (run setup first)\n", dir->c_str());
    return 1;
  }
  const auto master = cls::decode_master_key(*master_bytes);
  if (!master) {
    std::fprintf(stderr, "error: corrupt kgc.master\n");
    return 1;
  }
  const cls::Kgc kgc = cls::Kgc::from_master_key(*master);
  crypto::HmacDrbg rng(seed_from(args) ^ 0xE4011ULL);
  const cls::Mccls scheme;
  const cls::UserKeys user = scheme.enroll(kgc, *id, rng);
  if (!write_file(*dir + "/" + *id + ".key", cls::encode_user_keys(user)) ||
      !write_file(*dir + "/" + *id + ".pub", user.public_key.to_bytes())) {
    std::fprintf(stderr, "error: cannot write user key files\n");
    return 1;
  }
  std::printf("enrolled %s\npublic key = %s\n", id->c_str(),
              crypto::to_hex(user.public_key.to_bytes()).c_str());
  return 0;
}

int cmd_sign(const Args& args) {
  const auto* dir = args.get("dir");
  const auto* id = args.get("id");
  const auto* text = args.get("text");
  if (dir == nullptr || id == nullptr || text == nullptr) return usage();
  const auto params = load_params(*dir);
  const auto key_bytes = read_file(*dir + "/" + *id + ".key");
  if (!params || !key_bytes) {
    std::fprintf(stderr, "error: missing kgc.pub or %s.key in %s\n", id->c_str(),
                 dir->c_str());
    return 1;
  }
  const auto user = cls::decode_user_keys(*key_bytes);
  if (!user) {
    std::fprintf(stderr, "error: corrupt key file\n");
    return 1;
  }
  crypto::HmacDrbg rng(seed_from(args) ^ 0x516EULL);
  const cls::Mccls scheme;
  const auto sig = scheme.sign(*params, *user, crypto::as_bytes(*text), rng);
  std::printf("%s\n", crypto::to_hex(sig).c_str());
  return 0;
}

int cmd_verify(const Args& args) {
  const auto* dir = args.get("dir");
  const auto* id = args.get("id");
  const auto* text = args.get("text");
  const auto* sig_hex = args.get("sig");
  if (dir == nullptr || id == nullptr || text == nullptr || sig_hex == nullptr) {
    return usage();
  }
  const auto params = load_params(*dir);
  const auto pk_bytes = read_file(*dir + "/" + *id + ".pub");
  const auto sig = crypto::from_hex(*sig_hex);
  if (!params || !pk_bytes || !sig) {
    std::fprintf(stderr, "error: missing/invalid inputs\n");
    return 1;
  }
  const auto pk = cls::PublicKey::from_bytes(*pk_bytes);
  if (!pk) {
    std::fprintf(stderr, "error: corrupt public key file\n");
    return 1;
  }
  const cls::Mccls scheme;
  const bool ok = scheme.verify(*params, *id, *pk, crypto::as_bytes(*text), *sig);
  std::printf("%s\n", ok ? "ACCEPT" : "REJECT");
  return ok ? 0 : 1;
}

std::unique_ptr<kgc::Kgcd> boot_kgcd(const Args& args);  // kgc subcommands, below
std::optional<std::pair<std::string, std::uint16_t>> parse_hostport(
    const std::string& value);

// batch-verify: every NAME.sig in --msgdir pairs with NAME.msg; all are
// expected to come from one signer (--id), so the whole directory verifies
// with a single amortized pairing via cls::batch_verify. A mixed-signer or
// partly-forged directory simply prints REJECT — same contract as verify.
int cmd_batch_verify(const Args& args) {
  const auto* dir = args.get("dir");
  const auto* id = args.get("id");
  const auto* msgdir = args.get("msgdir");
  if (dir == nullptr || id == nullptr || msgdir == nullptr) return usage();
  const auto params = load_params(*dir);
  if (!params) {
    std::fprintf(stderr, "error: missing kgc.pub in %s\n", dir->c_str());
    return 1;
  }

  std::optional<cls::PublicKey> pk;
  if (const auto* anchors_path = args.get("anchors")) {
    // --anchors FILE --voucher FILE: fully offline key resolution. The
    // signer's key comes out of a KGC-signed voucher chain checked against
    // a local trust-anchor set — no daemon boot, no network, no .pub file.
    // A rejected chain is a refusal (exit 1): unlike an unreachable
    // directory there is nothing transient about a binding that does not
    // verify.
    const auto* chain_path = args.get("voucher");
    if (chain_path == nullptr) return usage();
    std::ifstream anchors_in(*anchors_path);
    if (!anchors_in) {
      std::fprintf(stderr, "error: cannot read anchors file %s\n",
                   anchors_path->c_str());
      return 1;
    }
    kgc::TrustAnchors anchors;
    std::string anchor_name, anchor_hex;
    while (anchors_in >> anchor_name >> anchor_hex) {
      const auto key_bytes = crypto::from_hex(anchor_hex);
      std::optional<ec::G1> key;
      if (key_bytes) key = ec::G1::from_bytes(*key_bytes);
      if (!key || !anchors.add(anchor_name, *key)) {
        std::fprintf(stderr, "error: bad trust anchor \"%s\" in %s\n",
                     anchor_name.c_str(), anchors_path->c_str());
        return 1;
      }
    }
    if (anchors.size() == 0) {
      std::fprintf(stderr, "error: %s holds no trust anchors\n",
                   anchors_path->c_str());
      return 1;
    }
    const auto chain_bytes = read_file(*chain_path);
    std::optional<kgc::VoucherChain> chain;
    if (chain_bytes) chain = kgc::decode_voucher_chain(*chain_bytes);
    if (!chain) {
      std::fprintf(stderr, "error: %s is not an encoded voucher chain\n",
                   chain_path->c_str());
      return 1;
    }
    std::uint64_t now = static_cast<std::uint64_t>(std::time(nullptr));
    if (const auto* t = args.get("now")) now = std::strtoull(t->c_str(), nullptr, 10);
    std::optional<cls::Epoch> current_epoch;
    if (const auto* e = args.get("epoch")) {
      current_epoch = std::strtoull(e->c_str(), nullptr, 10);
    }
    const kgc::ChainCheck check =
        kgc::verify_voucher_chain(*chain, anchors, now, current_epoch);
    if (check.verdict != kgc::ChainVerdict::kOk) {
      std::fprintf(stderr, "error: voucher chain rejected: %s\n",
                   kgc::chain_verdict_name(check.verdict));
      return 1;
    }
    // --id may be the scoped subject itself or its base identity.
    if (check.subject != *id) {
      const auto scoped = cls::parse_scoped_identity(check.subject);
      if (!scoped || scoped->first != *id) {
        std::fprintf(stderr, "error: voucher vouches for %s, not %s\n",
                     check.subject.c_str(), id->c_str());
        return 1;
      }
    }
    pk = check.key;
  } else if (const auto* connect = args.get("connect")) {
    // --connect HOST:PORT: resolve the signer's key over the kgc wire from a
    // remote server (e.g. `mccls_cli serve`). Same availability contract as
    // --resolve kgcd: a connection-level failure or kStoreError is transient
    // and retried, then exits 3; a refusal (unknown/revoked) exits 1.
    //
    // The wire lookup takes the raw identity and answers with the issuance
    // epoch, so a scoped identity ("id@epoch-N") resolves its base id and
    // then requires the directory's current key to have been issued at
    // exactly epoch N — a re-issuance invalidates old scoped signatures, as
    // the local resolver's freshness gate does. (The one divergence from
    // --resolve kgcd: the remote check cannot see the directory's current
    // epoch, so it does not refuse a never-re-issued key as stale.)
    const auto hostport = parse_hostport(*connect);
    if (!hostport) return usage();
    std::string lookup_id = *id;
    std::optional<cls::Epoch> bound_epoch;
    if (const auto scoped = cls::parse_scoped_identity(*id)) {
      lookup_id = scoped->first;
      bound_epoch = scoped->second;
    }
    unsigned retries = 3;
    if (const auto* r = args.get("retries")) {
      retries = static_cast<unsigned>(std::strtoul(r->c_str(), nullptr, 10));
    }
    for (unsigned attempt = 0; attempt <= retries; ++attempt) {
      netd::BlockingClient client;
      std::optional<kgc::KgcResponse> response;
      if (client.connect(hostport->first, hostport->second)) {
        if (const auto reply = client.call(kgc::encode_kgc_request(
                kgc::KgcRequest{.op = kgc::KgcOp::kLookup, .request_id = 1,
                                .id = lookup_id}))) {
          response = kgc::decode_kgc_response(*reply);
        }
      }
      if (response && response->status == kgc::KgcStatus::kOk) {
        if (bound_epoch && response->epoch != *bound_epoch) {
          std::fprintf(stderr, "error: directory does not vouch for %s "
                       "(current key was issued at epoch %llu)\n", id->c_str(),
                       static_cast<unsigned long long>(response->epoch));
          return 1;
        }
        pk = cls::PublicKey::from_bytes(response->payload);
        if (!pk) {
          std::fprintf(stderr, "error: server returned a corrupt public key\n");
          return 1;
        }
        break;
      }
      if (response && (response->status == kgc::KgcStatus::kUnknownId ||
                       response->status == kgc::KgcStatus::kRevoked)) {
        std::fprintf(stderr, "error: directory does not vouch for %s "
                     "(unknown, revoked, or epoch-expired)\n", id->c_str());
        return 1;
      }
      if (attempt < retries) {
        std::fprintf(stderr, "warning: %s unavailable (attempt %u/%u), "
                     "retrying...\n", connect->c_str(), attempt + 1, retries + 1);
        std::this_thread::sleep_for(std::chrono::milliseconds(25 << attempt));
      }
    }
    if (!pk) {
      std::fprintf(stderr, "error: %s unavailable after %u attempts — "
                   "transient failure, not a verdict; retry later\n",
                   connect->c_str(), retries + 1);
      return 3;
    }
  } else if (const auto* resolve = args.get("resolve")) {
    // --resolve kgcd: fetch the signer's key from the daemon's directory
    // through the resilient pipeline instead of a DIR/ID.pub file. A
    // transient failure (kUnavailable/kTimeout) is retried a bounded number
    // of times and then reported as exit 3 — an availability outcome, never
    // conflated with REJECT (1) or an unknown signer. --fault-rate (with
    // --seed) makes that path deterministic for tests.
    if (*resolve != "kgcd") return usage();
    const auto daemon = boot_kgcd(args);
    if (!daemon) return 1;
    svc::FaultConfig fault{.seed = seed_from(args) ^ 0xFA17ULL};
    if (const auto* rate = args.get("fault-rate")) {
      fault.fail_rate = std::strtod(rate->c_str(), nullptr);
    }
    svc::FaultInjectingResolver faulty(&daemon->directory(), fault);
    svc::ResilientResolver resolver(&faulty);
    unsigned retries = 3;
    if (const auto* r = args.get("retries")) {
      retries = static_cast<unsigned>(std::strtoul(r->c_str(), nullptr, 10));
    }
    for (unsigned attempt = 0; attempt <= retries; ++attempt) {
      const svc::ResolveResult resolved = resolver.resolve(*id);
      if (resolved.outcome == svc::ResolveOutcome::kOk) {
        pk = resolved.key;
        break;
      }
      if (resolved.outcome == svc::ResolveOutcome::kNotVouched) {
        std::fprintf(stderr, "error: directory does not vouch for %s "
                     "(unknown, revoked, or epoch-expired)\n", id->c_str());
        return 1;
      }
      if (attempt < retries) {
        std::fprintf(stderr, "warning: directory unavailable (attempt %u/%u), "
                     "retrying...\n", attempt + 1, retries + 1);
        std::this_thread::sleep_for(std::chrono::milliseconds(25 << attempt));
      }
    }
    if (!pk) {
      std::fprintf(stderr, "error: directory unavailable after %u attempts — "
                   "transient failure, not a verdict; retry later\n", retries + 1);
      return 3;
    }
  } else {
    const auto pk_bytes = read_file(*dir + "/" + *id + ".pub");
    if (!pk_bytes) {
      std::fprintf(stderr, "error: missing %s.pub in %s\n", id->c_str(), dir->c_str());
      return 1;
    }
    pk = cls::PublicKey::from_bytes(*pk_bytes);
    if (!pk) {
      std::fprintf(stderr, "error: corrupt public key file\n");
      return 1;
    }
  }

  std::error_code ec;
  std::vector<std::filesystem::path> sig_paths;
  for (const auto& entry : std::filesystem::directory_iterator(*msgdir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".sig") {
      sig_paths.push_back(entry.path());
    }
  }
  if (ec) {
    std::fprintf(stderr, "error: cannot read directory %s\n", msgdir->c_str());
    return 1;
  }
  if (sig_paths.empty()) {
    std::fprintf(stderr, "error: no .sig files in %s\n", msgdir->c_str());
    return 1;
  }
  std::sort(sig_paths.begin(), sig_paths.end());  // deterministic batch order

  std::vector<cls::BatchItem> items;
  for (const auto& sig_path : sig_paths) {
    const auto sig_bytes = read_file(sig_path.string());
    if (!sig_bytes) {
      std::fprintf(stderr, "error: %s is not valid hex\n", sig_path.c_str());
      return 1;
    }
    const auto sig = cls::McclsSignature::from_bytes(*sig_bytes);
    if (!sig) {
      std::fprintf(stderr, "error: %s is not a well-formed McCLS signature\n",
                   sig_path.c_str());
      return 1;
    }
    auto msg_path = sig_path;
    msg_path.replace_extension(".msg");
    std::ifstream msg_in(msg_path, std::ios::binary);
    if (!msg_in) {
      std::fprintf(stderr, "error: missing message file %s\n", msg_path.c_str());
      return 1;
    }
    crypto::Bytes message{std::istreambuf_iterator<char>(msg_in),
                          std::istreambuf_iterator<char>()};
    items.push_back(cls::BatchItem{.message = std::move(message), .signature = *sig});
  }

  crypto::HmacDrbg rng(seed_from(args) ^ 0xBA7C4ULL);
  const bool ok = cls::batch_verify(*params, *id, pk->primary(), items, rng);
  std::printf("%s (%zu signatures, 1 pairing)\n", ok ? "ACCEPT" : "REJECT", items.size());
  return ok ? 0 : 1;
}

// ------------------------------------------------------- kgc subcommands
//
// Each invocation boots the daemon from DIR/kgc.master + the DIR/kgcd
// store (snapshot + WAL replay) and speaks the kgc wire protocol through
// handle_frame — the CLI is a round trip through the same codec and
// dispatch the load generator and a remote client use.

std::unique_ptr<kgc::Kgcd> boot_kgcd(const Args& args) {
  const auto* dir = args.get("dir");
  if (dir == nullptr) return nullptr;
  const auto master_bytes = read_file(*dir + "/kgc.master");
  if (!master_bytes) {
    std::fprintf(stderr, "error: no KGC in %s (run setup first)\n", dir->c_str());
    return nullptr;
  }
  const auto master = cls::decode_master_key(*master_bytes);
  if (!master) {
    std::fprintf(stderr, "error: corrupt kgc.master\n");
    return nullptr;
  }
  kgc::KgcdConfig config;
  config.data_dir = *dir + "/kgcd";
  if (const auto* epoch = args.get("epoch")) {
    config.epoch = std::strtoull(epoch->c_str(), nullptr, 10);
  }
  std::error_code ec;
  std::filesystem::create_directories(config.data_dir, ec);
  if (ec) {
    std::fprintf(stderr, "error: cannot create %s\n", config.data_dir.c_str());
    return nullptr;
  }
  return std::make_unique<kgc::Kgcd>(*master, config);
}

/// Round-trips one request through the daemon's wire entry point.
std::optional<kgc::KgcResponse> kgc_call(kgc::Kgcd& daemon, const kgc::KgcRequest& request) {
  const auto frame = kgc::encode_kgc_request(request);
  return kgc::decode_kgc_response(daemon.handle_frame(frame));
}

const char* kgc_status_name(kgc::KgcStatus status) {
  switch (status) {
    case kgc::KgcStatus::kOk: return "ok";
    case kgc::KgcStatus::kUnknownId: return "unknown-id";
    case kgc::KgcStatus::kRevoked: return "revoked";
    case kgc::KgcStatus::kInvalidKey: return "invalid-key";
    case kgc::KgcStatus::kConflict: return "conflict";
    case kgc::KgcStatus::kMalformed: return "malformed";
    case kgc::KgcStatus::kStoreError: return "store-error";
    case kgc::KgcStatus::kReadOnly: return "read-only";
  }
  return "?";
}

/// Splits "HOST:PORT" (port 1..65535); nullopt if malformed.
std::optional<std::pair<std::string, std::uint16_t>> parse_hostport(
    const std::string& value) {
  const std::size_t colon = value.rfind(':');
  if (colon == std::string::npos || colon == 0) return std::nullopt;
  const unsigned long port = std::strtoul(value.c_str() + colon + 1, nullptr, 10);
  if (port == 0 || port > 65535) return std::nullopt;
  return std::make_pair(value.substr(0, colon), static_cast<std::uint16_t>(port));
}

/// One kgc wire round trip, local or remote. With --connect HOST:PORT the
/// frame goes over TCP to a server in another process; otherwise a Kgcd
/// booted from --dir handles it in-process. Either way the request walks
/// the same codec + dispatch, so exit codes are identical across modes —
/// except that open() exits 3 (transient) when the remote is unreachable.
struct KgcEndpoint {
  std::unique_ptr<kgc::Kgcd> daemon;            ///< local mode
  std::unique_ptr<netd::BlockingClient> remote; ///< --connect mode

  /// exit_code is set only on failure (nullopt return).
  static std::optional<KgcEndpoint> open(const Args& args, int& exit_code) {
    KgcEndpoint endpoint;
    if (const auto* connect = args.get("connect")) {
      const auto hostport = parse_hostport(*connect);
      if (!hostport) {
        exit_code = usage();
        return std::nullopt;
      }
      endpoint.remote = std::make_unique<netd::BlockingClient>();
      if (!endpoint.remote->connect(hostport->first, hostport->second)) {
        std::fprintf(stderr, "error: cannot reach %s (%s) — transient failure, "
                     "retry later\n", connect->c_str(),
                     endpoint.remote->error().c_str());
        exit_code = 3;
        return std::nullopt;
      }
      return endpoint;
    }
    endpoint.daemon = boot_kgcd(args);
    if (!endpoint.daemon) {
      exit_code = 1;
      return std::nullopt;
    }
    return endpoint;
  }

  std::optional<kgc::KgcResponse> call(const kgc::KgcRequest& request) {
    if (daemon) return kgc_call(*daemon, request);
    const auto reply = remote->call(kgc::encode_kgc_request(request));
    if (!reply) return std::nullopt;
    return kgc::decode_kgc_response(*reply);
  }
};

int cmd_kgc_enroll(const Args& args) {
  const auto* dir = args.get("dir");
  const auto* id = args.get("id");
  if (dir == nullptr || id == nullptr) return usage();
  int exit_code = 1;
  auto endpoint = KgcEndpoint::open(args, exit_code);
  if (!endpoint) return exit_code;
  // Local mode reads the system params off the booted daemon; remote mode
  // needs DIR/kgc.pub (the server's params, distributed out of band).
  std::optional<cls::SystemParams> params;
  if (endpoint->daemon) {
    params = endpoint->daemon->params();
  } else {
    params = load_params(*dir);
    if (!params) {
      std::fprintf(stderr, "error: --connect enroll needs kgc.pub in %s\n",
                   dir->c_str());
      return 1;
    }
  }

  // The user side of certificateless keygen: x stays local, only the
  // derived public key crosses the wire.
  crypto::HmacDrbg rng(seed_from(args) ^ 0xD13ULL);
  const cls::Mccls scheme;
  const math::Fq x = rng.next_nonzero_fq();
  const cls::PublicKey pk = scheme.derive_public(*params, x);

  const auto response = endpoint->call(
      kgc::KgcRequest{.op = kgc::KgcOp::kEnroll, .request_id = 1, .id = *id,
                      .pk_bytes = pk.to_bytes()});
  if (!response || response->status != kgc::KgcStatus::kOk) {
    std::fprintf(stderr, "enroll refused: %s\n",
                 response ? kgc_status_name(response->status) : "no response");
    return 1;
  }
  const auto partial = ec::G1::from_bytes(response->payload);
  if (!partial) {
    std::fprintf(stderr, "error: daemon returned a corrupt partial key\n");
    return 1;
  }
  const std::string scoped = cls::scoped_identity(*id, response->epoch);
  const cls::UserKeys user{.id = scoped, .partial_key = *partial, .secret = x,
                           .public_key = pk};
  // The .pub lands under both names so the plain verify subcommand (which
  // derives the file name from --id) accepts the scoped identity directly.
  if (!write_file(*dir + "/" + *id + ".key", cls::encode_user_keys(user)) ||
      !write_file(*dir + "/" + *id + ".pub", pk.to_bytes()) ||
      !write_file(*dir + "/" + scoped + ".pub", pk.to_bytes())) {
    std::fprintf(stderr, "error: cannot write user key files\n");
    return 1;
  }
  std::printf("enrolled %s (sign and verify as \"%s\")\npublic key = %s\n", id->c_str(),
              scoped.c_str(), crypto::to_hex(pk.to_bytes()).c_str());
  return 0;
}

int cmd_kgc_lookup(const Args& args) {
  const auto* id = args.get("id");
  if (id == nullptr) return usage();
  int exit_code = 1;
  auto endpoint = KgcEndpoint::open(args, exit_code);
  if (!endpoint) return exit_code;
  const auto response = endpoint->call(
      kgc::KgcRequest{.op = kgc::KgcOp::kLookup, .request_id = 1, .id = *id});
  if (!response || response->status != kgc::KgcStatus::kOk) {
    std::fprintf(stderr, "lookup failed: %s\n",
                 response ? kgc_status_name(response->status) : "no response");
    return 1;
  }
  std::printf("%s enrolled at epoch %llu\npublic key = %s\n", id->c_str(),
              static_cast<unsigned long long>(response->epoch),
              crypto::to_hex(response->payload).c_str());
  return 0;
}

int cmd_kgc_revoke(const Args& args) {
  const auto* id = args.get("id");
  if (id == nullptr) return usage();
  int exit_code = 1;
  auto endpoint = KgcEndpoint::open(args, exit_code);
  if (!endpoint) return exit_code;
  const auto response = endpoint->call(
      kgc::KgcRequest{.op = kgc::KgcOp::kRevoke, .request_id = 1, .id = *id});
  if (!response || response->status != kgc::KgcStatus::kOk) {
    std::fprintf(stderr, "revoke failed: %s\n",
                 response ? kgc_status_name(response->status) : "no response");
    return 1;
  }
  std::printf("revoked %s as of epoch %llu\n", id->c_str(),
              static_cast<unsigned long long>(response->epoch));
  return 0;
}

int cmd_kgc_vouch(const Args& args) {
  const auto* id = args.get("id");
  if (id == nullptr) return usage();
  int exit_code = 1;
  auto endpoint = KgcEndpoint::open(args, exit_code);
  if (!endpoint) return exit_code;
  const auto response = endpoint->call(
      kgc::KgcRequest{.op = kgc::KgcOp::kVouch, .request_id = 1, .id = *id});
  if (!response || response->status != kgc::KgcStatus::kOk) {
    std::fprintf(stderr, "vouch refused: %s\n",
                 response ? kgc_status_name(response->status) : "no response");
    return 1;
  }
  const auto chain = kgc::decode_voucher_chain(response->payload);
  if (!chain || chain->empty()) {
    std::fprintf(stderr, "error: daemon returned a corrupt voucher chain\n");
    return 1;
  }
  const kgc::Voucher& leaf = chain->front();
  std::printf("voucher %llu: %s vouches that %s holds\n  %s\n"
              "  valid [%llu, %llu), epoch %llu, chain depth %zu\n",
              static_cast<unsigned long long>(leaf.serial), leaf.issuer.c_str(),
              leaf.subject.c_str(), crypto::to_hex(leaf.pk_bytes).c_str(),
              static_cast<unsigned long long>(leaf.not_before),
              static_cast<unsigned long long>(leaf.not_after),
              static_cast<unsigned long long>(leaf.epoch), chain->size());
  if (const auto* out = args.get("out")) {
    if (!write_file(*out, response->payload)) {
      std::fprintf(stderr, "error: cannot write %s\n", out->c_str());
      return 1;
    }
    std::printf("chain written to %s\n", out->c_str());
  } else {
    std::printf("%s\n", crypto::to_hex(response->payload).c_str());
  }
  return 0;
}

int cmd_kgc_snapshot(const Args& args) {
  auto daemon = boot_kgcd(args);
  if (!daemon) return 1;
  const auto before = daemon->recovery();
  const auto response =
      kgc_call(*daemon, kgc::KgcRequest{.op = kgc::KgcOp::kSnapshot, .request_id = 1});
  if (!response || response->status != kgc::KgcStatus::kOk) {
    std::fprintf(stderr, "snapshot failed: %s\n",
                 response ? kgc_status_name(response->status) : "no response");
    return 1;
  }
  std::printf("snapshot written: %zu directory entries "
              "(booted from %zu snapshot entries + %zu WAL records)\n",
              daemon->directory().size(), before.snapshot_entries, before.wal_records);
  return 0;
}

// ------------------------------------------------------------------ serve

volatile std::sig_atomic_t g_serve_stop = 0;
void handle_serve_signal(int) { g_serve_stop = 1; }

/// serve: one process, both wire protocols over TCP. Boots the daemon from
/// DIR (the same WAL+snapshot store the kgc subcommands use), builds a
/// VerifyService whose by-identity path resolves through the daemon's
/// directory, and fronts both with src/netd servers. Runs until
/// SIGINT/SIGTERM. The listening ports are printed one per line and flushed
/// before the wait loop so scripts can scrape them.
int cmd_serve(const Args& args) {
  const auto* dir = args.get("dir");
  if (dir == nullptr) return usage();
  auto daemon = boot_kgcd(args);
  if (!daemon) return 1;

  unsigned workers = 4;
  if (const auto* w = args.get("workers")) {
    workers = static_cast<unsigned>(std::strtoul(w->c_str(), nullptr, 10));
    if (workers == 0) return usage();
  }
  const auto port_option = [&](const char* key) -> std::optional<std::uint16_t> {
    const auto* value = args.get(key);
    if (value == nullptr) return 0;  // 0 = ephemeral
    const unsigned long port = std::strtoul(value->c_str(), nullptr, 10);
    if (port > 65535) return std::nullopt;
    return static_cast<std::uint16_t>(port);
  };
  const auto verify_port = port_option("port");
  const auto kgc_port = port_option("kgc-port");
  if (!verify_port || !kgc_port) return usage();

  svc::ResilientResolver resolver(&daemon->directory());
  resolver.set_metrics(&daemon->metrics());
  svc::VerifyService service(daemon->params(),
                             svc::ServiceConfig{.workers = workers,
                                                .seed = seed_from(args) ^ 0x5E12EULL,
                                                .resolver = &resolver});

  netd::VerifydFrontEnd verify_front(service);
  netd::KgcdFrontEnd kgc_front(*daemon);
  netd::NetServer verify_server(netd::NetdConfig{.port = *verify_port}, &verify_front);
  netd::NetServer kgc_server(netd::NetdConfig{.port = *kgc_port}, &kgc_front);
  if (!verify_server.start()) {
    std::fprintf(stderr, "error: verifyd: %s\n", verify_server.error().c_str());
    return 1;
  }
  if (!kgc_server.start()) {
    std::fprintf(stderr, "error: kgcd: %s\n", kgc_server.error().c_str());
    verify_server.stop();
    return 1;
  }
  std::printf("verifyd listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(verify_server.port()));
  std::printf("kgcd listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(kgc_server.port()));
  std::fflush(stdout);

  std::signal(SIGINT, handle_serve_signal);
  std::signal(SIGTERM, handle_serve_signal);
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  verify_server.stop();
  kgc_server.stop();
  kgc_front.shutdown();
  std::printf("stopped\n");
  return 0;
}

int cmd_inspect(const Args& args) {
  const auto* sig_hex = args.get("sig");
  if (sig_hex == nullptr) return usage();
  const auto bytes = crypto::from_hex(*sig_hex);
  if (!bytes) {
    std::fprintf(stderr, "error: signature is not valid hex\n");
    return 1;
  }
  const auto sig = cls::McclsSignature::from_bytes(*bytes);
  if (!sig) {
    std::fprintf(stderr, "error: not a well-formed McCLS signature (%zu bytes)\n",
                 bytes->size());
    return 1;
  }
  std::printf("McCLS signature (%zu bytes)\n", bytes->size());
  std::printf("  V (scalar) = %s\n", sig->v.to_u256().to_hex().c_str());
  std::printf("  S (point)  = %s\n", crypto::to_hex(sig->s.to_bytes()).c_str());
  std::printf("  R (point)  = %s\n", crypto::to_hex(sig->r.to_bytes()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse(argc, argv);
  if (!args) return usage();
  if (args->command == "setup") return cmd_setup(*args);
  if (args->command == "enroll") return cmd_enroll(*args);
  if (args->command == "sign") return cmd_sign(*args);
  if (args->command == "verify") return cmd_verify(*args);
  if (args->command == "batch-verify") return cmd_batch_verify(*args);
  if (args->command == "inspect") return cmd_inspect(*args);
  if (args->command == "kgc enroll") return cmd_kgc_enroll(*args);
  if (args->command == "kgc lookup") return cmd_kgc_lookup(*args);
  if (args->command == "kgc revoke") return cmd_kgc_revoke(*args);
  if (args->command == "kgc vouch") return cmd_kgc_vouch(*args);
  if (args->command == "kgc snapshot") return cmd_kgc_snapshot(*args);
  if (args->command == "serve") return cmd_serve(*args);
  return usage();
}
