// kgcd_loadgen — multi-producer load generator for the persistent KGC
// daemon (src/kgc). Pre-computes a Zipf-skewed mix of enroll wire frames
// and directory resolutions, then hammers one Kgcd instance from P
// producer threads — enrolls through the wire entry point (handle_frame),
// lookups through KeyDirectory::resolve (the verify-by-identity hot path)
// — and reports throughput plus the daemon's metrics block as BENCH-schema
// JSON.
//
// Identity skew drives the directory's decoded-key LRU: a skewed
// population (--skew > 0) concentrates lookups on a few hot identities and
// the hit rate climbs; a uniform one (--skew 0) with more identities than
// LRU capacity keeps paying the decompression sqrt. The enroll fraction
// (--enroll-pct) exercises the WAL append path under contention, and
// --fsync turns on per-append durability so the fsync-latency histogram in
// the metrics dump shows the real cost of the acknowledgement contract.
//
//   kgcd_loadgen [--producers P] [--ops R] [--identities S] [--skew Z]
//                [--enroll-pct PCT] [--fsync] [--dir PATH] [--seed N]
//                [--json PATH] [--fault] [--fault-rate F] [--stall-ms MS]
//                [--replicas K] [--compact-interval MS]
//                [--tcp] [--connect HOST:PORT] [--connections C] [--pipeline M]
//
// TCP mode (--tcp, or --connect) drives the daemon through src/netd sockets
// instead of in-process calls: the non-enroll slots of the op mix become
// kLookup wire frames (the Zipf skew still shapes which identities get hot)
// and one epoll client replays the whole mix over C connections with up to
// M requests pipelined per connection. --tcp self-hosts a KgcdFrontEnd +
// NetServer on an ephemeral loopback port; --connect drives a server in
// another process (pre-enrolling every identity over the wire first, and
// skipping the metrics JSON — the remote owns its metrics). --fault is
// in-process-only: it wraps the KeyDirectory *resolver* pipeline that a
// co-located verifyd drives, which wire lookups never touch, so combining
// it with TCP mode is rejected rather than silently measuring nothing.
//
// Fault mode (--fault, or any of --fault-rate/--stall-ms) routes the
// resolve ops through the full degraded-directory pipeline —
// ResilientResolver → FaultInjectingResolver → KeyDirectory — instead of
// hitting the directory raw: each call fails with probability F
// (default 0.1 under bare --fault) and/or stalls MS milliseconds, and the
// wrapper's retry/breaker/negative-cache machinery reports into the same
// metrics dump (resolve outcome counters, breaker_trips, breaker_state,
// resolve latency percentiles). This is the knob the nightly fault soak
// turns.
//
// Replica mode (--replicas K, in-process only) stands up K read replicas,
// each with its own segmented store, bootstrapped from the primary via the
// kReplicate catch-up protocol before the clock starts. During the run each
// follower tails the primary from its own poller thread while the resolve
// slots of the op mix are served through a svc::ReplicaSetResolver whose
// endpoints are the followers (primary last, as the backstop) — the
// deployment shape where read replicas carry lookup traffic and the primary
// owns enroll/revoke. After the run every follower must catch up to
// bit-identical shard sequences or the loadgen fails. --compact-interval MS
// turns on the daemon's background compaction thread, which is what the
// nightly compaction-under-load soak drives: sustained mixed load with
// shards being folded underneath it, no global pause.
//
// The data directory is recreated from scratch each run (it is a load
// generator, not a durability test — tests/test_kgcd.cpp owns recovery).
// It defaults under build/ so scratch stores never land in the source tree.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cls/mccls.hpp"
#include "kgc/kgcd.hpp"
#include "kgc/replica.hpp"
#include "netd/client.hpp"
#include "netd/front.hpp"
#include "netd/server.hpp"
#include "svc/resolver.hpp"

namespace {

using namespace mccls;

struct Options {
  unsigned producers = 2;
  std::size_t ops = 4096;
  std::size_t identities = 64;
  double skew = 0.0;
  double enroll_pct = 10.0;
  bool fsync = false;
  std::string dir = "build/kgcd_loadgen.data";
  std::uint64_t seed = 0x46CD;
  std::size_t replicas = 0;            ///< read replicas tailing the primary
  std::uint64_t compact_interval = 0;  ///< background compaction cadence (ms)
  std::string json_path;
  bool fault = false;          ///< route resolves through the resilient pipeline
  double fault_rate = -1.0;    ///< <0 = unset (0.1 under bare --fault)
  std::uint32_t stall_ms = 0;  ///< injected stall per directory call
  bool tcp = false;            ///< self-host a netd server on loopback
  std::string connect_host;    ///< non-empty = drive an external server
  std::uint16_t connect_port = 0;
  std::size_t connections = 64;
  std::size_t pipeline = 16;

  [[nodiscard]] bool tcp_mode() const { return tcp || !connect_host.empty(); }
  [[nodiscard]] bool fault_mode() const {
    return fault || fault_rate >= 0.0 || stall_ms > 0;
  }
  [[nodiscard]] double effective_fault_rate() const {
    return fault_rate >= 0.0 ? fault_rate : (fault ? 0.1 : 0.0);
  }
};

int usage() {
  std::fprintf(stderr,
               "usage: kgcd_loadgen [--producers P] [--ops R] [--identities S]\n"
               "                    [--skew Z] [--enroll-pct PCT] [--fsync]\n"
               "                    [--dir PATH] [--seed N] [--json PATH]\n"
               "                    [--fault] [--fault-rate F] [--stall-ms MS]\n"
               "                    [--replicas K] [--compact-interval MS]\n"
               "                    [--tcp] [--connect HOST:PORT]\n"
               "                    [--connections C] [--pipeline M]\n"
               "(--fault and --replicas are in-process-only and cannot combine\n"
               " with --tcp/--connect, or with each other)\n");
  return 2;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--fsync") {
      opt.fsync = true;
      continue;
    }
    if (flag == "--fault") {
      opt.fault = true;
      continue;
    }
    if (flag == "--tcp") {
      opt.tcp = true;
      continue;
    }
    if (i + 1 >= argc) return false;
    const char* value = argv[++i];
    if (flag == "--producers") {
      opt.producers = static_cast<unsigned>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--ops") {
      opt.ops = std::strtoull(value, nullptr, 10);
    } else if (flag == "--identities") {
      opt.identities = std::strtoull(value, nullptr, 10);
    } else if (flag == "--skew") {
      opt.skew = std::strtod(value, nullptr);
    } else if (flag == "--enroll-pct") {
      opt.enroll_pct = std::strtod(value, nullptr);
    } else if (flag == "--dir") {
      opt.dir = value;
    } else if (flag == "--seed") {
      opt.seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--json") {
      opt.json_path = value;
    } else if (flag == "--fault-rate") {
      opt.fault_rate = std::strtod(value, nullptr);
    } else if (flag == "--stall-ms") {
      opt.stall_ms = static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--connect") {
      const std::string hostport = value;
      const std::size_t colon = hostport.rfind(':');
      if (colon == std::string::npos || colon == 0) return false;
      const unsigned long port = std::strtoul(hostport.c_str() + colon + 1, nullptr, 10);
      if (port == 0 || port > 65535) return false;
      opt.connect_host = hostport.substr(0, colon);
      opt.connect_port = static_cast<std::uint16_t>(port);
    } else if (flag == "--connections") {
      opt.connections = std::strtoull(value, nullptr, 10);
    } else if (flag == "--pipeline") {
      opt.pipeline = std::strtoull(value, nullptr, 10);
    } else if (flag == "--replicas") {
      opt.replicas = std::strtoull(value, nullptr, 10);
    } else if (flag == "--compact-interval") {
      opt.compact_interval = std::strtoull(value, nullptr, 10);
    } else {
      return false;
    }
  }
  if (opt.fault_rate > 1.0) return false;
  if (opt.tcp_mode() && (opt.fault_mode() || opt.connections == 0 || opt.pipeline == 0)) {
    return false;
  }
  if (opt.replicas > 0 && (opt.tcp_mode() || opt.fault_mode())) return false;
  return opt.producers > 0 && opt.ops > 0 && opt.identities > 0;
}

/// Zipf(s) sampler over [0, n): inverse-CDF lookup on a precomputed table.
/// s == 0 degenerates to uniform. (Same sampler as verifyd_loadgen.)
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    double total = 0;
    for (std::size_t k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  std::size_t sample(crypto::HmacDrbg& rng) const {
    std::array<std::uint8_t, 8> raw;
    rng.generate(raw);
    std::uint64_t bits = 0;
    for (const std::uint8_t b : raw) bits = bits << 8 | b;
    const double u = static_cast<double>(bits >> 11) * 0x1.0p-53;  // [0, 1)
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage();

  // ---- corpus: master key, identities with derived public keys, and the
  // pre-encoded op mix (all single-threaded, off the clock; producers only
  // replay bytes).
  crypto::HmacDrbg rng(opt.seed);
  const cls::Kgc kgc = cls::Kgc::setup(rng);
  const cls::Mccls scheme;
  std::vector<std::string> ids;
  std::vector<crypto::Bytes> pk_bytes;
  for (std::size_t s = 0; s < opt.identities; ++s) {
    ids.push_back("node-" + std::to_string(s));
    pk_bytes.push_back(scheme.derive_public(kgc.params(), rng.next_nonzero_fq()).to_bytes());
  }

  // The op mix: enrolls are pre-encoded wire frames replayed through
  // handle_frame (codec + admission + WAL append); lookups are directory
  // *resolutions* — the verify-by-identity hot path a co-located verifyd
  // drives, which is what the decoded-key LRU and its hit/miss counters
  // measure. An empty frame slot marks a resolve op. In TCP mode every op
  // has to be wire bytes, so the resolve slots become kLookup frames
  // instead (same identity skew, but served off the directory's encoded
  // store — the decoded-key LRU is not on that path).
  const ZipfSampler sampler(opt.identities, opt.skew);
  std::vector<crypto::Bytes> frames;
  std::vector<std::size_t> resolve_who(opt.ops, 0);
  frames.reserve(opt.ops);
  std::size_t enrolls = 0;
  for (std::size_t i = 0; i < opt.ops; ++i) {
    const std::size_t who = sampler.sample(rng);
    if (static_cast<double>(i % 100) < opt.enroll_pct) {  // deterministic mix
      // Re-enroll of the same key is kOk (re-issuance) — every enroll frame
      // exercises validation plus a durable WAL append.
      frames.push_back(kgc::encode_kgc_request(
          kgc::KgcRequest{.op = kgc::KgcOp::kEnroll, .request_id = i + 1,
                          .id = ids[who], .pk_bytes = pk_bytes[who]}));
      ++enrolls;
    } else if (opt.tcp_mode()) {
      frames.push_back(kgc::encode_kgc_request(
          kgc::KgcRequest{.op = kgc::KgcOp::kLookup, .request_id = i + 1,
                          .id = ids[who]}));
    } else {
      frames.emplace_back();
      resolve_who[i] = who;
    }
  }

  // ---- daemon: fresh store, every identity pre-enrolled so the lookup mix
  // never answers kUnknownId. Absent under --connect (the daemon lives in
  // another process; pre-enrollment goes over the wire instead).
  std::optional<kgc::Kgcd> daemon;
  if (opt.connect_host.empty()) {
    std::filesystem::remove_all(opt.dir);
    std::filesystem::create_directories(opt.dir);
    daemon.emplace(kgc.master_key_for_tests(),
                   kgc::KgcdConfig{.data_dir = opt.dir,
                                   .fsync = opt.fsync,
                                   .compact_interval_ms = opt.compact_interval});
    for (std::size_t s = 0; s < opt.identities; ++s) {
      if (daemon->enroll(ids[s], pk_bytes[s]).status != kgc::KgcStatus::kOk) {
        std::fprintf(stderr, "error: pre-enroll of %s failed\n", ids[s].c_str());
        return 1;
      }
    }
    daemon->directory().drop_caches();  // producers start from a cold LRU
  }

  // Replica mode: K followers bootstrap from the primary off the clock, then
  // tail it from poller threads while the run's resolve ops are answered by
  // the replica set (followers first; the primary is only the backstop).
  std::vector<std::unique_ptr<kgc::Replica>> followers;
  std::optional<svc::ReplicaSetResolver> replica_set;
  for (std::size_t k = 0; k < opt.replicas; ++k) {
    const std::string follower_dir = opt.dir + "-replica-" + std::to_string(k);
    std::filesystem::remove_all(follower_dir);
    followers.push_back(std::make_unique<kgc::Replica>(
        kgc::ReplicaConfig{.data_dir = follower_dir, .fsync = false},
        [&daemon](const crypto::Bytes& request) -> std::optional<crypto::Bytes> {
          return daemon->handle_frame(request);
        }));
    if (!followers.back()->sync()) {
      std::fprintf(stderr, "error: replica %zu failed to bootstrap\n", k);
      return 1;
    }
  }
  if (!followers.empty()) {
    std::vector<svc::PkResolver*> endpoints;
    for (const auto& follower : followers) endpoints.push_back(&follower->directory());
    endpoints.push_back(&daemon->directory());
    replica_set.emplace(std::move(endpoints));
  }

  // Fault mode (in-process only): resolves go through the degraded-directory
  // pipeline, and the wrapper's machinery reports into the daemon's metrics.
  std::optional<svc::FaultInjectingResolver> faulty;
  std::optional<svc::ResilientResolver> resilient;
  if (daemon) {
    faulty.emplace(&daemon->directory(),
                   svc::FaultConfig{.fail_rate = opt.effective_fault_rate(),
                                    .stall_ms = opt.stall_ms,
                                    .seed = opt.seed ^ 0xFA17ED5EEDULL});
    resilient.emplace(&*faulty);
    resilient->set_metrics(&daemon->metrics());
  }

  std::atomic<std::uint64_t> ok{0}, refused{0}, unavailable{0};
  double seconds = 0.0;
  std::size_t peak_connected = 0;
  netd::NetdMetrics::Snapshot net{};

  if (opt.tcp_mode()) {
    // ---- TCP: the whole mix is wire frames, replayed over C connections by
    // one epoll client against a self-hosted or remote netd server.
    std::optional<netd::KgcdFrontEnd> front;
    std::optional<netd::NetServer> server;
    std::string host = opt.connect_host.empty() ? "127.0.0.1" : opt.connect_host;
    std::uint16_t port = opt.connect_port;
    if (daemon) {
      front.emplace(*daemon);
      server.emplace(netd::NetdConfig{.max_connections = opt.connections + 64,
                                      .idle_timeout_ms = 60000,
                                      .tick_ms = 5},
                     &*front);
      if (!server->start()) {
        std::fprintf(stderr, "error: %s\n", server->error().c_str());
        return 1;
      }
      port = server->port();
    } else {
      // Remote daemon: enroll every identity over the wire, off the clock,
      // so the lookup mix never answers kUnknownId.
      netd::BlockingClient enroller;
      if (!enroller.connect(host, port)) {
        std::fprintf(stderr, "error: %s\n", enroller.error().c_str());
        return 1;
      }
      for (std::size_t s = 0; s < opt.identities; ++s) {
        const auto reply = enroller.call(kgc::encode_kgc_request(
            kgc::KgcRequest{.op = kgc::KgcOp::kEnroll, .request_id = s + 1,
                            .id = ids[s], .pk_bytes = pk_bytes[s]}));
        const auto response = reply ? kgc::decode_kgc_response(*reply) : std::nullopt;
        if (!response || response->status != kgc::KgcStatus::kOk) {
          std::fprintf(stderr, "error: wire pre-enroll of %s failed\n", ids[s].c_str());
          return 1;
        }
      }
    }
    netd::MultiClient client(
        netd::MultiClient::Config{.host = host,
                                  .port = port,
                                  .connections = opt.connections,
                                  .pipeline = opt.pipeline,
                                  .run_timeout_ms = 600000});
    const auto start = std::chrono::steady_clock::now();
    const bool tcp_ok = client.run(
        // Frame i goes to connection i % C as its (i / C)-th request.
        [&](std::size_t conn, std::size_t seq) -> std::optional<crypto::Bytes> {
          const std::size_t index = seq * opt.connections + conn;
          if (index >= frames.size()) return std::nullopt;
          return frames[index];
        },
        [&](std::size_t, crypto::Bytes payload) {
          const auto response = kgc::decode_kgc_response(payload);
          const bool success = response && response->status == kgc::KgcStatus::kOk;
          (success ? ok : refused).fetch_add(1, std::memory_order_relaxed);
        });
    seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                  .count();
    peak_connected = client.peak_connected();
    if (!tcp_ok) {
      std::fprintf(stderr, "error: %s\n", client.error().c_str());
      return 1;
    }
    if (client.responses() < frames.size()) {
      std::fprintf(stderr, "error: %llu of %zu ops unanswered\n",
                   static_cast<unsigned long long>(frames.size() - client.responses()),
                   frames.size());
      return 1;
    }
    if (server) {
      server->stop();
      net = server->metrics().snapshot();
    }
  } else {
    svc::PkResolver& resolver =
        replica_set ? static_cast<svc::PkResolver&>(*replica_set)
        : opt.fault_mode() ? static_cast<svc::PkResolver&>(*resilient)
                           : static_cast<svc::PkResolver&>(daemon->directory());
    std::atomic<bool> stop_pollers{false};
    std::vector<std::jthread> pollers;
    for (std::size_t k = 0; k < followers.size(); ++k) {
      pollers.emplace_back([&, k] {
        while (!stop_pollers.load(std::memory_order_relaxed)) {
          (void)followers[k]->poll();
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
    }
    const auto start = std::chrono::steady_clock::now();
    {
      std::vector<std::jthread> producers;
      for (unsigned p = 0; p < opt.producers; ++p) {
        producers.emplace_back([&, p] {
          for (std::size_t i = p; i < frames.size(); i += opt.producers) {
            bool success;
            if (frames[i].empty()) {
              // The loadgen plays the service's role here: it records the
              // per-outcome counters and resolve latency for whatever resolver
              // it talks to (the wrapper only reports its own machinery).
              const auto t0 = std::chrono::steady_clock::now();
              const svc::ResolveResult resolved = resolver.resolve(ids[resolve_who[i]]);
              daemon->metrics().on_resolve_latency_ns(static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count()));
              switch (resolved.outcome) {
                case svc::ResolveOutcome::kOk:
                  daemon->metrics().on_resolve_ok();
                  break;
                case svc::ResolveOutcome::kNotVouched:
                  daemon->metrics().on_resolve_not_vouched();
                  break;
                case svc::ResolveOutcome::kUnavailable:
                  daemon->metrics().on_resolve_unavailable();
                  break;
                case svc::ResolveOutcome::kTimeout:
                  daemon->metrics().on_resolve_timeout();
                  break;
              }
              if (resolved.transient()) {
                unavailable.fetch_add(1, std::memory_order_relaxed);
              }
              success = resolved.has_key();
            } else {
              const auto response =
                  kgc::decode_kgc_response(daemon->handle_frame(frames[i]));
              success = response && response->status == kgc::KgcStatus::kOk;
            }
            (success ? ok : refused).fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
    }
    seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                  .count();
    stop_pollers.store(true, std::memory_order_relaxed);
  }

  const double total = static_cast<double>(opt.ops);
  if (opt.tcp_mode()) {
    std::printf("offered %zu ops (%zu enrolls) over %zu identities across %zu TCP "
                "connections (pipeline %zu) to %s in %.3f s\n",
                opt.ops, enrolls, opt.identities, opt.connections, opt.pipeline,
                daemon ? "a loopback netd server" : "a remote server", seconds);
  } else {
    std::printf("offered %zu ops (%zu enrolls) over %zu identities from %u producers "
                "in %.3f s\n",
                opt.ops, enrolls, opt.identities, opt.producers, seconds);
  }
  std::printf("  sustained: %.0f ops/s (%.1f us/op)%s\n", total / seconds,
              seconds * 1e6 / total, opt.fsync ? " [fsync per append]" : "");
  std::printf("  outcomes:  %llu ok, %llu refused\n",
              static_cast<unsigned long long>(ok.load()),
              static_cast<unsigned long long>(refused.load()));
  if (!followers.empty()) {
    // The run is only a pass if every follower converges to bit-identical
    // shard sequences once the mutation stream stops.
    std::uint64_t streamed_records = 0, streamed_entries = 0;
    for (std::size_t k = 0; k < followers.size(); ++k) {
      if (!followers[k]->sync()) {
        std::fprintf(stderr, "error: replica %zu failed its final catch-up\n", k);
        return 1;
      }
      for (std::size_t s = 0; s < daemon->store().shards(); ++s) {
        if (followers[k]->next_seq(s) != daemon->store().shard_sequence(s) + 1) {
          std::fprintf(stderr, "error: replica %zu shard %zu out of sync\n", k, s);
          return 1;
        }
      }
      const auto follower_metrics = followers[k]->metrics().snapshot();
      streamed_records += follower_metrics.replica_records;
      streamed_entries += follower_metrics.replica_snapshot_entries;
    }
    std::printf("  replicas:  %zu followers caught up bit-identically "
                "(%llu records, %llu snapshot entries streamed)\n",
                followers.size(), static_cast<unsigned long long>(streamed_records),
                static_cast<unsigned long long>(streamed_entries));
  }
  if (opt.tcp_mode()) {
    std::printf("  transport: peak %zu concurrent connections, %llu backpressure "
                "pauses / %llu resumes, %llu dispatch retries\n",
                peak_connected,
                static_cast<unsigned long long>(net.backpressure_pauses),
                static_cast<unsigned long long>(net.backpressure_resumes),
                static_cast<unsigned long long>(net.dispatch_retries));
  }
  if (!daemon) return 0;  // --connect: the remote owns its metrics

  const auto snapshot = daemon->metrics().snapshot();
  std::printf("  directory: %llu decoded-cache hits, %llu misses (%.1f%% hit rate), "
              "%llu WAL appends\n",
              static_cast<unsigned long long>(snapshot.dir_hits),
              static_cast<unsigned long long>(snapshot.dir_misses),
              100.0 * snapshot.dir_hit_rate(),
              static_cast<unsigned long long>(snapshot.wal_fsyncs));
  if (opt.fault_mode()) {
    std::printf("  faults:    rate %.2f stall %u ms -> %llu injected, %llu transient "
                "answers, %llu retries, %llu fast-fails, %llu trips (breaker %llu)\n",
                opt.effective_fault_rate(), opt.stall_ms,
                static_cast<unsigned long long>(faulty->injected_failures()),
                static_cast<unsigned long long>(unavailable.load()),
                static_cast<unsigned long long>(snapshot.resolve_retries),
                static_cast<unsigned long long>(snapshot.breaker_fast_fails),
                static_cast<unsigned long long>(snapshot.breaker_trips),
                static_cast<unsigned long long>(snapshot.breaker_state));
  }

  const std::string json = daemon->metrics().to_json("kgcd_loadgen");
  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path, std::ios::trunc);
    out << json;
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", opt.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", opt.json_path.c_str());
  } else {
    std::fputs(json.c_str(), stdout);
  }
  return 0;
}
