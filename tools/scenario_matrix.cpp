// scenario_matrix — deterministic parallel sweep over the scenario engine
// (src/scen), emitting SCEN_matrix.json in the BENCH schema so
// bench_compare can gate secured-vs-unsecured PDR and delay like any other
// tracked artifact.
//
//   scenario_matrix --preset smoke --workers 2 --out SCEN_matrix.json
//   scenario_matrix --preset full --check-determinism --out SCEN_matrix.json
//
// Presets:
//   smoke — tier-1 material: 20-node cells, 2 seeds, every attack class on
//           both protocols plus the secured/unsecured pairs the CI gates
//           compare. Seconds of wall clock.
//   full  — the acceptance sweep: {20,100,500,1000} nodes × {aodv,dsr} ×
//           {none,blackhole,sybil,replay-storm}, secured cells throughout
//           plus unsecured baselines, >= 8 seeds. Field area scales with
//           sqrt(n/20) to hold density; durations shrink as n grows.
//
// Gate encoding: bench_compare reasons in "lower median_ns is better", so
// each cell contributes <name>_loss = (1 - PDR) * 1e6 + 1 and
// <name>_delay = mean delay in µs + 1 (the +1 keeps medians strictly
// positive so ratios stay finite). Human-readable values land in derived{}.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "../bench/bench_json.hpp"
#include "scen/matrix.hpp"

namespace {

using mccls::aodv::AttackType;
using mccls::aodv::ScenarioConfig;
using mccls::aodv::SecurityMode;
using mccls::scen::Cell;
using mccls::scen::CellResult;
using mccls::scen::MatrixResult;
using mccls::scen::Protocol;

const char* attack_name(AttackType a) {
  switch (a) {
    case AttackType::kNone: return "none";
    case AttackType::kBlackHole: return "blackhole";
    case AttackType::kSybil: return "sybil";
    case AttackType::kReplayStorm: return "replay";
    case AttackType::kRushing: return "rushing";
    case AttackType::kGrayHole: return "grayhole";
    case AttackType::kWormhole: return "wormhole";
  }
  return "unknown";
}

Cell make_cell(std::size_t nodes, Protocol proto, AttackType attack, bool secured,
               double duration, unsigned seeds) {
  Cell cell;
  cell.protocol = proto;
  cell.seeds = seeds;
  ScenarioConfig& c = cell.base;
  c.num_nodes = nodes;
  const double scale = std::sqrt(static_cast<double>(nodes) / 20.0);
  c.area_width = 1500.0 * scale;
  c.area_height = 300.0 * scale;
  c.duration = duration;
  c.num_flows = std::max<std::size_t>(10, nodes / 10);
  c.security = secured ? SecurityMode::kModeled : SecurityMode::kNone;
  c.attack = attack;
  c.num_attackers = attack == AttackType::kNone
                        ? 0
                        : std::max<std::size_t>(2, nodes / 5);  // 20% adversarial
  cell.name = std::string(proto == Protocol::kDsr ? "dsr" : "aodv") + "_" +
              std::to_string(nodes) + "_" + attack_name(attack) +
              (secured ? "_sec" : "_unsec");
  return cell;
}

std::vector<Cell> smoke_preset(unsigned seeds) {
  // Small, fast, and exactly the cells the CI gates read: secured vs
  // unsecured under no attack (delay overhead gate) and under 20% black
  // holes (PDR floor gate), plus both new attack classes on both protocols.
  std::vector<Cell> cells;
  const double dur = 40.0;
  for (const Protocol proto : {Protocol::kAodv, Protocol::kDsr}) {
    for (const AttackType attack :
         {AttackType::kNone, AttackType::kBlackHole, AttackType::kSybil,
          AttackType::kReplayStorm}) {
      for (const bool secured : {false, true}) {
        cells.push_back(make_cell(20, proto, attack, secured, dur, seeds));
      }
    }
  }
  return cells;
}

std::vector<Cell> full_preset(unsigned seeds) {
  // The acceptance sweep. Durations shrink with n so the 1000-node cells
  // stay tractable; area grows as sqrt(n/20) to hold node density constant.
  // Traffic starts at 1-3 s (instead of the paper's 5-15 s warm-up): the
  // short large-n durations must still leave several seconds of RREQs older
  // than the freshness horizon, or the replay-storm cells would end before
  // a single stale replay exists.
  std::vector<Cell> cells;
  for (const std::size_t nodes : {std::size_t{20}, std::size_t{100}, std::size_t{500},
                                  std::size_t{1000}}) {
    const double dur = nodes <= 20 ? 60.0 : nodes <= 100 ? 30.0 : nodes <= 500 ? 12.0 : 8.0;
    for (const Protocol proto : {Protocol::kAodv, Protocol::kDsr}) {
      for (const AttackType attack :
           {AttackType::kNone, AttackType::kBlackHole, AttackType::kSybil,
            AttackType::kReplayStorm}) {
        cells.push_back(make_cell(nodes, proto, attack, /*secured=*/true, dur, seeds));
      }
      // Unsecured baseline (no attack) for the overhead comparison.
      cells.push_back(make_cell(nodes, proto, AttackType::kNone, /*secured=*/false, dur,
                                seeds));
    }
  }
  for (Cell& cell : cells) {
    cell.base.traffic_start_min = 1.0;
    cell.base.traffic_start_max = 3.0;
  }
  return cells;
}

bool same_metrics(const mccls::aodv::ScenarioResult& a, const mccls::aodv::ScenarioResult& b) {
  const auto& m = a.metrics;
  const auto& n = b.metrics;
  return m.data_sent == n.data_sent && m.data_delivered == n.data_delivered &&
         m.data_forwarded == n.data_forwarded && m.rreq_initiated == n.rreq_initiated &&
         m.rreq_forwarded == n.rreq_forwarded && m.rreq_retries == n.rreq_retries &&
         m.rrep_generated == n.rrep_generated && m.rrep_forwarded == n.rrep_forwarded &&
         m.rerr_sent == n.rerr_sent && m.attacker_dropped == n.attacker_dropped &&
         m.buffer_drops == n.buffer_drops && m.no_route_drops == n.no_route_drops &&
         m.link_fail_drops == n.link_fail_drops && m.auth_rejected == n.auth_rejected &&
         m.replay_rejected == n.replay_rejected && m.sign_ops == n.sign_ops &&
         m.verify_ops == n.verify_ops && m.total_delay == n.total_delay &&
         m.delay_samples == n.delay_samples &&
         a.channel.frames_transmitted == b.channel.frames_transmitted &&
         a.channel.frames_delivered == b.channel.frames_delivered &&
         a.channel.collisions == b.channel.collisions &&
         a.channel.random_losses == b.channel.random_losses &&
         a.channel.unicast_failures == b.channel.unicast_failures &&
         a.channel.queue_drops == b.channel.queue_drops &&
         a.channel.bytes_transmitted == b.channel.bytes_transmitted &&
         a.disconnected_placements == b.disconnected_placements;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--preset smoke|full] [--workers N] [--seeds N]\n"
               "          [--out FILE] [--check-determinism]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string preset = "smoke";
  std::string out = "SCEN_matrix.json";
  unsigned workers = std::max(1u, std::thread::hardware_concurrency());
  unsigned seeds = 0;  // 0 = preset default
  bool check_determinism = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--preset") {
      preset = need_value("--preset");
    } else if (arg == "--workers") {
      workers = static_cast<unsigned>(std::strtoul(need_value("--workers"), nullptr, 10));
    } else if (arg == "--seeds") {
      seeds = static_cast<unsigned>(std::strtoul(need_value("--seeds"), nullptr, 10));
    } else if (arg == "--out") {
      out = need_value("--out");
    } else if (arg == "--check-determinism") {
      check_determinism = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (workers < 1) workers = 1;

  std::vector<Cell> cells;
  if (preset == "smoke") {
    cells = smoke_preset(seeds == 0 ? 2 : seeds);
  } else if (preset == "full") {
    cells = full_preset(seeds == 0 ? 8 : seeds);
  } else {
    std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
    return usage(argv[0]);
  }

  std::size_t total_jobs = 0;
  for (const Cell& c : cells) total_jobs += c.seeds;
  std::printf("scenario_matrix: preset=%s cells=%zu jobs=%zu workers=%u\n", preset.c_str(),
              cells.size(), total_jobs, workers);

  const MatrixResult result = mccls::scen::run_matrix(cells, workers);

  if (check_determinism) {
    // The contract the whole design rests on: worker count must not change a
    // single bit of any per-seed result.
    std::printf("scenario_matrix: re-running serially for the determinism check...\n");
    const MatrixResult serial = mccls::scen::run_matrix(cells, 1);
    for (std::size_t c = 0; c < result.cells.size(); ++c) {
      for (std::size_t s = 0; s < result.cells[c].per_seed.size(); ++s) {
        if (!same_metrics(result.cells[c].per_seed[s], serial.cells[c].per_seed[s])) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: cell %s seed %zu differs between "
                       "%u-worker and serial runs\n",
                       result.cells[c].name.c_str(), s, workers);
          return 1;
        }
      }
    }
    std::printf("scenario_matrix: determinism check passed (%u workers vs serial)\n",
                workers);
  }

  std::vector<mccls::bench::BenchResult> entries;
  std::map<std::string, double> derived;
  for (const CellResult& cell : result.cells) {
    const auto& r = cell.pooled;
    const double loss = (1.0 - r.pdr()) * 1e6 + 1.0;
    const double delay_us = r.avg_delay() * 1e6 + 1.0;
    entries.push_back({cell.name + "_loss", r.metrics.data_sent, loss, loss, loss});
    entries.push_back({cell.name + "_delay", r.metrics.delay_samples, delay_us, delay_us,
                       delay_us});
    derived[cell.name + "_pdr"] = r.pdr();
    derived[cell.name + "_rreq_ratio"] = r.rreq_ratio();
    derived[cell.name + "_delay_s"] = r.avg_delay();
    derived[cell.name + "_drop_ratio"] = r.drop_ratio();
    derived[cell.name + "_disconnected"] =
        static_cast<double>(r.disconnected_placements);
    derived[cell.name + "_auth_rejected"] = static_cast<double>(r.metrics.auth_rejected);
    derived[cell.name + "_replay_rejected"] =
        static_cast<double>(r.metrics.replay_rejected);
    std::printf("  %-28s pdr=%.3f delay=%.4fs rreq=%.2f drop=%.3f auth_rej=%llu "
                "replay_rej=%llu disc=%llu\n",
                cell.name.c_str(), r.pdr(), r.avg_delay(), r.rreq_ratio(), r.drop_ratio(),
                static_cast<unsigned long long>(r.metrics.auth_rejected),
                static_cast<unsigned long long>(r.metrics.replay_rejected),
                static_cast<unsigned long long>(r.disconnected_placements));
  }
  return mccls::bench::write_bench_json(out, "scenario_matrix_" + preset, entries, derived)
             ? 0
             : 1;
}
