// qa_fuzz — command-line driver for the mccls_qa harness (src/qa).
//
// The same registry and seed contract as the tests/test_qa_* suites, so any
// failure printed by tier-1 reproduces here verbatim:
//
//   qa_fuzz                        run every registered property once
//   qa_fuzz --list                 list properties and fuzz targets
//   qa_fuzz --prop NAME            run one property
//   qa_fuzz --layer math|scheme|codec
//   qa_fuzz --seed N               root seed (decimal or 0x-hex)
//   qa_fuzz --iters N              iteration override for every property
//   qa_fuzz --soak S               time-budget mode: split S seconds across
//                                  the selected properties (MCCLS_QA_SOAK=S
//                                  is the environment equivalent)
//   qa_fuzz --fuzz TARGET|all      byte-mutation fuzz loop over decoder(s)
//   qa_fuzz --fuzz-iters N         mutations per fuzz target (default 2000)
//   qa_fuzz --minimize FILE --fuzz TARGET
//                                  shrink FILE while the decoder misbehaves,
//                                  write FILE.min
//   qa_fuzz --corpus DIR           replay a corpus directory
//   qa_fuzz --emit-corpus DIR      regenerate the built-in corpus findings
//
// Exit status: 0 = everything passed, 1 = any failure (or bad usage).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "crypto/encoding.hpp"
#include "qa/corpus.hpp"
#include "qa/fuzz.hpp"
#include "qa/property.hpp"

namespace {

using mccls::crypto::Bytes;
using mccls::qa::FuzzTarget;
using mccls::qa::Outcome;
using mccls::qa::Property;
using mccls::qa::RunConfig;

struct Options {
  RunConfig cfg = RunConfig::from_env();
  bool list = false;
  std::string prop;
  std::string layer;
  std::string fuzz_target;
  int fuzz_iters = 2000;
  std::string minimize_file;
  std::string corpus_dir;
  std::string emit_corpus_dir;
};

std::optional<std::uint64_t> parse_u64(const char* s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 0);
  if (end == s || *end != '\0') return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      opt.list = true;
    } else if (arg == "--prop") {
      const char* v = value();
      if (!v) return false;
      opt.prop = v;
    } else if (arg == "--layer") {
      const char* v = value();
      if (!v) return false;
      opt.layer = v;
    } else if (arg == "--seed") {
      const char* v = value();
      const auto parsed = v ? parse_u64(v) : std::nullopt;
      if (!parsed) return false;
      opt.cfg.seed = *parsed;
    } else if (arg == "--iters") {
      const char* v = value();
      const auto parsed = v ? parse_u64(v) : std::nullopt;
      if (!parsed) return false;
      opt.cfg.iterations = static_cast<int>(*parsed);
    } else if (arg == "--soak") {
      const char* v = value();
      const auto parsed = v ? parse_u64(v) : std::nullopt;
      if (!parsed) return false;
      opt.cfg.soak_seconds = static_cast<double>(*parsed);
    } else if (arg == "--fuzz") {
      const char* v = value();
      if (!v) return false;
      opt.fuzz_target = v;
    } else if (arg == "--fuzz-iters") {
      const char* v = value();
      const auto parsed = v ? parse_u64(v) : std::nullopt;
      if (!parsed) return false;
      opt.fuzz_iters = static_cast<int>(*parsed);
    } else if (arg == "--minimize") {
      const char* v = value();
      if (!v) return false;
      opt.minimize_file = v;
    } else if (arg == "--corpus") {
      const char* v = value();
      if (!v) return false;
      opt.corpus_dir = v;
    } else if (arg == "--emit-corpus") {
      const char* v = value();
      if (!v) return false;
      opt.emit_corpus_dir = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", std::string(arg).c_str());
      return false;
    }
  }
  return true;
}

void list_everything() {
  std::printf("properties (layer/name, tier-1 iters):\n");
  for (const Property& p : mccls::qa::registry()) {
    std::printf("  %-6s %-32s %d\n", p.layer.c_str(), p.name.c_str(),
                p.default_iterations);
  }
  std::printf("fuzz targets:\n");
  for (const FuzzTarget& t : mccls::qa::fuzz_targets()) {
    std::printf("  %s\n", t.name.c_str());
  }
}

std::vector<const Property*> select_properties(const Options& opt, bool& usage_error) {
  usage_error = false;
  if (!opt.prop.empty()) {
    const Property* p = mccls::qa::find_property(opt.prop);
    if (p == nullptr) {
      std::fprintf(stderr, "unknown property: %s (try --list)\n", opt.prop.c_str());
      usage_error = true;
      return {};
    }
    return {p};
  }
  if (!opt.layer.empty()) {
    auto selected = mccls::qa::properties_in_layer(opt.layer);
    if (selected.empty()) {
      std::fprintf(stderr, "no properties in layer: %s (try --list)\n", opt.layer.c_str());
      usage_error = true;
    }
    return selected;
  }
  std::vector<const Property*> all;
  for (const Property& p : mccls::qa::registry()) all.push_back(&p);
  return all;
}

int run_properties(const Options& opt) {
  bool usage_error = false;
  const auto selected = select_properties(opt, usage_error);
  if (usage_error) return 1;

  RunConfig cfg = opt.cfg;
  if (cfg.soak_seconds > 0 && !selected.empty()) {
    cfg.soak_seconds /= static_cast<double>(selected.size());  // per-property share
  }

  int failures = 0;
  for (const Property* p : selected) {
    const Outcome out = p->run(cfg);
    if (out.ok) {
      std::printf("ok   %-32s %d iterations\n", out.property.c_str(), out.iterations_run);
    } else {
      ++failures;
      std::printf("FAIL %s\n%s\n", out.property.c_str(), out.message().c_str());
    }
  }
  std::printf("%zu properties, %d failed (seed %llu)\n", selected.size(), failures,
              static_cast<unsigned long long>(opt.cfg.seed));
  return failures == 0 ? 0 : 1;
}

int run_fuzz(const Options& opt) {
  std::vector<const FuzzTarget*> targets;
  if (opt.fuzz_target == "all") {
    for (const FuzzTarget& t : mccls::qa::fuzz_targets()) targets.push_back(&t);
  } else {
    const FuzzTarget* t = mccls::qa::find_target(opt.fuzz_target);
    if (t == nullptr) {
      std::fprintf(stderr, "unknown fuzz target: %s (try --list)\n",
                   opt.fuzz_target.c_str());
      return 1;
    }
    targets.push_back(t);
  }

  int failures = 0;
  for (const FuzzTarget* target : targets) {
    // Same fork-by-name discipline as the property runner, so a fuzz finding
    // replays from (seed, target, i) independent of target order.
    const mccls::sim::Rng stream =
        mccls::sim::Rng(opt.cfg.seed).fork("fuzz:" + target->name);
    bool failed = false;
    for (int i = 0; i < opt.fuzz_iters && !failed; ++i) {
      mccls::sim::Rng rng = stream.fork(static_cast<std::uint64_t>(i));
      const Bytes valid = target->sample(rng);
      const Bytes mutated =
          mccls::qa::mutate_n(rng, valid, 1 + static_cast<int>(rng.uniform_int(3)));
      if (target->stable(mutated)) continue;

      failed = true;
      ++failures;
      const Bytes minimal = mccls::qa::minimize(
          mutated, [target](std::span<const std::uint8_t> b) { return !target->stable(b); });
      const std::string path = "qa_finding_" + target->name + ".bin";
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(minimal.data()),
                static_cast<std::streamsize>(minimal.size()));
      std::printf("FAIL %s iteration %d: decoder not stable\n  minimized (%zu bytes): %s\n"
                  "  written to %s\n  repro: qa_fuzz --fuzz %s --seed %llu\n",
                  target->name.c_str(), i, minimal.size(),
                  mccls::crypto::to_hex(minimal).c_str(), path.c_str(),
                  target->name.c_str(), static_cast<unsigned long long>(opt.cfg.seed));
    }
    if (!failed) {
      std::printf("ok   %-16s %d mutated inputs\n", target->name.c_str(), opt.fuzz_iters);
    }
  }
  return failures == 0 ? 0 : 1;
}

int run_minimize(const Options& opt) {
  if (opt.fuzz_target.empty() || opt.fuzz_target == "all") {
    std::fprintf(stderr, "--minimize needs --fuzz TARGET to name the decoder\n");
    return 1;
  }
  const FuzzTarget* target = mccls::qa::find_target(opt.fuzz_target);
  if (target == nullptr) {
    std::fprintf(stderr, "unknown fuzz target: %s\n", opt.fuzz_target.c_str());
    return 1;
  }
  std::ifstream in(opt.minimize_file, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", opt.minimize_file.c_str());
    return 1;
  }
  const Bytes input((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (target->stable(input)) {
    std::printf("input is already handled cleanly by %s; nothing to minimize\n",
                target->name.c_str());
    return 0;
  }
  const Bytes minimal = mccls::qa::minimize(
      input, [target](std::span<const std::uint8_t> b) { return !target->stable(b); });
  const std::string out_path = opt.minimize_file + ".min";
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(minimal.data()),
            static_cast<std::streamsize>(minimal.size()));
  std::printf("%zu -> %zu bytes: %s\n", input.size(), minimal.size(), out_path.c_str());
  return 0;
}

int run_corpus(const Options& opt) {
  const auto entries = mccls::qa::load_corpus(opt.corpus_dir);
  if (entries.empty()) {
    std::fprintf(stderr, "no corpus entries under %s\n", opt.corpus_dir.c_str());
    return 1;
  }
  int failures = 0;
  for (const auto& entry : entries) {
    const std::string error = mccls::qa::replay_entry(entry);
    if (error.empty()) {
      std::printf("ok   %s\n", entry.filename.c_str());
    } else {
      ++failures;
      std::printf("FAIL %s\n", error.c_str());
    }
  }
  std::printf("%zu corpus entries, %d failed\n", entries.size(), failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    std::fprintf(stderr, "usage: qa_fuzz [--list] [--prop NAME] [--layer L] [--seed N]\n"
                         "               [--iters N] [--soak S] [--fuzz TARGET|all]\n"
                         "               [--fuzz-iters N] [--minimize FILE --fuzz TARGET]\n"
                         "               [--corpus DIR] [--emit-corpus DIR]\n");
    return 1;
  }
  if (opt.list) {
    list_everything();
    return 0;
  }
  if (!opt.emit_corpus_dir.empty()) {
    const std::size_t n = mccls::qa::emit_builtin_corpus(opt.emit_corpus_dir);
    std::printf("wrote %zu corpus entries to %s\n", n, opt.emit_corpus_dir.c_str());
    return 0;
  }
  if (!opt.minimize_file.empty()) return run_minimize(opt);
  if (!opt.corpus_dir.empty()) return run_corpus(opt);
  if (!opt.fuzz_target.empty()) return run_fuzz(opt);
  return run_properties(opt);
}
