// Gate for the BENCH_*.json perf trajectory (see bench/bench_json.hpp).
//
//   bench_compare old.json new.json [--min-ratio R]
//       Compares matching result names across two runs; ratio is
//       old_median / new_median (>1 means `new` got faster). With
//       --min-ratio, exits 1 if any common op regressed below R.
//
//   bench_compare --gate file.json BASELINE CANDIDATE MIN_SPEEDUP
//       Asserts median(BASELINE) / median(CANDIDATE) >= MIN_SPEEDUP within
//       one file. This is how the ≥3× projective-pairing claim is enforced:
//         bench_compare --gate BENCH_pairing.json pair_affine pair_projective 3.0
//
//   bench_compare --gate-across OLD.json NEW.json BASELINE CANDIDATE MIN_SPEEDUP [SCALE]
//       Same assertion across two files: BASELINE is read from OLD.json
//       (typically a checked-in pre-PR baseline under bench/baselines/),
//       CANDIDATE from NEW.json, and the baseline median is multiplied by
//       SCALE (default 1) first. This is how the multi-pairing claim is
//       enforced — one k=4 product vs four pre-PR pair_projective calls:
//         bench_compare --gate-across bench/baselines/BENCH_pairing_seed.json
//             BENCH_pairing.json pair_projective multi_pair_k4 2.0 4
//
// The parser handles exactly the flat subset of JSON the bench writer
// emits; it is not a general JSON library.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

namespace {

struct BenchFile {
  std::string bench;
  std::map<std::string, double> median_ns;  // result name -> median
};

// Scans `src` from `pos` for the next quoted string; returns it and leaves
// `pos` just past the closing quote. No escape handling (the writer never
// emits escapes).
std::optional<std::string> next_string(const std::string& src, std::size_t& pos) {
  const std::size_t open = src.find('"', pos);
  if (open == std::string::npos) return std::nullopt;
  const std::size_t close = src.find('"', open + 1);
  if (close == std::string::npos) return std::nullopt;
  pos = close + 1;
  return src.substr(open + 1, close - open - 1);
}

// Reads the number following "key": within `obj`.
std::optional<double> number_field(const std::string& obj, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = obj.find(needle);
  if (at == std::string::npos) return std::nullopt;
  return std::strtod(obj.c_str() + at + needle.size(), nullptr);
}

std::optional<std::string> string_field(const std::string& obj, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  std::size_t at = obj.find(needle);
  if (at == std::string::npos) return std::nullopt;
  at += needle.size();
  return next_string(obj, at);
}

std::optional<BenchFile> load(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path);
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string src = buf.str();

  BenchFile out;
  if (const auto name = string_field(src, "bench")) out.bench = *name;

  // Walk the "results" array object by object.
  std::size_t pos = src.find("\"results\"");
  if (pos == std::string::npos) {
    std::fprintf(stderr, "bench_compare: %s has no \"results\" array\n", path);
    return std::nullopt;
  }
  const std::size_t end = src.find(']', pos);
  while (true) {
    const std::size_t open = src.find('{', pos);
    if (open == std::string::npos || open > end) break;
    const std::size_t close = src.find('}', open);
    if (close == std::string::npos) break;
    const std::string obj = src.substr(open, close - open + 1);
    const auto name = string_field(obj, "name");
    const auto median = number_field(obj, "median_ns");
    if (name && median) out.median_ns[*name] = *median;
    pos = close + 1;
  }
  if (out.median_ns.empty()) {
    std::fprintf(stderr, "bench_compare: %s contains no parsable results\n", path);
    return std::nullopt;
  }
  return out;
}

int gate_mode(int argc, char** argv) {
  if (argc != 6) {
    std::fprintf(stderr,
                 "usage: bench_compare --gate FILE BASELINE CANDIDATE MIN_SPEEDUP\n");
    return 2;
  }
  const auto file = load(argv[2]);
  if (!file) return 2;
  const auto base = file->median_ns.find(argv[3]);
  const auto cand = file->median_ns.find(argv[4]);
  if (base == file->median_ns.end() || cand == file->median_ns.end()) {
    std::fprintf(stderr, "bench_compare: %s or %s missing from %s\n", argv[3], argv[4],
                 argv[2]);
    return 2;
  }
  const double min_speedup = std::strtod(argv[5], nullptr);
  const double speedup = base->second / cand->second;
  std::printf("%s: %s %.1f ns -> %s %.1f ns = %.2fx (gate: >= %.2fx)\n",
              file->bench.c_str(), argv[3], base->second, argv[4], cand->second, speedup,
              min_speedup);
  if (speedup < min_speedup) {
    std::fprintf(stderr, "bench_compare: FAILED gate (%.2fx < %.2fx)\n", speedup,
                 min_speedup);
    return 1;
  }
  std::printf("bench_compare: gate passed\n");
  return 0;
}

int gate_across_mode(int argc, char** argv) {
  if (argc != 7 && argc != 8) {
    std::fprintf(stderr,
                 "usage: bench_compare --gate-across OLD.json NEW.json BASELINE "
                 "CANDIDATE MIN_SPEEDUP [SCALE]\n");
    return 2;
  }
  const auto old_file = load(argv[2]);
  const auto new_file = load(argv[3]);
  if (!old_file || !new_file) return 2;
  const auto base = old_file->median_ns.find(argv[4]);
  const auto cand = new_file->median_ns.find(argv[5]);
  if (base == old_file->median_ns.end()) {
    std::fprintf(stderr, "bench_compare: %s missing from %s\n", argv[4], argv[2]);
    return 2;
  }
  if (cand == new_file->median_ns.end()) {
    std::fprintf(stderr, "bench_compare: %s missing from %s\n", argv[5], argv[3]);
    return 2;
  }
  const double min_speedup = std::strtod(argv[6], nullptr);
  const double scale = argc == 8 ? std::strtod(argv[7], nullptr) : 1.0;
  if (min_speedup <= 0 || scale <= 0) {
    std::fprintf(stderr, "bench_compare: MIN_SPEEDUP and SCALE must be > 0\n");
    return 2;
  }
  const double speedup = base->second * scale / cand->second;
  std::printf("%s x%g (%s) %.1f ns -> %s (%s) %.1f ns = %.2fx (gate: >= %.2fx)\n",
              argv[4], scale, argv[2], base->second * scale, argv[5], argv[3],
              cand->second, speedup, min_speedup);
  if (speedup < min_speedup) {
    std::fprintf(stderr, "bench_compare: FAILED gate (%.2fx < %.2fx)\n", speedup,
                 min_speedup);
    return 1;
  }
  std::printf("bench_compare: gate passed\n");
  return 0;
}

int compare_mode(int argc, char** argv) {
  double min_ratio = 0;  // 0: report-only
  if (argc == 5 && std::strcmp(argv[3], "--min-ratio") == 0) {
    min_ratio = std::strtod(argv[4], nullptr);
  } else if (argc != 3) {
    std::fprintf(stderr, "usage: bench_compare OLD.json NEW.json [--min-ratio R]\n");
    return 2;
  }
  const auto before = load(argv[1]);
  const auto after = load(argv[2]);
  if (!before || !after) return 2;

  std::printf("%-26s %14s %14s %9s\n", "op", "old median_ns", "new median_ns", "ratio");
  bool failed = false;
  for (const auto& [name, old_median] : before->median_ns) {
    const auto it = after->median_ns.find(name);
    if (it == after->median_ns.end()) continue;
    const double ratio = old_median / it->second;
    std::printf("%-26s %14.1f %14.1f %8.2fx%s\n", name.c_str(), old_median, it->second,
                ratio, min_ratio > 0 && ratio < min_ratio ? "  <-- REGRESSION" : "");
    if (min_ratio > 0 && ratio < min_ratio) failed = true;
  }
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--gate") == 0) return gate_mode(argc, argv);
  if (argc >= 2 && std::strcmp(argv[1], "--gate-across") == 0) {
    return gate_across_mode(argc, argv);
  }
  return compare_mode(argc, argv);
}
