// Bilinearity, non-degeneracy and consistency properties of the modified
// Tate pairing — the security-critical substrate for every CLS scheme here.
#include "pairing/pairing.hpp"

#include <gtest/gtest.h>

#include "crypto/hash.hpp"

namespace mccls::pairing {
namespace {

using ec::G1;
using math::Fq;
using math::U256;

TEST(Pairing, NonDegenerate) {
  const Gt e = pair(G1::generator(), G1::generator());
  EXPECT_FALSE(e.is_one());
}

TEST(Pairing, InfinityMapsToOne) {
  EXPECT_TRUE(pair(G1::infinity(), G1::generator()).is_one());
  EXPECT_TRUE(pair(G1::generator(), G1::infinity()).is_one());
  EXPECT_TRUE(pair(G1::infinity(), G1::infinity()).is_one());
}

TEST(Pairing, OutputHasOrderDividingQ) {
  const Gt e = pair(G1::generator(), G1::generator());
  EXPECT_TRUE(e.pow(Fq::modulus()).is_one());
}

TEST(Pairing, OutputIsUnitary) {
  const Gt e = pair(G1::generator(), G1::generator());
  EXPECT_TRUE((e * e.inv()).is_one());
  EXPECT_EQ(e.inv().value(), e.value().conjugate());
}

TEST(Pairing, BilinearLeft) {
  const G1& g = G1::generator();
  const U256 a = U256::from_u64(31337);
  EXPECT_EQ(pair(g.mul(a), g), pair(g, g).pow(a));
}

TEST(Pairing, BilinearRight) {
  const G1& g = G1::generator();
  const U256 b = U256::from_u64(271828);
  EXPECT_EQ(pair(g, g.mul(b)), pair(g, g).pow(b));
}

TEST(Pairing, BilinearBoth) {
  const G1& g = G1::generator();
  const U256 a = U256::from_u64(1009);
  const U256 b = U256::from_u64(2003);
  EXPECT_EQ(pair(g.mul(a), g.mul(b)), pair(g, g).pow(U256::from_u64(1009 * 2003)));
}

TEST(Pairing, SymmetricOnSubgroup) {
  // With a distortion-map pairing on a single subgroup, ê(P,Q) == ê(Q,P).
  const G1& g = G1::generator();
  const G1 p = g.mul(U256::from_u64(777));
  const G1 q = g.mul(U256::from_u64(888));
  EXPECT_EQ(pair(p, q), pair(q, p));
}

TEST(Pairing, MultiplicativeInFirstArgument) {
  const G1& g = G1::generator();
  const G1 p1 = g.mul(U256::from_u64(11));
  const G1 p2 = g.mul(U256::from_u64(22));
  EXPECT_EQ(pair(p1 + p2, g), pair(p1, g) * pair(p2, g));
}

TEST(Pairing, MultiplicativeInSecondArgument) {
  const G1& g = G1::generator();
  const G1 q1 = g.mul(U256::from_u64(33));
  const G1 q2 = g.mul(U256::from_u64(44));
  EXPECT_EQ(pair(g, q1 + q2), pair(g, q1) * pair(g, q2));
}

TEST(Pairing, NegationInvertsValue) {
  const G1& g = G1::generator();
  const G1 p = g.mul(U256::from_u64(55));
  EXPECT_EQ(pair(p.neg(), g), pair(p, g).inv());
  EXPECT_EQ(pair(g, p.neg()), pair(g, p).inv());
}

TEST(Pairing, DiffieHellmanTupleCheck) {
  // The McCLS verifier's core operation: recognize (P, aP, bP, abP).
  const G1& g = G1::generator();
  const U256 a = U256::from_u64(123457);
  const U256 b = U256::from_u64(654321);
  const G1 aP = g.mul(a);
  const G1 bP = g.mul(b);
  const G1 abP = g.mul(a).mul(b);
  EXPECT_EQ(pair(aP, bP), pair(g, abP));
  const G1 not_abP = g.mul(U256::from_u64(999));
  EXPECT_NE(pair(aP, bP), pair(g, not_abP));
}

TEST(Pairing, BilinearOnIndependentHashedPoints) {
  // Points from the random oracle are not known multiples of each other;
  // bilinearity must hold regardless.
  const G1 p = crypto::hash_to_g1("pairing-test", crypto::as_bytes("left"));
  const G1 q = crypto::hash_to_g1("pairing-test", crypto::as_bytes("right"));
  EXPECT_FALSE(pair(p, q).is_one()) << "independent subgroup points pair non-trivially";
  const U256 a = U256::from_u64(9001);
  EXPECT_EQ(pair(p.mul(a), q), pair(p, q).pow(a));
  EXPECT_EQ(pair(p, q.mul(a)), pair(p, q).pow(a));
  EXPECT_EQ(pair(p, q), pair(q, p)) << "distortion-map pairing is symmetric";
}

TEST(Pairing, ProductOfPairingsMatchesPairingOfSum) {
  const G1 p = crypto::hash_to_g1("pairing-test", crypto::as_bytes("p"));
  const G1 q1 = crypto::hash_to_g1("pairing-test", crypto::as_bytes("q1"));
  const G1 q2 = crypto::hash_to_g1("pairing-test", crypto::as_bytes("q2"));
  EXPECT_EQ(pair(p, q1 + q2), pair(p, q1) * pair(p, q2));
}

TEST(Pairing, TwoTorsionTangentEdgeCase) {
  // Points with y == 0 are 2-torsion; pair() must handle the vertical
  // tangent gracefully (they are not in the order-q subgroup, so the result
  // is unconstrained, but the computation must not crash or divide by zero).
  // x = 0 gives y^2 = 0: the 2-torsion point (0, 0).
  const auto two_torsion = ec::G1::from_affine(math::Fp::zero(), math::Fp::zero());
  ASSERT_TRUE(two_torsion.has_value());
  const Gt result = pair(*two_torsion, G1::generator());
  (void)result;  // reaching here without throwing is the assertion
}

// Bilinearity sweep over pseudo-random scalar pairs, including large ones.
class PairingSweep : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint64_t>> {};

TEST_P(PairingSweep, ExponentLaw) {
  const auto [sa, sb] = GetParam();
  const G1& g = G1::generator();
  // Derive big scalars from the seeds.
  U256 a{{sa * 0x9e3779b97f4a7c15ULL, sa ^ 0xdeadbeef, sa + 17, sa >> 3}};
  U256 b{{sb * 0xbf58476d1ce4e5b9ULL, sb ^ 0xcafebabe, sb + 23, sb >> 5}};
  while (cmp(a, Fq::modulus()) >= 0) sub(a, a, Fq::modulus());
  while (cmp(b, Fq::modulus()) >= 0) sub(b, b, Fq::modulus());
  const Gt lhs = pair(g.mul(a), g.mul(b));
  const Fq ab = Fq::from_u256(a) * Fq::from_u256(b);
  const Gt rhs = pair(g, g).pow(ab.to_u256());
  EXPECT_EQ(lhs, rhs);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PairingSweep,
                         ::testing::Values(std::pair{1ULL, 2ULL}, std::pair{3ULL, 4ULL},
                                           std::pair{12345ULL, 9876ULL},
                                           std::pair{0xFFFFFFFFULL, 0x1234567ULL},
                                           std::pair{42ULL, 0xABCDEF12345ULL}));

}  // namespace
}  // namespace mccls::pairing
