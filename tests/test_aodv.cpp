// AODV protocol behaviour on controlled static topologies: discovery,
// delivery, route reuse, intermediate replies, retries, link breaks, RERR,
// and the secured variant's bookkeeping.
#include "aodv/agent.hpp"

#include <gtest/gtest.h>

#include "cls/mccls.hpp"

namespace mccls::aodv {
namespace {

/// Static-topology test network. Roles default to honest; when `security`
/// is set, honest nodes are enrolled and attackers are not.
struct Net {
  explicit Net(const std::vector<net::Vec2>& positions, SecurityProvider* security = nullptr,
               std::vector<AttackType> roles = {}, AodvConfig cfg = {})
      : mobility(positions), channel(simulator, sim::Rng(7), mobility, net::PhyConfig{}) {
    roles.resize(positions.size(), AttackType::kNone);
    for (std::size_t i = 0; i < positions.size(); ++i) {
      if (security != nullptr && roles[i] == AttackType::kNone) {
        security->enroll(static_cast<NodeId>(i));
      }
      agents.push_back(std::make_unique<AodvAgent>(simulator, channel,
                                                   static_cast<NodeId>(i), cfg,
                                                   sim::Rng(100 + i), metrics, security,
                                                   roles[i]));
    }
  }

  sim::Simulator simulator;
  net::StaticMobility mobility;
  net::Channel channel;
  Metrics metrics;
  std::vector<std::unique_ptr<AodvAgent>> agents;
};

/// A 4-node chain: 0 -(200m)- 1 -(200m)- 2 -(200m)- 3, radio range 250 m.
std::vector<net::Vec2> chain4() {
  return {{0, 0}, {200, 0}, {400, 0}, {600, 0}};
}

TEST(Aodv, DiscoversAndDeliversAcrossChain) {
  Net n(chain4());
  n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(3, 512); });
  n.simulator.run_until(10.0);
  EXPECT_EQ(n.metrics.data_sent, 1u);
  EXPECT_EQ(n.metrics.data_delivered, 1u);
  EXPECT_EQ(n.metrics.data_forwarded, 2u) << "two intermediate hops";
  EXPECT_EQ(n.metrics.rreq_initiated, 1u);
  EXPECT_GT(n.metrics.rreq_forwarded, 0u);
  EXPECT_GE(n.metrics.rrep_generated, 1u);
  EXPECT_GT(n.metrics.avg_end_to_end_delay(), 0.0);
}

TEST(Aodv, SecondPacketReusesRoute) {
  Net n(chain4());
  n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(3, 512); });
  n.simulator.schedule_at(3.0, [&] { n.agents[0]->send_data(3, 512); });
  n.simulator.run_until(10.0);
  EXPECT_EQ(n.metrics.data_delivered, 2u);
  EXPECT_EQ(n.metrics.rreq_initiated, 1u) << "route cached, no second discovery";
}

TEST(Aodv, ReverseRouteAllowsReplyTraffic) {
  Net n(chain4());
  n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(3, 512); });
  n.simulator.schedule_at(4.0, [&] { n.agents[3]->send_data(0, 512); });
  n.simulator.run_until(12.0);
  EXPECT_EQ(n.metrics.data_delivered, 2u);
}

TEST(Aodv, UnreachableDestinationExhaustsRetries) {
  Net n({{0, 0}, {200, 0}, {400, 0}, {5000, 0}});
  n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(3, 512); });
  n.simulator.run_until(30.0);
  EXPECT_EQ(n.metrics.data_delivered, 0u);
  EXPECT_EQ(n.metrics.rreq_initiated, 1u);
  EXPECT_EQ(n.metrics.rreq_retries, 2u) << "RREQ_RETRIES = 2 extra attempts";
  EXPECT_EQ(n.metrics.buffer_drops, 1u) << "the buffered packet is abandoned";
}

TEST(Aodv, IntermediateNodeAnswersFromCache) {
  Net n(chain4());
  n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(3, 512); });
  n.simulator.run_until(5.0);
  const auto rreps_before = n.metrics.rrep_generated;
  // Force node 0 to re-discover while node 1 still holds a fresh route.
  n.agents[0]->table().invalidate(3);
  n.simulator.schedule_at(5.5, [&] { n.agents[0]->send_data(3, 512); });
  n.simulator.run_until(10.0);
  EXPECT_EQ(n.metrics.data_delivered, 2u);
  EXPECT_GT(n.metrics.rrep_generated, rreps_before)
      << "someone (node 1 from cache, or node 3) answered the second discovery";
}

TEST(Aodv, LinkBreakTriggersRerrAndRediscovery) {
  Net n(chain4());
  for (int i = 0; i < 40; ++i) {
    n.simulator.schedule_at(1.0 + i * 0.5, [&] { n.agents[0]->send_data(3, 512); });
  }
  // At t = 8 s node 2 teleports away (1->2 link dies); at t = 12 s it returns.
  n.simulator.schedule_at(8.0, [&] { n.mobility.move(2, {400, 5000}); });
  n.simulator.schedule_at(12.0, [&] { n.mobility.move(2, {400, 0}); });
  n.simulator.run_until(30.0);
  EXPECT_GT(n.metrics.rerr_sent, 0u) << "link failure must be advertised";
  EXPECT_GT(n.metrics.link_fail_drops, 0u);
  EXPECT_GE(n.metrics.rreq_initiated, 2u) << "route re-discovered after repair";
  EXPECT_GT(n.metrics.data_delivered, 20u);
  EXPECT_LT(n.metrics.data_delivered, 40u);
}

TEST(Aodv, BufferHoldsPacketsDuringDiscovery) {
  Net n(chain4());
  n.simulator.schedule_at(1.0, [&] {
    for (int i = 0; i < 5; ++i) n.agents[0]->send_data(3, 512);
  });
  n.simulator.run_until(10.0);
  EXPECT_EQ(n.metrics.data_sent, 5u);
  EXPECT_EQ(n.metrics.data_delivered, 5u);
  EXPECT_EQ(n.metrics.rreq_initiated, 1u) << "one discovery serves the whole burst";
}

TEST(Aodv, BufferOverflowDropsOldest) {
  AodvConfig cfg;
  cfg.buffer_capacity = 3;
  // Destination unreachable: everything queues until the cap bites.
  Net n({{0, 0}, {5000, 0}}, nullptr, {}, cfg);
  n.simulator.schedule_at(1.0, [&] {
    for (int i = 0; i < 10; ++i) n.agents[0]->send_data(1, 512);
  });
  n.simulator.run_until(30.0);
  EXPECT_EQ(n.metrics.data_delivered, 0u);
  EXPECT_EQ(n.metrics.buffer_drops, 10u) << "7 overflowed + 3 abandoned";
}

TEST(Aodv, TwoNeighborsTalkDirectly) {
  Net n({{0, 0}, {100, 0}});
  n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(1, 256); });
  n.simulator.run_until(5.0);
  EXPECT_EQ(n.metrics.data_delivered, 1u);
  EXPECT_EQ(n.metrics.data_forwarded, 0u);
}

TEST(Aodv, RouteExpiryCausesRediscovery) {
  AodvConfig cfg;
  cfg.active_route_timeout = 2.0;
  Net n(chain4(), nullptr, {}, cfg);
  n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(3, 512); });
  // Long idle gap: the route must expire, the second packet re-discovers.
  n.simulator.schedule_at(10.0, [&] { n.agents[0]->send_data(3, 512); });
  n.simulator.run_until(20.0);
  EXPECT_EQ(n.metrics.data_delivered, 2u);
  EXPECT_EQ(n.metrics.rreq_initiated, 2u);
}

TEST(Aodv, GratuitousRrepPrimesTheDestination) {
  AodvConfig cfg;
  cfg.gratuitous_rrep = true;
  cfg.active_route_timeout = 30.0;
  Net n(chain4(), nullptr, {}, cfg);
  // Prime node 1 with a route to 3 via a full discovery by node 0.
  n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(3, 512); });
  n.simulator.run_until(5.0);
  // Force 0 to re-discover; node 1 answers from cache and (gratuitously)
  // tells node 3 how to reach node 0.
  n.agents[0]->table().invalidate(3);
  n.agents[3]->table().invalidate(0);
  n.simulator.schedule_at(5.5, [&] { n.agents[0]->send_data(3, 512); });
  n.simulator.run_until(9.0);
  const auto discoveries_before = n.metrics.rreq_initiated;
  // Reply traffic from 3 to 0 must need no discovery of its own.
  n.simulator.schedule_at(9.5, [&] { n.agents[3]->send_data(0, 512); });
  n.simulator.run_until(15.0);
  EXPECT_EQ(n.metrics.data_delivered, 3u);
  EXPECT_EQ(n.metrics.rreq_initiated, discoveries_before)
      << "gratuitous RREP should have installed 3's route to 0";
}

TEST(Aodv, ExpandingRingFindsNearbyDestinationCheaply) {
  AodvConfig cfg;
  cfg.expanding_ring = true;
  cfg.use_hello = false;  // beacons would pre-install the neighbour route
  Net n(chain4(), nullptr, {}, cfg);
  // Destination is the direct neighbour: a TTL-1 ring suffices, so distant
  // node 3 must never see the flood.
  n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(1, 512); });
  n.simulator.run_until(10.0);
  EXPECT_EQ(n.metrics.data_delivered, 1u);
  EXPECT_EQ(n.metrics.rreq_initiated, 1u);
  EXPECT_EQ(n.metrics.rreq_retries, 0u) << "first ring already contains the destination";
  EXPECT_EQ(n.metrics.rreq_forwarded, 0u) << "TTL 1 stops the flood at one hop";
}

TEST(Aodv, ExpandingRingEscalatesToFullFlood) {
  AodvConfig cfg;
  cfg.expanding_ring = true;
  cfg.use_hello = false;
  Net n(chain4(), nullptr, {}, cfg);
  // Destination is 3 hops away: rings TTL 1 and 3 then (possibly) a full
  // flood. The packet must still arrive, at the cost of ring retries.
  n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(3, 512); });
  n.simulator.run_until(15.0);
  EXPECT_EQ(n.metrics.data_delivered, 1u);
  EXPECT_GE(n.metrics.rreq_retries, 1u) << "TTL-1 ring cannot reach a 3-hop destination";
}

TEST(Aodv, ExpandingRingStillAbandonsUnreachable) {
  AodvConfig cfg;
  cfg.expanding_ring = true;
  Net n({{0, 0}, {5000, 0}}, nullptr, {}, cfg);
  n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(1, 512); });
  n.simulator.run_until(60.0);
  EXPECT_EQ(n.metrics.data_delivered, 0u);
  EXPECT_EQ(n.metrics.buffer_drops, 1u) << "discovery eventually gives up";
}

TEST(AodvSecured, ModeledSecurityDeliversAndCountsOps) {
  ModeledClsSecurity security(9, 98, 34);
  Net n(chain4(), &security);
  n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(3, 512); });
  n.simulator.run_until(10.0);
  EXPECT_EQ(n.metrics.data_delivered, 1u);
  EXPECT_GT(n.metrics.sign_ops, 0u);
  EXPECT_GT(n.metrics.verify_ops, 0u);
  EXPECT_EQ(n.metrics.auth_rejected, 0u) << "all participants enrolled";
}

TEST(AodvSecured, RealClsSecurityDeliversEndToEnd) {
  // Ground truth: actual McCLS signatures on every control packet.
  RealClsSecurity security("McCLS", 11);
  Net n(chain4(), &security);
  n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(3, 512); });
  n.simulator.run_until(10.0);
  EXPECT_EQ(n.metrics.data_delivered, 1u);
  EXPECT_EQ(n.metrics.auth_rejected, 0u);
}

TEST(AodvSecured, ModeledAndRealAgreeOnProtocolOutcome) {
  // Same topology, same seeds, same wire sizes, zero crypto latency: the two
  // providers must induce identical protocol-level results.
  auto run = [](SecurityProvider& provider) {
    Net n(chain4(), &provider);
    n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(3, 512); });
    n.simulator.schedule_at(2.0, [&] { n.agents[3]->send_data(0, 512); });
    n.simulator.run_until(15.0);
    return std::tuple{n.metrics.data_delivered, n.metrics.rreq_initiated,
                      n.metrics.rreq_forwarded, n.metrics.sign_ops, n.metrics.verify_ops};
  };
  RealClsSecurity real("McCLS", 11);
  const cls::Mccls mccls;
  ModeledClsSecurity modeled(11, mccls.signature_size(), 1 + ec::G1::kEncodedSize);
  EXPECT_EQ(run(real), run(modeled));
}

TEST(AodvSecured, CryptoLatencyAppearsInEndToEndDelay) {
  auto run_with_costs = [](const CryptoCosts& costs) {
    ModeledClsSecurity security(9, 98, 34);
    security.set_costs(costs);
    Net n(chain4(), &security);
    n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(3, 512); });
    n.simulator.run_until(20.0);
    EXPECT_EQ(n.metrics.data_delivered, 1u);
    return n.metrics.avg_end_to_end_delay();
  };
  const double fast = run_with_costs({.sign_delay = 0, .verify_delay = 0});
  const double slow = run_with_costs({.sign_delay = 0.004, .verify_delay = 0.022});
  EXPECT_GT(slow, fast) << "sign/verify CPU time must appear in end-to-end delay";
  EXPECT_GT(slow - fast, 0.02) << "several crypto ops sit on the discovery path";
}

TEST(AodvSecured, UnenrolledOriginatorIsIgnored) {
  // Node 0 holds no credentials: its RREQs die at the first honest hop.
  ModeledClsSecurity security(9, 98, 34);
  std::vector<net::Vec2> positions = chain4();
  Net n(positions, &security, {AttackType::kRushing});  // rushing ⇒ not enrolled
  n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(3, 512); });
  n.simulator.run_until(10.0);
  EXPECT_EQ(n.metrics.data_delivered, 0u);
  EXPECT_GT(n.metrics.auth_rejected, 0u);
}

}  // namespace
}  // namespace mccls::aodv
