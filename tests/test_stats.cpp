// Metrics arithmetic: the derived ratios behind every figure, plus
// accumulation across replications.
#include "aodv/stats.hpp"

#include <gtest/gtest.h>

namespace mccls::aodv {
namespace {

TEST(Metrics, EmptyMetricsYieldZeroRatios) {
  const Metrics m;
  EXPECT_EQ(m.packet_delivery_ratio(), 0.0);
  EXPECT_EQ(m.rreq_ratio(), 0.0);
  EXPECT_EQ(m.avg_end_to_end_delay(), 0.0);
  EXPECT_EQ(m.packet_drop_ratio(), 0.0);
}

TEST(Metrics, PacketDeliveryRatio) {
  Metrics m;
  m.data_sent = 200;
  m.data_delivered = 150;
  EXPECT_DOUBLE_EQ(m.packet_delivery_ratio(), 0.75);
}

TEST(Metrics, RreqRatioUsesPaperDefinition) {
  // "Ratio of the total number of RREQ initiated, forwarded and retried to
  // the total number of data packets sent as source and data packets
  // forwarded."
  Metrics m;
  m.rreq_initiated = 10;
  m.rreq_forwarded = 30;
  m.rreq_retries = 10;
  m.data_sent = 400;
  m.data_forwarded = 100;
  EXPECT_DOUBLE_EQ(m.rreq_ratio(), 50.0 / 500.0);
}

TEST(Metrics, AverageDelay) {
  Metrics m;
  m.total_delay = 3.0;
  m.delay_samples = 4;
  EXPECT_DOUBLE_EQ(m.avg_end_to_end_delay(), 0.75);
}

TEST(Metrics, DropRatioCountsAttackerDiscardsOnly) {
  Metrics m;
  m.data_sent = 100;
  m.attacker_dropped = 19;
  m.link_fail_drops = 7;  // must not enter the paper's drop ratio
  EXPECT_DOUBLE_EQ(m.packet_drop_ratio(), 0.19);
}

TEST(Metrics, AccumulationSumsEveryCounter) {
  Metrics a;
  a.data_sent = 1;
  a.data_delivered = 2;
  a.data_forwarded = 3;
  a.rreq_initiated = 4;
  a.rreq_forwarded = 5;
  a.rreq_retries = 6;
  a.rrep_generated = 7;
  a.rrep_forwarded = 8;
  a.rerr_sent = 9;
  a.attacker_dropped = 10;
  a.buffer_drops = 11;
  a.no_route_drops = 12;
  a.link_fail_drops = 13;
  a.auth_rejected = 14;
  a.sign_ops = 15;
  a.verify_ops = 16;
  a.total_delay = 1.5;
  a.delay_samples = 17;

  Metrics b = a;
  b += a;
  EXPECT_EQ(b.data_sent, 2u);
  EXPECT_EQ(b.data_delivered, 4u);
  EXPECT_EQ(b.data_forwarded, 6u);
  EXPECT_EQ(b.rreq_initiated, 8u);
  EXPECT_EQ(b.rreq_forwarded, 10u);
  EXPECT_EQ(b.rreq_retries, 12u);
  EXPECT_EQ(b.rrep_generated, 14u);
  EXPECT_EQ(b.rrep_forwarded, 16u);
  EXPECT_EQ(b.rerr_sent, 18u);
  EXPECT_EQ(b.attacker_dropped, 20u);
  EXPECT_EQ(b.buffer_drops, 22u);
  EXPECT_EQ(b.no_route_drops, 24u);
  EXPECT_EQ(b.link_fail_drops, 26u);
  EXPECT_EQ(b.auth_rejected, 28u);
  EXPECT_EQ(b.sign_ops, 30u);
  EXPECT_EQ(b.verify_ops, 32u);
  EXPECT_DOUBLE_EQ(b.total_delay, 3.0);
  EXPECT_EQ(b.delay_samples, 34u);
}

TEST(Metrics, AccumulatedRatiosAreWorkloadWeighted) {
  Metrics run1;
  run1.data_sent = 100;
  run1.data_delivered = 100;  // PDR 1.0
  Metrics run2;
  run2.data_sent = 300;
  run2.data_delivered = 0;  // PDR 0.0
  Metrics total = run1;
  total += run2;
  // Weighted by packets, not an average of the two ratios.
  EXPECT_DOUBLE_EQ(total.packet_delivery_ratio(), 0.25);
}

}  // namespace
}  // namespace mccls::aodv
