// FIPS 180-4 / NIST CAVP test vectors plus streaming-interface behaviour.
#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include "crypto/encoding.hpp"

namespace mccls::crypto {
namespace {

std::string hex_digest(std::string_view msg) { return to_hex(Sha256::digest(msg)); }

TEST(Sha256, EmptyMessage) {
  EXPECT_EQ(hex_digest(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_digest("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_digest("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes: padding spills into a second block.
  const std::string msg(64, 'x');
  EXPECT_EQ(hex_digest(msg), to_hex(Sha256::digest(msg)));
  // 55 and 56 bytes straddle the single-block padding limit.
  const std::string m55(55, 'y');
  const std::string m56(56, 'y');
  EXPECT_NE(hex_digest(m55), hex_digest(m56));
}

TEST(Sha256, StreamingMatchesOneShot) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly, across block "
      "boundaries of the compression function.";
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.update(std::string_view{msg}.substr(0, split));
    h.update(std::string_view{msg}.substr(split));
    EXPECT_EQ(h.finalize(), Sha256::digest(msg)) << "split=" << split;
  }
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update(std::string_view{"abc"});
  (void)h.finalize();
  h.reset();
  h.update(std::string_view{"abc"});
  EXPECT_EQ(to_hex(h.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, UseAfterFinalizeThrows) {
  Sha256 h;
  (void)h.finalize();
  EXPECT_THROW(h.update(std::string_view{"x"}), std::logic_error);
  EXPECT_THROW((void)h.finalize(), std::logic_error);
}

TEST(Sha256, DistinctMessagesDistinctDigests) {
  EXPECT_NE(hex_digest("message1"), hex_digest("message2"));
  EXPECT_NE(hex_digest("a"), hex_digest(std::string_view{"a\0", 2}));
}

class Sha256LengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256LengthSweep, StreamingEqualsOneShotAtEveryLength) {
  std::string msg(GetParam(), '\0');
  for (std::size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<char>(i * 31 + 7);
  Sha256 h;
  // Feed one byte at a time — worst case for the buffering logic.
  for (const char c : msg) h.update(std::string_view{&c, 1});
  EXPECT_EQ(h.finalize(), Sha256::digest(msg));
}

INSTANTIATE_TEST_SUITE_P(BoundarySweep, Sha256LengthSweep,
                         ::testing::Values(0, 1, 31, 32, 33, 55, 56, 57, 63, 64, 65, 119,
                                           127, 128, 129, 255));

}  // namespace
}  // namespace mccls::crypto
