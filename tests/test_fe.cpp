// Montgomery field arithmetic: fixed vectors cross-checked against an
// independent bignum implementation, plus parameterized algebraic-law sweeps.
#include "math/fe.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace mccls::math {
namespace {

const U256 kA = U256::from_hex("123456789abcdef0fedcba9876543210deadbeefcafebabe0123456789abcdef");
const U256 kB = U256::from_hex("0fedcba987654321123456789abcdef0cafebabedeadbeef9876543210fedcba");

TEST(Fp, KnownProduct) {
  const Fp a = Fp::from_u256(kA);
  const Fp b = Fp::from_u256(kB);
  EXPECT_EQ((a * b).to_u256(),
            U256::from_hex("344eebedadfdca9448e40f0d4f40999d8ca5b6dec7d0e8e3fd8edfae10eb9a94"));
}

TEST(Fp, KnownSum) {
  const Fp a = Fp::from_u256(kA);
  const Fp b = Fp::from_u256(kB);
  EXPECT_EQ((a + b).to_u256(),
            U256::from_hex("22222222222222121111111111111101a9ac79aea9ac79ad999999999aaaaaa9"));
}

TEST(Fp, KnownDifference) {
  const Fp a = Fp::from_u256(kA);
  const Fp b = Fp::from_u256(kB);
  EXPECT_EQ((a - b).to_u256(),
            U256::from_hex("2468acf13579bcfeca8641fdb97532013af0430ec50fbce68acf13578acf135"));
}

TEST(Fp, KnownInverse) {
  const Fp a = Fp::from_u256(kA);
  EXPECT_EQ(a.inv().to_u256(),
            U256::from_hex("2e44f5eb0eadd51136c896d4fb6fc3038dda0d851f85e7e213ded402507e280e"));
}

TEST(Fp, KnownPower) {
  const Fp a = Fp::from_u256(kA);
  EXPECT_EQ(a.pow(kB).to_u256(),
            U256::from_hex("151c19f92d5f5749af032ddc8d4ee4c247863a1b36095dabce3964848b459a6a"));
}

TEST(Fp, WideReduction) {
  const auto wide = U512::from_halves(kB, kA);  // value = kA * 2^256 + kB
  EXPECT_EQ(Fp::from_wide(wide).to_u256(),
            U256::from_hex("3665897843661dd37e7cbeaf70c85e671d115f3033e95e3cebc510abac998b95"));
}

TEST(Fq, KnownProduct) {
  const Fq a = Fq::from_u256(kA);
  const Fq b = Fq::from_u256(kB);
  EXPECT_EQ((a * b).to_u256(),
            U256::from_hex("5aff83ead59b122ad19478a76c65bfec2255b7005d67ea9da29d880042670a1"));
}

TEST(Fq, KnownInverse) {
  const Fq a = Fq::from_u256(kA);
  EXPECT_EQ(a.inv().to_u256(),
            U256::from_hex("4d31dc73da6a842aaae02c29c84b6ef4d331dc52b7e8f02447bda66d9d4de38"));
}

TEST(Fq, WideReduction) {
  const auto wide = U512::from_halves(kB, kA);
  EXPECT_EQ(Fq::from_wide(wide).to_u256(),
            U256::from_hex("b41fa5d42b3fddd47ef4eb2732408051a95028c2503ce641815da19ca34c713"));
}

TEST(Fp, IdentityElements) {
  const Fp a = Fp::from_u256(kA);
  EXPECT_EQ(a + Fp::zero(), a);
  EXPECT_EQ(a * Fp::one(), a);
  EXPECT_EQ(a * Fp::zero(), Fp::zero());
  EXPECT_EQ(a - a, Fp::zero());
  EXPECT_EQ(a + a.neg(), Fp::zero());
}

TEST(Fp, FromU64RoundTrip) {
  EXPECT_EQ(Fp::from_u64(0).to_u256(), U256::zero());
  EXPECT_EQ(Fp::from_u64(1).to_u256(), U256::one());
  EXPECT_EQ(Fp::from_u64(123456789).to_u256(), U256::from_u64(123456789));
}

TEST(Fp, FromU256ReducesModP) {
  // p + 5 should reduce to 5.
  U256 over;
  add(over, Fp::modulus(), U256::from_u64(5));
  EXPECT_EQ(Fp::from_u256(over).to_u256(), U256::from_u64(5));
  // 2^256 - 1 reduces correctly (more than 4x the modulus).
  const U256 max{{~0ULL, ~0ULL, ~0ULL, ~0ULL}};
  U256 expect = max;
  while (cmp(expect, Fp::modulus()) >= 0) sub(expect, expect, Fp::modulus());
  EXPECT_EQ(Fp::from_u256(max).to_u256(), expect);
}

TEST(Fp, FermatLittleTheorem) {
  U256 p_minus_1;
  sub(p_minus_1, Fp::modulus(), U256::one());
  const Fp a = Fp::from_u256(kA);
  EXPECT_EQ(a.pow(p_minus_1), Fp::one());
}

TEST(Fq, FermatLittleTheorem) {
  U256 q_minus_1;
  sub(q_minus_1, Fq::modulus(), U256::one());
  const Fq a = Fq::from_u256(kA);
  EXPECT_EQ(a.pow(q_minus_1), Fq::one());
}

TEST(Fp, PowEdgeCases) {
  const Fp a = Fp::from_u256(kA);
  EXPECT_EQ(a.pow(U256::zero()), Fp::one());
  EXPECT_EQ(a.pow(U256::one()), a);
  EXPECT_EQ(a.pow(U256::from_u64(2)), a.square());
  EXPECT_EQ(Fp::zero().pow(U256::from_u64(7)), Fp::zero());
}

TEST(Fp, InvThrowsOnZero) {
  EXPECT_THROW((void)Fp::zero().inv(), std::invalid_argument);
}

TEST(Fp, DblMatchesAdd) {
  const Fp a = Fp::from_u256(kA);
  EXPECT_EQ(a.dbl(), a + a);
}

// ---- Parameterized algebraic-law sweeps over pseudo-random triples ----

struct TripleSeed {
  std::uint64_t s;
};

class FpLaws : public ::testing::TestWithParam<TripleSeed> {
 protected:
  // Cheap deterministic value derivation (splitmix-style) for law sweeps.
  static U256 derive(std::uint64_t seed, std::uint64_t lane) {
    U256 out;
    std::uint64_t x = seed * 0x9e3779b97f4a7c15ULL + lane;
    for (auto& limb : out.w) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      limb = z ^ (z >> 31);
    }
    return out;
  }
};

TEST_P(FpLaws, RingAxiomsAndInverses) {
  const auto seed = GetParam().s;
  const Fp a = Fp::from_u256(derive(seed, 1));
  const Fp b = Fp::from_u256(derive(seed, 2));
  const Fp c = Fp::from_u256(derive(seed, 3));

  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a.square(), a * a);
  EXPECT_EQ((a - b) + b, a);
  if (!a.is_zero()) {
    EXPECT_EQ(a * a.inv(), Fp::one());
    // extgcd inverse agrees with Fermat inverse.
    U256 p_minus_2;
    sub(p_minus_2, Fp::modulus(), U256::from_u64(2));
    EXPECT_EQ(a.inv(), a.pow(p_minus_2));
  }
}

TEST_P(FpLaws, FqMirrorsTheSameLaws) {
  const auto seed = GetParam().s;
  const Fq a = Fq::from_u256(derive(seed, 4));
  const Fq b = Fq::from_u256(derive(seed, 5));
  const Fq c = Fq::from_u256(derive(seed, 6));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ((a * b) * c, a * (b * c));
  if (!a.is_zero()) {
    EXPECT_EQ(a * a.inv(), Fq::one());
  }
}

TEST_P(FpLaws, MontgomeryRoundTrip) {
  const auto seed = GetParam().s;
  U256 x = derive(seed, 7);
  while (cmp(x, Fp::modulus()) >= 0) sub(x, x, Fp::modulus());
  EXPECT_EQ(Fp::from_u256(x).to_u256(), x);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FpLaws,
                         ::testing::Values(TripleSeed{1}, TripleSeed{2}, TripleSeed{3},
                                           TripleSeed{5}, TripleSeed{8}, TripleSeed{13},
                                           TripleSeed{21}, TripleSeed{34}, TripleSeed{55},
                                           TripleSeed{89}, TripleSeed{144}, TripleSeed{233},
                                           TripleSeed{377}, TripleSeed{610}, TripleSeed{987},
                                           TripleSeed{1597}),
                         [](const auto& info) { return "seed" + std::to_string(info.param.s); });

}  // namespace
}  // namespace mccls::math
