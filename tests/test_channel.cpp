// Wireless channel + MAC model: range gating, queue serialization,
// collisions, unicast ACK/retry semantics, rushing-style zero backoff.
#include "net/channel.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mccls::net {
namespace {

struct Recorder : RadioListener {
  std::vector<Frame> frames;
  void on_frame(const Frame& frame) override { frames.push_back(frame); }
  [[nodiscard]] std::string text(std::size_t i) const {
    return std::any_cast<std::string>(frames.at(i).payload);
  }
};

struct Harness {
  explicit Harness(std::vector<Vec2> positions, PhyConfig cfg = {})
      : mobility(positions), channel(simulator, sim::Rng(99), mobility, cfg) {
    recorders.resize(positions.size());
    for (NodeId i = 0; i < recorders.size(); ++i) channel.attach(i, &recorders[i]);
  }
  sim::Simulator simulator;
  StaticMobility mobility;
  std::vector<Recorder> recorders;
  Channel channel;
};

TEST(Channel, BroadcastReachesNodesInRange) {
  Harness h({{0, 0}, {100, 0}, {240, 0}, {600, 0}});
  h.channel.broadcast(0, 64, std::string("hello"));
  h.simulator.run();
  EXPECT_EQ(h.recorders[1].frames.size(), 1u);
  EXPECT_EQ(h.recorders[2].frames.size(), 1u);
  EXPECT_EQ(h.recorders[3].frames.size(), 0u) << "600 m exceeds the 250 m range";
  EXPECT_EQ(h.recorders[0].frames.size(), 0u) << "sender does not hear itself";
  EXPECT_EQ(h.recorders[1].text(0), "hello");
}

TEST(Channel, UnicastDeliversOnlyToTarget) {
  Harness h({{0, 0}, {100, 0}, {120, 0}});
  bool delivered = false;
  h.channel.unicast(0, 1, 64, std::string("direct"), [&](bool ok) { delivered = ok; });
  h.simulator.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(h.recorders[1].frames.size(), 1u);
  EXPECT_EQ(h.recorders[2].frames.size(), 0u) << "in range but not addressed";
}

TEST(Channel, UnicastToOutOfRangeFails) {
  Harness h({{0, 0}, {1000, 0}});
  int result = -1;
  h.channel.unicast(0, 1, 64, std::string("x"), [&](bool ok) { result = ok ? 1 : 0; });
  h.simulator.run();
  EXPECT_EQ(result, 0);
  EXPECT_EQ(h.channel.stats().unicast_failures, 1u);
  EXPECT_EQ(h.recorders[1].frames.size(), 0u);
}

TEST(Channel, AirtimeScalesWithSize) {
  Harness h({{0, 0}, {10, 0}});
  EXPECT_GT(h.channel.airtime(1024), h.channel.airtime(64));
  // 512 bytes at 2 Mbps is ~2 ms plus fixed overhead.
  EXPECT_NEAR(h.channel.airtime(512), 0.0004 + 512 * 8 / 2e6, 1e-9);
}

TEST(Channel, TransmissionsSerializeThroughTheQueue) {
  Harness h({{0, 0}, {10, 0}});
  for (int i = 0; i < 5; ++i) h.channel.broadcast(0, 512, std::string("p") + std::to_string(i));
  h.simulator.run();
  ASSERT_EQ(h.recorders[1].frames.size(), 5u);
  // FIFO order preserved.
  for (int i = 0; i < 5; ++i) EXPECT_EQ(h.recorders[1].text(i), "p" + std::to_string(i));
  // Total elapsed time at least 5 airtimes.
  EXPECT_GE(h.simulator.now(), 5 * h.channel.airtime(512));
}

TEST(Channel, SimultaneousNeighborsCollideAtCommonReceiver) {
  // 0 and 2 both in range of 1 but far from each other (hidden terminals);
  // with zero backoff they transmit simultaneously and collide at 1.
  PhyConfig cfg;
  cfg.max_backoff = 0;  // force the overlap deterministically
  Harness h({{0, 0}, {200, 0}, {400, 0}}, cfg);
  h.channel.broadcast(0, 512, std::string("a"));
  h.channel.broadcast(2, 512, std::string("b"));
  h.simulator.run();
  EXPECT_EQ(h.recorders[1].frames.size(), 0u) << "both frames corrupted";
  EXPECT_GE(h.channel.stats().collisions, 2u);
}

TEST(Channel, BackoffAvoidsSomeCollisions) {
  // With random backoff enabled the two frames usually serialize.
  PhyConfig cfg;
  cfg.max_backoff = 0.05;  // much larger than the ~2.4 ms airtime
  Harness h({{0, 0}, {200, 0}, {400, 0}}, cfg);
  h.channel.broadcast(0, 512, std::string("a"));
  h.channel.broadcast(2, 512, std::string("b"));
  h.simulator.run();
  EXPECT_EQ(h.recorders[1].frames.size(), 2u);
}

TEST(Channel, CarrierSenseSerializesMutuallyAudibleSenders) {
  // Two nodes in range of each other queue frames simultaneously; carrier
  // sensing makes the second defer, so both frames get through (contrast
  // with the hidden-terminal case above, which cannot sense and collides).
  PhyConfig cfg;
  cfg.max_backoff = 0;
  Harness h({{0, 0}, {100, 0}}, cfg);
  h.channel.broadcast(0, 512, std::string("a"));
  h.channel.broadcast(1, 512, std::string("b"));
  h.simulator.run();
  EXPECT_EQ(h.recorders[0].frames.size(), 1u);
  EXPECT_EQ(h.recorders[1].frames.size(), 1u);
}

TEST(Channel, RandomLossDropsFrames) {
  PhyConfig cfg;
  cfg.loss_prob = 1.0;
  Harness h({{0, 0}, {100, 0}}, cfg);
  h.channel.broadcast(0, 64, std::string("x"));
  h.simulator.run();
  EXPECT_EQ(h.recorders[1].frames.size(), 0u);
  EXPECT_EQ(h.channel.stats().random_losses, 1u);
}

TEST(Channel, UnicastRetriesUntilSuccessWindow) {
  // Target out of range: all MAC retries burn, one failure reported.
  PhyConfig cfg;
  cfg.mac_retries = 3;
  Harness h({{0, 0}, {1000, 0}}, cfg);
  int failures = 0;
  h.channel.unicast(0, 1, 64, std::string("x"), [&](bool ok) {
    if (!ok) ++failures;
  });
  h.simulator.run();
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(h.channel.stats().frames_transmitted, 3u) << "one per MAC attempt";
}

TEST(Channel, ZeroBackoffTransmitsFirst) {
  // The rushing primitive: with zero backoff, node 2's copy reaches the
  // common receiver before node 0's even when queued later.
  PhyConfig cfg;
  cfg.max_backoff = 0.01;
  Harness h({{0, 0}, {200, 100}, {200, -100}}, cfg);
  // Make node 1 the observer; 0 and 2 both in range of 1, far enough apart
  // that ordering depends on backoff only. Use differing payload sizes so
  // receptions don't overlap (collision-free check of ordering).
  h.channel.set_zero_backoff(2, true);
  sim::Rng trials(5);
  h.channel.broadcast(0, 64, std::string("honest"));
  h.channel.broadcast(2, 64, std::string("rushed"));
  h.simulator.run();
  ASSERT_GE(h.recorders[1].frames.size(), 1u);
  EXPECT_EQ(h.recorders[1].text(0), "rushed");
}

TEST(Channel, StatsAccumulate) {
  Harness h({{0, 0}, {50, 0}});
  h.channel.broadcast(0, 100, std::string("a"));
  h.channel.broadcast(0, 100, std::string("b"));
  h.simulator.run();
  EXPECT_EQ(h.channel.stats().frames_transmitted, 2u);
  EXPECT_EQ(h.channel.stats().frames_delivered, 2u);
  EXPECT_EQ(h.channel.stats().bytes_transmitted, 200u);
}

TEST(Channel, NodeDistanceTracksMobility) {
  Harness h({{0, 0}, {30, 40}});
  EXPECT_DOUBLE_EQ(h.channel.node_distance(0, 1), 50.0);
  h.mobility.move(1, {0, 0});
  EXPECT_DOUBLE_EQ(h.channel.node_distance(0, 1), 0.0);
}

TEST(Channel, PromiscuousListenerOverhearsUnicast) {
  Harness h({{0, 0}, {100, 0}, {150, 50}});
  h.channel.set_promiscuous(2, true);
  h.channel.unicast(0, 1, 64, std::string("secret"));
  h.simulator.run();
  EXPECT_EQ(h.recorders[1].frames.size(), 1u) << "addressed receiver";
  ASSERT_EQ(h.recorders[2].frames.size(), 1u) << "eavesdropper overhears";
  EXPECT_EQ(h.recorders[2].frames[0].to, 1u) << "frame metadata intact";
  EXPECT_EQ(h.recorders[2].text(0), "secret");
}

TEST(Channel, NonPromiscuousNodesDoNotOverhear) {
  Harness h({{0, 0}, {100, 0}, {150, 50}});
  h.channel.unicast(0, 1, 64, std::string("x"));
  h.simulator.run();
  EXPECT_EQ(h.recorders[2].frames.size(), 0u);
}

TEST(Channel, SpoofedBroadcastClaimsForeignSource) {
  // The wormhole replay primitive: node 2 transmits, receivers see "node 0".
  Harness h({{1000, 0}, {100, 0}, {200, 0}});
  h.channel.broadcast_as(2, /*claimed_from=*/0, 64, std::string("replayed"));
  h.simulator.run();
  ASSERT_EQ(h.recorders[1].frames.size(), 1u)
      << "delivered by node 2's geometry (node 0 is 900 m away)";
  EXPECT_EQ(h.recorders[1].frames[0].from, 0u) << "source appears as node 0";
}

TEST(Channel, QueueLimitDropsTail) {
  PhyConfig cfg;
  cfg.queue_limit = 3;
  Harness h({{0, 0}, {100, 0}}, cfg);
  for (int i = 0; i < 10; ++i) h.channel.broadcast(0, 512, std::string("p"));
  h.simulator.run();
  EXPECT_EQ(h.recorders[1].frames.size(), 3u);
  EXPECT_EQ(h.channel.stats().queue_drops, 7u);
}

TEST(Channel, AttachRejectsNull) {
  Harness h({{0, 0}});
  EXPECT_THROW(h.channel.attach(5, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace mccls::net
