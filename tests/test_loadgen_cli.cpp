// CLI-contract tests for verifyd_loadgen, driven through the real binary
// (path injected by CMake as MCCLS_LOADGEN_BIN). Two contracts:
//
//   * fault injection (--fault / --fault-rate / --stall-ms) is rejected in
//     combination with --tcp / --connect, with the usage exit code 2 — the
//     fault pipeline lives in front of the in-process resolver, and over TCP
//     injected directory faults would be re-labelled as transport
//     backpressure (see the loadgen's file comment);
//
//   * --vouchers at --fault-rate 1.0 is the offline acceptance shape: every
//     by-identity request for a pre-vouched signer answers from the cached
//     voucher chain, so the metrics JSON must show zero unavailable (and
//     zero unknown-signer) verdicts through the total directory outage.
//     This is the assertion the nightly fault-soak round scripts against.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

int run_loadgen(const std::string& args) {
  const std::string cmd =
      std::string(MCCLS_LOADGEN_BIN) + " " + args + " > /dev/null 2>&1";
  const int raw = std::system(cmd.c_str());
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

/// Value of a `"name": 123.0000` counter in the BENCH-schema JSON dump, or
/// -1 when the key is missing (every assertion below treats that as failure).
double counter_value(const std::string& json, const std::string& name) {
  const std::string key = "\"" + name + "\"";
  const auto pos = json.find(key);
  if (pos == std::string::npos) return -1.0;
  const auto colon = json.find(':', pos + key.size());
  if (colon == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + colon + 1, nullptr);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(LoadgenCli, RejectsFaultInjectionOverTcp) {
  // Every spelling of fault mode, against both TCP transports, exits with
  // the usage code before any work happens.
  EXPECT_EQ(run_loadgen("--fault --tcp"), 2);
  EXPECT_EQ(run_loadgen("--fault-rate 0.5 --tcp"), 2);
  EXPECT_EQ(run_loadgen("--stall-ms 5 --tcp"), 2);
  EXPECT_EQ(run_loadgen("--fault --connect 127.0.0.1:9"), 2);
  EXPECT_EQ(run_loadgen("--fault-rate 1.0 --connect 127.0.0.1:9"), 2);
}

TEST(LoadgenCli, FaultAloneAndTcpAloneStayAccepted) {
  EXPECT_EQ(run_loadgen("--requests 16 --signers 2 --workers 2 --producers 1 "
                        "--byid-pct 100 --fault-rate 0.25"),
            0);
  EXPECT_EQ(run_loadgen("--requests 16 --signers 2 --workers 2 --producers 1 "
                        "--tcp --connections 2 --pipeline 4"),
            0);
}

TEST(LoadgenCli, VouchersAnswerATotalOutageWithZeroUnavailable) {
  const std::string json_path = testing::TempDir() + "loadgen_vouchers.json";
  ASSERT_EQ(run_loadgen("--requests 24 --signers 3 --workers 2 --producers 2 "
                        "--byid-pct 100 --fault-rate 1.0 --vouchers --json " +
                        json_path),
            0);
  const std::string json = slurp(json_path);
  ASSERT_FALSE(json.empty());
  EXPECT_DOUBLE_EQ(counter_value(json, "unavailable"), 0.0);
  EXPECT_DOUBLE_EQ(counter_value(json, "unknown_signer"), 0.0);
  EXPECT_DOUBLE_EQ(counter_value(json, "verified"), 24.0);
  EXPECT_GT(counter_value(json, "voucher_hits"), 0.0);
  EXPECT_DOUBLE_EQ(counter_value(json, "voucher_bad_sig"), 0.0);
}

TEST(LoadgenCli, WithoutVouchersTheSameOutageStarvesByIdentity) {
  // Control run: identical knobs minus --vouchers must show the starvation
  // the voucher layer exists to remove (nothing verifies by identity, the
  // unavailable counter carries the whole corpus).
  const std::string json_path = testing::TempDir() + "loadgen_outage.json";
  ASSERT_EQ(run_loadgen("--requests 24 --signers 3 --workers 2 --producers 2 "
                        "--byid-pct 100 --fault-rate 1.0 --json " +
                        json_path),
            0);
  const std::string json = slurp(json_path);
  ASSERT_FALSE(json.empty());
  EXPECT_DOUBLE_EQ(counter_value(json, "verified"), 0.0);
  EXPECT_DOUBLE_EQ(counter_value(json, "unavailable"), 24.0);
}

}  // namespace
