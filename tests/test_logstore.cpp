// The segmented per-shard log store (kgc/logstore): append/recover ordering
// at shard granularity, segment rotation and sealing, torn-tail and bit-rot
// truncation inside the active segment, per-shard compaction folding, the
// replication read paths (read_tail / read_snapshot_chunk / install_snapshot),
// and — via fork()ed children killed at each injected CompactionPhase — the
// guarantee that a crash at any point inside compact_shard loses nothing.
#include "kgc/logstore.hpp"

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "ec/g1.hpp"

namespace mccls::kgc {
namespace {

namespace fs = std::filesystem;
using crypto::Bytes;
using ::testing::ElementsAre;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("logstore_" + name);
  fs::remove_all(dir);
  return dir.string();
}

Bytes sample_pk_bytes() {
  const auto g = ec::G1::generator().to_bytes();
  Bytes pk{0x01};
  pk.insert(pk.end(), g.begin(), g.end());
  return pk;
}

WalRecord sample_enroll(const std::string& id, cls::Epoch epoch = 3) {
  return WalRecord{.type = WalRecordType::kEnroll,
                   .epoch = epoch,
                   .id = id,
                   .pk_bytes = sample_pk_bytes()};
}

LogStoreConfig config_for(const std::string& dir, std::size_t shards = 2,
                          std::size_t segment_bytes = 1 << 20) {
  return LogStoreConfig{
      .dir = dir, .shards = shards, .fsync = false, .segment_bytes = segment_bytes};
}

/// Path of the shard's active (highest-base) segment file.
fs::path active_segment(const LogStore& store, std::size_t shard) {
  fs::path best;
  std::uint64_t best_base = 0;
  for (const auto& file : fs::directory_iterator(store.shard_dir(shard))) {
    const std::string name = file.path().filename().string();
    if (name.rfind("seg-", 0) != 0) continue;
    const std::uint64_t base = std::stoull(name.substr(4));
    if (base >= best_base) {
      best_base = base;
      best = file.path();
    }
  }
  return best;
}

// ------------------------------------------------------------ basic replay

TEST(LogStore, AppendThenRecoverReplaysEachShardInOrder) {
  const std::string dir = fresh_dir("replay");
  {
    LogStore store(config_for(dir));
    (void)store.recover(nullptr, nullptr);
    EXPECT_EQ(store.append(0, sample_enroll("alice", 1)), 1u);
    EXPECT_EQ(store.append(1, sample_enroll("bob", 2)), 1u);
    EXPECT_EQ(store.append(0, WalRecord{.type = WalRecordType::kRevoke, .epoch = 2,
                                        .id = "alice"}),
              2u);
    EXPECT_EQ(store.shard_sequence(0), 2u);
    EXPECT_EQ(store.shard_sequence(1), 1u);
    EXPECT_EQ(store.total_sequence(), 3u);
  }
  LogStore store(config_for(dir));
  std::map<std::size_t, std::vector<std::string>> seen;
  const RecoveryReport report =
      store.recover(nullptr, [&](std::size_t shard, const WalRecord& r) {
        seen[shard].push_back(r.id + (r.type == WalRecordType::kRevoke ? "!" : ""));
      });
  EXPECT_EQ(report.wal_records, 3u);
  EXPECT_EQ(report.torn_bytes, 0u);
  EXPECT_FALSE(report.snapshot_corrupt);
  EXPECT_THAT(seen[0], ElementsAre("alice", "alice!"));
  EXPECT_THAT(seen[1], ElementsAre("bob"));
  EXPECT_EQ(store.total_sequence(), 3u);
}

TEST(LogStore, RotatesSealsAndRecoversAcrossManySegments) {
  const std::string dir = fresh_dir("rotate");
  {
    // segment_bytes=1: every append overflows the active segment, so each
    // record seals a segment behind it.
    LogStore store(config_for(dir, 1, 1));
    (void)store.recover(nullptr, nullptr);
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE(store.append(0, sample_enroll("u" + std::to_string(i))).has_value());
    }
    EXPECT_GT(store.segment_count(0), 4u) << "tiny segments must rotate";
  }
  LogStore store(config_for(dir, 1, 1));
  std::vector<std::string> seen;
  (void)store.recover(nullptr,
                      [&](std::size_t, const WalRecord& r) { seen.push_back(r.id); });
  EXPECT_THAT(seen, ElementsAre("u0", "u1", "u2", "u3", "u4", "u5", "u6", "u7"));
  EXPECT_EQ(store.shard_sequence(0), 8u);
  // The log stays append-able after a multi-segment recovery.
  EXPECT_EQ(store.append(0, sample_enroll("u8")), 9u);
}

// ----------------------------------------------------- torn tails / bit rot

TEST(LogStore, TruncatesATornTailAndKeepsAppending) {
  const std::string dir = fresh_dir("torn");
  fs::path active;
  {
    LogStore store(config_for(dir, 1));
    (void)store.recover(nullptr, nullptr);
    EXPECT_TRUE(store.append(0, sample_enroll("alice")).has_value());
    EXPECT_TRUE(store.append(0, sample_enroll("bob")).has_value());
    active = active_segment(store, 0);
  }
  // Crash mid-append: half of a valid frame lands at the end of the active
  // segment file.
  const Bytes partial = frame_payload(encode_wal_record(sample_enroll("carol")));
  {
    std::ofstream seg(active, std::ios::binary | std::ios::app);
    seg.write(reinterpret_cast<const char*>(partial.data()),
              static_cast<std::streamsize>(partial.size() / 2));
  }
  const auto size_before = fs::file_size(active);

  LogStore store(config_for(dir, 1));
  std::vector<std::string> seen;
  const RecoveryReport report = store.recover(
      nullptr, [&](std::size_t, const WalRecord& r) { seen.push_back(r.id); });
  EXPECT_THAT(seen, ElementsAre("alice", "bob"));
  EXPECT_EQ(report.torn_bytes, partial.size() / 2);
  EXPECT_EQ(fs::file_size(active), size_before - partial.size() / 2)
      << "the torn tail must be truncated in place";

  EXPECT_EQ(store.append(0, sample_enroll("dave")), 3u);
  LogStore reopened(config_for(dir, 1));
  seen.clear();
  (void)reopened.recover(nullptr,
                         [&](std::size_t, const WalRecord& r) { seen.push_back(r.id); });
  EXPECT_THAT(seen, ElementsAre("alice", "bob", "dave"));
}

TEST(LogStore, TreatsAFlippedBitAsEndOfLog) {
  const std::string dir = fresh_dir("bitrot");
  fs::path active;
  {
    LogStore store(config_for(dir, 1));
    (void)store.recover(nullptr, nullptr);
    EXPECT_TRUE(store.append(0, sample_enroll("alice")).has_value());
    EXPECT_TRUE(store.append(0, sample_enroll("bob")).has_value());
    active = active_segment(store, 0);
  }
  {  // flip one payload bit inside the second record
    std::fstream seg(active, std::ios::binary | std::ios::in | std::ios::out);
    seg.seekg(0, std::ios::end);
    const auto size = static_cast<std::size_t>(seg.tellg());
    char byte;
    seg.seekg(static_cast<std::streamoff>(size - 3));
    seg.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    seg.seekp(static_cast<std::streamoff>(size - 3));
    seg.write(&byte, 1);
  }
  LogStore store(config_for(dir, 1));
  std::vector<std::string> seen;
  const RecoveryReport report = store.recover(
      nullptr, [&](std::size_t, const WalRecord& r) { seen.push_back(r.id); });
  EXPECT_THAT(seen, ElementsAre("alice"));
  EXPECT_GT(report.torn_bytes, 0u);
}

// -------------------------------------------------------------- compaction

TEST(LogStore, CompactionFoldsOneShardAndLeavesTheOtherAlone) {
  const std::string dir = fresh_dir("compact");
  {
    LogStore store(config_for(dir, 2, 1));
    (void)store.recover(nullptr, nullptr);
    EXPECT_TRUE(store.append(0, sample_enroll("alice", 1)).has_value());
    EXPECT_TRUE(store.append(0, sample_enroll("bob", 1)).has_value());
    EXPECT_TRUE(store.append(1, sample_enroll("carol", 1)).has_value());
    EXPECT_TRUE(store.compact_shard(
        0, {SnapshotEntry{.id = "alice", .pk_bytes = sample_pk_bytes(), .enrolled_epoch = 1},
            SnapshotEntry{.id = "bob", .pk_bytes = sample_pk_bytes(), .enrolled_epoch = 1}}));
    EXPECT_EQ(store.oldest_on_disk(0), 3u) << "both records folded";
    EXPECT_EQ(store.oldest_on_disk(1), 1u) << "shard 1 untouched";
    // Post-compaction mutations land in the fresh segment.
    EXPECT_EQ(store.append(0, sample_enroll("dave", 2)), 3u);
  }
  LogStore store(config_for(dir, 2, 1));
  std::map<std::size_t, std::vector<std::string>> entries, records;
  const RecoveryReport report = store.recover(
      [&](std::size_t s, const SnapshotEntry& e) { entries[s].push_back(e.id); },
      [&](std::size_t s, const WalRecord& r) { records[s].push_back(r.id); });
  EXPECT_THAT(entries[0], ElementsAre("alice", "bob"));
  EXPECT_THAT(records[0], ElementsAre("dave"));
  EXPECT_THAT(records[1], ElementsAre("carol"));
  EXPECT_EQ(report.snapshot_entries, 2u);
  EXPECT_EQ(store.shard_sequence(0), 3u)
      << "sequence resumes at applied_seq + replayed records";
}

TEST(LogStore, SurvivesACorruptShardSnapshotByFallingBackToTheSegments) {
  const std::string dir = fresh_dir("badsnap");
  {
    LogStore store(config_for(dir, 1));
    (void)store.recover(nullptr, nullptr);
    EXPECT_TRUE(store.append(0, sample_enroll("alice")).has_value());
  }
  {  // garbage where the shard snapshot should be
    std::ofstream snap(fs::path(dir) / "shard-0" / "snapshot.bin",
                       std::ios::binary | std::ios::trunc);
    snap << "not a snapshot";
  }
  LogStore store(config_for(dir, 1));
  std::vector<std::string> seen;
  const RecoveryReport report = store.recover(
      nullptr, [&](std::size_t, const WalRecord& r) { seen.push_back(r.id); });
  EXPECT_TRUE(report.snapshot_corrupt);
  EXPECT_THAT(seen, ElementsAre("alice"));
}

// ------------------------------------------------------- replication reads

TEST(LogStore, ReadTailServesRangesAcrossSegmentsAndRefusesCompactedOnes) {
  const std::string dir = fresh_dir("tail");
  LogStore store(config_for(dir, 1, 1));  // rotate on every append
  (void)store.recover(nullptr, nullptr);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(store.append(0, sample_enroll("u" + std::to_string(i))).has_value());
  }
  // Full tail, spanning every sealed segment plus the active one.
  auto tail = store.read_tail(0, 1, 100);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->first_seq, 1u);
  EXPECT_TRUE(tail->caught_up);
  ASSERT_EQ(tail->records.size(), 6u);
  EXPECT_EQ(tail->records[5].id, "u5");
  // A bounded read is not caught up.
  tail = store.read_tail(0, 2, 3);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->first_seq, 2u);
  EXPECT_FALSE(tail->caught_up);
  ASSERT_EQ(tail->records.size(), 3u);
  EXPECT_EQ(tail->records[0].id, "u1");
  // One past the end: an empty caught-up batch (the live-tailing idle case).
  tail = store.read_tail(0, 7, 10);
  ASSERT_TRUE(tail.has_value());
  EXPECT_TRUE(tail->records.empty());
  EXPECT_TRUE(tail->caught_up);
  // Beyond that, and sequence 0, are refused.
  EXPECT_FALSE(store.read_tail(0, 8, 10).has_value());
  EXPECT_FALSE(store.read_tail(0, 0, 10).has_value());

  // After compaction the folded range is gone: a replica asking for it must
  // be redirected to snapshot bootstrap.
  ASSERT_TRUE(store.compact_shard(
      0, {SnapshotEntry{.id = "u0", .pk_bytes = sample_pk_bytes(), .enrolled_epoch = 3}}));
  EXPECT_FALSE(store.read_tail(0, 3, 10).has_value());
  ASSERT_TRUE(store.append(0, sample_enroll("u6")).has_value());
  tail = store.read_tail(0, 7, 10);
  ASSERT_TRUE(tail.has_value());
  ASSERT_EQ(tail->records.size(), 1u);
  EXPECT_EQ(tail->records[0].id, "u6");
}

TEST(LogStore, SnapshotChunksPageAndInstallSnapshotAdoptsTheSequence) {
  const std::string dir = fresh_dir("chunks");
  LogStore store(config_for(dir, 1));
  (void)store.recover(nullptr, nullptr);
  // A shard that never compacted: empty chunk, applied_seq 0.
  auto chunk = store.read_snapshot_chunk(0, 0, 10);
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(chunk->applied_seq, 0u);
  EXPECT_EQ(chunk->total, 0u);

  std::vector<SnapshotEntry> entries;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(store.append(0, sample_enroll("u" + std::to_string(i))).has_value());
    entries.push_back(SnapshotEntry{.id = "u" + std::to_string(i),
                                    .pk_bytes = sample_pk_bytes(),
                                    .enrolled_epoch = 3});
  }
  ASSERT_TRUE(store.compact_shard(0, entries));
  chunk = store.read_snapshot_chunk(0, 3, 2);
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(chunk->applied_seq, 5u);
  EXPECT_EQ(chunk->total, 5u);
  ASSERT_EQ(chunk->entries.size(), 2u);
  EXPECT_EQ(chunk->entries[0].id, "u3");

  // A replica installing that snapshot adopts its fold point as its own
  // sequence and keeps appending from there.
  const std::string replica_dir = fresh_dir("chunks_replica");
  LogStore replica(config_for(replica_dir, 1));
  (void)replica.recover(nullptr, nullptr);
  ASSERT_TRUE(replica.install_snapshot(0, entries, 5));
  EXPECT_EQ(replica.shard_sequence(0), 5u);
  EXPECT_EQ(replica.append(0, sample_enroll("u5")), 6u);
  LogStore reopened(config_for(replica_dir, 1));
  std::vector<std::string> ids;
  (void)reopened.recover(
      [&](std::size_t, const SnapshotEntry& e) { ids.push_back(e.id + "="); },
      [&](std::size_t, const WalRecord& r) { ids.push_back(r.id); });
  EXPECT_THAT(ids, ElementsAre("u0=", "u1=", "u2=", "u3=", "u4=", "u5"));
}

// ------------------------------------------- crash-mid-compaction recovery

/// Runs a child that builds a store, then compacts shard 0 with a hook that
/// _exit(0)s at `victim` — modelling kill -9 at that exact phase — and
/// asserts the reopened store still replays every acknowledged record.
void crash_at(CompactionPhase victim, const std::string& tag) {
  const std::string dir = fresh_dir(tag);
  // Parent builds the pre-crash state so the child only runs the compaction.
  std::vector<SnapshotEntry> entries;
  {
    LogStore store(config_for(dir, 1, 1));
    (void)store.recover(nullptr, nullptr);
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(store.append(0, sample_enroll("u" + std::to_string(i), 1)).has_value());
      entries.push_back(SnapshotEntry{.id = "u" + std::to_string(i),
                                      .pk_bytes = sample_pk_bytes(),
                                      .enrolled_epoch = 1});
    }
  }
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    LogStore store(config_for(dir, 1, 1));
    (void)store.recover(nullptr, nullptr);
    store.set_compaction_hook([victim](std::size_t, CompactionPhase phase) {
      if (phase == victim) _exit(0);
    });
    (void)store.compact_shard(0, entries);
    _exit(1);  // the hook must have fired
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0) << "child must die inside compact_shard";

  // Reboot: every acknowledged record is still there, exactly once, in
  // order, no matter which phase the kill landed on.
  LogStore store(config_for(dir, 1, 1));
  std::vector<std::string> ids;
  const RecoveryReport report = store.recover(
      [&](std::size_t, const SnapshotEntry& e) { ids.push_back(e.id); },
      [&](std::size_t, const WalRecord& r) { ids.push_back(r.id); });
  EXPECT_FALSE(report.snapshot_corrupt);
  EXPECT_THAT(ids, ElementsAre("u0", "u1", "u2", "u3", "u4", "u5"));
  EXPECT_EQ(store.shard_sequence(0), 6u);
  EXPECT_EQ(store.append(0, sample_enroll("u6", 2)), 7u);
}

TEST(LogStoreCrash, KilledBeforeTheSnapshotRenameLosesNothing) {
  crash_at(CompactionPhase::kBeforeSnapshotRename, "crash_pre_rename");
}

TEST(LogStoreCrash, KilledAfterTheSnapshotRenameLosesNothing) {
  crash_at(CompactionPhase::kAfterSnapshotRename, "crash_post_rename");
}

TEST(LogStoreCrash, KilledMidSegmentDeletionLosesNothing) {
  crash_at(CompactionPhase::kAfterFirstUnlink, "crash_mid_unlink");
}

}  // namespace
}  // namespace mccls::kgc
