// Cross-scheme behavioural contract: every scheme in the registry (the four
// rows of Table 1) must satisfy the same sign/verify properties. Runs as a
// parameterized suite so a new scheme gets the full battery for free.
#include <gtest/gtest.h>

#include "cls/registry.hpp"

namespace mccls::cls {
namespace {

crypto::Bytes msg(std::string_view s) {
  return crypto::Bytes(crypto::as_bytes(s).begin(), crypto::as_bytes(s).end());
}

class AllSchemes : public ::testing::TestWithParam<std::string_view> {
 protected:
  void SetUp() override {
    scheme_ = make_scheme(GetParam());
    ASSERT_NE(scheme_, nullptr);
    alice_ = scheme_->enroll(kgc_, "alice", rng_);
    bob_ = scheme_->enroll(kgc_, "bob", rng_);
  }

  crypto::HmacDrbg rng_{std::uint64_t{77}};
  Kgc kgc_ = Kgc::setup(rng_);
  std::unique_ptr<Scheme> scheme_;
  UserKeys alice_;
  UserKeys bob_;
};

TEST_P(AllSchemes, SignVerifyRoundTrip) {
  const auto m = msg("table 1 row");
  const auto sig = scheme_->sign(kgc_.params(), alice_, m, rng_);
  EXPECT_EQ(sig.size(), scheme_->signature_size());
  EXPECT_TRUE(scheme_->verify(kgc_.params(), "alice", alice_.public_key, m, sig));
}

TEST_P(AllSchemes, RejectsTamperedMessage) {
  const auto sig = scheme_->sign(kgc_.params(), alice_, msg("payload"), rng_);
  EXPECT_FALSE(scheme_->verify(kgc_.params(), "alice", alice_.public_key, msg("payloae"), sig));
}

TEST_P(AllSchemes, RejectsCrossIdentity) {
  const auto m = msg("payload");
  const auto sig = scheme_->sign(kgc_.params(), alice_, m, rng_);
  EXPECT_FALSE(scheme_->verify(kgc_.params(), "bob", alice_.public_key, m, sig));
  EXPECT_FALSE(scheme_->verify(kgc_.params(), "bob", bob_.public_key, m, sig));
}

TEST_P(AllSchemes, RejectsCrossKey) {
  const auto m = msg("payload");
  const auto sig = scheme_->sign(kgc_.params(), alice_, m, rng_);
  EXPECT_FALSE(scheme_->verify(kgc_.params(), "alice", bob_.public_key, m, sig));
}

TEST_P(AllSchemes, RejectsEveryByteFlip) {
  const auto m = msg("exhaustive flip");
  const auto sig = scheme_->sign(kgc_.params(), alice_, m, rng_);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    auto corrupted = sig;
    corrupted[i] ^= 0xFF;
    EXPECT_FALSE(scheme_->verify(kgc_.params(), "alice", alice_.public_key, m, corrupted))
        << scheme_->name() << ": byte " << i;
  }
}

TEST_P(AllSchemes, RejectsWrongLength) {
  const auto m = msg("len");
  auto sig = scheme_->sign(kgc_.params(), alice_, m, rng_);
  sig.pop_back();
  EXPECT_FALSE(scheme_->verify(kgc_.params(), "alice", alice_.public_key, m, sig));
  EXPECT_FALSE(scheme_->verify(kgc_.params(), "alice", alice_.public_key, m, {}));
}

TEST_P(AllSchemes, RejectsWrongKeyShape) {
  const auto m = msg("shape");
  const auto sig = scheme_->sign(kgc_.params(), alice_, m, rng_);
  PublicKey wrong_shape;
  // Give AP one point, everyone else two.
  wrong_shape.points.assign(scheme_->costs().public_key_points == 2 ? 1 : 2,
                            kgc_.params().p_pub);
  EXPECT_FALSE(scheme_->verify(kgc_.params(), "alice", wrong_shape, m, sig));
}

TEST_P(AllSchemes, DistinctMessagesDistinctSignatures) {
  const auto s1 = scheme_->sign(kgc_.params(), alice_, msg("m1"), rng_);
  const auto s2 = scheme_->sign(kgc_.params(), alice_, msg("m2"), rng_);
  EXPECT_NE(s1, s2);
}

TEST_P(AllSchemes, VerifyWithSharedPairingCache) {
  PairingCache cache;
  const auto m = msg("cache");
  const auto sig = scheme_->sign(kgc_.params(), alice_, m, rng_);
  const bool plain = scheme_->verify(kgc_.params(), "alice", alice_.public_key, m, sig);
  const bool cached = scheme_->verify(kgc_.params(), "alice", alice_.public_key, m, sig, &cache);
  EXPECT_EQ(plain, cached);
  EXPECT_TRUE(plain);
}

TEST_P(AllSchemes, ManyMessagesRoundTrip) {
  for (int i = 0; i < 8; ++i) {
    crypto::ByteWriter w;
    w.put_u32(static_cast<std::uint32_t>(i));
    const auto m = w.take();
    const auto sig = scheme_->sign(kgc_.params(), alice_, m, rng_);
    EXPECT_TRUE(scheme_->verify(kgc_.params(), "alice", alice_.public_key, m, sig)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Table1, AllSchemes,
                         ::testing::Values("AP", "ZWXF", "YHG", "McCLS"),
                         [](const auto& info) { return std::string(info.param); });

TEST(Registry, KnowsAllTable1Schemes) {
  const auto names = scheme_names();
  ASSERT_EQ(names.size(), 4u);
  for (const auto name : names) {
    const auto scheme = make_scheme(name);
    ASSERT_NE(scheme, nullptr) << name;
    EXPECT_EQ(scheme->name(), name);
  }
  EXPECT_EQ(make_scheme("nonexistent"), nullptr);
}

TEST(Registry, Table1CostOrderingHolds) {
  // The paper's headline comparison: McCLS has the fewest verify pairings.
  const auto ap = make_scheme("AP");
  const auto zwxf = make_scheme("ZWXF");
  const auto yhg = make_scheme("YHG");
  const auto mccls = make_scheme("McCLS");
  const int ap_total = ap->costs().sign_pairings + ap->costs().verify_pairings;
  const int zwxf_total = zwxf->costs().sign_pairings + zwxf->costs().verify_pairings;
  const int yhg_total = yhg->costs().sign_pairings + yhg->costs().verify_pairings;
  const int mccls_total = mccls->costs().sign_pairings + mccls->costs().verify_pairings;
  EXPECT_GT(ap_total, zwxf_total);
  EXPECT_GT(zwxf_total, yhg_total);
  EXPECT_GT(yhg_total, mccls_total);
  EXPECT_EQ(mccls_total, 1);
  EXPECT_EQ(mccls->costs().sign_pairings, 0) << "signature phase must be pairing-free";
}

}  // namespace
}  // namespace mccls::cls
