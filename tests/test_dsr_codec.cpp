// DSR wire codec: round trips and hardened decoding.
#include "dsr/dsr_codec.hpp"

#include <gtest/gtest.h>

namespace mccls::dsr {
namespace {

AuthExt sample_auth(NodeId signer) {
  AuthExt a;
  a.signer = signer;
  a.public_key = crypto::Bytes(34, 0x5A);
  a.signature = crypto::Bytes(98, 0xA5);
  return a;
}

template <typename T>
T roundtrip(const T& msg) {
  const auto bytes = encode_packet(DsrPayload{msg});
  const auto decoded = decode_packet(bytes);
  EXPECT_TRUE(decoded.has_value());
  const T* out = std::get_if<T>(&decoded->msg);
  EXPECT_NE(out, nullptr);
  return *out;
}

TEST(DsrCodec, RreqRoundTrip) {
  DsrRreq m{.request_id = 3, .origin = 1, .target = 9, .route = {2, 4, 6}, .ttl = 20};
  m.origin_auth = sample_auth(1);
  m.hop_auth = sample_auth(6);
  const DsrRreq out = roundtrip(m);
  EXPECT_EQ(out.request_id, m.request_id);
  EXPECT_EQ(out.origin, m.origin);
  EXPECT_EQ(out.target, m.target);
  EXPECT_EQ(out.route, m.route);
  EXPECT_EQ(out.ttl, m.ttl);
  ASSERT_TRUE(out.origin_auth && out.hop_auth);
  EXPECT_EQ(out.hop_auth->signer, 6u);
}

TEST(DsrCodec, RrepRoundTrip) {
  DsrRrep m{.request_id = 3, .origin = 1, .target = 9, .route = {2, 4}, .hop_index = 2};
  m.origin_auth = sample_auth(9);
  const DsrRrep out = roundtrip(m);
  EXPECT_EQ(out.route, m.route);
  EXPECT_EQ(out.hop_index, 2);
  EXPECT_TRUE(out.origin_auth.has_value());
  EXPECT_FALSE(out.hop_auth.has_value());
}

TEST(DsrCodec, RerrAndDataRoundTrip) {
  const DsrRerr rerr_out = roundtrip(DsrRerr{.reporter = 5, .broken_from = 5, .broken_to = 7});
  EXPECT_EQ(rerr_out.broken_to, 7u);
  DsrData data{.src = 1, .dst = 9, .seq = 44, .sent_at = 12.5,
               .payload_bytes = 512, .route = {3, 5}, .hop_index = 1};
  const DsrData data_out = roundtrip(data);
  EXPECT_EQ(data_out.route, data.route);
  EXPECT_EQ(data_out.hop_index, 1);
  EXPECT_NEAR(data_out.sent_at, 12.5, 1e-5);
}

TEST(DsrCodec, EmptyRouteRoundTrips) {
  const DsrRreq out = roundtrip(DsrRreq{.request_id = 1, .origin = 2, .target = 3});
  EXPECT_TRUE(out.route.empty());
}

TEST(DsrCodec, RejectsMalformed) {
  EXPECT_FALSE(decode_packet({}).has_value());
  EXPECT_FALSE(decode_packet(crypto::Bytes{0x7F}).has_value());
  // Truncations of a valid packet all fail.
  const auto bytes =
      encode_packet(DsrPayload{DsrRreq{.request_id = 1, .origin = 2, .target = 3,
                                       .route = {4, 5}}});
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(decode_packet({bytes.data(), bytes.size() - cut}).has_value());
  }
  // Trailing garbage.
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(decode_packet(padded).has_value());
}

TEST(DsrCodec, RejectsAbsurdRouteLength) {
  crypto::ByteWriter w;
  w.put_u8(0x11);  // RREQ
  w.put_u32(1);
  w.put_u32(2);
  w.put_u32(3);
  w.put_u8(30);
  w.put_u32(0xFFFF);  // claims a 65k-relay route
  EXPECT_FALSE(decode_packet(w.bytes()).has_value());
}

TEST(DsrCodec, RejectsHopIndexBeyondRoute) {
  DsrRrep m{.request_id = 1, .origin = 2, .target = 3, .route = {4}, .hop_index = 1};
  auto bytes = encode_packet(DsrPayload{m});
  // hop_index is the byte right after the three u32s + tag.
  bytes[1 + 12] = 9;  // hop_index 9 > route size 1
  EXPECT_FALSE(decode_packet(bytes).has_value());
}

}  // namespace
}  // namespace mccls::dsr
