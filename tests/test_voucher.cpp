// Voucher-chain conformance suite (tier-1 label: voucher).
//
// Covers, in order: codec totality, signature binding (every tampered field
// rejects), chain-depth limits, expiry boundaries (not-before in the
// future, exactly-at-expiry, u64 edges), epoch policy, cross-domain trust
// anchors, kgcd issuance (enroll-time + vouch op, WAL-backed serials that
// survive reboots), and THE acceptance scenario — a VoucherVerifyingResolver
// in front of the resilient pipeline keeps verifying pre-vouched signers
// with zero kUnavailable verdicts through a 100% directory outage, while
// revoked epochs still answer kUnknownSigner and unvouched signers degrade
// to the honest transient outcome.
#include "kgc/voucher.hpp"

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cls/mccls.hpp"
#include "kgc/kgcd.hpp"
#include "svc/service.hpp"

namespace mccls::kgc {
namespace {

namespace fs = std::filesystem;
using crypto::Bytes;
constexpr std::uint64_t kU64Max = std::numeric_limits<std::uint64_t>::max();

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("voucher_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// Shared key material plus a test-controlled clock: every daemon and
// resolver in a case reads the same atomic, so expiry is deterministic.
struct VoucherFixture {
  crypto::HmacDrbg rng{std::uint64_t{0x70C4E8}};
  cls::Kgc kgc = cls::Kgc::setup(rng);
  cls::Mccls scheme;
  std::atomic<std::uint64_t> clock{1'000};

  std::function<std::uint64_t()> clock_fn() {
    return [this] { return clock.load(std::memory_order_relaxed); };
  }

  std::unique_ptr<Kgcd> boot(const std::string& dir, KgcdConfig config = {}) {
    config.data_dir = dir;
    config.fsync = false;
    if (!config.now) config.now = clock_fn();
    return std::make_unique<Kgcd>(kgc.master_key_for_tests(), std::move(config));
  }

  struct Enrolled {
    cls::UserKeys keys;
    Bytes pk_bytes;
    VoucherChain voucher;
  };
  Enrolled enroll_user(Kgcd& daemon, const std::string& id) {
    const math::Fq x = rng.next_nonzero_fq();
    const cls::PublicKey pk = scheme.derive_public(kgc.params(), x);
    const Bytes pk_bytes = pk.to_bytes();
    const auto outcome = daemon.enroll(id, pk_bytes);
    EXPECT_EQ(outcome.status, KgcStatus::kOk) << id;
    return Enrolled{.keys = cls::UserKeys{.id = outcome.scoped_id,
                                          .partial_key = outcome.partial_key,
                                          .secret = x,
                                          .public_key = pk},
                    .pk_bytes = pk_bytes,
                    .voucher = outcome.voucher};
  }

  /// A standalone issuer (no daemon) for pure chain-layer cases.
  VoucherIssuer issuer(const std::string& name) {
    return VoucherIssuer(kgc.master_key_for_tests(), name);
  }

  /// A distinct KGC domain with its own master key.
  VoucherIssuer foreign_issuer(const std::string& name) {
    return VoucherIssuer(rng.next_nonzero_fq(), name);
  }

  Bytes some_pk_bytes() {
    return scheme.derive_public(kgc.params(), rng.next_nonzero_fq()).to_bytes();
  }
};

struct ResponseSink {
  std::mutex mutex;
  std::condition_variable cv;
  std::map<std::uint64_t, svc::Status> statuses;
  std::size_t count = 0;

  svc::VerifyService::Completion completion() {
    return [this](const svc::VerifyResponse& response) {
      std::lock_guard lock(mutex);
      statuses[response.request_id] = response.status;
      ++count;
      cv.notify_all();
    };
  }
  bool wait_for(std::size_t n, std::chrono::seconds timeout = std::chrono::seconds(60)) {
    std::unique_lock lock(mutex);
    return cv.wait_for(lock, timeout, [&] { return count >= n; });
  }
};

// ------------------------------------------------------------------ codec

TEST(VoucherCodec, RoundTripsAndRejectsNonCanonicalInput) {
  VoucherFixture f;
  const auto issuer = f.issuer("root");
  const Voucher v =
      issuer.issue("alice@epoch-3", f.some_pk_bytes(), 3, 100, 200, 42);

  const Bytes encoded = encode_voucher(v);
  const auto decoded = decode_voucher(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, v);

  // Truncations at every byte boundary reject (totality).
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    EXPECT_FALSE(decode_voucher(std::span(encoded.data(), cut)).has_value())
        << "truncated at " << cut;
  }
  // Trailing garbage rejects.
  Bytes trailing = encoded;
  trailing.push_back(0x00);
  EXPECT_FALSE(decode_voucher(trailing).has_value());
  // Unknown version rejects.
  Bytes bad_version = encoded;
  bad_version[0] = kVoucherVersion + 1;
  EXPECT_FALSE(decode_voucher(bad_version).has_value());
  // A signature field that is not an on-curve point rejects at decode.
  Bytes bad_sig = encoded;
  bad_sig[bad_sig.size() - ec::G1::kEncodedSize] = 0x07;  // invalid tag
  EXPECT_FALSE(decode_voucher(bad_sig).has_value());

  // Zero-length identities reject: craft a voucher with an empty subject.
  Voucher empty_subject = v;
  empty_subject.subject.clear();
  EXPECT_FALSE(decode_voucher(encode_voucher(empty_subject)).has_value());
  Voucher empty_issuer = v;
  empty_issuer.issuer.clear();
  EXPECT_FALSE(decode_voucher(encode_voucher(empty_issuer)).has_value());
  Voucher empty_pk = v;
  empty_pk.pk_bytes.clear();
  EXPECT_FALSE(decode_voucher(encode_voucher(empty_pk)).has_value());
}

TEST(VoucherCodec, ChainRoundTripsAndCapsDepth) {
  VoucherFixture f;
  const auto root = f.issuer("root");
  const auto domain = f.foreign_issuer("domain");
  const Voucher mid = root.vouch_for_issuer(domain, 100, 200, 1);
  const Voucher leaf =
      domain.issue("alice@epoch-0", f.some_pk_bytes(), 0, 100, 200, 2);

  for (const VoucherChain& chain : {VoucherChain{leaf}, VoucherChain{leaf, mid}}) {
    const auto decoded = decode_voucher_chain(encode_voucher_chain(chain));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, chain);
  }

  EXPECT_FALSE(decode_voucher_chain(encode_voucher_chain({})).has_value())
      << "empty chains reject";
  EXPECT_FALSE(
      decode_voucher_chain(encode_voucher_chain({leaf, mid, mid})).has_value())
      << "depth 3 exceeds the cap";
  Bytes truncated = encode_voucher_chain({leaf, mid});
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(decode_voucher_chain(truncated).has_value());
}

// -------------------------------------------------------------- signature

TEST(VoucherSignature, BindsEveryFieldOfThePreimage) {
  VoucherFixture f;
  const auto issuer = f.issuer("root");
  const Voucher v =
      issuer.issue("alice@epoch-7", f.some_pk_bytes(), 7, 1'000, 2'000, 9);
  ASSERT_TRUE(verify_voucher_signature(v, issuer.public_key()));

  // Tampering with any signed field kills the binding.
  auto tampered = [&](auto mutate) {
    Voucher copy = v;
    mutate(copy);
    return verify_voucher_signature(copy, issuer.public_key());
  };
  EXPECT_FALSE(tampered([](Voucher& c) { c.issuer = "toor"; }));
  EXPECT_FALSE(tampered([](Voucher& c) { c.subject = "mallory@epoch-7"; }));
  EXPECT_FALSE(tampered([](Voucher& c) { c.pk_bytes[1] ^= 0x01; }));
  EXPECT_FALSE(tampered([](Voucher& c) { c.epoch = 8; }));
  EXPECT_FALSE(tampered([](Voucher& c) { c.not_before = 999; }));
  EXPECT_FALSE(tampered([](Voucher& c) { c.not_after = 2'001; }));
  EXPECT_FALSE(tampered([](Voucher& c) { c.serial = 10; }));
  EXPECT_FALSE(
      tampered([](Voucher& c) { c.signature = c.signature + ec::G1::generator(); }));

  // The wrong issuer key rejects, and degenerate keys are never accepted.
  EXPECT_FALSE(verify_voucher_signature(v, f.foreign_issuer("x").public_key()));
  EXPECT_FALSE(verify_voucher_signature(v, ec::G1::infinity()));
  Voucher inf_sig = v;
  inf_sig.signature = ec::G1::infinity();
  EXPECT_FALSE(verify_voucher_signature(inf_sig, issuer.public_key()));
}

// ----------------------------------------------------- chain verification

TEST(VoucherChainCheck, DepthLimitsAndLinkStructure) {
  VoucherFixture f;
  const auto root = f.issuer("root");
  const auto domain = f.foreign_issuer("domain");
  TrustAnchors anchors;
  ASSERT_TRUE(anchors.add("root", root.public_key()));

  const Bytes pk = f.some_pk_bytes();
  const Voucher mid = root.vouch_for_issuer(domain, 100, 200, 1);
  const Voucher leaf = domain.issue("alice@epoch-0", pk, 0, 100, 200, 2);

  EXPECT_EQ(verify_voucher_chain({}, anchors, 150).verdict, ChainVerdict::kBadChain);
  EXPECT_EQ(verify_voucher_chain({leaf, mid, mid}, anchors, 150).verdict,
            ChainVerdict::kBadChain)
      << "depth 3 must reject even if a prefix would verify";

  const ChainCheck ok = verify_voucher_chain({leaf, mid}, anchors, 150);
  EXPECT_EQ(ok.verdict, ChainVerdict::kOk);
  EXPECT_EQ(ok.subject, "alice@epoch-0");
  EXPECT_EQ(ok.key.to_bytes(), pk);

  // The intermediate must vouch for exactly the leaf's issuer.
  const Voucher wrong_mid =
      root.vouch_for_issuer(f.foreign_issuer("other-domain"), 100, 200, 3);
  EXPECT_EQ(verify_voucher_chain({leaf, wrong_mid}, anchors, 150).verdict,
            ChainVerdict::kBadChain);

  // An unscoped leaf subject, or a subject whose epoch disagrees with the
  // voucher's epoch field, is structurally broken.
  const Voucher unscoped = domain.issue("alice", pk, 0, 100, 200, 4);
  EXPECT_EQ(verify_voucher_chain({unscoped, mid}, anchors, 150).verdict,
            ChainVerdict::kBadChain);
  const Voucher mismatched = domain.issue("alice@epoch-1", pk, 0, 100, 200, 5);
  EXPECT_EQ(verify_voucher_chain({mismatched, mid}, anchors, 150).verdict,
            ChainVerdict::kBadChain);
}

TEST(VoucherChainCheck, CrossDomainAnchorsAndTamperedBindings) {
  VoucherFixture f;
  const auto root = f.issuer("root");
  const auto domain = f.foreign_issuer("domain");
  const Bytes pk = f.some_pk_bytes();
  const Voucher mid = root.vouch_for_issuer(domain, 100, 200, 1);
  const Voucher leaf = domain.issue("alice@epoch-0", pk, 0, 100, 200, 2);

  TrustAnchors root_only;
  ASSERT_TRUE(root_only.add("root", root.public_key()));
  EXPECT_EQ(verify_voucher_chain({leaf, mid}, root_only, 150).verdict,
            ChainVerdict::kOk)
      << "a verifier holding only the federation root accepts domain bindings";
  EXPECT_EQ(verify_voucher_chain({leaf}, root_only, 150).verdict,
            ChainVerdict::kUntrustedIssuer)
      << "the bare leaf is unverifiable without its domain anchor";

  TrustAnchors domain_only;
  ASSERT_TRUE(domain_only.add("domain", domain.public_key()));
  EXPECT_EQ(verify_voucher_chain({leaf}, domain_only, 150).verdict,
            ChainVerdict::kOk);
  EXPECT_EQ(verify_voucher_chain({leaf, mid}, domain_only, 150).verdict,
            ChainVerdict::kUntrustedIssuer)
      << "a two-link chain stands on the *root* anchor";

  const TrustAnchors empty;
  EXPECT_EQ(verify_voucher_chain({leaf, mid}, empty, 150).verdict,
            ChainVerdict::kUntrustedIssuer);

  // Tampered bindings reject with kBadSignature at whichever link changed.
  Voucher fake_leaf = leaf;
  fake_leaf.pk_bytes = f.some_pk_bytes();
  EXPECT_EQ(verify_voucher_chain({fake_leaf, mid}, root_only, 150).verdict,
            ChainVerdict::kBadSignature);
  Voucher fake_mid = mid;
  const auto evil_pk = f.foreign_issuer("evil").public_key().to_bytes();
  fake_mid.pk_bytes.assign(evil_pk.begin(), evil_pk.end());
  EXPECT_EQ(verify_voucher_chain({leaf, fake_mid}, root_only, 150).verdict,
            ChainVerdict::kBadSignature);
  // A leaf re-signed by an unrelated key fails even with the right fields.
  const Voucher forged =
      f.foreign_issuer("domain").issue("alice@epoch-0", pk, 0, 100, 200, 2);
  EXPECT_EQ(verify_voucher_chain({forged, mid}, root_only, 150).verdict,
            ChainVerdict::kBadSignature);
}

TEST(VoucherChainCheck, ExpiryBoundariesIncludingU64Edges) {
  VoucherFixture f;
  const auto root = f.issuer("root");
  TrustAnchors anchors;
  ASSERT_TRUE(anchors.add("root", root.public_key()));
  const Bytes pk = f.some_pk_bytes();
  const auto at = [&](std::uint64_t nb, std::uint64_t na, std::uint64_t now) {
    const Voucher v = root.issue("alice@epoch-0", pk, 0, nb, na, 1);
    return verify_voucher_chain({v}, anchors, now).verdict;
  };

  // [100, 200): closed below, open above.
  EXPECT_EQ(at(100, 200, 99), ChainVerdict::kNotYetValid) << "not-before in the future";
  EXPECT_EQ(at(100, 200, 100), ChainVerdict::kOk) << "window opens at not_before";
  EXPECT_EQ(at(100, 200, 199), ChainVerdict::kOk) << "last valid second";
  EXPECT_EQ(at(100, 200, 200), ChainVerdict::kExpired) << "exactly-at-expiry is expired";

  // u64 edges.
  EXPECT_EQ(at(0, kU64Max, 0), ChainVerdict::kOk);
  EXPECT_EQ(at(0, kU64Max, kU64Max - 1), ChainVerdict::kOk);
  EXPECT_EQ(at(0, kU64Max, kU64Max), ChainVerdict::kExpired);
  EXPECT_EQ(at(kU64Max, kU64Max, kU64Max), ChainVerdict::kExpired)
      << "a zero-length window is never valid";
  EXPECT_EQ(at(kU64Max, kU64Max, 0), ChainVerdict::kNotYetValid);

  // A chain is only as fresh as its weakest link, and the reported
  // effective window is the intersection.
  const auto domain = f.foreign_issuer("domain");
  const Voucher mid = root.vouch_for_issuer(domain, 50, 150, 2);
  const Voucher leaf = domain.issue("alice@epoch-0", pk, 0, 100, 200, 3);
  EXPECT_EQ(verify_voucher_chain({leaf, mid}, anchors, 160).verdict,
            ChainVerdict::kExpired)
      << "the intermediate expired even though the leaf is valid";
  const ChainCheck ok = verify_voucher_chain({leaf, mid}, anchors, 120);
  ASSERT_EQ(ok.verdict, ChainVerdict::kOk);
  EXPECT_EQ(ok.not_before, 100u);
  EXPECT_EQ(ok.not_after, 150u);
}

TEST(VoucherChainCheck, EpochPolicyMatchesTheDirectoryWindow) {
  VoucherFixture f;
  const auto root = f.issuer("root");
  TrustAnchors anchors;
  ASSERT_TRUE(anchors.add("root", root.public_key()));
  const Voucher v = root.issue("alice@epoch-5", f.some_pk_bytes(), 5, 100, 200, 1);
  const auto with_epoch = [&](cls::Epoch current) {
    return verify_voucher_chain({v}, anchors, 150, current).verdict;
  };
  EXPECT_EQ(with_epoch(5), ChainVerdict::kOk);
  EXPECT_EQ(with_epoch(6), ChainVerdict::kOk) << "grace admits one trailing epoch";
  EXPECT_EQ(with_epoch(7), ChainVerdict::kEpochRejected) << "revoked by epoch bump";
  EXPECT_EQ(with_epoch(4), ChainVerdict::kEpochRejected) << "vouchers from the future";
  EXPECT_EQ(verify_voucher_chain({v}, anchors, 150).verdict, ChainVerdict::kOk)
      << "without a current epoch, validity rests on the time window alone";
}

TEST(TrustAnchors, RejectsDegenerateKeysAndDuplicates) {
  VoucherFixture f;
  TrustAnchors anchors;
  EXPECT_FALSE(anchors.add("inf", ec::G1::infinity()));
  EXPECT_FALSE(anchors.add("", f.issuer("x").public_key()));
  EXPECT_TRUE(anchors.add("root", f.issuer("root").public_key()));
  EXPECT_FALSE(anchors.add("root", f.foreign_issuer("root").public_key()))
      << "first writer wins; silent anchor replacement would be a downgrade";
  EXPECT_NE(anchors.find("root"), nullptr);
  EXPECT_EQ(anchors.find("ghost"), nullptr);
  EXPECT_EQ(anchors.size(), 1u);
}

// ----------------------------------------------------------- kgcd issuance

TEST(KgcdVoucher, EnrollAndVouchIssueVerifiableChains) {
  VoucherFixture f;
  KgcdConfig config;
  config.issuer = "kgc-east";
  config.voucher_ttl = 600;
  const auto daemon = f.boot(fresh_dir("issue"), std::move(config));
  TrustAnchors anchors;
  ASSERT_TRUE(anchors.add("kgc-east", daemon->voucher_issuer().public_key()));
  ASSERT_EQ(daemon->voucher_issuer().public_key(), f.kgc.params().p_pub)
      << "the vouching key is the KGC's P_pub";

  // Enroll-time voucher.
  const auto alice = f.enroll_user(*daemon, "alice");
  ASSERT_EQ(alice.voucher.size(), 1u);
  const ChainCheck enroll_check =
      verify_voucher_chain(alice.voucher, anchors, f.clock.load(), daemon->epoch());
  EXPECT_EQ(enroll_check.verdict, ChainVerdict::kOk);
  EXPECT_EQ(enroll_check.subject, "alice@epoch-0");
  EXPECT_EQ(enroll_check.key.to_bytes(), alice.pk_bytes);
  EXPECT_EQ(alice.voucher.front().not_before, 1'000u);
  EXPECT_EQ(alice.voucher.front().not_after, 1'600u);

  // On-demand vouch, plain and scoped.
  const auto plain = daemon->vouch("alice");
  ASSERT_EQ(plain.status, KgcStatus::kOk);
  EXPECT_EQ(verify_voucher_chain(plain.chain, anchors, f.clock.load()).verdict,
            ChainVerdict::kOk);
  EXPECT_EQ(plain.chain.front().subject, "alice@epoch-0");
  EXPECT_EQ(daemon->vouch("alice@epoch-0").status, KgcStatus::kOk);
  EXPECT_EQ(daemon->vouch("alice@epoch-3").status, KgcStatus::kRevoked)
      << "the daemon only vouches for the binding it currently stands behind";
  EXPECT_EQ(daemon->vouch("ghost").status, KgcStatus::kUnknownId);

  // Serials are unique and strictly increasing per issuance.
  EXPECT_GT(plain.chain.front().serial, alice.voucher.front().serial);

  // Revocation stops vouching immediately.
  ASSERT_EQ(daemon->revoke("alice"), KgcStatus::kOk);
  EXPECT_EQ(daemon->vouch("alice").status, KgcStatus::kRevoked);
}

TEST(KgcdVoucher, WireVouchRoundTripsAndStaysTotal) {
  VoucherFixture f;
  const auto daemon = f.boot(fresh_dir("wire"));
  const auto alice = f.enroll_user(*daemon, "alice");
  TrustAnchors anchors;
  ASSERT_TRUE(anchors.add("kgc", daemon->voucher_issuer().public_key()));

  const auto response = decode_kgc_response(daemon->handle_frame(encode_kgc_request(
      KgcRequest{.op = KgcOp::kVouch, .request_id = 21, .id = "alice"})));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->op, KgcOp::kVouch);
  EXPECT_EQ(response->request_id, 21u);
  ASSERT_EQ(response->status, KgcStatus::kOk);
  EXPECT_EQ(response->epoch, 0u);
  const auto chain = decode_voucher_chain(response->payload);
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(verify_voucher_chain(*chain, anchors, f.clock.load()).verdict,
            ChainVerdict::kOk);
  EXPECT_EQ(chain->front().subject, alice.keys.id);

  const auto unknown = decode_kgc_response(daemon->handle_frame(encode_kgc_request(
      KgcRequest{.op = KgcOp::kVouch, .request_id = 22, .id = "ghost"})));
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(unknown->status, KgcStatus::kUnknownId);
  EXPECT_TRUE(unknown->payload.empty());
}

TEST(KgcdVoucher, SerialsSurviveRebootAndSnapshots) {
  VoucherFixture f;
  const std::string dir = fresh_dir("serials");
  std::uint64_t last_serial = 0;
  {
    const auto daemon = f.boot(dir);
    (void)f.enroll_user(*daemon, "alice");
    for (int i = 0; i < 3; ++i) {
      const auto vouched = daemon->vouch("alice");
      ASSERT_EQ(vouched.status, KgcStatus::kOk);
      EXPECT_GT(vouched.chain.front().serial, last_serial);
      last_serial = vouched.chain.front().serial;
    }
    ASSERT_TRUE(daemon->snapshot().has_value())
        << "snapshot folds voucher records away; serials must still advance";
  }
  const auto daemon = f.boot(dir);
  const auto vouched = daemon->vouch("alice");
  ASSERT_EQ(vouched.status, KgcStatus::kOk);
  EXPECT_GT(vouched.chain.front().serial, last_serial)
      << "a reboot (even from a snapshot) must never reuse a serial";
  EXPECT_EQ(daemon->lookup("alice").status, KgcStatus::kOk)
      << "voucher records must not perturb replayed directory state";
}

// ------------------------------------------------------ offline resolution

TEST(VoucherResolver, ServesVouchedSignersThroughATotalOutage) {
  VoucherFixture f;
  const auto daemon = f.boot(fresh_dir("outage"));
  const auto alice = f.enroll_user(*daemon, "alice");
  const auto bob = f.enroll_user(*daemon, "bob");  // enrolled but never vouched here
  TrustAnchors anchors;
  ASSERT_TRUE(anchors.add("kgc", daemon->voucher_issuer().public_key()));

  svc::FaultInjectingResolver faulty(&daemon->directory());
  svc::ServiceMetrics metrics;
  VoucherResolverConfig config;
  config.now = f.clock_fn();
  config.current_epoch = [&] { return daemon->epoch(); };
  VoucherVerifyingResolver resolver(&faulty, &anchors, std::move(config));
  resolver.set_metrics(&metrics);
  ASSERT_EQ(resolver.ingest(alice.voucher), ChainVerdict::kOk);

  // Total outage: every directory call answers kUnavailable.
  faulty.set_fail_rate(1.0);

  // Vouched: both the scoped and plain forms keep resolving offline.
  EXPECT_EQ(resolver.resolve(alice.keys.id).outcome, svc::ResolveOutcome::kOk);
  const auto plain = resolver.resolve("alice");
  ASSERT_EQ(plain.outcome, svc::ResolveOutcome::kOk);
  EXPECT_EQ(plain.key->to_bytes(), alice.pk_bytes);
  // Unvouched: the honest transient outcome, never a trust verdict.
  EXPECT_EQ(resolver.resolve(bob.keys.id).outcome, svc::ResolveOutcome::kUnavailable);
  EXPECT_EQ(metrics.snapshot().voucher_hits, 2u);

  // Revocation via epoch bump holds offline: past the grace window the
  // scoped identity answers kNotVouched with the directory still dead.
  daemon->set_epoch(2);
  EXPECT_EQ(resolver.resolve("alice@epoch-0").outcome,
            svc::ResolveOutcome::kNotVouched);
  daemon->set_epoch(0);
  EXPECT_EQ(resolver.resolve(alice.keys.id).outcome, svc::ResolveOutcome::kOk);

  // Expiry holds offline too: once the voucher dies, the miss degrades to
  // kUnavailable rather than silently trusting a stale binding.
  f.clock.fetch_add(7'200);  // well past the default voucher_ttl
  EXPECT_EQ(resolver.resolve(alice.keys.id).outcome,
            svc::ResolveOutcome::kUnavailable);
  EXPECT_GT(metrics.snapshot().voucher_expired, 0u);

  // Directory back up: the same resolve falls through and succeeds again.
  faulty.set_fail_rate(0.0);
  EXPECT_EQ(resolver.resolve(alice.keys.id).outcome, svc::ResolveOutcome::kOk);
}

TEST(VoucherResolver, NeverAcceptsAnUnverifiableVoucher) {
  VoucherFixture f;
  const auto daemon = f.boot(fresh_dir("failclosed"));
  const auto alice = f.enroll_user(*daemon, "alice");
  TrustAnchors anchors;
  ASSERT_TRUE(anchors.add("kgc", daemon->voucher_issuer().public_key()));

  svc::ServiceMetrics metrics;
  VoucherResolverConfig config;
  config.now = f.clock_fn();
  // No inner resolver: this verifier is fully offline.
  VoucherVerifyingResolver resolver(nullptr, &anchors, std::move(config));
  resolver.set_metrics(&metrics);

  VoucherChain tampered = alice.voucher;
  tampered.front().pk_bytes = f.some_pk_bytes();
  EXPECT_EQ(resolver.ingest(tampered), ChainVerdict::kBadSignature);
  VoucherChain forged = {
      f.foreign_issuer("kgc").issue(alice.keys.id, alice.pk_bytes, 0, 0, kU64Max, 1)};
  EXPECT_EQ(resolver.ingest(forged), ChainVerdict::kBadSignature);
  VoucherChain stranger = {
      f.foreign_issuer("nobody").issue(alice.keys.id, alice.pk_bytes, 0, 0, kU64Max, 1)};
  EXPECT_EQ(resolver.ingest(stranger), ChainVerdict::kUntrustedIssuer);

  EXPECT_EQ(resolver.cached(), 0u) << "nothing unverifiable may enter the cache";
  EXPECT_EQ(resolver.resolve(alice.keys.id).outcome,
            svc::ResolveOutcome::kUnavailable)
      << "offline with no voucher: the honest transient outcome";
  EXPECT_EQ(metrics.snapshot().voucher_bad_sig, 3u);

  // The real chain still ingests fine afterwards (fail-closed, not poisoned).
  EXPECT_EQ(resolver.ingest(alice.voucher), ChainVerdict::kOk);
  EXPECT_EQ(resolver.resolve(alice.keys.id).outcome, svc::ResolveOutcome::kOk);
}

TEST(VoucherResolver, FetchHookPopulatesTheCacheOnce) {
  VoucherFixture f;
  const auto daemon = f.boot(fresh_dir("fetch"));
  const auto alice = f.enroll_user(*daemon, "alice");
  TrustAnchors anchors;
  ASSERT_TRUE(anchors.add("kgc", daemon->voucher_issuer().public_key()));

  std::atomic<int> fetches{0};
  VoucherResolverConfig config;
  config.now = f.clock_fn();
  config.fetch = [&](std::string_view id) -> std::optional<VoucherChain> {
    fetches.fetch_add(1);
    auto outcome = daemon->vouch(id);
    if (outcome.status != KgcStatus::kOk) return std::nullopt;
    return std::move(outcome.chain);
  };
  VoucherVerifyingResolver resolver(nullptr, &anchors, std::move(config));

  EXPECT_EQ(resolver.resolve(alice.keys.id).outcome, svc::ResolveOutcome::kOk);
  EXPECT_EQ(fetches.load(), 1);
  EXPECT_EQ(resolver.resolve(alice.keys.id).outcome, svc::ResolveOutcome::kOk);
  EXPECT_EQ(resolver.resolve("alice").outcome, svc::ResolveOutcome::kOk)
      << "one fetched chain serves both the scoped and plain forms";
  EXPECT_EQ(fetches.load(), 1) << "steady state never re-fetches";
  EXPECT_EQ(resolver.resolve("ghost").outcome, svc::ResolveOutcome::kUnavailable);
}

// The acceptance criterion, end to end: with kgcd 100% unavailable, a
// verifyd holding fresh vouchers verifies cold-by-identity signatures with
// zero kUnavailable verdicts, while a revoked epoch still answers
// kUnknownSigner.
TEST(VoucherResolver, VerifydOfflineAcceptance) {
  VoucherFixture f;
  const auto daemon = f.boot(fresh_dir("acceptance"));
  constexpr int kSigners = 6;
  std::vector<VoucherFixture::Enrolled> users;
  for (int i = 0; i < kSigners; ++i) {
    users.push_back(f.enroll_user(*daemon, "node-" + std::to_string(i)));
  }
  TrustAnchors anchors;
  ASSERT_TRUE(anchors.add("kgc", daemon->voucher_issuer().public_key()));

  // Full pipeline under a 100% fault: Voucher → Resilient → Fault → directory.
  svc::FaultInjectingResolver faulty(&daemon->directory());
  svc::ResilientConfig resilient_config;
  resilient_config.max_attempts = 1;
  svc::ResilientResolver resilient(&faulty, resilient_config);
  VoucherResolverConfig voucher_config;
  voucher_config.now = f.clock_fn();
  voucher_config.current_epoch = [&] { return daemon->epoch(); };
  VoucherVerifyingResolver resolver(&resilient, &anchors, std::move(voucher_config));
  for (const auto& user : users) {
    ASSERT_EQ(resolver.ingest(user.voucher), ChainVerdict::kOk);
  }
  faulty.set_fail_rate(1.0);

  const auto msg = crypto::as_bytes(std::string_view{"offline but verified"});
  ResponseSink sink;
  {
    svc::VerifyService service(
        f.kgc.params(), svc::ServiceConfig{.workers = 2, .resolver = &resolver});
    resolver.set_metrics(&service.metrics());
    std::uint64_t next_id = 1;
    for (const auto& user : users) {
      const Bytes sig = f.scheme.sign(f.kgc.params(), user.keys, msg, f.rng);
      EXPECT_TRUE(service.submit(
          svc::VerifyRequest{.request_id = next_id++, .scheme = "McCLS",
                             .id = user.keys.id, .by_identity = true,
                             .message = Bytes(msg.begin(), msg.end()),
                             .signature = sig},
          sink.completion()));
    }
    // A revoked epoch stays revoked: scope node-0's identity to a dead epoch.
    EXPECT_TRUE(service.submit(
        svc::VerifyRequest{.request_id = 99, .scheme = "McCLS",
                           .id = "node-0@epoch-9", .by_identity = true,
                           .message = Bytes(msg.begin(), msg.end()),
                           .signature = Bytes(f.scheme.signature_size(), 0x00)},
        sink.completion()));
    ASSERT_TRUE(sink.wait_for(static_cast<std::size_t>(kSigners) + 1));

    const auto metrics = service.metrics().snapshot();
    for (int i = 0; i < kSigners; ++i) {
      EXPECT_EQ(sink.statuses.at(static_cast<std::uint64_t>(i + 1)),
                svc::Status::kVerified)
          << "node-" << i << " must verify offline from its voucher";
    }
    EXPECT_EQ(sink.statuses.at(99), svc::Status::kUnknownSigner);
    EXPECT_EQ(metrics.unavailable, 0u)
        << "zero kUnavailable verdicts for pre-vouched signers";
    EXPECT_EQ(metrics.voucher_hits, static_cast<std::uint64_t>(kSigners));
  }
}

// The differential companion to the property: for vouched signers the
// offline pipeline and the live directory must return identical verdicts
// (same outcome, same key bytes) across plain, scoped, stale-epoch and
// unknown identities.
TEST(VoucherResolver, OfflineVerdictsMatchTheLiveDirectory) {
  VoucherFixture f;
  const auto daemon = f.boot(fresh_dir("differential"));
  const auto alice = f.enroll_user(*daemon, "alice");
  TrustAnchors anchors;
  ASSERT_TRUE(anchors.add("kgc", daemon->voucher_issuer().public_key()));

  svc::FaultInjectingResolver faulty(&daemon->directory());
  VoucherResolverConfig config;
  config.now = f.clock_fn();
  config.current_epoch = [&] { return daemon->epoch(); };
  VoucherVerifyingResolver offline(&faulty, &anchors, std::move(config));
  ASSERT_EQ(offline.ingest(alice.voucher), ChainVerdict::kOk);
  faulty.set_fail_rate(1.0);

  for (cls::Epoch epoch : {0, 1, 2}) {
    daemon->set_epoch(epoch);
    for (const std::string& id : {std::string("alice"), alice.keys.id}) {
      const auto live = daemon->directory().resolve(id);
      const auto cached = offline.resolve(id);
      EXPECT_EQ(live.outcome, cached.outcome) << id << " @epoch " << epoch;
      if (live.outcome == svc::ResolveOutcome::kOk) {
        EXPECT_EQ(live.key->to_bytes(), cached.key->to_bytes()) << id;
      }
    }
  }
}

}  // namespace
}  // namespace mccls::kgc
