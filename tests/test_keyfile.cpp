// Key-file serialization (the storage format behind mccls_cli).
#include "cls/keyfile.hpp"

#include <gtest/gtest.h>

#include "cls/mccls.hpp"

namespace mccls::cls {
namespace {

struct Fixture {
  crypto::HmacDrbg rng{std::uint64_t{0x5357}};
  Kgc kgc = Kgc::setup(rng);
  Mccls scheme;
  UserKeys alice = scheme.enroll(kgc, "alice@example", rng);
};

TEST(KeyFile, MasterKeyRoundTrip) {
  Fixture f;
  const auto bytes = encode_master_key(f.kgc.master_key_for_tests());
  EXPECT_EQ(bytes.size(), 32u);
  const auto back = decode_master_key(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->to_u256(), f.kgc.master_key_for_tests().to_u256());
  // The reconstructed KGC issues identical partial keys.
  const Kgc rebuilt = Kgc::from_master_key(*back);
  EXPECT_EQ(rebuilt.extract_partial_key("bob"), f.kgc.extract_partial_key("bob"));
  EXPECT_EQ(rebuilt.params().p_pub, f.kgc.params().p_pub);
}

TEST(KeyFile, MasterKeyRejectsMalformed) {
  EXPECT_FALSE(decode_master_key(crypto::Bytes{}).has_value());
  EXPECT_FALSE(decode_master_key(crypto::Bytes(31, 1)).has_value());
  EXPECT_FALSE(decode_master_key(crypto::Bytes(33, 1)).has_value());
  EXPECT_FALSE(decode_master_key(crypto::Bytes(32, 0)).has_value()) << "zero key";
  // q itself (non-canonical).
  const auto q_bytes = math::Fq::modulus().to_be_bytes();
  EXPECT_FALSE(decode_master_key(q_bytes).has_value());
}

TEST(KeyFile, UserKeysRoundTrip) {
  Fixture f;
  const auto bytes = encode_user_keys(f.alice);
  const auto back = decode_user_keys(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->id, f.alice.id);
  EXPECT_EQ(back->partial_key, f.alice.partial_key);
  EXPECT_EQ(back->secret.to_u256(), f.alice.secret.to_u256());
  EXPECT_EQ(back->public_key, f.alice.public_key);
}

TEST(KeyFile, ReloadedKeysSignVerifiably) {
  Fixture f;
  const auto reloaded = decode_user_keys(encode_user_keys(f.alice));
  ASSERT_TRUE(reloaded.has_value());
  const auto m = crypto::as_bytes("persisted key");
  const auto sig = f.scheme.sign(f.kgc.params(), *reloaded,
                                 {m.data(), m.size()}, f.rng);
  EXPECT_TRUE(f.scheme.verify(f.kgc.params(), "alice@example", f.alice.public_key,
                              {m.data(), m.size()}, sig));
}

TEST(KeyFile, UserKeysRejectMalformed) {
  Fixture f;
  auto bytes = encode_user_keys(f.alice);
  // Truncations at every prefix length must fail cleanly.
  for (std::size_t cut = 1; cut < bytes.size(); cut += 7) {
    const std::span<const std::uint8_t> prefix{bytes.data(), bytes.size() - cut};
    EXPECT_FALSE(decode_user_keys(prefix).has_value()) << "cut=" << cut;
  }
  // Trailing garbage.
  bytes.push_back(0xAA);
  EXPECT_FALSE(decode_user_keys(bytes).has_value());
  EXPECT_FALSE(decode_user_keys(crypto::Bytes{}).has_value());
}

TEST(KeyFile, UserKeysRejectCorruptPoint) {
  Fixture f;
  auto bytes = encode_user_keys(f.alice);
  // The partial key point starts right after the record version byte, the
  // 4-byte id length, and the id.
  const std::size_t point_offset = 1 + 4 + f.alice.id.size();
  bytes[point_offset] = 0x07;  // invalid tag byte
  EXPECT_FALSE(decode_user_keys(bytes).has_value());
}

}  // namespace
}  // namespace mccls::cls
