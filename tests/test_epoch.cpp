// Time-scoped identities: the certificateless revocation mechanism.
#include "cls/epoch.hpp"

#include <gtest/gtest.h>

#include "cls/mccls.hpp"

namespace mccls::cls {
namespace {

TEST(Epoch, ScopedIdentityRoundTrips) {
  const std::string scoped = scoped_identity("alice@cps.example", 42);
  EXPECT_EQ(scoped, "alice@cps.example@epoch-42");
  const auto parsed = parse_scoped_identity(scoped);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first, "alice@cps.example");
  EXPECT_EQ(parsed->second, 42u);
}

TEST(Epoch, DoubleScopingThrows) {
  const std::string once = scoped_identity("alice", 1);
  EXPECT_THROW(scoped_identity(once, 2), std::invalid_argument);
}

TEST(Epoch, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_scoped_identity("alice").has_value());
  EXPECT_FALSE(parse_scoped_identity("@epoch-5").has_value());
  EXPECT_FALSE(parse_scoped_identity("alice@epoch-").has_value());
  EXPECT_FALSE(parse_scoped_identity("alice@epoch-12x").has_value());
  EXPECT_FALSE(parse_scoped_identity("").has_value());
}

TEST(Epoch, AcceptancePolicy) {
  EXPECT_TRUE(epoch_acceptable(10, 10));
  EXPECT_TRUE(epoch_acceptable(9, 10)) << "one trailing epoch of grace by default";
  EXPECT_FALSE(epoch_acceptable(8, 10));
  EXPECT_FALSE(epoch_acceptable(11, 10)) << "future epochs rejected";
  EXPECT_TRUE(epoch_acceptable(7, 10, 3));
  EXPECT_TRUE(epoch_acceptable(0, 0, 0));
}

TEST(Epoch, DistinctEpochsAreCryptographicallyDistinctIdentities) {
  // The whole point: a partial key extracted for epoch N is useless for
  // epoch N+1 — the hash points differ, so old (possibly compromised or
  // revoked) keys die with their epoch.
  crypto::HmacDrbg rng(std::uint64_t{0xE60C4});
  const Kgc kgc = Kgc::setup(rng);
  const Mccls scheme;
  const std::string id_now = scoped_identity("vehicle-9", 100);
  const std::string id_next = scoped_identity("vehicle-9", 101);
  EXPECT_NE(hash_id(id_now), hash_id(id_next));

  const UserKeys keys_now = scheme.enroll(kgc, id_now, rng);
  const auto m = crypto::as_bytes("command");
  const auto sig = scheme.sign(kgc.params(), keys_now, {m.data(), m.size()}, rng);
  // Verifies under the epoch it was issued for...
  EXPECT_TRUE(scheme.verify(kgc.params(), id_now, keys_now.public_key,
                            {m.data(), m.size()}, sig));
  // ...and fails once the verifier rolls to the next epoch's identity.
  EXPECT_FALSE(scheme.verify(kgc.params(), id_next, keys_now.public_key,
                             {m.data(), m.size()}, sig));
}

TEST(Epoch, RevokedNodeCannotFollowTheEpochRoll) {
  // The KGC enrolls "rogue" for epoch 5, then revokes it (i.e. refuses to
  // extract for epoch 6). Whatever rogue still holds is bound to epoch 5
  // and dies under the acceptance policy once now = 7.
  crypto::HmacDrbg rng(std::uint64_t{0xE60C5});
  const Kgc kgc = Kgc::setup(rng);
  const Mccls scheme;
  const UserKeys rogue = scheme.enroll(kgc, scoped_identity("rogue", 5), rng);
  const auto parsed = parse_scoped_identity(rogue.id);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(epoch_acceptable(parsed->second, /*now=*/7))
      << "stale-epoch signatures are rejected by policy before any pairing runs";
}

}  // namespace
}  // namespace mccls::cls
