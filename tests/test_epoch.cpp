// Time-scoped identities: the certificateless revocation mechanism.
#include "cls/epoch.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "cls/mccls.hpp"

namespace mccls::cls {
namespace {

TEST(Epoch, ScopedIdentityRoundTrips) {
  const std::string scoped = scoped_identity("alice@cps.example", 42);
  EXPECT_EQ(scoped, "alice@cps.example@epoch-42");
  const auto parsed = parse_scoped_identity(scoped);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first, "alice@cps.example");
  EXPECT_EQ(parsed->second, 42u);
}

TEST(Epoch, DoubleScopingThrows) {
  const std::string once = scoped_identity("alice", 1);
  EXPECT_THROW(scoped_identity(once, 2), std::invalid_argument);
}

TEST(Epoch, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_scoped_identity("alice").has_value());
  EXPECT_FALSE(parse_scoped_identity("@epoch-5").has_value());
  EXPECT_FALSE(parse_scoped_identity("alice@epoch-").has_value());
  EXPECT_FALSE(parse_scoped_identity("alice@epoch-12x").has_value());
  EXPECT_FALSE(parse_scoped_identity("").has_value());
}

TEST(Epoch, AcceptancePolicy) {
  EXPECT_TRUE(epoch_acceptable(10, 10));
  EXPECT_TRUE(epoch_acceptable(9, 10)) << "one trailing epoch of grace by default";
  EXPECT_FALSE(epoch_acceptable(8, 10));
  EXPECT_FALSE(epoch_acceptable(11, 10)) << "future epochs rejected";
  EXPECT_TRUE(epoch_acceptable(7, 10, 3));
  EXPECT_TRUE(epoch_acceptable(0, 0, 0));
}

TEST(Epoch, AcceptanceBoundaries) {
  // epoch == now is always acceptable, even with zero grace.
  EXPECT_TRUE(epoch_acceptable(10, 10, 0));
  EXPECT_FALSE(epoch_acceptable(9, 10, 0)) << "grace 0 means current epoch only";
  // Exactly at the grace boundary is acceptable; one past is not.
  EXPECT_TRUE(epoch_acceptable(7, 10, 3));
  EXPECT_FALSE(epoch_acceptable(6, 10, 3));
  // Extremes of the Epoch domain: no overflow in the now - epoch arithmetic.
  constexpr Epoch kMax = std::numeric_limits<Epoch>::max();
  EXPECT_TRUE(epoch_acceptable(kMax, kMax));
  EXPECT_TRUE(epoch_acceptable(kMax - 1, kMax));
  EXPECT_FALSE(epoch_acceptable(0, kMax)) << "ancient epoch at max now";
  EXPECT_FALSE(epoch_acceptable(kMax, 0)) << "future epoch from a fresh verifier";
  EXPECT_TRUE(epoch_acceptable(0, kMax, kMax)) << "grace spanning the whole domain";
}

TEST(Epoch, ParseBoundaries) {
  // The exported separator is the load-bearing constant enrollment guards
  // key off (kgcd and kgc::wire reject pre-scoped enrollment ids with it).
  EXPECT_EQ(kEpochSeparator, "@epoch-");

  // Largest representable epoch round-trips; one past it overflows and
  // rejects rather than wrapping.
  constexpr Epoch kMax = std::numeric_limits<Epoch>::max();
  const std::string max_scoped = scoped_identity("node", kMax);
  const auto parsed_max = parse_scoped_identity(max_scoped);
  ASSERT_TRUE(parsed_max.has_value());
  EXPECT_EQ(parsed_max->second, kMax);
  EXPECT_FALSE(parse_scoped_identity("node@epoch-18446744073709551616").has_value())
      << "2^64 must overflow-reject, not wrap to 0";

  // Leading zeros parse as their numeric value (from_chars semantics) — the
  // scoped string is not canonical, but the epoch it names is unambiguous.
  const auto zeros = parse_scoped_identity("alice@epoch-007");
  ASSERT_TRUE(zeros.has_value());
  EXPECT_EQ(zeros->first, "alice");
  EXPECT_EQ(zeros->second, 7u);

  // A separator with no identity in front of it is not a scoped identity.
  EXPECT_FALSE(parse_scoped_identity("@epoch-").has_value());
  EXPECT_FALSE(parse_scoped_identity("@epoch-0").has_value());
  // Double-scoped strings reject on parse just as they throw on construction.
  EXPECT_FALSE(parse_scoped_identity("a@epoch-1@epoch-2").has_value());
  // Sign characters are not digits: from_chars on an unsigned Epoch refuses.
  EXPECT_FALSE(parse_scoped_identity("alice@epoch--1").has_value());
  EXPECT_FALSE(parse_scoped_identity("alice@epoch-+1").has_value());
}

TEST(Epoch, DistinctEpochsAreCryptographicallyDistinctIdentities) {
  // The whole point: a partial key extracted for epoch N is useless for
  // epoch N+1 — the hash points differ, so old (possibly compromised or
  // revoked) keys die with their epoch.
  crypto::HmacDrbg rng(std::uint64_t{0xE60C4});
  const Kgc kgc = Kgc::setup(rng);
  const Mccls scheme;
  const std::string id_now = scoped_identity("vehicle-9", 100);
  const std::string id_next = scoped_identity("vehicle-9", 101);
  EXPECT_NE(hash_id(id_now), hash_id(id_next));

  const UserKeys keys_now = scheme.enroll(kgc, id_now, rng);
  const auto m = crypto::as_bytes("command");
  const auto sig = scheme.sign(kgc.params(), keys_now, {m.data(), m.size()}, rng);
  // Verifies under the epoch it was issued for...
  EXPECT_TRUE(scheme.verify(kgc.params(), id_now, keys_now.public_key,
                            {m.data(), m.size()}, sig));
  // ...and fails once the verifier rolls to the next epoch's identity.
  EXPECT_FALSE(scheme.verify(kgc.params(), id_next, keys_now.public_key,
                             {m.data(), m.size()}, sig));
}

TEST(Epoch, RevokedNodeCannotFollowTheEpochRoll) {
  // The KGC enrolls "rogue" for epoch 5, then revokes it (i.e. refuses to
  // extract for epoch 6). Whatever rogue still holds is bound to epoch 5
  // and dies under the acceptance policy once now = 7.
  crypto::HmacDrbg rng(std::uint64_t{0xE60C5});
  const Kgc kgc = Kgc::setup(rng);
  const Mccls scheme;
  const UserKeys rogue = scheme.enroll(kgc, scoped_identity("rogue", 5), rng);
  const auto parsed = parse_scoped_identity(rogue.id);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(epoch_acceptable(parsed->second, /*now=*/7))
      << "stale-epoch signatures are rejected by policy before any pairing runs";
}

}  // namespace
}  // namespace mccls::cls
