// Integration tests of the full scenario runner (the engine behind the
// Figure 1-5 benchmarks): sanity of the paper-shaped experiment matrix.
#include "aodv/scenario.hpp"

#include <gtest/gtest.h>

namespace mccls::aodv {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.duration = 60;
  cfg.num_flows = 6;
  cfg.seed = 3;
  return cfg;
}

TEST(Scenario, PlainAodvDeliversMostTraffic) {
  ScenarioConfig cfg = small_config();
  cfg.max_speed = 1.0;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_GT(r.metrics.data_sent, 500u);
  EXPECT_GT(r.pdr(), 0.7) << "near-static 20-node field should deliver well";
  EXPECT_EQ(r.metrics.attacker_dropped, 0u);
  EXPECT_EQ(r.metrics.sign_ops, 0u) << "no security configured";
}

TEST(Scenario, McclsSecurityDoesNotDegradeDelivery) {
  ScenarioConfig cfg = small_config();
  cfg.max_speed = 1.0;
  const double plain = run_scenario(cfg).pdr();
  cfg.security = SecurityMode::kModeled;
  const ScenarioResult secured = run_scenario(cfg);
  EXPECT_GT(secured.metrics.sign_ops, 0u);
  EXPECT_GT(secured.metrics.verify_ops, 0u);
  EXPECT_GT(secured.pdr(), plain - 0.15) << "paper Fig 1: PDR comparable to AODV";
}

TEST(Scenario, McclsAddsEndToEndDelay) {
  ScenarioConfig cfg = small_config();
  cfg.max_speed = 10.0;
  const double plain_delay = run_scenario(cfg).avg_delay();
  cfg.security = SecurityMode::kModeled;
  const double secured_delay = run_scenario(cfg).avg_delay();
  EXPECT_GT(secured_delay, plain_delay) << "paper Fig 3: crypto cost shows up in delay";
}

TEST(Scenario, BlackHoleDegradesPlainAodv) {
  ScenarioConfig cfg = small_config();
  cfg.max_speed = 5.0;
  const double clean_pdr = run_scenario(cfg).pdr();
  cfg.attack = AttackType::kBlackHole;
  const ScenarioResult attacked = run_scenario(cfg);
  EXPECT_LT(attacked.pdr(), clean_pdr) << "paper Fig 4";
  EXPECT_GT(attacked.drop_ratio(), 0.0) << "paper Fig 5";
}

TEST(Scenario, RushingDegradesPlainAodv) {
  ScenarioConfig cfg = small_config();
  cfg.max_speed = 5.0;
  const double clean_pdr = run_scenario(cfg).pdr();
  cfg.attack = AttackType::kRushing;
  const ScenarioResult attacked = run_scenario(cfg);
  EXPECT_LT(attacked.pdr(), clean_pdr);
  EXPECT_GT(attacked.drop_ratio(), 0.0);
}

TEST(Scenario, McclsZeroesDropRatioUnderBothAttacks) {
  for (const AttackType attack : {AttackType::kBlackHole, AttackType::kRushing}) {
    ScenarioConfig cfg = small_config();
    cfg.max_speed = 5.0;
    cfg.attack = attack;
    cfg.security = SecurityMode::kModeled;
    const ScenarioResult r = run_scenario(cfg);
    EXPECT_EQ(r.metrics.attacker_dropped, 0u)
        << "paper Fig 5: McCLS drop ratio is zero (attack "
        << (attack == AttackType::kBlackHole ? "black-hole" : "rushing") << ")";
    EXPECT_GT(r.metrics.auth_rejected, 0u);
    EXPECT_GT(r.pdr(), 0.5);
  }
}

TEST(Scenario, GrayHoleSurvivesMcclsButOutsidersDoNot) {
  // The boundary of signature-based defence at scenario scale.
  ScenarioConfig cfg = small_config();
  cfg.max_speed = 5.0;
  cfg.security = SecurityMode::kModeled;
  cfg.attack = AttackType::kGrayHole;
  const ScenarioResult insider = run_scenario(cfg);
  EXPECT_GT(insider.metrics.attacker_dropped, 0u)
      << "insider selective forwarding is not stopped by authentication";
  EXPECT_EQ(insider.metrics.auth_rejected, 0u) << "insiders hold valid credentials";
  cfg.attack = AttackType::kBlackHole;
  const ScenarioResult outsider = run_scenario(cfg);
  EXPECT_EQ(outsider.metrics.attacker_dropped, 0u);
}

TEST(Scenario, GrayHoleDegradesPlainAodvModerately) {
  ScenarioConfig cfg = small_config();
  cfg.max_speed = 5.0;
  const double clean = run_scenario(cfg).pdr();
  cfg.attack = AttackType::kGrayHole;
  const ScenarioResult attacked = run_scenario(cfg);
  EXPECT_LT(attacked.pdr(), clean);
  EXPECT_GT(attacked.drop_ratio(), 0.0);
  // Selective forwarding is gentler than full absorption.
  cfg.attack = AttackType::kBlackHole;
  EXPECT_LT(attacked.drop_ratio(), run_scenario(cfg).drop_ratio());
}

TEST(Scenario, WormholeCollapsesDeliveryDespiteMccls) {
  ScenarioConfig cfg = small_config();
  cfg.max_speed = 5.0;
  cfg.security = SecurityMode::kModeled;
  const double secured_clean = run_scenario(cfg).pdr();
  cfg.attack = AttackType::kWormhole;
  const ScenarioResult attacked = run_scenario(cfg);
  EXPECT_LT(attacked.pdr(), secured_clean - 0.1)
      << "verbatim replays poison routes regardless of signatures";
  EXPECT_EQ(attacked.metrics.attacker_dropped, 0u)
      << "the wormhole disrupts rather than absorbs";
}

TEST(Scenario, DeterministicForSeed) {
  const ScenarioConfig cfg = small_config();
  const ScenarioResult a = run_scenario(cfg);
  const ScenarioResult b = run_scenario(cfg);
  EXPECT_EQ(a.metrics.data_sent, b.metrics.data_sent);
  EXPECT_EQ(a.metrics.data_delivered, b.metrics.data_delivered);
  EXPECT_EQ(a.metrics.rreq_initiated, b.metrics.rreq_initiated);
  EXPECT_EQ(a.channel.frames_transmitted, b.channel.frames_transmitted);
}

TEST(Scenario, SeedsChangeOutcomes) {
  ScenarioConfig cfg = small_config();
  const auto a = run_scenario(cfg).metrics.data_delivered;
  cfg.seed += 1;
  const auto b = run_scenario(cfg).metrics.data_delivered;
  EXPECT_NE(a, b);
}

TEST(Scenario, AveragedRunsAccumulate) {
  ScenarioConfig cfg = small_config();
  cfg.duration = 30;
  const ScenarioResult one = run_scenario(cfg);
  const ScenarioResult three = run_scenario_averaged(cfg, 3);
  EXPECT_GT(three.metrics.data_sent, one.metrics.data_sent * 2);
}

TEST(Scenario, MobilityIncreasesControlOverhead) {
  // Paper Fig 2: the RREQ ratio grows with speed.
  ScenarioConfig cfg = small_config();
  cfg.duration = 120;
  cfg.max_speed = 0.5;
  const double slow_ratio = run_scenario_averaged(cfg, 2).rreq_ratio();
  cfg.max_speed = 20.0;
  const double fast_ratio = run_scenario_averaged(cfg, 2).rreq_ratio();
  EXPECT_GT(fast_ratio, slow_ratio);
}

TEST(Scenario, DeriveCryptoCostsFollowsTable1) {
  const CryptoCosts mccls = derive_crypto_costs("McCLS");
  const CryptoCosts ap = derive_crypto_costs("AP");
  const CryptoCosts yhg = derive_crypto_costs("YHG");
  EXPECT_LT(mccls.verify_delay, yhg.verify_delay);
  EXPECT_LT(yhg.verify_delay, ap.verify_delay);
  EXPECT_LT(mccls.sign_delay, ap.sign_delay) << "AP pays a pairing at signing";
  EXPECT_GT(mccls.sign_delay, 0.0);
}

TEST(Scenario, RejectsBadConfigs) {
  ScenarioConfig cfg = small_config();
  cfg.num_nodes = 1;
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.attack = AttackType::kBlackHole;
  cfg.num_attackers = cfg.num_nodes;
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
  EXPECT_THROW(run_scenario_averaged(small_config(), 0), std::invalid_argument);
  EXPECT_THROW(derive_crypto_costs("nope"), std::invalid_argument);
}

TEST(Scenario, RealCryptoSmokeTest) {
  // Tiny field with the real scheme end-to-end (slow path, kept small).
  ScenarioConfig cfg;
  cfg.num_nodes = 8;
  cfg.num_flows = 2;
  cfg.duration = 15;
  cfg.max_speed = 1.0;
  cfg.security = SecurityMode::kReal;
  cfg.seed = 5;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_GT(r.metrics.data_sent, 0u);
  EXPECT_GT(r.metrics.verify_ops, 0u);
  EXPECT_EQ(r.metrics.auth_rejected, 0u);
}

}  // namespace
}  // namespace mccls::aodv
