#include "math/u256.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace mccls::math {
namespace {

TEST(U256, ZeroAndOne) {
  EXPECT_TRUE(U256::zero().is_zero());
  EXPECT_FALSE(U256::one().is_zero());
  EXPECT_EQ(U256::one(), U256::from_u64(1));
  EXPECT_EQ(U256::zero().bit_length(), 0u);
  EXPECT_EQ(U256::one().bit_length(), 1u);
}

TEST(U256, HexRoundTrip) {
  const auto x = U256::from_hex("0x123456789abcdef0fedcba9876543210deadbeefcafebabe0123456789abcdef");
  EXPECT_EQ(x.to_hex(), "123456789abcdef0fedcba9876543210deadbeefcafebabe0123456789abcdef");
  EXPECT_EQ(U256::from_hex(x.to_hex()), x);
  EXPECT_EQ(U256::from_hex("0"), U256::zero());
  EXPECT_EQ(U256::from_hex("ff").w[0], 0xFFu);
}

TEST(U256, HexRejectsBadInput) {
  EXPECT_THROW(U256::from_hex(""), std::invalid_argument);
  EXPECT_THROW(U256::from_hex("xyz"), std::invalid_argument);
  EXPECT_THROW(U256::from_hex(std::string(65, 'f')), std::invalid_argument);
}

TEST(U256, BeBytesRoundTrip) {
  const auto x = U256::from_hex("deadbeefcafebabe0123456789abcdef");
  const auto bytes = x.to_be_bytes();
  EXPECT_EQ(U256::from_be_bytes(bytes), x);
  // Short input is treated as the low-order bytes.
  const std::uint8_t two[] = {0x01, 0x02};
  EXPECT_EQ(U256::from_be_bytes(two), U256::from_u64(0x0102));
}

TEST(U256, Compare) {
  const auto a = U256::from_hex("ffffffffffffffff");
  const auto b = U256::from_hex("10000000000000000");
  EXPECT_LT(cmp(a, b), 0);
  EXPECT_GT(cmp(b, a), 0);
  EXPECT_EQ(cmp(a, a), 0);
}

TEST(U256, AddCarryPropagates) {
  U256 out;
  const auto max64 = U256::from_u64(~std::uint64_t{0});
  EXPECT_EQ(add(out, max64, U256::one()), 0u);
  EXPECT_EQ(out, (U256{{0, 1, 0, 0}}));

  U256 all_ones{{~0ULL, ~0ULL, ~0ULL, ~0ULL}};
  EXPECT_EQ(add(out, all_ones, U256::one()), 1u) << "carry out of the top limb";
  EXPECT_TRUE(out.is_zero());
}

TEST(U256, SubBorrowPropagates) {
  U256 out;
  EXPECT_EQ(sub(out, U256{{0, 1, 0, 0}}, U256::one()), 0u);
  EXPECT_EQ(out, U256::from_u64(~std::uint64_t{0}));
  EXPECT_EQ(sub(out, U256::zero(), U256::one()), 1u) << "borrow out of the top limb";
  EXPECT_EQ(out, (U256{{~0ULL, ~0ULL, ~0ULL, ~0ULL}}));
}

TEST(U256, AddSubInverse) {
  const auto a = U256::from_hex("123456789abcdef0fedcba9876543210deadbeefcafebabe0123456789abcdef");
  const auto b = U256::from_hex("fedcba9876543210");
  U256 sum, back;
  add(sum, a, b);
  sub(back, sum, b);
  EXPECT_EQ(back, a);
}

TEST(U256, Shr1) {
  EXPECT_EQ(shr1(U256::from_u64(2)), U256::one());
  EXPECT_EQ(shr1(U256{{0, 1, 0, 0}}), U256::from_u64(std::uint64_t{1} << 63));
  EXPECT_EQ(shr1(U256::one()), U256::zero());
}

TEST(U256, MulWideSmall) {
  const auto prod = mul_wide(U256::from_u64(6), U256::from_u64(7));
  EXPECT_EQ(prod.lo(), U256::from_u64(42));
  EXPECT_TRUE(prod.hi().is_zero());
}

TEST(U256, MulWideFull) {
  // (2^256 - 1)^2 = 2^512 - 2^257 + 1
  const U256 max{{~0ULL, ~0ULL, ~0ULL, ~0ULL}};
  const auto prod = mul_wide(max, max);
  EXPECT_EQ(prod.lo(), U256::one());
  U256 expected_hi{{~0ULL, ~0ULL, ~0ULL, ~0ULL}};
  U256 tmp;
  sub(tmp, expected_hi, U256::one());
  EXPECT_EQ(prod.hi(), tmp);
}

TEST(U256, BitAccess) {
  const auto x = U256::from_hex("8000000000000001");
  EXPECT_TRUE(x.bit(0));
  EXPECT_TRUE(x.bit(63));
  EXPECT_FALSE(x.bit(1));
  EXPECT_FALSE(x.bit(64));
  EXPECT_EQ(x.bit_length(), 64u);
}

TEST(U256, ModInverseSmall) {
  // 3 * 5 = 15 == 1 (mod 7)
  const auto inv = mod_inverse(U256::from_u64(3), U256::from_u64(7));
  EXPECT_EQ(inv, U256::from_u64(5));
}

TEST(U256, ModInverseLarge) {
  const auto p = U256::from_hex("372692e2d7b0b7af1d64fb3a4dfbd121615dca212ef8c6a2077c33424fa1887b");
  const auto a = U256::from_hex("123456789abcdef0fedcba9876543210deadbeefcafebabe0123456789abcdef");
  const auto expected = U256::from_hex("2e44f5eb0eadd51136c896d4fb6fc3038dda0d851f85e7e213ded402507e280e");
  EXPECT_EQ(mod_inverse(a, p), expected);
}

TEST(U256, ModInverseRejectsBadInput) {
  EXPECT_THROW(mod_inverse(U256::zero(), U256::from_u64(7)), std::invalid_argument);
  EXPECT_THROW(mod_inverse(U256::one(), U256::from_u64(8)), std::invalid_argument);
  EXPECT_THROW(mod_inverse(U256::from_u64(3), U256::from_u64(9)), std::invalid_argument);
}

TEST(U512, FromBeBytes) {
  std::array<std::uint8_t, 3> bytes = {0x01, 0x02, 0x03};
  const auto x = U512::from_be_bytes(bytes);
  EXPECT_EQ(x.lo(), U256::from_u64(0x010203));
  EXPECT_TRUE(x.hi().is_zero());
}

TEST(U512, FromHalves) {
  const auto lo = U256::from_u64(1);
  const auto hi = U256::from_u64(2);
  const auto x = U512::from_halves(lo, hi);
  EXPECT_EQ(x.lo(), lo);
  EXPECT_EQ(x.hi(), hi);
}

}  // namespace
}  // namespace mccls::math
