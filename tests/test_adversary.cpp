// Adversarial-model characterization of McCLS (paper §3.1/§5) and the
// baselines. Two kinds of tests live here:
//
//  1. Games the schemes WIN: naive forgeries, replay across identities or
//     keys, mauling, public-key replacement without a signing oracle.
//
//  2. DOCUMENTED WEAKNESSES of the published McCLS scheme, reproduced
//     deliberately (DESIGN.md §3). The verification equation
//     ê(V·P − h·R, h⁻¹·S) == ê(Ppub, Q_ID) takes both pairing arguments from
//     attacker-controlled signature fields, so it can be satisfied with
//     public values alone. These tests EXPECT the forgery to succeed: they
//     characterize the published scheme, they are not aspirational.
//     The MANET evaluation (paper §6) models protocol-level attackers that
//     do not craft algebraic signatures, matching the paper's threat model.
#include <gtest/gtest.h>

#include "cls/mccls.hpp"
#include "cls/registry.hpp"
#include "pairing/pairing.hpp"

namespace mccls::cls {
namespace {

crypto::Bytes msg(std::string_view s) {
  return crypto::Bytes(crypto::as_bytes(s).begin(), crypto::as_bytes(s).end());
}

struct Fixture {
  crypto::HmacDrbg rng{std::uint64_t{0xAD5E}};
  Kgc kgc = Kgc::setup(rng);
  Mccls scheme;
  UserKeys alice = scheme.enroll(kgc, "alice", rng);
};

// ---------------------------------------------------------------- games won

TEST(Adversary, RandomSignatureComponentsFail) {
  Fixture f;
  const auto m = msg("target");
  for (int i = 0; i < 8; ++i) {
    const McclsSignature junk{.v = f.rng.next_nonzero_fq(),
                              .s = f.kgc.params().p.mul(f.rng.next_nonzero_fq()),
                              .r = f.kgc.params().p.mul(f.rng.next_nonzero_fq())};
    EXPECT_FALSE(Mccls::verify_typed(f.kgc.params(), "alice", f.alice.public_key.primary(),
                                     m, junk));
  }
}

TEST(Adversary, SignatureDoesNotTransferAcrossIdentities) {
  // A signature bound to alice's identity never verifies for a different
  // identity, even under the very same public key material.
  Fixture f;
  const auto m = msg("transfer");
  const auto sig = Mccls::sign_typed(f.kgc.params(), f.alice, m, f.rng);
  EXPECT_FALSE(Mccls::verify_typed(f.kgc.params(), "mallory", f.alice.public_key.primary(),
                                   m, sig));
}

TEST(Adversary, PublicKeyReplacementAloneDoesNotVerifyOldSignatures) {
  // Type I capability: replace alice's public key with one the adversary
  // controls. Previously issued signatures hash the old key into h, so they
  // die under the replaced key.
  Fixture f;
  const auto m = msg("replace");
  const auto sig = Mccls::sign_typed(f.kgc.params(), f.alice, m, f.rng);
  const math::Fq x_adv = f.rng.next_nonzero_fq();
  const ec::G1 pk_adv = f.kgc.params().p_pub.mul(x_adv);
  EXPECT_FALSE(Mccls::verify_typed(f.kgc.params(), "alice", pk_adv, m, sig));
}

TEST(Adversary, ReplacedKeyWithoutPartialKeyCannotSignHonestly) {
  // The adversary knows its own x' but not D_alice; running the honest
  // signing algorithm with a bogus partial key fails verification.
  Fixture f;
  const auto m = msg("mallory-as-alice");
  const math::Fq x_adv = f.rng.next_nonzero_fq();
  const UserKeys forged_keys{
      .id = "alice",
      .partial_key = f.kgc.params().p.mul(f.rng.next_nonzero_fq()),  // not s·Q_alice
      .secret = x_adv,
      .public_key = PublicKey{.points = {f.kgc.params().p_pub.mul(x_adv)}}};
  const auto sig = Mccls::sign_typed(f.kgc.params(), forged_keys, m, f.rng);
  EXPECT_FALSE(Mccls::verify_typed(f.kgc.params(), "alice",
                                   forged_keys.public_key.primary(), m, sig));
}

TEST(Adversary, MaulingVFails) {
  Fixture f;
  const auto m = msg("maul");
  auto sig = Mccls::sign_typed(f.kgc.params(), f.alice, m, f.rng);
  sig.v = sig.v + math::Fq::one();
  EXPECT_FALSE(
      Mccls::verify_typed(f.kgc.params(), "alice", f.alice.public_key.primary(), m, sig));
}

TEST(Adversary, SwappingComponentsAcrossSignaturesFails) {
  Fixture f;
  const auto m1 = msg("first");
  const auto m2 = msg("second");
  const auto s1 = Mccls::sign_typed(f.kgc.params(), f.alice, m1, f.rng);
  const auto s2 = Mccls::sign_typed(f.kgc.params(), f.alice, m2, f.rng);
  const McclsSignature mixed{.v = s1.v, .s = s1.s, .r = s2.r};
  EXPECT_FALSE(
      Mccls::verify_typed(f.kgc.params(), "alice", f.alice.public_key.primary(), m1, mixed));
}

TEST(Adversary, SigningOracleOnOtherIdentitiesDoesNotHelpBaselines) {
  // Type-I game fragment for the sound baselines: signatures collected from
  // bob (a corrupted signer) never verify as alice's, under any message.
  crypto::HmacDrbg rng{std::uint64_t{0x51D3}};
  const Kgc kgc = Kgc::setup(rng);
  for (const auto name : {"ZWXF", "YHG", "AP"}) {
    const auto scheme = make_scheme(name);
    const UserKeys alice = scheme->enroll(kgc, "alice", rng);
    const UserKeys bob = scheme->enroll(kgc, "bob", rng);
    for (int i = 0; i < 4; ++i) {
      const auto m = msg("oracle message " + std::to_string(i));
      const auto sig = scheme->sign(kgc.params(), bob, m, rng);
      EXPECT_FALSE(scheme->verify(kgc.params(), "alice", alice.public_key, m, sig))
          << name;
      EXPECT_FALSE(scheme->verify(kgc.params(), "alice", bob.public_key, m, sig))
          << name;
    }
  }
}

TEST(Adversary, ApRejectsInconsistentTwoPartKeys) {
  // AP's verification includes the key-structure check
  // ê(X_A, Ppub) == ê(Y_A, P); a Type-I adversary cannot splice together
  // halves committing to different secrets.
  crypto::HmacDrbg rng{std::uint64_t{0x51D4}};
  const Kgc kgc = Kgc::setup(rng);
  const auto ap = make_scheme("AP");
  const UserKeys alice = ap->enroll(kgc, "alice", rng);
  const auto m = msg("payload");
  const auto sig = ap->sign(kgc.params(), alice, m, rng);
  // Replace Y_A with a point for a different secret: structure check fails.
  PublicKey spliced = alice.public_key;
  spliced.points[1] = kgc.params().p_pub.mul(rng.next_nonzero_fq());
  EXPECT_FALSE(ap->verify(kgc.params(), "alice", spliced, m, sig));
}

TEST(Adversary, CrossSchemeSignaturesNeverVerify) {
  // A signature produced by one scheme must not verify under another, even
  // for the same identity/keys-shape (65-66-98 byte formats + domain tags
  // make cross-acceptance structurally impossible; verify it anyway).
  crypto::HmacDrbg rng{std::uint64_t{0x51D5}};
  const Kgc kgc = Kgc::setup(rng);
  const auto m = msg("cross-scheme");
  for (const auto signer_name : {"ZWXF", "YHG", "McCLS"}) {
    const auto signer_scheme = make_scheme(signer_name);
    const UserKeys keys = signer_scheme->enroll(kgc, "alice", rng);
    const auto sig = signer_scheme->sign(kgc.params(), keys, m, rng);
    for (const auto verifier_name : {"ZWXF", "YHG", "McCLS"}) {
      if (std::string_view(signer_name) == verifier_name) continue;
      const auto verifier = make_scheme(verifier_name);
      EXPECT_FALSE(verifier->verify(kgc.params(), "alice", keys.public_key, m, sig))
          << signer_name << " signature accepted by " << verifier_name;
    }
  }
}

// ------------------------------------- documented weaknesses (reproduced)

TEST(AdversaryDocumented, PublicValueForgeryAgainstMcclsSucceeds) {
  // DOCUMENTED WEAKNESS. With only (params, Q_ID, P_ID) an adversary forges:
  //   S' = Q_ID,  R' = t·P − Ppub,  h' = H2(M, R', P_ID),  V' = h'·t.
  // Then V'·P − h'·R' = h'·Ppub and ê(h'·Ppub, h'⁻¹·Q_ID) = ê(Ppub, Q_ID).
  // The equation binds neither D_ID nor x. This test passing demonstrates
  // the break is real in our faithful implementation.
  Fixture f;
  const auto m = msg("forged without any secret");
  const math::Fq t = f.rng.next_nonzero_fq();
  const ec::G1 r_forged = f.kgc.params().p.mul(t) - f.kgc.params().p_pub;
  const math::Fq h = mccls_challenge(m, r_forged, f.alice.public_key.primary());
  const McclsSignature forgery{.v = h * t, .s = hash_id("alice"), .r = r_forged};
  EXPECT_TRUE(Mccls::verify_typed(f.kgc.params(), "alice", f.alice.public_key.primary(), m,
                                  forgery))
      << "If this starts failing, the implementation has diverged from the "
         "published verification equation.";
}

TEST(AdversaryDocumented, ObservedSignatureEnablesUniversalForgery) {
  // DOCUMENTED WEAKNESS. From one observed signature the adversary extracts
  // X = x·P = (V/h)·P − R and the static S, then forges any message:
  //   R' = u·P − X,  h' = H2(M', R', P_ID),  V' = h'·u,  S' = S.
  Fixture f;
  const auto m_seen = msg("innocuous observed message");
  const auto observed = Mccls::sign_typed(f.kgc.params(), f.alice, m_seen, f.rng);
  const math::Fq h_seen =
      mccls_challenge(m_seen, observed.r, f.alice.public_key.primary());
  const ec::G1 x_point =
      f.kgc.params().p.mul(observed.v * h_seen.inv()) - observed.r;
  ASSERT_EQ(x_point, f.kgc.params().p.mul(f.alice.secret)) << "X = x·P extraction";

  const auto m_forged = msg("attacker-chosen message");
  const math::Fq u = f.rng.next_nonzero_fq();
  const ec::G1 r_forged = f.kgc.params().p.mul(u) - x_point;
  const math::Fq h = mccls_challenge(m_forged, r_forged, f.alice.public_key.primary());
  const McclsSignature forgery{.v = h * u, .s = observed.s, .r = r_forged};
  EXPECT_TRUE(Mccls::verify_typed(f.kgc.params(), "alice", f.alice.public_key.primary(),
                                  m_forged, forgery));
}

TEST(AdversaryDocumented, BaselinesResistThePublicValueForgery) {
  // The same attack shape does not apply to ZWXF/YHG: their V component is
  // additively bound to D_A through message-dependent hash points, so a
  // transplanted/public S has no analogue. Sanity-check that transplanting
  // public points into their signatures fails.
  crypto::HmacDrbg rng{std::uint64_t{0xBA5E}};
  const Kgc kgc = Kgc::setup(rng);
  for (const auto name : {"ZWXF", "YHG"}) {
    const auto scheme = make_scheme(name);
    const UserKeys alice = scheme->enroll(kgc, "alice", rng);
    const auto m = msg("target");
    // Forgery attempt: both components set to public points.
    crypto::ByteWriter w;
    w.put_raw(kgc.params().p_pub.to_bytes());
    w.put_raw(hash_id("alice").to_bytes());
    EXPECT_FALSE(scheme->verify(kgc.params(), "alice", alice.public_key, m, w.bytes()))
        << name;
  }
}

TEST(AdversaryDocumented, KgcTypeIIForgeryViaPartialKey) {
  // DOCUMENTED WEAKNESS (breaks the paper's Theorem 2 claim): the KGC,
  // knowing D_ID, forges without x via S' = D_ID, R' = t·P, V' = h'·(t+1):
  // V'·P − h'·R' = h'·P and ê(h'·P, h'⁻¹·D_ID) = ê(P, s·Q_ID) = ê(Ppub, Q_ID).
  Fixture f;
  const auto m = msg("kgc forgery");
  const ec::G1 d_alice = f.kgc.extract_partial_key("alice");
  const math::Fq t = f.rng.next_nonzero_fq();
  const ec::G1 r_forged = f.kgc.params().p.mul(t);
  const math::Fq h = mccls_challenge(m, r_forged, f.alice.public_key.primary());
  const McclsSignature forgery{.v = h * (t + math::Fq::one()), .s = d_alice, .r = r_forged};
  EXPECT_TRUE(Mccls::verify_typed(f.kgc.params(), "alice", f.alice.public_key.primary(), m,
                                  forgery));
}

}  // namespace
}  // namespace mccls::cls
