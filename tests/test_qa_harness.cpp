// The qa harness testing itself: determinism of the seed contract, shrinker
// convergence on injected failures, repro-line format, environment parsing,
// and mutate/minimize determinism. The actual math/scheme/codec properties
// run in test_qa_{math,scheme,codec}.cpp.
#include <cstdlib>

#include <gtest/gtest.h>

#include "qa/fuzz.hpp"
#include "qa/gen.hpp"
#include "qa/property.hpp"

namespace mccls::qa {
namespace {

using crypto::Bytes;

RunConfig cfg_with(std::uint64_t seed, int iterations) {
  RunConfig cfg;
  cfg.seed = seed;
  cfg.iterations = iterations;
  return cfg;
}

// ---- seed contract --------------------------------------------------------

TEST(QaHarness, ForkByNameGivesIndependentDeterministicStreams) {
  const sim::Rng root(42);
  sim::Rng a1 = root.fork("alpha");
  sim::Rng a2 = root.fork("alpha");
  sim::Rng b = root.fork("beta");
  EXPECT_EQ(a1.next_u64(), a2.next_u64());
  sim::Rng a3 = root.fork("alpha");
  EXPECT_NE(a3.next_u64(), b.next_u64());
}

TEST(QaHarness, SameSeedSameOutcome) {
  const Property* p = find_property("u256_add_sub_roundtrip");
  ASSERT_NE(p, nullptr);
  const Outcome first = p->run(cfg_with(123, 32));
  const Outcome second = p->run(cfg_with(123, 32));
  EXPECT_EQ(first.ok, second.ok);
  EXPECT_EQ(first.iterations_run, second.iterations_run);
  EXPECT_EQ(first.counterexample, second.counterexample);
}

TEST(QaHarness, PropertyStreamIndependentOfRunOrder) {
  // Running other properties first must not perturb a property's cases:
  // each property forks its own stream from the root seed by name.
  const Property* p = find_property("fp_ring_laws");
  ASSERT_NE(p, nullptr);
  const Outcome alone = p->run(cfg_with(7, 16));
  find_property("u256_hex_roundtrip")->run(cfg_with(7, 16));
  const Outcome after_others = p->run(cfg_with(7, 16));
  EXPECT_EQ(alone.ok, after_others.ok);
  EXPECT_EQ(alone.counterexample, after_others.counterexample);
}

// ---- shrinking on an injected failure -------------------------------------

TEST(QaHarness, ShrinksInjectedByteFailureToMinimalCounterexample) {
  // Canary predicate: "all byte strings are shorter than 3". The shrinker
  // must walk any failing draw down to exactly three zero bytes.
  const auto holds = [](const Bytes& b) { return b.size() < 3; };
  const Outcome out = for_all<Bytes>("canary_len", cfg_with(99, 200), bytes_gen(64), holds);
  ASSERT_FALSE(out.ok);
  EXPECT_GE(out.failing_iteration, 0);
  EXPECT_GT(out.shrink_steps, 0);
  EXPECT_EQ(out.counterexample, show_bytes(Bytes(3, 0x00)));
}

TEST(QaHarness, ShrinksInjectedScalarFailureTowardZero) {
  // Canary predicate: "every scalar vector has a zero first element".
  const auto holds = [](const std::vector<math::U256>& s) { return s[0].is_zero(); };
  const Outcome out =
      for_all<std::vector<math::U256>>("canary_scalar", cfg_with(5, 50), scalar_vec_gen(1), holds);
  ASSERT_FALSE(out.ok);
  // Greedy shrinking ends at the minimal failing value: 1.
  EXPECT_EQ(out.counterexample, "[" + show_u256(math::U256::one()) + "]");
}

TEST(QaHarness, ReproLineNamesToolPropAndSeed) {
  const auto holds = [](const Bytes&) { return false; };
  const Outcome out = for_all<Bytes>("always_fails", cfg_with(77, 1), bytes_gen(4), holds);
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.repro(), "qa_fuzz --prop always_fails --seed 77");
  EXPECT_NE(out.message().find(out.repro()), std::string::npos);
  EXPECT_NE(out.message().find(out.counterexample), std::string::npos);
}

TEST(QaHarness, PassingRunReportsIterations) {
  const auto holds = [](const Bytes&) { return true; };
  const Outcome out = for_all<Bytes>("always_holds", cfg_with(1, 17), bytes_gen(4), holds);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.iterations_run, 17);
  EXPECT_EQ(out.failing_iteration, -1);
}

// ---- registry -------------------------------------------------------------

TEST(QaHarness, RegistryCoversAllThreeLayers) {
  EXPECT_FALSE(properties_in_layer("math").empty());
  EXPECT_FALSE(properties_in_layer("scheme").empty());
  EXPECT_FALSE(properties_in_layer("codec").empty());
  EXPECT_EQ(properties_in_layer("math").size() + properties_in_layer("scheme").size() +
                properties_in_layer("codec").size(),
            registry().size());
  EXPECT_EQ(find_property("no_such_property"), nullptr);
}

// ---- environment parsing --------------------------------------------------

TEST(QaHarness, FromEnvParsesSeedItersAndSoak) {
  ::setenv("MCCLS_QA_SEED", "0x10", 1);
  ::setenv("MCCLS_QA_ITERS", "5", 1);
  ::setenv("MCCLS_QA_SOAK", "2", 1);
  const RunConfig cfg = RunConfig::from_env();
  EXPECT_EQ(cfg.seed, 16u);
  EXPECT_EQ(cfg.iterations, 5);
  EXPECT_DOUBLE_EQ(cfg.soak_seconds, 2.0);
  ::unsetenv("MCCLS_QA_SEED");
  ::unsetenv("MCCLS_QA_ITERS");
  ::unsetenv("MCCLS_QA_SOAK");
  const RunConfig defaults = RunConfig::from_env();
  EXPECT_EQ(defaults.seed, RunConfig::kDefaultSeed);
  EXPECT_EQ(defaults.iterations, 0);
  EXPECT_DOUBLE_EQ(defaults.soak_seconds, 0.0);
}

TEST(QaHarness, SoakModeKeepsDrawingFreshCases) {
  RunConfig cfg;
  cfg.seed = 3;
  cfg.soak_seconds = 0.05;
  int distinct = 0;
  Bytes last;
  const auto holds = [&](const Bytes& b) {
    if (b != last) ++distinct;
    last = b;
    return true;
  };
  const Outcome out = for_all<Bytes>("soak_probe", cfg, bytes_gen(32), holds);
  EXPECT_TRUE(out.ok);
  EXPECT_GT(out.iterations_run, 1);
  EXPECT_GT(distinct, 1);
}

// ---- mutate / minimize ----------------------------------------------------

TEST(QaHarness, MutateIsDeterministicPerSeed) {
  const Bytes input(40, 0xAB);
  sim::Rng r1(11), r2(11), r3(12);
  EXPECT_EQ(mutate_n(r1, input, 3), mutate_n(r2, input, 3));
  // A different stream virtually always picks a different mutation.
  sim::Rng r4(12);
  EXPECT_EQ(mutate_n(r3, input, 3), mutate_n(r4, input, 3));
}

TEST(QaHarness, MutateGrowsEmptyInput) {
  sim::Rng rng(1);
  EXPECT_FALSE(mutate(rng, Bytes{}).empty());
}

TEST(QaHarness, MinimizePreservesInterestAndIsDeterministic) {
  // Interesting = contains the byte 0xEE. Minimization must converge to the
  // single-byte string {0xEE} from any haystack.
  Bytes input(64, 0x55);
  input[41] = 0xEE;
  const auto interesting = [](std::span<const std::uint8_t> b) {
    for (const auto byte : b) {
      if (byte == 0xEE) return true;
    }
    return false;
  };
  const Bytes min1 = minimize(input, interesting);
  const Bytes min2 = minimize(input, interesting);
  EXPECT_EQ(min1, min2);
  EXPECT_EQ(min1, Bytes{0xEE});
}

TEST(QaHarness, MinimizeReturnsUninterestingInputUnchanged) {
  const Bytes input(8, 0x01);
  const auto interesting = [](std::span<const std::uint8_t>) { return false; };
  EXPECT_EQ(minimize(input, interesting), input);
}

}  // namespace
}  // namespace mccls::qa
