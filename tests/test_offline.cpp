// Online/offline signing extension: signatures must be indistinguishable
// from ordinary McCLS output to any verifier, with token-pool bookkeeping.
#include "cls/offline.hpp"

#include <gtest/gtest.h>

namespace mccls::cls {
namespace {

struct Fixture {
  crypto::HmacDrbg rng{std::uint64_t{0x0FF11E}};
  Kgc kgc = Kgc::setup(rng);
  Mccls scheme;
  UserKeys alice = scheme.enroll(kgc, "alice", rng);
};

crypto::Bytes msg(std::string_view s) {
  return crypto::Bytes(crypto::as_bytes(s).begin(), crypto::as_bytes(s).end());
}

TEST(OfflineSigner, SignaturesVerifyLikeOrdinaryOnes) {
  Fixture f;
  McclsOfflineSigner signer(f.kgc.params(), f.alice);
  signer.precompute(4, f.rng);
  for (int i = 0; i < 4; ++i) {
    const auto m = msg("telemetry " + std::to_string(i));
    const McclsSignature sig = signer.sign(m, f.rng);
    EXPECT_TRUE(Mccls::verify_typed(f.kgc.params(), "alice",
                                    f.alice.public_key.primary(), m, sig))
        << i;
  }
}

TEST(OfflineSigner, PoolDrainsAndRefills) {
  Fixture f;
  McclsOfflineSigner signer(f.kgc.params(), f.alice);
  EXPECT_EQ(signer.tokens_available(), 0u);
  signer.precompute(3, f.rng);
  EXPECT_EQ(signer.tokens_available(), 3u);
  (void)signer.sign(msg("a"), f.rng);
  (void)signer.sign(msg("b"), f.rng);
  EXPECT_EQ(signer.tokens_available(), 1u);
  signer.precompute(2, f.rng);
  EXPECT_EQ(signer.tokens_available(), 3u);
}

TEST(OfflineSigner, EmptyPoolFallsBackToInlineSigning) {
  Fixture f;
  McclsOfflineSigner signer(f.kgc.params(), f.alice);
  const auto m = msg("no tokens left");
  const McclsSignature sig = signer.sign(m, f.rng);  // pool empty
  EXPECT_TRUE(
      Mccls::verify_typed(f.kgc.params(), "alice", f.alice.public_key.primary(), m, sig));
  EXPECT_EQ(signer.tokens_available(), 0u);
}

TEST(OfflineSigner, TokensAreSingleUse) {
  // Two signatures must never share an R (nonce reuse leaks x·P trivially
  // and, with the same h, the nonce itself).
  Fixture f;
  McclsOfflineSigner signer(f.kgc.params(), f.alice);
  signer.precompute(5, f.rng);
  std::vector<McclsSignature> sigs;
  for (int i = 0; i < 5; ++i) sigs.push_back(signer.sign(msg("m" + std::to_string(i)), f.rng));
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    for (std::size_t j = i + 1; j < sigs.size(); ++j) {
      EXPECT_NE(sigs[i].r, sigs[j].r) << i << "," << j;
    }
  }
}

TEST(OfflineSigner, SComponentMatchesOrdinarySigning) {
  Fixture f;
  McclsOfflineSigner signer(f.kgc.params(), f.alice);
  const auto offline_sig = signer.sign(msg("x"), f.rng);
  const auto ordinary_sig = Mccls::sign_typed(f.kgc.params(), f.alice, msg("x"), f.rng);
  EXPECT_EQ(offline_sig.s, ordinary_sig.s) << "S is signer-static in both paths";
}

TEST(OfflineSigner, WorksAcrossSerializationBoundary) {
  Fixture f;
  McclsOfflineSigner signer(f.kgc.params(), f.alice);
  signer.precompute(1, f.rng);
  const auto m = msg("wire");
  const auto bytes = signer.sign(m, f.rng).to_bytes();
  const Mccls scheme;
  EXPECT_TRUE(scheme.verify(f.kgc.params(), "alice", f.alice.public_key, m, bytes));
}

class OfflinePoolSweep : public ::testing::TestWithParam<int> {};

TEST_P(OfflinePoolSweep, AllTokensProduceValidSignatures) {
  Fixture f;
  McclsOfflineSigner signer(f.kgc.params(), f.alice);
  signer.precompute(static_cast<std::size_t>(GetParam()), f.rng);
  for (int i = 0; i < GetParam(); ++i) {
    const auto m = msg("sweep " + std::to_string(i));
    EXPECT_TRUE(Mccls::verify_typed(f.kgc.params(), "alice",
                                    f.alice.public_key.primary(), m,
                                    signer.sign(m, f.rng)));
  }
  EXPECT_EQ(signer.tokens_available(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, OfflinePoolSweep, ::testing::Values(1, 2, 8, 16));

}  // namespace
}  // namespace mccls::cls
