#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace mccls::sim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.next_u64() != b.next_u64());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng r(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(5.0, 20.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 20.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(9);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformIntInRangeAndCoversAllValues) {
  Rng r(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntZeroThrows) {
  Rng r(11);
  EXPECT_THROW(r.uniform_int(0), std::invalid_argument);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(12);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, ExponentialRejectsBadMean) {
  Rng r(13);
  EXPECT_THROW(r.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(r.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, ChanceExtremes) {
  Rng r(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ForkedStreamsAreIndependentAndStable) {
  Rng base(100);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  Rng f1_again = base.fork(1);
  bool diff = false;
  for (int i = 0; i < 10; ++i) {
    const auto a = f1.next_u64();
    EXPECT_EQ(a, f1_again.next_u64()) << "fork must be deterministic";
    diff |= (a != f2.next_u64());
  }
  EXPECT_TRUE(diff) << "distinct stream ids must differ";
}

TEST(Rng, BitsLookBalanced) {
  Rng r(15);
  int ones = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) ones += std::popcount(r.next_u64());
  const double frac = static_cast<double>(ones) / (64.0 * n);
  EXPECT_NEAR(frac, 0.5, 0.01);
}

}  // namespace
}  // namespace mccls::sim
