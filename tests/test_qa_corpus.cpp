// Replays the checked-in failure corpus (tests/corpus/*.bin) — minimized
// decoder findings plus one known-good frame per target. This suite runs in
// tier-1 BEFORE the randomized properties matter: a regression on any past
// finding fails deterministically, with the offending file named.
// MCCLS_CORPUS_DIR is injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include "qa/corpus.hpp"
#include "qa/fuzz.hpp"

namespace mccls::qa {
namespace {

TEST(QaCorpus, DirectoryIsNonEmpty) {
  EXPECT_FALSE(load_corpus(MCCLS_CORPUS_DIR).empty())
      << "no corpus under " << MCCLS_CORPUS_DIR
      << " — regenerate with: qa_fuzz --emit-corpus tests/corpus";
}

TEST(QaCorpus, EveryEntryReplaysClean) {
  for (const CorpusEntry& entry : load_corpus(MCCLS_CORPUS_DIR)) {
    const std::string error = replay_entry(entry);
    EXPECT_TRUE(error.empty()) << error;
  }
}

TEST(QaCorpus, EveryTargetHasAtLeastOneEntry) {
  const auto entries = load_corpus(MCCLS_CORPUS_DIR);
  for (const FuzzTarget& target : fuzz_targets()) {
    // Signature codecs share one representative (sig_mccls) — their framing
    // is identical fixed-size concatenation; everything else is covered.
    if (target.name.rfind("sig_", 0) == 0 && target.name != "sig_mccls") continue;
    bool found = false;
    for (const auto& entry : entries) found |= entry.target == target.name;
    EXPECT_TRUE(found) << "no corpus entry for target " << target.name;
  }
}

}  // namespace
}  // namespace mccls::qa
