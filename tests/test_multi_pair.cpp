// multi_pair — the shared-Miller-loop pairing product behind batch_verify
// and the verifyd coalescer. Its contract is exact equality with the product
// of individual pair() values for EVERY input: empty span, k = 1, pairs at
// infinity, and degenerate non-subgroup points whose Miller value is zero
// (pair() maps those to Gt::one(); the product must drop them the same way).
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "pairing/pairing.hpp"

namespace mccls::pairing {
namespace {

using ec::G1;
using math::Fp;
using math::Fp2;
using math::Fq;
using math::U256;

// Deterministic pseudo-random scalars (splitmix64 limbs) reduced mod q; no
// dependency on mccls_crypto so the sanitized tier-1 build stays minimal.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

U256 random_scalar(std::uint64_t& state) {
  U256 r{{splitmix64(state), splitmix64(state), splitmix64(state), splitmix64(state)}};
  while (cmp(r, Fq::modulus()) >= 0) sub(r, r, Fq::modulus());
  return r;
}

std::vector<std::pair<G1, G1>> random_pairs(std::size_t k, std::uint64_t seed) {
  std::uint64_t state = seed;
  std::vector<std::pair<G1, G1>> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    out.emplace_back(G1::generator().mul(random_scalar(state)),
                     G1::generator().mul(random_scalar(state)));
  }
  return out;
}

Gt product_of_pairs(const std::vector<std::pair<G1, G1>>& pairs) {
  Gt acc = Gt::one();
  for (const auto& [p, q] : pairs) acc *= pair(p, q);
  return acc;
}

TEST(MultiPair, EmptySpanIsOne) {
  EXPECT_TRUE(multi_pair({}).is_one());
}

TEST(MultiPair, SinglePairEqualsPair) {
  const auto pairs = random_pairs(1, 0x1001);
  EXPECT_EQ(multi_pair(pairs), pair(pairs[0].first, pairs[0].second));
}

TEST(MultiPair, MatchesProductForEveryWidth) {
  for (std::size_t k = 2; k <= 9; ++k) {
    const auto pairs = random_pairs(k, 0x2000 + k);
    EXPECT_EQ(multi_pair(pairs), product_of_pairs(pairs)) << "k = " << k;
  }
}

TEST(MultiPair, InfinityPairsContributeIdentity) {
  auto pairs = random_pairs(3, 0x3003);
  pairs[1].first = G1::infinity();
  EXPECT_EQ(multi_pair(pairs), product_of_pairs(pairs));

  pairs[2].second = G1::infinity();
  EXPECT_EQ(multi_pair(pairs), product_of_pairs(pairs));

  // All-infinity product: every pair contributes 1.
  std::vector<std::pair<G1, G1>> all_inf(4, {G1::infinity(), G1::infinity()});
  EXPECT_TRUE(multi_pair(all_inf).is_one());
}

TEST(MultiPair, TwoTorsionFirstArgumentMatchesPair) {
  // P = (0, 0) is 2-torsion: the very first doubling hits the vertical
  // tangent and T walks through infinity — the t_inf resurrection path.
  const auto t2 = G1::from_affine(Fp::zero(), Fp::zero());
  ASSERT_TRUE(t2.has_value());
  auto pairs = random_pairs(3, 0x4004);
  pairs[0].first = *t2;
  EXPECT_EQ(multi_pair(pairs), product_of_pairs(pairs));
}

TEST(MultiPair, DegenerateNonSubgroupInputsDropOutIdentically) {
  // Translating a subgroup point by the 2-torsion point (0,0) leaves the
  // curve but exits the q-subgroup; such pairs can zero their own Miller
  // value. pair() maps a zero Miller value to Gt::one(), so the shared-loop
  // product must drop exactly those pairs and keep the others.
  const auto t2 = G1::from_affine(Fp::zero(), Fp::zero());
  ASSERT_TRUE(t2.has_value());
  std::uint64_t state = 0x5005;
  for (int round = 0; round < 4; ++round) {
    auto pairs = random_pairs(4, splitmix64(state));
    pairs[1].first = pairs[1].first + *t2;
    pairs[3].second = pairs[3].second + *t2;
    EXPECT_EQ(multi_pair(pairs), product_of_pairs(pairs)) << "round " << round;
  }
}

TEST(MultiPair, MixedLiveDeadAndInfinity) {
  const auto t2 = G1::from_affine(Fp::zero(), Fp::zero());
  ASSERT_TRUE(t2.has_value());
  auto pairs = random_pairs(5, 0x6006);
  pairs[0].first = G1::infinity();
  pairs[2].first = pairs[2].first + *t2;
  pairs[4] = {*t2, pairs[4].second};
  EXPECT_EQ(multi_pair(pairs), product_of_pairs(pairs));
}

TEST(FinalExponentiationBatch, EmptySpan) {
  EXPECT_TRUE(final_exponentiation_batch({}).empty());
}

TEST(FinalExponentiationBatch, MatchesScalarOnMixedInputs) {
  std::vector<Fp2> fs = {
      Fp2::one(),
      Fp2::zero(),  // degenerate: scalar path maps it to Gt::one()
      Fp2{Fp::from_u64(7), Fp::from_u64(11)},
  };
  const auto batched = final_exponentiation_batch(fs);
  ASSERT_EQ(batched.size(), fs.size());
  for (std::size_t i = 0; i < fs.size(); ++i) {
    EXPECT_EQ(batched[i], final_exponentiation(fs[i])) << "i = " << i;
  }
}

}  // namespace
}  // namespace mccls::pairing
