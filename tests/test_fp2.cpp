#include "math/fp2.hpp"

#include <gtest/gtest.h>

namespace mccls::math {
namespace {

U256 derive(std::uint64_t seed, std::uint64_t lane) {
  U256 out;
  std::uint64_t x = seed * 0x9e3779b97f4a7c15ULL + lane;
  for (auto& limb : out.w) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    limb = z ^ (z >> 31);
  }
  return out;
}

Fp2 sample(std::uint64_t seed) {
  return Fp2{Fp::from_u256(derive(seed, 100)), Fp::from_u256(derive(seed, 200))};
}

TEST(Fp2, USquaredIsMinusOne) {
  const Fp2 u{Fp::zero(), Fp::one()};
  EXPECT_EQ(u * u, Fp2::from_fp(Fp::one().neg()));
}

TEST(Fp2, OneIsMultiplicativeIdentity) {
  const Fp2 a = sample(42);
  EXPECT_EQ(a * Fp2::one(), a);
  EXPECT_TRUE(Fp2::one().is_one());
  EXPECT_TRUE(Fp2::zero().is_zero());
}

TEST(Fp2, MulMatchesSchoolbook) {
  const Fp2 a = sample(1);
  const Fp2 b = sample(2);
  // (a0 + a1 u)(b0 + b1 u) = (a0b0 - a1b1) + (a0b1 + a1b0)u
  const Fp re = a.re() * b.re() - a.im() * b.im();
  const Fp im = a.re() * b.im() + a.im() * b.re();
  EXPECT_EQ(a * b, Fp2(re, im));
}

TEST(Fp2, SquareMatchesMul) {
  const Fp2 a = sample(3);
  EXPECT_EQ(a.square(), a * a);
}

TEST(Fp2, InverseRoundTrip) {
  const Fp2 a = sample(4);
  EXPECT_EQ(a * a.inv(), Fp2::one());
}

TEST(Fp2, ConjugationIsFrobenius) {
  // x^p must equal conj(x) in Fp2 when p ≡ 3 (mod 4).
  const Fp2 a = sample(5);
  EXPECT_EQ(a.pow(Fp::modulus()), a.conjugate());
}

TEST(Fp2, NormIsMultiplicative) {
  const Fp2 a = sample(6);
  const Fp2 b = sample(7);
  EXPECT_EQ((a * b).norm(), a.norm() * b.norm());
}

TEST(Fp2, ConjugateProductIsNorm) {
  const Fp2 a = sample(8);
  EXPECT_EQ(a * a.conjugate(), Fp2::from_fp(a.norm()));
}

TEST(Fp2, PowLawsHold) {
  const Fp2 a = sample(9);
  const U256 e1 = U256::from_u64(12345);
  const U256 e2 = U256::from_u64(67890);
  U256 sum;
  add(sum, e1, e2);
  EXPECT_EQ(a.pow(e1) * a.pow(e2), a.pow(sum));
  EXPECT_EQ(a.pow(U256::zero()), Fp2::one());
  EXPECT_EQ(a.pow(U256::one()), a);
}

TEST(Fp2, DistributesOverAddition) {
  const Fp2 a = sample(10);
  const Fp2 b = sample(11);
  const Fp2 c = sample(12);
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ((a - b) + b, a);
  EXPECT_EQ(a + a.neg(), Fp2::zero());
}

class Fp2LawSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fp2LawSweep, FieldAxioms) {
  const Fp2 a = sample(GetParam() * 3 + 1);
  const Fp2 b = sample(GetParam() * 3 + 2);
  const Fp2 c = sample(GetParam() * 3 + 3);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  if (!a.is_zero()) {
    EXPECT_EQ(a * a.inv(), Fp2::one());
  }
  EXPECT_EQ((a * b).conjugate(), a.conjugate() * b.conjugate());
}

INSTANTIATE_TEST_SUITE_P(Sweep, Fp2LawSweep, ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace mccls::math
