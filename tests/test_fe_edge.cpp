// Boundary behaviour of the Montgomery fields: extreme representatives,
// wide-reduction corner cases, and algebraic identities near the modulus.
#include <gtest/gtest.h>

#include "math/fe.hpp"

namespace mccls::math {
namespace {

TEST(FeEdge, NegationOfZeroIsZero) {
  EXPECT_EQ(Fp::zero().neg(), Fp::zero());
  EXPECT_EQ(Fq::zero().neg(), Fq::zero());
}

TEST(FeEdge, MinusOneSquaresToOne) {
  const Fp minus_one = Fp::one().neg();
  EXPECT_EQ(minus_one.square(), Fp::one());
  EXPECT_EQ(minus_one * minus_one, Fp::one());
}

TEST(FeEdge, ModulusMinusOneRoundTrips) {
  U256 p_minus_1;
  sub(p_minus_1, Fp::modulus(), U256::one());
  const Fp v = Fp::from_u256(p_minus_1);
  EXPECT_EQ(v.to_u256(), p_minus_1);
  EXPECT_EQ(v + Fp::one(), Fp::zero()) << "wraps to zero at the modulus";
}

TEST(FeEdge, FromWideAllOnes) {
  // The largest possible 512-bit input must reduce correctly.
  U512 max{};
  for (auto& w : max.w) w = ~std::uint64_t{0};
  const Fp reduced = Fp::from_wide(max);
  // Independent check through repeated doubling: 2^512 mod p.
  Fp acc = Fp::one();
  for (int i = 0; i < 512; ++i) acc = acc.dbl();  // 2^512 mod p
  EXPECT_EQ(reduced + Fp::one(), acc) << "2^512 - 1 + 1 == 2^512 (mod p)";
}

TEST(FeEdge, FromWideHalvesAgreeWithComposition) {
  const U256 lo = U256::from_hex("1111111111111111222222222222222233333333333333334444444444444444");
  const U256 hi = U256::from_hex("0123456789abcdef");
  const Fp direct = Fp::from_wide(U512::from_halves(lo, hi));
  // hi*2^256 + lo, assembled in field arithmetic.
  Fp two_256 = Fp::one();
  for (int i = 0; i < 256; ++i) two_256 = two_256.dbl();
  const Fp assembled = Fp::from_u256(hi) * two_256 + Fp::from_u256(lo);
  EXPECT_EQ(direct, assembled);
}

TEST(FeEdge, PowByModulusIsFrobeniusIdentity) {
  // x^p == x in Fp (Frobenius is the identity on the prime field).
  const Fp x = Fp::from_u64(0xDECAFBAD);
  EXPECT_EQ(x.pow(Fp::modulus()), x);
}

TEST(FeEdge, InverseOfOneAndMinusOne) {
  EXPECT_EQ(Fp::one().inv(), Fp::one());
  const Fp minus_one = Fp::one().neg();
  EXPECT_EQ(minus_one.inv(), minus_one);
}

TEST(FeEdge, ScalarFieldOrderRelationsHold) {
  // p + 1 == 4q links the two moduli; verify in integer arithmetic.
  U256 p_plus_1;
  add(p_plus_1, Fp::modulus(), U256::one());
  U256 four_q = Fq::modulus();
  U256 tmp;
  add(tmp, four_q, four_q);  // 2q
  add(four_q, tmp, tmp);     // 4q
  EXPECT_EQ(p_plus_1, four_q);
}

TEST(FeEdge, DoubleOfLargeValuesStaysCanonical) {
  U256 p_minus_1;
  sub(p_minus_1, Fp::modulus(), U256::one());
  const Fp big = Fp::from_u256(p_minus_1);  // == -1
  const Fp doubled = big.dbl();             // == -2
  U256 expect;
  sub(expect, Fp::modulus(), U256::from_u64(2));
  EXPECT_EQ(doubled.to_u256(), expect);
  EXPECT_LT(cmp(doubled.to_u256(), Fp::modulus()), 0);
}

}  // namespace
}  // namespace mccls::math
