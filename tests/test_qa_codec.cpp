// Tier-1 runner for the registered codec-layer properties: round-trip and
// mutation-totality for every fuzz target (svc wire frames, key files,
// public keys, the four signature codecs, AODV/DSR packets). One gtest case
// per property.
#include <gtest/gtest.h>

#include "qa/property.hpp"

namespace mccls::qa {
namespace {

class QaCodecProperty : public ::testing::TestWithParam<const Property*> {};

TEST_P(QaCodecProperty, Holds) {
  const Outcome out = GetParam()->run(RunConfig::from_env());
  EXPECT_TRUE(out.ok) << out.message();
  EXPECT_GT(out.iterations_run, 0);
}

INSTANTIATE_TEST_SUITE_P(Codec, QaCodecProperty,
                         ::testing::ValuesIn(properties_in_layer("codec")),
                         [](const ::testing::TestParamInfo<const Property*>& info) {
                           return info.param->name;
                         });

}  // namespace
}  // namespace mccls::qa
