// DSR protocol behaviour: source-route discovery, caching, forwarding,
// link-failure recovery, the security extension and both attacker roles.
#include "dsr/dsr_agent.hpp"

#include <gtest/gtest.h>

#include "dsr/dsr_scenario.hpp"

namespace mccls::dsr {
namespace {

using aodv::ModeledClsSecurity;

struct Net {
  explicit Net(const std::vector<net::Vec2>& positions, SecurityProvider* security = nullptr,
               std::vector<AttackType> roles = {}, DsrConfig cfg = {})
      : mobility(positions), channel(simulator, sim::Rng(7), mobility, net::PhyConfig{}) {
    roles.resize(positions.size(), AttackType::kNone);
    for (std::size_t i = 0; i < positions.size(); ++i) {
      if (security != nullptr && roles[i] == AttackType::kNone) {
        security->enroll(static_cast<NodeId>(i));
      }
      agents.push_back(std::make_unique<DsrAgent>(simulator, channel,
                                                  static_cast<NodeId>(i), cfg,
                                                  sim::Rng(100 + i), metrics, security,
                                                  roles[i]));
    }
  }

  sim::Simulator simulator;
  net::StaticMobility mobility;
  net::Channel channel;
  aodv::Metrics metrics;
  std::vector<std::unique_ptr<DsrAgent>> agents;
};

std::vector<net::Vec2> chain4() {
  return {{0, 0}, {200, 0}, {400, 0}, {600, 0}};
}

TEST(Dsr, DiscoversAndDeliversAcrossChain) {
  Net n(chain4());
  n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(3, 512); });
  n.simulator.run_until(10.0);
  EXPECT_EQ(n.metrics.data_sent, 1u);
  EXPECT_EQ(n.metrics.data_delivered, 1u);
  EXPECT_EQ(n.metrics.data_forwarded, 2u);
  EXPECT_EQ(n.metrics.rreq_initiated, 1u);
  EXPECT_GE(n.metrics.rrep_generated, 1u);
}

TEST(Dsr, SourceRouteIsCached) {
  Net n(chain4());
  n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(3, 512); });
  n.simulator.run_until(5.0);
  const auto* route = n.agents[0]->cached_route(3);
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(*route, (std::vector<NodeId>{1, 2})) << "relays in path order";
  // Second packet reuses the cache: no new discovery.
  n.simulator.schedule_at(5.5, [&] { n.agents[0]->send_data(3, 512); });
  n.simulator.run_until(10.0);
  EXPECT_EQ(n.metrics.rreq_initiated, 1u);
  EXPECT_EQ(n.metrics.data_delivered, 2u);
}

TEST(Dsr, DirectNeighborUsesEmptyRoute) {
  Net n({{0, 0}, {100, 0}});
  n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(1, 256); });
  n.simulator.run_until(5.0);
  EXPECT_EQ(n.metrics.data_delivered, 1u);
  EXPECT_EQ(n.metrics.data_forwarded, 0u);
  const auto* route = n.agents[0]->cached_route(1);
  ASSERT_NE(route, nullptr);
  EXPECT_TRUE(route->empty());
}

TEST(Dsr, UnreachableTargetExhaustsRetries) {
  Net n({{0, 0}, {5000, 0}});
  n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(1, 512); });
  n.simulator.run_until(30.0);
  EXPECT_EQ(n.metrics.data_delivered, 0u);
  EXPECT_EQ(n.metrics.rreq_initiated, 1u);
  EXPECT_EQ(n.metrics.rreq_retries, 2u);
  EXPECT_EQ(n.metrics.buffer_drops, 1u);
}

TEST(Dsr, BurstBufferedDuringDiscovery) {
  Net n(chain4());
  n.simulator.schedule_at(1.0, [&] {
    for (int i = 0; i < 5; ++i) n.agents[0]->send_data(3, 512);
  });
  n.simulator.run_until(10.0);
  EXPECT_EQ(n.metrics.data_delivered, 5u);
  EXPECT_EQ(n.metrics.rreq_initiated, 1u);
}

TEST(Dsr, LinkBreakReportsAndReroutes) {
  Net n(chain4());
  for (int i = 0; i < 30; ++i) {
    n.simulator.schedule_at(1.0 + i * 0.5, [&] { n.agents[0]->send_data(3, 512); });
  }
  n.simulator.schedule_at(6.0, [&] { n.mobility.move(2, {400, 5000}); });
  n.simulator.schedule_at(10.0, [&] { n.mobility.move(2, {400, 0}); });
  n.simulator.run_until(30.0);
  EXPECT_GT(n.metrics.rerr_sent, 0u);
  EXPECT_GT(n.metrics.link_fail_drops, 0u);
  EXPECT_GE(n.metrics.rreq_initiated, 2u) << "route re-discovered after the break";
  EXPECT_GT(n.metrics.data_delivered, 15u);
}

TEST(Dsr, RouteCacheExpires) {
  DsrConfig cfg;
  cfg.route_lifetime = 2.0;
  Net n(chain4(), nullptr, {}, cfg);
  n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(3, 512); });
  n.simulator.schedule_at(10.0, [&] { n.agents[0]->send_data(3, 512); });
  n.simulator.run_until(20.0);
  EXPECT_EQ(n.metrics.data_delivered, 2u);
  EXPECT_EQ(n.metrics.rreq_initiated, 2u) << "cache expired between packets";
}

TEST(DsrSecured, DeliversAndCountsOps) {
  ModeledClsSecurity security(9, 98, 34);
  Net n(chain4(), &security);
  n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(3, 512); });
  n.simulator.run_until(10.0);
  EXPECT_EQ(n.metrics.data_delivered, 1u);
  EXPECT_GT(n.metrics.sign_ops, 0u);
  EXPECT_GT(n.metrics.verify_ops, 0u);
  EXPECT_EQ(n.metrics.auth_rejected, 0u);
}

TEST(DsrSecured, UnenrolledOriginatorRejected) {
  ModeledClsSecurity security(9, 98, 34);
  Net n(chain4(), &security, {AttackType::kRushing});
  n.simulator.schedule_at(1.0, [&] { n.agents[0]->send_data(3, 512); });
  n.simulator.run_until(10.0);
  EXPECT_EQ(n.metrics.data_delivered, 0u);
  EXPECT_GT(n.metrics.auth_rejected, 0u);
}

// Black-hole topology: source 0, chain 0-1-2, attacker 3 near the source.
std::vector<net::Vec2> blackhole_topology() {
  return {{0, 0}, {200, 0}, {400, 0}, {100, 150}};
}

TEST(DsrBlackHole, CapturesTrafficInPlainDsr) {
  Net n(blackhole_topology(), nullptr, {AttackType::kNone, AttackType::kNone,
                                        AttackType::kNone, AttackType::kBlackHole});
  for (int i = 0; i < 20; ++i) {
    n.simulator.schedule_at(1.0 + i * 0.5, [&] { n.agents[0]->send_data(2, 512); });
  }
  n.simulator.run_until(30.0);
  EXPECT_GT(n.metrics.attacker_dropped, 10u)
      << "the forged 1-relay route out-competes the honest 2-relay route";
  EXPECT_LT(n.metrics.data_delivered, 10u);
}

TEST(DsrBlackHole, McclsExtensionNeutralizes) {
  ModeledClsSecurity security(5, 98, 34);
  Net n(blackhole_topology(), &security,
        {AttackType::kNone, AttackType::kNone, AttackType::kNone, AttackType::kBlackHole});
  for (int i = 0; i < 20; ++i) {
    n.simulator.schedule_at(1.0 + i * 0.5, [&] { n.agents[0]->send_data(2, 512); });
  }
  n.simulator.run_until(30.0);
  EXPECT_EQ(n.metrics.attacker_dropped, 0u);
  EXPECT_GT(n.metrics.auth_rejected, 0u) << "forged target signature rejected";
  EXPECT_GE(n.metrics.data_delivered, 18u);
}

// Rushing topology: parallel relays, attacker on the lower branch.
std::vector<net::Vec2> rushing_topology() {
  return {{0, 0}, {200, 120}, {200, -120}, {400, 0}};
}

TEST(DsrRushing, WinsRaceInPlainDsr) {
  Net n(rushing_topology(), nullptr,
        {AttackType::kNone, AttackType::kNone, AttackType::kRushing, AttackType::kNone});
  for (int i = 0; i < 20; ++i) {
    n.simulator.schedule_at(1.0 + i * 0.5, [&] { n.agents[0]->send_data(3, 512); });
  }
  n.simulator.run_until(30.0);
  EXPECT_GT(n.metrics.attacker_dropped, 10u);
  EXPECT_LT(n.metrics.data_delivered, 10u);
}

TEST(DsrRushing, McclsExtensionNeutralizes) {
  ModeledClsSecurity security(5, 98, 34);
  Net n(rushing_topology(), &security,
        {AttackType::kNone, AttackType::kNone, AttackType::kRushing, AttackType::kNone});
  for (int i = 0; i < 20; ++i) {
    n.simulator.schedule_at(1.0 + i * 0.5, [&] { n.agents[0]->send_data(3, 512); });
  }
  n.simulator.run_until(30.0);
  EXPECT_EQ(n.metrics.attacker_dropped, 0u);
  EXPECT_GT(n.metrics.auth_rejected, 0u);
  EXPECT_GE(n.metrics.data_delivered, 18u);
}

TEST(DsrSecured, HopAuthReplayIsRejected) {
  // The binding rule hop_auth.signer == transmitter: a packet whose hop
  // signature names a different (honest) node must be dropped even though
  // the signature itself verifies.
  ModeledClsSecurity security(5, 98, 34);
  Net n(chain4(), &security);
  // Craft a forwarded RREQ that claims node 1 signed the hop, but inject it
  // from node 2 (simulating a replayed signature).
  DsrRreq rreq{.request_id = 99, .origin = 0, .target = 3, .route = {1}, .ttl = 10};
  rreq.origin_auth = security.sign(0, signable_origin(rreq));
  rreq.hop_auth = security.sign(1, signable_hop(rreq));  // valid sig by node 1
  n.simulator.schedule_at(1.0, [&] {
    n.channel.broadcast(2, base_wire_size(rreq), DsrPayload{rreq});  // but sent by 2
  });
  n.simulator.run_until(5.0);
  EXPECT_GT(n.metrics.auth_rejected, 0u) << "replayed hop signature must be rejected";
  EXPECT_EQ(n.metrics.rreq_forwarded, 0u);
}

// ----------------------------------------------------- sybil (outsider)

TEST(DsrSybil, PoisonsRouteCacheInPlainDsr) {
  // The sybil answers discoveries with a fabricated route through a phantom
  // relay. Plain DSR caches the shorter forged route; packets sent along it
  // die in MAC retries against a node that does not exist — a different
  // failure signature (link_fail_drops) than black-hole absorption.
  Net n(blackhole_topology(), nullptr, {AttackType::kNone, AttackType::kNone,
                                        AttackType::kNone, AttackType::kSybil});
  for (int i = 0; i < 20; ++i) {
    n.simulator.schedule_at(1.0 + i * 0.5, [&] { n.agents[0]->send_data(2, 512); });
  }
  n.simulator.run_until(30.0);
  EXPECT_GT(n.metrics.link_fail_drops, 0u)
      << "unicasts to the phantom relay exhaust MAC retries";
  EXPECT_LT(n.metrics.data_delivered, 20u);
}

TEST(DsrSybil, McclsBindingRejectsPhantomReply) {
  // Secured DSR requires origin_auth.signer == RREP target; the sybil's
  // reply is signed by a phantom id, so it dies at the binding check and the
  // honest route wins.
  ModeledClsSecurity security(5, 98, 34);
  Net n(blackhole_topology(), &security,
        {AttackType::kNone, AttackType::kNone, AttackType::kNone, AttackType::kSybil});
  for (int i = 0; i < 20; ++i) {
    n.simulator.schedule_at(1.0 + i * 0.5, [&] { n.agents[0]->send_data(2, 512); });
  }
  n.simulator.run_until(30.0);
  EXPECT_GT(n.metrics.auth_rejected, 0u) << "phantom-signed RREP rejected";
  EXPECT_GE(n.metrics.data_delivered, 18u);
}

// ------------------------------------------------- RREQ replay storm

TEST(DsrReplayStorm, FloodsThePlainNetwork) {
  Net clean(blackhole_topology(), nullptr, {});
  for (int i = 0; i < 10; ++i) {
    clean.simulator.schedule_at(1.0 + i * 0.5, [&] { clean.agents[0]->send_data(2, 512); });
  }
  clean.simulator.run_until(40.0);

  Net n(blackhole_topology(), nullptr, {AttackType::kNone, AttackType::kNone,
                                        AttackType::kNone, AttackType::kReplayStorm});
  for (int i = 0; i < 10; ++i) {
    n.simulator.schedule_at(1.0 + i * 0.5, [&] { n.agents[0]->send_data(2, 512); });
  }
  n.simulator.run_until(40.0);
  EXPECT_GT(n.channel.stats().frames_transmitted,
            2 * clean.channel.stats().frames_transmitted)
      << "replayed and mutated RREQ copies multiply control traffic";
}

TEST(DsrReplayStorm, McclsFreshnessCheckStopsIt) {
  ModeledClsSecurity security(5, 98, 34);
  Net n(blackhole_topology(), &security,
        {AttackType::kNone, AttackType::kNone, AttackType::kNone,
         AttackType::kReplayStorm});
  for (int i = 0; i < 20; ++i) {
    n.simulator.schedule_at(1.0 + i * 0.5, [&] { n.agents[0]->send_data(2, 512); });
  }
  n.simulator.run_until(40.0);
  EXPECT_GT(n.metrics.replay_rejected, 0u)
      << "stale signed issued_at rejected before signature verification";
  EXPECT_GE(n.metrics.data_delivered, 18u);
}

// ------------------------------------------------------ scenario runner

TEST(DsrScenario, DeliversAtPaperScale) {
  aodv::ScenarioConfig cfg;
  cfg.duration = 60;
  cfg.num_flows = 6;
  cfg.max_speed = 5;
  cfg.seed = 11;
  const auto r = run_dsr_scenario(cfg);
  EXPECT_GT(r.metrics.data_sent, 500u);
  EXPECT_GT(r.pdr(), 0.7);
  EXPECT_EQ(r.metrics.attacker_dropped, 0u);
}

TEST(DsrScenario, DeterministicForSeed) {
  aodv::ScenarioConfig cfg;
  cfg.duration = 30;
  cfg.num_flows = 4;
  cfg.seed = 5;
  const auto a = run_dsr_scenario(cfg);
  const auto b = run_dsr_scenario(cfg);
  EXPECT_EQ(a.metrics.data_delivered, b.metrics.data_delivered);
  EXPECT_EQ(a.channel.frames_transmitted, b.channel.frames_transmitted);
}

TEST(DsrScenario, McclsZeroesDropRatioUnderAttack) {
  for (const AttackType attack : {AttackType::kBlackHole, AttackType::kRushing}) {
    aodv::ScenarioConfig cfg;
    cfg.duration = 60;
    cfg.num_flows = 6;
    cfg.max_speed = 5;
    cfg.seed = 13;
    cfg.attack = attack;
    cfg.security = aodv::SecurityMode::kModeled;
    const auto r = run_dsr_scenario(cfg);
    EXPECT_EQ(r.metrics.attacker_dropped, 0u);
    EXPECT_GT(r.metrics.auth_rejected, 0u);
    EXPECT_GT(r.pdr(), 0.5);
  }
}

TEST(DsrScenario, AttackDegradesPlainDsr) {
  aodv::ScenarioConfig cfg;
  cfg.duration = 60;
  cfg.num_flows = 6;
  cfg.max_speed = 5;
  cfg.seed = 13;
  const double clean = run_dsr_scenario(cfg).pdr();
  cfg.attack = AttackType::kBlackHole;
  const auto attacked = run_dsr_scenario(cfg);
  EXPECT_LT(attacked.pdr(), clean);
  EXPECT_GT(attacked.drop_ratio(), 0.0);
}

TEST(DsrScenario, RejectsBadConfig) {
  aodv::ScenarioConfig cfg;
  cfg.num_nodes = 1;
  EXPECT_THROW(run_dsr_scenario(cfg), std::invalid_argument);
  EXPECT_THROW(run_dsr_scenario_averaged(aodv::ScenarioConfig{}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mccls::dsr
