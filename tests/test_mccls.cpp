// McCLS scheme behaviour (paper §4-5): correctness, tamper rejection,
// serialization, pairing-cache equivalence.
#include "cls/mccls.hpp"

#include <gtest/gtest.h>

#include "pairing/pairing.hpp"

namespace mccls::cls {
namespace {

struct Fixture {
  crypto::HmacDrbg rng{std::uint64_t{2008}};
  Kgc kgc = Kgc::setup(rng);
  Mccls scheme;
  UserKeys alice = scheme.enroll(kgc, "alice@cps", rng);
  UserKeys bob = scheme.enroll(kgc, "bob@cps", rng);
};

crypto::Bytes msg(std::string_view s) {
  return crypto::Bytes(crypto::as_bytes(s).begin(), crypto::as_bytes(s).end());
}

TEST(Mccls, SignVerifyRoundTrip) {
  Fixture f;
  const auto m = msg("route request 42");
  const auto sig = f.scheme.sign(f.kgc.params(), f.alice, m, f.rng);
  EXPECT_EQ(sig.size(), f.scheme.signature_size());
  EXPECT_TRUE(f.scheme.verify(f.kgc.params(), "alice@cps", f.alice.public_key, m, sig));
}

TEST(Mccls, VerificationEquationHolds) {
  // Explicitly re-derive the paper's correctness argument:
  // ê(V·P − h·R, h⁻¹·S) == ê(Ppub, Q_ID).
  Fixture f;
  const auto m = msg("hello");
  const auto sig = Mccls::sign_typed(f.kgc.params(), f.alice, m, f.rng);
  const math::Fq h = mccls_challenge(m, sig.r, f.alice.public_key.primary());
  const ec::G1 left = f.kgc.params().p.mul(sig.v) - sig.r.mul(h);
  EXPECT_EQ(pairing::pair(left, sig.s.mul(h.inv())),
            pairing::pair(f.kgc.params().p_pub, hash_id("alice@cps")));
  // And V·P − h·R really is h·x·P.
  EXPECT_EQ(left, f.kgc.params().p.mul(h * f.alice.secret));
}

TEST(Mccls, RejectsWrongMessage) {
  Fixture f;
  const auto sig = f.scheme.sign(f.kgc.params(), f.alice, msg("original"), f.rng);
  EXPECT_FALSE(
      f.scheme.verify(f.kgc.params(), "alice@cps", f.alice.public_key, msg("tampered"), sig));
}

TEST(Mccls, RejectsWrongIdentity) {
  Fixture f;
  const auto m = msg("message");
  const auto sig = f.scheme.sign(f.kgc.params(), f.alice, m, f.rng);
  EXPECT_FALSE(f.scheme.verify(f.kgc.params(), "bob@cps", f.alice.public_key, m, sig));
}

TEST(Mccls, RejectsWrongPublicKey) {
  Fixture f;
  const auto m = msg("message");
  const auto sig = f.scheme.sign(f.kgc.params(), f.alice, m, f.rng);
  EXPECT_FALSE(f.scheme.verify(f.kgc.params(), "alice@cps", f.bob.public_key, m, sig));
}

TEST(Mccls, RejectsSignatureFromOtherUser) {
  Fixture f;
  const auto m = msg("message");
  const auto sig = f.scheme.sign(f.kgc.params(), f.bob, m, f.rng);
  EXPECT_FALSE(f.scheme.verify(f.kgc.params(), "alice@cps", f.alice.public_key, m, sig));
}

TEST(Mccls, RejectsBitFlips) {
  Fixture f;
  const auto m = msg("bitflip probe");
  auto sig = f.scheme.sign(f.kgc.params(), f.alice, m, f.rng);
  // Flip one bit in each component region: V (0..31), S (32..64), R (65..97).
  for (const std::size_t pos : {0u, 31u, 40u, 70u, 97u}) {
    auto corrupted = sig;
    corrupted[pos] ^= 0x01;
    EXPECT_FALSE(f.scheme.verify(f.kgc.params(), "alice@cps", f.alice.public_key, m,
                                 corrupted))
        << "bit flip at byte " << pos << " was accepted";
  }
}

TEST(Mccls, RejectsTruncatedAndOversized) {
  Fixture f;
  const auto m = msg("sizes");
  auto sig = f.scheme.sign(f.kgc.params(), f.alice, m, f.rng);
  auto truncated = sig;
  truncated.pop_back();
  EXPECT_FALSE(f.scheme.verify(f.kgc.params(), "alice@cps", f.alice.public_key, m, truncated));
  auto oversized = sig;
  oversized.push_back(0);
  EXPECT_FALSE(f.scheme.verify(f.kgc.params(), "alice@cps", f.alice.public_key, m, oversized));
  EXPECT_FALSE(f.scheme.verify(f.kgc.params(), "alice@cps", f.alice.public_key, m, {}));
}

TEST(Mccls, SignaturesAreRandomized) {
  Fixture f;
  const auto m = msg("same message");
  const auto sig1 = f.scheme.sign(f.kgc.params(), f.alice, m, f.rng);
  const auto sig2 = f.scheme.sign(f.kgc.params(), f.alice, m, f.rng);
  EXPECT_NE(sig1, sig2) << "nonce reuse";
  EXPECT_TRUE(f.scheme.verify(f.kgc.params(), "alice@cps", f.alice.public_key, m, sig1));
  EXPECT_TRUE(f.scheme.verify(f.kgc.params(), "alice@cps", f.alice.public_key, m, sig2));
}

TEST(Mccls, SComponentIsSignerStatic) {
  // S = x⁻¹·D_ID does not depend on the message — the property batch
  // verification builds on (and a documented weakness, see test_adversary).
  Fixture f;
  const auto s1 = Mccls::sign_typed(f.kgc.params(), f.alice, msg("m1"), f.rng);
  const auto s2 = Mccls::sign_typed(f.kgc.params(), f.alice, msg("m2"), f.rng);
  EXPECT_EQ(s1.s, s2.s);
  EXPECT_EQ(s1.s, f.alice.partial_key.mul(f.alice.secret.inv()));
}

TEST(Mccls, TypedSerializationRoundTrip) {
  Fixture f;
  const auto sig = Mccls::sign_typed(f.kgc.params(), f.alice, msg("serde"), f.rng);
  const auto back = McclsSignature::from_bytes(sig.to_bytes());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->v.to_u256(), sig.v.to_u256());
  EXPECT_EQ(back->s, sig.s);
  EXPECT_EQ(back->r, sig.r);
}

TEST(Mccls, SerdeRejectsNonCanonicalScalar) {
  Fixture f;
  auto bytes = Mccls::sign_typed(f.kgc.params(), f.alice, msg("x"), f.rng).to_bytes();
  // Overwrite V with q (non-canonical: V must be < q).
  const auto q_bytes = math::Fq::modulus().to_be_bytes();
  std::copy(q_bytes.begin(), q_bytes.end(), bytes.begin());
  EXPECT_FALSE(McclsSignature::from_bytes(bytes).has_value());
}

TEST(Mccls, CachedVerifyMatchesUncached) {
  Fixture f;
  PairingCache cache;
  const auto m = msg("cached");
  const auto sig = f.scheme.sign(f.kgc.params(), f.alice, m, f.rng);
  EXPECT_TRUE(f.scheme.verify(f.kgc.params(), "alice@cps", f.alice.public_key, m, sig, &cache));
  EXPECT_EQ(cache.size(), 1u);
  // Second verification hits the cache and must agree.
  EXPECT_TRUE(f.scheme.verify(f.kgc.params(), "alice@cps", f.alice.public_key, m, sig, &cache));
  EXPECT_EQ(cache.size(), 1u);
  // A tampered message must still fail through the cache path.
  EXPECT_FALSE(
      f.scheme.verify(f.kgc.params(), "alice@cps", f.alice.public_key, msg("other"), sig, &cache));
}

TEST(Mccls, EmptyMessageSigns) {
  Fixture f;
  const crypto::Bytes empty;
  const auto sig = f.scheme.sign(f.kgc.params(), f.alice, empty, f.rng);
  EXPECT_TRUE(f.scheme.verify(f.kgc.params(), "alice@cps", f.alice.public_key, empty, sig));
}

TEST(Mccls, LargeMessageSigns) {
  Fixture f;
  crypto::Bytes big(1 << 16);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i);
  const auto sig = f.scheme.sign(f.kgc.params(), f.alice, big, f.rng);
  EXPECT_TRUE(f.scheme.verify(f.kgc.params(), "alice@cps", f.alice.public_key, big, sig));
  big[12345] ^= 1;
  EXPECT_FALSE(f.scheme.verify(f.kgc.params(), "alice@cps", f.alice.public_key, big, sig));
}

TEST(Mccls, CostsMatchTable1Row) {
  const Mccls scheme;
  const OpCounts c = scheme.costs();
  EXPECT_EQ(c.sign_pairings, 0);
  EXPECT_EQ(c.sign_scalar_mults, 2);
  EXPECT_EQ(c.verify_pairings, 1);
  EXPECT_EQ(c.public_key_points, 1);
}

}  // namespace
}  // namespace mccls::cls
