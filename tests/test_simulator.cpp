#include "sim/simulator.hpp"

#include <gtest/gtest.h>

namespace mccls::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0.0);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 3.0);
}

TEST(Simulator, SimultaneousEventsRunFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator s;
  double fired_at = -1;
  s.schedule_at(5.0, [&] {
    s.schedule_in(2.5, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator s;
  double fired_at = -1;
  s.schedule_at(1.0, [&] {
    s.schedule_in(-5.0, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.0);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator s;
  s.schedule_at(2.0, [&] {
    EXPECT_THROW(s.schedule_at(1.0, [] {}), std::invalid_argument);
  });
  s.run();
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  const EventId id = s.schedule_at(1.0, [&] { ran = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.executed_events(), 0u);
}

TEST(Simulator, CancelAfterExecutionIsNoop) {
  Simulator s;
  int runs = 0;
  const EventId id = s.schedule_at(1.0, [&] { ++runs; });
  s.run();
  s.cancel(id);  // must not affect anything
  s.schedule_at(2.0, [&] { ++runs; });
  s.run();
  EXPECT_EQ(runs, 2);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  std::vector<double> fired;
  s.schedule_at(1.0, [&] { fired.push_back(1.0); });
  s.schedule_at(2.0, [&] { fired.push_back(2.0); });
  s.schedule_at(3.0, [&] { fired.push_back(3.0); });
  s.run_until(2.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0})) << "events at the boundary run";
  EXPECT_EQ(s.now(), 2.0);
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator s;
  s.run_until(42.0);
  EXPECT_EQ(s.now(), 42.0);
}

TEST(Simulator, EventsCanScheduleCascades) {
  Simulator s;
  int depth = 0;
  std::function<void()> cascade = [&] {
    if (++depth < 100) s.schedule_in(0.001, cascade);
  };
  s.schedule_at(0.0, cascade);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_NEAR(s.now(), 0.099, 1e-9);
}

TEST(Simulator, ZeroDelaySelfScheduleStillAdvancesQueue) {
  // Events at the same timestamp run FIFO, so a zero-delay chain terminates.
  Simulator s;
  int count = 0;
  s.schedule_at(1.0, [&] { ++count; });
  s.schedule_at(0.5, [&] {
    s.schedule_in(0.0, [&] { ++count; });
  });
  s.run();
  EXPECT_EQ(count, 2);
}

}  // namespace
}  // namespace mccls::sim
