#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "crypto/encoding.hpp"
#include "crypto/hmac.hpp"

namespace mccls::crypto {
namespace {

TEST(Hmac, Rfc4231Case1) {
  // RFC 4231 test case 1: key = 20x 0x0b, data = "Hi There".
  Bytes key(20, 0x0b);
  const auto mac = HmacSha256::mac(key, as_bytes("Hi There"));
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  // key = "Jefe", data = "what do ya want for nothing?"
  const auto mac = HmacSha256::mac(as_bytes("Jefe"), as_bytes("what do ya want for nothing?"));
  EXPECT_EQ(to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  const auto mac = HmacSha256::mac(key, data);
  EXPECT_EQ(to_hex(mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key.
  Bytes key(131, 0xaa);
  const auto mac = HmacSha256::mac(
      key, as_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, StreamingMatchesOneShot) {
  Bytes key{1, 2, 3, 4};
  HmacSha256 h(key);
  h.update(as_bytes("hello "));
  h.update(as_bytes("world"));
  EXPECT_EQ(h.finalize(), HmacSha256::mac(key, as_bytes("hello world")));
}

TEST(Drbg, DeterministicForSameSeed) {
  HmacDrbg d1(std::uint64_t{42});
  HmacDrbg d2(std::uint64_t{42});
  EXPECT_EQ(d1.generate(64), d2.generate(64));
}

TEST(Drbg, DifferentSeedsDiverge) {
  HmacDrbg d1(std::uint64_t{42});
  HmacDrbg d2(std::uint64_t{43});
  EXPECT_NE(d1.generate(64), d2.generate(64));
}

TEST(Drbg, SequentialOutputsDiffer) {
  HmacDrbg d(std::uint64_t{7});
  const auto a = d.generate(32);
  const auto b = d.generate(32);
  EXPECT_NE(a, b);
}

TEST(Drbg, ReseedChangesStream) {
  HmacDrbg d1(std::uint64_t{7});
  HmacDrbg d2(std::uint64_t{7});
  (void)d1.generate(16);
  (void)d2.generate(16);
  d2.reseed(as_bytes("extra entropy"));
  EXPECT_NE(d1.generate(32), d2.generate(32));
}

TEST(Drbg, VariableLengthRequests) {
  HmacDrbg d(std::uint64_t{99});
  for (std::size_t n : {1u, 31u, 32u, 33u, 100u, 1000u}) {
    EXPECT_EQ(d.generate(n).size(), n);
  }
}

TEST(Drbg, FqSamplesAreCanonicalAndNonZero) {
  HmacDrbg d(std::uint64_t{1234});
  for (int i = 0; i < 200; ++i) {
    const auto v = d.next_nonzero_fq();
    EXPECT_FALSE(v.is_zero());
    EXPECT_LT(cmp(v.to_u256(), math::Fq::modulus()), 0);
  }
}

TEST(Drbg, FqSamplesLookUniform) {
  // Crude sanity check: top bit of the 252-bit scalar should be set roughly
  // 40-60% of the time (exact expectation depends on q's leading digits).
  HmacDrbg d(std::uint64_t{5678});
  int top_limb_large = 0;
  const int kSamples = 400;
  for (int i = 0; i < kSamples; ++i) {
    const auto v = d.next_fq().to_u256();
    if (v.bit_length() >= 251) ++top_limb_large;
  }
  EXPECT_GT(top_limb_large, kSamples / 4);
  EXPECT_LT(top_limb_large, kSamples);
}

TEST(Drbg, ByteSeedConstructorWorks) {
  const Bytes seed{0xde, 0xad, 0xbe, 0xef};
  HmacDrbg d1{std::span<const std::uint8_t>{seed}};
  HmacDrbg d2{std::span<const std::uint8_t>{seed}};
  EXPECT_EQ(d1.generate(16), d2.generate(16));
}

}  // namespace
}  // namespace mccls::crypto
