// The scenario-matrix determinism contract (src/scen/matrix.hpp): per-seed
// results are bit-identical for any worker count and any cell order, every
// job is reproducible by the serial single-cell runner, disconnected
// placements surface per cell instead of being swallowed, and the CBR
// traffic source emits an exactly countable tick sequence (no float drift).
#include "scen/matrix.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <thread>

#include "aodv/traffic.hpp"

namespace mccls::scen {
namespace {

bool same_result(const aodv::ScenarioResult& a, const aodv::ScenarioResult& b) {
  const auto& m = a.metrics;
  const auto& n = b.metrics;
  return m.data_sent == n.data_sent && m.data_delivered == n.data_delivered &&
         m.data_forwarded == n.data_forwarded && m.rreq_initiated == n.rreq_initiated &&
         m.rreq_forwarded == n.rreq_forwarded && m.rreq_retries == n.rreq_retries &&
         m.rrep_generated == n.rrep_generated && m.rrep_forwarded == n.rrep_forwarded &&
         m.rerr_sent == n.rerr_sent && m.attacker_dropped == n.attacker_dropped &&
         m.buffer_drops == n.buffer_drops && m.no_route_drops == n.no_route_drops &&
         m.link_fail_drops == n.link_fail_drops && m.auth_rejected == n.auth_rejected &&
         m.replay_rejected == n.replay_rejected && m.sign_ops == n.sign_ops &&
         m.verify_ops == n.verify_ops && m.total_delay == n.total_delay &&
         m.delay_samples == n.delay_samples &&
         a.channel.frames_transmitted == b.channel.frames_transmitted &&
         a.channel.frames_delivered == b.channel.frames_delivered &&
         a.channel.collisions == b.channel.collisions &&
         a.channel.random_losses == b.channel.random_losses &&
         a.channel.unicast_failures == b.channel.unicast_failures &&
         a.channel.queue_drops == b.channel.queue_drops &&
         a.channel.bytes_transmitted == b.channel.bytes_transmitted &&
         a.disconnected_placements == b.disconnected_placements;
}

Cell quick_cell(std::string name, Protocol proto, aodv::AttackType attack,
                aodv::SecurityMode security, unsigned seeds = 2) {
  Cell cell;
  cell.name = std::move(name);
  cell.protocol = proto;
  cell.seeds = seeds;
  cell.base.num_nodes = 20;
  cell.base.duration = 15.0;
  cell.base.num_flows = 6;
  cell.base.security = security;
  cell.base.attack = attack;
  cell.base.num_attackers = attack == aodv::AttackType::kNone ? 0 : 3;
  return cell;
}

std::vector<Cell> mixed_matrix() {
  return {
      quick_cell("aodv_none_sec", Protocol::kAodv, aodv::AttackType::kNone,
                 aodv::SecurityMode::kModeled),
      quick_cell("aodv_blackhole_unsec", Protocol::kAodv, aodv::AttackType::kBlackHole,
                 aodv::SecurityMode::kNone),
      quick_cell("aodv_sybil_sec", Protocol::kAodv, aodv::AttackType::kSybil,
                 aodv::SecurityMode::kModeled),
      quick_cell("dsr_replay_sec", Protocol::kDsr, aodv::AttackType::kReplayStorm,
                 aodv::SecurityMode::kModeled),
  };
}

void expect_same_matrix(const MatrixResult& a, const MatrixResult& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    ASSERT_EQ(a.cells[c].name, b.cells[c].name);
    ASSERT_EQ(a.cells[c].per_seed.size(), b.cells[c].per_seed.size());
    EXPECT_TRUE(same_result(a.cells[c].pooled, b.cells[c].pooled))
        << "pooled result differs for cell " << a.cells[c].name;
    for (std::size_t s = 0; s < a.cells[c].per_seed.size(); ++s) {
      EXPECT_TRUE(same_result(a.cells[c].per_seed[s], b.cells[c].per_seed[s]))
          << "cell " << a.cells[c].name << " seed " << s << " differs";
    }
  }
}

TEST(ScenMatrix, BitIdenticalAcrossWorkerCounts) {
  const auto cells = mixed_matrix();
  const MatrixResult serial = run_matrix(cells, 1);
  const MatrixResult four = run_matrix(cells, 4);
  const MatrixResult eight = run_matrix(cells, 8);
  expect_same_matrix(serial, four);
  expect_same_matrix(serial, eight);
  // Sanity: the runs actually simulated something.
  EXPECT_GT(serial.cells[0].pooled.metrics.data_sent, 0u);
}

TEST(ScenMatrix, CellOrderDoesNotChangeResults) {
  auto cells = mixed_matrix();
  const MatrixResult forward = run_matrix(cells, 4);
  std::reverse(cells.begin(), cells.end());
  const MatrixResult backward = run_matrix(cells, 4);
  ASSERT_EQ(forward.cells.size(), backward.cells.size());
  for (const CellResult& fc : forward.cells) {
    const auto it = std::find_if(backward.cells.begin(), backward.cells.end(),
                                 [&](const CellResult& bc) { return bc.name == fc.name; });
    ASSERT_NE(it, backward.cells.end());
    EXPECT_TRUE(same_result(fc.pooled, it->pooled)) << fc.name;
  }
}

TEST(ScenMatrix, PerSeedMatchesDirectSerialRunner) {
  // Every matrix job must be reproducible by the public single-job entry
  // point AND by the underlying scenario runner given the same seed.
  const auto cells = mixed_matrix();
  const MatrixResult result = run_matrix(cells, 8);
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (unsigned s = 0; s < cells[c].seeds; ++s) {
      EXPECT_TRUE(same_result(result.cells[c].per_seed[s], run_cell_seed(cells[c], s)))
          << cells[c].name << " seed " << s;
    }
  }
  aodv::ScenarioConfig direct = cells[0].base;
  direct.seed = cells[0].seed_base + 1;
  EXPECT_TRUE(same_result(result.cells[0].per_seed[1], aodv::run_scenario(direct)));
}

TEST(ScenMatrix, PooledIsSeedOrderSum) {
  const auto cells = mixed_matrix();
  const MatrixResult result = run_matrix(cells, 4);
  for (const CellResult& cell : result.cells) {
    std::uint64_t sent = 0, delivered = 0;
    double delay = 0;
    for (const auto& one : cell.per_seed) {
      sent += one.metrics.data_sent;
      delivered += one.metrics.data_delivered;
      delay += one.metrics.total_delay;
    }
    EXPECT_EQ(cell.pooled.metrics.data_sent, sent) << cell.name;
    EXPECT_EQ(cell.pooled.metrics.data_delivered, delivered) << cell.name;
    EXPECT_EQ(cell.pooled.metrics.total_delay, delay)
        << cell.name << ": reduction must add delays in seed order";
  }
}

TEST(ScenMatrix, RejectsMalformedMatrices) {
  auto cells = mixed_matrix();
  cells[1].name = cells[0].name;
  EXPECT_THROW(run_matrix(cells, 2), std::invalid_argument) << "duplicate name";
  cells = mixed_matrix();
  cells[2].name.clear();
  EXPECT_THROW(run_matrix(cells, 2), std::invalid_argument) << "unnamed cell";
  cells = mixed_matrix();
  cells[3].seeds = 0;
  EXPECT_THROW(run_matrix(cells, 2), std::invalid_argument) << "zero seeds";
}

TEST(ScenMatrix, DisconnectedPlacementIsSurfacedPerCell) {
  // 4 nodes with 100 m radios scattered over 50 km × 50 km: no placement
  // budget will connect that. The run must complete AND report it — the old
  // behaviour was to fall back silently and measure a partitioned field.
  Cell cell = quick_cell("sparse", Protocol::kAodv, aodv::AttackType::kNone,
                         aodv::SecurityMode::kNone, /*seeds=*/2);
  cell.base.num_nodes = 4;
  cell.base.num_flows = 1;
  cell.base.duration = 2.0;
  cell.base.area_width = 50000;
  cell.base.area_height = 50000;
  cell.base.phy.range = 100;
  cell.base.placement_attempts = 3;
  const MatrixResult result = run_matrix({cell}, 2);
  EXPECT_EQ(result.cells[0].pooled.disconnected_placements, 2u)
      << "both seeds drew disconnected placements and must say so";
  for (const auto& one : result.cells[0].per_seed) {
    EXPECT_EQ(one.disconnected_placements, 1u);
  }
}

TEST(ScenMatrix, ConnectedPlacementReportsZero) {
  const MatrixResult result = run_matrix({mixed_matrix()[0]}, 2);
  EXPECT_EQ(result.cells[0].pooled.disconnected_placements, 0u);
}

// --------------------------------------------------------------- traffic

struct TinyNet {
  TinyNet()
      : mobility({{0, 0}, {100, 0}}),
        channel(simulator, sim::Rng(7), mobility, net::PhyConfig{}) {
    for (net::NodeId i = 0; i < 2; ++i) {
      agents.push_back(std::make_unique<aodv::AodvAgent>(
          simulator, channel, i, aodv::AodvConfig{}, sim::Rng(100 + i), metrics, nullptr,
          aodv::AttackType::kNone));
    }
  }
  sim::Simulator simulator;
  net::StaticMobility mobility;
  net::Channel channel;
  aodv::Metrics metrics;
  std::vector<std::unique_ptr<aodv::AodvAgent>> agents;
};

TEST(ScenMatrix, CbrFlowTickCountIsExact) {
  // start=1, interval=0.1, stop=4 → ticks at 1.0, 1.1, ..., 3.9: exactly 30.
  // The old accumulator (t += interval in a float loop) drifted and could
  // emit 29 or 31 depending on the interval's binary representation; the
  // rewrite computes each tick as start + k * interval.
  TinyNet n;
  aodv::install_flow(n.simulator, n.agents,
                     aodv::CbrFlow{.src = 0, .dst = 1, .start = 1.0, .stop = 4.0,
                                   .interval = 0.1, .payload_bytes = 64});
  n.simulator.run_until(10.0);
  EXPECT_EQ(n.metrics.data_sent, 30u);
  EXPECT_EQ(n.metrics.data_delivered, 30u);
}

TEST(ScenMatrix, CbrFlowStopBoundaryIsExclusive) {
  // A tick landing exactly on `stop` must not fire: start=0.5, interval=0.5,
  // stop=2.0 → ticks at 0.5, 1.0, 1.5 only.
  TinyNet n;
  aodv::install_flow(n.simulator, n.agents,
                     aodv::CbrFlow{.src = 0, .dst = 1, .start = 0.5, .stop = 2.0,
                                   .interval = 0.5, .payload_bytes = 64});
  n.simulator.run_until(10.0);
  EXPECT_EQ(n.metrics.data_sent, 3u);
}

// --------------------------------------------------------------- mobility

TEST(ScenMatrix, ConcurrentDistinctNodeQueriesAreSafe) {
  // Regression for the const-position data race: position() used to mutate
  // per-node state through `mutable` members behind a const interface. The
  // contract is now explicit — concurrent queries for DISTINCT nodes are
  // safe. The TSan duplicate of this binary (tsan/ScenMatrix.*) is the
  // enforcement; this plain build just checks the results stay sane.
  net::RandomWaypointMobility::Config cfg;
  cfg.max_speed = 10.0;
  sim::Rng rng(42);
  net::RandomWaypointMobility mobility(8, cfg, rng);
  std::vector<std::thread> threads;
  std::vector<net::Vec2> last(8);
  for (net::NodeId node = 0; node < 8; ++node) {
    threads.emplace_back([&mobility, &last, node] {
      for (int step = 0; step <= 200; ++step) {
        last[node] = mobility.position(node, 0.1 * step);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (net::NodeId node = 0; node < 8; ++node) {
    EXPECT_GE(last[node].x, 0.0);
    EXPECT_LE(last[node].x, cfg.width);
    EXPECT_GE(last[node].y, 0.0);
    EXPECT_LE(last[node].y, cfg.height);
  }
}

TEST(ScenMatrix, AdvanceAllMatchesLazyAdvancement) {
  net::RandomWaypointMobility::Config cfg;
  sim::Rng rng_a(99);
  sim::Rng rng_b(99);
  net::RandomWaypointMobility eager(6, cfg, rng_a);
  net::RandomWaypointMobility lazy(6, cfg, rng_b);
  eager.advance_all(50.0);
  for (net::NodeId node = 0; node < 6; ++node) {
    const net::Vec2 a = eager.position(node, 50.0);
    const net::Vec2 b = lazy.position(node, 50.0);
    EXPECT_DOUBLE_EQ(a.x, b.x) << "node " << node;
    EXPECT_DOUBLE_EQ(a.y, b.y) << "node " << node;
  }
}

}  // namespace
}  // namespace mccls::scen
