// kgcd end-to-end: epoch-scoped issuance, directory admission and
// revocation, wire totality, verify-by-identity through the verifyd
// resolver hook, and THE acceptance test — hard-kill crash recovery with a
// torn WAL tail where every enrolled identity still verifies end-to-end
// with bit-identical public-key bytes after reboot.
#include "kgc/kgcd.hpp"

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cls/mccls.hpp"
#include "svc/service.hpp"

namespace mccls::kgc {
namespace {

namespace fs = std::filesystem;
using crypto::Bytes;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("kgcd_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// One master key + scheme shared by every case; each test boots its own
// daemon(s) from the same master so issued partial keys are comparable
// across reboots.
struct KgcdFixture {
  crypto::HmacDrbg rng{std::uint64_t{0x46CDF1}};
  cls::Kgc kgc = cls::Kgc::setup(rng);
  cls::Mccls scheme;

  std::unique_ptr<Kgcd> boot(const std::string& dir, KgcdConfig config = {}) {
    config.data_dir = dir;
    config.fsync = false;  // keep the suite fast; durability is the store's job
    return std::make_unique<Kgcd>(kgc.master_key_for_tests(), std::move(config));
  }

  /// A user keypair whose partial key came from the daemon (the real enroll
  /// flow: user submits pk, daemon validates + logs + issues).
  struct Enrolled {
    cls::UserKeys keys;  ///< id == the scoped identity the daemon issued for
    Bytes pk_bytes;
  };
  Enrolled enroll_user(Kgcd& daemon, const std::string& id) {
    const math::Fq x = rng.next_nonzero_fq();
    const cls::PublicKey pk = scheme.derive_public(kgc.params(), x);
    const Bytes pk_bytes = pk.to_bytes();
    const auto outcome = daemon.enroll(id, pk_bytes);
    EXPECT_EQ(outcome.status, KgcStatus::kOk) << id;
    return Enrolled{.keys = cls::UserKeys{.id = outcome.scoped_id,
                                          .partial_key = outcome.partial_key,
                                          .secret = x,
                                          .public_key = pk},
                    .pk_bytes = pk_bytes};
  }
};

// Collects verifyd responses; lets the test block until all arrived.
struct ResponseSink {
  std::mutex mutex;
  std::condition_variable cv;
  std::map<std::uint64_t, svc::Status> statuses;
  std::size_t count = 0;

  svc::VerifyService::Completion completion() {
    return [this](const svc::VerifyResponse& response) {
      std::lock_guard lock(mutex);
      statuses[response.request_id] = response.status;
      ++count;
      cv.notify_all();
    };
  }

  bool wait_for(std::size_t n, std::chrono::seconds timeout = std::chrono::seconds(60)) {
    std::unique_lock lock(mutex);
    return cv.wait_for(lock, timeout, [&] { return count >= n; });
  }
};

// --------------------------------------------------------------- issuance

TEST(Kgcd, EnrollIssuesAVerifiableEpochScopedPartialKey) {
  KgcdFixture f;
  const auto daemon = f.boot(fresh_dir("issue"));
  const auto alice = f.enroll_user(*daemon, "alice");
  EXPECT_EQ(alice.keys.id, "alice@epoch-0");

  // The issued partial key is D = s·H1("alice@epoch-0"): a signature made
  // with it verifies under the scoped identity...
  const auto msg = crypto::as_bytes(std::string_view{"hello kgc"});
  const Bytes sig = f.scheme.sign(f.kgc.params(), alice.keys, msg, f.rng);
  EXPECT_TRUE(f.scheme.verify(f.kgc.params(), alice.keys.id, alice.keys.public_key,
                              msg, sig));
  // ...and under nothing else (the epoch scope is load-bearing).
  EXPECT_FALSE(f.scheme.verify(f.kgc.params(), "alice", alice.keys.public_key, msg, sig));
}

TEST(Kgcd, RefusesBadKeysConflictsAndPreScopedIdentities) {
  KgcdFixture f;
  const auto daemon = f.boot(fresh_dir("refuse"));
  const auto alice = f.enroll_user(*daemon, "alice");

  EXPECT_EQ(daemon->enroll("mallory", Bytes{0xDE, 0xAD}).status, KgcStatus::kInvalidKey);
  EXPECT_EQ(daemon->enroll("", alice.pk_bytes).status, KgcStatus::kInvalidKey);
  // A pre-scoped identity would double-scope on issuance; refuse it up front.
  EXPECT_EQ(daemon->enroll("bob@epoch-3", alice.pk_bytes).status, KgcStatus::kInvalidKey);

  // Same identity, different key: conflict. Same key again: re-issuance.
  const cls::PublicKey other = f.scheme.derive_public(f.kgc.params(), f.rng.next_nonzero_fq());
  EXPECT_EQ(daemon->enroll("alice", other.to_bytes()).status, KgcStatus::kConflict);
  EXPECT_EQ(daemon->enroll("alice", alice.pk_bytes).status, KgcStatus::kOk);
}

TEST(Kgcd, RevocationStopsResolutionAndReissuance) {
  KgcdFixture f;
  const auto daemon = f.boot(fresh_dir("revoke"));
  const auto alice = f.enroll_user(*daemon, "alice");

  EXPECT_TRUE(daemon->directory().resolve("alice").has_key());
  EXPECT_EQ(daemon->revoke("ghost"), KgcStatus::kUnknownId);
  EXPECT_EQ(daemon->revoke("alice"), KgcStatus::kOk);
  EXPECT_EQ(daemon->revoke("alice"), KgcStatus::kOk) << "revocation is idempotent";

  EXPECT_EQ(daemon->lookup("alice").status, KgcStatus::kRevoked);
  EXPECT_EQ(daemon->enroll("alice", alice.pk_bytes).status, KgcStatus::kRevoked);
  EXPECT_FALSE(daemon->directory().resolve("alice").has_key());
  EXPECT_FALSE(daemon->directory().resolve(alice.keys.id).has_key())
      << "the scoped form must not outlive the revocation";
}

TEST(Kgcd, EpochRolloverClosesTheScopedResolveWindow) {
  KgcdFixture f;
  const auto daemon = f.boot(fresh_dir("epoch"), KgcdConfig{.epoch = 5});
  const auto alice = f.enroll_user(*daemon, "alice");
  EXPECT_EQ(alice.keys.id, "alice@epoch-5");

  // Within the grace window (default 1 trailing epoch) the scoped identity
  // still resolves; one epoch further and it is dead — that is revocation.
  EXPECT_TRUE(daemon->directory().resolve("alice@epoch-5").has_key());
  daemon->set_epoch(6);
  EXPECT_TRUE(daemon->directory().resolve("alice@epoch-5").has_key());
  daemon->set_epoch(7);
  EXPECT_FALSE(daemon->directory().resolve("alice@epoch-5").has_key());
  EXPECT_TRUE(daemon->directory().resolve("alice").has_key())
      << "the plain identity outlives epoch rollovers until revoked";

  // Re-issuance at the new epoch hands out a key scoped to it.
  EXPECT_EQ(daemon->enroll("alice", alice.pk_bytes).scoped_id, "alice@epoch-7");
}

// ------------------------------------------------------------------- wire

TEST(Kgcd, HandleFrameIsTotal) {
  KgcdFixture f;
  const auto daemon = f.boot(fresh_dir("total"));
  for (const Bytes garbage :
       {Bytes{}, Bytes{0x00}, Bytes{0xFF, 0xFF, 0xFF}, Bytes(64, 0xA5)}) {
    const auto response = decode_kgc_response(daemon->handle_frame(garbage));
    ASSERT_TRUE(response.has_value()) << "every frame gets a decodable response";
    EXPECT_EQ(response->status, KgcStatus::kMalformed);
    EXPECT_EQ(response->request_id, 0u);
  }
}

TEST(Kgcd, WireEnrollAndLookupRoundTrip) {
  KgcdFixture f;
  const auto daemon = f.boot(fresh_dir("wire"));
  const cls::PublicKey pk = f.scheme.derive_public(f.kgc.params(), f.rng.next_nonzero_fq());

  const auto enroll = decode_kgc_response(daemon->handle_frame(encode_kgc_request(
      KgcRequest{.op = KgcOp::kEnroll, .request_id = 7, .id = "alice",
                 .pk_bytes = pk.to_bytes()})));
  ASSERT_TRUE(enroll.has_value());
  EXPECT_EQ(enroll->op, KgcOp::kEnroll);
  EXPECT_EQ(enroll->request_id, 7u);
  EXPECT_EQ(enroll->status, KgcStatus::kOk);
  // The payload is the issued partial key: s·H1("alice@epoch-0") exactly.
  const auto expected_partial = f.kgc.extract_partial_key("alice@epoch-0").to_bytes();
  EXPECT_EQ(enroll->payload,
            Bytes(expected_partial.begin(), expected_partial.end()));

  const auto lookup = decode_kgc_response(daemon->handle_frame(encode_kgc_request(
      KgcRequest{.op = KgcOp::kLookup, .request_id = 8, .id = "alice"})));
  ASSERT_TRUE(lookup.has_value());
  EXPECT_EQ(lookup->status, KgcStatus::kOk);
  EXPECT_EQ(lookup->payload, pk.to_bytes());
  EXPECT_EQ(lookup->epoch, 0u);

  const auto missing = decode_kgc_response(daemon->handle_frame(encode_kgc_request(
      KgcRequest{.op = KgcOp::kLookup, .request_id = 9, .id = "nobody"})));
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, KgcStatus::kUnknownId);
}

// --------------------------------------------------------- auto-snapshot

TEST(Kgcd, AutoSnapshotFoldsEveryShardAtTheConfiguredCadence) {
  KgcdFixture f;
  const std::string dir = fresh_dir("autosnap");
  const auto daemon = f.boot(dir, KgcdConfig{.snapshot_every = 4});
  for (int i = 0; i < 3; ++i) {
    (void)f.enroll_user(*daemon, "node-" + std::to_string(i));
  }
  const LogStore& store = daemon->store();
  bool any_unfolded = false;
  for (std::size_t s = 0; s < store.shards(); ++s) {
    any_unfolded = any_unfolded || store.shard_sequence(s) >= store.oldest_on_disk(s);
  }
  EXPECT_TRUE(any_unfolded) << "three mutations must not reach the cadence yet";

  (void)f.enroll_user(*daemon, "node-3");
  // Each enroll logs two records (the enrollment and its voucher issuance).
  EXPECT_EQ(store.total_sequence(), 8u);
  for (std::size_t s = 0; s < store.shards(); ++s) {
    EXPECT_EQ(store.oldest_on_disk(s), store.shard_sequence(s) + 1)
        << "the fourth mutation triggers a snapshot, which folds shard " << s;
  }
}

// Regression for a lost-update race: snapshot() used to export the
// directory and truncate the WAL without excluding concurrent mutators, so
// an enroll that mutated + durably appended in that window was dropped from
// both files — acknowledged, then gone after recovery. The commit lock must
// make snapshot-vs-append atomic; this hammers the window and requires every
// acknowledged enroll to survive a reboot.
TEST(Kgcd, SnapshotRacingEnrollsNeverDropsAnAcknowledgedMutation) {
  KgcdFixture f;
  const std::string dir = fresh_dir("snaprace");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 12;

  // Pre-generate key material: the fixture's rng is single-threaded.
  std::vector<std::vector<Bytes>> pk_bytes(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      pk_bytes[static_cast<std::size_t>(t)].push_back(
          f.scheme.derive_public(f.kgc.params(), f.rng.next_nonzero_fq()).to_bytes());
    }
  }
  const auto id_for = [](int t, int i) {
    return "t" + std::to_string(t) + "-n" + std::to_string(i);
  };

  {
    const auto daemon = f.boot(dir);
    std::atomic<bool> done{false};
    std::thread snapper([&] {
      while (!done.load(std::memory_order_relaxed)) {
        EXPECT_TRUE(daemon->snapshot().has_value());
      }
    });
    std::vector<std::thread> enrollers;
    for (int t = 0; t < kThreads; ++t) {
      enrollers.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const auto outcome = daemon->enroll(
              id_for(t, i), pk_bytes[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)]);
          EXPECT_EQ(outcome.status, KgcStatus::kOk) << id_for(t, i);
        }
      });
    }
    for (auto& thread : enrollers) thread.join();
    done.store(true, std::memory_order_relaxed);
    snapper.join();
  }  // clean shutdown; recovery below reads only what the store persisted

  const auto daemon = f.boot(dir);
  EXPECT_EQ(daemon->directory().size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const auto lookup = daemon->lookup(id_for(t, i));
      ASSERT_EQ(lookup.status, KgcStatus::kOk) << id_for(t, i);
      EXPECT_EQ(lookup.pk_bytes,
                pk_bytes[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)])
          << id_for(t, i);
    }
  }
}

// ---------------------------------------------------- verify-by-identity

TEST(Kgcd, VerifyByIdentityResolvesThroughTheDirectory) {
  KgcdFixture f;
  const auto daemon = f.boot(fresh_dir("byid"));
  const auto alice = f.enroll_user(*daemon, "alice");
  const auto eve = f.enroll_user(*daemon, "eve");
  EXPECT_EQ(daemon->revoke("eve"), KgcStatus::kOk);

  const auto msg = crypto::as_bytes(std::string_view{"verify me by name"});
  const Bytes sig = f.scheme.sign(f.kgc.params(), alice.keys, msg, f.rng);
  const auto by_id = [&](std::uint64_t request_id, const std::string& id,
                         Bytes signature) {
    return svc::VerifyRequest{.request_id = request_id, .scheme = "McCLS", .id = id,
                              .by_identity = true,
                              .message = Bytes(msg.begin(), msg.end()),
                              .signature = std::move(signature)};
  };

  ResponseSink sink;
  {
    svc::VerifyService service(f.kgc.params(),
                               svc::ServiceConfig{.workers = 2,
                                                  .resolver = &daemon->directory()});
    EXPECT_TRUE(service.submit(by_id(1, alice.keys.id, sig), sink.completion()));
    EXPECT_TRUE(service.submit(by_id(2, "stranger@epoch-0", sig), sink.completion()));
    EXPECT_TRUE(service.submit(by_id(3, eve.keys.id, sig), sink.completion()));
    Bytes tampered = sig;
    tampered[tampered.size() / 2] ^= 0x01;
    EXPECT_TRUE(service.submit(by_id(4, alice.keys.id, std::move(tampered)),
                               sink.completion()));
    ASSERT_TRUE(sink.wait_for(4));
  }
  EXPECT_EQ(sink.statuses.at(1), svc::Status::kVerified);
  EXPECT_EQ(sink.statuses.at(2), svc::Status::kUnknownSigner);
  EXPECT_EQ(sink.statuses.at(3), svc::Status::kUnknownSigner) << "revoked signer";
  EXPECT_EQ(sink.statuses.at(4), svc::Status::kRejected);
  const auto metrics = daemon->metrics().snapshot();
  EXPECT_GT(metrics.dir_hits + metrics.dir_misses, 0u)
      << "by-identity requests must go through the directory cache";
}

// The ISSUE acceptance test: a directory outage must degrade verifyd's
// by-identity path into kUnavailable answers — never kUnknownSigner for a
// signer in good standing — while a *revoked* signer keeps answering
// kUnknownSigner from the negative cache throughout the outage. The breaker
// trips under sustained failure, fast-fails while open, and recovers through
// half-open probes once the fault clears.
TEST(Kgcd, DirectoryOutageDegradesToUnavailableAndBreakerRecovers) {
  KgcdFixture f;
  const auto daemon = f.boot(fresh_dir("outage"));
  const auto alice = f.enroll_user(*daemon, "alice");
  const auto bob = f.enroll_user(*daemon, "bob");
  EXPECT_EQ(daemon->revoke("bob"), KgcStatus::kOk);

  svc::FaultInjectingResolver faulty(&daemon->directory(),
                                     svc::FaultConfig{.seed = 0xD15A57E8});
  svc::ResilientConfig resilient_config;
  resilient_config.max_attempts = 2;
  resilient_config.backoff_base = std::chrono::microseconds(1);
  resilient_config.backoff_cap = std::chrono::microseconds(50);
  resilient_config.breaker_consecutive = 4;
  resilient_config.breaker_open = std::chrono::milliseconds(10);
  resilient_config.half_open_probes = 1;
  // Generous TTL: bob's revocation verdict must outlive the whole outage.
  resilient_config.negative_ttl = std::chrono::seconds(30);
  svc::ResilientResolver resilient(&faulty, resilient_config);

  ResponseSink sink;
  std::uint64_t next_id = 1;
  svc::VerifyService service(
      f.kgc.params(),
      svc::ServiceConfig{.workers = 2, .resolver = &resilient});
  const auto msg = crypto::as_bytes(std::string_view{"degraded mode"});
  const Bytes alice_sig = f.scheme.sign(f.kgc.params(), alice.keys, msg, f.rng);
  const auto ask = [&](const std::string& id, const Bytes& sig) {
    const std::uint64_t request_id = next_id++;
    EXPECT_TRUE(service.submit(
        svc::VerifyRequest{.request_id = request_id, .scheme = "McCLS", .id = id,
                           .by_identity = true,
                           .message = Bytes(msg.begin(), msg.end()),
                           .signature = sig},
        sink.completion()));
    EXPECT_TRUE(sink.wait_for(request_id));
    return sink.statuses.at(request_id);
  };

  // Phase 1 — healthy: alice verifies; revoked bob answers kUnknownSigner
  // (and the verdict lands in the negative cache).
  EXPECT_EQ(ask(alice.keys.id, alice_sig), svc::Status::kVerified);
  EXPECT_EQ(ask(bob.keys.id, alice_sig), svc::Status::kUnknownSigner);

  // Phase 2 — total outage: every directory call fails.
  faulty.set_fail_rate(1.0);
  bool breaker_tripped = false;
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(ask(alice.keys.id, alice_sig), svc::Status::kUnavailable)
        << "a transient fault must never read as an unknown signer";
    if (resilient.breaker_state() == svc::BreakerState::kOpen) {
      breaker_tripped = true;
      break;
    }
  }
  EXPECT_TRUE(breaker_tripped) << "sustained failure must trip the breaker";
  // While open: alice still answers kUnavailable (fast-fail, live service);
  // revoked bob still answers kUnknownSigner — from the cache, not the
  // (dead) directory.
  EXPECT_EQ(ask(alice.keys.id, alice_sig), svc::Status::kUnavailable);
  EXPECT_EQ(ask(bob.keys.id, alice_sig), svc::Status::kUnknownSigner)
      << "revocation holds through the outage via the negative cache";
  const auto mid_outage = service.metrics().snapshot();
  EXPECT_GT(mid_outage.unavailable, 0u);
  EXPECT_GT(mid_outage.negative_cache_hits, 0u);
  EXPECT_EQ(mid_outage.unknown_signer, 2u)
      << "only bob's two lookups may answer kUnknownSigner";

  // Phase 3 — fault clears: after the open window, the half-open probe
  // succeeds, the breaker closes, and alice verifies again.
  faulty.set_fail_rate(0.0);
  svc::Status recovered = svc::Status::kUnavailable;
  for (int i = 0; i < 50 && recovered != svc::Status::kVerified; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    recovered = ask(alice.keys.id, alice_sig);
  }
  EXPECT_EQ(recovered, svc::Status::kVerified) << "breaker must recover";
  EXPECT_EQ(resilient.breaker_state(), svc::BreakerState::kClosed);
  EXPECT_GT(service.metrics().snapshot().breaker_trips, 0u);
}

TEST(Kgcd, ByIdentityWithoutAResolverAnswersUnknownSigner) {
  KgcdFixture f;
  ResponseSink sink;
  {
    svc::VerifyService service(f.kgc.params(), svc::ServiceConfig{.workers = 1});
    EXPECT_TRUE(service.submit(
        svc::VerifyRequest{.request_id = 1, .scheme = "McCLS", .id = "anyone",
                           .by_identity = true,
                           .message = Bytes{0x01},
                           .signature = Bytes(f.scheme.signature_size(), 0x00)},
        sink.completion()));
    ASSERT_TRUE(sink.wait_for(1));
  }
  EXPECT_EQ(sink.statuses.at(1), svc::Status::kUnknownSigner);
}

// -------------------------------------------------- crash recovery (E2E)

// The acceptance test: enroll N identities (with a snapshot mid-stream so
// recovery exercises snapshot + WAL together), hard-kill mid-append by
// leaving a torn final record on disk, reboot on the same directory, and
// require (a) the recovery report to account for everything, (b) every
// identity's public key to come back bit-identical, and (c) every identity
// to verify end-to-end through verifyd's verify-by-identity path.
TEST(Kgcd, CrashRecoveryReplaysTornWalAndEveryIdentityStillVerifies) {
  KgcdFixture f;
  const std::string dir = fresh_dir("crash");
  constexpr int kIdentities = 8;

  std::vector<KgcdFixture::Enrolled> users;
  std::vector<Bytes> signatures;
  const auto msg = crypto::as_bytes(std::string_view{"signed before the crash"});
  {
    const auto daemon = f.boot(dir);
    for (int i = 0; i < kIdentities; ++i) {
      users.push_back(f.enroll_user(*daemon, "node-" + std::to_string(i)));
      signatures.push_back(f.scheme.sign(f.kgc.params(), users.back().keys, msg, f.rng));
      if (i == kIdentities / 2 - 1) {
        ASSERT_TRUE(daemon->snapshot().has_value());
      }
    }
  }  // daemon destroyed: the clean part of the "crash" (fds closed)

  // Hard-kill simulation: a crash mid-append leaves a prefix of a valid
  // frame at the tail of the victim shard's *active segment* — exactly where
  // an interrupted append() would have been writing.
  const Bytes partial = frame_payload(encode_wal_record(WalRecord{
      .type = WalRecordType::kEnroll, .epoch = 0, .id = "torn-victim",
      .pk_bytes = users[0].pk_bytes}));
  {
    const std::size_t shard = shard_index("torn-victim", 16);
    fs::path active;
    std::uint64_t best_base = 0;
    for (const auto& file :
         fs::directory_iterator(fs::path(dir) / ("shard-" + std::to_string(shard)))) {
      const std::string name = file.path().filename().string();
      if (name.rfind("seg-", 0) != 0) continue;
      const std::uint64_t base = std::stoull(name.substr(4));
      if (base >= best_base) {
        best_base = base;
        active = file.path();
      }
    }
    ASSERT_FALSE(active.empty()) << "every shard always has an active segment";
    std::ofstream wal(active, std::ios::binary | std::ios::app);
    wal.write(reinterpret_cast<const char*>(partial.data()),
              static_cast<std::streamsize>(partial.size() * 2 / 3));
  }

  // Reboot. Replay must fold snapshot + WAL and truncate the torn tail.
  const auto daemon = f.boot(dir);
  const RecoveryReport& report = daemon->recovery();
  EXPECT_EQ(report.snapshot_entries, static_cast<std::size_t>(kIdentities / 2));
  // Every enroll past the snapshot appends two records: the enrollment and
  // its voucher issuance (serial bookkeeping).
  EXPECT_EQ(report.wal_records, static_cast<std::size_t>(kIdentities));
  EXPECT_EQ(report.torn_bytes, partial.size() * 2 / 3);
  EXPECT_FALSE(report.snapshot_corrupt);
  EXPECT_EQ(daemon->directory().size(), static_cast<std::size_t>(kIdentities));
  EXPECT_EQ(daemon->lookup("torn-victim").status, KgcStatus::kUnknownId)
      << "an unacknowledged torn record must not resurrect";

  // (b) bit-identical public keys for every identity.
  for (int i = 0; i < kIdentities; ++i) {
    const auto lookup = daemon->lookup("node-" + std::to_string(i));
    ASSERT_EQ(lookup.status, KgcStatus::kOk) << "node-" << i;
    EXPECT_EQ(lookup.pk_bytes, users[static_cast<std::size_t>(i)].pk_bytes)
        << "node-" << i;
  }

  // (c) every pre-crash signature verifies through verify-by-identity
  // against the rebooted daemon's directory.
  ResponseSink sink;
  {
    svc::VerifyService service(f.kgc.params(),
                               svc::ServiceConfig{.workers = 2,
                                                  .resolver = &daemon->directory()});
    for (int i = 0; i < kIdentities; ++i) {
      EXPECT_TRUE(service.submit(
          svc::VerifyRequest{.request_id = static_cast<std::uint64_t>(i + 1),
                             .scheme = "McCLS",
                             .id = users[static_cast<std::size_t>(i)].keys.id,
                             .by_identity = true,
                             .message = Bytes(msg.begin(), msg.end()),
                             .signature = signatures[static_cast<std::size_t>(i)]},
          sink.completion()));
    }
    ASSERT_TRUE(sink.wait_for(kIdentities));
  }
  for (int i = 0; i < kIdentities; ++i) {
    EXPECT_EQ(sink.statuses.at(static_cast<std::uint64_t>(i + 1)), svc::Status::kVerified)
        << "node-" << i << " must survive the crash end-to-end";
  }

  // The repaired log stays writable: post-recovery enrollment works and the
  // torn bytes are gone from disk.
  EXPECT_EQ(daemon->enroll("late-joiner", users[0].pk_bytes).status, KgcStatus::kOk);
}

}  // namespace
}  // namespace mccls::kgc
