// Negative and malleability vectors for all four CLS schemes, in one
// parameterized suite (one instantiation per Table 1 scheme). Every vector
// must REJECT — and, just as importantly, must not crash or throw: verify is
// a total function over untrusted bytes.
//
// Vectors: per-region byte flips in the serialized signature, swapped
// same-size components, the all-identity signature (zero scalar + points at
// infinity), identity and provably non-subgroup public-key substitutions,
// wrong message/identity, truncation and extension.
#include <map>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "cls/registry.hpp"
#include "crypto/drbg.hpp"
#include "ec/g1.hpp"

namespace mccls {
namespace {

using crypto::Bytes;

struct SchemeFixture {
  std::unique_ptr<cls::Kgc> kgc;
  std::unique_ptr<cls::Scheme> scheme;
  cls::UserKeys user;
  std::string id = "alice@mwcps";
  Bytes message{'r', 'o', 'u', 't', 'e', '-', 'u', 'p', 'd', 'a', 't', 'e'};
  Bytes signature;
};

// One deterministic fixture per scheme, built once (setup runs pairings).
const SchemeFixture& fixture_for(const std::string& name) {
  static std::map<std::string, SchemeFixture> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    SchemeFixture f;
    crypto::HmacDrbg drbg(0x9a11ce + name.size());
    f.kgc = std::make_unique<cls::Kgc>(cls::Kgc::setup(drbg));
    f.scheme = cls::make_scheme(name);
    f.user = f.scheme->enroll(*f.kgc, f.id, drbg);
    f.signature = f.scheme->sign(f.kgc->params(), f.user, f.message, drbg);
    it = cache.emplace(name, std::move(f)).first;
  }
  return it->second;
}

class NegativeVectors : public ::testing::TestWithParam<std::string> {
 protected:
  const SchemeFixture& f() { return fixture_for(GetParam()); }

  bool verify(const Bytes& sig) {
    return f().scheme->verify(f().kgc->params(), f().id, f().user.public_key,
                              f().message, sig);
  }
};

TEST_P(NegativeVectors, HonestSignatureVerifies) {
  EXPECT_TRUE(verify(f().signature));
}

TEST_P(NegativeVectors, EveryByteFlipRejects) {
  // Exhaustive over the whole serialized signature: no byte is ignored.
  for (std::size_t i = 0; i < f().signature.size(); ++i) {
    Bytes tampered = f().signature;
    tampered[i] ^= 0x01;
    EXPECT_FALSE(verify(tampered)) << "flipped low bit of byte " << i;
    tampered[i] = f().signature[i] ^ 0x80;
    EXPECT_FALSE(verify(tampered)) << "flipped high bit of byte " << i;
  }
}

TEST_P(NegativeVectors, SwappedSameSizeComponentsReject) {
  // McCLS is v(32) | S(33) | R(33); ZWXF and YHG are U(33) | V(33). AP's
  // components differ in size (point + scalar), so a swap is not
  // byte-aligned there — covered by the flip/truncation vectors instead.
  std::size_t first_off = 0, second_off = 0, len = 0;
  if (GetParam() == "McCLS") {
    first_off = 32, second_off = 65, len = 33;
  } else if (GetParam() == "ZWXF" || GetParam() == "YHG") {
    first_off = 0, second_off = 33, len = 33;
  } else {
    GTEST_SKIP() << "no same-size component pair in " << GetParam();
  }
  Bytes swapped = f().signature;
  for (std::size_t i = 0; i < len; ++i) {
    std::swap(swapped[first_off + i], swapped[second_off + i]);
  }
  ASSERT_NE(swapped, f().signature);
  EXPECT_FALSE(verify(swapped));
}

TEST_P(NegativeVectors, AllIdentitySignatureRejects) {
  // Zero scalars and points at infinity in every component slot. Must fail
  // (either at decode, for codecs with canonicality rules, or at the
  // verification equation) — and must not divide by zero or throw anywhere.
  EXPECT_FALSE(verify(Bytes(f().scheme->signature_size(), 0x00)));
}

TEST_P(NegativeVectors, IdentityPublicKeyRejects) {
  for (std::size_t i = 0; i < f().user.public_key.points.size(); ++i) {
    cls::PublicKey pk = f().user.public_key;
    pk.points[i] = ec::G1::infinity();
    EXPECT_FALSE(f().scheme->verify(f().kgc->params(), f().id, pk, f().message,
                                    f().signature))
        << "identity point in slot " << i;
  }
}

TEST_P(NegativeVectors, NonSubgroupPublicKeyRejects) {
  // Translate a public-key point by the 2-torsion point (0,0): still on the
  // curve, provably outside the order-q subgroup (#E = 4q). A verifier that
  // skipped subgroup/challenge binding could be spoofed by exactly this.
  const auto t2 = ec::G1::from_affine(math::Fp::zero(), math::Fp::zero());
  ASSERT_TRUE(t2.has_value());
  for (std::size_t i = 0; i < f().user.public_key.points.size(); ++i) {
    cls::PublicKey pk = f().user.public_key;
    pk.points[i] = pk.points[i] + *t2;
    ASSERT_TRUE(pk.points[i].is_on_curve());
    ASSERT_FALSE(pk.points[i].in_subgroup());
    EXPECT_FALSE(f().scheme->verify(f().kgc->params(), f().id, pk, f().message,
                                    f().signature))
        << "non-subgroup point in slot " << i;
  }
}

TEST_P(NegativeVectors, WrongMessageRejects) {
  Bytes other = f().message;
  other.back() ^= 0x01;
  EXPECT_FALSE(f().scheme->verify(f().kgc->params(), f().id, f().user.public_key,
                                  other, f().signature));
  EXPECT_FALSE(f().scheme->verify(f().kgc->params(), f().id, f().user.public_key,
                                  Bytes{}, f().signature));
}

TEST_P(NegativeVectors, WrongIdentityRejects) {
  EXPECT_FALSE(f().scheme->verify(f().kgc->params(), "mallory@mwcps",
                                  f().user.public_key, f().message, f().signature));
}

TEST_P(NegativeVectors, TruncationAndExtensionReject) {
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{1}, f().signature.size() / 2,
        f().signature.size() - 1}) {
    const Bytes truncated(f().signature.begin(),
                          f().signature.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_FALSE(verify(truncated)) << "kept " << keep << " bytes";
  }
  Bytes extended = f().signature;
  extended.push_back(0x00);
  EXPECT_FALSE(verify(extended));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, NegativeVectors,
                         ::testing::Values("AP", "ZWXF", "YHG", "McCLS"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace mccls
