// netd connection lifecycle over real loopback sockets: round-trips for
// every wire kind (svc verify / verify-by-identity, all four kgc ops),
// pipelining, idle-timeout close, protocol-violation close, EPOLLIN-off
// backpressure engaging and releasing, and — the property the subsystem
// hangs on — concurrent-connection verdict parity with the in-process
// service.
#include "netd/server.hpp"

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cls/mccls.hpp"
#include "kgc/kgcd.hpp"
#include "netd/client.hpp"
#include "netd/front.hpp"
#include "svc/service.hpp"

namespace mccls::netd {
namespace {

namespace fs = std::filesystem;
using crypto::Bytes;
using namespace std::chrono_literals;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("netd_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Polls `pred` until true or `budget` elapses; socket tests must never
/// sleep a fixed amount and hope.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds budget = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

// One KGC + enrolled signer shared per test: the kgcd directory doubles as
// the by-identity resolver, exactly the deployment wiring.
struct NetdFixture {
  crypto::HmacDrbg rng{std::uint64_t{0x9E7D50C}};
  cls::Kgc kgc = cls::Kgc::setup(rng);
  cls::Mccls scheme;
  std::unique_ptr<kgc::Kgcd> daemon;
  cls::UserKeys alice;
  Bytes alice_pk;

  explicit NetdFixture(const std::string& dir_name) {
    daemon = std::make_unique<kgc::Kgcd>(
        kgc.master_key_for_tests(),
        kgc::KgcdConfig{.data_dir = fresh_dir(dir_name), .fsync = false});
    const math::Fq x = rng.next_nonzero_fq();
    const cls::PublicKey pk = scheme.derive_public(kgc.params(), x);
    alice_pk = pk.to_bytes();
    const auto outcome = daemon->enroll("alice", alice_pk);
    EXPECT_EQ(outcome.status, kgc::KgcStatus::kOk);
    alice = cls::UserKeys{.id = outcome.scoped_id,
                          .partial_key = outcome.partial_key,
                          .secret = x,
                          .public_key = pk};
  }

  Bytes sign(std::span<const std::uint8_t> msg) {
    return scheme.sign(kgc.params(), alice, msg, rng);
  }

  svc::VerifyRequest verify_request(std::uint64_t id, std::span<const std::uint8_t> msg,
                                    Bytes signature, bool by_identity = false) {
    svc::VerifyRequest request{.request_id = id,
                               .scheme = "McCLS",
                               .id = alice.id,
                               .by_identity = by_identity,
                               .message = Bytes(msg.begin(), msg.end()),
                               .signature = std::move(signature)};
    if (!by_identity) request.public_key = alice.public_key;
    return request;
  }
};

svc::Status status_of(const std::optional<Bytes>& frame) {
  if (!frame) return svc::Status::kMalformed;
  const auto response = svc::decode_response(*frame);
  return response ? response->status : svc::Status::kMalformed;
}

// ------------------------------------------------------------- round trips

TEST(Netd, VerifydRoundTripAllWireKinds) {
  NetdFixture f("roundtrip");
  svc::VerifyService service(
      f.kgc.params(), svc::ServiceConfig{.workers = 2, .resolver = &f.daemon->directory()});
  VerifydFrontEnd sink(service);
  NetServer server(NetdConfig{.tick_ms = 5}, &sink);
  ASSERT_TRUE(server.start()) << server.error();

  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port())) << client.error();

  const auto msg = crypto::as_bytes(std::string_view{"over the wire"});
  const Bytes sig = f.sign(msg);

  // kind 1, inline public key: verified.
  auto reply = client.call(svc::encode_request(f.verify_request(1, msg, sig)));
  EXPECT_EQ(status_of(reply), svc::Status::kVerified);
  // kind 1, tampered signature: rejected.
  Bytes tampered = sig;
  tampered[tampered.size() / 2] ^= 0x01;
  reply = client.call(svc::encode_request(f.verify_request(2, msg, tampered)));
  EXPECT_EQ(status_of(reply), svc::Status::kRejected);
  // kind 3, resolved through the kgcd directory: verified.
  reply = client.call(
      svc::encode_request(f.verify_request(3, msg, sig, /*by_identity=*/true)));
  EXPECT_EQ(status_of(reply), svc::Status::kVerified);
  // kind 3, identity the directory cannot vouch for: unknown signer.
  svc::VerifyRequest stranger = f.verify_request(4, msg, sig, /*by_identity=*/true);
  stranger.id = "stranger@epoch-0";
  reply = client.call(svc::encode_request(stranger));
  EXPECT_EQ(status_of(reply), svc::Status::kUnknownSigner);
  // A well-framed but undecodable payload: kMalformed, request_id 0, and the
  // connection survives (framing was honored; only the inner frame is junk).
  reply = client.call(Bytes{0xDE, 0xAD, 0xBE, 0xEF});
  ASSERT_TRUE(reply.has_value());
  const auto malformed = svc::decode_response(*reply);
  ASSERT_TRUE(malformed.has_value());
  EXPECT_EQ(malformed->status, svc::Status::kMalformed);
  EXPECT_EQ(malformed->request_id, 0u);
  // ...and the same connection still serves real requests afterwards.
  reply = client.call(svc::encode_request(f.verify_request(5, msg, sig)));
  EXPECT_EQ(status_of(reply), svc::Status::kVerified);

  server.stop();
  const auto m = server.metrics().snapshot();
  EXPECT_EQ(m.frames_in, 6u);
  EXPECT_EQ(m.replies_out, 6u);
  EXPECT_EQ(m.protocol_errors, 0u);
}

TEST(Netd, KgcdRoundTripAllOps) {
  NetdFixture f("kgcops");
  KgcdFrontEnd sink(*f.daemon);
  NetServer server(NetdConfig{.tick_ms = 5}, &sink);
  ASSERT_TRUE(server.start()) << server.error();

  BlockingClient client;
  ASSERT_TRUE(client.connect("localhost", server.port())) << client.error();

  auto call = [&](const kgc::KgcRequest& request) {
    const auto reply = client.call(kgc::encode_kgc_request(request));
    EXPECT_TRUE(reply.has_value()) << client.error();
    const auto response = reply ? kgc::decode_kgc_response(*reply) : std::nullopt;
    EXPECT_TRUE(response.has_value());
    return response.value_or(kgc::KgcResponse{});
  };

  // Enroll a second identity over the socket; payload is the partial key.
  const math::Fq x = f.rng.next_nonzero_fq();
  const Bytes pk = f.scheme.derive_public(f.kgc.params(), x).to_bytes();
  auto response = call({.op = kgc::KgcOp::kEnroll, .request_id = 1, .id = "bob",
                        .pk_bytes = pk});
  EXPECT_EQ(response.status, kgc::KgcStatus::kOk);
  EXPECT_FALSE(response.payload.empty()) << "enroll returns the partial key";

  // Lookup echoes the enrolled key bytes bit-identically.
  response = call({.op = kgc::KgcOp::kLookup, .request_id = 2, .id = "bob"});
  EXPECT_EQ(response.status, kgc::KgcStatus::kOk);
  EXPECT_EQ(response.payload, pk);

  // Revoke, then lookup refuses with the revocation verdict.
  response = call({.op = kgc::KgcOp::kRevoke, .request_id = 3, .id = "bob"});
  EXPECT_EQ(response.status, kgc::KgcStatus::kOk);
  response = call({.op = kgc::KgcOp::kLookup, .request_id = 4, .id = "bob"});
  EXPECT_EQ(response.status, kgc::KgcStatus::kRevoked);

  // Snapshot persists and reports ok over the wire too.
  response = call({.op = kgc::KgcOp::kSnapshot, .request_id = 5});
  EXPECT_EQ(response.status, kgc::KgcStatus::kOk);

  // Undecodable kgc frame: kMalformed with request_id 0.
  response = call({.op = kgc::KgcOp::kLookup, .request_id = 6, .id = "bob"});
  EXPECT_EQ(response.request_id, 6u);
  const auto junk = client.call(Bytes{0x00, 0x01, 0x02});
  ASSERT_TRUE(junk.has_value());
  const auto decoded = kgc::decode_kgc_response(*junk);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, kgc::KgcStatus::kMalformed);
  EXPECT_EQ(decoded->request_id, 0u);
}

// Voucher frames over TCP, end to end: enroll over the socket, fetch a
// voucher chain with kVouch, kill the kgcd listener, and verify-by-identity
// must keep succeeding from the cached voucher — then a rebooted kgcd on the
// same data dir answers kVouch again with a strictly larger serial.
TEST(Netd, VoucherFramesServeOfflineVerificationAcrossRestart) {
  NetdFixture f("voucher");
  const std::string data_dir =
      (fs::path(::testing::TempDir()) / "netd_voucher").string();
  kgc::TrustAnchors anchors;
  ASSERT_TRUE(anchors.add("kgc", f.daemon->voucher_issuer().public_key()));

  KgcdFrontEnd sink(*f.daemon);
  NetServer server(NetdConfig{.tick_ms = 5}, &sink);
  ASSERT_TRUE(server.start()) << server.error();
  const std::uint16_t kgc_port = server.port();

  // Enroll a second identity over the socket and reconstruct its keys from
  // the wire payload (the partial key), exactly like a remote signer would.
  const math::Fq x = f.rng.next_nonzero_fq();
  const cls::PublicKey bob_pk = f.scheme.derive_public(f.kgc.params(), x);
  cls::UserKeys bob;
  {
    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", kgc_port)) << client.error();
    const auto reply = client.call(kgc::encode_kgc_request(
        {.op = kgc::KgcOp::kEnroll, .request_id = 1, .id = "bob",
         .pk_bytes = bob_pk.to_bytes()}));
    ASSERT_TRUE(reply.has_value());
    const auto response = kgc::decode_kgc_response(*reply);
    ASSERT_TRUE(response.has_value());
    ASSERT_EQ(response->status, kgc::KgcStatus::kOk);
    const auto partial = ec::G1::from_bytes(response->payload);
    ASSERT_TRUE(partial.has_value());
    bob = cls::UserKeys{.id = "bob@epoch-" + std::to_string(response->epoch),
                        .partial_key = *partial,
                        .secret = x,
                        .public_key = bob_pk};
  }

  // The verifyd stack: voucher cache in front, every miss fetched as a
  // kVouch frame over the real socket, the directory behind a fault model
  // standing in for "the KGC is remote".
  svc::FaultInjectingResolver faulty(&f.daemon->directory());
  std::uint64_t last_serial = 0;
  kgc::VoucherResolverConfig voucher_config;
  voucher_config.current_epoch = [&f] { return f.daemon->epoch(); };
  voucher_config.fetch =
      [&](std::string_view id) -> std::optional<kgc::VoucherChain> {
    BlockingClient fetcher;
    if (!fetcher.connect("127.0.0.1", kgc_port)) return std::nullopt;
    const auto reply = fetcher.call(kgc::encode_kgc_request(
        {.op = kgc::KgcOp::kVouch, .request_id = 99, .id = std::string(id)}));
    if (!reply) return std::nullopt;
    const auto response = kgc::decode_kgc_response(*reply);
    if (!response || response->status != kgc::KgcStatus::kOk) return std::nullopt;
    auto chain = kgc::decode_voucher_chain(response->payload);
    if (chain && chain->front().serial > last_serial) {
      last_serial = chain->front().serial;
    }
    return chain;
  };
  kgc::VoucherVerifyingResolver resolver(&faulty, &anchors,
                                         std::move(voucher_config));

  svc::VerifyService service(
      f.kgc.params(), svc::ServiceConfig{.workers = 2, .resolver = &resolver});
  VerifydFrontEnd verify_sink(service);
  NetServer verify_server(NetdConfig{.tick_ms = 5}, &verify_sink);
  ASSERT_TRUE(verify_server.start()) << verify_server.error();

  BlockingClient verifier;
  ASSERT_TRUE(verifier.connect("127.0.0.1", verify_server.port()))
      << verifier.error();
  const auto msg = crypto::as_bytes(std::string_view{"vouched over tcp"});
  const Bytes bob_sig = f.scheme.sign(f.kgc.params(), bob, msg, f.rng);

  // Cold by-identity verify: the resolver misses, fetches the voucher chain
  // over TCP, verifies it against the anchors, and caches.
  svc::VerifyRequest request{.request_id = 10, .scheme = "McCLS", .id = bob.id,
                             .by_identity = true,
                             .message = Bytes(msg.begin(), msg.end()),
                             .signature = bob_sig};
  EXPECT_EQ(status_of(verifier.call(svc::encode_request(request))),
            svc::Status::kVerified);
  EXPECT_GT(last_serial, 0u) << "the voucher really crossed the socket";
  const std::uint64_t serial_before_restart = last_serial;

  // Kill kgcd: listener gone, directory unreachable. The cached voucher
  // keeps the signer verifiable; a stranger gets the honest kUnavailable.
  server.stop();
  faulty.set_fail_rate(1.0);
  request.request_id = 11;
  EXPECT_EQ(status_of(verifier.call(svc::encode_request(request))),
            svc::Status::kVerified)
      << "verify-by-identity must survive the kgcd outage via the voucher";
  svc::VerifyRequest stranger = request;
  stranger.request_id = 12;
  stranger.id = "stranger@epoch-0";
  EXPECT_EQ(status_of(verifier.call(svc::encode_request(stranger))),
            svc::Status::kUnavailable)
      << "no voucher + no directory = transient, never a trust verdict";

  // Restart parity: a rebooted kgcd on the same dir serves kVouch again and
  // never reuses a serial.
  f.daemon = std::make_unique<kgc::Kgcd>(
      f.kgc.master_key_for_tests(),
      kgc::KgcdConfig{.data_dir = data_dir, .fsync = false});
  KgcdFrontEnd restarted_sink(*f.daemon);
  NetServer restarted(NetdConfig{.tick_ms = 5}, &restarted_sink);
  ASSERT_TRUE(restarted.start()) << restarted.error();
  BlockingClient revoucher;
  ASSERT_TRUE(revoucher.connect("127.0.0.1", restarted.port()));
  const auto reply = revoucher.call(kgc::encode_kgc_request(
      {.op = kgc::KgcOp::kVouch, .request_id = 13, .id = "bob"}));
  ASSERT_TRUE(reply.has_value());
  const auto response = kgc::decode_kgc_response(*reply);
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->status, kgc::KgcStatus::kOk);
  const auto chain = kgc::decode_voucher_chain(response->payload);
  ASSERT_TRUE(chain.has_value());
  EXPECT_GT(chain->front().serial, serial_before_restart);
  EXPECT_EQ(kgc::verify_voucher_chain(*chain, anchors, chain->front().not_before)
                .verdict,
            kgc::ChainVerdict::kOk)
      << "the rebooted daemon's vouchers chain to the same trust anchor";
}

TEST(Netd, PipelinedRequestsAllAnswerOnOneConnection) {
  NetdFixture f("pipeline");
  svc::VerifyService service(f.kgc.params(), svc::ServiceConfig{.workers = 2});
  VerifydFrontEnd sink(service);
  NetServer server(NetdConfig{.tick_ms = 5}, &sink);
  ASSERT_TRUE(server.start()) << server.error();

  const auto msg = crypto::as_bytes(std::string_view{"pipelined"});
  const Bytes sig = f.sign(msg);
  constexpr std::size_t kRequests = 24;

  std::mutex mu;
  std::map<std::uint64_t, svc::Status> statuses;
  MultiClient client(MultiClient::Config{.port = server.port(), .connections = 1,
                                         .pipeline = kRequests});
  const bool ok = client.run(
      [&](std::size_t, std::size_t seq) -> std::optional<Bytes> {
        if (seq >= kRequests) return std::nullopt;
        Bytes s = sig;
        if (seq % 3 == 0) s[s.size() / 2] ^= 0x01;  // every third tampered
        return svc::encode_request(f.verify_request(seq + 1, msg, std::move(s)));
      },
      [&](std::size_t, Bytes payload) {
        const auto response = svc::decode_response(payload);
        ASSERT_TRUE(response.has_value());
        std::lock_guard lk(mu);
        statuses[response->request_id] = response->status;
      });
  ASSERT_TRUE(ok) << client.error();
  ASSERT_EQ(statuses.size(), kRequests) << "every pipelined request answered";
  for (std::uint64_t id = 1; id <= kRequests; ++id) {
    const auto expected =
        (id - 1) % 3 == 0 ? svc::Status::kRejected : svc::Status::kVerified;
    EXPECT_EQ(statuses.at(id), expected) << "request " << id;
  }
}

// --------------------------------------------------------------- lifecycle

TEST(Netd, IdleConnectionsCloseAfterTimeout) {
  NetdFixture f("idle");
  svc::VerifyService service(f.kgc.params(), svc::ServiceConfig{.workers = 1});
  VerifydFrontEnd sink(service);
  NetServer server(NetdConfig{.idle_timeout_ms = 50, .tick_ms = 5}, &sink);
  ASSERT_TRUE(server.start()) << server.error();

  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  ASSERT_TRUE(eventually([&] { return server.connections() == 1; }));

  // Say nothing; the server must hang up. call() then observes EOF/ECONNRESET.
  EXPECT_TRUE(eventually([&] { return server.connections() == 0; }))
      << "idle connection not reaped";
  EXPECT_EQ(server.metrics().snapshot().idle_closes, 1u);

  // An ACTIVE connection with a request in flight must NOT be idle-closed:
  // the in-flight guard, not traffic, is what keeps it alive.
  BlockingClient busy;
  ASSERT_TRUE(busy.connect("127.0.0.1", server.port()));
  const auto msg = crypto::as_bytes(std::string_view{"still here"});
  const auto reply = busy.call(svc::encode_request(f.verify_request(1, msg, f.sign(msg))));
  EXPECT_EQ(status_of(reply), svc::Status::kVerified);
}

TEST(Netd, ProtocolViolationClosesTheConnection) {
  NetdFixture f("violation");
  svc::VerifyService service(f.kgc.params(), svc::ServiceConfig{.workers = 1});
  VerifydFrontEnd sink(service);
  NetServer server(NetdConfig{.tick_ms = 5}, &sink);
  ASSERT_TRUE(server.start()) << server.error();

  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  // A zero length prefix: unframeable, the stream is past repair.
  EXPECT_FALSE(client.call(Bytes{}).has_value());  // encode_frame({}) -> len 0
  ASSERT_TRUE(eventually([&] { return server.connections() == 0; }));
  EXPECT_EQ(server.metrics().snapshot().protocol_errors, 1u);
}

// ------------------------------------------------------------ backpressure

/// Echoes frames back, but only while the gate is open; refusals while shut
/// are what force the server into EPOLLIN-off backpressure.
class GatedEchoSink : public FrameSink {
 public:
  bool try_dispatch(Bytes& frame, const Reply& reply) override {
    if (!open_.load()) return false;
    reply(std::move(frame));
    return true;
  }
  void open() { open_.store(true); }

 private:
  std::atomic<bool> open_{false};
};

TEST(Netd, SinkSaturationStopsReadingThenReleases) {
  GatedEchoSink sink;
  NetServer server(NetdConfig{.tick_ms = 2}, &sink);
  ASSERT_TRUE(server.start()) << server.error();

  constexpr std::size_t kFrames = 8;
  std::atomic<std::size_t> echoes{0};
  std::jthread driver([&] {
    MultiClient client(MultiClient::Config{.port = server.port(), .connections = 1,
                                           .pipeline = kFrames});
    client.run(
        [&](std::size_t, std::size_t seq) -> std::optional<Bytes> {
          if (seq >= kFrames) return std::nullopt;
          return Bytes{static_cast<std::uint8_t>(seq), 0x42};
        },
        [&](std::size_t, Bytes) { echoes.fetch_add(1); });
  });

  // The first frame hits the shut gate: the connection pauses (EPOLLIN off)
  // and no reply ever forms. The other frames sit in kernel/user buffers.
  ASSERT_TRUE(eventually([&] {
    return server.metrics().snapshot().backpressure_pauses >= 1;
  })) << "saturated sink never paused the connection";
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(echoes.load(), 0u);
  EXPECT_EQ(server.metrics().snapshot().replies_out, 0u);

  // Open the gate: tick-driven retries dispatch the stalled frame, reading
  // resumes, and every frame is eventually echoed.
  sink.open();
  driver.join();
  EXPECT_EQ(echoes.load(), kFrames);
  const auto m = server.metrics().snapshot();
  EXPECT_GE(m.backpressure_resumes, 1u);
  EXPECT_GE(m.dispatch_retries, 1u);
  EXPECT_EQ(m.frames_in, kFrames);
}

/// Accepts frames but parks the replies until released: drives the
/// per-connection in-flight cap rather than sink saturation.
class HoldingSink : public FrameSink {
 public:
  bool try_dispatch(Bytes& frame, const Reply& reply) override {
    std::lock_guard lk(mu_);
    held_.emplace_back(std::move(frame), reply);
    return true;
  }
  std::size_t held() {
    std::lock_guard lk(mu_);
    return held_.size();
  }
  std::size_t release_all() {
    std::vector<std::pair<Bytes, Reply>> batch;
    {
      std::lock_guard lk(mu_);
      batch.swap(held_);
    }
    for (auto& [frame, reply] : batch) reply(std::move(frame));
    return batch.size();
  }

 private:
  std::mutex mu_;
  std::vector<std::pair<Bytes, Reply>> held_;
};

TEST(Netd, InflightCapPausesReadingUntilRepliesDrain) {
  HoldingSink sink;
  constexpr std::size_t kCap = 4;
  constexpr std::size_t kFrames = 11;
  NetServer server(NetdConfig{.max_inflight_per_conn = kCap, .tick_ms = 2}, &sink);
  ASSERT_TRUE(server.start()) << server.error();

  std::atomic<std::size_t> echoes{0};
  std::jthread driver([&] {
    MultiClient client(MultiClient::Config{.port = server.port(), .connections = 1,
                                           .pipeline = kFrames});
    client.run(
        [&](std::size_t, std::size_t seq) -> std::optional<Bytes> {
          if (seq >= kFrames) return std::nullopt;
          return Bytes{static_cast<std::uint8_t>(seq)};
        },
        [&](std::size_t, Bytes) { echoes.fetch_add(1); });
  });

  // Exactly the cap reaches the sink, then reading stops.
  ASSERT_TRUE(eventually([&] { return sink.held() == kCap; }));
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(sink.held(), kCap) << "reads continued past the in-flight cap";
  EXPECT_GE(server.metrics().snapshot().backpressure_pauses, 1u);

  // Each release frees capacity; the loop resumes reading and refills.
  std::size_t released = 0;
  while (released < kFrames) {
    released += sink.release_all();
    ASSERT_TRUE(eventually([&] {
      return sink.held() > 0 || released == kFrames;
    })) << "released " << released;
  }
  driver.join();
  EXPECT_EQ(echoes.load(), kFrames);
  EXPECT_GE(server.metrics().snapshot().backpressure_resumes, 1u);
}

// ------------------------------------------------- parity with in-process

TEST(Netd, ConcurrentConnectionsMatchInProcessVerdicts) {
  NetdFixture f("parity");
  svc::VerifyService service(
      f.kgc.params(), svc::ServiceConfig{.workers = 2, .resolver = &f.daemon->directory()});
  VerifydFrontEnd sink(service);
  NetServer server(NetdConfig{.tick_ms = 5}, &sink);
  ASSERT_TRUE(server.start()) << server.error();

  const auto msg = crypto::as_bytes(std::string_view{"parity"});
  const Bytes sig = f.sign(msg);
  constexpr std::size_t kConns = 8;
  constexpr std::size_t kPerConn = 6;

  // The same request mix every connection sends: valid inline, tampered
  // inline, valid by-identity, unknown by-identity, cycling.
  auto request_bytes = [&](std::uint64_t id) {
    switch (id % 4) {
      case 0:
        return svc::encode_request(f.verify_request(id, msg, sig));
      case 1: {
        Bytes bad = sig;
        bad[bad.size() / 2] ^= 0x01;
        return svc::encode_request(f.verify_request(id, msg, std::move(bad)));
      }
      case 2:
        return svc::encode_request(f.verify_request(id, msg, sig, /*by_identity=*/true));
      default: {
        svc::VerifyRequest stranger = f.verify_request(id, msg, sig, /*by_identity=*/true);
        stranger.id = "nobody@epoch-0";
        return svc::encode_request(stranger);
      }
    }
  };

  // In-process reference verdicts through the very same service instance,
  // same request bytes per id.
  std::mutex mu;
  std::condition_variable cv;
  std::map<std::uint64_t, svc::Status> expected;
  std::size_t answered = 0;
  for (std::uint64_t id = 1; id <= kConns * kPerConn; ++id) {
    service.submit_bytes(request_bytes(id), [&](const svc::VerifyResponse& response) {
      std::lock_guard lk(mu);
      expected[response.request_id] = response.status;
      ++answered;
      cv.notify_all();
    });
  }
  {
    std::unique_lock lk(mu);
    ASSERT_TRUE(cv.wait_for(lk, 10s, [&] { return answered == kConns * kPerConn; }));
  }

  std::map<std::uint64_t, svc::Status> actual;
  MultiClient client(MultiClient::Config{.port = server.port(), .connections = kConns,
                                         .pipeline = kPerConn});
  const bool ok = client.run(
      [&](std::size_t conn, std::size_t seq) -> std::optional<Bytes> {
        if (seq >= kPerConn) return std::nullopt;
        return request_bytes(conn * kPerConn + seq + 1);
      },
      [&](std::size_t, Bytes payload) {
        const auto response = svc::decode_response(payload);
        ASSERT_TRUE(response.has_value());
        std::lock_guard lk(mu);
        actual[response->request_id] = response->status;
      });
  ASSERT_TRUE(ok) << client.error();
  EXPECT_EQ(client.peak_connected(), kConns);

  ASSERT_EQ(actual.size(), kConns * kPerConn);
  for (const auto& [id, status] : actual) {
    EXPECT_EQ(status, expected.at(id)) << "request " << id;
  }
}

// -------------------------------------------------------------- start/stop

TEST(Netd, StartFailsCleanlyOnBusyPort) {
  GatedEchoSink sink;
  NetServer first(NetdConfig{}, &sink);
  ASSERT_TRUE(first.start());
  NetServer second(NetdConfig{.port = first.port()}, &sink);
  EXPECT_FALSE(second.start());
  EXPECT_FALSE(second.error().empty());
}

TEST(Netd, StopWithLiveConnectionsAndInflightWorkShutsDownCleanly) {
  HoldingSink sink;
  NetServer server(NetdConfig{.tick_ms = 2}, &sink);
  ASSERT_TRUE(server.start());

  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  // Fire a frame whose reply is parked in the sink, then stop the server
  // while the connection is live and the request unanswered.
  ASSERT_TRUE(eventually([&] { return server.connections() == 1; }));
  std::ignore = client.call(Bytes{0x01, 0x02}, 50);  // times out: reply parked
  ASSERT_TRUE(eventually([&] { return sink.held() == 1; }));
  server.stop();
  // The parked reply fires after stop: it must drop harmlessly, not crash.
  EXPECT_EQ(sink.release_all(), 1u);
  EXPECT_EQ(server.metrics().snapshot().replies_out, 0u);
}

}  // namespace
}  // namespace mccls::netd
