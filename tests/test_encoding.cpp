#include "crypto/encoding.hpp"

#include <gtest/gtest.h>

namespace mccls::crypto {
namespace {

TEST(Hex, RoundTrip) {
  const Bytes data{0x00, 0x01, 0xAB, 0xFF};
  EXPECT_EQ(to_hex(data), "0001abff");
  const auto back = from_hex("0001abff");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Hex, AcceptsUppercase) {
  const auto v = from_hex("DEADBEEF");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_hex(*v), "deadbeef");
}

TEST(Hex, RejectsOddLength) { EXPECT_FALSE(from_hex("abc").has_value()); }
TEST(Hex, RejectsNonHex) { EXPECT_FALSE(from_hex("zz").has_value()); }
TEST(Hex, EmptyIsEmpty) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_EQ(from_hex(""), Bytes{});
}

TEST(ByteWriter, FixedWidthEncodings) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u32(0x01020304);
  w.put_u64(0x1122334455667788ULL);
  EXPECT_EQ(to_hex(w.bytes()), "ab010203041122334455667788");
}

TEST(ByteWriterReader, RoundTrip) {
  ByteWriter w;
  w.put_u8(7);
  w.put_u32(123456);
  w.put_u64(0xDEADBEEFCAFEBABEULL);
  w.put_field(as_bytes("hello"));
  w.put_field(Bytes{});
  const Bytes encoded = w.take();

  ByteReader r(encoded);
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_EQ(r.get_u32(), 123456u);
  EXPECT_EQ(r.get_u64(), 0xDEADBEEFCAFEBABEULL);
  const auto field = r.get_field();
  ASSERT_TRUE(field.has_value());
  EXPECT_EQ(*field, Bytes(as_bytes("hello").begin(), as_bytes("hello").end()));
  const auto empty = r.get_field();
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteReader, TruncationReturnsNullopt) {
  const Bytes short_buf{0x01, 0x02};
  ByteReader r(short_buf);
  EXPECT_FALSE(r.get_u32().has_value());
  ByteReader r2(short_buf);
  EXPECT_FALSE(r2.get_u64().has_value());
  ByteReader r3(short_buf);
  EXPECT_FALSE(r3.get_field().has_value());
}

TEST(ByteReader, FieldLengthBeyondBufferFails) {
  ByteWriter w;
  w.put_u32(1000);  // claims 1000 bytes follow
  w.put_raw(as_bytes("short"));
  ByteReader r(w.bytes());
  EXPECT_FALSE(r.get_field().has_value());
}

TEST(ByteReader, RawReadsExactCount) {
  ByteWriter w;
  w.put_raw(as_bytes("abcdef"));
  ByteReader r(w.bytes());
  const auto first = r.get_raw(3);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(to_hex(*first), "616263");
  EXPECT_EQ(r.remaining(), 3u);
  EXPECT_FALSE(r.get_raw(4).has_value());
}

TEST(ByteWriter, LengthPrefixingIsUnambiguous) {
  // ("ab", "c") and ("a", "bc") must encode differently.
  ByteWriter w1;
  w1.put_field(as_bytes("ab"));
  w1.put_field(as_bytes("c"));
  ByteWriter w2;
  w2.put_field(as_bytes("a"));
  w2.put_field(as_bytes("bc"));
  EXPECT_NE(w1.bytes(), w2.bytes());
}

}  // namespace
}  // namespace mccls::crypto
