// The kgcd persistence formats: CRC framing plus the WAL-record and
// snapshot codecs (total decoders with canonical-shape enforcement). The
// store built on these formats — segment files, rotation, compaction,
// recovery — is covered by tests/test_logstore.cpp.
#include "kgc/store.hpp"

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <string>

#include "ec/g1.hpp"

namespace mccls::kgc {
namespace {

using crypto::Bytes;

Bytes sample_pk_bytes() {
  const auto g = ec::G1::generator().to_bytes();
  Bytes pk{0x01};
  pk.insert(pk.end(), g.begin(), g.end());
  return pk;
}

WalRecord sample_enroll(const std::string& id, cls::Epoch epoch = 3) {
  return WalRecord{.type = WalRecordType::kEnroll,
                   .epoch = epoch,
                   .id = id,
                   .pk_bytes = sample_pk_bytes()};
}

// ---------------------------------------------------------------- CRC-32

TEST(Crc32, MatchesTheIeeeCheckValue) {
  // The standard CRC-32 check string: crc32("123456789") = 0xCBF43926.
  const std::string check = "123456789";
  EXPECT_EQ(crc32(crypto::as_bytes(check)), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(Crc32, DetectsSingleBitFlips) {
  Bytes data(64, 0xA5);
  const std::uint32_t baseline = crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x01;
    EXPECT_NE(crc32(data), baseline) << "flip at byte " << i;
    data[i] ^= 0x01;
  }
}

// ---------------------------------------------------------- record codecs

TEST(WalRecordCodec, RoundTripsBothRecordTypes) {
  const WalRecord enroll = sample_enroll("alice");
  const auto enroll2 = decode_wal_record(encode_wal_record(enroll));
  ASSERT_TRUE(enroll2.has_value());
  EXPECT_EQ(enroll2->type, WalRecordType::kEnroll);
  EXPECT_EQ(enroll2->epoch, 3u);
  EXPECT_EQ(enroll2->id, "alice");
  EXPECT_EQ(enroll2->pk_bytes, enroll.pk_bytes);

  const WalRecord revoke{.type = WalRecordType::kRevoke, .epoch = 9, .id = "bob"};
  const auto revoke2 = decode_wal_record(encode_wal_record(revoke));
  ASSERT_TRUE(revoke2.has_value());
  EXPECT_EQ(revoke2->type, WalRecordType::kRevoke);
  EXPECT_TRUE(revoke2->pk_bytes.empty());
}

TEST(WalRecordCodec, EnforcesTheOpDependentShape) {
  // An enroll without a key and a revoke with one are both non-canonical.
  WalRecord keyless = sample_enroll("alice");
  keyless.pk_bytes.clear();
  EXPECT_FALSE(decode_wal_record(encode_wal_record(keyless)).has_value());

  WalRecord keyed{.type = WalRecordType::kRevoke, .epoch = 1, .id = "bob",
                  .pk_bytes = sample_pk_bytes()};
  EXPECT_FALSE(decode_wal_record(encode_wal_record(keyed)).has_value());

  WalRecord anonymous = sample_enroll("");
  EXPECT_FALSE(decode_wal_record(encode_wal_record(anonymous)).has_value());
}

TEST(WalRecordCodec, RejectsUnknownVersionTypeAndTrailingBytes) {
  Bytes encoded = encode_wal_record(sample_enroll("alice"));
  Bytes bad_version = encoded;
  bad_version[0] = 0x7F;
  EXPECT_FALSE(decode_wal_record(bad_version).has_value());

  Bytes bad_type = encoded;
  bad_type[1] = 0x09;
  EXPECT_FALSE(decode_wal_record(bad_type).has_value());

  encoded.push_back(0x00);
  EXPECT_FALSE(decode_wal_record(encoded).has_value());
}

TEST(SnapshotEntryCodec, RoundTripsAndKeepsRevocationCanonical) {
  const SnapshotEntry entry{.id = "alice",
                            .pk_bytes = sample_pk_bytes(),
                            .enrolled_epoch = 4,
                            .revoked = true,
                            .revoked_epoch = 6};
  const auto back = decode_snapshot_entry(encode_snapshot_entry(entry));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->id, "alice");
  EXPECT_TRUE(back->revoked);
  EXPECT_EQ(back->revoked_epoch, 6u);

  // A never-revoked entry must carry revoked_epoch 0 (canonical form).
  SnapshotEntry noncanonical = entry;
  noncanonical.revoked = false;
  EXPECT_FALSE(decode_snapshot_entry(encode_snapshot_entry(noncanonical)).has_value());
}

// ---------------------------------------------------------------- framing

TEST(Framing, RoundTripsAndReportsConsumedBytes) {
  const Bytes payload = encode_wal_record(sample_enroll("alice"));
  const Bytes framed = frame_payload(payload);
  ASSERT_EQ(framed.size(), payload.size() + 8);
  const auto frame = read_frame(framed);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, payload);
  EXPECT_EQ(frame->consumed, framed.size());
}

TEST(Framing, RejectsTruncationCorruptionAndAbsurdLengths) {
  const Bytes framed = frame_payload(encode_wal_record(sample_enroll("alice")));
  for (std::size_t cut = 0; cut < framed.size(); ++cut) {
    EXPECT_FALSE(read_frame(std::span(framed).first(cut)).has_value())
        << "prefix of " << cut << " bytes";
  }
  for (std::size_t i = 0; i < framed.size(); ++i) {
    Bytes bad = framed;
    bad[i] ^= 0x01;
    const auto frame = read_frame(bad);
    // A flip in the length prefix may still parse iff it lands on another
    // valid frame boundary — impossible here because the CRC covers the
    // payload and the length change misaligns it.
    EXPECT_FALSE(frame.has_value() && frame->payload == framed) << "flip at " << i;
  }
  Bytes absurd(8, 0xFF);  // declares a ~4 GiB payload
  EXPECT_FALSE(read_frame(absurd).has_value());
}

TEST(SnapshotCodec, RoundTripsManyEntriesAndRejectsTrailingGarbage) {
  Snapshot snapshot;
  snapshot.applied_seq = 42;
  for (int i = 0; i < 5; ++i) {
    snapshot.entries.push_back(SnapshotEntry{
        .id = "node-" + std::to_string(i), .pk_bytes = sample_pk_bytes(),
        .enrolled_epoch = static_cast<cls::Epoch>(i)});
  }
  Bytes encoded = encode_snapshot(snapshot);
  const auto back = decode_snapshot(encoded);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->applied_seq, 42u);
  ASSERT_EQ(back->entries.size(), 5u);
  EXPECT_EQ(back->entries[3].id, "node-3");

  encoded.push_back(0x00);
  EXPECT_FALSE(decode_snapshot(encoded).has_value());
}

TEST(SnapshotCodec, BoundsTheDeclaredCountByTheRemainingInput) {
  // A header that declares 2^60 entries must reject before any allocation.
  crypto::ByteWriter h;
  h.put_u8('K');
  h.put_u8('S');
  h.put_u8(kStoreVersion);
  h.put_u64(1);
  h.put_u64(std::uint64_t{1} << 60);
  EXPECT_FALSE(decode_snapshot(frame_payload(h.take())).has_value());
}

}  // namespace
}  // namespace mccls::kgc
