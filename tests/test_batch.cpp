// Batch verification extension: soundness, completeness, and the
// signer-static-S precondition.
#include "cls/batch.hpp"

#include <gtest/gtest.h>

namespace mccls::cls {
namespace {

struct Fixture {
  crypto::HmacDrbg rng{std::uint64_t{31337}};
  Kgc kgc = Kgc::setup(rng);
  Mccls scheme;
  UserKeys alice = scheme.enroll(kgc, "alice", rng);
  UserKeys bob = scheme.enroll(kgc, "bob", rng);

  BatchItem make_item(const UserKeys& signer, std::string_view text) {
    crypto::Bytes m(crypto::as_bytes(text).begin(), crypto::as_bytes(text).end());
    return BatchItem{.message = m,
                     .signature = Mccls::sign_typed(kgc.params(), signer, m, rng)};
  }
};

TEST(BatchVerify, EmptyBatchIsVacuouslyTrue) {
  Fixture f;
  EXPECT_TRUE(batch_verify(f.kgc.params(), "alice", f.alice.public_key.primary(), {}, f.rng));
}

TEST(BatchVerify, SingleItem) {
  Fixture f;
  const auto item = f.make_item(f.alice, "only");
  EXPECT_TRUE(batch_verify(f.kgc.params(), "alice", f.alice.public_key.primary(),
                           std::span{&item, 1}, f.rng));
}

TEST(BatchVerify, AcceptsManyValidSignatures) {
  Fixture f;
  std::vector<BatchItem> items;
  for (int i = 0; i < 16; ++i) items.push_back(f.make_item(f.alice, "msg" + std::to_string(i)));
  EXPECT_TRUE(
      batch_verify(f.kgc.params(), "alice", f.alice.public_key.primary(), items, f.rng));
}

TEST(BatchVerify, RejectsOneTamperedMessage) {
  Fixture f;
  std::vector<BatchItem> items;
  for (int i = 0; i < 8; ++i) items.push_back(f.make_item(f.alice, "msg" + std::to_string(i)));
  items[5].message.push_back(0xFF);
  EXPECT_FALSE(
      batch_verify(f.kgc.params(), "alice", f.alice.public_key.primary(), items, f.rng));
}

TEST(BatchVerify, RejectsOneForgedComponent) {
  Fixture f;
  std::vector<BatchItem> items;
  for (int i = 0; i < 8; ++i) items.push_back(f.make_item(f.alice, "msg" + std::to_string(i)));
  items[3].signature.v = items[3].signature.v + math::Fq::one();
  EXPECT_FALSE(
      batch_verify(f.kgc.params(), "alice", f.alice.public_key.primary(), items, f.rng));
}

TEST(BatchVerify, RejectsMixedSigners) {
  // Bob's S differs from Alice's; the batch must refuse rather than
  // silently accept under Alice's identity.
  Fixture f;
  std::vector<BatchItem> items;
  items.push_back(f.make_item(f.alice, "from alice"));
  items.push_back(f.make_item(f.bob, "from bob"));
  EXPECT_FALSE(
      batch_verify(f.kgc.params(), "alice", f.alice.public_key.primary(), items, f.rng));
}

TEST(BatchVerify, RejectsWrongIdentity) {
  Fixture f;
  std::vector<BatchItem> items{f.make_item(f.alice, "m")};
  EXPECT_FALSE(batch_verify(f.kgc.params(), "bob", f.alice.public_key.primary(), items, f.rng));
}

TEST(BatchVerify, RejectsWrongPublicKey) {
  Fixture f;
  std::vector<BatchItem> items{f.make_item(f.alice, "m")};
  EXPECT_FALSE(
      batch_verify(f.kgc.params(), "alice", f.bob.public_key.primary(), items, f.rng));
}

TEST(BatchVerify, AgreesWithIndividualVerification) {
  Fixture f;
  PairingCache cache;
  std::vector<BatchItem> items;
  for (int i = 0; i < 10; ++i) items.push_back(f.make_item(f.alice, "agree" + std::to_string(i)));
  for (const auto& item : items) {
    EXPECT_TRUE(Mccls::verify_typed(f.kgc.params(), "alice", f.alice.public_key.primary(),
                                    item.message, item.signature, &cache));
  }
  EXPECT_TRUE(batch_verify(f.kgc.params(), "alice", f.alice.public_key.primary(), items,
                           f.rng, &cache));
}

TEST(PairingCacheWarm, WarmedEntriesMatchLazyOnes) {
  // warm() precomputes with one batched final exponentiation; the entries
  // must be bit-identical to what the lazy get() path computes.
  Fixture f;
  PairingCache warmed;
  const std::vector<std::string> ids = {"alice", "bob", "carol"};
  warmed.warm(f.kgc.params(), ids);
  EXPECT_EQ(warmed.size(), 3u);
  PairingCache lazy;
  for (const auto& id : ids) {
    EXPECT_EQ(warmed.get(f.kgc.params(), id), lazy.get(f.kgc.params(), id)) << id;
  }
  EXPECT_EQ(warmed.size(), 3u) << "get() after warm() must not recompute";
}

TEST(PairingCacheWarm, SkipsAlreadyCachedAndDuplicateIds) {
  Fixture f;
  PairingCache cache;
  (void)cache.get(f.kgc.params(), "alice");
  const std::vector<std::string> ids = {"alice", "bob", "bob"};
  cache.warm(f.kgc.params(), ids);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PairingCacheWarm, GetIsStableAcrossWarmRehash) {
  // get() returns by value (GtCache contract): the result must stay usable
  // even after warm() inserts enough entries to rehash the underlying map —
  // the old by-reference API handed out a pointer into the rehashed table.
  Fixture f;
  PairingCache cache;
  const pairing::Gt alice = cache.get(f.kgc.params(), "alice");
  std::vector<std::string> ids;
  for (int i = 0; i < 64; ++i) ids.push_back("rehash-node-" + std::to_string(i));
  cache.warm(f.kgc.params(), ids);
  EXPECT_EQ(cache.size(), 65u);
  EXPECT_EQ(alice, cache.get(f.kgc.params(), "alice"));
}

TEST(PairingCacheWarm, VerifyAcceptsAgainstWarmedCache) {
  Fixture f;
  PairingCache cache;
  cache.warm(f.kgc.params(), std::vector<std::string>{"alice"});
  const auto item = f.make_item(f.alice, "warmed");
  EXPECT_TRUE(Mccls::verify_typed(f.kgc.params(), "alice", f.alice.public_key.primary(),
                                  item.message, item.signature, &cache));
}

class BatchSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(BatchSizeSweep, ValidBatchesOfEverySizeAccept) {
  Fixture f;
  std::vector<BatchItem> items;
  for (int i = 0; i < GetParam(); ++i) {
    items.push_back(f.make_item(f.alice, "sweep" + std::to_string(i)));
  }
  EXPECT_TRUE(
      batch_verify(f.kgc.params(), "alice", f.alice.public_key.primary(), items, f.rng));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BatchSizeSweep, ::testing::Values(1, 2, 3, 5, 9, 17, 33));

}  // namespace
}  // namespace mccls::cls
