#include "ec/g1.hpp"

#include <gtest/gtest.h>

namespace mccls::ec {
namespace {

using math::U256;

// Multiples of the generator computed with an independent implementation.
const U256 k2Gx{{0xd1dc25eca4232a61ULL, 0x22ec305884f038c0ULL, 0x2f3b52455a1b5f9dULL, 0x202c9f585aeeaacaULL}};
const U256 k2Gy{{0x7f86688bc1edb10eULL, 0x0465b67244897a26ULL, 0x9faabcc4ee865fd0ULL, 0x30fadfe1408ce9c5ULL}};
const U256 k7Gx{{0x0190c1df46965323ULL, 0x3470106475f0a68cULL, 0x1c31aa2df6716ae3ULL, 0x0c1bf668e0c25627ULL}};
const U256 k7Gy{{0x54cc47ed164a547eULL, 0x88ef1e6d9ec6a19aULL, 0xde1257832e66a608ULL, 0x1e599222cbb10db7ULL}};
const U256 k13Gx{{0xdc505e1d22641e1fULL, 0xa3d9eafa6edabb39ULL, 0xe5c347caf695a17dULL, 0x01954f5d1a13896bULL}};
const U256 k13Gy{{0x0d0155a8b12d4b72ULL, 0xb9596b034e88b468ULL, 0x762557159d2710f4ULL, 0x05c06d21a826e9cdULL}};

G1 point_from(const U256& x, const U256& y) {
  auto p = G1::from_affine(Fp::from_u256(x), Fp::from_u256(y));
  EXPECT_TRUE(p.has_value());
  return *p;
}

TEST(G1, GeneratorOnCurveAndInSubgroup) {
  const G1& g = G1::generator();
  EXPECT_TRUE(g.is_on_curve());
  EXPECT_FALSE(g.is_infinity());
  EXPECT_TRUE(g.in_subgroup());
}

TEST(G1, KnownDouble) {
  EXPECT_EQ(G1::generator().dbl(), point_from(k2Gx, k2Gy));
  EXPECT_EQ(G1::generator() + G1::generator(), point_from(k2Gx, k2Gy));
}

TEST(G1, KnownSmallMultiples) {
  EXPECT_EQ(G1::generator().mul(U256::from_u64(7)), point_from(k7Gx, k7Gy));
  EXPECT_EQ(G1::generator().mul(U256::from_u64(13)), point_from(k13Gx, k13Gy));
}

TEST(G1, AdditionIsConsistentWithMultiplication) {
  const G1& g = G1::generator();
  // 7G + 13G == 20G == 4 * 5G
  const G1 lhs = g.mul(U256::from_u64(7)) + g.mul(U256::from_u64(13));
  EXPECT_EQ(lhs, g.mul(U256::from_u64(20)));
  EXPECT_EQ(lhs, g.mul(U256::from_u64(5)).mul_cofactor());
}

TEST(G1, InfinityIsIdentity) {
  const G1& g = G1::generator();
  EXPECT_EQ(g + G1::infinity(), g);
  EXPECT_EQ(G1::infinity() + g, g);
  EXPECT_EQ(G1::infinity() + G1::infinity(), G1::infinity());
  EXPECT_TRUE(G1::infinity().is_on_curve());
}

TEST(G1, NegationCancels) {
  const G1& g = G1::generator();
  EXPECT_EQ(g + g.neg(), G1::infinity());
  EXPECT_EQ(g - g, G1::infinity());
  EXPECT_EQ(G1::infinity().neg(), G1::infinity());
}

TEST(G1, OrderAnnihilates) {
  const G1& g = G1::generator();
  EXPECT_TRUE(g.mul(math::Fq::modulus()).is_infinity());
  // (q-1)G == -G
  U256 q_minus_1;
  sub(q_minus_1, math::Fq::modulus(), U256::one());
  EXPECT_EQ(g.mul(q_minus_1), g.neg());
}

TEST(G1, MulByZeroAndOne) {
  const G1& g = G1::generator();
  EXPECT_TRUE(g.mul(U256::zero()).is_infinity());
  EXPECT_EQ(g.mul(U256::one()), g);
  EXPECT_TRUE(G1::infinity().mul(U256::from_u64(12345)).is_infinity());
}

TEST(G1, ScalarMultDistributes) {
  const G1& g = G1::generator();
  const U256 a = U256::from_hex("deadbeefcafebabe0123456789abcdef");
  const U256 b = U256::from_hex("123456789abcdef0fedcba9876543210");
  U256 sum;
  add(sum, a, b);
  EXPECT_EQ(g.mul(a) + g.mul(b), g.mul(sum));
}

TEST(G1, ScalarMultAssociates) {
  const G1& g = G1::generator();
  const U256 a = U256::from_u64(12345);
  const U256 b = U256::from_u64(67890);
  EXPECT_EQ(g.mul(a).mul(b), g.mul(b).mul(a));
  EXPECT_EQ(g.mul(a).mul(b), g.mul(U256::from_u64(12345ULL * 67890ULL)));
}

TEST(G1, FqScalarMatchesU256Scalar) {
  const G1& g = G1::generator();
  const auto k = math::Fq::from_u64(424242);
  EXPECT_EQ(g.mul(k), g.mul(U256::from_u64(424242)));
}

TEST(G1, FromAffineRejectsOffCurve) {
  EXPECT_FALSE(G1::from_affine(Fp::from_u64(12345), Fp::from_u64(678)).has_value());
}

TEST(G1, LiftXMatchesCurveEquation) {
  // The generator's x must lift to ±G.
  const G1& g = G1::generator();
  const auto lifted = G1::lift_x(g.x());
  ASSERT_TRUE(lifted.has_value());
  EXPECT_TRUE(*lifted == g || *lifted == g.neg());
}

TEST(G1, SerializationRoundTrip) {
  const G1& g = G1::generator();
  for (std::uint64_t k : {1ULL, 2ULL, 3ULL, 99ULL, 123456789ULL}) {
    const G1 p = g.mul(U256::from_u64(k));
    const auto bytes = p.to_bytes();
    const auto back = G1::from_bytes(bytes);
    ASSERT_TRUE(back.has_value()) << "k=" << k;
    EXPECT_EQ(*back, p) << "k=" << k;
  }
}

TEST(G1, SerializationInfinity) {
  const auto bytes = G1::infinity().to_bytes();
  EXPECT_EQ(bytes[0], 0x00);
  const auto back = G1::from_bytes(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->is_infinity());
}

TEST(G1, SerializationRejectsGarbage) {
  std::array<std::uint8_t, G1::kEncodedSize> bad{};
  bad[0] = 0x05;  // invalid tag
  EXPECT_FALSE(G1::from_bytes(bad).has_value());
  bad[0] = 0x00;
  bad[5] = 0x01;  // infinity with non-zero payload
  EXPECT_FALSE(G1::from_bytes(bad).has_value());
  std::array<std::uint8_t, 4> short_buf{};
  EXPECT_FALSE(G1::from_bytes(short_buf).has_value());
}

TEST(G1, Mul2MatchesSeparateMuls) {
  const G1& g = G1::generator();
  const G1 p = g.mul(U256::from_u64(111));
  const G1 q = g.mul(U256::from_u64(222));
  const U256 a = U256::from_hex("deadbeef12345678");
  const U256 b = U256::from_hex("cafebabe87654321");
  EXPECT_EQ(G1::mul2(a, p, b, q), p.mul(a) + q.mul(b));
}

TEST(G1, Mul2EdgeCases) {
  const G1& g = G1::generator();
  const G1 p = g.mul(U256::from_u64(5));
  EXPECT_EQ(G1::mul2(U256::zero(), p, U256::zero(), g), G1::infinity());
  EXPECT_EQ(G1::mul2(U256::from_u64(7), p, U256::zero(), g), p.mul(U256::from_u64(7)));
  EXPECT_EQ(G1::mul2(U256::zero(), p, U256::from_u64(9), g), g.mul(U256::from_u64(9)));
  // a·P + b·(−P) with a == b cancels to infinity.
  EXPECT_EQ(G1::mul2(U256::from_u64(4), p, U256::from_u64(4), p.neg()), G1::infinity());
  EXPECT_EQ(G1::mul2(U256::from_u64(3), G1::infinity(), U256::from_u64(2), p),
            p.mul(U256::from_u64(2)));
}

TEST(G1, MulGeneratorMatchesGenericMul) {
  const G1& g = G1::generator();
  for (std::uint64_t k : {0ULL, 1ULL, 2ULL, 15ULL, 16ULL, 255ULL, 1234567ULL}) {
    EXPECT_EQ(G1::mul_generator(U256::from_u64(k)), g.mul(U256::from_u64(k))) << k;
  }
  // A full-width scalar.
  U256 big;
  sub(big, math::Fq::modulus(), U256::from_u64(1));
  EXPECT_EQ(G1::mul_generator(big), g.mul(big));
}

class DoubleScalarSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DoubleScalarSweep, Mul2Agrees) {
  const G1& g = G1::generator();
  const std::uint64_t s = GetParam();
  const U256 a{{s * 0x9e3779b97f4a7c15ULL, s ^ 0xABCD, s + 3, s >> 2}};
  const U256 b{{s * 0xbf58476d1ce4e5b9ULL, s ^ 0x1234, s + 7, s >> 3}};
  U256 ar = a;
  U256 br = b;
  while (cmp(ar, math::Fq::modulus()) >= 0) sub(ar, ar, math::Fq::modulus());
  while (cmp(br, math::Fq::modulus()) >= 0) sub(br, br, math::Fq::modulus());
  const G1 p = g.mul(U256::from_u64(s + 1));
  const G1 q = g.mul(U256::from_u64(2 * s + 3));
  EXPECT_EQ(G1::mul2(ar, p, br, q), p.mul(ar) + q.mul(br));
  EXPECT_EQ(G1::mul_generator(ar), g.mul(ar));
}

INSTANTIATE_TEST_SUITE_P(Sweep, DoubleScalarSweep,
                         ::testing::Values(1, 2, 3, 7, 42, 999, 123456789));

class PointDecodeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PointDecodeFuzz, RandomBuffersNeverCrashAndRoundTrip) {
  // Random 33-byte buffers either fail to decode or yield a point that
  // re-encodes canonically. Exercises tag validation, field-range checks
  // and the curve-membership test.
  std::uint64_t x = GetParam() * 0x9e3779b97f4a7c15ULL + 0xfeed;
  auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return static_cast<std::uint8_t>(x);
  };
  int decoded_count = 0;
  for (int trial = 0; trial < 64; ++trial) {
    std::array<std::uint8_t, G1::kEncodedSize> buf;
    for (auto& b : buf) b = next();
    buf[0] = static_cast<std::uint8_t>(buf[0] % 5);  // mostly plausible tags
    const auto p = G1::from_bytes(buf);
    if (!p) continue;
    ++decoded_count;
    EXPECT_TRUE(p->is_on_curve());
    const auto re = p->to_bytes();
    const auto back = G1::from_bytes(re);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, *p);
  }
  // Roughly half of valid-range x coordinates lift; with random bytes most
  // fail the tag or range checks first. Just require no crash + round trip.
  (void)decoded_count;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PointDecodeFuzz, ::testing::Range<std::uint64_t>(0, 8));

TEST(SqrtFp, RoundTripOnSquares) {
  for (std::uint64_t v : {4ULL, 9ULL, 16ULL, 12345ULL}) {
    const Fp a = Fp::from_u64(v);
    const Fp sq = a.square();
    const auto root = sqrt_fp(sq);
    ASSERT_TRUE(root.has_value()) << v;
    EXPECT_TRUE(*root == a || *root == a.neg()) << v;
  }
}

TEST(SqrtFp, RejectsNonResidue) {
  // -1 is a non-residue when p ≡ 3 (mod 4).
  EXPECT_FALSE(sqrt_fp(Fp::one().neg()).has_value());
}

}  // namespace
}  // namespace mccls::ec
