// The paradigm baselines behind the paper's motivation: PKI carries
// certificates, ID-PKC carries escrow, CL-PKC carries neither. These tests
// verify the baselines work and *demonstrate* each paradigm's documented
// drawback concretely.
#include "cls/paradigms.hpp"

#include <gtest/gtest.h>

namespace mccls::cls {
namespace {

crypto::Bytes msg(std::string_view s) {
  return crypto::Bytes(crypto::as_bytes(s).begin(), crypto::as_bytes(s).end());
}

// ------------------------------------------------------------------- BLS

TEST(Bls, SignVerifyRoundTrip) {
  crypto::HmacDrbg rng(std::uint64_t{1});
  const BlsKeyPair kp = bls_keygen(rng);
  const auto m = msg("hello bls");
  const ec::G1 sig = bls_sign(kp.secret, m);
  EXPECT_TRUE(bls_verify(kp.public_key, m, sig));
}

TEST(Bls, RejectsTamperAndWrongKey) {
  crypto::HmacDrbg rng(std::uint64_t{2});
  const BlsKeyPair kp = bls_keygen(rng);
  const BlsKeyPair other = bls_keygen(rng);
  const auto m = msg("payload");
  const ec::G1 sig = bls_sign(kp.secret, m);
  EXPECT_FALSE(bls_verify(kp.public_key, msg("tampered"), sig));
  EXPECT_FALSE(bls_verify(other.public_key, m, sig));
  EXPECT_FALSE(bls_verify(kp.public_key, m, ec::G1::infinity()));
}

TEST(Bls, DeterministicSignature) {
  // BLS is deterministic: same key + message -> same signature.
  crypto::HmacDrbg rng(std::uint64_t{3});
  const BlsKeyPair kp = bls_keygen(rng);
  const auto m = msg("fixed");
  EXPECT_EQ(bls_sign(kp.secret, m), bls_sign(kp.secret, m));
}

// ------------------------------------------------------------------- PKI

TEST(BlsPki, CertificateChainVerifies) {
  crypto::HmacDrbg rng(std::uint64_t{4});
  const BlsPki pki(rng);
  const BlsKeyPair user = bls_keygen(rng);
  const Certificate cert = pki.issue("alice", user.public_key);
  EXPECT_TRUE(pki.verify_certificate(cert));
  const auto m = msg("certified message");
  EXPECT_TRUE(pki.verify_signed_message(cert, m, bls_sign(user.secret, m)));
}

TEST(BlsPki, ForgedCertificateRejected) {
  // The paradigm's anchor: without the CA's key, no one can bind a rogue
  // key to an identity.
  crypto::HmacDrbg rng(std::uint64_t{5});
  const BlsPki pki(rng);
  const BlsKeyPair rogue = bls_keygen(rng);
  Certificate forged{.id = "alice",
                     .subject_key = rogue.public_key,
                     .ca_signature = bls_sign(rogue.secret, msg("self signed"))};
  EXPECT_FALSE(pki.verify_certificate(forged));
  const auto m = msg("impersonation");
  EXPECT_FALSE(pki.verify_signed_message(forged, m, bls_sign(rogue.secret, m)));
}

TEST(BlsPki, CertificateIsBoundToIdentityAndKey) {
  crypto::HmacDrbg rng(std::uint64_t{6});
  const BlsPki pki(rng);
  const BlsKeyPair user = bls_keygen(rng);
  Certificate cert = pki.issue("alice", user.public_key);
  // Renaming the subject invalidates the certificate...
  Certificate renamed = cert;
  renamed.id = "mallory";
  EXPECT_FALSE(pki.verify_certificate(renamed));
  // ...as does swapping the key.
  Certificate reskeyed = cert;
  reskeyed.subject_key = bls_keygen(rng).public_key;
  EXPECT_FALSE(pki.verify_certificate(reskeyed));
}

TEST(BlsPki, ValidSignatureUnderWrongCertFails) {
  crypto::HmacDrbg rng(std::uint64_t{7});
  const BlsPki pki(rng);
  const BlsKeyPair alice = bls_keygen(rng);
  const BlsKeyPair bob = bls_keygen(rng);
  const Certificate bob_cert = pki.issue("bob", bob.public_key);
  const auto m = msg("cross");
  // Alice's signature does not verify under Bob's (valid) certificate.
  EXPECT_FALSE(pki.verify_signed_message(bob_cert, m, bls_sign(alice.secret, m)));
  (void)alice;
}

// ------------------------------------------------------------------- IBS

TEST(ChaCheonIbs, SignVerifyRoundTrip) {
  crypto::HmacDrbg rng(std::uint64_t{8});
  const ChaCheonIbs pkg(rng);
  const ec::G1 d_alice = pkg.extract("alice");
  const auto m = msg("identity based");
  const IbsSignature sig = ChaCheonIbs::sign(d_alice, "alice", m, rng);
  EXPECT_TRUE(pkg.verify("alice", m, sig));
}

TEST(ChaCheonIbs, RejectsTamperCrossIdentityAndGarbage) {
  crypto::HmacDrbg rng(std::uint64_t{9});
  const ChaCheonIbs pkg(rng);
  const ec::G1 d_alice = pkg.extract("alice");
  const auto m = msg("payload");
  const IbsSignature sig = ChaCheonIbs::sign(d_alice, "alice", m, rng);
  EXPECT_FALSE(pkg.verify("alice", msg("tampered"), sig));
  EXPECT_FALSE(pkg.verify("bob", m, sig));
  const IbsSignature junk{.u = ec::G1::generator(), .v = ec::G1::generator().dbl()};
  EXPECT_FALSE(pkg.verify("alice", m, junk));
}

TEST(ChaCheonIbs, KeyEscrowDemonstrated) {
  // DOCUMENTED PARADIGM DRAWBACK (the reason CL-PKC exists, paper §1): the
  // PKG knows every user's signing key and can impersonate anyone.
  crypto::HmacDrbg rng(std::uint64_t{10});
  const ChaCheonIbs pkg(rng);
  // "alice" never interacts; the PKG extracts her key on its own...
  const ec::G1 escrowed = pkg.extract("alice");
  const auto m = msg("message alice never signed");
  const IbsSignature forged = ChaCheonIbs::sign(escrowed, "alice", m, rng);
  // ...and the forgery verifies perfectly.
  EXPECT_TRUE(pkg.verify("alice", m, forged));
}

TEST(ChaCheonIbs, DistinctPkgsAreIncompatible) {
  crypto::HmacDrbg rng1(std::uint64_t{11});
  crypto::HmacDrbg rng2(std::uint64_t{12});
  const ChaCheonIbs pkg1(rng1);
  const ChaCheonIbs pkg2(rng2);
  const auto m = msg("cross-domain");
  const IbsSignature sig = ChaCheonIbs::sign(pkg1.extract("alice"), "alice", m, rng1);
  EXPECT_TRUE(pkg1.verify("alice", m, sig));
  EXPECT_FALSE(pkg2.verify("alice", m, sig));
}

}  // namespace
}  // namespace mccls::cls
