// Threshold KGC: t-of-n partial-key issuance must be transparent to users
// and verifiers, and anything below the threshold must fail.
#include "cls/threshold.hpp"

#include <gtest/gtest.h>

#include "cls/mccls.hpp"
#include "pairing/pairing.hpp"

namespace mccls::cls {
namespace {

struct Fixture {
  crypto::HmacDrbg rng{std::uint64_t{0x7435}};
  ThresholdKgc kgc = ThresholdKgc::deal(5, 3, rng);

  std::vector<PartialKeyShare> contributions(std::string_view id,
                                             std::initializer_list<std::size_t> holders) {
    std::vector<PartialKeyShare> out;
    for (const std::size_t h : holders) {
      out.push_back(ThresholdKgc::issue_share(kgc.shares()[h], id));
    }
    return out;
  }
};

TEST(ThresholdKgc, DealProducesNDistinctShares) {
  Fixture f;
  EXPECT_EQ(f.kgc.shares().size(), 5u);
  EXPECT_EQ(f.kgc.threshold(), 3u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(f.kgc.shares()[i].index, i + 1);
    for (std::size_t j = i + 1; j < 5; ++j) {
      EXPECT_NE(f.kgc.shares()[i].value.to_u256(), f.kgc.shares()[j].value.to_u256());
    }
  }
}

TEST(ThresholdKgc, CombinedKeyVerifiesAgainstPpub) {
  // ê(P, D_ID) == ê(Ppub, Q_ID): the combined key is a genuine partial key
  // for the dealt system parameters.
  Fixture f;
  const auto d = f.kgc.combine(f.contributions("alice", {0, 1, 2}));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(pairing::pair(f.kgc.params().p, *d),
            pairing::pair(f.kgc.params().p_pub, hash_id("alice")));
}

TEST(ThresholdKgc, AnyTSubsetGivesTheSameKey) {
  Fixture f;
  const auto d012 = f.kgc.combine(f.contributions("alice", {0, 1, 2}));
  const auto d024 = f.kgc.combine(f.contributions("alice", {0, 2, 4}));
  const auto d234 = f.kgc.combine(f.contributions("alice", {2, 3, 4}));
  ASSERT_TRUE(d012 && d024 && d234);
  EXPECT_EQ(*d012, *d024);
  EXPECT_EQ(*d012, *d234);
}

TEST(ThresholdKgc, MoreThanTSharesAlsoWork) {
  Fixture f;
  const auto d_all = f.kgc.combine(f.contributions("alice", {0, 1, 2, 3, 4}));
  const auto d_min = f.kgc.combine(f.contributions("alice", {0, 1, 2}));
  ASSERT_TRUE(d_all && d_min);
  EXPECT_EQ(*d_all, *d_min);
}

TEST(ThresholdKgc, BelowThresholdFails) {
  Fixture f;
  EXPECT_FALSE(f.kgc.combine(f.contributions("alice", {0, 1})).has_value());
  EXPECT_FALSE(f.kgc.combine({}).has_value());
}

TEST(ThresholdKgc, DuplicateSharesRejected) {
  Fixture f;
  auto dup = f.contributions("alice", {0, 1});
  dup.push_back(dup.front());  // same share twice
  EXPECT_FALSE(f.kgc.combine(dup).has_value());
}

TEST(ThresholdKgc, WrongSubsetProducesWrongKey) {
  // A contribution for a different identity corrupts the combination —
  // the result fails the pairing check rather than silently passing.
  Fixture f;
  auto mixed = f.contributions("alice", {0, 1});
  mixed.push_back(ThresholdKgc::issue_share(f.kgc.shares()[2], "bob"));
  const auto d = f.kgc.combine(std::move(mixed));
  ASSERT_TRUE(d.has_value());
  EXPECT_NE(pairing::pair(f.kgc.params().p, *d),
            pairing::pair(f.kgc.params().p_pub, hash_id("alice")));
}

TEST(ThresholdKgc, EndToEndSigningWithThresholdIssuedKey) {
  // A user whose partial key came from the distributed KGC signs and
  // verifies exactly like one enrolled by a centralized KGC.
  Fixture f;
  const auto d = f.kgc.combine(f.contributions("alice", {1, 3, 4}));
  ASSERT_TRUE(d.has_value());
  const Mccls scheme;
  const UserKeys alice = scheme.keygen(f.kgc.params(), "alice", *d, f.rng);
  const auto m = crypto::as_bytes("distributed trust");
  const auto sig = scheme.sign(f.kgc.params(), alice, {m.data(), m.size()}, f.rng);
  EXPECT_TRUE(scheme.verify(f.kgc.params(), "alice", alice.public_key,
                            {m.data(), m.size()}, sig));
}

TEST(ThresholdKgc, LagrangeCoefficientsInterpolate) {
  // Σ λ_i·f(x_i) must reconstruct f(0) for a known polynomial over Zq.
  const std::vector<std::uint32_t> indices{1, 2, 5};
  // f(z) = 7 + 3z + 2z²  ->  f(0) = 7, f(1) = 12, f(2) = 21, f(5) = 72.
  const std::vector<std::pair<std::uint32_t, std::uint64_t>> points{{1, 12}, {2, 21}, {5, 72}};
  math::Fq acc = math::Fq::zero();
  for (const auto& [x, y] : points) {
    acc += ThresholdKgc::lagrange_at_zero(x, indices) * math::Fq::from_u64(y);
  }
  EXPECT_EQ(acc.to_u256(), math::U256::from_u64(7));
}

TEST(ThresholdKgc, RejectsBadParameters) {
  crypto::HmacDrbg rng(std::uint64_t{1});
  EXPECT_THROW(ThresholdKgc::deal(5, 1, rng), std::invalid_argument);
  EXPECT_THROW(ThresholdKgc::deal(3, 4, rng), std::invalid_argument);
}

class ThresholdSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ThresholdSweep, AllConfigurationsReconstruct) {
  const auto [n, t] = GetParam();
  crypto::HmacDrbg rng(std::uint64_t{1000} + n * 16 + t);
  const ThresholdKgc kgc =
      ThresholdKgc::deal(static_cast<std::size_t>(n), static_cast<std::size_t>(t), rng);
  std::vector<PartialKeyShare> contributions;
  for (int i = 0; i < t; ++i) {
    contributions.push_back(ThresholdKgc::issue_share(kgc.shares()[i], "node"));
  }
  const auto d = kgc.combine(std::move(contributions));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(pairing::pair(kgc.params().p, *d),
            pairing::pair(kgc.params().p_pub, hash_id("node")));
}

INSTANTIATE_TEST_SUITE_P(Configs, ThresholdSweep,
                         ::testing::Values(std::pair{2, 2}, std::pair{3, 2}, std::pair{5, 3},
                                           std::pair{7, 4}, std::pair{9, 5}));

}  // namespace
}  // namespace mccls::cls
