// The verification service: queue backpressure, wire-framing totality, the
// sharded pairing cache's concurrency contract, and — the property the whole
// subsystem hangs on — that concurrent, coalesced verification returns
// exactly the verdicts single-threaded Scheme::verify would.
//
// Also built under ThreadSanitizer as test_service_tsan (tests/CMakeLists).
#include "svc/service.hpp"

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "cls/batch.hpp"
#include "cls/mccls.hpp"
#include "cls/registry.hpp"
#include "pairing/pairing.hpp"
#include "svc/queue.hpp"

namespace mccls::svc {
namespace {

using ::testing::Each;

// ------------------------------------------------------------ BoundedQueue

TEST(BoundedQueue, DropTailRefusesWhenFullAndKeepsItemIntact) {
  BoundedQueue<std::string> q(2);
  EXPECT_TRUE(q.try_push("a"));
  EXPECT_TRUE(q.try_push("b"));
  std::string overflow = "overflow";
  EXPECT_FALSE(q.try_push(std::move(overflow)));
  EXPECT_EQ(overflow, "overflow") << "refused push must not consume the item";
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, PopIsFifo) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(q.try_push(int{i}));
  std::stop_source stop;
  EXPECT_EQ(q.pop(stop.get_token()), 0);
  EXPECT_EQ(q.pop(stop.get_token()), 1);
  EXPECT_EQ(q.pop(stop.get_token()), 2);
}

TEST(BoundedQueue, DrainTakesUpToMax) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(q.try_push(int{i}));
  std::vector<int> out;
  std::stop_source stop;
  EXPECT_TRUE(q.drain(out, 4, stop.get_token()));
  EXPECT_THAT(out, ::testing::ElementsAre(0, 1, 2, 3));
  out.clear();
  EXPECT_TRUE(q.drain(out, 4, stop.get_token()));
  EXPECT_THAT(out, ::testing::ElementsAre(4, 5));
}

TEST(BoundedQueue, CloseWakesBlockedConsumerAfterBacklog) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_push(7));
  std::vector<int> got;
  bool saw_end = false;
  std::jthread consumer([&](std::stop_token stop) {
    std::vector<int> chunk;
    while (q.drain(chunk, 2, stop)) {
      got.insert(got.end(), chunk.begin(), chunk.end());
      chunk.clear();
    }
    saw_end = true;
  });
  q.close();
  consumer.join();
  EXPECT_THAT(got, ::testing::ElementsAre(7)) << "backlog must drain before end-of-stream";
  EXPECT_TRUE(saw_end);
  EXPECT_FALSE(q.try_push(1)) << "closed queue refuses admission";
}

TEST(BoundedQueue, StopTokenCancelsBlockedPop) {
  BoundedQueue<int> q(4);
  std::optional<int> result = 42;
  std::jthread consumer([&](std::stop_token stop) { result = q.pop(stop); });
  // jthread's destructor requests stop; pop must return nullopt, not hang.
  consumer.request_stop();
  consumer.join();
  EXPECT_EQ(result, std::nullopt);
}

TEST(BoundedQueue, StopWithBacklogStillDrains) {
  // The stop-vs-close contract: a stop request ends *waiting*, not
  // *draining*. Items the queue already accepted must still be handed out
  // after request_stop(), both by pop() and by drain() — otherwise a worker
  // observing its stop token would silently abandon accepted work.
  BoundedQueue<int> q(8);
  ASSERT_TRUE(q.try_push(1));
  ASSERT_TRUE(q.try_push(2));
  ASSERT_TRUE(q.try_push(3));

  std::stop_source source;
  source.request_stop();

  const auto first = q.pop(source.get_token());
  ASSERT_TRUE(first.has_value()) << "pop with a stopped token must drain backlog";
  EXPECT_EQ(*first, 1);

  std::vector<int> chunk;
  EXPECT_TRUE(q.drain(chunk, 8, source.get_token()));
  EXPECT_THAT(chunk, ::testing::ElementsAre(2, 3));

  // Only once the backlog is gone does the stop request end the wait.
  EXPECT_EQ(q.pop(source.get_token()), std::nullopt);
  chunk.clear();
  EXPECT_FALSE(q.drain(chunk, 8, source.get_token()));
  EXPECT_TRUE(chunk.empty());

  // Stop alone never closes admission; that is close()'s job.
  EXPECT_TRUE(q.try_push(4));
}

// ------------------------------------------------------------ wire framing

struct WireFixture {
  crypto::HmacDrbg rng{std::uint64_t{0x51D3CA7}};
  cls::Kgc kgc = cls::Kgc::setup(rng);
  cls::Mccls scheme;
  cls::UserKeys alice = scheme.enroll(kgc, "alice", rng);

  VerifyRequest request(std::uint64_t id = 7) {
    const auto msg = crypto::as_bytes("wire message");
    return VerifyRequest{.request_id = id,
                         .scheme = "McCLS",
                         .id = "alice",
                         .public_key = alice.public_key,
                         .message = crypto::Bytes(msg.begin(), msg.end()),
                         .signature = scheme.sign(kgc.params(), alice, msg, rng)};
  }
};

TEST(Wire, SchemeIdsCoverTable1AndRejectOthers) {
  for (const auto name : cls::scheme_names()) {
    const auto id = scheme_wire_id(name);
    ASSERT_TRUE(id.has_value()) << name;
    EXPECT_EQ(scheme_from_wire_id(*id), name);
  }
  EXPECT_FALSE(scheme_wire_id("RSA").has_value());
  EXPECT_FALSE(scheme_from_wire_id(4).has_value());
  EXPECT_FALSE(scheme_from_wire_id(0xFF).has_value());
}

TEST(Wire, RequestRoundTrip) {
  WireFixture f;
  const VerifyRequest request = f.request(0xDEADBEEFCAFEULL);
  const auto decoded = decode_request(encode_request(request));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->request_id, request.request_id);
  EXPECT_EQ(decoded->scheme, request.scheme);
  EXPECT_EQ(decoded->id, request.id);
  EXPECT_EQ(decoded->public_key, request.public_key);
  EXPECT_EQ(decoded->message, request.message);
  EXPECT_EQ(decoded->signature, request.signature);
}

TEST(Wire, ResponseRoundTripAllStatuses) {
  for (const Status s : {Status::kVerified, Status::kRejected, Status::kBusy,
                         Status::kMalformed, Status::kUnknownSigner,
                         Status::kUnavailable}) {
    const auto decoded = decode_response(encode_response(VerifyResponse{99, s}));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->request_id, 99u);
    EXPECT_EQ(decoded->status, s);
  }
}

TEST(Wire, DecoderIsTotal) {
  WireFixture f;
  const crypto::Bytes good = encode_request(f.request());
  ASSERT_TRUE(decode_request(good).has_value());

  // Every proper prefix is truncated input.
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(decode_request({good.data(), len}).has_value()) << "prefix " << len;
  }
  // Trailing garbage.
  crypto::Bytes trailing = good;
  trailing.push_back(0x00);
  EXPECT_FALSE(decode_request(trailing).has_value());
  // Wrong version / kind / scheme id.
  crypto::Bytes bad = good;
  bad[0] = kWireVersion + 1;
  EXPECT_FALSE(decode_request(bad).has_value());
  bad = good;
  bad[1] = 9;
  EXPECT_FALSE(decode_request(bad).has_value());
  bad = good;
  bad[10] = 0xFF;  // scheme byte follows version, kind, u64 request id
  EXPECT_FALSE(decode_request(bad).has_value());

  // Random garbage never decodes (and never crashes).
  crypto::HmacDrbg rng(std::uint64_t{0xF022});
  for (int i = 0; i < 256; ++i) {
    const auto blob = rng.generate(static_cast<std::size_t>(i) % 97);
    EXPECT_FALSE(decode_request(blob).has_value());
    EXPECT_FALSE(decode_response(blob).has_value());
  }

  // Responses with out-of-range status bytes are rejected (kUnavailable=5
  // is the last valid value as of wire v2); every in-range value decodes.
  crypto::Bytes resp = encode_response(VerifyResponse{1, Status::kVerified});
  for (std::uint8_t status = 0; status <= 5; ++status) {
    resp.back() = status;
    EXPECT_TRUE(decode_response(resp).has_value()) << "status " << int(status);
  }
  resp.back() = 6;
  EXPECT_FALSE(decode_response(resp).has_value());
  // The v1 version byte died with the v2 status addition: old frames reject
  // outright rather than misreading status 5.
  crypto::Bytes v1 = encode_response(VerifyResponse{1, Status::kVerified});
  v1[0] = 0x01;
  EXPECT_FALSE(decode_response(v1).has_value());

  // Kind-3 (verify-by-identity) frames: same totality contract — every
  // proper prefix and any trailing byte reject; a kind-1 body under a kind-3
  // tag (or vice versa) is non-canonical and rejects.
  VerifyRequest by_id = f.request();
  by_id.by_identity = true;
  by_id.public_key = {};
  const crypto::Bytes good3 = encode_request(by_id);
  ASSERT_TRUE(decode_request(good3).has_value());
  for (std::size_t len = 0; len < good3.size(); ++len) {
    EXPECT_FALSE(decode_request({good3.data(), len}).has_value()) << "prefix " << len;
  }
  crypto::Bytes trailing3 = good3;
  trailing3.push_back(0x00);
  EXPECT_FALSE(decode_request(trailing3).has_value());
  crypto::Bytes crossed = good;
  crossed[1] = 3;  // kind-1 body (has a pk field) under the by-identity kind
  EXPECT_FALSE(decode_request(crossed).has_value());
  crossed = good3;
  crossed[1] = 1;  // by-identity body (no pk field) under the inline kind
  EXPECT_FALSE(decode_request(crossed).has_value());
}

// ----------------------------------------------------- ShardedPairingCache

TEST(ShardedPairingCache, MatchesDirectPairingAndSingleThreadedCache) {
  WireFixture f;
  ShardedPairingCache sharded(4);
  cls::PairingCache reference;
  for (const std::string id : {"alice", "bob", "carol"}) {
    EXPECT_EQ(sharded.get(f.kgc.params(), id), reference.get(f.kgc.params(), id)) << id;
  }
  EXPECT_EQ(sharded.size(), 3u);
}

TEST(ShardedPairingCache, WarmMatchesLazyAndSkipsDuplicates) {
  WireFixture f;
  ShardedPairingCache warmed(4);
  (void)warmed.get(f.kgc.params(), "alice");
  const std::vector<std::string> ids = {"alice", "bob", "bob", "carol"};
  warmed.warm(f.kgc.params(), ids);
  EXPECT_EQ(warmed.size(), 3u);
  ShardedPairingCache lazy(4);
  for (const auto& id : ids) {
    EXPECT_EQ(warmed.get(f.kgc.params(), id), lazy.get(f.kgc.params(), id)) << id;
  }
}

TEST(ShardedPairingCache, ConcurrentGetAndWarmAgree) {
  WireFixture f;
  ShardedPairingCache cache(4);
  const std::vector<std::string> ids = {"n0", "n1", "n2", "n3", "n4", "n5"};
  std::vector<pairing::Gt> expected;
  for (const auto& id : ids) {
    expected.push_back(pairing::pair(f.kgc.params().p_pub, cls::hash_id(id)));
  }
  std::atomic<int> mismatches{0};
  {
    std::vector<std::jthread> threads;
    threads.emplace_back([&] { cache.warm(f.kgc.params(), ids); });
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t i = 0; i < ids.size(); ++i) {
          const std::size_t k = (i + static_cast<std::size_t>(t)) % ids.size();
          if (!(cache.get(f.kgc.params(), ids[k]) == expected[k])) ++mismatches;
        }
      });
    }
  }
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cache.size(), ids.size());
}

// ---------------------------------------------------------- VerifyService

// Collects responses and lets the test block until all of them arrived.
struct ResponseSink {
  std::mutex mutex;
  std::condition_variable cv;
  std::map<std::uint64_t, Status> statuses;
  std::size_t count = 0;

  VerifyService::Completion completion() {
    return [this](const VerifyResponse& response) {
      std::lock_guard lock(mutex);
      statuses[response.request_id] = response.status;
      ++count;
      cv.notify_all();
    };
  }

  bool wait_for(std::size_t n, std::chrono::seconds timeout = std::chrono::seconds(60)) {
    std::unique_lock lock(mutex);
    return cv.wait_for(lock, timeout, [&] { return count >= n; });
  }
};

struct ServiceFixture {
  crypto::HmacDrbg rng{std::uint64_t{0x5EC7E57}};
  cls::Kgc kgc = cls::Kgc::setup(rng);
  cls::Mccls scheme;

  VerifyRequest make_request(const cls::UserKeys& signer, std::string_view text,
                             std::uint64_t request_id) {
    const auto msg = crypto::as_bytes(text);
    return VerifyRequest{.request_id = request_id,
                         .scheme = "McCLS",
                         .id = signer.id,
                         .public_key = signer.public_key,
                         .message = crypto::Bytes(msg.begin(), msg.end()),
                         .signature = scheme.sign(kgc.params(), signer, msg, rng)};
  }
};

TEST(VerifyService, ConcurrentVerdictsMatchSingleThreadedVerify) {
  ServiceFixture f;
  std::vector<cls::UserKeys> signers;
  for (int s = 0; s < 3; ++s) {
    signers.push_back(f.scheme.enroll(f.kgc, "node-" + std::to_string(s), f.rng));
  }

  // Mixed corpus: valid, tampered-message, tampered-V, wrong-id, truncated.
  std::vector<VerifyRequest> requests;
  std::uint64_t next_id = 1;
  for (int s = 0; s < 3; ++s) {
    for (int m = 0; m < 4; ++m) {
      requests.push_back(
          f.make_request(signers[s], "msg-" + std::to_string(s * 4 + m), next_id++));
    }
  }
  requests.push_back(f.make_request(signers[0], "tamper-me", next_id++));
  requests.back().message.push_back(0xFF);
  requests.push_back(f.make_request(signers[1], "tamper-v", next_id++));
  requests.back().signature[0] ^= 0x01;
  requests.push_back(f.make_request(signers[2], "wrong-id", next_id++));
  requests.back().id = "impostor";
  requests.push_back(f.make_request(signers[0], "truncate", next_id++));
  requests.back().signature.pop_back();

  // Ground truth from the single-threaded path.
  std::map<std::uint64_t, bool> expected;
  for (const auto& request : requests) {
    expected[request.request_id] =
        f.scheme.verify(f.kgc.params(), request.id, request.public_key, request.message,
                        request.signature);
  }

  ResponseSink sink;
  {
    VerifyService service(f.kgc.params(),
                          ServiceConfig{.workers = 2, .queue_capacity = 64});
    // 4 producers interleave submissions of disjoint request slices.
    std::vector<std::jthread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&, p] {
        for (std::size_t i = static_cast<std::size_t>(p); i < requests.size(); i += 4) {
          // Exercise both entry points. (EXPECT, not ASSERT: gtest fatal
          // assertions may only abort the main thread.)
          if (i % 2 == 0) {
            EXPECT_TRUE(service.submit(requests[i], sink.completion()));
          } else {
            EXPECT_TRUE(service.submit_bytes(encode_request(requests[i]), sink.completion()));
          }
        }
      });
    }
    producers.clear();  // join producers
    ASSERT_TRUE(sink.wait_for(requests.size()));
  }

  ASSERT_EQ(sink.statuses.size(), requests.size()) << "every request answered exactly once";
  for (const auto& [request_id, verdict] : expected) {
    const Status got = sink.statuses.at(request_id);
    EXPECT_EQ(got, verdict ? Status::kVerified : Status::kRejected)
        << "request " << request_id;
  }
}

TEST(VerifyService, MixedValidityBatchFallsBackToIndividualVerdicts) {
  ServiceFixture f;
  const cls::UserKeys alice = f.scheme.enroll(f.kgc, "alice", f.rng);
  std::vector<VerifyRequest> requests;
  for (int m = 0; m < 5; ++m) {
    requests.push_back(f.make_request(alice, "batch-" + std::to_string(m), 100 + m));
  }
  // Tamper V on one member: same signer-static S, so it coalesces into the
  // batch, the batch fails, and the fallback must isolate it.
  requests[3].signature[0] ^= 0x01;
  const bool tampered_valid =
      f.scheme.verify(f.kgc.params(), "alice", alice.public_key, requests[3].message,
                      requests[3].signature);
  ASSERT_FALSE(tampered_valid);

  ResponseSink sink;
  {
    VerifyService service(f.kgc.params(),
                          ServiceConfig{.workers = 1, .queue_capacity = 16});
    for (auto& request : requests) service.submit(request, sink.completion());
    ASSERT_TRUE(sink.wait_for(requests.size()));
  }
  for (int m = 0; m < 5; ++m) {
    EXPECT_EQ(sink.statuses.at(100 + static_cast<std::uint64_t>(m)),
              m == 3 ? Status::kRejected : Status::kVerified);
  }
}

TEST(VerifyService, DifferingSComponentsSplitGroupsAndStillVerifyCorrectly) {
  ServiceFixture f;
  const cls::UserKeys alice = f.scheme.enroll(f.kgc, "alice", f.rng);
  std::vector<VerifyRequest> requests;
  for (int m = 0; m < 4; ++m) {
    requests.push_back(f.make_request(alice, "s-split-" + std::to_string(m), 200 + m));
  }
  // Replace one S with a different point (2·S): the coalescer must key it
  // into its own group (batch_verify's same-S precondition) and the single
  // path must reject it.
  auto sig = cls::McclsSignature::from_bytes(requests[1].signature);
  ASSERT_TRUE(sig.has_value());
  sig->s = sig->s + sig->s;
  requests[1].signature = sig->to_bytes();

  ResponseSink sink;
  {
    VerifyService service(f.kgc.params(),
                          ServiceConfig{.workers = 1, .queue_capacity = 16});
    for (auto& request : requests) service.submit(request, sink.completion());
    ASSERT_TRUE(sink.wait_for(requests.size()));
  }
  for (int m = 0; m < 4; ++m) {
    EXPECT_EQ(sink.statuses.at(200 + static_cast<std::uint64_t>(m)),
              m == 1 ? Status::kRejected : Status::kVerified);
  }
}

TEST(VerifyService, BackpressureRespondsBusyAndNeverBlocks) {
  ServiceFixture f;
  const cls::UserKeys alice = f.scheme.enroll(f.kgc, "alice", f.rng);
  const VerifyRequest base = f.make_request(alice, "pressure", 0);

  ResponseSink sink;
  std::size_t accepted = 0;
  {
    VerifyService service(f.kgc.params(),
                          ServiceConfig{.workers = 1, .queue_capacity = 2});
    constexpr std::size_t kOffered = 40;
    for (std::size_t i = 0; i < kOffered; ++i) {
      VerifyRequest request = base;
      request.request_id = 1000 + i;
      if (service.submit(std::move(request), sink.completion())) ++accepted;
    }
    ASSERT_TRUE(sink.wait_for(kOffered)) << "every request must be answered";

    const auto snapshot = service.metrics().snapshot();
    EXPECT_EQ(snapshot.submitted, kOffered);
    EXPECT_EQ(snapshot.busy, kOffered - accepted);
    EXPECT_EQ(snapshot.verified + snapshot.rejected, accepted);
    EXPECT_GT(snapshot.busy, 0u) << "capacity 2 with instant submission must shed load";
    EXPECT_LE(snapshot.queue_depth_peak, 2u);
  }
  std::size_t busy_responses = 0;
  for (const auto& [id, status] : sink.statuses) {
    if (status == Status::kBusy) ++busy_responses;
  }
  EXPECT_EQ(busy_responses, 40 - accepted);
}

TEST(VerifyService, MalformedFramesAndUnknownSchemesAnswerMalformed) {
  ServiceFixture f;
  ResponseSink sink;
  VerifyService service(f.kgc.params(), ServiceConfig{.workers = 1});

  EXPECT_FALSE(service.submit_bytes(crypto::as_bytes("not a frame"), sink.completion()));
  VerifyRequest bogus;
  bogus.request_id = 5;
  bogus.scheme = "RSA";
  EXPECT_FALSE(service.submit(bogus, sink.completion()));
  ASSERT_TRUE(sink.wait_for(2));
  EXPECT_EQ(sink.statuses.at(0), Status::kMalformed);
  EXPECT_EQ(sink.statuses.at(5), Status::kMalformed);
  EXPECT_EQ(service.metrics().snapshot().malformed, 2u);
}

TEST(VerifyService, CoalescerAmortizesPairingsAndCountsBatches) {
  ServiceFixture f;
  const cls::UserKeys alice = f.scheme.enroll(f.kgc, "alice", f.rng);
  std::vector<VerifyRequest> requests;
  for (int m = 0; m < 8; ++m) {
    requests.push_back(f.make_request(alice, "amortize-" + std::to_string(m), 300 + m));
  }
  ResponseSink sink;
  ServiceMetrics::Snapshot snapshot;
  {
    VerifyService service(f.kgc.params(),
                          ServiceConfig{.workers = 1, .queue_capacity = 16});
    for (auto& request : requests) service.submit(request, sink.completion());
    ASSERT_TRUE(sink.wait_for(requests.size()));
    snapshot = service.metrics().snapshot();
  }
  EXPECT_EQ(snapshot.verified, 8u);
  // Every signature went through either a batch or a single verification —
  // exact split depends on drain timing, which is scheduler-dependent.
  EXPECT_EQ(snapshot.batched_signatures + snapshot.single_verifies, 8u);
  EXPECT_EQ(snapshot.submitted, 8u);
}

TEST(VerifyService, NonMcclsSchemesTakeTheSinglePath) {
  ServiceFixture f;
  const auto yhg = cls::make_scheme("YHG");
  ASSERT_NE(yhg, nullptr);
  crypto::HmacDrbg rng(std::uint64_t{0x7465});
  const cls::UserKeys dana = yhg->enroll(f.kgc, "dana", rng);
  const auto msg = crypto::as_bytes("yhg message");
  std::vector<VerifyRequest> requests;
  for (int m = 0; m < 2; ++m) {
    requests.push_back(
        VerifyRequest{.request_id = static_cast<std::uint64_t>(400 + m),
                      .scheme = "YHG",
                      .id = "dana",
                      .public_key = dana.public_key,
                      .message = crypto::Bytes(msg.begin(), msg.end()),
                      .signature = yhg->sign(f.kgc.params(), dana, msg, rng)});
  }
  ResponseSink sink;
  ServiceMetrics::Snapshot snapshot;
  {
    VerifyService service(f.kgc.params(), ServiceConfig{.workers = 1});
    for (auto& request : requests) service.submit(request, sink.completion());
    ASSERT_TRUE(sink.wait_for(requests.size()));
    snapshot = service.metrics().snapshot();
  }
  EXPECT_EQ(snapshot.verified, 2u);
  EXPECT_EQ(snapshot.batches, 0u) << "only McCLS coalesces";
  EXPECT_EQ(snapshot.single_verifies, 2u);
}

TEST(VerifyService, ShutdownDrainsBacklogBeforeJoining) {
  ServiceFixture f;
  const cls::UserKeys alice = f.scheme.enroll(f.kgc, "alice", f.rng);
  ResponseSink sink;
  constexpr std::size_t kCount = 6;
  {
    VerifyService service(f.kgc.params(),
                          ServiceConfig{.workers = 2, .queue_capacity = 16});
    for (std::size_t i = 0; i < kCount; ++i) {
      VerifyRequest request = f.make_request(alice, "drain", 500 + i);
      service.submit(std::move(request), sink.completion());
    }
    service.shutdown();  // must complete every accepted request first
    EXPECT_EQ(sink.count, kCount);
    // After shutdown, admission is closed: new requests answer kBusy.
    VerifyRequest late = f.make_request(alice, "late", 999);
    EXPECT_FALSE(service.submit(std::move(late), sink.completion()));
    EXPECT_EQ(sink.statuses.at(999), Status::kBusy);
  }
}

// -------------------------------------------------------- ServiceMetrics

TEST(ServiceMetrics, HistogramsAndPercentiles) {
  ServiceMetrics metrics;
  metrics.on_batch(1);
  metrics.on_batch(4);
  metrics.on_batch(5);    // bucket log2(5) = 2 (sizes 4..7)
  metrics.on_batch(300);  // clamped into the top bucket (256+)
  const auto after_batches = metrics.snapshot();
  EXPECT_EQ(after_batches.batches, 4u);
  EXPECT_EQ(after_batches.batched_signatures, 310u);
  EXPECT_EQ(after_batches.batch_hist[0], 1u);
  EXPECT_EQ(after_batches.batch_hist[2], 2u);
  EXPECT_EQ(after_batches.batch_hist[ServiceMetrics::kBatchBuckets - 1], 1u);
  EXPECT_DOUBLE_EQ(after_batches.mean_batch_size(), 77.5);

  // 90 fast completions and 10 slow ones: p50 in the fast bucket, p99 well
  // above it.
  for (int i = 0; i < 90; ++i) metrics.on_latency_ns(1000);
  for (int i = 0; i < 10; ++i) metrics.on_latency_ns(1u << 20);
  const auto snapshot = metrics.snapshot();
  EXPECT_GT(snapshot.latency_p50_ns, 0);
  EXPECT_LT(snapshot.latency_p50_ns, 3000);
  EXPECT_GT(snapshot.latency_p99_ns, snapshot.latency_p50_ns);

  // Multi-pairing instrumentation: two products covering 3 + 1 coalesced
  // groups. mean width = 2.0; the counters and histogram must survive the
  // JSON dump under their own names.
  metrics.on_multi_pair(3);
  metrics.on_multi_pair(1);
  const auto after_products = metrics.snapshot();
  EXPECT_EQ(after_products.multi_pair_batches, 2u);
  EXPECT_DOUBLE_EQ(after_products.mean_multi_pair_width(), 2.0);

  const std::string json = metrics.to_json("unit");
  EXPECT_NE(json.find("\"bench\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("latency_p50"), std::string::npos);
  EXPECT_NE(json.find("\"mean_batch_size\": 77.5"), std::string::npos);
  EXPECT_NE(json.find("\"multi_pair_batches\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"mean_multi_pair_width\": 2"), std::string::npos);
  EXPECT_NE(json.find("batch_hist_1"), std::string::npos);
}

TEST(ServiceMetrics, BucketBoundariesArePinned) {
  // The histogram geometry is part of the dump's meaning: bucket 0 honestly
  // covers [0, 2) — it absorbs v == 0 — and every later bucket i covers
  // [2^i, 2^{i+1}). Pin the boundaries exactly.
  EXPECT_EQ(ServiceMetrics::log2_bucket(0, 48), 0u);
  EXPECT_EQ(ServiceMetrics::log2_bucket(1, 48), 0u);
  EXPECT_EQ(ServiceMetrics::log2_bucket(2, 48), 1u);
  EXPECT_EQ(ServiceMetrics::log2_bucket(3, 48), 1u);
  EXPECT_EQ(ServiceMetrics::log2_bucket(4, 48), 2u);
  EXPECT_EQ(ServiceMetrics::log2_bucket(7, 48), 2u);
  EXPECT_EQ(ServiceMetrics::log2_bucket(8, 48), 3u);
  // Clamped into the last bucket, never out of range.
  EXPECT_EQ(ServiceMetrics::log2_bucket(~std::uint64_t{0}, 48), 47u);
  EXPECT_EQ(ServiceMetrics::log2_bucket(300, 9), 8u);

  // Reported representative values: 1.0 for the [0, 2) bucket (the honest
  // midpoint once zero belongs to it), geometric midpoint 1.5 * 2^i after.
  EXPECT_DOUBLE_EQ(ServiceMetrics::bucket_midpoint(0), 1.0);
  EXPECT_DOUBLE_EQ(ServiceMetrics::bucket_midpoint(1), 3.0);
  EXPECT_DOUBLE_EQ(ServiceMetrics::bucket_midpoint(2), 6.0);
  EXPECT_DOUBLE_EQ(ServiceMetrics::bucket_midpoint(10), 1536.0);

  // End to end: a histogram fed only zero-valued samples reports percentile
  // 1.0 (inside [0, 2)), not the 1.5 a [1, 2)-style bucket would claim.
  ServiceMetrics metrics;
  for (int i = 0; i < 10; ++i) metrics.on_latency_ns(0);
  const auto snapshot = metrics.snapshot();
  EXPECT_DOUBLE_EQ(snapshot.latency_p50_ns, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.latency_p99_ns, 1.0);
}

// ------------------------------------------------------- resolver pipeline

// Scripted PkResolver: plays back a fixed sequence of results (repeating the
// last one once exhausted), counts calls, and can stall to exercise
// deadlines.
class ScriptedResolver final : public PkResolver {
 public:
  explicit ScriptedResolver(std::vector<ResolveResult> script)
      : script_(std::move(script)) {}

  ResolveResult resolve(std::string_view) override {
    std::uint32_t stall = 0;
    ResolveResult result;
    {
      std::lock_guard lock(mutex_);
      const std::size_t i = std::min(calls_, script_.size() - 1);
      result = script_[i];
      ++calls_;
      stall = stall_ms_;
    }
    if (stall > 0) std::this_thread::sleep_for(std::chrono::milliseconds(stall));
    return result;
  }

  void set_stall_ms(std::uint32_t ms) {
    std::lock_guard lock(mutex_);
    stall_ms_ = ms;
  }
  void set_script(std::vector<ResolveResult> script) {
    std::lock_guard lock(mutex_);
    script_ = std::move(script);
    calls_ = 0;
  }
  std::size_t calls() const {
    std::lock_guard lock(mutex_);
    return calls_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<ResolveResult> script_;
  std::size_t calls_ = 0;
  std::uint32_t stall_ms_ = 0;
};

cls::PublicKey test_public_key() {
  WireFixture f;
  return f.alice.public_key;
}

// Fast-retry config for the unit tests: microsecond backoff, no breaker
// surprises unless the test asks for them.
ResilientConfig fast_config() {
  ResilientConfig config;
  config.call_deadline = std::chrono::seconds(5);
  config.backoff_base = std::chrono::microseconds(1);
  config.backoff_cap = std::chrono::microseconds(10);
  config.breaker_consecutive = 1000;
  config.breaker_min_samples = 1000000;
  config.breaker_open = std::chrono::seconds(100);
  return config;
}

TEST(FaultInjectingResolver, IsDeterministicAndCountsInjections) {
  const cls::PublicKey pk = test_public_key();
  ScriptedResolver inner({ResolveResult::ok(pk)});
  FaultConfig fault{.fail_rate = 0.5, .stall_ms = 0, .seed = 1234};
  std::vector<ResolveOutcome> first;
  {
    FaultInjectingResolver resolver(&inner, fault);
    for (int i = 0; i < 64; ++i) first.push_back(resolver.resolve("alice").outcome);
    EXPECT_EQ(resolver.injected_failures() + resolver.forwarded(), 64u);
    EXPECT_GT(resolver.injected_failures(), 0u);
    EXPECT_GT(resolver.forwarded(), 0u);
    EXPECT_EQ(inner.calls(), resolver.forwarded());
  }
  // Same seed, same fault sequence.
  ScriptedResolver inner2({ResolveResult::ok(pk)});
  FaultInjectingResolver replay(&inner2, fault);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(replay.resolve("alice").outcome, first[static_cast<std::size_t>(i)]) << i;
  }
}

TEST(FaultInjectingResolver, RateEndpointsAndMidRunReconfig) {
  const cls::PublicKey pk = test_public_key();
  ScriptedResolver inner({ResolveResult::ok(pk)});
  FaultInjectingResolver resolver(&inner, FaultConfig{.fail_rate = 1.0});
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(resolver.resolve("alice").outcome, ResolveOutcome::kUnavailable);
  }
  EXPECT_EQ(inner.calls(), 0u) << "injected failures never reach the inner resolver";
  resolver.set_fail_rate(0.0);  // outage cleared mid-run
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(resolver.resolve("alice").outcome, ResolveOutcome::kOk);
  }
  EXPECT_EQ(inner.calls(), 8u);
}

TEST(ResilientResolver, RetriesTransientFailuresThenSucceeds) {
  const cls::PublicKey pk = test_public_key();
  ScriptedResolver inner({ResolveResult::unavailable(), ResolveResult::unavailable(),
                          ResolveResult::ok(pk)});
  ResilientConfig config = fast_config();
  config.max_attempts = 3;
  ResilientResolver resolver(&inner, config);
  ServiceMetrics metrics;
  resolver.set_metrics(&metrics);

  const ResolveResult result = resolver.resolve("alice");
  EXPECT_EQ(result.outcome, ResolveOutcome::kOk);
  ASSERT_TRUE(result.has_key());
  EXPECT_EQ(*result.key, pk);
  EXPECT_EQ(inner.calls(), 3u);
  EXPECT_EQ(metrics.snapshot().resolve_retries, 2u);
}

TEST(ResilientResolver, ExhaustedRetriesReportUnavailable) {
  ScriptedResolver inner({ResolveResult::unavailable()});
  ResilientConfig config = fast_config();
  config.max_attempts = 3;
  ResilientResolver resolver(&inner, config);
  EXPECT_EQ(resolver.resolve("alice").outcome, ResolveOutcome::kUnavailable);
  EXPECT_EQ(inner.calls(), 3u);
}

TEST(ResilientResolver, NotVouchedIsDefinitiveAndNegativelyCached) {
  ScriptedResolver inner({ResolveResult::not_vouched()});
  ResilientConfig config = fast_config();
  config.max_attempts = 5;
  config.negative_ttl = std::chrono::seconds(100);
  ResilientResolver resolver(&inner, config);
  ServiceMetrics metrics;
  resolver.set_metrics(&metrics);

  // Definitive verdict: no retries spent on it.
  EXPECT_EQ(resolver.resolve("mallory").outcome, ResolveOutcome::kNotVouched);
  EXPECT_EQ(inner.calls(), 1u) << "kNotVouched must not retry";

  // Replays from the cache without consulting the inner resolver again.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(resolver.resolve("mallory").outcome, ResolveOutcome::kNotVouched);
  }
  EXPECT_EQ(inner.calls(), 1u);
  EXPECT_EQ(metrics.snapshot().negative_cache_hits, 4u);

  // A different identity is a miss.
  EXPECT_EQ(resolver.resolve("eve").outcome, ResolveOutcome::kNotVouched);
  EXPECT_EQ(inner.calls(), 2u);

  // clear_negative_cache drops the verdicts (epoch roll semantics).
  resolver.clear_negative_cache();
  EXPECT_EQ(resolver.resolve("mallory").outcome, ResolveOutcome::kNotVouched);
  EXPECT_EQ(inner.calls(), 3u);
}

TEST(ResilientResolver, NegativeCacheEntriesExpire) {
  ScriptedResolver inner({ResolveResult::not_vouched()});
  ResilientConfig config = fast_config();
  config.negative_ttl = std::chrono::milliseconds(5);
  ResilientResolver resolver(&inner, config);

  EXPECT_EQ(resolver.resolve("mallory").outcome, ResolveOutcome::kNotVouched);
  EXPECT_EQ(inner.calls(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(resolver.resolve("mallory").outcome, ResolveOutcome::kNotVouched);
  EXPECT_EQ(inner.calls(), 2u) << "expired entry must re-consult the directory";
}

TEST(ResilientResolver, TransientOutcomesAreNeverCached) {
  // Caching kUnavailable would launder an outage into a standing verdict:
  // the very next call after the outage clears must reach the directory.
  const cls::PublicKey pk = test_public_key();
  ScriptedResolver inner({ResolveResult::unavailable(), ResolveResult::ok(pk)});
  ResilientConfig config = fast_config();
  config.max_attempts = 1;
  config.negative_ttl = std::chrono::seconds(100);
  ResilientResolver resolver(&inner, config);

  EXPECT_EQ(resolver.resolve("alice").outcome, ResolveOutcome::kUnavailable);
  EXPECT_EQ(resolver.resolve("alice").outcome, ResolveOutcome::kOk);
  EXPECT_EQ(inner.calls(), 2u);
}

TEST(ResilientResolver, DeadlineClassifiesSlowAnswersAsTimeout) {
  const cls::PublicKey pk = test_public_key();
  ScriptedResolver inner({ResolveResult::ok(pk)});
  inner.set_stall_ms(50);
  ResilientConfig config = fast_config();
  config.call_deadline = std::chrono::milliseconds(1);
  config.max_attempts = 1;
  ResilientResolver resolver(&inner, config);
  ServiceMetrics metrics;
  resolver.set_metrics(&metrics);

  // The inner resolver *did* produce a key — but past the deadline, so the
  // honest classification is kTimeout, and no key leaks out.
  const ResolveResult result = resolver.resolve("alice");
  EXPECT_EQ(result.outcome, ResolveOutcome::kTimeout);
  EXPECT_FALSE(result.has_key());
}

TEST(ResilientResolver, BreakerTripsOnConsecutiveFailuresAndFastFails) {
  ScriptedResolver inner({ResolveResult::unavailable()});
  ResilientConfig config = fast_config();
  config.max_attempts = 1;
  config.breaker_consecutive = 3;
  config.breaker_open = std::chrono::seconds(100);  // stays open for the test
  ResilientResolver resolver(&inner, config);
  ServiceMetrics metrics;
  resolver.set_metrics(&metrics);

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(resolver.resolve("alice").outcome, ResolveOutcome::kUnavailable);
  }
  EXPECT_EQ(resolver.breaker_state(), BreakerState::kOpen);
  const std::size_t calls_at_trip = inner.calls();

  // Open breaker fast-fails without touching the inner resolver.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(resolver.resolve("alice").outcome, ResolveOutcome::kUnavailable);
  }
  EXPECT_EQ(inner.calls(), calls_at_trip);
  const auto snapshot = metrics.snapshot();
  EXPECT_EQ(snapshot.breaker_trips, 1u);
  EXPECT_EQ(snapshot.breaker_fast_fails, 10u);
  EXPECT_EQ(snapshot.breaker_state,
            static_cast<std::uint64_t>(BreakerState::kOpen));
}

TEST(ResilientResolver, BreakerTripsOnErrorRate) {
  // Interleaved successes keep the consecutive counter low; the windowed
  // error rate is what trips.
  const cls::PublicKey pk = test_public_key();
  std::vector<ResolveResult> script;
  for (int i = 0; i < 32; ++i) {
    script.push_back(i % 2 == 0 ? ResolveResult::ok(pk) : ResolveResult::unavailable());
  }
  ScriptedResolver inner(std::move(script));
  ResilientConfig config = fast_config();
  config.max_attempts = 1;
  config.breaker_consecutive = 1000;  // condition 1 never fires
  config.breaker_window = 16;
  config.breaker_min_samples = 8;
  config.breaker_error_rate = 0.5;
  config.breaker_open = std::chrono::seconds(100);
  ResilientResolver resolver(&inner, config);

  for (int i = 0; i < 32 && resolver.breaker_state() == BreakerState::kClosed; ++i) {
    (void)resolver.resolve("alice");
  }
  EXPECT_EQ(resolver.breaker_state(), BreakerState::kOpen);
}

TEST(ResilientResolver, HalfOpenProbesRecoverAfterFaultClears) {
  const cls::PublicKey pk = test_public_key();
  ScriptedResolver inner({ResolveResult::unavailable()});
  ResilientConfig config = fast_config();
  config.max_attempts = 1;
  config.breaker_consecutive = 2;
  config.breaker_open = std::chrono::milliseconds(5);
  config.half_open_probes = 2;
  ResilientResolver resolver(&inner, config);

  (void)resolver.resolve("alice");
  (void)resolver.resolve("alice");
  ASSERT_EQ(resolver.breaker_state(), BreakerState::kOpen);

  // Fault still present when the open window elapses: the probe fails and
  // the breaker re-opens.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(resolver.resolve("alice").outcome, ResolveOutcome::kUnavailable);
  EXPECT_EQ(resolver.breaker_state(), BreakerState::kOpen);

  // Fault clears; after the open window, two successful probes close it.
  inner.set_script({ResolveResult::ok(pk)});
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(resolver.resolve("alice").outcome, ResolveOutcome::kOk);
  EXPECT_EQ(resolver.breaker_state(), BreakerState::kHalfOpen);
  EXPECT_EQ(resolver.resolve("alice").outcome, ResolveOutcome::kOk);
  EXPECT_EQ(resolver.breaker_state(), BreakerState::kClosed);
}

TEST(VerifyService, DirectoryOutageAnswersUnavailableNeverUnknownSigner) {
  // The bug this pipeline exists to fix: a dead directory must surface as
  // the retryable kUnavailable, not as the trust verdict kUnknownSigner.
  ServiceFixture f;
  const cls::UserKeys alice = f.scheme.enroll(f.kgc, "alice", f.rng);
  ScriptedResolver directory({ResolveResult::ok(alice.public_key)});
  FaultInjectingResolver faulty(&directory, FaultConfig{.fail_rate = 1.0});
  ResilientConfig config = fast_config();
  config.max_attempts = 2;
  ResilientResolver resilient(&faulty, config);

  ResponseSink sink;
  VerifyService service(
      f.kgc.params(),
      ServiceConfig{.workers = 2, .queue_capacity = 64, .resolver = &resilient});

  constexpr std::size_t kCount = 8;
  for (std::size_t i = 0; i < kCount; ++i) {
    VerifyRequest request = f.make_request(alice, "outage", 700 + i);
    request.by_identity = true;
    request.public_key = {};
    ASSERT_TRUE(service.submit(std::move(request), sink.completion()));
  }
  ASSERT_TRUE(sink.wait_for(kCount));
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(sink.statuses.at(700 + i), Status::kUnavailable) << "request " << i;
  }
  const auto snapshot = service.metrics().snapshot();
  EXPECT_EQ(snapshot.unavailable, kCount);
  EXPECT_EQ(snapshot.unknown_signer, 0u)
      << "transient faults must never masquerade as unknown signers";
  EXPECT_EQ(snapshot.resolve_unavailable, kCount);

  // Outage clears: the same by-identity request verifies.
  faulty.set_fail_rate(0.0);
  VerifyRequest healthy = f.make_request(alice, "recovered", 900);
  healthy.by_identity = true;
  healthy.public_key = {};
  ASSERT_TRUE(service.submit(std::move(healthy), sink.completion()));
  ASSERT_TRUE(sink.wait_for(kCount + 1));
  EXPECT_EQ(sink.statuses.at(900), Status::kVerified);
}

TEST(VerifyService, NotVouchedStillAnswersUnknownSigner) {
  // The definitive verdict keeps its meaning: a resolver that does not vouch
  // for the signer yields kUnknownSigner, with or without the resilience
  // wrapper in between.
  ServiceFixture f;
  const cls::UserKeys alice = f.scheme.enroll(f.kgc, "alice", f.rng);
  ScriptedResolver directory({ResolveResult::not_vouched()});
  ResilientResolver resilient(&directory, fast_config());

  ResponseSink sink;
  VerifyService service(
      f.kgc.params(),
      ServiceConfig{.workers = 1, .queue_capacity = 16, .resolver = &resilient});
  VerifyRequest request = f.make_request(alice, "revoked", 41);
  request.by_identity = true;
  request.public_key = {};
  ASSERT_TRUE(service.submit(std::move(request), sink.completion()));
  ASSERT_TRUE(sink.wait_for(1));
  EXPECT_EQ(sink.statuses.at(41), Status::kUnknownSigner);
  EXPECT_EQ(service.metrics().snapshot().resolve_not_vouched, 1u);
}

}  // namespace
}  // namespace mccls::svc
