// The verification service: queue backpressure, wire-framing totality, the
// sharded pairing cache's concurrency contract, and — the property the whole
// subsystem hangs on — that concurrent, coalesced verification returns
// exactly the verdicts single-threaded Scheme::verify would.
//
// Also built under ThreadSanitizer as test_service_tsan (tests/CMakeLists).
#include "svc/service.hpp"

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>

#include "cls/batch.hpp"
#include "cls/mccls.hpp"
#include "cls/registry.hpp"
#include "pairing/pairing.hpp"
#include "svc/queue.hpp"

namespace mccls::svc {
namespace {

using ::testing::Each;

// ------------------------------------------------------------ BoundedQueue

TEST(BoundedQueue, DropTailRefusesWhenFullAndKeepsItemIntact) {
  BoundedQueue<std::string> q(2);
  EXPECT_TRUE(q.try_push("a"));
  EXPECT_TRUE(q.try_push("b"));
  std::string overflow = "overflow";
  EXPECT_FALSE(q.try_push(std::move(overflow)));
  EXPECT_EQ(overflow, "overflow") << "refused push must not consume the item";
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, PopIsFifo) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(q.try_push(int{i}));
  std::stop_source stop;
  EXPECT_EQ(q.pop(stop.get_token()), 0);
  EXPECT_EQ(q.pop(stop.get_token()), 1);
  EXPECT_EQ(q.pop(stop.get_token()), 2);
}

TEST(BoundedQueue, DrainTakesUpToMax) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(q.try_push(int{i}));
  std::vector<int> out;
  std::stop_source stop;
  EXPECT_TRUE(q.drain(out, 4, stop.get_token()));
  EXPECT_THAT(out, ::testing::ElementsAre(0, 1, 2, 3));
  out.clear();
  EXPECT_TRUE(q.drain(out, 4, stop.get_token()));
  EXPECT_THAT(out, ::testing::ElementsAre(4, 5));
}

TEST(BoundedQueue, CloseWakesBlockedConsumerAfterBacklog) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_push(7));
  std::vector<int> got;
  bool saw_end = false;
  std::jthread consumer([&](std::stop_token stop) {
    std::vector<int> chunk;
    while (q.drain(chunk, 2, stop)) {
      got.insert(got.end(), chunk.begin(), chunk.end());
      chunk.clear();
    }
    saw_end = true;
  });
  q.close();
  consumer.join();
  EXPECT_THAT(got, ::testing::ElementsAre(7)) << "backlog must drain before end-of-stream";
  EXPECT_TRUE(saw_end);
  EXPECT_FALSE(q.try_push(1)) << "closed queue refuses admission";
}

TEST(BoundedQueue, StopTokenCancelsBlockedPop) {
  BoundedQueue<int> q(4);
  std::optional<int> result = 42;
  std::jthread consumer([&](std::stop_token stop) { result = q.pop(stop); });
  // jthread's destructor requests stop; pop must return nullopt, not hang.
  consumer.request_stop();
  consumer.join();
  EXPECT_EQ(result, std::nullopt);
}

// ------------------------------------------------------------ wire framing

struct WireFixture {
  crypto::HmacDrbg rng{std::uint64_t{0x51D3CA7}};
  cls::Kgc kgc = cls::Kgc::setup(rng);
  cls::Mccls scheme;
  cls::UserKeys alice = scheme.enroll(kgc, "alice", rng);

  VerifyRequest request(std::uint64_t id = 7) {
    const auto msg = crypto::as_bytes("wire message");
    return VerifyRequest{.request_id = id,
                         .scheme = "McCLS",
                         .id = "alice",
                         .public_key = alice.public_key,
                         .message = crypto::Bytes(msg.begin(), msg.end()),
                         .signature = scheme.sign(kgc.params(), alice, msg, rng)};
  }
};

TEST(Wire, SchemeIdsCoverTable1AndRejectOthers) {
  for (const auto name : cls::scheme_names()) {
    const auto id = scheme_wire_id(name);
    ASSERT_TRUE(id.has_value()) << name;
    EXPECT_EQ(scheme_from_wire_id(*id), name);
  }
  EXPECT_FALSE(scheme_wire_id("RSA").has_value());
  EXPECT_FALSE(scheme_from_wire_id(4).has_value());
  EXPECT_FALSE(scheme_from_wire_id(0xFF).has_value());
}

TEST(Wire, RequestRoundTrip) {
  WireFixture f;
  const VerifyRequest request = f.request(0xDEADBEEFCAFEULL);
  const auto decoded = decode_request(encode_request(request));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->request_id, request.request_id);
  EXPECT_EQ(decoded->scheme, request.scheme);
  EXPECT_EQ(decoded->id, request.id);
  EXPECT_EQ(decoded->public_key, request.public_key);
  EXPECT_EQ(decoded->message, request.message);
  EXPECT_EQ(decoded->signature, request.signature);
}

TEST(Wire, ResponseRoundTripAllStatuses) {
  for (const Status s :
       {Status::kVerified, Status::kRejected, Status::kBusy, Status::kMalformed}) {
    const auto decoded = decode_response(encode_response(VerifyResponse{99, s}));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->request_id, 99u);
    EXPECT_EQ(decoded->status, s);
  }
}

TEST(Wire, DecoderIsTotal) {
  WireFixture f;
  const crypto::Bytes good = encode_request(f.request());
  ASSERT_TRUE(decode_request(good).has_value());

  // Every proper prefix is truncated input.
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(decode_request({good.data(), len}).has_value()) << "prefix " << len;
  }
  // Trailing garbage.
  crypto::Bytes trailing = good;
  trailing.push_back(0x00);
  EXPECT_FALSE(decode_request(trailing).has_value());
  // Wrong version / kind / scheme id.
  crypto::Bytes bad = good;
  bad[0] = kWireVersion + 1;
  EXPECT_FALSE(decode_request(bad).has_value());
  bad = good;
  bad[1] = 9;
  EXPECT_FALSE(decode_request(bad).has_value());
  bad = good;
  bad[10] = 0xFF;  // scheme byte follows version, kind, u64 request id
  EXPECT_FALSE(decode_request(bad).has_value());

  // Random garbage never decodes (and never crashes).
  crypto::HmacDrbg rng(std::uint64_t{0xF022});
  for (int i = 0; i < 256; ++i) {
    const auto blob = rng.generate(static_cast<std::size_t>(i) % 97);
    EXPECT_FALSE(decode_request(blob).has_value());
    EXPECT_FALSE(decode_response(blob).has_value());
  }

  // Responses with out-of-range status bytes are rejected (kUnknownSigner=4
  // is the last valid value).
  crypto::Bytes resp = encode_response(VerifyResponse{1, Status::kVerified});
  resp.back() = 5;
  EXPECT_FALSE(decode_response(resp).has_value());

  // Kind-3 (verify-by-identity) frames: same totality contract — every
  // proper prefix and any trailing byte reject; a kind-1 body under a kind-3
  // tag (or vice versa) is non-canonical and rejects.
  VerifyRequest by_id = f.request();
  by_id.by_identity = true;
  by_id.public_key = {};
  const crypto::Bytes good3 = encode_request(by_id);
  ASSERT_TRUE(decode_request(good3).has_value());
  for (std::size_t len = 0; len < good3.size(); ++len) {
    EXPECT_FALSE(decode_request({good3.data(), len}).has_value()) << "prefix " << len;
  }
  crypto::Bytes trailing3 = good3;
  trailing3.push_back(0x00);
  EXPECT_FALSE(decode_request(trailing3).has_value());
  crypto::Bytes crossed = good;
  crossed[1] = 3;  // kind-1 body (has a pk field) under the by-identity kind
  EXPECT_FALSE(decode_request(crossed).has_value());
  crossed = good3;
  crossed[1] = 1;  // by-identity body (no pk field) under the inline kind
  EXPECT_FALSE(decode_request(crossed).has_value());
}

// ----------------------------------------------------- ShardedPairingCache

TEST(ShardedPairingCache, MatchesDirectPairingAndSingleThreadedCache) {
  WireFixture f;
  ShardedPairingCache sharded(4);
  cls::PairingCache reference;
  for (const std::string id : {"alice", "bob", "carol"}) {
    EXPECT_EQ(sharded.get(f.kgc.params(), id), reference.get(f.kgc.params(), id)) << id;
  }
  EXPECT_EQ(sharded.size(), 3u);
}

TEST(ShardedPairingCache, WarmMatchesLazyAndSkipsDuplicates) {
  WireFixture f;
  ShardedPairingCache warmed(4);
  (void)warmed.get(f.kgc.params(), "alice");
  const std::vector<std::string> ids = {"alice", "bob", "bob", "carol"};
  warmed.warm(f.kgc.params(), ids);
  EXPECT_EQ(warmed.size(), 3u);
  ShardedPairingCache lazy(4);
  for (const auto& id : ids) {
    EXPECT_EQ(warmed.get(f.kgc.params(), id), lazy.get(f.kgc.params(), id)) << id;
  }
}

TEST(ShardedPairingCache, ConcurrentGetAndWarmAgree) {
  WireFixture f;
  ShardedPairingCache cache(4);
  const std::vector<std::string> ids = {"n0", "n1", "n2", "n3", "n4", "n5"};
  std::vector<pairing::Gt> expected;
  for (const auto& id : ids) {
    expected.push_back(pairing::pair(f.kgc.params().p_pub, cls::hash_id(id)));
  }
  std::atomic<int> mismatches{0};
  {
    std::vector<std::jthread> threads;
    threads.emplace_back([&] { cache.warm(f.kgc.params(), ids); });
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t i = 0; i < ids.size(); ++i) {
          const std::size_t k = (i + static_cast<std::size_t>(t)) % ids.size();
          if (!(cache.get(f.kgc.params(), ids[k]) == expected[k])) ++mismatches;
        }
      });
    }
  }
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cache.size(), ids.size());
}

// ---------------------------------------------------------- VerifyService

// Collects responses and lets the test block until all of them arrived.
struct ResponseSink {
  std::mutex mutex;
  std::condition_variable cv;
  std::map<std::uint64_t, Status> statuses;
  std::size_t count = 0;

  VerifyService::Completion completion() {
    return [this](const VerifyResponse& response) {
      std::lock_guard lock(mutex);
      statuses[response.request_id] = response.status;
      ++count;
      cv.notify_all();
    };
  }

  bool wait_for(std::size_t n, std::chrono::seconds timeout = std::chrono::seconds(60)) {
    std::unique_lock lock(mutex);
    return cv.wait_for(lock, timeout, [&] { return count >= n; });
  }
};

struct ServiceFixture {
  crypto::HmacDrbg rng{std::uint64_t{0x5EC7E57}};
  cls::Kgc kgc = cls::Kgc::setup(rng);
  cls::Mccls scheme;

  VerifyRequest make_request(const cls::UserKeys& signer, std::string_view text,
                             std::uint64_t request_id) {
    const auto msg = crypto::as_bytes(text);
    return VerifyRequest{.request_id = request_id,
                         .scheme = "McCLS",
                         .id = signer.id,
                         .public_key = signer.public_key,
                         .message = crypto::Bytes(msg.begin(), msg.end()),
                         .signature = scheme.sign(kgc.params(), signer, msg, rng)};
  }
};

TEST(VerifyService, ConcurrentVerdictsMatchSingleThreadedVerify) {
  ServiceFixture f;
  std::vector<cls::UserKeys> signers;
  for (int s = 0; s < 3; ++s) {
    signers.push_back(f.scheme.enroll(f.kgc, "node-" + std::to_string(s), f.rng));
  }

  // Mixed corpus: valid, tampered-message, tampered-V, wrong-id, truncated.
  std::vector<VerifyRequest> requests;
  std::uint64_t next_id = 1;
  for (int s = 0; s < 3; ++s) {
    for (int m = 0; m < 4; ++m) {
      requests.push_back(
          f.make_request(signers[s], "msg-" + std::to_string(s * 4 + m), next_id++));
    }
  }
  requests.push_back(f.make_request(signers[0], "tamper-me", next_id++));
  requests.back().message.push_back(0xFF);
  requests.push_back(f.make_request(signers[1], "tamper-v", next_id++));
  requests.back().signature[0] ^= 0x01;
  requests.push_back(f.make_request(signers[2], "wrong-id", next_id++));
  requests.back().id = "impostor";
  requests.push_back(f.make_request(signers[0], "truncate", next_id++));
  requests.back().signature.pop_back();

  // Ground truth from the single-threaded path.
  std::map<std::uint64_t, bool> expected;
  for (const auto& request : requests) {
    expected[request.request_id] =
        f.scheme.verify(f.kgc.params(), request.id, request.public_key, request.message,
                        request.signature);
  }

  ResponseSink sink;
  {
    VerifyService service(f.kgc.params(),
                          ServiceConfig{.workers = 2, .queue_capacity = 64});
    // 4 producers interleave submissions of disjoint request slices.
    std::vector<std::jthread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&, p] {
        for (std::size_t i = static_cast<std::size_t>(p); i < requests.size(); i += 4) {
          // Exercise both entry points. (EXPECT, not ASSERT: gtest fatal
          // assertions may only abort the main thread.)
          if (i % 2 == 0) {
            EXPECT_TRUE(service.submit(requests[i], sink.completion()));
          } else {
            EXPECT_TRUE(service.submit_bytes(encode_request(requests[i]), sink.completion()));
          }
        }
      });
    }
    producers.clear();  // join producers
    ASSERT_TRUE(sink.wait_for(requests.size()));
  }

  ASSERT_EQ(sink.statuses.size(), requests.size()) << "every request answered exactly once";
  for (const auto& [request_id, verdict] : expected) {
    const Status got = sink.statuses.at(request_id);
    EXPECT_EQ(got, verdict ? Status::kVerified : Status::kRejected)
        << "request " << request_id;
  }
}

TEST(VerifyService, MixedValidityBatchFallsBackToIndividualVerdicts) {
  ServiceFixture f;
  const cls::UserKeys alice = f.scheme.enroll(f.kgc, "alice", f.rng);
  std::vector<VerifyRequest> requests;
  for (int m = 0; m < 5; ++m) {
    requests.push_back(f.make_request(alice, "batch-" + std::to_string(m), 100 + m));
  }
  // Tamper V on one member: same signer-static S, so it coalesces into the
  // batch, the batch fails, and the fallback must isolate it.
  requests[3].signature[0] ^= 0x01;
  const bool tampered_valid =
      f.scheme.verify(f.kgc.params(), "alice", alice.public_key, requests[3].message,
                      requests[3].signature);
  ASSERT_FALSE(tampered_valid);

  ResponseSink sink;
  {
    VerifyService service(f.kgc.params(),
                          ServiceConfig{.workers = 1, .queue_capacity = 16});
    for (auto& request : requests) service.submit(request, sink.completion());
    ASSERT_TRUE(sink.wait_for(requests.size()));
  }
  for (int m = 0; m < 5; ++m) {
    EXPECT_EQ(sink.statuses.at(100 + static_cast<std::uint64_t>(m)),
              m == 3 ? Status::kRejected : Status::kVerified);
  }
}

TEST(VerifyService, DifferingSComponentsSplitGroupsAndStillVerifyCorrectly) {
  ServiceFixture f;
  const cls::UserKeys alice = f.scheme.enroll(f.kgc, "alice", f.rng);
  std::vector<VerifyRequest> requests;
  for (int m = 0; m < 4; ++m) {
    requests.push_back(f.make_request(alice, "s-split-" + std::to_string(m), 200 + m));
  }
  // Replace one S with a different point (2·S): the coalescer must key it
  // into its own group (batch_verify's same-S precondition) and the single
  // path must reject it.
  auto sig = cls::McclsSignature::from_bytes(requests[1].signature);
  ASSERT_TRUE(sig.has_value());
  sig->s = sig->s + sig->s;
  requests[1].signature = sig->to_bytes();

  ResponseSink sink;
  {
    VerifyService service(f.kgc.params(),
                          ServiceConfig{.workers = 1, .queue_capacity = 16});
    for (auto& request : requests) service.submit(request, sink.completion());
    ASSERT_TRUE(sink.wait_for(requests.size()));
  }
  for (int m = 0; m < 4; ++m) {
    EXPECT_EQ(sink.statuses.at(200 + static_cast<std::uint64_t>(m)),
              m == 1 ? Status::kRejected : Status::kVerified);
  }
}

TEST(VerifyService, BackpressureRespondsBusyAndNeverBlocks) {
  ServiceFixture f;
  const cls::UserKeys alice = f.scheme.enroll(f.kgc, "alice", f.rng);
  const VerifyRequest base = f.make_request(alice, "pressure", 0);

  ResponseSink sink;
  std::size_t accepted = 0;
  {
    VerifyService service(f.kgc.params(),
                          ServiceConfig{.workers = 1, .queue_capacity = 2});
    constexpr std::size_t kOffered = 40;
    for (std::size_t i = 0; i < kOffered; ++i) {
      VerifyRequest request = base;
      request.request_id = 1000 + i;
      if (service.submit(std::move(request), sink.completion())) ++accepted;
    }
    ASSERT_TRUE(sink.wait_for(kOffered)) << "every request must be answered";

    const auto snapshot = service.metrics().snapshot();
    EXPECT_EQ(snapshot.submitted, kOffered);
    EXPECT_EQ(snapshot.busy, kOffered - accepted);
    EXPECT_EQ(snapshot.verified + snapshot.rejected, accepted);
    EXPECT_GT(snapshot.busy, 0u) << "capacity 2 with instant submission must shed load";
    EXPECT_LE(snapshot.queue_depth_peak, 2u);
  }
  std::size_t busy_responses = 0;
  for (const auto& [id, status] : sink.statuses) {
    if (status == Status::kBusy) ++busy_responses;
  }
  EXPECT_EQ(busy_responses, 40 - accepted);
}

TEST(VerifyService, MalformedFramesAndUnknownSchemesAnswerMalformed) {
  ServiceFixture f;
  ResponseSink sink;
  VerifyService service(f.kgc.params(), ServiceConfig{.workers = 1});

  EXPECT_FALSE(service.submit_bytes(crypto::as_bytes("not a frame"), sink.completion()));
  VerifyRequest bogus;
  bogus.request_id = 5;
  bogus.scheme = "RSA";
  EXPECT_FALSE(service.submit(bogus, sink.completion()));
  ASSERT_TRUE(sink.wait_for(2));
  EXPECT_EQ(sink.statuses.at(0), Status::kMalformed);
  EXPECT_EQ(sink.statuses.at(5), Status::kMalformed);
  EXPECT_EQ(service.metrics().snapshot().malformed, 2u);
}

TEST(VerifyService, CoalescerAmortizesPairingsAndCountsBatches) {
  ServiceFixture f;
  const cls::UserKeys alice = f.scheme.enroll(f.kgc, "alice", f.rng);
  std::vector<VerifyRequest> requests;
  for (int m = 0; m < 8; ++m) {
    requests.push_back(f.make_request(alice, "amortize-" + std::to_string(m), 300 + m));
  }
  ResponseSink sink;
  ServiceMetrics::Snapshot snapshot;
  {
    VerifyService service(f.kgc.params(),
                          ServiceConfig{.workers = 1, .queue_capacity = 16});
    for (auto& request : requests) service.submit(request, sink.completion());
    ASSERT_TRUE(sink.wait_for(requests.size()));
    snapshot = service.metrics().snapshot();
  }
  EXPECT_EQ(snapshot.verified, 8u);
  // Every signature went through either a batch or a single verification —
  // exact split depends on drain timing, which is scheduler-dependent.
  EXPECT_EQ(snapshot.batched_signatures + snapshot.single_verifies, 8u);
  EXPECT_EQ(snapshot.submitted, 8u);
}

TEST(VerifyService, NonMcclsSchemesTakeTheSinglePath) {
  ServiceFixture f;
  const auto yhg = cls::make_scheme("YHG");
  ASSERT_NE(yhg, nullptr);
  crypto::HmacDrbg rng(std::uint64_t{0x7465});
  const cls::UserKeys dana = yhg->enroll(f.kgc, "dana", rng);
  const auto msg = crypto::as_bytes("yhg message");
  std::vector<VerifyRequest> requests;
  for (int m = 0; m < 2; ++m) {
    requests.push_back(
        VerifyRequest{.request_id = static_cast<std::uint64_t>(400 + m),
                      .scheme = "YHG",
                      .id = "dana",
                      .public_key = dana.public_key,
                      .message = crypto::Bytes(msg.begin(), msg.end()),
                      .signature = yhg->sign(f.kgc.params(), dana, msg, rng)});
  }
  ResponseSink sink;
  ServiceMetrics::Snapshot snapshot;
  {
    VerifyService service(f.kgc.params(), ServiceConfig{.workers = 1});
    for (auto& request : requests) service.submit(request, sink.completion());
    ASSERT_TRUE(sink.wait_for(requests.size()));
    snapshot = service.metrics().snapshot();
  }
  EXPECT_EQ(snapshot.verified, 2u);
  EXPECT_EQ(snapshot.batches, 0u) << "only McCLS coalesces";
  EXPECT_EQ(snapshot.single_verifies, 2u);
}

TEST(VerifyService, ShutdownDrainsBacklogBeforeJoining) {
  ServiceFixture f;
  const cls::UserKeys alice = f.scheme.enroll(f.kgc, "alice", f.rng);
  ResponseSink sink;
  constexpr std::size_t kCount = 6;
  {
    VerifyService service(f.kgc.params(),
                          ServiceConfig{.workers = 2, .queue_capacity = 16});
    for (std::size_t i = 0; i < kCount; ++i) {
      VerifyRequest request = f.make_request(alice, "drain", 500 + i);
      service.submit(std::move(request), sink.completion());
    }
    service.shutdown();  // must complete every accepted request first
    EXPECT_EQ(sink.count, kCount);
    // After shutdown, admission is closed: new requests answer kBusy.
    VerifyRequest late = f.make_request(alice, "late", 999);
    EXPECT_FALSE(service.submit(std::move(late), sink.completion()));
    EXPECT_EQ(sink.statuses.at(999), Status::kBusy);
  }
}

// -------------------------------------------------------- ServiceMetrics

TEST(ServiceMetrics, HistogramsAndPercentiles) {
  ServiceMetrics metrics;
  metrics.on_batch(1);
  metrics.on_batch(4);
  metrics.on_batch(5);    // bucket log2(5) = 2 (sizes 4..7)
  metrics.on_batch(300);  // clamped into the top bucket (256+)
  const auto after_batches = metrics.snapshot();
  EXPECT_EQ(after_batches.batches, 4u);
  EXPECT_EQ(after_batches.batched_signatures, 310u);
  EXPECT_EQ(after_batches.batch_hist[0], 1u);
  EXPECT_EQ(after_batches.batch_hist[2], 2u);
  EXPECT_EQ(after_batches.batch_hist[ServiceMetrics::kBatchBuckets - 1], 1u);
  EXPECT_DOUBLE_EQ(after_batches.mean_batch_size(), 77.5);

  // 90 fast completions and 10 slow ones: p50 in the fast bucket, p99 well
  // above it.
  for (int i = 0; i < 90; ++i) metrics.on_latency_ns(1000);
  for (int i = 0; i < 10; ++i) metrics.on_latency_ns(1u << 20);
  const auto snapshot = metrics.snapshot();
  EXPECT_GT(snapshot.latency_p50_ns, 0);
  EXPECT_LT(snapshot.latency_p50_ns, 3000);
  EXPECT_GT(snapshot.latency_p99_ns, snapshot.latency_p50_ns);

  const std::string json = metrics.to_json("unit");
  EXPECT_NE(json.find("\"bench\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("latency_p50"), std::string::npos);
  EXPECT_NE(json.find("\"mean_batch_size\": 77.5"), std::string::npos);
}

}  // namespace
}  // namespace mccls::svc
