// Tier-1 runner for the registered scheme-layer properties: sign/verify
// round-trips with inline tampering, batch-vs-single differential oracle,
// verifyd verdict parity across all four schemes, and cross-scheme
// rejection. One gtest case per property.
#include <gtest/gtest.h>

#include "qa/property.hpp"

namespace mccls::qa {
namespace {

class QaSchemeProperty : public ::testing::TestWithParam<const Property*> {};

TEST_P(QaSchemeProperty, Holds) {
  const Outcome out = GetParam()->run(RunConfig::from_env());
  EXPECT_TRUE(out.ok) << out.message();
  EXPECT_GT(out.iterations_run, 0);
}

INSTANTIATE_TEST_SUITE_P(Scheme, QaSchemeProperty,
                         ::testing::ValuesIn(properties_in_layer("scheme")),
                         [](const ::testing::TestParamInfo<const Property*>& info) {
                           return info.param->name;
                         });

}  // namespace
}  // namespace mccls::qa
