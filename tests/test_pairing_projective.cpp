// The projective (Jacobian, inversion-free) Miller loop is an optimization
// of the affine reference implementation — they must agree everywhere,
// including on degenerate non-subgroup inputs that exercise the vertical
// line branches. Also covers the batched-inversion primitive the loop's
// surrounding machinery (G1 tables, batch verify, cache warm-up) relies on.
#include <gtest/gtest.h>

#include <vector>

#include "math/batch_inv.hpp"
#include "pairing/pairing.hpp"

namespace mccls::pairing {
namespace {

using ec::G1;
using math::Fp;
using math::Fp2;
using math::Fq;
using math::U256;

// Deterministic pseudo-random scalars (splitmix64 limbs) reduced mod q; no
// dependency on mccls_crypto so the sanitized tier-1 build stays minimal.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

U256 random_scalar(std::uint64_t& state) {
  U256 r{{splitmix64(state), splitmix64(state), splitmix64(state), splitmix64(state)}};
  while (cmp(r, Fq::modulus()) >= 0) sub(r, r, Fq::modulus());
  return r;
}

// A point of order 4 on the full curve (#E = 4q): W·q for a random curve
// point W has order dividing 4. Its Miller loop repeatedly walks through
// infinity, the 2-torsion point and −P, hitting every degenerate branch.
G1 order_four_point() {
  std::uint64_t state = 0xdecafbadULL;
  for (;;) {
    const Fp x = Fp::from_u256(random_scalar(state));
    const auto lifted = G1::lift_x(x);
    if (!lifted) continue;
    const G1 w = lifted->mul(Fq::modulus());  // order divides 4 now
    if (w.is_infinity()) continue;
    if (w.y().is_zero()) continue;  // order 2; keep looking for order 4
    return w;
  }
}

TEST(PairingProjective, MatchesAffineOnGenerator) {
  const G1& g = G1::generator();
  EXPECT_EQ(pair(g, g), pair_affine(g, g));
  EXPECT_FALSE(pair(g, g).is_one());
}

TEST(PairingProjective, MatchesAffineOnRandomPairs) {
  // ≥100 random (aG, bG) pairs; the two implementations must agree exactly.
  const G1& g = G1::generator();
  std::uint64_t state = 42;
  for (int i = 0; i < 100; ++i) {
    const G1 p = g.mul(random_scalar(state));
    const G1 q = g.mul(random_scalar(state));
    ASSERT_EQ(pair(p, q), pair_affine(p, q)) << "pair " << i;
  }
}

TEST(PairingProjective, BilinearOverRandomScalars) {
  const G1& g = G1::generator();
  std::uint64_t state = 7;
  for (int i = 0; i < 20; ++i) {
    const U256 a = random_scalar(state);
    const U256 b = random_scalar(state);
    const Fq ab = Fq::from_u256(a) * Fq::from_u256(b);
    ASSERT_EQ(pair(g.mul(a), g.mul(b)), pair(g, g).pow(ab.to_u256())) << "pair " << i;
  }
}

TEST(PairingProjective, InfinityInputs) {
  const G1& g = G1::generator();
  EXPECT_TRUE(pair(G1::infinity(), g).is_one());
  EXPECT_TRUE(pair(g, G1::infinity()).is_one());
  EXPECT_TRUE(pair(G1::infinity(), G1::infinity()).is_one());
}

TEST(PairingProjective, TwoTorsionFirstArgument) {
  // (0, 0) is 2-torsion: the first doubling has a vertical tangent and the
  // loop then oscillates T between infinity and P, exercising the T == −P
  // (here T == P == −P) vertical-chord branch on every set order bit.
  const auto t2 = G1::from_affine(Fp::zero(), Fp::zero());
  ASSERT_TRUE(t2.has_value());
  const G1& g = G1::generator();
  EXPECT_EQ(pair(*t2, g), pair_affine(*t2, g));
  EXPECT_EQ(pair(g, *t2), pair_affine(g, *t2));
}

TEST(PairingProjective, OrderFourPointHitsVerticalChordBranch) {
  // T walks P → 2P (y = 0, vertical tangent) → ∞ → P → ... and on
  // consecutive set bits reaches 3P = −P, the vertical-chord case with
  // distinct y coordinates. Both implementations must take the same
  // branches and produce the same value.
  const G1 p4 = order_four_point();
  ASSERT_TRUE(p4.is_on_curve());
  ASSERT_FALSE(p4.in_subgroup());
  ASSERT_TRUE(p4.dbl().dbl().is_infinity()) << "order must divide 4";
  const G1& g = G1::generator();
  EXPECT_EQ(pair(p4, g), pair_affine(p4, g));
  EXPECT_EQ(pair(g, p4), pair_affine(g, p4));
  EXPECT_EQ(pair(p4, p4), pair_affine(p4, p4));
}

TEST(PairingProjective, MillerLoopPlusFinalExpEqualsPair) {
  const G1& g = G1::generator();
  const G1 p = g.mul(U256::from_u64(1234567));
  const G1 q = g.mul(U256::from_u64(7654321));
  EXPECT_EQ(final_exponentiation(miller_loop(p, q)), pair(p, q));
}

TEST(PairingProjective, BatchedFinalExponentiationMatchesScalar) {
  const G1& g = G1::generator();
  std::uint64_t state = 99;
  std::vector<Fp2> fs;
  std::vector<Gt> expected;
  for (int i = 0; i < 8; ++i) {
    const G1 p = g.mul(random_scalar(state));
    const G1 q = g.mul(random_scalar(state));
    fs.push_back(miller_loop(p, q));
    expected.push_back(pair(p, q));
  }
  fs.push_back(Fp2::zero());  // degenerate entry maps to the identity
  const std::vector<Gt> got = final_exponentiation_batch(fs);
  ASSERT_EQ(got.size(), fs.size());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(got[i], expected[i]) << "entry " << i;
  EXPECT_TRUE(got.back().is_one());
}

// --- batched inversion -----------------------------------------------------

TEST(BatchInvert, EmptySpanIsNoop) {
  std::vector<Fp> xs;
  EXPECT_NO_THROW(math::batch_invert(xs));
  EXPECT_TRUE(xs.empty());
}

TEST(BatchInvert, SingleElement) {
  std::vector<Fp> xs = {Fp::from_u64(7)};
  math::batch_invert(xs);
  EXPECT_EQ(xs[0], Fp::from_u64(7).inv());
}

TEST(BatchInvert, ManyElementsMatchScalarInverse) {
  std::uint64_t state = 5;
  std::vector<Fp> xs;
  for (int i = 0; i < 33; ++i) xs.push_back(Fp::from_u256(random_scalar(state)));
  const std::vector<Fp> orig = xs;
  math::batch_invert(xs);
  for (int i = 0; i < 33; ++i) {
    EXPECT_EQ(xs[i], orig[i].inv()) << "element " << i;
    EXPECT_EQ(xs[i] * orig[i], Fp::one());
  }
}

TEST(BatchInvert, ZeroElementRejected) {
  std::vector<Fp> xs = {Fp::from_u64(3), Fp::zero(), Fp::from_u64(5)};
  const std::vector<Fp> orig = xs;
  EXPECT_THROW(math::batch_invert(xs), std::invalid_argument);
  EXPECT_EQ(xs, orig) << "failed batch must leave inputs untouched";
}

TEST(BatchInvert, WorksOverFq) {
  std::vector<Fq> xs = {Fq::from_u64(2), Fq::from_u64(3), Fq::from_u64(12345)};
  const std::vector<Fq> orig = xs;
  math::batch_invert(xs);
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_EQ(xs[i] * orig[i], Fq::one());
}

TEST(BatchInvert, WorksOverFp2) {
  std::uint64_t state = 11;
  std::vector<Fp2> xs;
  for (int i = 0; i < 9; ++i) {
    xs.emplace_back(Fp::from_u256(random_scalar(state)), Fp::from_u256(random_scalar(state)));
  }
  const std::vector<Fp2> orig = xs;
  math::batch_invert(xs);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(xs[i] * orig[i], Fp2::one()) << "element " << i;
}

}  // namespace
}  // namespace mccls::pairing
