// The replication layer end-to-end: a follower bootstrapping from an empty
// directory via kReplicate answers bit-identical keys; bootstrap pages
// snapshot chunks when the primary compacted the tail away; live tailing
// picks up post-sync mutations; a restarted replica resumes from its durable
// sequence instead of re-bootstrapping; mutating ops at a replica answer
// kReadOnly; the same flows over real loopback TCP through netd; and
// svc::ReplicaSetResolver fails over from a faulted primary to a follower
// without ever laundering the outage into a trust verdict.
#include "kgc/replica.hpp"

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cls/mccls.hpp"
#include "kgc/kgcd.hpp"
#include "netd/client.hpp"
#include "netd/front.hpp"
#include "netd/server.hpp"
#include "svc/resolver.hpp"

namespace mccls::kgc {
namespace {

namespace fs = std::filesystem;
using crypto::Bytes;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("replica_" + name);
  fs::remove_all(dir);
  return dir.string();
}

/// Primary kgcd with a handful of enrolled signers (distinct real keys, so
/// "bit-identical" is a meaningful comparison, not all-equal by accident).
struct ReplicaFixture {
  crypto::HmacDrbg rng{std::uint64_t{0x5EED0F5E7}};
  cls::Kgc kgc = cls::Kgc::setup(rng);
  cls::Mccls scheme;
  std::unique_ptr<Kgcd> daemon;
  std::vector<std::string> ids;

  explicit ReplicaFixture(const std::string& dir_name, std::size_t identities = 5,
                          std::size_t shards = 4) {
    daemon = std::make_unique<Kgcd>(
        kgc.master_key_for_tests(),
        KgcdConfig{.data_dir = fresh_dir(dir_name), .shards = shards, .fsync = false});
    for (std::size_t i = 0; i < identities; ++i) {
      const std::string id = "node-" + std::to_string(i);
      const cls::PublicKey pk = scheme.derive_public(kgc.params(), rng.next_nonzero_fq());
      EXPECT_EQ(daemon->enroll(id, pk.to_bytes()).status, KgcStatus::kOk);
      ids.push_back(id);
    }
  }

  Transport loopback() {
    return [this](const Bytes& request) -> std::optional<Bytes> {
      return daemon->handle_frame(request);
    };
  }

  ReplicaConfig replica_config(const std::string& dir_name, std::size_t batch_limit = 256) {
    return ReplicaConfig{.data_dir = fresh_dir(dir_name),
                         .shards = daemon->store().shards(),
                         .fsync = false,
                         .batch_limit = batch_limit};
  }
};

/// kLookup through any frame handler; returns (status, payload bytes).
template <typename Handler>
std::pair<KgcStatus, Bytes> lookup_via(Handler&& handler, const std::string& id,
                                       std::uint64_t request_id = 7) {
  const Bytes frame = encode_kgc_request(
      KgcRequest{.op = KgcOp::kLookup, .request_id = request_id, .id = id});
  const auto response = decode_kgc_response(handler(frame));
  if (!response) return {KgcStatus::kMalformed, {}};
  return {response->status, response->payload};
}

/// Every identity the primary resolves, the replica must resolve to the
/// exact same bytes (and unknown/revoked identities must agree too).
void expect_bit_identical(ReplicaFixture& f, Replica& replica) {
  auto via_primary = [&](std::span<const std::uint8_t> frame) {
    return f.daemon->handle_frame(frame);
  };
  auto via_replica = [&](std::span<const std::uint8_t> frame) {
    return replica.handle_frame(frame);
  };
  for (const std::string& id : f.ids) {
    const auto [p_status, p_payload] = lookup_via(via_primary, id);
    const auto [r_status, r_payload] = lookup_via(via_replica, id);
    EXPECT_EQ(r_status, p_status) << id;
    EXPECT_EQ(r_payload, p_payload) << id;
  }
  const auto [p_status, p_payload] = lookup_via(via_primary, "never-enrolled");
  const auto [r_status, r_payload] = lookup_via(via_replica, "never-enrolled");
  EXPECT_EQ(r_status, p_status);
  EXPECT_TRUE(r_payload.empty());
  for (std::size_t s = 0; s < f.daemon->store().shards(); ++s) {
    EXPECT_EQ(replica.next_seq(s), f.daemon->store().shard_sequence(s) + 1)
        << "shard " << s;
  }
}

// --------------------------------------------------------------- catch-up

TEST(Replica, BootstrapsFromAnEmptyDirectoryBitIdentically) {
  ReplicaFixture f("boot_primary");
  EXPECT_EQ(f.daemon->revoke(f.ids[1]), KgcStatus::kOk);  // revocations replicate too
  Replica replica(f.replica_config("boot_follower"), f.loopback());
  ASSERT_TRUE(replica.sync());
  expect_bit_identical(f, replica);
  EXPECT_GT(replica.metrics().snapshot().replica_records, 0u);
}

TEST(Replica, BootstrapPagesSnapshotChunksAfterPrimaryCompaction) {
  ReplicaFixture f("chunk_primary", 8);
  // Fold everything into per-shard snapshots: the records a fresh follower
  // wants are gone from the segments, so catch-up must go via chunks — and a
  // batch_limit of 1 forces the page loop to actually page.
  ASSERT_TRUE(f.daemon->snapshot().has_value());
  Replica replica(f.replica_config("chunk_follower", 1), f.loopback());
  ASSERT_TRUE(replica.sync());
  expect_bit_identical(f, replica);
  EXPECT_GT(replica.metrics().snapshot().replica_snapshot_entries, 0u);
}

TEST(Replica, TailsLiveMutationsAfterTheInitialSync) {
  ReplicaFixture f("tail_primary");
  Replica replica(f.replica_config("tail_follower"), f.loopback());
  ASSERT_TRUE(replica.sync());

  const cls::PublicKey pk = f.scheme.derive_public(f.kgc.params(), f.rng.next_nonzero_fq());
  ASSERT_EQ(f.daemon->enroll("late-joiner", pk.to_bytes()).status, KgcStatus::kOk);
  ASSERT_EQ(f.daemon->revoke(f.ids[0]), KgcStatus::kOk);
  f.ids.push_back("late-joiner");

  ASSERT_TRUE(replica.poll());
  expect_bit_identical(f, replica);
}

TEST(Replica, RestartResumesFromTheDurableSequenceAndKeepsTailing) {
  ReplicaFixture f("resume_primary");
  const std::string follower_dir = fresh_dir("resume_follower");
  ReplicaConfig config{.data_dir = follower_dir,
                       .shards = f.daemon->store().shards(),
                       .fsync = false};
  {
    Replica replica(config, f.loopback());
    ASSERT_TRUE(replica.sync());
  }
  // More history lands while the follower is down.
  const cls::PublicKey pk = f.scheme.derive_public(f.kgc.params(), f.rng.next_nonzero_fq());
  ASSERT_EQ(f.daemon->enroll("while-down", pk.to_bytes()).status, KgcStatus::kOk);
  f.ids.push_back("while-down");

  Replica rebooted(config, f.loopback());
  // Recovery alone restores everything synced before the restart...
  std::uint64_t already = 0;
  for (std::size_t s = 0; s < f.daemon->store().shards(); ++s) {
    already += rebooted.next_seq(s) - 1;
  }
  EXPECT_GT(already, 0u) << "restart must not begin from sequence zero";
  // ...and one poll fetches only the delta.
  ASSERT_TRUE(rebooted.poll());
  expect_bit_identical(f, rebooted);
  EXPECT_LT(rebooted.metrics().snapshot().replica_records, already)
      << "resume must transfer the missing suffix, not the whole history";
}

// ------------------------------------------------------------- wire guard

TEST(Replica, AnswersMutatingOpsReadOnlyAndMalformedFramesMalformed) {
  ReplicaFixture f("readonly_primary", 2);
  Replica replica(f.replica_config("readonly_follower"), f.loopback());
  ASSERT_TRUE(replica.sync());

  const Bytes pk_bytes =
      f.scheme.derive_public(f.kgc.params(), f.rng.next_nonzero_fq()).to_bytes();
  const KgcRequest mutators[] = {
      {.op = KgcOp::kEnroll, .request_id = 1, .id = "intruder", .pk_bytes = pk_bytes},
      {.op = KgcOp::kRevoke, .request_id = 2, .id = f.ids[0]},
      {.op = KgcOp::kSnapshot, .request_id = 3},
      {.op = KgcOp::kVouch, .request_id = 4, .id = f.ids[0]},
  };
  for (const KgcRequest& request : mutators) {
    const auto response = decode_kgc_response(replica.handle_frame(encode_kgc_request(request)));
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, KgcStatus::kReadOnly)
        << "op " << static_cast<int>(request.op);
    EXPECT_EQ(response->request_id, request.request_id);
  }
  // The refusals left the replica's state untouched.
  const auto [status, payload] =
      lookup_via([&](std::span<const std::uint8_t> fr) { return replica.handle_frame(fr); },
                 f.ids[0]);
  EXPECT_EQ(status, KgcStatus::kOk);
  EXPECT_FALSE(payload.empty());

  const Bytes garbage{0xde, 0xad, 0xbe, 0xef};
  const auto response = decode_kgc_response(replica.handle_frame(garbage));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, KgcStatus::kMalformed);
}

// ------------------------------------------------------------------- TCP

TEST(Replica, CatchesUpAndServesLookupsOverRealSockets) {
  ReplicaFixture f("tcp_primary");
  // Primary behind a netd front end.
  netd::KgcdFrontEnd primary_sink(*f.daemon);
  netd::NetServer primary_server(netd::NetdConfig{.tick_ms = 5}, &primary_sink);
  ASSERT_TRUE(primary_server.start()) << primary_server.error();

  netd::BlockingClient upstream;
  ASSERT_TRUE(upstream.connect("127.0.0.1", primary_server.port())) << upstream.error();
  Replica replica(f.replica_config("tcp_follower"),
                  [&upstream](const Bytes& request) { return upstream.call(request); });
  ASSERT_TRUE(replica.sync());
  expect_bit_identical(f, replica);

  // The replica itself behind a front end: reads served, writes refused.
  netd::KgcdFrontEnd replica_sink(replica);
  netd::NetServer replica_server(netd::NetdConfig{.tick_ms = 5}, &replica_sink);
  ASSERT_TRUE(replica_server.start()) << replica_server.error();
  netd::BlockingClient reader;
  ASSERT_TRUE(reader.connect("127.0.0.1", replica_server.port())) << reader.error();

  const auto lookup_reply = reader.call(encode_kgc_request(
      KgcRequest{.op = KgcOp::kLookup, .request_id = 11, .id = f.ids[0]}));
  ASSERT_TRUE(lookup_reply.has_value());
  const auto lookup = decode_kgc_response(*lookup_reply);
  ASSERT_TRUE(lookup.has_value());
  EXPECT_EQ(lookup->status, KgcStatus::kOk);
  EXPECT_EQ(lookup->payload, f.daemon->lookup(f.ids[0]).pk_bytes);

  const auto revoke_reply = reader.call(encode_kgc_request(
      KgcRequest{.op = KgcOp::kRevoke, .request_id = 12, .id = f.ids[0]}));
  ASSERT_TRUE(revoke_reply.has_value());
  const auto revoke = decode_kgc_response(*revoke_reply);
  ASSERT_TRUE(revoke.has_value());
  EXPECT_EQ(revoke->status, KgcStatus::kReadOnly);

  replica_server.stop();
  primary_server.stop();
}

// ------------------------------------------------------- replica-set routing

TEST(ReplicaSet, FailsOverFromAFaultedPrimaryToAFollower) {
  ReplicaFixture f("failover_primary");
  Replica follower(f.replica_config("failover_follower"), f.loopback());
  ASSERT_TRUE(follower.sync());

  // A primary whose every resolve fails transiently, and a healthy follower.
  svc::FaultInjectingResolver faulted(&f.daemon->directory(),
                                      svc::FaultConfig{.fail_rate = 1.0});
  svc::ResilientConfig config;
  config.max_attempts = 1;  // the set's failover is the retry policy here
  config.breaker_consecutive = 2;
  svc::ReplicaSetResolver set({&faulted, &follower.directory()}, config);
  svc::ServiceMetrics metrics;
  set.set_metrics(&metrics);

  // Definitive answers keep flowing through the follower...
  const svc::ResolveResult hit = set.resolve(f.ids[0]);
  EXPECT_TRUE(hit.has_key());
  EXPECT_GT(metrics.snapshot().resolve_failovers, 0u);
  // ...including definitive negatives: a kNotVouched from a follower is a
  // trust verdict, not an availability failure.
  EXPECT_EQ(set.resolve("never-enrolled").outcome, svc::ResolveOutcome::kNotVouched);

  // The primary's breaker trips (it alone absorbed the failures); the
  // follower's stays closed.
  EXPECT_EQ(set.breaker_state(0), svc::BreakerState::kOpen);
  EXPECT_EQ(set.breaker_state(1), svc::BreakerState::kClosed);
  // An open breaker means fast-fail, not an error surfaced to verifiers.
  EXPECT_TRUE(set.resolve(f.ids[1]).has_key());
}

TEST(ReplicaSet, SurfacesTransienceOnlyWhenEveryEndpointIsDown) {
  ReplicaFixture f("alldown_primary", 2);
  svc::FaultInjectingResolver faulted_a(&f.daemon->directory(),
                                        svc::FaultConfig{.fail_rate = 1.0});
  svc::FaultInjectingResolver faulted_b(&f.daemon->directory(),
                                        svc::FaultConfig{.fail_rate = 1.0});
  svc::ResilientConfig config;
  config.max_attempts = 1;
  svc::ReplicaSetResolver set({&faulted_a, &faulted_b}, config);
  const svc::ResolveResult result = set.resolve(f.ids[0]);
  EXPECT_TRUE(result.transient()) << "a full outage must stay transient, never a verdict";
}

}  // namespace
}  // namespace mccls::kgc
