// Properties of the scheme-facing random oracles H1 (into G1) and H2 (into Zq).
#include <gtest/gtest.h>

#include "crypto/encoding.hpp"
#include "crypto/hash.hpp"
#include "pairing/pairing.hpp"

namespace mccls::crypto {
namespace {

using ec::G1;
using math::Fq;

TEST(HashToFq, Deterministic) {
  EXPECT_EQ(hash_to_fq("tag", as_bytes("message")), hash_to_fq("tag", as_bytes("message")));
}

TEST(HashToFq, DomainSeparated) {
  EXPECT_NE(hash_to_fq("tag-a", as_bytes("message")), hash_to_fq("tag-b", as_bytes("message")));
}

TEST(HashToFq, MessageSensitive) {
  EXPECT_NE(hash_to_fq("tag", as_bytes("m1")), hash_to_fq("tag", as_bytes("m2")));
}

TEST(HashToFq, CanonicalRange) {
  for (int i = 0; i < 50; ++i) {
    ByteWriter w;
    w.put_u32(static_cast<std::uint32_t>(i));
    const auto v = hash_to_fq("range", w.bytes());
    EXPECT_LT(cmp(v.to_u256(), Fq::modulus()), 0);
  }
}

TEST(HashToG1, ProducesSubgroupPoints) {
  for (const char* id : {"alice@cps", "bob@cps", "vehicle-17", ""}) {
    const G1 p = hash_to_g1("H1", as_bytes(id));
    EXPECT_FALSE(p.is_infinity()) << id;
    EXPECT_TRUE(p.is_on_curve()) << id;
    EXPECT_TRUE(p.in_subgroup()) << id;
  }
}

TEST(HashToG1, Deterministic) {
  EXPECT_EQ(hash_to_g1("H1", as_bytes("alice")), hash_to_g1("H1", as_bytes("alice")));
}

TEST(HashToG1, InputSensitive) {
  EXPECT_NE(hash_to_g1("H1", as_bytes("alice")), hash_to_g1("H1", as_bytes("bob")));
  EXPECT_NE(hash_to_g1("H1", as_bytes("alice")), hash_to_g1("H2", as_bytes("alice")));
}

TEST(HashToG1, PairsNonDegenerately) {
  // The mapped point must pair non-trivially with the generator, otherwise
  // partial private keys D_ID = s·H1(ID) would be unverifiable.
  const G1 q = hash_to_g1("H1", as_bytes("node-07"));
  EXPECT_FALSE(pairing::pair(G1::generator(), q).is_one());
}

class HashToG1Sweep : public ::testing::TestWithParam<int> {};

TEST_P(HashToG1Sweep, AlwaysLandsInSubgroup) {
  ByteWriter w;
  w.put_u32(static_cast<std::uint32_t>(GetParam()));
  const G1 p = hash_to_g1("sweep", w.bytes());
  EXPECT_TRUE(p.in_subgroup());
  EXPECT_FALSE(p.is_infinity());
}

INSTANTIATE_TEST_SUITE_P(Sweep, HashToG1Sweep, ::testing::Range(0, 16));

}  // namespace
}  // namespace mccls::crypto
