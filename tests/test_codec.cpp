// Wire codec round-trips and hardening: every packet type, with and without
// auth extensions, plus rejection of malformed input.
#include "aodv/codec.hpp"

#include <gtest/gtest.h>

namespace mccls::aodv {
namespace {

AuthExt sample_auth(NodeId signer) {
  AuthExt a;
  a.signer = signer;
  a.public_key = crypto::Bytes(34, 0x5A);
  a.signature = crypto::Bytes(98, 0xA5);
  return a;
}

template <typename T>
T roundtrip(const T& msg) {
  const auto bytes = encode_packet(AodvPayload{msg});
  const auto decoded = decode_packet(bytes);
  EXPECT_TRUE(decoded.has_value());
  const T* out = std::get_if<T>(&decoded->msg);
  EXPECT_NE(out, nullptr);
  return *out;
}

TEST(Codec, RreqRoundTrip) {
  Rreq m{.rreq_id = 7,
         .origin = 1,
         .origin_seq = 42,
         .dest = 9,
         .dest_seq = 13,
         .unknown_dest_seq = false,
         .hop_count = 3,
         .ttl = 30};
  m.origin_auth = sample_auth(1);
  m.hop_auth = sample_auth(5);
  const Rreq out = roundtrip(m);
  EXPECT_EQ(out.rreq_id, m.rreq_id);
  EXPECT_EQ(out.origin, m.origin);
  EXPECT_EQ(out.origin_seq, m.origin_seq);
  EXPECT_EQ(out.dest, m.dest);
  EXPECT_EQ(out.dest_seq, m.dest_seq);
  EXPECT_EQ(out.unknown_dest_seq, m.unknown_dest_seq);
  EXPECT_EQ(out.hop_count, m.hop_count);
  EXPECT_EQ(out.ttl, m.ttl);
  ASSERT_TRUE(out.origin_auth.has_value());
  EXPECT_EQ(out.origin_auth->signer, 1u);
  EXPECT_EQ(out.origin_auth->signature, m.origin_auth->signature);
  ASSERT_TRUE(out.hop_auth.has_value());
  EXPECT_EQ(out.hop_auth->signer, 5u);
}

TEST(Codec, RreqWithoutAuth) {
  const Rreq out = roundtrip(Rreq{.rreq_id = 1, .origin = 2, .dest = 3});
  EXPECT_FALSE(out.origin_auth.has_value());
  EXPECT_FALSE(out.hop_auth.has_value());
}

TEST(Codec, RrepRoundTrip) {
  Rrep m{.origin = 4, .dest = 5, .dest_seq = 77, .replier = 6, .hop_count = 2,
         .lifetime = 6.5};
  m.origin_auth = sample_auth(6);
  const Rrep out = roundtrip(m);
  EXPECT_EQ(out.origin, m.origin);
  EXPECT_EQ(out.dest, m.dest);
  EXPECT_EQ(out.dest_seq, m.dest_seq);
  EXPECT_EQ(out.replier, m.replier);
  EXPECT_EQ(out.hop_count, m.hop_count);
  EXPECT_NEAR(out.lifetime, m.lifetime, 1e-6);
  EXPECT_TRUE(out.origin_auth.has_value());
  EXPECT_FALSE(out.hop_auth.has_value());
}

TEST(Codec, RerrRoundTrip) {
  Rerr m{.unreachable = {{1, 10}, {2, 20}, {3, 30}}};
  const Rerr out = roundtrip(m);
  EXPECT_EQ(out.unreachable, m.unreachable);
}

TEST(Codec, RerrEmptyListRoundTrips) {
  const Rerr out = roundtrip(Rerr{});
  EXPECT_TRUE(out.unreachable.empty());
}

TEST(Codec, HelloRoundTrip) {
  Hello m{.node = 17, .seq = 99};
  m.origin_auth = sample_auth(17);
  const Hello out = roundtrip(m);
  EXPECT_EQ(out.node, m.node);
  EXPECT_EQ(out.seq, m.seq);
  EXPECT_TRUE(out.origin_auth.has_value());
}

TEST(Codec, DataPacketRoundTrip) {
  DataPacket m{.src = 3, .dst = 8, .seq = 555, .sent_at = 123.456789,
               .payload_bytes = 512};
  const DataPacket out = roundtrip(m);
  EXPECT_EQ(out.src, m.src);
  EXPECT_EQ(out.dst, m.dst);
  EXPECT_EQ(out.seq, m.seq);
  EXPECT_NEAR(out.sent_at, m.sent_at, 1e-5);
  EXPECT_EQ(out.payload_bytes, m.payload_bytes);
}

TEST(Codec, RejectsEmptyAndUnknownTag) {
  EXPECT_FALSE(decode_packet({}).has_value());
  const crypto::Bytes unknown{0x7F, 0x00};
  EXPECT_FALSE(decode_packet(unknown).has_value());
}

TEST(Codec, RejectsTruncation) {
  const auto bytes = encode_packet(AodvPayload{Rreq{.rreq_id = 1}});
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix{bytes.data(), bytes.size() - cut};
    EXPECT_FALSE(decode_packet(prefix).has_value()) << "cut=" << cut;
  }
}

TEST(Codec, RejectsTrailingGarbage) {
  auto bytes = encode_packet(AodvPayload{Hello{.node = 1, .seq = 2}});
  bytes.push_back(0x00);
  EXPECT_FALSE(decode_packet(bytes).has_value());
}

TEST(Codec, RejectsAbsurdRerrCount) {
  crypto::ByteWriter w;
  w.put_u8(0x03);              // RERR tag
  w.put_u32(0xFFFFFFFF);       // claims 4 billion entries
  EXPECT_FALSE(decode_packet(w.bytes()).has_value());
}

TEST(Codec, RejectsBadAuthPresenceByte) {
  crypto::ByteWriter w;
  w.put_u8(0x04);  // Hello
  w.put_u32(1);
  w.put_u32(2);
  w.put_u8(0xCC);  // presence flag must be 0 or 1
  EXPECT_FALSE(decode_packet(w.bytes()).has_value());
}

TEST(Codec, DistinctTypesDistinctEncodings) {
  const auto a = encode_packet(AodvPayload{Rreq{}});
  const auto b = encode_packet(AodvPayload{Rrep{}});
  const auto c = encode_packet(AodvPayload{Hello{}});
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
}

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomBytesNeverCrash) {
  // Pseudo-random buffers must decode to nullopt or a valid packet, never UB.
  std::uint64_t x = GetParam() * 0x9e3779b97f4a7c15ULL + 1;
  auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return static_cast<std::uint8_t>(x);
  };
  for (int len = 0; len < 64; ++len) {
    crypto::Bytes buf(len);
    for (auto& b : buf) b = next();
    const auto decoded = decode_packet(buf);  // must not crash
    if (decoded.has_value()) {
      // Re-encoding a successfully decoded packet must round-trip.
      const auto re = encode_packet(*decoded);
      EXPECT_TRUE(decode_packet(re).has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CodecFuzz, ::testing::Range<std::uint64_t>(0, 16));

}  // namespace
}  // namespace mccls::aodv
