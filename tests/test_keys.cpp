// Setup / Extract-Partial-Private-Key / Generate-Key-Pair (paper §4) and the
// certificateless structural invariants that tie them together.
#include "cls/keys.hpp"

#include <gtest/gtest.h>

#include "cls/mccls.hpp"
#include "cls/registry.hpp"
#include "pairing/pairing.hpp"

namespace mccls::cls {
namespace {

using ec::G1;

TEST(SystemParams, PIsGeneratorCachedCheck) {
  crypto::HmacDrbg rng(std::uint64_t{7});
  const Kgc kgc = Kgc::setup(rng);
  EXPECT_TRUE(kgc.params().p_is_generator());
  EXPECT_TRUE(kgc.params().p_is_generator()) << "cached answer must be stable";

  const SystemParams off{.p = kgc.params().p_pub, .p_pub = kgc.params().p_pub};
  EXPECT_FALSE(off.p_is_generator());
  EXPECT_FALSE(off.p_is_generator());
}

TEST(Kgc, SetupProducesConsistentParams) {
  crypto::HmacDrbg rng(std::uint64_t{1});
  const Kgc kgc = Kgc::setup(rng);
  EXPECT_EQ(kgc.params().p, G1::generator());
  EXPECT_EQ(kgc.params().p_pub, G1::generator().mul(kgc.master_key_for_tests()));
  EXPECT_FALSE(kgc.params().p_pub.is_infinity());
}

TEST(Kgc, DistinctSeedsDistinctMasters) {
  crypto::HmacDrbg rng1(std::uint64_t{1});
  crypto::HmacDrbg rng2(std::uint64_t{2});
  EXPECT_NE(Kgc::setup(rng1).params().p_pub, Kgc::setup(rng2).params().p_pub);
}

TEST(Kgc, PartialKeyIsBoundToIdentity) {
  crypto::HmacDrbg rng(std::uint64_t{3});
  const Kgc kgc = Kgc::setup(rng);
  const G1 d_alice = kgc.extract_partial_key("alice");
  const G1 d_bob = kgc.extract_partial_key("bob");
  EXPECT_NE(d_alice, d_bob);
  EXPECT_EQ(d_alice, kgc.extract_partial_key("alice")) << "extraction is deterministic";
}

TEST(Kgc, PartialKeyVerifiesAgainstPpub) {
  // ê(P, D_ID) == ê(Ppub, Q_ID) — anyone can check a partial key's validity.
  crypto::HmacDrbg rng(std::uint64_t{4});
  const Kgc kgc = Kgc::setup(rng);
  const G1 d = kgc.extract_partial_key("node-1");
  EXPECT_EQ(pairing::pair(kgc.params().p, d),
            pairing::pair(kgc.params().p_pub, hash_id("node-1")));
}

TEST(Keys, KeygenEscrowFreedom) {
  // The KGC's master key cannot reconstruct the user's full signing key:
  // x is sampled locally and never leaves keygen.
  crypto::HmacDrbg rng(std::uint64_t{5});
  const Kgc kgc = Kgc::setup(rng);
  const Mccls scheme;
  const UserKeys u1 = scheme.enroll(kgc, "alice", rng);
  const UserKeys u2 = scheme.enroll(kgc, "alice", rng);
  // Re-enrolling the same identity yields a fresh secret and public key...
  EXPECT_NE(u1.secret.to_u256(), u2.secret.to_u256());
  EXPECT_NE(u1.public_key, u2.public_key);
  // ...but the identical KGC-issued partial key.
  EXPECT_EQ(u1.partial_key, u2.partial_key);
}

TEST(Keys, PublicKeyMatchesSecret) {
  crypto::HmacDrbg rng(std::uint64_t{6});
  const Kgc kgc = Kgc::setup(rng);
  const Mccls scheme;
  const UserKeys u = scheme.enroll(kgc, "carol", rng);
  EXPECT_EQ(u.public_key.primary(), kgc.params().p_pub.mul(u.secret));
}

TEST(PublicKey, SerializationRoundTripOnePoint) {
  crypto::HmacDrbg rng(std::uint64_t{7});
  const Kgc kgc = Kgc::setup(rng);
  const PublicKey pk{.points = {kgc.params().p_pub}};
  const auto back = PublicKey::from_bytes(pk.to_bytes());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, pk);
}

TEST(PublicKey, SerializationRoundTripTwoPoints) {
  const PublicKey pk{.points = {ec::G1::generator(), ec::G1::generator().dbl()}};
  const auto back = PublicKey::from_bytes(pk.to_bytes());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, pk);
}

TEST(PublicKey, RejectsMalformed) {
  EXPECT_FALSE(PublicKey::from_bytes(crypto::Bytes{}).has_value());
  EXPECT_FALSE(PublicKey::from_bytes(crypto::Bytes{0x00}).has_value());  // zero points
  EXPECT_FALSE(PublicKey::from_bytes(crypto::Bytes{0x03}).has_value());  // too many
  crypto::Bytes truncated{0x01, 0x02, 0x03};  // claims one point, too short
  EXPECT_FALSE(PublicKey::from_bytes(truncated).has_value());
  // Trailing garbage after a valid key.
  PublicKey pk{.points = {ec::G1::generator()}};
  auto bytes = pk.to_bytes();
  bytes.push_back(0x00);
  EXPECT_FALSE(PublicKey::from_bytes(bytes).has_value());
}

TEST(HashId, DistinctIdentitiesDistinctPoints) {
  EXPECT_NE(hash_id("alice"), hash_id("bob"));
  EXPECT_EQ(hash_id("alice"), hash_id("alice"));
  EXPECT_TRUE(hash_id("alice").in_subgroup());
}

class SchemeKeygen : public ::testing::TestWithParam<std::string_view> {};

TEST_P(SchemeKeygen, DerivedKeysHaveDocumentedLength) {
  crypto::HmacDrbg rng(std::uint64_t{8});
  const Kgc kgc = Kgc::setup(rng);
  const auto scheme = make_scheme(GetParam());
  ASSERT_NE(scheme, nullptr);
  const UserKeys u = scheme->enroll(kgc, "dave", rng);
  EXPECT_EQ(static_cast<int>(u.public_key.points.size()),
            scheme->costs().public_key_points);
  for (const auto& pt : u.public_key.points) {
    EXPECT_FALSE(pt.is_infinity());
    EXPECT_TRUE(pt.in_subgroup());
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeKeygen,
                         ::testing::Values("AP", "ZWXF", "YHG", "McCLS"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
}  // namespace mccls::cls
