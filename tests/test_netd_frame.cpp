// The length-prefixed frame layer: totality (every byte sequence either
// yields frames or a permanent poison verdict), arbitrary read splits, and
// the no-allocation-before-arrival property that makes slow-loris peers pay
// for their own bytes.
#include "netd/frame.hpp"

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <vector>

namespace mccls::netd {
namespace {

using crypto::Bytes;

Bytes payload_of(std::size_t n, std::uint8_t fill = 0xAB) {
  Bytes p(n, fill);
  for (std::size_t i = 0; i < n; ++i) p[i] ^= static_cast<std::uint8_t>(i);
  return p;
}

TEST(Frame, EncodeDecodeRoundTrip) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{1024}}) {
    const Bytes p = payload_of(n);
    const auto back = decode_frame(encode_frame(p));
    ASSERT_TRUE(back.has_value()) << n;
    EXPECT_EQ(*back, p);
  }
}

TEST(Frame, AppendFrameMatchesEncodeFrame) {
  const Bytes a = payload_of(7), b = payload_of(13, 0x3C);
  Bytes joined;
  append_frame(joined, a);
  append_frame(joined, b);
  Bytes expected = encode_frame(a);
  const Bytes eb = encode_frame(b);
  expected.insert(expected.end(), eb.begin(), eb.end());
  EXPECT_EQ(joined, expected);
}

TEST(Frame, OneShotRejectsEveryTruncationAndTrailingByte) {
  const Bytes good = encode_frame(payload_of(32));
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(decode_frame({good.data(), len}).has_value()) << "prefix " << len;
  }
  Bytes trailing = good;
  trailing.push_back(0x00);
  EXPECT_FALSE(decode_frame(trailing).has_value()) << "trailing garbage";
  // Two pipelined frames are NOT one frame in the one-shot form.
  Bytes two = good;
  two.insert(two.end(), good.begin(), good.end());
  EXPECT_FALSE(decode_frame(two).has_value());
}

TEST(Frame, OneShotRejectsZeroAndOverCapLengths) {
  EXPECT_FALSE(decode_frame(Bytes{0, 0, 0, 0}).has_value()) << "length zero";
  // Declared length just over the cap, with no payload behind it: must
  // reject from the prefix alone.
  const std::uint32_t over = static_cast<std::uint32_t>(kMaxFrameLen) + 1;
  const Bytes huge{static_cast<std::uint8_t>(over >> 24),
                   static_cast<std::uint8_t>(over >> 16),
                   static_cast<std::uint8_t>(over >> 8), static_cast<std::uint8_t>(over)};
  EXPECT_FALSE(decode_frame(huge).has_value());
  EXPECT_FALSE(decode_frame(Bytes{0xFF, 0xFF, 0xFF, 0xFF}).has_value());
  // At exactly the cap the frame is legal.
  const Bytes max_frame = encode_frame(payload_of(64));
  FrameDecoder capped(64);
  EXPECT_TRUE(capped.feed(max_frame));
  EXPECT_TRUE(capped.next().has_value());
}

TEST(Frame, StreamReassemblesAcrossEverySplitBoundary) {
  // Three frames of awkward sizes, fed in two chunks split at every byte
  // boundary: the same three payloads must pop out every time.
  const std::vector<Bytes> payloads = {payload_of(3), payload_of(17, 0x5A),
                                       payload_of(40, 0xC3)};
  Bytes stream;
  for (const auto& p : payloads) append_frame(stream, p);

  for (std::size_t split = 0; split <= stream.size(); ++split) {
    FrameDecoder decoder;
    ASSERT_TRUE(decoder.feed({stream.data(), split}));
    ASSERT_TRUE(decoder.feed({stream.data() + split, stream.size() - split}));
    for (const auto& expected : payloads) {
      const auto frame = decoder.next();
      ASSERT_TRUE(frame.has_value()) << "split " << split;
      EXPECT_EQ(*frame, expected) << "split " << split;
    }
    EXPECT_FALSE(decoder.next().has_value());
    EXPECT_EQ(decoder.buffered(), 0u);
    EXPECT_FALSE(decoder.poisoned());
  }
}

TEST(Frame, StreamReassemblesFedOneByteAtATime) {
  const Bytes p = payload_of(200, 0x77);
  Bytes stream;
  append_frame(stream, p);
  append_frame(stream, p);
  FrameDecoder decoder;
  std::size_t got = 0;
  for (const std::uint8_t byte : stream) {
    ASSERT_TRUE(decoder.feed({&byte, 1}));
    while (auto frame = decoder.next()) {
      EXPECT_EQ(*frame, p);
      ++got;
    }
  }
  EXPECT_EQ(got, 2u);
}

TEST(Frame, ZeroLengthPoisonsPermanently) {
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.feed(Bytes{0, 0, 0, 0}));
  EXPECT_TRUE(decoder.poisoned());
  // A good frame after the violation must not resurrect the stream.
  EXPECT_FALSE(decoder.feed(encode_frame(payload_of(4))));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.poisoned());
}

TEST(Frame, OverCapLengthPoisonsFromThePrefixAlone) {
  FrameDecoder decoder(1024);
  // 4 KiB declared, only the header sent: rejection must not wait for (or
  // allocate) the payload.
  EXPECT_FALSE(decoder.feed(Bytes{0x00, 0x00, 0x10, 0x00}));
  EXPECT_TRUE(decoder.poisoned());
}

TEST(Frame, PipelinedFramesBeforeAGarbageHeaderStillDeliver) {
  const Bytes a = payload_of(9), b = payload_of(21, 0x11);
  Bytes stream;
  append_frame(stream, a);
  append_frame(stream, b);
  stream.insert(stream.end(), {0x00, 0x00, 0x00, 0x00});  // then: length zero

  FrameDecoder decoder;
  // feed() validates only the first-in-line header (frame a's, legal); the
  // violation three frames deep surfaces as the frames ahead of it pop.
  EXPECT_TRUE(decoder.feed(stream));
  // The complete frames ahead of the violation deliver, THEN the poison is
  // reported — the connection dispatches real requests and only then closes.
  auto f1 = decoder.next();
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(*f1, a);
  auto f2 = decoder.next();
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(*f2, b);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.poisoned());
}

TEST(Frame, SlowLorisBuffersOnlyBytesActuallySent) {
  // A legal (under-cap) declared length with the payload dribbling in: the
  // decoder's buffered() tracks bytes received, never bytes declared — the
  // observable form of "no attacker-sized allocation".
  FrameDecoder decoder;
  const std::uint32_t declared = 1 << 20;  // 1 MiB declared, ~nothing sent
  const Bytes header{static_cast<std::uint8_t>(declared >> 24),
                     static_cast<std::uint8_t>(declared >> 16),
                     static_cast<std::uint8_t>(declared >> 8),
                     static_cast<std::uint8_t>(declared)};
  ASSERT_TRUE(decoder.feed(header));
  EXPECT_FALSE(decoder.next().has_value());
  std::size_t sent = header.size();
  for (int i = 0; i < 16; ++i) {
    const std::uint8_t dribble[1] = {0x42};
    ASSERT_TRUE(decoder.feed(dribble));
    ++sent;
    EXPECT_EQ(decoder.buffered(), sent);
    EXPECT_FALSE(decoder.next().has_value());
  }
}

TEST(Frame, PartialHeaderIsJustMoreInputNeeded) {
  FrameDecoder decoder;
  const Bytes framed = encode_frame(payload_of(6));
  ASSERT_TRUE(decoder.feed({framed.data(), 2}));  // half a length prefix
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.poisoned());
  ASSERT_TRUE(decoder.feed({framed.data() + 2, framed.size() - 2}));
  EXPECT_TRUE(decoder.next().has_value());
}

}  // namespace
}  // namespace mccls::netd
