#include "net/mobility.hpp"

#include <gtest/gtest.h>

namespace mccls::net {
namespace {

TEST(StaticMobility, HoldsPositions) {
  StaticMobility m({{0, 0}, {100, 50}});
  EXPECT_EQ(m.position(0, 0.0), (Vec2{0, 0}));
  EXPECT_EQ(m.position(1, 99.0), (Vec2{100, 50}));
  m.move(0, {5, 5});
  EXPECT_EQ(m.position(0, 100.0), (Vec2{5, 5}));
}

TEST(Vec2, Arithmetic) {
  const Vec2 a{3, 4};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_EQ(a + (Vec2{1, 1}), (Vec2{4, 5}));
  EXPECT_EQ(a - (Vec2{3, 4}), (Vec2{0, 0}));
  EXPECT_EQ(a * 2.0, (Vec2{6, 8}));
  EXPECT_DOUBLE_EQ(distance({0, 0}, {0, 7}), 7.0);
}

RandomWaypointMobility::Config cfg(double max_speed) {
  return {.width = 1500, .height = 300, .max_speed = max_speed, .min_speed = 0.1, .pause = 0};
}

TEST(RandomWaypoint, PositionsStayInField) {
  sim::Rng rng(1);
  RandomWaypointMobility m(20, cfg(20.0), rng);
  for (NodeId n = 0; n < 20; ++n) {
    for (double t = 0; t <= 300; t += 7.3) {
      const Vec2 p = m.position(n, t);
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 1500.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 300.0);
    }
  }
}

TEST(RandomWaypoint, SpeedNeverExceedsMax) {
  sim::Rng rng(2);
  const double vmax = 15.0;
  RandomWaypointMobility m(5, cfg(vmax), rng);
  const double dt = 0.5;
  for (NodeId n = 0; n < 5; ++n) {
    Vec2 prev = m.position(n, 0.0);
    for (double t = dt; t <= 120; t += dt) {
      const Vec2 cur = m.position(n, t);
      const double v = distance(prev, cur) / dt;
      EXPECT_LE(v, vmax + 1e-6) << "node " << n << " at t=" << t;
      prev = cur;
    }
  }
}

TEST(RandomWaypoint, ZeroMaxSpeedIsStatic) {
  sim::Rng rng(3);
  RandomWaypointMobility m(10, cfg(0.0), rng);
  for (NodeId n = 0; n < 10; ++n) {
    const Vec2 start = m.position(n, 0.0);
    EXPECT_EQ(m.position(n, 100.0), start);
    EXPECT_EQ(m.position(n, 1e6), start);
  }
}

TEST(RandomWaypoint, NodesActuallyMoveWhenSpeedPositive) {
  sim::Rng rng(4);
  RandomWaypointMobility m(10, cfg(10.0), rng);
  int moved = 0;
  for (NodeId n = 0; n < 10; ++n) {
    if (distance(m.position(n, 0.0), m.position(n, 60.0)) > 1.0) ++moved;
  }
  EXPECT_GE(moved, 8) << "almost all nodes should relocate within a minute";
}

TEST(RandomWaypoint, TrajectoryIsContinuous) {
  sim::Rng rng(5);
  RandomWaypointMobility m(3, cfg(20.0), rng);
  for (NodeId n = 0; n < 3; ++n) {
    Vec2 prev = m.position(n, 0.0);
    for (double t = 0.01; t <= 60; t += 0.01) {
      const Vec2 cur = m.position(n, t);
      EXPECT_LE(distance(prev, cur), 20.0 * 0.011 + 1e-9)
          << "teleport for node " << n << " at t=" << t;
      prev = cur;
    }
  }
}

TEST(RandomWaypoint, MonotoneQueriesAreConsistent) {
  // Query times strictly increase per the interface contract; repeated
  // queries at the same time must agree.
  sim::Rng rng(6);
  RandomWaypointMobility m(2, cfg(12.0), rng);
  const Vec2 a = m.position(0, 10.0);
  EXPECT_EQ(m.position(0, 10.0), a);
  const Vec2 b = m.position(0, 20.0);
  EXPECT_EQ(m.position(0, 20.0), b);
}

TEST(RandomWaypoint, DistinctNodesDistinctTrajectories) {
  sim::Rng rng(7);
  RandomWaypointMobility m(2, cfg(10.0), rng);
  bool differ = false;
  for (double t = 0; t <= 60 && !differ; t += 1.0) {
    differ = distance(m.position(0, t), m.position(1, t)) > 1.0;
  }
  EXPECT_TRUE(differ);
}

TEST(RandomWaypoint, PauseHoldsNodeAtWaypoint) {
  sim::Rng rng(8);
  RandomWaypointMobility::Config c = cfg(10.0);
  c.pause = 5.0;
  RandomWaypointMobility m(1, c, rng);
  // Sample densely; whenever a node sits still for >= pause duration the
  // pause is effective. We just assert no crash and field containment here,
  // plus at least one stationary window.
  Vec2 prev = m.position(0, 0.0);
  int still_streak = 0;
  int max_streak = 0;
  for (double t = 0.5; t <= 600; t += 0.5) {
    const Vec2 cur = m.position(0, t);
    if (distance(prev, cur) < 1e-9) {
      ++still_streak;
      max_streak = std::max(max_streak, still_streak);
    } else {
      still_streak = 0;
    }
    prev = cur;
  }
  EXPECT_GE(max_streak, 9) << "expected a ~5 s stationary window";
}

TEST(RandomWaypoint, RejectsBadConfig) {
  sim::Rng rng(9);
  auto bad = cfg(10.0);
  bad.width = -1;
  EXPECT_THROW(RandomWaypointMobility(1, bad, rng), std::invalid_argument);
}

}  // namespace
}  // namespace mccls::net
