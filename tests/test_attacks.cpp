// Black-hole and rushing attacks on controlled topologies, with and without
// the McCLS routing-authentication extension — the mechanism behind the
// paper's Figures 4 and 5.
#include <gtest/gtest.h>

#include <memory>

#include "aodv/agent.hpp"

namespace mccls::aodv {
namespace {

struct Net {
  explicit Net(const std::vector<net::Vec2>& positions, SecurityProvider* security = nullptr,
               std::vector<AttackType> roles = {}, AodvConfig cfg = {})
      : mobility(positions), channel(simulator, sim::Rng(7), mobility, net::PhyConfig{}) {
    roles.resize(positions.size(), AttackType::kNone);
    for (std::size_t i = 0; i < positions.size(); ++i) {
      if (security != nullptr && roles[i] == AttackType::kNone) {
        security->enroll(static_cast<NodeId>(i));
      }
      agents.push_back(std::make_unique<AodvAgent>(simulator, channel,
                                                   static_cast<NodeId>(i), cfg,
                                                   sim::Rng(100 + i), metrics, security,
                                                   roles[i]));
    }
  }

  void send_burst(NodeId src, NodeId dst, int count, double start = 1.0,
                  double interval = 0.5) {
    for (int i = 0; i < count; ++i) {
      simulator.schedule_at(start + i * interval,
                            [this, src, dst] { agents[src]->send_data(dst, 512); });
    }
  }

  sim::Simulator simulator;
  net::StaticMobility mobility;
  net::Channel channel;
  Metrics metrics;
  std::vector<std::unique_ptr<AodvAgent>> agents;
};

// Topology for black-hole: source 0, honest chain 0-1-2 to dest 2, and an
// attacker 3 adjacent to the source. The attacker's forged RREP (1 hop,
// huge seq) beats the genuine 2-hop route.
//
//    0 --- 1 --- 2 (dest)
//     `-- 3 (attacker)
std::vector<net::Vec2> blackhole_topology() {
  return {{0, 0}, {200, 0}, {400, 0}, {100, 150}};
}

TEST(BlackHole, AbsorbsTrafficInPlainAodv) {
  Net n(blackhole_topology(), nullptr, {AttackType::kNone, AttackType::kNone,
                                        AttackType::kNone, AttackType::kBlackHole});
  n.send_burst(0, 2, 20);
  n.simulator.run_until(30.0);
  EXPECT_EQ(n.metrics.data_sent, 20u);
  EXPECT_GT(n.metrics.attacker_dropped, 10u) << "the black hole attracted the flow";
  EXPECT_LT(n.metrics.data_delivered, 10u);
  EXPECT_GT(n.metrics.packet_drop_ratio(), 0.5);
}

TEST(BlackHole, ForgedRrepHasFresherSeqThanGenuine) {
  // Whitebox check of the attack mechanics: after discovery, node 0's route
  // to 2 points at the attacker (node 3).
  Net n(blackhole_topology(), nullptr, {AttackType::kNone, AttackType::kNone,
                                        AttackType::kNone, AttackType::kBlackHole});
  n.send_burst(0, 2, 1);
  n.simulator.run_until(5.0);
  const Route* route = n.agents[0]->table().find_active(2, n.simulator.now());
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->next_hop, 3u) << "route captured by the black hole";
}

TEST(BlackHole, McclsExtensionNeutralizesAttack) {
  ModeledClsSecurity security(5, 98, 34);
  Net n(blackhole_topology(), &security,
        {AttackType::kNone, AttackType::kNone, AttackType::kNone, AttackType::kBlackHole});
  n.send_burst(0, 2, 20);
  n.simulator.run_until(30.0);
  EXPECT_EQ(n.metrics.attacker_dropped, 0u) << "paper §6: drop ratio is zero under McCLS";
  EXPECT_GT(n.metrics.auth_rejected, 0u) << "forged RREPs rejected";
  EXPECT_GE(n.metrics.data_delivered, 18u) << "traffic flows over the honest chain";
}

TEST(BlackHole, McclsRouteUsesHonestRelay) {
  ModeledClsSecurity security(5, 98, 34);
  Net n(blackhole_topology(), &security,
        {AttackType::kNone, AttackType::kNone, AttackType::kNone, AttackType::kBlackHole});
  n.send_burst(0, 2, 5);
  // Inspect while the route is still fresh.
  NodeId captured_next_hop = 999;
  n.simulator.schedule_at(4.0, [&] {
    if (const Route* r = n.agents[0]->table().find_active(2, n.simulator.now())) {
      captured_next_hop = r->next_hop;
    }
  });
  n.simulator.run_until(10.0);
  EXPECT_EQ(captured_next_hop, 1u) << "route goes through the honest relay";
}

// Topology for rushing: source 0 and dest 3 connected by two parallel
// relays — honest 1 and attacker 2. Whoever forwards the RREQ first owns
// the path (duplicate suppression at the destination).
//
//        .-- 1 (honest) --.
//      0                    3 (dest)
//        .-- 2 (rusher) --.
std::vector<net::Vec2> rushing_topology() {
  return {{0, 0}, {200, 120}, {200, -120}, {400, 0}};
}

TEST(Rushing, WinsForwardingRaceInPlainAodv) {
  Net n(rushing_topology(), nullptr,
        {AttackType::kNone, AttackType::kNone, AttackType::kRushing, AttackType::kNone});
  n.send_burst(0, 3, 20);
  n.simulator.run_until(30.0);
  EXPECT_GT(n.metrics.attacker_dropped, 10u) << "rushed copies captured the reverse path";
  EXPECT_LT(n.metrics.data_delivered, 10u);
}

TEST(Rushing, ReversePathGoesThroughAttacker) {
  Net n(rushing_topology(), nullptr,
        {AttackType::kNone, AttackType::kNone, AttackType::kRushing, AttackType::kNone});
  n.send_burst(0, 3, 1);
  n.simulator.run_until(5.0);
  const Route* route = n.agents[0]->table().find_active(3, n.simulator.now());
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->next_hop, 2u) << "forward route runs through the rusher";
}

TEST(Rushing, McclsExtensionNeutralizesAttack) {
  ModeledClsSecurity security(5, 98, 34);
  Net n(rushing_topology(), &security,
        {AttackType::kNone, AttackType::kNone, AttackType::kRushing, AttackType::kNone});
  n.send_burst(0, 3, 20);
  n.simulator.run_until(30.0);
  EXPECT_EQ(n.metrics.attacker_dropped, 0u) << "paper §6: drop ratio is zero under McCLS";
  EXPECT_GT(n.metrics.auth_rejected, 0u)
      << "the rusher's hop signature fails at the destination";
  EXPECT_GE(n.metrics.data_delivered, 18u);
}

TEST(Rushing, McclsRouteUsesHonestRelay) {
  ModeledClsSecurity security(5, 98, 34);
  Net n(rushing_topology(), &security,
        {AttackType::kNone, AttackType::kNone, AttackType::kRushing, AttackType::kNone});
  n.send_burst(0, 3, 5);
  NodeId captured_next_hop = 999;
  n.simulator.schedule_at(4.0, [&] {
    if (const Route* r = n.agents[0]->table().find_active(3, n.simulator.now())) {
      captured_next_hop = r->next_hop;
    }
  });
  n.simulator.run_until(10.0);
  EXPECT_EQ(captured_next_hop, 1u) << "route uses the honest relay";
}

// ------------------------------------------------- gray hole (insider)

TEST(GrayHole, DropsAboutHalfTheTransitTraffic) {
  // Chain with the gray hole as the only relay: ~50% of packets vanish.
  Net n({{0, 0}, {200, 0}, {400, 0}}, nullptr,
        {AttackType::kNone, AttackType::kGrayHole, AttackType::kNone});
  n.send_burst(0, 2, 40);
  n.simulator.run_until(40.0);
  EXPECT_GT(n.metrics.attacker_dropped, 10u);
  EXPECT_LT(n.metrics.attacker_dropped, 35u);
  EXPECT_GT(n.metrics.data_delivered, 5u) << "a gray hole forwards the rest";
}

TEST(GrayHole, BehavesProtocolHonestlyOtherwise) {
  // Unlike black holes, a gray hole participates in discovery normally and
  // never forges RREPs.
  Net n({{0, 0}, {200, 0}, {400, 0}}, nullptr,
        {AttackType::kNone, AttackType::kGrayHole, AttackType::kNone});
  n.send_burst(0, 2, 5);
  n.simulator.run_until(10.0);
  EXPECT_GT(n.metrics.rreq_forwarded, 0u) << "gray hole forwards discovery floods";
  // The RREPs it generated are genuine destination replies relayed back.
  EXPECT_GE(n.metrics.data_delivered + n.metrics.attacker_dropped, 5u);
}

TEST(GrayHole, McclsCannotStopAnInsider) {
  // DOCUMENTED LIMITATION: the gray hole holds valid credentials (it is a
  // compromised insider), so every packet it emits verifies. Signature
  // schemes bound what OUTSIDERS can do; selective forwarding by insiders
  // needs watchdog-style detection, which is outside the paper's scope.
  ModeledClsSecurity security(5, 98, 34);
  security.enroll(1);  // the insider is enrolled like everyone else
  Net n({{0, 0}, {200, 0}, {400, 0}}, &security,
        {AttackType::kNone, AttackType::kGrayHole, AttackType::kNone});
  n.send_burst(0, 2, 40);
  n.simulator.run_until(40.0);
  EXPECT_GT(n.metrics.attacker_dropped, 10u)
      << "authentication does not prevent insider selective forwarding";
  EXPECT_EQ(n.metrics.auth_rejected, 0u) << "every signature in the network is valid";
}

// --------------------------------------------------- wormhole (colluding)

// Long chain 0-1-2-3-4 with wormhole endpoints W5 (near node 0) and W6
// (near node 4). Replayed RREQs from 0 erupt next to 4 claiming to come
// from 0 directly, so 4 builds a one-hop reverse route to the unreachable 0.
std::vector<net::Vec2> wormhole_topology() {
  return {{0, 0},   {200, 0}, {400, 0}, {600, 0},
          {800, 0}, {60, 60}, {740, 60}};
}

std::unique_ptr<Net> make_wormhole_net(SecurityProvider* security = nullptr) {
  std::vector<AttackType> roles(7, AttackType::kNone);
  roles[5] = AttackType::kWormhole;
  roles[6] = AttackType::kWormhole;
  auto n = std::make_unique<Net>(wormhole_topology(), security, roles);
  n->agents[5]->set_collusion_peers({n->agents[6].get()});
  n->agents[6]->set_collusion_peers({n->agents[5].get()});
  return n;
}

TEST(Wormhole, FakeAdjacencyPoisonsDiscovery) {
  Net clean({{0, 0}, {200, 0}, {400, 0}, {600, 0}, {800, 0}});
  clean.send_burst(0, 4, 20);
  clean.simulator.run_until(30.0);
  const double clean_pdr = clean.metrics.packet_delivery_ratio();
  EXPECT_GT(clean_pdr, 0.8) << "the 5-hop chain works without the wormhole";

  auto attacked = make_wormhole_net();
  attacked->send_burst(0, 4, 20);
  attacked->simulator.run_until(30.0);
  EXPECT_LT(attacked->metrics.packet_delivery_ratio(), clean_pdr - 0.3)
      << "replayed RREQs create unreachable one-hop 'shortcuts'";
}

TEST(Wormhole, SignaturesDoNotStopIt) {
  // DOCUMENTED LIMITATION: the wormhole replays honest, validly-signed
  // packets verbatim; authentication has nothing to reject. Defences need
  // packet leashes / distance bounding, outside the paper's scope.
  ModeledClsSecurity security(5, 98, 34);
  auto n = make_wormhole_net(&security);
  n->send_burst(0, 4, 20);
  n->simulator.run_until(30.0);
  EXPECT_LT(n->metrics.packet_delivery_ratio(), 0.6)
      << "McCLS does not restore delivery under a wormhole";
  EXPECT_EQ(n->metrics.auth_rejected, 0u) << "every replayed signature is genuine";
}

// ----------------------------------------------------- sybil (outsider)

// Same ground as the black hole: attacker 3 sits next to the source and
// answers discoveries, but under fabricated identities (0x10000+) that were
// never enrolled at the KGC. The forged RREP satisfies both binding checks
// (origin_auth is signed "by" the phantom, hop_auth by the attacker), so
// rejection must come from the cryptography itself — KGC admission control.
TEST(Sybil, PhantomIdentityCapturesRouteInPlainAodv) {
  Net n(blackhole_topology(), nullptr, {AttackType::kNone, AttackType::kNone,
                                        AttackType::kNone, AttackType::kSybil});
  n.send_burst(0, 2, 20);
  n.simulator.run_until(30.0);
  EXPECT_EQ(n.metrics.data_sent, 20u);
  EXPECT_GT(n.metrics.attacker_dropped, 10u)
      << "data follows the forged RREP back to the sybil's transmitter";
  EXPECT_LT(n.metrics.data_delivered, 10u);
}

TEST(Sybil, McclsRejectsUnenrolledIdentities) {
  ModeledClsSecurity security(5, 98, 34);
  Net n(blackhole_topology(), &security,
        {AttackType::kNone, AttackType::kNone, AttackType::kNone, AttackType::kSybil});
  n.send_burst(0, 2, 20);
  n.simulator.run_until(30.0);
  EXPECT_GT(n.metrics.auth_rejected, 0u)
      << "phantom identities were never enrolled, so their signatures fail";
  EXPECT_EQ(n.metrics.attacker_dropped, 0u);
  EXPECT_GE(n.metrics.data_delivered, 18u) << "traffic flows over the honest chain";
}

// ------------------------------------------------- RREQ replay storm

// Attacker 3 overhears the chain's discovery floods, then rebroadcasts them
// later: verbatim copies (genuine signatures, spoofed transmitter) plus
// mutated copies (bumped rreq_id to defeat duplicate suppression). The
// defense is the signed issued_at timestamp: honest nodes discard RREQs
// older than rreq_freshness before any other processing.
TEST(ReplayStorm, FloodsThePlainNetwork) {
  Net clean(blackhole_topology(), nullptr, {});
  clean.send_burst(0, 2, 20);
  clean.simulator.run_until(40.0);

  Net n(blackhole_topology(), nullptr, {AttackType::kNone, AttackType::kNone,
                                        AttackType::kNone, AttackType::kReplayStorm});
  n.send_burst(0, 2, 20);
  n.simulator.run_until(40.0);
  EXPECT_GT(n.channel.stats().frames_transmitted,
            2 * clean.channel.stats().frames_transmitted)
      << "the storm multiplies control traffic";
  // Mutated copies defeat duplicate suppression; honest intermediates answer
  // each one from their route cache, so the amplification shows up as a
  // gratuitous-RREP storm.
  EXPECT_GT(n.metrics.rrep_generated, clean.metrics.rrep_generated)
      << "every mutated replay copy provokes a cached-route reply";
}

TEST(ReplayStorm, McclsFreshnessCheckStopsIt) {
  ModeledClsSecurity security(5, 98, 34);
  Net n(blackhole_topology(), &security,
        {AttackType::kNone, AttackType::kNone, AttackType::kNone,
         AttackType::kReplayStorm});
  n.send_burst(0, 2, 20);
  n.simulator.run_until(40.0);
  EXPECT_GT(n.metrics.replay_rejected, 0u)
      << "stale issued_at timestamps rejected before signature work";
  EXPECT_GE(n.metrics.data_delivered, 18u) << "delivery unaffected by the storm";
}

TEST(ReplayStorm, MutatedCopiesCannotForgeFreshTimestamps) {
  // The timestamp is covered by the origin signature, so the attacker cannot
  // refresh it: every mutated copy either fails freshness (stale) or fails
  // the signature (tampered). No replayed RREQ may ever seed a route.
  ModeledClsSecurity security(5, 98, 34);
  Net n(blackhole_topology(), &security,
        {AttackType::kNone, AttackType::kNone, AttackType::kNone,
         AttackType::kReplayStorm});
  n.send_burst(0, 2, 10);
  n.simulator.run_until(40.0);
  const Route* route = n.agents[0]->table().find_active(2, n.simulator.now());
  if (route != nullptr) {
    EXPECT_NE(route->next_hop, 3u) << "no route may point at the replayer";
  }
  EXPECT_EQ(n.metrics.attacker_dropped, 0u);
}

TEST(Attacks, AttackersDoNotOriginateRreqFloods) {
  // Attackers absorb; they must not inflate the RREQ ratio on their own.
  Net n(blackhole_topology(), nullptr, {AttackType::kNone, AttackType::kNone,
                                        AttackType::kNone, AttackType::kBlackHole});
  n.send_burst(0, 2, 5);
  n.simulator.run_until(15.0);
  // Every initiated RREQ came from node 0.
  EXPECT_EQ(n.metrics.rreq_initiated, n.agents[0]->table().size() > 0 ? n.metrics.rreq_initiated
                                                                      : 0u);
  EXPECT_GE(n.metrics.rreq_initiated, 1u);
}

TEST(Attacks, BlackHoleDeliversNothingItAbsorbs) {
  // Conservation: sent == delivered + absorbed + otherwise-lost.
  Net n(blackhole_topology(), nullptr, {AttackType::kNone, AttackType::kNone,
                                        AttackType::kNone, AttackType::kBlackHole});
  n.send_burst(0, 2, 20);
  n.simulator.run_until(30.0);
  const auto accounted = n.metrics.data_delivered + n.metrics.attacker_dropped +
                         n.metrics.buffer_drops + n.metrics.no_route_drops +
                         n.metrics.link_fail_drops;
  EXPECT_LE(n.metrics.data_delivered + n.metrics.attacker_dropped, n.metrics.data_sent);
  EXPECT_LE(accounted, n.metrics.data_sent + 2u)
      << "loss accounting must not double-count";
}

}  // namespace
}  // namespace mccls::aodv
