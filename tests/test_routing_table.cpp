#include "aodv/routing_table.hpp"

#include <gtest/gtest.h>

namespace mccls::aodv {
namespace {

Route mk(NodeId next_hop, std::uint8_t hops, std::uint32_t seq, bool valid_seq = true) {
  return Route{.next_hop = next_hop, .hop_count = hops, .seq = seq, .valid_seq = valid_seq};
}

TEST(RoutingTable, EmptyHasNoRoutes) {
  RoutingTable t(6.0);
  EXPECT_EQ(t.find_active(7, 0.0), nullptr);
  EXPECT_EQ(t.find(7), nullptr);
  EXPECT_EQ(t.size(), 0u);
}

TEST(RoutingTable, OfferInstallsRoute) {
  RoutingTable t(6.0);
  EXPECT_TRUE(t.offer(7, mk(3, 2, 10), 0.0));
  const Route* r = t.find_active(7, 1.0);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->next_hop, 3u);
  EXPECT_EQ(r->hop_count, 2);
  EXPECT_EQ(r->seq, 10u);
}

TEST(RoutingTable, RoutesExpire) {
  RoutingTable t(6.0);
  t.offer(7, mk(3, 2, 10), 0.0);
  EXPECT_NE(t.find_active(7, 5.9), nullptr);
  EXPECT_EQ(t.find_active(7, 6.0), nullptr) << "expires at now + timeout";
  // Entry still present for seqnum bookkeeping.
  EXPECT_NE(t.find(7), nullptr);
}

TEST(RoutingTable, FresherSeqWins) {
  RoutingTable t(6.0);
  t.offer(7, mk(3, 2, 10), 0.0);
  EXPECT_TRUE(t.offer(7, mk(4, 5, 11), 0.0)) << "newer seq replaces despite more hops";
  EXPECT_EQ(t.find_active(7, 1.0)->next_hop, 4u);
}

TEST(RoutingTable, StaleSeqRejected) {
  RoutingTable t(6.0);
  t.offer(7, mk(3, 2, 10), 0.0);
  EXPECT_FALSE(t.offer(7, mk(4, 1, 9), 0.0));
  EXPECT_EQ(t.find_active(7, 1.0)->next_hop, 3u);
}

TEST(RoutingTable, EqualSeqFewerHopsWins) {
  RoutingTable t(6.0);
  t.offer(7, mk(3, 4, 10), 0.0);
  EXPECT_TRUE(t.offer(7, mk(4, 2, 10), 0.0));
  EXPECT_EQ(t.find_active(7, 1.0)->next_hop, 4u);
  EXPECT_FALSE(t.offer(7, mk(5, 3, 10), 0.0)) << "more hops at equal seq rejected";
}

TEST(RoutingTable, SeqWraparoundTreatedAsFresher) {
  RoutingTable t(6.0);
  t.offer(7, mk(3, 2, 0xFFFFFFF0u), 0.0);
  EXPECT_TRUE(t.offer(7, mk(4, 2, 5), 0.0)) << "wrapped seq is newer (signed diff)";
}

TEST(RoutingTable, InvalidRouteAlwaysReplaced) {
  RoutingTable t(6.0);
  t.offer(7, mk(3, 2, 10), 0.0);
  t.invalidate(7);
  EXPECT_EQ(t.find_active(7, 0.1), nullptr);
  EXPECT_TRUE(t.offer(7, mk(4, 9, 1), 0.2)) << "any route beats an invalid one";
  EXPECT_NE(t.find_active(7, 0.3), nullptr);
}

TEST(RoutingTable, InvalidateBumpsSeq) {
  RoutingTable t(6.0);
  t.offer(7, mk(3, 2, 10), 0.0);
  t.invalidate(7);
  EXPECT_EQ(t.find(7)->seq, 11u) << "RFC 3561 §6.11: invalidation increments seq";
}

TEST(RoutingTable, RefreshExtendsLifetime) {
  RoutingTable t(6.0);
  t.offer(7, mk(3, 2, 10), 0.0);
  t.refresh(7, 5.0);
  EXPECT_NE(t.find_active(7, 10.9), nullptr) << "refreshed at t=5, lives to t=11";
  EXPECT_EQ(t.find_active(7, 11.0), nullptr);
}

TEST(RoutingTable, TouchNeighborInstallsOneHopRoute) {
  RoutingTable t(6.0);
  t.touch_neighbor(9, 0.0);
  const Route* r = t.find_active(9, 1.0);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->next_hop, 9u);
  EXPECT_EQ(r->hop_count, 1);
}

TEST(RoutingTable, TouchNeighborDoesNotDowngradeFreshRoute) {
  RoutingTable t(6.0);
  t.offer(9, mk(4, 1, 22), 0.0);  // valid-seq route via node 4... to node 9
  t.touch_neighbor(9, 1.0);
  const Route* r = t.find_active(9, 2.0);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->hop_count, 1);
  EXPECT_EQ(r->next_hop, 9u) << "direct neighbour supersedes equal-hop relayed route";
}

TEST(RoutingTable, InvalidateViaCollectsAffectedRoutes) {
  RoutingTable t(6.0);
  t.offer(7, mk(3, 2, 10), 0.0);
  t.offer(8, mk(3, 4, 20), 0.0);
  t.offer(9, mk(5, 1, 30), 0.0);
  const auto affected = t.invalidate_via(3);
  EXPECT_EQ(affected.size(), 2u);
  EXPECT_EQ(t.find_active(7, 0.1), nullptr);
  EXPECT_EQ(t.find_active(8, 0.1), nullptr);
  EXPECT_NE(t.find_active(9, 0.1), nullptr) << "route via other hop untouched";
}

TEST(RoutingTable, InvalidateViaOnEmptyIsEmpty) {
  RoutingTable t(6.0);
  EXPECT_TRUE(t.invalidate_via(3).empty());
}

}  // namespace
}  // namespace mccls::aodv
