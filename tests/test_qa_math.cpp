// Tier-1 runner for the registered math-layer properties (u256, Montgomery
// fields, Fp2, G1, pairing differential oracles). One gtest case per
// property; a failure prints the shrunk counterexample and the qa_fuzz repro
// line (see docs/TESTING.md).
#include <gtest/gtest.h>

#include "qa/property.hpp"

namespace mccls::qa {
namespace {

class QaMathProperty : public ::testing::TestWithParam<const Property*> {};

TEST_P(QaMathProperty, Holds) {
  const Outcome out = GetParam()->run(RunConfig::from_env());
  EXPECT_TRUE(out.ok) << out.message();
  EXPECT_GT(out.iterations_run, 0);
}

INSTANTIATE_TEST_SUITE_P(Math, QaMathProperty,
                         ::testing::ValuesIn(properties_in_layer("math")),
                         [](const ::testing::TestParamInfo<const Property*>& info) {
                           return info.param->name;
                         });

}  // namespace
}  // namespace mccls::qa
