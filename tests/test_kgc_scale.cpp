// Scale acceptance for the segmented store (label kgc_1m — see
// tests/CMakeLists.txt): populate a large identity population through the
// store+directory fast path (the same replay hooks kgcd recovery uses — a
// real enroll() pays an ~0.6ms partial-key extraction per identity, which
// would make a million-identity run about issuance speed, not durability),
// compact under load, then kill -9 a compacting process at each of the three
// injected CompactionPhase points and require the rebooted directory to be
// bit-identical, entry for entry, byte for byte.
//
// Population size: MCCLS_SCALE_IDENTITIES (nightly sets 100000+); the
// default is smoke-sized so plain `ctest` stays fast.
#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cls/mccls.hpp"
#include "kgc/directory.hpp"
#include "kgc/logstore.hpp"

namespace mccls::kgc {
namespace {

namespace fs = std::filesystem;
using crypto::Bytes;

constexpr std::size_t kShards = 16;

std::size_t population() {
  if (const char* env = std::getenv("MCCLS_SCALE_IDENTITIES")) {
    const long long n = std::atoll(env);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 5000;  // smoke size: plain ctest must stay fast
}

std::string scale_id(std::size_t i) { return "node-" + std::to_string(i); }

LogStoreConfig store_config(const std::string& dir) {
  // Small segments so a scale run rotates thousands of times; fsync off —
  // the kill model here is process death, not power loss, and the nightly
  // run would otherwise be fsync-bound.
  return LogStoreConfig{
      .dir = dir, .shards = kShards, .fsync = false, .segment_bytes = 1 << 15};
}

/// Reboots the store directory into a fresh directory (the exact kgcd
/// recovery path: snapshot entries + record replay through apply()).
std::unique_ptr<KeyDirectory> recover_directory(LogStore& store) {
  auto directory = std::make_unique<KeyDirectory>(DirectoryConfig{.shards = kShards});
  const RecoveryReport report = store.recover(
      [&](std::size_t, const SnapshotEntry& entry) { directory->apply(entry); },
      [&](std::size_t, const WalRecord& record) { directory->apply(record); });
  EXPECT_FALSE(report.snapshot_corrupt);
  return directory;
}

/// The whole directory as per-shard sorted entry vectors — the bit-identical
/// comparison unit (SnapshotEntry carries the exact stored bytes and both
/// epochs, so equality here is equality of everything resolution can see).
std::vector<std::vector<SnapshotEntry>> full_export(const KeyDirectory& directory) {
  std::vector<std::vector<SnapshotEntry>> out;
  out.reserve(kShards);
  for (std::size_t s = 0; s < kShards; ++s) out.push_back(directory.export_shard(s));
  return out;
}

TEST(KgcScale, SurvivesKillsAtEveryCompactionPhaseBitIdentically) {
  const std::size_t n = population();
  const fs::path dir = fs::path(::testing::TempDir()) / "kgc_scale";
  fs::remove_all(dir);

  // A few distinct real keys, cycled: decodable by the directory's replay
  // hooks, cheap to mint, and enough variety that a shard/byte mix-up cannot
  // cancel out.
  crypto::HmacDrbg rng{std::uint64_t{0x5CA1EB1E}};
  cls::Kgc kgc = cls::Kgc::setup(rng);
  cls::Mccls scheme;
  std::vector<Bytes> keys;
  for (int i = 0; i < 8; ++i) {
    keys.push_back(scheme.derive_public(kgc.params(), rng.next_nonzero_fq()).to_bytes());
  }

  // ---- populate through the fast path, compacting under load -------------
  {
    LogStore store(store_config(dir.string()));
    KeyDirectory directory(DirectoryConfig{.shards = kShards});
    (void)store.recover(nullptr, nullptr);
    const std::size_t compact_every = n / 7 + 1;
    for (std::size_t i = 0; i < n; ++i) {
      const std::string id = scale_id(i);
      const std::size_t shard = shard_index(id, kShards);
      const WalRecord record{.type = WalRecordType::kEnroll,
                             .epoch = 1,
                             .id = id,
                             .pk_bytes = keys[i % keys.size()]};
      ASSERT_TRUE(store.append(shard, record).has_value()) << id;
      directory.apply(record);
      if (i % 100 == 99) {  // 1% revocation churn
        const WalRecord revoke{.type = WalRecordType::kRevoke, .epoch = 2, .id = id};
        ASSERT_TRUE(store.append(shard, revoke).has_value());
        directory.apply(revoke);
      }
      if (i % compact_every == compact_every - 1) {
        const std::size_t victim = (i / compact_every) % kShards;
        ASSERT_TRUE(store.compact_shard(victim, directory.export_shard(victim)));
      }
    }
    ASSERT_EQ(directory.size(), n);
  }

  // ---- the reference state, via a clean reboot ----------------------------
  std::vector<std::vector<SnapshotEntry>> want;
  {
    LogStore store(store_config(dir.string()));
    want = full_export(*recover_directory(store));
  }

  // ---- kill -9 mid-compaction at each phase, reboot, compare --------------
  const CompactionPhase phases[] = {CompactionPhase::kBeforeSnapshotRename,
                                    CompactionPhase::kAfterSnapshotRename,
                                    CompactionPhase::kAfterFirstUnlink};
  std::size_t victim = 3;  // rotate so each kill hits a different shard
  for (const CompactionPhase phase : phases) {
    SCOPED_TRACE(static_cast<int>(phase));
    const pid_t pid = fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      // Child: full recovery, then die inside compact_shard at `phase` —
      // the moral equivalent of kill -9 landing mid-compaction.
      LogStore store(store_config(dir.string()));
      auto directory = recover_directory(store);
      store.set_compaction_hook([phase](std::size_t, CompactionPhase at) {
        if (at == phase) _exit(0);
      });
      (void)store.compact_shard(victim, directory->export_shard(victim));
      _exit(1);
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0) << "child must die mid-compaction";

    LogStore store(store_config(dir.string()));
    auto directory = recover_directory(store);
    EXPECT_EQ(full_export(*directory), want) << "reboot lost or mutated entries";

    // Resolution spot checks on top of the structural comparison.
    const auto hit = directory->lookup(scale_id(0));
    EXPECT_EQ(hit.status, DirStatus::kOk);
    EXPECT_EQ(hit.pk_bytes, keys[0]);
    EXPECT_EQ(directory->lookup(scale_id(99)).status, DirStatus::kRevoked);
    EXPECT_EQ(directory->lookup("node-" + std::to_string(n)).status,
              DirStatus::kUnknownId);

    // Keep the next victim shard dirty so its kill exercises a real fold.
    const WalRecord extra{.type = WalRecordType::kEnroll,
                          .epoch = 3,
                          .id = "extra-" + std::to_string(static_cast<int>(phase)),
                          .pk_bytes = keys[1]};
    const std::size_t shard = shard_index(extra.id, kShards);
    ASSERT_TRUE(store.append(shard, extra).has_value());
    directory->apply(extra);
    want[shard] = directory->export_shard(shard);
    victim = shard;
  }
}

}  // namespace
}  // namespace mccls::kgc
