#include "aodv/messages.hpp"

#include <gtest/gtest.h>

namespace mccls::aodv {
namespace {

TEST(Messages, RreqSignableCoversImmutableFieldsOnly) {
  Rreq a{.rreq_id = 1, .origin = 2, .origin_seq = 3, .dest = 4, .dest_seq = 5,
         .unknown_dest_seq = false, .hop_count = 0, .ttl = 35};
  Rreq b = a;
  b.hop_count = 7;  // mutable in flight
  b.ttl = 3;
  EXPECT_EQ(signable_bytes(a), signable_bytes(b))
      << "hop_count/ttl must not break signatures as the packet propagates";
  Rreq c = a;
  c.dest = 9;
  EXPECT_NE(signable_bytes(a), signable_bytes(c));
  Rreq d = a;
  d.unknown_dest_seq = true;
  EXPECT_NE(signable_bytes(a), signable_bytes(d));
}

TEST(Messages, RrepSignableCoversImmutableFieldsOnly) {
  Rrep a{.origin = 1, .dest = 2, .dest_seq = 3, .replier = 4, .hop_count = 0, .lifetime = 6};
  Rrep b = a;
  b.hop_count = 9;
  EXPECT_EQ(signable_bytes(a), signable_bytes(b));
  Rrep c = a;
  c.dest_seq = 99;
  EXPECT_NE(signable_bytes(a), signable_bytes(c));
  Rrep d = a;
  d.replier = 17;
  EXPECT_NE(signable_bytes(a), signable_bytes(d)) << "replier identity is authenticated";
}

TEST(Messages, RerrSignableCoversList) {
  Rerr a{.unreachable = {{1, 10}, {2, 20}}};
  Rerr b{.unreachable = {{1, 10}, {2, 21}}};
  EXPECT_NE(signable_bytes(a), signable_bytes(b));
  EXPECT_EQ(signable_bytes(a), signable_bytes(Rerr{.unreachable = {{1, 10}, {2, 20}}}));
}

TEST(Messages, MessageTypesAreDomainSeparated) {
  // An RREQ transcript must never collide with an RREP transcript.
  Rreq rreq{};
  Rrep rrep{};
  EXPECT_NE(signable_bytes(rreq), signable_bytes(rrep));
}

TEST(Messages, WireSizesAreSane) {
  const Rreq rreq{};
  const Rrep rrep{};
  EXPECT_EQ(base_wire_size(rreq), 28u + 32u)
      << "IP/UDP + RFC 3561 RREQ + the signed 8-byte issued_at timestamp";
  EXPECT_EQ(base_wire_size(rrep), 28u + 20u);
  Rerr rerr{.unreachable = {{1, 1}, {2, 2}, {3, 3}}};
  EXPECT_EQ(base_wire_size(rerr), 28u + 4u + 24u);
  const DataPacket pkt{.payload_bytes = 512};
  EXPECT_EQ(wire_size(pkt), 540u);
}

TEST(Messages, AuthExtSizeTracksContents) {
  AuthExt auth;
  auth.public_key.resize(34);
  auth.signature.resize(98);
  EXPECT_EQ(wire_size(auth), 4u + 2u + 34u + 2u + 98u);
  // A secured RREQ with two extensions costs ~2x that on the air.
  const Rreq rreq{};
  const std::size_t secured = base_wire_size(rreq) + 2 * wire_size(auth);
  EXPECT_GT(secured, 300u);
  EXPECT_LT(secured, 360u);
}

}  // namespace
}  // namespace mccls::aodv
