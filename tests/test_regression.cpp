// Golden determinism regression: a fixed scenario must produce bit-identical
// counters run-to-run AND match values recorded when the behaviour was last
// validated. A change here means simulator behaviour changed — that may be
// intentional, but it must be a conscious decision (update the goldens and
// re-validate EXPERIMENTS.md).
#include <gtest/gtest.h>

#include "aodv/scenario.hpp"

namespace mccls::aodv {
namespace {

ScenarioConfig golden_config() {
  ScenarioConfig cfg;
  cfg.num_nodes = 12;
  cfg.num_flows = 4;
  cfg.duration = 60;
  cfg.max_speed = 8;
  cfg.seed = 0x601D;  // overridden per test
  return cfg;
}

TEST(Regression, RunToRunDeterminism) {
  ScenarioConfig cfg = golden_config();
  cfg.seed = 424242;
  const ScenarioResult a = run_scenario(cfg);
  const ScenarioResult b = run_scenario(cfg);
  EXPECT_EQ(a.metrics.data_sent, b.metrics.data_sent);
  EXPECT_EQ(a.metrics.data_delivered, b.metrics.data_delivered);
  EXPECT_EQ(a.metrics.data_forwarded, b.metrics.data_forwarded);
  EXPECT_EQ(a.metrics.rreq_initiated, b.metrics.rreq_initiated);
  EXPECT_EQ(a.metrics.rreq_forwarded, b.metrics.rreq_forwarded);
  EXPECT_EQ(a.metrics.rerr_sent, b.metrics.rerr_sent);
  EXPECT_EQ(a.channel.frames_transmitted, b.channel.frames_transmitted);
  EXPECT_EQ(a.channel.collisions, b.channel.collisions);
  EXPECT_EQ(a.metrics.total_delay, b.metrics.total_delay);
}

TEST(Regression, SecuredRunToRunDeterminism) {
  ScenarioConfig cfg = golden_config();
  cfg.seed = 424242;
  cfg.security = SecurityMode::kModeled;
  cfg.attack = AttackType::kBlackHole;
  const ScenarioResult a = run_scenario(cfg);
  const ScenarioResult b = run_scenario(cfg);
  EXPECT_EQ(a.metrics.data_delivered, b.metrics.data_delivered);
  EXPECT_EQ(a.metrics.auth_rejected, b.metrics.auth_rejected);
  EXPECT_EQ(a.metrics.sign_ops, b.metrics.sign_ops);
  EXPECT_EQ(a.metrics.verify_ops, b.metrics.verify_ops);
  EXPECT_EQ(a.channel.frames_transmitted, b.channel.frames_transmitted);
}

TEST(Regression, ConservationOfDataPackets) {
  // Every sent packet is delivered, absorbed, dropped, or still in flight /
  // buffered at the end — never duplicated into the delivered count.
  for (const std::uint64_t seed : {1ULL, 99ULL, 31337ULL}) {
    ScenarioConfig cfg = golden_config();
    cfg.seed = seed;
    cfg.attack = AttackType::kRushing;
    const ScenarioResult r = run_scenario(cfg);
    const auto& m = r.metrics;
    EXPECT_LE(m.data_delivered + m.attacker_dropped + m.buffer_drops + m.no_route_drops +
                  m.link_fail_drops,
              m.data_sent + m.data_forwarded)
        << "seed " << seed;
    EXPECT_LE(m.data_delivered, m.data_sent) << "seed " << seed;
  }
}

TEST(Regression, DelaySamplesMatchDeliveredCount) {
  ScenarioConfig cfg = golden_config();
  cfg.seed = 77;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_EQ(r.metrics.delay_samples, r.metrics.data_delivered);
  EXPECT_GE(r.metrics.total_delay, 0.0);
}

TEST(Regression, ChannelAccountingConsistent) {
  ScenarioConfig cfg = golden_config();
  cfg.seed = 7;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_GT(r.channel.frames_transmitted, 0u);
  EXPECT_GT(r.channel.bytes_transmitted, r.channel.frames_transmitted)
      << "every frame is more than one byte";
  // Deliveries are bounded by transmissions times the neighbourhood size.
  EXPECT_LE(r.channel.frames_delivered,
            r.channel.frames_transmitted * cfg.num_nodes);
}

}  // namespace
}  // namespace mccls::aodv
