// Security providers for the AODV extension: the real CLS provider and the
// modelled one must make the same accept/reject decisions.
#include <gtest/gtest.h>

#include "aodv/security.hpp"

namespace mccls::aodv {
namespace {

crypto::Bytes msg(std::string_view s) {
  return crypto::Bytes(crypto::as_bytes(s).begin(), crypto::as_bytes(s).end());
}

template <typename Provider>
std::unique_ptr<SecurityProvider> make_provider();

template <>
std::unique_ptr<SecurityProvider> make_provider<RealClsSecurity>() {
  return std::make_unique<RealClsSecurity>("McCLS", 42);
}

template <>
std::unique_ptr<SecurityProvider> make_provider<ModeledClsSecurity>() {
  return std::make_unique<ModeledClsSecurity>(42, 98, 34);
}

template <typename T>
class SecurityProviderTest : public ::testing::Test {
 protected:
  std::unique_ptr<SecurityProvider> provider_ = make_provider<T>();
};

using Providers = ::testing::Types<RealClsSecurity, ModeledClsSecurity>;
TYPED_TEST_SUITE(SecurityProviderTest, Providers);

TYPED_TEST(SecurityProviderTest, EnrolledNodeSignsVerifiably) {
  auto& p = *this->provider_;
  p.enroll(1);
  EXPECT_TRUE(p.is_enrolled(1));
  const auto m = msg("RREQ immutable fields");
  const AuthExt auth = p.sign(1, m);
  EXPECT_EQ(auth.signer, 1u);
  EXPECT_TRUE(p.verify(auth, m));
}

TYPED_TEST(SecurityProviderTest, UnenrolledSignatureRejected) {
  auto& p = *this->provider_;
  p.enroll(1);
  const auto m = msg("forged control packet");
  const AuthExt forged = p.sign(99, m);  // 99 never enrolled
  EXPECT_FALSE(p.is_enrolled(99));
  EXPECT_FALSE(p.verify(forged, m));
}

TYPED_TEST(SecurityProviderTest, TamperedMessageRejected) {
  auto& p = *this->provider_;
  p.enroll(1);
  const AuthExt auth = p.sign(1, msg("original"));
  EXPECT_FALSE(p.verify(auth, msg("modified")));
}

TYPED_TEST(SecurityProviderTest, SignerSubstitutionRejected) {
  auto& p = *this->provider_;
  p.enroll(1);
  p.enroll(2);
  const auto m = msg("claim");
  AuthExt auth = p.sign(1, m);
  auth.signer = 2;  // claim another identity over the same signature
  EXPECT_FALSE(p.verify(auth, m));
}

TYPED_TEST(SecurityProviderTest, ForgedExtensionHasPlausibleShape) {
  // The attacker's best effort must look structurally identical so the
  // wire-size (airtime) model stays faithful.
  auto& p = *this->provider_;
  p.enroll(1);
  const auto m = msg("shape check");
  const AuthExt real = p.sign(1, m);
  const AuthExt fake = p.sign(99, m);
  EXPECT_EQ(real.signature.size(), fake.signature.size());
  EXPECT_EQ(real.public_key.size(), fake.public_key.size());
}

TEST(RealClsSecurity, IdentityStringIsStable) {
  EXPECT_EQ(RealClsSecurity::identity(7), "node-7");
  EXPECT_EQ(RealClsSecurity::identity(0), "node-0");
}

TEST(RealClsSecurity, UnknownSchemeThrows) {
  EXPECT_THROW(RealClsSecurity("NotAScheme", 1), std::invalid_argument);
}

TEST(RealClsSecurity, WorksWithEveryTable1Scheme) {
  for (const char* name : {"AP", "ZWXF", "YHG", "McCLS"}) {
    RealClsSecurity p(name, 7);
    p.enroll(3);
    const auto m = msg("cross-scheme");
    EXPECT_TRUE(p.verify(p.sign(3, m), m)) << name;
    EXPECT_FALSE(p.verify(p.sign(4, m), m)) << name << " (unenrolled)";
  }
}

TEST(SecurityCosts, DefaultZeroAndSettable) {
  ModeledClsSecurity p(1, 98, 34);
  EXPECT_EQ(p.costs().sign_delay, 0.0);
  p.set_costs({.sign_delay = 0.004, .verify_delay = 0.022});
  EXPECT_DOUBLE_EQ(p.costs().sign_delay, 0.004);
  EXPECT_DOUBLE_EQ(p.costs().verify_delay, 0.022);
}

}  // namespace
}  // namespace mccls::aodv
