// The BENCH_*.json trajectory format: every perf-sensitive benchmark can
// dump its medians to a small JSON file so speedup claims are recorded and
// gated (tools/bench_compare) instead of asserted in prose.
//
// Schema (kept deliberately flat so bench_compare's parser stays tiny):
//   {
//     "bench": "<bench name>",
//     "results": [
//       {"name": "<op>", "iters": N, "median_ns": ..., "mean_ns": ..., "min_ns": ...},
//       ...
//     ],
//     "derived": {"<metric>": <number>, ...}
//   }
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace mccls::bench {

struct BenchResult {
  std::string name;
  std::uint64_t iters = 0;
  double median_ns = 0;
  double mean_ns = 0;
  double min_ns = 0;
};

/// Times `fn` (one logical operation per call): `samples` timed batches of
/// `iters_per_sample` calls each, after one warm-up batch. Reports per-call
/// nanoseconds; the median is the headline number.
inline BenchResult time_op(const std::string& name, unsigned samples,
                           unsigned iters_per_sample, const std::function<void()>& fn) {
  using clock = std::chrono::steady_clock;
  std::vector<double> per_call(samples);
  for (unsigned s = 0; s <= samples; ++s) {  // s == 0 is the warm-up batch
    const auto start = clock::now();
    for (unsigned i = 0; i < iters_per_sample; ++i) fn();
    const auto stop = clock::now();
    if (s == 0) continue;
    const double ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count());
    per_call[s - 1] = ns / iters_per_sample;
  }
  std::sort(per_call.begin(), per_call.end());
  double sum = 0;
  for (const double v : per_call) sum += v;
  const double median = samples % 2 == 1
                            ? per_call[samples / 2]
                            : (per_call[samples / 2 - 1] + per_call[samples / 2]) / 2.0;
  return BenchResult{.name = name,
                     .iters = static_cast<std::uint64_t>(samples) * iters_per_sample,
                     .median_ns = median,
                     .mean_ns = sum / samples,
                     .min_ns = per_call.front()};
}

/// Writes the BENCH_*.json file. Returns false (and prints to stderr) on
/// I/O failure so benches can exit non-zero.
inline bool write_bench_json(const std::string& path, const std::string& bench_name,
                             const std::vector<BenchResult>& results,
                             const std::map<std::string, double>& derived) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [\n", bench_name.c_str());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"iters\": %llu, \"median_ns\": %.1f, "
                 "\"mean_ns\": %.1f, \"min_ns\": %.1f}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.iters), r.median_ns,
                 r.mean_ns, r.min_ns, i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n  \"derived\": {\n");
  std::size_t k = 0;
  for (const auto& [key, value] : derived) {
    std::fprintf(f, "    \"%s\": %.4f%s\n", key.c_str(), value,
                 ++k == derived.size() ? "" : ",");
  }
  std::fprintf(f, "  }\n}\n");
  const bool ok = std::fclose(f) == 0;
  if (ok) std::printf("wrote %s\n", path.c_str());
  return ok;
}

}  // namespace mccls::bench
