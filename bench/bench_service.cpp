// Throughput of the src/svc verification service: verified signatures per
// second as a function of worker count, signer skew, and coalescing.
//
// The interesting claim is that worker count is an *algorithmic* lever even
// on one core: requests are dispatched to workers by signer-identity hash,
// so more workers means fewer distinct signers per worker, longer
// same-signer runs per drained chunk, larger cls::batch_verify batches, and
// fewer pairings per signature. The acceptance gate
//
//   bench_compare --gate BENCH_service.json verify_w1_uniform verify_w4_uniform 2.0
//
// enforces ≥2x verified-signatures/sec at 4 workers vs 1 (results are
// recorded as ns-per-signature, so the baseline/candidate median ratio IS
// the throughput speedup). The nocoalesce rows ablate the batching away to
// show the lever really is the coalescer, not scheduling noise.
//
// The kgcd series measures the other half of PR 4's story: enroll cost
// (validation + WAL append), directory resolution hot (decoded-key LRU hit)
// vs cold (every resolve pays the decompression square root), and
// verify-by-identity throughput — kind-3 frames with the public key resolved
// from the kgcd directory instead of carried inline. The second gate
//
//   bench_compare --gate BENCH_service.json verify_w4_uniform verify_w4_byid 0.9
//
// enforces that resolving keys by identity costs at most 10% of pk-inline
// throughput at 4 workers (the LRU is what makes that hold) — with the
// ResilientResolver wrapper in place, so the resilience machinery itself is
// inside the gate. The degraded series re-runs the same workload with 10%
// of directory calls failing transiently behind a FaultInjectingResolver;
// its gate (verify_w4_byid vs verify_w4_byid_degraded at 0.8) bounds the
// throughput cost of retries + breaker bookkeeping under fault.
//
// The offline series (verify_w4_byid_offline) runs the identical workload
// with the directory 100% unavailable behind a VoucherVerifyingResolver
// holding a fresh voucher per signer: the chain's pairing check is paid once
// at ingest, so steady-state resolution is a hash lookup + key copy. Its
// gate (verify_w4_byid vs verify_w4_byid_offline at 0.9) enforces that
// voucher-backed cold-by-identity is never meaningfully slower than a warm
// directory hit.
//
// Knobs: MCCLS_BENCH_JSON (output path, default BENCH_service.json),
//        MCCLS_BENCH_SAMPLES (timed runs per config, default 5).
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "cls/mccls.hpp"
#include "kgc/kgcd.hpp"
#include "kgc/replica.hpp"
#include "kgc/voucher.hpp"
#include "svc/service.hpp"

namespace {

using namespace mccls;

// 64 signers against the default 64-request drain chunk puts 1 worker at the
// degenerate point (every chunk holds each signer once — no coalescing
// possible), while 4 workers see 16 signers each and batch ~4 per chunk.
// 1024 requests keeps the pipeline in steady state long enough that the
// ramp-up (workers draining short chunks before the producer gets ahead)
// doesn't dominate the mean batch size.
constexpr std::size_t kSigners = 64;
constexpr std::size_t kRequests = 1024;

unsigned samples() {
  if (const char* env = std::getenv("MCCLS_BENCH_SAMPLES"); env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 5;
}

/// Pre-encoded request corpus for one skew setting. Zipf(s) over the signer
/// ranks; s == 0 is uniform round-robin. `by_identity` encodes kind-3 frames
/// (no inline public key — the service resolves it from its PkResolver).
std::vector<crypto::Bytes> make_corpus(const cls::Kgc& kgc,
                                       std::span<const cls::UserKeys> signers, double skew,
                                       crypto::HmacDrbg& rng, bool by_identity = false) {
  const cls::Mccls scheme;
  std::vector<double> cdf(signers.size());
  double total = 0;
  for (std::size_t k = 0; k < signers.size(); ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), skew);
    cdf[k] = total;
  }
  std::vector<crypto::Bytes> frames;
  frames.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    std::size_t pick = i % signers.size();
    if (skew > 0) {
      std::array<std::uint8_t, 8> raw;
      rng.generate(raw);
      std::uint64_t bits = 0;
      for (const std::uint8_t b : raw) bits = bits << 8 | b;
      const double u = static_cast<double>(bits >> 11) * 0x1.0p-53 * total;
      pick = 0;
      while (pick + 1 < cdf.size() && cdf[pick] < u) ++pick;
    }
    const cls::UserKeys& signer = signers[pick];
    crypto::ByteWriter msg;
    msg.put_u64(i);
    msg.put_field("bench: service payload");
    svc::VerifyRequest request{.request_id = i + 1,
                               .scheme = "McCLS",
                               .id = signer.id,
                               .by_identity = by_identity,
                               .public_key = by_identity ? cls::PublicKey{} : signer.public_key,
                               .message = msg.take(),
                               .signature = {}};
    request.signature = scheme.sign(kgc.params(), signer, request.message, rng);
    frames.push_back(svc::encode_request(request));
  }
  return frames;
}

struct RunStats {
  bench::BenchResult result;      ///< ns per verified signature
  double mean_batch_size = 1.0;   ///< from the service's own metrics
};

/// One service per config; `samples` timed runs (plus one warm-up) each
/// pushing the full corpus and waiting for every completion. Queue capacity
/// covers the whole corpus so nothing is shed — the bench measures the
/// verification pipeline, not backpressure.
/// allow_unavailable: degraded-directory runs may answer kUnavailable for a
/// fraction of requests; the run then reports ns per *verified* signature
/// (useful work under fault) and only aborts on unexpected verdicts.
RunStats run_config(const std::string& name, unsigned n_samples, unsigned workers,
                    bool coalesce, const cls::SystemParams& params,
                    std::span<const std::string> ids,
                    std::span<const crypto::Bytes> frames,
                    svc::PkResolver* resolver = nullptr,
                    bool allow_unavailable = false) {
  using clock = std::chrono::steady_clock;
  svc::VerifyService service(params, svc::ServiceConfig{.workers = workers,
                                                        .queue_capacity = kRequests,
                                                        .coalesce = coalesce,
                                                        .resolver = resolver});
  service.cache().warm(params, ids);

  std::vector<double> per_sig(n_samples);
  for (unsigned s = 0; s <= n_samples; ++s) {  // s == 0 is the warm-up run
    std::atomic<std::size_t> completed{0};
    std::atomic<std::size_t> verified{0};
    std::atomic<std::size_t> unavailable{0};
    const auto done = [&](const svc::VerifyResponse& response) {
      if (response.status == svc::Status::kVerified) {
        verified.fetch_add(1, std::memory_order_relaxed);
      } else if (response.status == svc::Status::kUnavailable) {
        unavailable.fetch_add(1, std::memory_order_relaxed);
      }
      completed.fetch_add(1, std::memory_order_relaxed);
    };
    const auto start = clock::now();
    for (const crypto::Bytes& frame : frames) (void)service.submit_bytes(frame, done);
    while (completed.load(std::memory_order_relaxed) < frames.size()) {
      std::this_thread::yield();
    }
    const auto stop = clock::now();
    const std::size_t expected =
        allow_unavailable ? verified.load() + unavailable.load() : verified.load();
    if (expected != frames.size() || verified.load() == 0) {
      std::fprintf(stderr, "bench_service: %s verified %zu/%zu (%zu unavailable) — aborting\n",
                   name.c_str(), verified.load(), frames.size(), unavailable.load());
      std::exit(1);
    }
    if (s == 0) continue;
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count());
    per_sig[s - 1] = ns / static_cast<double>(verified.load());
  }

  std::sort(per_sig.begin(), per_sig.end());
  double sum = 0;
  for (const double v : per_sig) sum += v;
  const double median = n_samples % 2 == 1
                            ? per_sig[n_samples / 2]
                            : (per_sig[n_samples / 2 - 1] + per_sig[n_samples / 2]) / 2.0;
  RunStats stats;
  stats.result = bench::BenchResult{.name = name,
                                    .iters = std::uint64_t{n_samples} * frames.size(),
                                    .median_ns = median,
                                    .mean_ns = sum / n_samples,
                                    .min_ns = per_sig.front()};
  stats.mean_batch_size = service.metrics().snapshot().mean_batch_size();
  std::printf("%-26s %12.1f ns/sig (median)  %8.0f sigs/s  mean batch %.2f\n",
              name.c_str(), stats.result.median_ns, 1e9 / stats.result.median_ns,
              stats.mean_batch_size);
  return stats;
}

/// Hand-rolled ns-per-op series for the kgcd paths (no service pipeline to
/// drain): `body` performs the whole op loop once and returns the op count.
/// One warm-up pass, then `n_samples` timed ones; median/mean/min like
/// run_config.
template <typename Body>
bench::BenchResult time_ops(const std::string& name, unsigned n_samples, Body&& body) {
  using clock = std::chrono::steady_clock;
  std::vector<double> per_op(n_samples);
  std::size_t ops = 0;
  for (unsigned s = 0; s <= n_samples; ++s) {  // s == 0 is the warm-up pass
    const auto start = clock::now();
    ops = body();
    const auto stop = clock::now();
    if (s == 0) continue;
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count());
    per_op[s - 1] = ns / static_cast<double>(ops);
  }
  std::sort(per_op.begin(), per_op.end());
  double sum = 0;
  for (const double v : per_op) sum += v;
  const double median = n_samples % 2 == 1
                            ? per_op[n_samples / 2]
                            : (per_op[n_samples / 2 - 1] + per_op[n_samples / 2]) / 2.0;
  std::printf("%-26s %12.1f ns/op  (median)  %8.0f ops/s\n", name.c_str(), median,
              1e9 / median);
  return bench::BenchResult{.name = name,
                            .iters = std::uint64_t{n_samples} * ops,
                            .median_ns = median,
                            .mean_ns = sum / n_samples,
                            .min_ns = per_op.front()};
}

}  // namespace

int main() {
  const unsigned n_samples = samples();

  crypto::HmacDrbg rng(std::uint64_t{0x5E21CE});
  const cls::Kgc kgc = cls::Kgc::setup(rng);
  const cls::Mccls scheme;
  std::vector<cls::UserKeys> signers;
  std::vector<std::string> ids;
  for (std::size_t s = 0; s < kSigners; ++s) {
    ids.push_back("node-" + std::to_string(s));
    signers.push_back(scheme.enroll(kgc, ids.back(), rng));
  }
  const auto uniform = make_corpus(kgc, signers, 0.0, rng);
  const auto zipf = make_corpus(kgc, signers, 1.0, rng);
  std::printf("bench_service: %zu signers, %zu requests per run, %u samples\n\n", kSigners,
              kRequests, n_samples);

  std::vector<bench::BenchResult> results;
  std::map<std::string, double> derived;
  const auto run = [&](const std::string& name, unsigned workers, bool coalesce,
                       std::span<const crypto::Bytes> frames) {
    const RunStats stats =
        run_config(name, n_samples, workers, coalesce, kgc.params(), ids, frames);
    results.push_back(stats.result);
    derived["batch_size_" + name] = stats.mean_batch_size;
    return stats.result.median_ns;
  };

  std::map<unsigned, double> uniform_ns;
  for (const unsigned w : {1u, 2u, 4u, 8u}) {
    uniform_ns[w] = run("verify_w" + std::to_string(w) + "_uniform", w, true, uniform);
  }
  for (const unsigned w : {1u, 2u, 4u, 8u}) {
    run("verify_w" + std::to_string(w) + "_zipf", w, true, zipf);
  }
  const double no_co_w1 = run("verify_w1_uniform_nocoalesce", 1, false, uniform);
  const double no_co_w4 = run("verify_w4_uniform_nocoalesce", 4, false, uniform);

  // ---- kgcd series: a daemon with every signer enrolled backs both the
  // directory micro-benchmarks and the verify-by-identity run.
  const std::string kgcd_dir = "build/bench_kgcd.data";
  std::filesystem::remove_all(kgcd_dir);
  kgc::Kgcd daemon(kgc.master_key_for_tests(),
                   kgc::KgcdConfig{.data_dir = kgcd_dir, .fsync = false});
  std::vector<crypto::Bytes> enroll_frames;
  enroll_frames.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    const cls::UserKeys& signer = signers[i % kSigners];
    enroll_frames.push_back(kgc::encode_kgc_request(
        kgc::KgcRequest{.op = kgc::KgcOp::kEnroll, .request_id = i + 1,
                        .id = signer.id, .pk_bytes = signer.public_key.to_bytes()}));
  }

  // Enroll: validation + directory admission + WAL append per op (the first
  // pass enrolls, later ones re-issue — both take the full logged path).
  results.push_back(time_ops("kgc_enroll", n_samples, [&] {
    for (const crypto::Bytes& frame : enroll_frames) (void)daemon.handle_frame(frame);
    return enroll_frames.size();
  }));
  // Hot resolution: the decoded-key LRU turns the steady state into a hash
  // lookup; cold resolution decompresses (one Fp square root) every time.
  results.push_back(time_ops("kgc_lookup_hot", n_samples, [&] {
    for (std::size_t i = 0; i < kRequests; ++i) {
      (void)daemon.directory().resolve(ids[i % kSigners]);
    }
    return kRequests;
  }));
  const double hot_ns = results.back().median_ns;
  results.push_back(time_ops("kgc_lookup_cold", n_samples, [&] {
    for (std::size_t round = 0; round < kRequests / kSigners; ++round) {
      daemon.directory().drop_caches();
      for (const std::string& id : ids) (void)daemon.directory().resolve(id);
    }
    return kRequests;
  }));
  derived["lookup_cold_vs_hot"] = results.back().median_ns / hot_ns;

  // ---- scale series: the million-identity store. The population enrolls
  // through the store+directory fast path (the same replay hooks recovery
  // uses): Kgcd::enroll pays ~0.6 ms of partial-key *extraction* per
  // identity, so going through it would make this a bench of issuance
  // crypto, not of the segmented store. Default 50k identities keeps CI
  // quick; MCCLS_BENCH_1M=1 (the nightly scale job) runs the full million.
  const std::size_t scale_population =
      std::getenv("MCCLS_BENCH_1M") != nullptr ? 1'000'000 : 50'000;
  const std::string scale_dir = "build/bench_kgcd_scale.data";
  std::filesystem::remove_all(scale_dir);
  kgc::Kgcd scale_daemon(kgc.master_key_for_tests(),
                         kgc::KgcdConfig{.data_dir = scale_dir, .fsync = false});
  std::vector<crypto::Bytes> signer_pk_bytes;
  for (const cls::UserKeys& signer : signers) {
    signer_pk_bytes.push_back(signer.public_key.to_bytes());
  }
  std::size_t scale_next = 0;
  const auto scale_enroll = [&](std::size_t count) {
    kgc::LogStore& store = scale_daemon.store();
    for (std::size_t i = 0; i < count; ++i) {
      const std::string id = "scale-" + std::to_string(scale_next++);
      const kgc::WalRecord record{.type = kgc::WalRecordType::kEnroll,
                                  .epoch = 0,
                                  .id = id,
                                  .pk_bytes = signer_pk_bytes[i % kSigners]};
      (void)store.append(kgc::shard_index(id, store.shards()), record);
      scale_daemon.directory().apply(record);
    }
  };
  std::printf("\npopulating scale store with %zu identities...\n", scale_population);
  scale_enroll(scale_population);

  // Enroll at full population: every op lands a fresh identity in an
  // already-huge store — admission + segmented append with rotation and the
  // shard index at its real size.
  constexpr std::size_t kScaleOps = 4096;
  results.push_back(time_ops("kgc_1m_enroll", n_samples, [&] {
    scale_enroll(kScaleOps);
    return kScaleOps;
  }));
  // Hot resolution at scale: a working set that fits the decoded-key LRU,
  // cycled out of a population three orders of magnitude larger.
  std::vector<std::string> hot_ids;
  for (std::size_t i = 0; i < 512; ++i) hot_ids.push_back("scale-" + std::to_string(i));
  results.push_back(time_ops("kgc_1m_lookup_hot", n_samples, [&] {
    for (std::size_t i = 0; i < kScaleOps; ++i) {
      (void)scale_daemon.directory().resolve(hot_ids[i % hot_ids.size()]);
    }
    return kScaleOps;
  }));
  const double scale_hot_ns = results.back().median_ns;

  // The same hot lookups served by a read replica that caught up from the
  // primary over the kReplicate protocol — the deployment shape where
  // followers carry lookup traffic. The ratio should be ~1.0: a replica's
  // directory is the same structure, fed by replication instead of enroll.
  const std::string replica_dir = "build/bench_kgcd_replica.data";
  std::filesystem::remove_all(replica_dir);
  kgc::Replica scale_replica(
      kgc::ReplicaConfig{.data_dir = replica_dir, .fsync = false},
      [&](const crypto::Bytes& request) -> std::optional<crypto::Bytes> {
        return scale_daemon.handle_frame(request);
      });
  if (!scale_replica.sync()) {
    std::fprintf(stderr, "bench_service: replica catch-up failed\n");
    return 1;
  }
  results.push_back(time_ops("kgc_replica_lookup", n_samples, [&] {
    for (std::size_t i = 0; i < kScaleOps; ++i) {
      (void)scale_replica.directory().resolve(hot_ids[i % hot_ids.size()]);
    }
    return kScaleOps;
  }));
  derived["replica_vs_primary_lookup"] = scale_hot_ns / results.back().median_ns;

  // Verify-by-identity: same uniform workload as verify_w4_uniform, but the
  // public key travels as an identity and is resolved from the directory —
  // through the full ResilientResolver pipeline, exactly as a production
  // verifier would deploy it. The 0.9 gate therefore also proves the
  // wrapper adds no meaningful overhead on the healthy path.
  const auto byid = make_corpus(kgc, signers, 0.0, rng, /*by_identity=*/true);
  svc::ResilientResolver byid_resilient(&daemon.directory());
  const RunStats byid_stats = run_config("verify_w4_byid", n_samples, 4, true,
                                         kgc.params(), ids, byid, &byid_resilient);
  results.push_back(byid_stats.result);
  derived["batch_size_verify_w4_byid"] = byid_stats.mean_batch_size;
  const double byid_w4 = byid_stats.result.median_ns;

  // Degraded directory: 10% of resolver calls fail transiently (no stall —
  // the series measures retry/breaker overhead, not sleeping). Requests the
  // retries cannot save answer kUnavailable; ns is per *verified* signature,
  // so the gate
  //
  //   bench_compare --gate BENCH_service.json verify_w4_byid verify_w4_byid_degraded 0.8
  //
  // enforces that a flaky directory costs at most 20% of useful by-identity
  // throughput — degradation, never collapse (and never kUnknownSigner).
  svc::FaultInjectingResolver degraded_fault(
      &daemon.directory(),
      svc::FaultConfig{.fail_rate = 0.1, .stall_ms = 0, .seed = 0xDE64ADEDULL});
  svc::ResilientResolver degraded_resilient(&degraded_fault);
  const RunStats degraded_stats =
      run_config("verify_w4_byid_degraded", n_samples, 4, true, kgc.params(), ids, byid,
                 &degraded_resilient, /*allow_unavailable=*/true);
  results.push_back(degraded_stats.result);
  const double byid_degraded_w4 = degraded_stats.result.median_ns;

  // Total outage, vouchers prefetched: every signer's chain is verified and
  // cached up front, the directory never answers (fail_rate 1.0 behind the
  // same resilient pipeline), and every request must still verify — no
  // allow_unavailable escape hatch. ns per signature at 4 workers, same
  // corpus as verify_w4_byid, so the 0.9 gate compares like with like.
  kgc::TrustAnchors offline_anchors;
  offline_anchors.add("kgc", daemon.voucher_issuer().public_key());
  svc::FaultInjectingResolver outage_fault(
      &daemon.directory(),
      svc::FaultConfig{.fail_rate = 1.0, .stall_ms = 0, .seed = 0x0FF11E5EULL});
  svc::ResilientResolver outage_resilient(&outage_fault);
  kgc::VoucherResolverConfig offline_config;
  offline_config.now = [] { return std::uint64_t{1'000}; };  // logical clock
  offline_config.current_epoch = [] { return cls::Epoch{0}; };
  kgc::VoucherVerifyingResolver offline_resolver(&outage_resilient, &offline_anchors,
                                                 std::move(offline_config));
  std::uint64_t voucher_serial = 0;
  for (const cls::UserKeys& signer : signers) {
    const kgc::Voucher voucher = daemon.voucher_issuer().issue(
        cls::scoped_identity(signer.id, 0), signer.public_key.to_bytes(),
        /*epoch=*/0, /*not_before=*/0, /*not_after=*/1'000'000, ++voucher_serial);
    if (offline_resolver.ingest({voucher}) != kgc::ChainVerdict::kOk) {
      std::fprintf(stderr, "bench_service: voucher ingest failed for %s\n",
                   signer.id.c_str());
      return 1;
    }
  }
  const RunStats offline_stats = run_config("verify_w4_byid_offline", n_samples, 4, true,
                                            kgc.params(), ids, byid, &offline_resolver);
  results.push_back(offline_stats.result);
  derived["byid_offline_ratio_w4"] = byid_w4 / offline_stats.result.median_ns;

  derived["speedup_w4_vs_w1_uniform"] = uniform_ns[1] / uniform_ns[4];
  derived["speedup_w8_vs_w1_uniform"] = uniform_ns[1] / uniform_ns[8];
  derived["coalesce_gain_w1"] = no_co_w1 / uniform_ns[1];
  derived["coalesce_gain_w4"] = no_co_w4 / uniform_ns[4];
  derived["byid_throughput_ratio_w4"] = uniform_ns[4] / byid_w4;
  derived["byid_degraded_ratio_w4"] = byid_w4 / byid_degraded_w4;

  std::printf("\nspeedup w4/w1 (uniform): %.2fx   coalesce gain at w4: %.2fx   "
              "by-identity ratio at w4: %.2fx   degraded ratio: %.2fx\n",
              derived["speedup_w4_vs_w1_uniform"], derived["coalesce_gain_w4"],
              derived["byid_throughput_ratio_w4"], derived["byid_degraded_ratio_w4"]);

  const char* path_env = std::getenv("MCCLS_BENCH_JSON");
  const std::string path = path_env != nullptr ? path_env : "BENCH_service.json";
  return bench::write_bench_json(path, "service", results, derived) ? 0 : 1;
}
