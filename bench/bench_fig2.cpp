// Figure 2: RREQ ratio vs node speed, AODV vs McCLS.
// Expected shape: both curves rise with speed (more route breaks, more
// discovery floods); AODV and McCLS stay close to each other.
#include "fig_common.hpp"

int main() {
  using namespace mccls::bench;
  run_figure("=== Figure 2: RREQ Ratio ===",
             "(RREQ initiated + forwarded + retried) / (data sent + forwarded)",
             {
                 {"AODV", SecurityMode::kNone, AttackType::kNone},
                 {"McCLS", SecurityMode::kModeled, AttackType::kNone},
             },
             [](const ScenarioResult& r) { return r.rreq_ratio(); });
  return 0;
}
