// Paradigm comparison (extension; quantifies the paper's §1 motivation):
// traditional PKI (BLS + certificate), identity-based (Cha-Cheon IBS) and
// certificateless (McCLS) measured on the same pairing substrate.
//
// Expected shape: PKI pays certificate bytes + an extra signature
// verification per message (amortizable per identity); IBS drops the
// certificate but re-introduces escrow (a trust cost, not a CPU one); McCLS
// verification is the cheapest of the three — the paper's selling point.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "cls/mccls.hpp"
#include "cls/paradigms.hpp"

namespace {

using namespace mccls;

struct World {
  crypto::HmacDrbg rng{std::uint64_t{0xFA6AD16}};
  // PKI.
  cls::BlsPki pki{rng};
  cls::BlsKeyPair pki_user = cls::bls_keygen(rng);
  cls::Certificate cert = pki.issue("alice", pki_user.public_key);
  // IBS.
  cls::ChaCheonIbs pkg{rng};
  ec::G1 ibs_key = pkg.extract("alice");
  // CLS.
  cls::Kgc kgc = cls::Kgc::setup(rng);
  cls::Mccls mccls;
  cls::UserKeys cls_user = mccls.enroll(kgc, "alice", rng);
  cls::PairingCache cache;

  crypto::Bytes message = crypto::Bytes(64, 0x42);
};

World& world() {
  static World w;
  return w;
}

void BM_PkiSign(benchmark::State& state) {
  auto& w = world();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cls::bls_sign(w.pki_user.secret, w.message));
  }
}
BENCHMARK(BM_PkiSign);

void BM_PkiVerifyWithCertificate(benchmark::State& state) {
  auto& w = world();
  const ec::G1 sig = cls::bls_sign(w.pki_user.secret, w.message);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.pki.verify_signed_message(w.cert, w.message, sig));
  }
}
BENCHMARK(BM_PkiVerifyWithCertificate);

void BM_PkiVerifyCertCached(benchmark::State& state) {
  // Deployment shape: the certificate is validated once per identity.
  auto& w = world();
  const ec::G1 sig = cls::bls_sign(w.pki_user.secret, w.message);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cls::bls_verify(w.pki_user.public_key, w.message, sig));
  }
}
BENCHMARK(BM_PkiVerifyCertCached);

void BM_IbsSign(benchmark::State& state) {
  auto& w = world();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cls::ChaCheonIbs::sign(w.ibs_key, "alice", w.message, w.rng));
  }
}
BENCHMARK(BM_IbsSign);

void BM_IbsVerify(benchmark::State& state) {
  auto& w = world();
  const cls::IbsSignature sig = cls::ChaCheonIbs::sign(w.ibs_key, "alice", w.message, w.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.pkg.verify("alice", w.message, sig));
  }
}
BENCHMARK(BM_IbsVerify);

void BM_ClsSign(benchmark::State& state) {
  auto& w = world();
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.mccls.sign(w.kgc.params(), w.cls_user, w.message, w.rng));
  }
}
BENCHMARK(BM_ClsSign);

void BM_ClsVerifyCached(benchmark::State& state) {
  auto& w = world();
  const auto sig = w.mccls.sign(w.kgc.params(), w.cls_user, w.message, w.rng);
  (void)w.mccls.verify(w.kgc.params(), "alice", w.cls_user.public_key, w.message, sig,
                       &w.cache);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.mccls.verify(w.kgc.params(), "alice", w.cls_user.public_key,
                                            w.message, sig, &w.cache));
  }
}
BENCHMARK(BM_ClsVerifyCached);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Paradigm trade-offs (paper §1) ===\n");
  std::printf("%-14s %-16s %-12s %-22s\n", "paradigm", "certificates?", "escrow?",
              "per-message transport");
  std::printf("%-14s %-16s %-12s %-22s\n", "PKI (BLS)", "yes (CA chain)", "no",
              "sig 33 B + cert ~70 B");
  std::printf("%-14s %-16s %-12s %-22s\n", "ID-PKC (IBS)", "no", "YES (PKG)", "sig 66 B");
  std::printf("%-14s %-16s %-12s %-22s\n", "CL-PKC(McCLS)", "no", "no", "sig 98 B + pk 34 B");
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
