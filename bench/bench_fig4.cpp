// Figure 4: packet delivery ratio vs node speed under 2-node black-hole and
// 2-node rushing attacks, AODV vs McCLS.
// Expected shape: plain AODV collapses under both attacks (the paper reports
// 43% PDR at 5 m/s under rushing); McCLS stays near its attack-free PDR
// because forged/unauthenticated control packets are rejected.
#include "fig_common.hpp"

int main() {
  using namespace mccls::bench;
  run_figure("=== Figure 4: Packet Delivery Ratio under attack ===",
             "packet delivery ratio",
             {
                 {"AODV+bh", SecurityMode::kNone, AttackType::kBlackHole},
                 {"AODV+rush", SecurityMode::kNone, AttackType::kRushing},
                 {"McCLS+bh", SecurityMode::kModeled, AttackType::kBlackHole},
                 {"McCLS+rush", SecurityMode::kModeled, AttackType::kRushing},
             },
             [](const ScenarioResult& r) { return r.pdr(); });
  return 0;
}
