// Shared driver for the Figure 1-5 benchmarks: runs the paper's §6 scenario
// matrix (20 nodes, 1500x300 m, RWP, pause 0, speeds 0..20 m/s) and prints
// aligned series the way the paper's figures plot them.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "aodv/scenario.hpp"

namespace mccls::bench {

using aodv::AttackType;
using aodv::ScenarioConfig;
using aodv::ScenarioResult;
using aodv::SecurityMode;

/// The speed sweep the paper's x-axes use.
inline const std::vector<double>& speeds() {
  static const std::vector<double> kSpeeds = {0, 5, 10, 15, 20};
  return kSpeeds;
}

/// Replications per point; raise via MCCLS_BENCH_SEEDS for tighter curves.
inline unsigned replications() {
  if (const char* env = std::getenv("MCCLS_BENCH_SEEDS"); env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 5;
}

/// Simulated seconds per replication (default: the paper-scale 300 s).
inline double sim_duration() {
  if (const char* env = std::getenv("MCCLS_BENCH_DURATION"); env != nullptr) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return 300.0;
}

inline ScenarioConfig paper_config(double max_speed, SecurityMode security,
                                   AttackType attack) {
  ScenarioConfig cfg;
  cfg.max_speed = max_speed;
  cfg.security = security;
  cfg.attack = attack;
  cfg.num_attackers = attack == AttackType::kNone ? 0 : 2;  // paper: 2-node attacks
  cfg.duration = sim_duration();
  cfg.seed = 20080617;  // ICDCS'08 week; any constant works
  return cfg;
}

struct Series {
  std::string label;
  SecurityMode security;
  AttackType attack;
};

/// Mean and standard deviation of the metric across per-seed replications.
struct PointStats {
  double mean = 0;
  double sd = 0;
};

inline PointStats measure_point(ScenarioConfig cfg, unsigned seeds,
                                const std::function<double(const ScenarioResult&)>& metric) {
  double sum = 0;
  double sum_sq = 0;
  for (unsigned i = 0; i < seeds; ++i) {
    const double v = metric(aodv::run_scenario(cfg));
    sum += v;
    sum_sq += v * v;
    ++cfg.seed;
  }
  const double mean = sum / seeds;
  const double var = seeds > 1 ? (sum_sq - seeds * mean * mean) / (seeds - 1) : 0.0;
  return PointStats{.mean = mean, .sd = var > 0 ? std::sqrt(var) : 0.0};
}

/// Runs the sweep for every series and prints one row per speed as
/// "mean±sd" across the replications. Set MCCLS_BENCH_CSV=1 for
/// machine-readable output (one line per point) instead of the table.
inline void run_figure(const std::string& title, const std::string& metric_name,
                       const std::vector<Series>& series,
                       const std::function<double(const ScenarioResult&)>& metric) {
  const bool csv = std::getenv("MCCLS_BENCH_CSV") != nullptr;
  if (csv) {
    std::printf("figure,series,speed_mps,mean,sd,replications,sim_seconds\n");
  } else {
    std::printf("%s\n", title.c_str());
    std::printf("%s vs. max node speed; mean±sd over %u replications x %.0f s simulated\n\n",
                metric_name.c_str(), replications(), sim_duration());
    std::printf("%-12s", "speed(m/s)");
    for (const auto& s : series) std::printf("  %18s", s.label.c_str());
    std::printf("\n");
  }
  for (const double speed : speeds()) {
    if (!csv) std::printf("%-12.0f", speed);
    for (const auto& s : series) {
      const ScenarioConfig cfg = paper_config(speed, s.security, s.attack);
      const PointStats stats = measure_point(cfg, replications(), metric);
      if (csv) {
        std::printf("%s,%s,%.0f,%.6f,%.6f,%u,%.0f\n", title.c_str(), s.label.c_str(),
                    speed, stats.mean, stats.sd, replications(), sim_duration());
      } else {
        char cell[32];
        std::snprintf(cell, sizeof cell, "%.4f±%.4f", stats.mean, stats.sd);
        std::printf("  %18s", cell);
      }
      std::fflush(stdout);
    }
    if (!csv) std::printf("\n");
  }
  if (!csv) std::printf("\n");
}

}  // namespace mccls::bench
