// Figure 5: packet drop ratio (data discarded by attackers / data sent) vs
// node speed under 2-node black-hole and rushing attacks.
// Expected shape: plain AODV peaks around 19% (black-hole) and 57% (rushing)
// in the paper; under McCLS both curves are identically zero — attackers
// hold no valid partial keys, so they never get onto forwarding paths.
#include "fig_common.hpp"

int main() {
  using namespace mccls::bench;
  run_figure("=== Figure 5: Packet Drop Ratio under attack ===",
             "data discarded by attackers / data sent",
             {
                 {"AODV+bh", SecurityMode::kNone, AttackType::kBlackHole},
                 {"AODV+rush", SecurityMode::kNone, AttackType::kRushing},
                 {"McCLS+bh", SecurityMode::kModeled, AttackType::kBlackHole},
                 {"McCLS+rush", SecurityMode::kModeled, AttackType::kRushing},
             },
             [](const ScenarioResult& r) { return r.drop_ratio(); });
  return 0;
}
