// Throughput of the src/netd socket front end: verified signatures per
// second over real loopback TCP, as a function of connection count, worker
// count, and the by-identity fraction — plus request latency percentiles
// measured at the client.
//
// Every series replays the same pre-signed corpus bench_service uses, so
// the medians are directly comparable across the two files: both record
// ns per verified signature, and the acceptance gate
//
//   bench_compare --gate-across BENCH_service.json BENCH_net.json \
//       verify_w4_uniform net_c16_w4_uniform 0.7
//
// enforces that pushing every request and reply through the epoll loop,
// the frame codec, and the kernel's loopback path costs at most 30% of
// in-process throughput at 4 workers. The other series scan the lever
// space: one connection serializes the wire (pipelining is the only
// concurrency), 64 connections exercise accept/backpressure churn, one
// worker bounds the coalescing win, and the byid row carries kind-3 frames
// whose keys resolve from a kgcd directory behind the server.
//
// Latency rows (`*_p50` / `*_p99`) are client-observed request round trips
// in ns — send-to-response matched by request_id, pooled across the timed
// samples of that series.
//
// Knobs: MCCLS_BENCH_JSON (output path, default BENCH_net.json),
//        MCCLS_BENCH_SAMPLES (timed runs per config, default 5).
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "cls/mccls.hpp"
#include "kgc/kgcd.hpp"
#include "netd/client.hpp"
#include "netd/front.hpp"
#include "netd/server.hpp"
#include "svc/service.hpp"

namespace {

using namespace mccls;

// Mirrors bench_service: 64 signers x 1024 requests keeps a 4-worker
// coalescer at the same operating point, so the cross-file gate compares
// the transport, not a different workload.
constexpr std::size_t kSigners = 64;
constexpr std::size_t kRequests = 1024;

unsigned samples() {
  if (const char* env = std::getenv("MCCLS_BENCH_SAMPLES"); env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 5;
}

std::vector<crypto::Bytes> make_corpus(const cls::Kgc& kgc,
                                       std::span<const cls::UserKeys> signers,
                                       crypto::HmacDrbg& rng, bool by_identity) {
  const cls::Mccls scheme;
  std::vector<crypto::Bytes> frames;
  frames.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    const cls::UserKeys& signer = signers[i % signers.size()];
    crypto::ByteWriter msg;
    msg.put_u64(i);
    msg.put_field("bench: net payload");
    svc::VerifyRequest request{.request_id = i + 1,
                               .scheme = "McCLS",
                               .id = signer.id,
                               .by_identity = by_identity,
                               .public_key =
                                   by_identity ? cls::PublicKey{} : signer.public_key,
                               .message = msg.take(),
                               .signature = {}};
    request.signature = scheme.sign(kgc.params(), signer, request.message, rng);
    frames.push_back(svc::encode_request(request));
  }
  return frames;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

struct NetRun {
  bench::BenchResult throughput;  ///< ns per verified signature
  bench::BenchResult p50;         ///< client round-trip latency, pooled
  bench::BenchResult p99;
  netd::NetdMetrics::Snapshot net;
};

/// One server per config; `samples` timed MultiClient runs (plus a warm-up)
/// each replaying the full corpus over `connections` loopback connections.
NetRun run_config(const std::string& name, unsigned n_samples, unsigned workers,
                  std::size_t connections, const cls::SystemParams& params,
                  std::span<const std::string> ids,
                  std::span<const crypto::Bytes> frames,
                  svc::PkResolver* resolver = nullptr) {
  using clock = std::chrono::steady_clock;
  svc::VerifyService service(params, svc::ServiceConfig{.workers = workers,
                                                        .queue_capacity = kRequests,
                                                        .resolver = resolver});
  service.cache().warm(params, ids);
  netd::VerifydFrontEnd front(service);
  netd::NetServer server(
      netd::NetdConfig{.max_connections = connections + 16, .tick_ms = 5}, &front);
  if (!server.start()) {
    std::fprintf(stderr, "bench_net: %s: %s\n", name.c_str(), server.error().c_str());
    std::exit(1);
  }

  std::vector<double> per_sig(n_samples);
  std::vector<double> latencies;  // pooled over the timed samples
  latencies.reserve(std::size_t{n_samples} * kRequests);
  for (unsigned s = 0; s <= n_samples; ++s) {  // s == 0 is the warm-up run
    std::vector<clock::time_point> sent(frames.size());
    std::size_t verified = 0;
    std::vector<double> run_latency(frames.size(), 0.0);
    netd::MultiClient client(netd::MultiClient::Config{.port = server.port(),
                                                       .connections = connections,
                                                       .pipeline = 16,
                                                       .run_timeout_ms = 300000});
    const auto start = clock::now();
    const bool ok = client.run(
        // Frame i goes to connection i % C as its (i / C)-th request.
        [&](std::size_t conn, std::size_t seq) -> std::optional<crypto::Bytes> {
          const std::size_t index = seq * connections + conn;
          if (index >= frames.size()) return std::nullopt;
          return frames[index];
        },
        [&](std::size_t, crypto::Bytes payload) {
          const auto response = svc::decode_response(payload);
          if (!response) return;
          if (response->status == svc::Status::kVerified) ++verified;
          const std::size_t index = static_cast<std::size_t>(response->request_id) - 1;
          if (index < frames.size()) {
            run_latency[index] = static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                     sent[index])
                    .count());
          }
        },
        [&](std::size_t conn, std::size_t seq, clock::time_point when) {
          const std::size_t index = seq * connections + conn;
          if (index < frames.size()) sent[index] = when;
        });
    const auto stop = clock::now();
    if (!ok || verified != frames.size()) {
      std::fprintf(stderr, "bench_net: %s verified %zu/%zu (%s) — aborting\n",
                   name.c_str(), verified, frames.size(), client.error().c_str());
      std::exit(1);
    }
    if (s == 0) continue;
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count());
    per_sig[s - 1] = ns / static_cast<double>(verified);
    latencies.insert(latencies.end(), run_latency.begin(), run_latency.end());
  }
  NetRun out;
  out.net = server.metrics().snapshot();
  server.stop();

  std::sort(per_sig.begin(), per_sig.end());
  double sum = 0;
  for (const double v : per_sig) sum += v;
  const double median = n_samples % 2 == 1
                            ? per_sig[n_samples / 2]
                            : (per_sig[n_samples / 2 - 1] + per_sig[n_samples / 2]) / 2.0;
  out.throughput = bench::BenchResult{.name = name,
                                      .iters = std::uint64_t{n_samples} * frames.size(),
                                      .median_ns = median,
                                      .mean_ns = sum / n_samples,
                                      .min_ns = per_sig.front()};
  std::sort(latencies.begin(), latencies.end());
  const auto latency_row = [&](const char* suffix, double p) {
    return bench::BenchResult{.name = name + suffix,
                              .iters = latencies.size(),
                              .median_ns = percentile(latencies, p),
                              .mean_ns = percentile(latencies, p),
                              .min_ns = latencies.empty() ? 0.0 : latencies.front()};
  };
  out.p50 = latency_row("_p50", 0.50);
  out.p99 = latency_row("_p99", 0.99);
  std::printf("%-22s %12.1f ns/sig (median)  %8.0f sigs/s  p50 %7.2f ms  p99 %7.2f ms\n",
              name.c_str(), median, 1e9 / median, out.p50.median_ns / 1e6,
              out.p99.median_ns / 1e6);
  return out;
}

}  // namespace

int main() {
  const unsigned n_samples = samples();

  crypto::HmacDrbg rng(std::uint64_t{0x5E21CE});  // same seed family as bench_service
  const cls::Kgc kgc = cls::Kgc::setup(rng);
  const cls::Mccls scheme;
  std::vector<cls::UserKeys> signers;
  std::vector<std::string> ids;
  for (std::size_t s = 0; s < kSigners; ++s) {
    ids.push_back("node-" + std::to_string(s));
    signers.push_back(scheme.enroll(kgc, ids.back(), rng));
  }
  const auto uniform = make_corpus(kgc, signers, rng, /*by_identity=*/false);
  const auto byid = make_corpus(kgc, signers, rng, /*by_identity=*/true);
  std::printf("bench_net: %zu signers, %zu requests per run over loopback TCP, "
              "%u samples\n\n", kSigners, kRequests, n_samples);

  std::vector<bench::BenchResult> results;
  std::map<std::string, double> derived;
  const auto run = [&](const std::string& name, unsigned workers,
                       std::size_t connections, std::span<const crypto::Bytes> frames,
                       svc::PkResolver* resolver = nullptr) {
    const NetRun r = run_config(name, n_samples, workers, connections, kgc.params(),
                                ids, frames, resolver);
    results.push_back(r.throughput);
    results.push_back(r.p50);
    results.push_back(r.p99);
    derived["pauses_" + name] = static_cast<double>(r.net.backpressure_pauses);
    return r.throughput.median_ns;
  };

  // Connections x workers over the uniform pk-inline corpus. c16_w4 is the
  // gated row — same workload and worker count as verify_w4_uniform.
  const double c16_w4 = run("net_c16_w4_uniform", 4, 16, uniform);
  run("net_c1_w4_uniform", 4, 1, uniform);
  run("net_c64_w4_uniform", 4, 64, uniform);
  const double c16_w1 = run("net_c16_w1_uniform", 1, 16, uniform);

  // By-identity over the wire: kind-3 frames, keys resolved from a kgcd
  // directory behind the server (the bench_service byid row's transport
  // twin). The daemon reuses bench_service's on-disk layout convention.
  const std::string kgcd_dir = "build/bench_net_kgcd.data";
  std::filesystem::remove_all(kgcd_dir);
  kgc::Kgcd daemon(kgc.master_key_for_tests(),
                   kgc::KgcdConfig{.data_dir = kgcd_dir, .fsync = false});
  for (std::size_t s = 0; s < kSigners; ++s) {
    if (daemon.enroll(ids[s], signers[s].public_key.to_bytes()).status !=
        kgc::KgcStatus::kOk) {
      std::fprintf(stderr, "bench_net: enroll of %s failed\n", ids[s].c_str());
      return 1;
    }
  }
  svc::ResilientResolver resolver(&daemon.directory());
  const double c16_w4_byid = run("net_c16_w4_byid", 4, 16, byid, &resolver);

  derived["workers_gain_c16"] = c16_w1 / c16_w4;
  derived["byid_ratio_c16_w4"] = c16_w4 / c16_w4_byid;

  std::printf("\nworker gain at 16 connections (w4/w1): %.2fx   "
              "by-identity ratio: %.2fx\n",
              derived["workers_gain_c16"], derived["byid_ratio_c16_w4"]);

  const char* path_env = std::getenv("MCCLS_BENCH_JSON");
  const std::string path = path_env != nullptr ? path_env : "BENCH_net.json";
  return bench::write_bench_json(path, "net", results, derived) ? 0 : 1;
}
