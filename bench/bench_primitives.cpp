// Micro-benchmarks of the cryptographic substrate: field arithmetic, curve
// operations, the Tate pairing, and the hash oracles. These calibrate the
// cost model used by the simulator (scenario.cpp: derive_crypto_costs) and
// back the design notes in DESIGN.md §8 (e.g. extgcd-based inversion in the
// affine Miller loop).
#include <benchmark/benchmark.h>

#include "crypto/drbg.hpp"
#include "crypto/hash.hpp"
#include "crypto/sha256.hpp"
#include "pairing/pairing.hpp"

namespace {

using namespace mccls;
using math::Fp;
using math::Fq;
using math::U256;

Fp sample_fp(std::uint64_t seed) {
  crypto::HmacDrbg rng(seed);
  auto bytes = rng.generate(32);
  return Fp::from_u256(U256::from_be_bytes(bytes));
}

void BM_FpMul(benchmark::State& state) {
  Fp a = sample_fp(1);
  const Fp b = sample_fp(2);
  for (auto _ : state) {
    a = a * b;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FpMul);

void BM_FpSquare(benchmark::State& state) {
  Fp a = sample_fp(3);
  for (auto _ : state) {
    a = a.square();
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FpSquare);

void BM_FpInvExtgcd(benchmark::State& state) {
  Fp a = sample_fp(4);
  for (auto _ : state) {
    a = a.inv() + Fp::one();  // keep the value moving
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FpInvExtgcd);

void BM_FpInvFermat(benchmark::State& state) {
  // Ablation partner for the extgcd inverse (DESIGN.md §8.3).
  U256 p_minus_2;
  sub(p_minus_2, Fp::modulus(), U256::from_u64(2));
  Fp a = sample_fp(5);
  for (auto _ : state) {
    a = a.pow(p_minus_2) + Fp::one();
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FpInvFermat);

void BM_G1ScalarMult(benchmark::State& state) {
  crypto::HmacDrbg rng(std::uint64_t{6});
  const ec::G1& g = ec::G1::generator();
  Fq k = rng.next_nonzero_fq();
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.mul(k));
  }
}
BENCHMARK(BM_G1ScalarMult);

void BM_G1DoubleScalarMult(benchmark::State& state) {
  // Ablation: Shamir's trick vs two separate muls (the McCLS verify path).
  crypto::HmacDrbg rng(std::uint64_t{66});
  const ec::G1& g = ec::G1::generator();
  const ec::G1 p = g.mul(U256::from_u64(99));
  const U256 a = rng.next_nonzero_fq().to_u256();
  const U256 b = rng.next_nonzero_fq().to_u256();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec::G1::mul2(a, g, b, p));
  }
}
BENCHMARK(BM_G1DoubleScalarMult);

void BM_G1TwoSeparateMuls(benchmark::State& state) {
  crypto::HmacDrbg rng(std::uint64_t{66});
  const ec::G1& g = ec::G1::generator();
  const ec::G1 p = g.mul(U256::from_u64(99));
  const U256 a = rng.next_nonzero_fq().to_u256();
  const U256 b = rng.next_nonzero_fq().to_u256();
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.mul(a) + p.mul(b));
  }
}
BENCHMARK(BM_G1TwoSeparateMuls);

void BM_G1FixedBaseMult(benchmark::State& state) {
  // Ablation: precomputed generator table vs generic scalar mult.
  crypto::HmacDrbg rng(std::uint64_t{67});
  const U256 k = rng.next_nonzero_fq().to_u256();
  (void)ec::G1::mul_generator(U256::one());  // build the table outside timing
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec::G1::mul_generator(k));
  }
}
BENCHMARK(BM_G1FixedBaseMult);

void BM_G1Add(benchmark::State& state) {
  const ec::G1 a = ec::G1::generator().mul(U256::from_u64(123));
  const ec::G1 b = ec::G1::generator().mul(U256::from_u64(456));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a + b);
  }
}
BENCHMARK(BM_G1Add);

void BM_Pairing(benchmark::State& state) {
  const ec::G1 p = ec::G1::generator().mul(U256::from_u64(31337));
  const ec::G1 q = ec::G1::generator().mul(U256::from_u64(271828));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pairing::pair(p, q));
  }
}
BENCHMARK(BM_Pairing);

void BM_PairingAffine(benchmark::State& state) {
  // Ablation partner: the retained affine-coordinate Miller loop that the
  // projective pair() replaced (see DESIGN.md §8.3, BENCH_pairing.json).
  const ec::G1 p = ec::G1::generator().mul(U256::from_u64(31337));
  const ec::G1 q = ec::G1::generator().mul(U256::from_u64(271828));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pairing::pair_affine(p, q));
  }
}
BENCHMARK(BM_PairingAffine);

void BM_GtPow(benchmark::State& state) {
  const pairing::Gt g = pairing::pair(ec::G1::generator(), ec::G1::generator());
  crypto::HmacDrbg rng(std::uint64_t{7});
  const Fq e = rng.next_nonzero_fq();
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.pow(e));
  }
}
BENCHMARK(BM_GtPow);

void BM_HashToG1(benchmark::State& state) {
  std::uint32_t ctr = 0;
  for (auto _ : state) {
    crypto::ByteWriter w;
    w.put_u32(ctr++);
    benchmark::DoNotOptimize(crypto::hash_to_g1("bench", w.bytes()));
  }
}
BENCHMARK(BM_HashToG1);

void BM_HashToFq(benchmark::State& state) {
  std::uint32_t ctr = 0;
  for (auto _ : state) {
    crypto::ByteWriter w;
    w.put_u32(ctr++);
    benchmark::DoNotOptimize(crypto::hash_to_fq("bench", w.bytes()));
  }
}
BENCHMARK(BM_HashToFq);

void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::digest(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

}  // namespace

BENCHMARK_MAIN();
