// Protocol comparison (extension; no paper counterpart): AODV vs DSR under
// the same field, workload, McCLS extension and attacks — the pairing of
// protocols the paper's reference [12] secures. Expected shape: similar
// delivery when clean; DSR pays per-packet source-route bytes but fewer
// discovery floods; the McCLS extension nullifies the attackers' drop ratio
// on both protocols alike.
#include <cstdio>

#include "dsr/dsr_scenario.hpp"

namespace {

using namespace mccls;
using aodv::AttackType;
using aodv::ScenarioConfig;
using aodv::ScenarioResult;
using aodv::SecurityMode;

unsigned reps() {
  if (const char* env = std::getenv("MCCLS_BENCH_SEEDS"); env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 5;
}

ScenarioConfig make_config(double speed, SecurityMode security, AttackType attack) {
  ScenarioConfig cfg;
  cfg.max_speed = speed;
  cfg.security = security;
  cfg.attack = attack;
  cfg.num_attackers = attack == AttackType::kNone ? 0 : 2;
  cfg.duration = 300;
  cfg.seed = 20080617;
  return cfg;
}

void row(const char* label, const ScenarioResult& r) {
  std::printf("%-28s %8.3f %8.3f %10.2f %10.3f %12llu\n", label, r.pdr(), r.drop_ratio(),
              r.avg_delay() * 1e3, r.rreq_ratio(),
              static_cast<unsigned long long>(r.channel.bytes_transmitted / 1024));
}

}  // namespace

int main() {
  std::printf("=== Protocol comparison: AODV vs DSR (speed 10 m/s) ===\n");
  std::printf("%u replications x 300 s per row\n\n", reps());
  std::printf("%-28s %8s %8s %10s %10s %12s\n", "configuration", "PDR", "drop",
              "delay(ms)", "RREQratio", "KiB on air");

  struct Case {
    const char* label;
    SecurityMode security;
    AttackType attack;
  };
  const Case cases[] = {
      {"clean", SecurityMode::kNone, AttackType::kNone},
      {"black hole", SecurityMode::kNone, AttackType::kBlackHole},
      {"rushing", SecurityMode::kNone, AttackType::kRushing},
      {"McCLS", SecurityMode::kModeled, AttackType::kNone},
      {"McCLS + black hole", SecurityMode::kModeled, AttackType::kBlackHole},
      {"McCLS + rushing", SecurityMode::kModeled, AttackType::kRushing},
  };

  for (const auto& c : cases) {
    const ScenarioConfig cfg = make_config(10.0, c.security, c.attack);
    char label[64];
    std::snprintf(label, sizeof label, "AODV %s", c.label);
    row(label, aodv::run_scenario_averaged(cfg, reps()));
    std::snprintf(label, sizeof label, "DSR  %s", c.label);
    row(label, dsr::run_dsr_scenario_averaged(cfg, reps()));
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
