// Scenario-level ablations (DESIGN.md §8): the design knobs behind the
// figure reproductions, each isolated at one representative operating point.
//
//   A. Link-failure detection: HELLO beacons (paper-era, lossy window) vs
//      instant MAC-ACK feedback.
//   B. Attacker placement: pinned centerline vs roaming with the crowd.
//   C. Per-scheme crypto latency (Table 1 costs) on secured-AODV delay —
//      why the paper argues only a 1-pairing verifier suits CPS timing.
//   D. RREQ forwarding jitter vs the rushing attacker's capture rate.
#include <cstdio>

#include "aodv/scenario.hpp"

namespace {

using namespace mccls::aodv;

ScenarioConfig base_config() {
  ScenarioConfig cfg;
  cfg.max_speed = 10;
  cfg.duration = 300;
  cfg.seed = 20080617;
  return cfg;
}

unsigned reps() {
  if (const char* env = std::getenv("MCCLS_BENCH_SEEDS"); env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 5;
}

void ablation_detection() {
  std::printf("--- A. link-failure detection (speed 10 m/s, no attack) ---\n");
  std::printf("%-24s %8s %12s %12s\n", "mode", "PDR", "delay(ms)", "RREQratio");
  for (const bool feedback : {false, true}) {
    ScenarioConfig cfg = base_config();
    cfg.aodv.link_layer_feedback = feedback;
    const ScenarioResult r = run_scenario_averaged(cfg, reps());
    std::printf("%-24s %8.3f %12.2f %12.3f\n",
                feedback ? "MAC-ACK feedback" : "HELLO (2 s window)", r.pdr(),
                r.avg_delay() * 1e3, r.rreq_ratio());
  }
  std::printf("\n");
}

void ablation_placement() {
  std::printf("--- B. attacker placement (speed 5 m/s, plain AODV) ---\n");
  std::printf("%-12s %-12s %8s %8s\n", "attack", "placement", "drop", "PDR");
  for (const AttackType attack : {AttackType::kBlackHole, AttackType::kRushing}) {
    for (const bool pinned : {true, false}) {
      ScenarioConfig cfg = base_config();
      cfg.max_speed = 5;
      cfg.attack = attack;
      cfg.pin_attackers = pinned;
      const ScenarioResult r = run_scenario_averaged(cfg, reps());
      std::printf("%-12s %-12s %8.3f %8.3f\n",
                  attack == AttackType::kBlackHole ? "black-hole" : "rushing",
                  pinned ? "pinned" : "roaming", r.drop_ratio(), r.pdr());
    }
  }
  std::printf("\n");
}

void ablation_scheme_costs() {
  std::printf("--- C. CLS scheme choice vs secured-AODV delay (speed 10 m/s) ---\n");
  std::printf("%-8s %12s %14s %10s %8s\n", "scheme", "sign(ms)", "verify(ms)",
              "delay(ms)", "PDR");
  {
    ScenarioConfig cfg = base_config();
    const ScenarioResult r = run_scenario_averaged(cfg, reps());
    std::printf("%-8s %12s %14s %10.2f %8.3f\n", "none", "-", "-", r.avg_delay() * 1e3,
                r.pdr());
  }
  for (const char* scheme : {"AP", "ZWXF", "YHG", "McCLS"}) {
    ScenarioConfig cfg = base_config();
    cfg.security = SecurityMode::kModeled;
    cfg.scheme = scheme;
    const CryptoCosts costs = derive_crypto_costs(scheme);
    const ScenarioResult r = run_scenario_averaged(cfg, reps());
    std::printf("%-8s %12.1f %14.1f %10.2f %8.3f\n", scheme, costs.sign_delay * 1e3,
                costs.verify_delay * 1e3, r.avg_delay() * 1e3, r.pdr());
  }
  std::printf("\n");
}

void ablation_jitter() {
  std::printf("--- D. forwarding jitter vs rushing capture (speed 5 m/s) ---\n");
  std::printf("%-12s %8s %8s\n", "jitter(ms)", "drop", "PDR");
  for (const double jitter : {0.002, 0.01, 0.05}) {
    ScenarioConfig cfg = base_config();
    cfg.max_speed = 5;
    cfg.attack = AttackType::kRushing;
    cfg.aodv.forward_jitter_max = jitter;
    const ScenarioResult r = run_scenario_averaged(cfg, reps());
    std::printf("%-12.0f %8.3f %8.3f\n", jitter * 1e3, r.drop_ratio(), r.pdr());
  }
  std::printf("\n");
}

void ablation_attack_taxonomy() {
  std::printf("--- F. what authentication does and does not stop (speed 5 m/s, McCLS on) ---\n");
  std::printf("outsider forgeries die; insider selective forwarding and verbatim replay survive\n");
  std::printf("%-12s %8s %8s %10s\n", "attack", "drop", "PDR", "authRej");
  for (const AttackType attack : {AttackType::kBlackHole, AttackType::kRushing,
                                  AttackType::kGrayHole, AttackType::kWormhole}) {
    ScenarioConfig cfg = base_config();
    cfg.max_speed = 5;
    cfg.attack = attack;
    cfg.security = SecurityMode::kModeled;
    const ScenarioResult r = run_scenario_averaged(cfg, reps());
    const char* name = attack == AttackType::kBlackHole ? "black-hole"
                       : attack == AttackType::kRushing ? "rushing"
                       : attack == AttackType::kGrayHole ? "gray-hole"
                                                         : "wormhole";
    std::printf("%-12s %8.3f %8.3f %10llu\n", name, r.drop_ratio(), r.pdr(),
                static_cast<unsigned long long>(r.metrics.auth_rejected));
  }
  std::printf("\n");
}

void ablation_expanding_ring() {
  std::printf("--- E. expanding ring search (speed 10 m/s, no attack) ---\n");
  std::printf("%-16s %8s %12s %12s\n", "discovery", "PDR", "delay(ms)", "RREQratio");
  for (const bool ring : {false, true}) {
    ScenarioConfig cfg = base_config();
    cfg.aodv.expanding_ring = ring;
    const ScenarioResult r = run_scenario_averaged(cfg, reps());
    std::printf("%-16s %8.3f %12.2f %12.3f\n", ring ? "expanding ring" : "full flood",
                r.pdr(), r.avg_delay() * 1e3, r.rreq_ratio());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Design-choice ablations (DESIGN.md §8) ===\n\n");
  ablation_detection();
  ablation_placement();
  ablation_scheme_costs();
  ablation_jitter();
  ablation_expanding_ring();
  ablation_attack_taxonomy();
  return 0;
}
