// Figure 3: average end-to-end delay vs node speed, AODV vs McCLS.
// Expected shape: McCLS sits at or above AODV (signature/verification CPU
// time on the discovery path), with the gap widening at high speed where
// route discoveries are frequent — the paper reports AODV clearly ahead
// from 15 m/s on.
#include "fig_common.hpp"

int main() {
  using namespace mccls::bench;
  run_figure("=== Figure 3: End-to-End Delay (seconds) ===",
             "mean end-to-end delay of delivered packets",
             {
                 {"AODV", SecurityMode::kNone, AttackType::kNone},
                 {"McCLS", SecurityMode::kModeled, AttackType::kNone},
             },
             [](const ScenarioResult& r) { return r.avg_delay(); });
  return 0;
}
