// The verification hot path under the microscope: projective vs. affine
// Miller loop, the final exponentiation split, multi-pairing products, and
// the end-to-end McCLS verify that every AODV RREQ/RREP authentication pays
// for.
//
// Unlike the google-benchmark binaries this one hand-rolls its timing so it
// can emit the BENCH_pairing.json trajectory file (see bench_json.hpp) with
// the before and after numbers side by side; the speedup claims are then
// enforced by `tools/bench_compare --gate`:
//   * pair_affine vs pair_projective — the ≥3× projective-loop claim;
//   * pair_portable_x4 vs multi_pair_k4 — the ≥2× multi-pairing claim.
//     pair_portable is the projective pairing pinned to the portable
//     Montgomery backend, i.e. what one coalesced-batch pairing cost before
//     the CIOS multiplier landed (the pre-PR configuration, kept callable in
//     the same binary exactly like pair_affine is). pair_projective_x4
//     tracks the same product on the production pairing, so the structural
//     share of the win is visible separately in the derived ratios.
//
// Knobs: MCCLS_BENCH_JSON (output path, default BENCH_pairing.json),
//        MCCLS_BENCH_SAMPLES (timed batches per op, default 15).
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "cls/mccls.hpp"
#include "crypto/drbg.hpp"
#include "math/fp2.hpp"
#include "pairing/pairing.hpp"

namespace {

using namespace mccls;
using ec::G1;
using math::U256;

unsigned samples() {
  if (const char* env = std::getenv("MCCLS_BENCH_SAMPLES"); env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 15;
}

}  // namespace

int main() {
  const unsigned n_samples = samples();
  const G1& g = G1::generator();
  const G1 p = g.mul(U256::from_u64(31337));
  const G1 q = g.mul(U256::from_u64(271828));

  // Distinct pair inputs for the multi-pairing products (distinct first AND
  // second arguments, like the coalescer's per-group combined points).
  std::vector<std::pair<G1, G1>> pairs16;
  for (std::uint64_t i = 0; i < 16; ++i) {
    pairs16.emplace_back(g.mul(U256::from_u64(0x1111 * (i + 1))),
                         g.mul(U256::from_u64(0x2222 * (i + 3))));
  }
  const auto pairs_k = [&](std::size_t k) {
    return std::span<const std::pair<G1, G1>>(pairs16).first(k);
  };

  // End-to-end verify fixture.
  crypto::HmacDrbg rng(std::uint64_t{0xbe9c});
  const cls::Kgc kgc = cls::Kgc::setup(rng);
  const cls::Mccls scheme;
  const cls::UserKeys keys = scheme.enroll(kgc, "bench-node", rng);
  const auto message = crypto::as_bytes("bench: RREQ payload equivalent");
  const cls::McclsSignature sig = cls::Mccls::sign_typed(kgc.params(), keys, message, rng);
  cls::PairingCache cache;
  (void)cache.get(kgc.params(), keys.id);  // warm so verify times 1 pairing

  std::vector<bench::BenchResult> results;
  const auto run = [&](const std::string& name, unsigned iters, auto&& fn) {
    results.push_back(bench::time_op(name, n_samples, iters, fn));
    const auto& r = results.back();
    std::printf("%-26s %12.1f ns/op (median), %12.1f ns/op (min)\n", name.c_str(),
                r.median_ns, r.min_ns);
  };
  const auto median_of = [&](const std::string& name) {
    for (const auto& r : results) {
      if (r.name == name) return r.median_ns;
    }
    return 0.0;
  };

  run("pair_affine", 20, [&] { (void)pairing::pair_affine(p, q); });
  run("pair_projective", 100, [&] { (void)pairing::pair(p, q); });
  run("pair_portable", 100, [&] { (void)pairing::pair_portable(p, q); });
  run("miller_loop_projective", 100, [&] { (void)pairing::miller_loop(p, q); });
  run("final_exponentiation", 1000, [&] {
    static const math::Fp2 f = pairing::miller_loop(p, q);
    (void)pairing::final_exponentiation(f);
  });

  // Four independent pairings vs the same four as one shared-loop product —
  // once on the production pairing (structural share of the win), once on
  // the portable reference (the pre-PR unit of work the CI gate divides by).
  run("pair_projective_x4", 25, [&] {
    for (const auto& [a, b] : pairs_k(4)) (void)pairing::pair(a, b);
  });
  run("pair_portable_x4", 25, [&] {
    for (const auto& [a, b] : pairs_k(4)) (void)pairing::pair_portable(a, b);
  });
  run("multi_pair_k2", 50, [&] { (void)pairing::multi_pair(pairs_k(2)); });
  run("multi_pair_k4", 25, [&] { (void)pairing::multi_pair(pairs_k(4)); });
  run("multi_pair_k8", 12, [&] { (void)pairing::multi_pair(pairs_k(8)); });
  run("multi_pair_k16", 6, [&] { (void)pairing::multi_pair(pairs_k(16)); });

  // Field-layer microbenches: the lazy-reduction Fp2 multiply vs the eager
  // Karatsuba one, so field wins are tracked separately from loop wins.
  {
    const math::Fp2 fa = pairing::miller_loop(p, q);
    const math::Fp2 fb = pairing::miller_loop(q, p);
    run("fp2_mul", 2000000, [&] {
      static math::Fp2 acc = fa;
      acc = math::Fp2::mul_eager(acc, fb);
    });
    run("fp2_mul_lazy", 2000000, [&] {
      static math::Fp2 acc = fa;
      acc = math::Fp2::mul_lazy(acc, fb);
    });
  }

  run("mccls_verify_cached", 50, [&] {
    (void)cls::Mccls::verify_typed(kgc.params(), keys.id, keys.public_key.primary(),
                                   message, sig, &cache);
  });
  run("g1_mul", 200, [&] { (void)p.mul(U256::from_u64(0x123456789abcdefULL)); });

  const double affine = median_of("pair_affine");
  const double projective = median_of("pair_projective");
  const double speedup = projective > 0 ? affine / projective : 0;
  std::printf("\npair() speedup (affine / projective, medians): %.2fx\n", speedup);

  const double multi_k4 = median_of("multi_pair_k4");
  const double vs_seedcfg =
      multi_k4 > 0 ? median_of("pair_portable_x4") / multi_k4 : 0;
  const double structural =
      multi_k4 > 0 ? median_of("pair_projective_x4") / multi_k4 : 0;
  const double field_gain = projective > 0 ? median_of("pair_portable") / projective : 0;
  const double lazy_gain = median_of("fp2_mul_lazy") > 0
                               ? median_of("fp2_mul") / median_of("fp2_mul_lazy")
                               : 0;
  std::printf("multi_pair_k4 vs 4x pair_portable: %.2fx (structural share %.2fx, "
              "field share %.2fx, fp2 lazy %.2fx)\n",
              vs_seedcfg, structural, field_gain, lazy_gain);

  const char* path_env = std::getenv("MCCLS_BENCH_JSON");
  const std::string path = path_env != nullptr ? path_env : "BENCH_pairing.json";
  if (!bench::write_bench_json(path, "pairing", results,
                               {{"pair_speedup_median", speedup},
                                {"multi_pair_k4_vs_seedcfg_x4", vs_seedcfg},
                                {"multi_pair_k4_structural", structural},
                                {"pair_field_speedup", field_gain},
                                {"fp2_lazy_speedup", lazy_gain}})) {
    return 1;
  }
  return 0;
}
