// The verification hot path under the microscope: projective vs. affine
// Miller loop, the final exponentiation split, and the end-to-end McCLS
// verify that every AODV RREQ/RREP authentication pays for.
//
// Unlike the google-benchmark binaries this one hand-rolls its timing so it
// can emit the BENCH_pairing.json trajectory file (see bench_json.hpp) with
// the before (pair_affine) and after (pair) numbers side by side; the
// ≥3× speedup claim is then enforced by `tools/bench_compare --gate`.
//
// Knobs: MCCLS_BENCH_JSON (output path, default BENCH_pairing.json),
//        MCCLS_BENCH_SAMPLES (timed batches per op, default 15).
#include <cstdlib>
#include <string>

#include "bench_json.hpp"
#include "cls/mccls.hpp"
#include "crypto/drbg.hpp"
#include "pairing/pairing.hpp"

namespace {

using namespace mccls;
using ec::G1;
using math::U256;

unsigned samples() {
  if (const char* env = std::getenv("MCCLS_BENCH_SAMPLES"); env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 15;
}

}  // namespace

int main() {
  const unsigned n_samples = samples();
  const G1& g = G1::generator();
  const G1 p = g.mul(U256::from_u64(31337));
  const G1 q = g.mul(U256::from_u64(271828));

  // End-to-end verify fixture.
  crypto::HmacDrbg rng(std::uint64_t{0xbe9c});
  const cls::Kgc kgc = cls::Kgc::setup(rng);
  const cls::Mccls scheme;
  const cls::UserKeys keys = scheme.enroll(kgc, "bench-node", rng);
  const auto message = crypto::as_bytes("bench: RREQ payload equivalent");
  const cls::McclsSignature sig = cls::Mccls::sign_typed(kgc.params(), keys, message, rng);
  cls::PairingCache cache;
  (void)cache.get(kgc.params(), keys.id);  // warm so verify times 1 pairing

  std::vector<bench::BenchResult> results;
  const auto run = [&](const std::string& name, unsigned iters, auto&& fn) {
    results.push_back(bench::time_op(name, n_samples, iters, fn));
    const auto& r = results.back();
    std::printf("%-26s %12.1f ns/op (median), %12.1f ns/op (min)\n", name.c_str(),
                r.median_ns, r.min_ns);
  };

  run("pair_affine", 20, [&] { (void)pairing::pair_affine(p, q); });
  run("pair_projective", 100, [&] { (void)pairing::pair(p, q); });
  run("miller_loop_projective", 100, [&] { (void)pairing::miller_loop(p, q); });
  run("final_exponentiation", 1000, [&] {
    static const math::Fp2 f = pairing::miller_loop(p, q);
    (void)pairing::final_exponentiation(f);
  });
  run("mccls_verify_cached", 50, [&] {
    (void)cls::Mccls::verify_typed(kgc.params(), keys.id, keys.public_key.primary(),
                                   message, sig, &cache);
  });
  run("g1_mul", 200, [&] { (void)p.mul(U256::from_u64(0x123456789abcdefULL)); });

  const double affine = results[0].median_ns;
  const double projective = results[1].median_ns;
  const double speedup = projective > 0 ? affine / projective : 0;
  std::printf("\npair() speedup (affine / projective, medians): %.2fx\n", speedup);

  const char* path_env = std::getenv("MCCLS_BENCH_JSON");
  const std::string path = path_env != nullptr ? path_env : "BENCH_pairing.json";
  if (!bench::write_bench_json(path, "pairing", results,
                               {{"pair_speedup_median", speedup}})) {
    return 1;
  }
  return 0;
}
