// Table 1: comparison of the CLS schemes — analytic operation counts as the
// paper states them, measured sign/verify wall-clock on this host, and key /
// signature sizes. Run with --benchmark_filter=... to narrow.
//
// Expected shape: verification-pairing ordering AP(4) > ZWXF(4) > YHG(2) >
// McCLS(1) shows up directly in measured verify times; the pairing-free
// signers (ZWXF/YHG/McCLS) sign an order of magnitude faster than AP.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>

#include "cls/registry.hpp"

namespace {

using namespace mccls;

struct SchemeFixture {
  explicit SchemeFixture(std::string_view name)
      : scheme(cls::make_scheme(name)),
        rng(std::uint64_t{0xB117}),
        kgc(cls::Kgc::setup(rng)),
        signer(scheme->enroll(kgc, "bench-node", rng)) {
    message.assign(64, 0xAB);  // a routing-control-packet-sized message
    signature = scheme->sign(kgc.params(), signer, message, rng);
  }

  std::unique_ptr<cls::Scheme> scheme;
  crypto::HmacDrbg rng;
  cls::Kgc kgc;
  cls::UserKeys signer;
  crypto::Bytes message;
  crypto::Bytes signature;
};

SchemeFixture& fixture(const std::string& name) {
  static std::map<std::string, std::unique_ptr<SchemeFixture>> cache;
  auto& slot = cache[name];
  if (!slot) slot = std::make_unique<SchemeFixture>(name);
  return *slot;
}

void BM_KeyGen(benchmark::State& state, const std::string& name) {
  auto& f = fixture(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme->enroll(f.kgc, "fresh-node", f.rng));
  }
}

void BM_Sign(benchmark::State& state, const std::string& name) {
  auto& f = fixture(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme->sign(f.kgc.params(), f.signer, f.message, f.rng));
  }
}

void BM_Verify(benchmark::State& state, const std::string& name) {
  auto& f = fixture(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme->verify(f.kgc.params(), "bench-node",
                                              f.signer.public_key, f.message, f.signature));
  }
}

void BM_VerifyCached(benchmark::State& state, const std::string& name) {
  // With the per-identity pairing cache warm — the deployment configuration
  // for McCLS (ablation: DESIGN.md §8.1).
  auto& f = fixture(name);
  cls::PairingCache cache;
  (void)f.scheme->verify(f.kgc.params(), "bench-node", f.signer.public_key, f.message,
                         f.signature, &cache);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scheme->verify(f.kgc.params(), "bench-node",
                                              f.signer.public_key, f.message, f.signature,
                                              &cache));
  }
}

void register_all() {
  for (const auto name : cls::scheme_names()) {
    const std::string n(name);
    benchmark::RegisterBenchmark(("KeyGen/" + n).c_str(),
                                 [n](benchmark::State& s) { BM_KeyGen(s, n); });
    benchmark::RegisterBenchmark(("Sign/" + n).c_str(),
                                 [n](benchmark::State& s) { BM_Sign(s, n); });
    benchmark::RegisterBenchmark(("Verify/" + n).c_str(),
                                 [n](benchmark::State& s) { BM_Verify(s, n); });
    benchmark::RegisterBenchmark(("VerifyCached/" + n).c_str(),
                                 [n](benchmark::State& s) { BM_VerifyCached(s, n); });
  }
}

void print_analytic_table() {
  std::printf("=== Table 1: Comparison of the CLS Schemes (paper's analytic costs) ===\n");
  std::printf("%-8s %-12s %-16s %-12s %-10s %-10s\n", "scheme", "sign", "verify",
              "pubkey-len", "sig-bytes", "pk-bytes");
  for (const auto name : cls::scheme_names()) {
    const auto scheme = cls::make_scheme(name);
    const cls::OpCounts c = scheme->costs();
    char sign_cost[32];
    char verify_cost[48];
    if (c.sign_pairings > 0) {
      std::snprintf(sign_cost, sizeof sign_cost, "%dp+%ds", c.sign_pairings,
                    c.sign_scalar_mults);
    } else {
      std::snprintf(sign_cost, sizeof sign_cost, "%ds", c.sign_scalar_mults);
    }
    if (c.verify_exponentiations > 0) {
      std::snprintf(verify_cost, sizeof verify_cost, "%dp+%de", c.verify_pairings,
                    c.verify_exponentiations);
    } else {
      std::snprintf(verify_cost, sizeof verify_cost, "%dp+%ds", c.verify_pairings,
                    c.verify_scalar_mults);
    }
    const std::size_t pk_bytes = 1 + c.public_key_points * 33;
    std::printf("%-8s %-12s %-16s %d point%-5s %-10zu %-10zu\n",
                std::string(name).c_str(), sign_cost, verify_cost, c.public_key_points,
                c.public_key_points == 1 ? "" : "s", scheme->signature_size(), pk_bytes);
  }
  std::printf("(s: scalar mult, p: pairing, e: GT exponentiation)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_analytic_table();
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
