// Figure 1: packet delivery ratio vs node speed, AODV vs McCLS (no attack).
// Expected shape (paper §6): the two curves are close — the authentication
// extension does not degrade delivery — and both decline as speed rises.
#include "fig_common.hpp"

int main() {
  using namespace mccls::bench;
  run_figure("=== Figure 1: Packet Delivery Ratio (no attack) ===",
             "packet delivery ratio",
             {
                 {"AODV", SecurityMode::kNone, AttackType::kNone},
                 {"McCLS", SecurityMode::kModeled, AttackType::kNone},
             },
             [](const ScenarioResult& r) { return r.pdr(); });
  return 0;
}
