// Batch-verification ablation (DESIGN.md §8.2): amortizing McCLS's single
// verification pairing over n same-signer signatures versus verifying each
// one individually. Expected shape: batch cost grows ~linearly in scalar
// mults while individual verification grows linearly in pairings, so the
// speedup approaches pairing/scalar-mult ratio for large n.
#include <benchmark/benchmark.h>

#include "cls/batch.hpp"

namespace {

using namespace mccls;

struct BatchFixture {
  BatchFixture() : rng(std::uint64_t{0xBA7C4}), kgc(cls::Kgc::setup(rng)) {
    signer = scheme.enroll(kgc, "batch-node", rng);
    for (int i = 0; i < 64; ++i) {
      crypto::ByteWriter w;
      w.put_u32(static_cast<std::uint32_t>(i));
      crypto::Bytes m = w.take();
      items.push_back(cls::BatchItem{
          .message = m, .signature = cls::Mccls::sign_typed(kgc.params(), signer, m, rng)});
    }
    // Warm the identity pairing cache: both paths benefit equally.
    (void)cache.get(kgc.params(), "batch-node");
  }

  crypto::HmacDrbg rng;
  cls::Kgc kgc;
  cls::Mccls scheme;
  cls::UserKeys signer;
  std::vector<cls::BatchItem> items;
  cls::PairingCache cache;
};

BatchFixture& fixture() {
  static BatchFixture f;
  return f;
}

void BM_BatchVerify(benchmark::State& state) {
  auto& f = fixture();
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::span<const cls::BatchItem> batch{f.items.data(), n};
  for (auto _ : state) {
    const bool ok = cls::batch_verify(f.kgc.params(), "batch-node",
                                      f.signer.public_key.primary(), batch, f.rng, &f.cache);
    if (!ok) state.SkipWithError("batch rejected");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BatchVerify)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_IndividualVerify(benchmark::State& state) {
  auto& f = fixture();
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      const bool ok =
          cls::Mccls::verify_typed(f.kgc.params(), "batch-node",
                                   f.signer.public_key.primary(), f.items[i].message,
                                   f.items[i].signature, &f.cache);
      if (!ok) state.SkipWithError("signature rejected");
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_IndividualVerify)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
