# Empty dependencies file for test_fp2.
# This may be replaced when dependencies are built.
