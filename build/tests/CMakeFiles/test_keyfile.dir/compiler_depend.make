# Empty compiler generated dependencies file for test_keyfile.
# This may be replaced when dependencies are built.
