file(REMOVE_RECURSE
  "CMakeFiles/test_keyfile.dir/test_keyfile.cpp.o"
  "CMakeFiles/test_keyfile.dir/test_keyfile.cpp.o.d"
  "test_keyfile"
  "test_keyfile.pdb"
  "test_keyfile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_keyfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
