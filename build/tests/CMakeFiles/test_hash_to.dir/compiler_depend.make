# Empty compiler generated dependencies file for test_hash_to.
# This may be replaced when dependencies are built.
