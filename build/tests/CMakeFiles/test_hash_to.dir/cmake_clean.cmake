file(REMOVE_RECURSE
  "CMakeFiles/test_hash_to.dir/test_hash_to.cpp.o"
  "CMakeFiles/test_hash_to.dir/test_hash_to.cpp.o.d"
  "test_hash_to"
  "test_hash_to.pdb"
  "test_hash_to[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hash_to.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
