file(REMOVE_RECURSE
  "CMakeFiles/test_paradigms.dir/test_paradigms.cpp.o"
  "CMakeFiles/test_paradigms.dir/test_paradigms.cpp.o.d"
  "test_paradigms"
  "test_paradigms.pdb"
  "test_paradigms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paradigms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
