# Empty dependencies file for test_paradigms.
# This may be replaced when dependencies are built.
