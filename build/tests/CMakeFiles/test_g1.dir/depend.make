# Empty dependencies file for test_g1.
# This may be replaced when dependencies are built.
