file(REMOVE_RECURSE
  "CMakeFiles/test_g1.dir/test_g1.cpp.o"
  "CMakeFiles/test_g1.dir/test_g1.cpp.o.d"
  "test_g1"
  "test_g1.pdb"
  "test_g1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_g1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
