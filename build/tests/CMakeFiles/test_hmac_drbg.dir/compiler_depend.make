# Empty compiler generated dependencies file for test_hmac_drbg.
# This may be replaced when dependencies are built.
