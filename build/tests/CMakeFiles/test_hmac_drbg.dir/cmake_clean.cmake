file(REMOVE_RECURSE
  "CMakeFiles/test_hmac_drbg.dir/test_hmac_drbg.cpp.o"
  "CMakeFiles/test_hmac_drbg.dir/test_hmac_drbg.cpp.o.d"
  "test_hmac_drbg"
  "test_hmac_drbg.pdb"
  "test_hmac_drbg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hmac_drbg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
