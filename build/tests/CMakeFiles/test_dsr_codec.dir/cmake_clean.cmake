file(REMOVE_RECURSE
  "CMakeFiles/test_dsr_codec.dir/test_dsr_codec.cpp.o"
  "CMakeFiles/test_dsr_codec.dir/test_dsr_codec.cpp.o.d"
  "test_dsr_codec"
  "test_dsr_codec.pdb"
  "test_dsr_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsr_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
