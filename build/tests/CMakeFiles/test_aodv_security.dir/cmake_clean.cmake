file(REMOVE_RECURSE
  "CMakeFiles/test_aodv_security.dir/test_aodv_security.cpp.o"
  "CMakeFiles/test_aodv_security.dir/test_aodv_security.cpp.o.d"
  "test_aodv_security"
  "test_aodv_security.pdb"
  "test_aodv_security[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aodv_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
