# Empty compiler generated dependencies file for test_aodv_security.
# This may be replaced when dependencies are built.
