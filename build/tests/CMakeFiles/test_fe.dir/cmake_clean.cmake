file(REMOVE_RECURSE
  "CMakeFiles/test_fe.dir/test_fe.cpp.o"
  "CMakeFiles/test_fe.dir/test_fe.cpp.o.d"
  "test_fe"
  "test_fe.pdb"
  "test_fe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
