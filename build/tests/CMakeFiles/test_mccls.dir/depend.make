# Empty dependencies file for test_mccls.
# This may be replaced when dependencies are built.
