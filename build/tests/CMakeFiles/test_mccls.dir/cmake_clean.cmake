file(REMOVE_RECURSE
  "CMakeFiles/test_mccls.dir/test_mccls.cpp.o"
  "CMakeFiles/test_mccls.dir/test_mccls.cpp.o.d"
  "test_mccls"
  "test_mccls.pdb"
  "test_mccls[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mccls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
