file(REMOVE_RECURSE
  "CMakeFiles/test_fe_edge.dir/test_fe_edge.cpp.o"
  "CMakeFiles/test_fe_edge.dir/test_fe_edge.cpp.o.d"
  "test_fe_edge"
  "test_fe_edge.pdb"
  "test_fe_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fe_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
