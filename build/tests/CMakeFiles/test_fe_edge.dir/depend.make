# Empty dependencies file for test_fe_edge.
# This may be replaced when dependencies are built.
