file(REMOVE_RECURSE
  "CMakeFiles/test_keys.dir/test_keys.cpp.o"
  "CMakeFiles/test_keys.dir/test_keys.cpp.o.d"
  "test_keys"
  "test_keys.pdb"
  "test_keys[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
