# Empty dependencies file for test_dsr.
# This may be replaced when dependencies are built.
