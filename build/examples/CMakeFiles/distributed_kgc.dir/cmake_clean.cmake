file(REMOVE_RECURSE
  "CMakeFiles/distributed_kgc.dir/distributed_kgc.cpp.o"
  "CMakeFiles/distributed_kgc.dir/distributed_kgc.cpp.o.d"
  "distributed_kgc"
  "distributed_kgc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_kgc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
