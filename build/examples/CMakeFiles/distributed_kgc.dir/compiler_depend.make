# Empty compiler generated dependencies file for distributed_kgc.
# This may be replaced when dependencies are built.
