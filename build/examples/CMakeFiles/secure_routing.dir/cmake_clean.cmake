file(REMOVE_RECURSE
  "CMakeFiles/secure_routing.dir/secure_routing.cpp.o"
  "CMakeFiles/secure_routing.dir/secure_routing.cpp.o.d"
  "secure_routing"
  "secure_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
