# Empty compiler generated dependencies file for secure_routing.
# This may be replaced when dependencies are built.
