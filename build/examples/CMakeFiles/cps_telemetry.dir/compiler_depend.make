# Empty compiler generated dependencies file for cps_telemetry.
# This may be replaced when dependencies are built.
