file(REMOVE_RECURSE
  "CMakeFiles/cps_telemetry.dir/cps_telemetry.cpp.o"
  "CMakeFiles/cps_telemetry.dir/cps_telemetry.cpp.o.d"
  "cps_telemetry"
  "cps_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cps_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
