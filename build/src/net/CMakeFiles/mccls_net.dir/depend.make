# Empty dependencies file for mccls_net.
# This may be replaced when dependencies are built.
