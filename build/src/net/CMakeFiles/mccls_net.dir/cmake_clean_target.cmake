file(REMOVE_RECURSE
  "libmccls_net.a"
)
