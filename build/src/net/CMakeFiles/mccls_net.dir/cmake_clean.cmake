file(REMOVE_RECURSE
  "CMakeFiles/mccls_net.dir/channel.cpp.o"
  "CMakeFiles/mccls_net.dir/channel.cpp.o.d"
  "CMakeFiles/mccls_net.dir/mobility.cpp.o"
  "CMakeFiles/mccls_net.dir/mobility.cpp.o.d"
  "libmccls_net.a"
  "libmccls_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mccls_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
