# Empty dependencies file for mccls_math.
# This may be replaced when dependencies are built.
