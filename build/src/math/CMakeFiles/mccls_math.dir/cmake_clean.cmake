file(REMOVE_RECURSE
  "CMakeFiles/mccls_math.dir/u256.cpp.o"
  "CMakeFiles/mccls_math.dir/u256.cpp.o.d"
  "libmccls_math.a"
  "libmccls_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mccls_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
