file(REMOVE_RECURSE
  "libmccls_math.a"
)
