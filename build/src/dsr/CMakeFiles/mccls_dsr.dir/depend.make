# Empty dependencies file for mccls_dsr.
# This may be replaced when dependencies are built.
