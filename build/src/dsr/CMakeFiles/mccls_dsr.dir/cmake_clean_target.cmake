file(REMOVE_RECURSE
  "libmccls_dsr.a"
)
