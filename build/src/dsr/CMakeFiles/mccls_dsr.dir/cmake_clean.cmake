file(REMOVE_RECURSE
  "CMakeFiles/mccls_dsr.dir/dsr_agent.cpp.o"
  "CMakeFiles/mccls_dsr.dir/dsr_agent.cpp.o.d"
  "CMakeFiles/mccls_dsr.dir/dsr_codec.cpp.o"
  "CMakeFiles/mccls_dsr.dir/dsr_codec.cpp.o.d"
  "CMakeFiles/mccls_dsr.dir/dsr_messages.cpp.o"
  "CMakeFiles/mccls_dsr.dir/dsr_messages.cpp.o.d"
  "CMakeFiles/mccls_dsr.dir/dsr_scenario.cpp.o"
  "CMakeFiles/mccls_dsr.dir/dsr_scenario.cpp.o.d"
  "libmccls_dsr.a"
  "libmccls_dsr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mccls_dsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
