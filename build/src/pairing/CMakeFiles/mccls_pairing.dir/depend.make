# Empty dependencies file for mccls_pairing.
# This may be replaced when dependencies are built.
