file(REMOVE_RECURSE
  "CMakeFiles/mccls_pairing.dir/pairing.cpp.o"
  "CMakeFiles/mccls_pairing.dir/pairing.cpp.o.d"
  "libmccls_pairing.a"
  "libmccls_pairing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mccls_pairing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
