file(REMOVE_RECURSE
  "libmccls_pairing.a"
)
