file(REMOVE_RECURSE
  "libmccls_sim.a"
)
