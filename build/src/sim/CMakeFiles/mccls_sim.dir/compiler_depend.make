# Empty compiler generated dependencies file for mccls_sim.
# This may be replaced when dependencies are built.
