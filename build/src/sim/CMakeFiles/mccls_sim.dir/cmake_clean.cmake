file(REMOVE_RECURSE
  "CMakeFiles/mccls_sim.dir/rng.cpp.o"
  "CMakeFiles/mccls_sim.dir/rng.cpp.o.d"
  "CMakeFiles/mccls_sim.dir/simulator.cpp.o"
  "CMakeFiles/mccls_sim.dir/simulator.cpp.o.d"
  "libmccls_sim.a"
  "libmccls_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mccls_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
