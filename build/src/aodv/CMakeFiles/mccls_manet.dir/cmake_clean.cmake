file(REMOVE_RECURSE
  "CMakeFiles/mccls_manet.dir/agent.cpp.o"
  "CMakeFiles/mccls_manet.dir/agent.cpp.o.d"
  "CMakeFiles/mccls_manet.dir/codec.cpp.o"
  "CMakeFiles/mccls_manet.dir/codec.cpp.o.d"
  "CMakeFiles/mccls_manet.dir/messages.cpp.o"
  "CMakeFiles/mccls_manet.dir/messages.cpp.o.d"
  "CMakeFiles/mccls_manet.dir/routing_table.cpp.o"
  "CMakeFiles/mccls_manet.dir/routing_table.cpp.o.d"
  "CMakeFiles/mccls_manet.dir/scenario.cpp.o"
  "CMakeFiles/mccls_manet.dir/scenario.cpp.o.d"
  "CMakeFiles/mccls_manet.dir/security.cpp.o"
  "CMakeFiles/mccls_manet.dir/security.cpp.o.d"
  "CMakeFiles/mccls_manet.dir/traffic.cpp.o"
  "CMakeFiles/mccls_manet.dir/traffic.cpp.o.d"
  "libmccls_manet.a"
  "libmccls_manet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mccls_manet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
