file(REMOVE_RECURSE
  "libmccls_manet.a"
)
