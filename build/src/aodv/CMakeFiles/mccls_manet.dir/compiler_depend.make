# Empty compiler generated dependencies file for mccls_manet.
# This may be replaced when dependencies are built.
