file(REMOVE_RECURSE
  "CMakeFiles/mccls_ec.dir/g1.cpp.o"
  "CMakeFiles/mccls_ec.dir/g1.cpp.o.d"
  "libmccls_ec.a"
  "libmccls_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mccls_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
