# Empty compiler generated dependencies file for mccls_ec.
# This may be replaced when dependencies are built.
