file(REMOVE_RECURSE
  "libmccls_ec.a"
)
