# Empty dependencies file for mccls_cls.
# This may be replaced when dependencies are built.
