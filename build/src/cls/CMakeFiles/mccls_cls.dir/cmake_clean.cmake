file(REMOVE_RECURSE
  "CMakeFiles/mccls_cls.dir/ap.cpp.o"
  "CMakeFiles/mccls_cls.dir/ap.cpp.o.d"
  "CMakeFiles/mccls_cls.dir/batch.cpp.o"
  "CMakeFiles/mccls_cls.dir/batch.cpp.o.d"
  "CMakeFiles/mccls_cls.dir/epoch.cpp.o"
  "CMakeFiles/mccls_cls.dir/epoch.cpp.o.d"
  "CMakeFiles/mccls_cls.dir/keyfile.cpp.o"
  "CMakeFiles/mccls_cls.dir/keyfile.cpp.o.d"
  "CMakeFiles/mccls_cls.dir/keys.cpp.o"
  "CMakeFiles/mccls_cls.dir/keys.cpp.o.d"
  "CMakeFiles/mccls_cls.dir/mccls.cpp.o"
  "CMakeFiles/mccls_cls.dir/mccls.cpp.o.d"
  "CMakeFiles/mccls_cls.dir/offline.cpp.o"
  "CMakeFiles/mccls_cls.dir/offline.cpp.o.d"
  "CMakeFiles/mccls_cls.dir/paradigms.cpp.o"
  "CMakeFiles/mccls_cls.dir/paradigms.cpp.o.d"
  "CMakeFiles/mccls_cls.dir/registry.cpp.o"
  "CMakeFiles/mccls_cls.dir/registry.cpp.o.d"
  "CMakeFiles/mccls_cls.dir/scheme.cpp.o"
  "CMakeFiles/mccls_cls.dir/scheme.cpp.o.d"
  "CMakeFiles/mccls_cls.dir/threshold.cpp.o"
  "CMakeFiles/mccls_cls.dir/threshold.cpp.o.d"
  "CMakeFiles/mccls_cls.dir/yhg.cpp.o"
  "CMakeFiles/mccls_cls.dir/yhg.cpp.o.d"
  "CMakeFiles/mccls_cls.dir/zwxf.cpp.o"
  "CMakeFiles/mccls_cls.dir/zwxf.cpp.o.d"
  "libmccls_cls.a"
  "libmccls_cls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mccls_cls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
