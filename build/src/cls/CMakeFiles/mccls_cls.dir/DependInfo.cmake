
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cls/ap.cpp" "src/cls/CMakeFiles/mccls_cls.dir/ap.cpp.o" "gcc" "src/cls/CMakeFiles/mccls_cls.dir/ap.cpp.o.d"
  "/root/repo/src/cls/batch.cpp" "src/cls/CMakeFiles/mccls_cls.dir/batch.cpp.o" "gcc" "src/cls/CMakeFiles/mccls_cls.dir/batch.cpp.o.d"
  "/root/repo/src/cls/epoch.cpp" "src/cls/CMakeFiles/mccls_cls.dir/epoch.cpp.o" "gcc" "src/cls/CMakeFiles/mccls_cls.dir/epoch.cpp.o.d"
  "/root/repo/src/cls/keyfile.cpp" "src/cls/CMakeFiles/mccls_cls.dir/keyfile.cpp.o" "gcc" "src/cls/CMakeFiles/mccls_cls.dir/keyfile.cpp.o.d"
  "/root/repo/src/cls/keys.cpp" "src/cls/CMakeFiles/mccls_cls.dir/keys.cpp.o" "gcc" "src/cls/CMakeFiles/mccls_cls.dir/keys.cpp.o.d"
  "/root/repo/src/cls/mccls.cpp" "src/cls/CMakeFiles/mccls_cls.dir/mccls.cpp.o" "gcc" "src/cls/CMakeFiles/mccls_cls.dir/mccls.cpp.o.d"
  "/root/repo/src/cls/offline.cpp" "src/cls/CMakeFiles/mccls_cls.dir/offline.cpp.o" "gcc" "src/cls/CMakeFiles/mccls_cls.dir/offline.cpp.o.d"
  "/root/repo/src/cls/paradigms.cpp" "src/cls/CMakeFiles/mccls_cls.dir/paradigms.cpp.o" "gcc" "src/cls/CMakeFiles/mccls_cls.dir/paradigms.cpp.o.d"
  "/root/repo/src/cls/registry.cpp" "src/cls/CMakeFiles/mccls_cls.dir/registry.cpp.o" "gcc" "src/cls/CMakeFiles/mccls_cls.dir/registry.cpp.o.d"
  "/root/repo/src/cls/scheme.cpp" "src/cls/CMakeFiles/mccls_cls.dir/scheme.cpp.o" "gcc" "src/cls/CMakeFiles/mccls_cls.dir/scheme.cpp.o.d"
  "/root/repo/src/cls/threshold.cpp" "src/cls/CMakeFiles/mccls_cls.dir/threshold.cpp.o" "gcc" "src/cls/CMakeFiles/mccls_cls.dir/threshold.cpp.o.d"
  "/root/repo/src/cls/yhg.cpp" "src/cls/CMakeFiles/mccls_cls.dir/yhg.cpp.o" "gcc" "src/cls/CMakeFiles/mccls_cls.dir/yhg.cpp.o.d"
  "/root/repo/src/cls/zwxf.cpp" "src/cls/CMakeFiles/mccls_cls.dir/zwxf.cpp.o" "gcc" "src/cls/CMakeFiles/mccls_cls.dir/zwxf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/mccls_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/pairing/CMakeFiles/mccls_pairing.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/mccls_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mccls_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
