file(REMOVE_RECURSE
  "libmccls_cls.a"
)
