file(REMOVE_RECURSE
  "CMakeFiles/mccls_crypto.dir/drbg.cpp.o"
  "CMakeFiles/mccls_crypto.dir/drbg.cpp.o.d"
  "CMakeFiles/mccls_crypto.dir/encoding.cpp.o"
  "CMakeFiles/mccls_crypto.dir/encoding.cpp.o.d"
  "CMakeFiles/mccls_crypto.dir/hash.cpp.o"
  "CMakeFiles/mccls_crypto.dir/hash.cpp.o.d"
  "CMakeFiles/mccls_crypto.dir/hmac.cpp.o"
  "CMakeFiles/mccls_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/mccls_crypto.dir/sha256.cpp.o"
  "CMakeFiles/mccls_crypto.dir/sha256.cpp.o.d"
  "libmccls_crypto.a"
  "libmccls_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mccls_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
