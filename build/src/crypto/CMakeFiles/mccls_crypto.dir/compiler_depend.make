# Empty compiler generated dependencies file for mccls_crypto.
# This may be replaced when dependencies are built.
