file(REMOVE_RECURSE
  "libmccls_crypto.a"
)
