# Empty compiler generated dependencies file for mccls_cli.
# This may be replaced when dependencies are built.
