file(REMOVE_RECURSE
  "CMakeFiles/mccls_cli.dir/mccls_cli.cpp.o"
  "CMakeFiles/mccls_cli.dir/mccls_cli.cpp.o.d"
  "mccls_cli"
  "mccls_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mccls_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
