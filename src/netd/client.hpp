// Client side of the netd frame protocol.
//
//   * BlockingClient — one connection, one call at a time. What the CLI's
//     --connect path and the socket smoke tests use: correctness over
//     throughput, plain blocking syscalls, per-call deadline.
//
//   * MultiClient — one epoll loop driving N connections × pipelined
//     requests from a single thread. What the TCP loadgens and bench_net
//     use: the 10k-connection acceptance run cannot be thread-per-connection
//     on a 1-core box. Connects are issued non-blocking in bounded waves so
//     a 10k ramp never overflows the server's listen backlog, each
//     connection keeps up to `pipeline` requests unanswered, and responses
//     surface through a callback as they arrive. Responses are NOT in
//     request order (verifyd workers complete out of order) — callers match
//     them by the request_id inside the payload, stamping send times from
//     the on_sent callback.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "netd/frame.hpp"

namespace mccls::netd {

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient() { close(); }

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  /// Connects (blocking) to host:port. False on failure — see error().
  bool connect(const std::string& host, std::uint16_t port);

  /// Sends `payload` as one frame and blocks for one response frame.
  /// nullopt on timeout, EOF, or protocol violation (error() explains; the
  /// connection is closed — a desynced stream cannot be reused).
  std::optional<crypto::Bytes> call(std::span<const std::uint8_t> payload,
                                    std::uint32_t timeout_ms = 30000);

  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
  std::string error_;
};

class MultiClient {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::size_t connections = 1;
    std::size_t pipeline = 16;      ///< max unanswered requests per connection
    std::size_t connect_wave = 256; ///< concurrent non-blocking connects
    std::uint32_t run_timeout_ms = 120000;  ///< overall safety net for run()
  };

  /// Pulls the next request payload for connection `conn` (its requests are
  /// numbered by `seq`, starting at 0). nullopt = that connection has no
  /// more requests; it closes once its outstanding responses arrive.
  using RequestGen =
      std::function<std::optional<crypto::Bytes>(std::size_t conn, std::size_t seq)>;
  /// A request hit the socket (appended to the OS send path). Send times for
  /// latency measurement come from here, keyed however the caller likes.
  using SentFn = std::function<void(std::size_t conn, std::size_t seq,
                                    std::chrono::steady_clock::time_point when)>;
  /// One response frame arrived on `conn`.
  using ResponseFn = std::function<void(std::size_t conn, crypto::Bytes payload)>;

  explicit MultiClient(Config config) : config_(std::move(config)) {}

  /// Connects everything, pumps requests/responses until every connection
  /// exhausts its generator and receives all outstanding responses (or the
  /// run deadline passes / too many connections fail). Single-threaded;
  /// callbacks run on the calling thread. False on failure — see error().
  bool run(const RequestGen& next, const ResponseFn& on_response,
           const SentFn& on_sent = {});

  /// Most connections simultaneously established during run() — the
  /// ≥10k-concurrent-connections acceptance number.
  [[nodiscard]] std::size_t peak_connected() const { return peak_connected_; }
  [[nodiscard]] std::size_t failed_connections() const { return failed_; }
  [[nodiscard]] std::uint64_t responses() const { return responses_; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  Config config_;
  std::size_t peak_connected_ = 0;
  std::size_t failed_ = 0;
  std::uint64_t responses_ = 0;
  std::string error_;
};

}  // namespace mccls::netd
