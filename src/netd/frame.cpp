#include "netd/frame.hpp"

#include <cstring>

namespace mccls::netd {

crypto::Bytes encode_frame(std::span<const std::uint8_t> payload) {
  crypto::Bytes out;
  append_frame(out, payload);
  return out;
}

void append_frame(crypto::Bytes& out, std::span<const std::uint8_t> payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  out.reserve(out.size() + 4 + payload.size());
  out.push_back(static_cast<std::uint8_t>(len >> 24));
  out.push_back(static_cast<std::uint8_t>(len >> 16));
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>(len));
  out.insert(out.end(), payload.begin(), payload.end());
}

bool FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (poisoned_) return false;
  // Compact the consumed prefix before growing — the buffer never holds more
  // than one maximal frame plus whatever the last read appended.
  if (pos_ > 0 && (pos_ >= buffer_.size() || pos_ > max_frame_)) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  // Validate the length prefix as soon as its 4 bytes exist: a hostile
  // declared length must be rejected from the prefix alone, before any
  // payload accumulates behind it.
  if (buffer_.size() - pos_ >= 4) {
    const std::uint32_t len = static_cast<std::uint32_t>(buffer_[pos_]) << 24 |
                              static_cast<std::uint32_t>(buffer_[pos_ + 1]) << 16 |
                              static_cast<std::uint32_t>(buffer_[pos_ + 2]) << 8 |
                              static_cast<std::uint32_t>(buffer_[pos_ + 3]);
    if (len == 0 || len > max_frame_) {
      poisoned_ = true;
      return false;
    }
  }
  return true;
}

std::optional<crypto::Bytes> FrameDecoder::next() {
  if (poisoned_) return std::nullopt;
  const std::size_t avail = buffer_.size() - pos_;
  if (avail < 4) return std::nullopt;
  const std::uint32_t len = static_cast<std::uint32_t>(buffer_[pos_]) << 24 |
                            static_cast<std::uint32_t>(buffer_[pos_ + 1]) << 16 |
                            static_cast<std::uint32_t>(buffer_[pos_ + 2]) << 8 |
                            static_cast<std::uint32_t>(buffer_[pos_ + 3]);
  if (len == 0 || len > max_frame_) {  // feed() normally catches this first
    poisoned_ = true;
    return std::nullopt;
  }
  if (avail - 4 < len) return std::nullopt;  // payload still in flight
  crypto::Bytes payload(buffer_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4),
                        buffer_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4 + len));
  pos_ += 4 + len;
  // A length prefix for the NEXT frame may already be buffered; validate it
  // now so poisoned() is accurate the moment the violation is observable,
  // wherever the bytes arrived (feed only sees the prefix that is first in
  // line when it runs).
  if (buffer_.size() - pos_ >= 4) {
    const std::uint32_t peek = static_cast<std::uint32_t>(buffer_[pos_]) << 24 |
                               static_cast<std::uint32_t>(buffer_[pos_ + 1]) << 16 |
                               static_cast<std::uint32_t>(buffer_[pos_ + 2]) << 8 |
                               static_cast<std::uint32_t>(buffer_[pos_ + 3]);
    if (peek == 0 || peek > max_frame_) poisoned_ = true;
  }
  return payload;
}

std::optional<crypto::Bytes> decode_frame(std::span<const std::uint8_t> bytes,
                                          std::size_t max_frame) {
  FrameDecoder decoder(max_frame);
  if (!decoder.feed(bytes)) return std::nullopt;
  std::optional<crypto::Bytes> frame = decoder.next();
  if (!frame) return std::nullopt;
  // Exactly one frame: trailing bytes (a pipelined second frame, garbage, a
  // partial header) all reject in this one-shot form.
  if (decoder.poisoned() || decoder.buffered() != 0 || decoder.next()) return std::nullopt;
  return frame;
}

}  // namespace mccls::netd
