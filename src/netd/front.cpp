#include "netd/front.hpp"

#include <memory>
#include <utility>

namespace mccls::netd {

bool VerifydFrontEnd::try_dispatch(crypto::Bytes& frame, const Reply& reply) {
  // kBusy is only ever delivered synchronously from submit() (see
  // svc/service.hpp), so reading *refused after submit_bytes returns cannot
  // race the worker-side completions — those carry real verdicts and go out
  // as replies.
  auto refused = std::make_shared<bool>(false);
  service_.submit_bytes(frame, [reply, refused](const svc::VerifyResponse& response) {
    if (response.status == svc::Status::kBusy) {
      *refused = true;
      return;
    }
    reply(svc::encode_response(response));
  });
  return !*refused;
}

KgcdFrontEnd::KgcdFrontEnd(Handler handler, KgcdFrontConfig config)
    : handler_(std::move(handler)), queue_(config.queue_capacity) {
  const unsigned workers = config.workers == 0 ? 1 : config.workers;
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this](std::stop_token stop) {
      while (auto job = queue_.pop(stop)) {
        job->reply(handler_(job->frame));
      }
    });
  }
}

KgcdFrontEnd::KgcdFrontEnd(kgc::Kgcd& daemon, KgcdFrontConfig config)
    : KgcdFrontEnd(Handler([&daemon](std::span<const std::uint8_t> frame) {
                     return daemon.handle_frame(frame);
                   }),
                   config) {}

KgcdFrontEnd::KgcdFrontEnd(kgc::Replica& replica, KgcdFrontConfig config)
    : KgcdFrontEnd(Handler([&replica](std::span<const std::uint8_t> frame) {
                     return replica.handle_frame(frame);
                   }),
                   config) {}

KgcdFrontEnd::~KgcdFrontEnd() { shutdown(); }

bool KgcdFrontEnd::try_dispatch(crypto::Bytes& frame, const Reply& reply) {
  Job job{std::move(frame), reply};
  if (!queue_.try_push(std::move(job))) {
    frame = std::move(job.frame);  // try_push leaves a refused item untouched
    return false;
  }
  return true;
}

void KgcdFrontEnd::shutdown() {
  queue_.close();
  threads_.clear();  // jthread: request_stop + join
}

}  // namespace mccls::netd
