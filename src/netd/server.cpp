#include "netd/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace mccls::netd {

namespace {

using clock_t_ = std::chrono::steady_clock;

constexpr std::size_t kReadChunk = 16 * 1024;

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

/// All I/O state is owned by the loop thread; only `inflight`, `outbox`,
/// `wake_queued` and `closed` are shared with reply closures (under
/// Shared::mu, except the atomic inflight).
struct NetServer::Conn {
  int fd = -1;
  FrameDecoder decoder;
  /// A frame the sink refused (worker queue saturated); retried on wakeups
  /// and ticks. While set, the connection does not read.
  std::optional<crypto::Bytes> stalled;
  std::atomic<std::size_t> inflight{0};  ///< dispatched, reply not yet enqueued
  std::deque<crypto::Bytes> outbox;      ///< reply payloads (Shared::mu)
  bool wake_queued = false;              ///< already on the wake list (Shared::mu)
  bool closed = false;                   ///< replies drop themselves (Shared::mu)
  crypto::Bytes writebuf;                ///< framed responses being sent
  std::size_t woff = 0;
  bool want_write = false;  ///< EPOLLOUT armed (partial write pending)
  bool read_paused = false;
  clock_t_::time_point last_activity;

  explicit Conn(int f, std::size_t max_frame) : fd(f), decoder(max_frame) {}
};

NetServer::NetServer(NetdConfig config, FrameSink* sink)
    : config_(std::move(config)), sink_(sink), shared_(std::make_shared<Shared>()) {}

NetServer::~NetServer() { stop(); }

bool NetServer::start() {
  if (started_) return true;
  // Fresh reply-side state: a previous stop() left shared_->stopped set, and
  // straggler replies may still hold the old block — they drop harmlessly.
  shared_ = std::make_shared<Shared>();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    error_ = errno_string("socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  const std::string host =
      config_.bind_host == "localhost" ? std::string("127.0.0.1") : config_.bind_host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    error_ = "bad bind host: " + config_.bind_host;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, config_.listen_backlog) != 0) {
    error_ = errno_string("bind/listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  shared_->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || shared_->event_fd < 0) {
    error_ = errno_string("epoll_create1/eventfd");
    stop();
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.events = EPOLLIN;  // level-triggered: the drain loop reads the counter
  ev.data.fd = shared_->event_fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, shared_->event_fd, &ev);

  started_ = true;
  thread_ = std::jthread([this](std::stop_token stop) { loop(stop); });
  return true;
}

void NetServer::stop() {
  if (started_ && thread_.joinable()) {
    thread_.request_stop();
    std::uint64_t one = 1;
    {
      std::lock_guard lk(shared_->mu);
      if (shared_->event_fd >= 0) (void)!::write(shared_->event_fd, &one, sizeof one);
    }
    thread_.join();
  }
  // The loop is gone; tear down under the reply mutex so any straggler
  // reply from a worker thread observes `stopped` and never touches an fd.
  std::vector<std::shared_ptr<Conn>> doomed;
  {
    std::lock_guard lk(shared_->mu);
    shared_->stopped = true;
    if (shared_->event_fd >= 0) {
      ::close(shared_->event_fd);
      shared_->event_fd = -1;
    }
    for (auto& [fd, conn] : conns_) {
      conn->closed = true;
      doomed.push_back(conn);
    }
    shared_->wake.clear();
  }
  for (const auto& conn : doomed) ::close(conn->fd);
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  started_ = false;
}

FrameSink::Reply NetServer::make_reply(const std::shared_ptr<Conn>& conn) {
  // Captures keep the Conn and the Shared block alive past server teardown.
  return [shared = shared_, conn](crypto::Bytes payload) {
    conn->inflight.fetch_sub(1, std::memory_order_relaxed);
    std::uint64_t one = 1;
    std::lock_guard lk(shared->mu);
    if (shared->stopped || conn->closed) return;  // reply after close: dropped
    conn->outbox.push_back(std::move(payload));
    if (!conn->wake_queued) {
      conn->wake_queued = true;
      shared->wake.push_back(conn);
    }
    (void)!::write(shared->event_fd, &one, sizeof one);
  };
}

void NetServer::loop(std::stop_token stop) {
  std::vector<epoll_event> events(256);
  auto last_tick = clock_t_::now();
  while (!stop.stop_requested()) {
    const int timeout = static_cast<int>(config_.tick_ms == 0 ? 10 : config_.tick_ms);
    const int n = ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                               timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n && !stop.stop_requested(); ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        handle_accept();
        continue;
      }
      if (fd == shared_->event_fd) {
        drain_wakeups();
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // raced with a close in this batch
      const std::shared_ptr<Conn> conn = it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(conn);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) flush_writes(conn);
      if ((events[i].events & EPOLLIN) != 0) handle_readable(conn);
    }
    // Wakeups can also be queued without the eventfd edge being seen yet;
    // drain opportunistically so replies never wait a full tick.
    drain_wakeups();
    const auto now = clock_t_::now();
    if (now - last_tick >= std::chrono::milliseconds(config_.tick_ms == 0 ? 10 : config_.tick_ms)) {
      last_tick = now;
      scan_idle_and_stalled();
    }
    if (n == static_cast<int>(events.size())) events.resize(events.size() * 2);
  }
}

void NetServer::handle_accept() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept errors (ECONNABORTED, EMFILE): try next tick
    }
    if (conns_.size() >= config_.max_connections) {
      metrics_.refused_over_capacity.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_shared<Conn>(fd, config_.max_frame);
    conn->last_activity = clock_t_::now();
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
    metrics_.accepted.fetch_add(1, std::memory_order_relaxed);
    metrics_.active.fetch_add(1, std::memory_order_relaxed);
  }
}

/// Dispatches the stalled frame (if any) and then buffered decoder frames
/// until the in-flight cap or a sink refusal pauses the connection. Returns
/// false when the stream is past repair (protocol violation) and the caller
/// must close.
bool NetServer::dispatch_buffered(const std::shared_ptr<Conn>& conn) {
  while (true) {
    if (conn->stalled) {
      if (conn->inflight.load(std::memory_order_relaxed) >= config_.max_inflight_per_conn) {
        conn->read_paused = true;
        return true;
      }
      metrics_.dispatch_retries.fetch_add(1, std::memory_order_relaxed);
      conn->inflight.fetch_add(1, std::memory_order_relaxed);
      if (!sink_->try_dispatch(*conn->stalled, make_reply(conn))) {
        conn->inflight.fetch_sub(1, std::memory_order_relaxed);
        conn->read_paused = true;
        return true;
      }
      conn->stalled.reset();
    }
    if (conn->inflight.load(std::memory_order_relaxed) >= config_.max_inflight_per_conn) {
      if (!conn->read_paused) {
        conn->read_paused = true;
        metrics_.backpressure_pauses.fetch_add(1, std::memory_order_relaxed);
      }
      return true;
    }
    std::optional<crypto::Bytes> frame = conn->decoder.next();
    if (!frame) {
      if (conn->decoder.poisoned()) {
        metrics_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      return true;  // need more bytes
    }
    metrics_.frames_in.fetch_add(1, std::memory_order_relaxed);
    conn->inflight.fetch_add(1, std::memory_order_relaxed);
    if (!sink_->try_dispatch(*frame, make_reply(conn))) {
      conn->inflight.fetch_sub(1, std::memory_order_relaxed);
      conn->stalled = std::move(frame);
      if (!conn->read_paused) {
        conn->read_paused = true;
        metrics_.backpressure_pauses.fetch_add(1, std::memory_order_relaxed);
      }
      return true;
    }
  }
}

void NetServer::handle_readable(const std::shared_ptr<Conn>& conn) {
  while (!conn->read_paused) {
    if (!dispatch_buffered(conn)) {
      close_conn(conn);
      return;
    }
    if (conn->read_paused) return;  // backpressure: leave bytes in the kernel
    std::uint8_t chunk[kReadChunk];
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      metrics_.bytes_in.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
      conn->last_activity = clock_t_::now();
      if (!conn->decoder.feed({chunk, static_cast<std::size_t>(n)})) {
        metrics_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        // feed() only rejects when the FIRST pending header is invalid —
        // complete frames ahead of it were dispatched before this read — so
        // there is nothing salvageable: close.
        close_conn(conn);
        return;
      }
      continue;
    }
    if (n == 0) {  // peer EOF
      close_conn(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_conn(conn);
    return;
  }
}

void NetServer::flush_writes(const std::shared_ptr<Conn>& conn) {
  // Pull queued reply payloads into the contiguous write buffer.
  {
    std::lock_guard lk(shared_->mu);
    while (!conn->outbox.empty()) {
      append_frame(conn->writebuf, conn->outbox.front());
      conn->outbox.pop_front();
      metrics_.replies_out.fetch_add(1, std::memory_order_relaxed);
    }
  }
  while (conn->woff < conn->writebuf.size()) {
    const ssize_t n = ::send(conn->fd, conn->writebuf.data() + conn->woff,
                             conn->writebuf.size() - conn->woff, MSG_NOSIGNAL);
    if (n > 0) {
      conn->woff += static_cast<std::size_t>(n);
      metrics_.bytes_out.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
      conn->last_activity = clock_t_::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
        ev.data.fd = conn->fd;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    close_conn(conn);
    return;
  }
  conn->writebuf.clear();
  conn->woff = 0;
  if (conn->want_write) {
    conn->want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET;
    ev.data.fd = conn->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  }
}

void NetServer::maybe_resume(const std::shared_ptr<Conn>& conn) {
  if (!conn->read_paused) return;
  if (conn->inflight.load(std::memory_order_relaxed) >= config_.max_inflight_per_conn) {
    return;
  }
  // A stalled frame must clear before reading resumes; dispatch_buffered
  // retries it (and un-pausing is pointless if the sink still refuses).
  conn->read_paused = false;
  if (!dispatch_buffered(conn)) {
    close_conn(conn);
    return;
  }
  if (!conn->read_paused) {
    metrics_.backpressure_resumes.fetch_add(1, std::memory_order_relaxed);
    // Edge-triggered epoll will not re-announce bytes that arrived while
    // paused — read them now.
    handle_readable(conn);
  }
}

void NetServer::drain_wakeups() {
  std::vector<std::shared_ptr<Conn>> woken;
  {
    std::lock_guard lk(shared_->mu);
    if (shared_->event_fd >= 0) {
      std::uint64_t counter = 0;
      (void)!::read(shared_->event_fd, &counter, sizeof counter);
    }
    woken.swap(shared_->wake);
    for (const auto& conn : woken) conn->wake_queued = false;
  }
  for (const auto& conn : woken) {
    if (conn->closed) continue;
    flush_writes(conn);
    maybe_resume(conn);
  }
}

void NetServer::scan_idle_and_stalled() {
  const auto now = clock_t_::now();
  const auto idle_cutoff = std::chrono::milliseconds(config_.idle_timeout_ms);
  // Snapshot first: maybe_resume can close (and erase) a connection, which
  // would invalidate an iterator into conns_.
  std::vector<std::shared_ptr<Conn>> all;
  all.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) all.push_back(conn);
  for (const auto& conn : all) {
    if (conn->closed) continue;
    if (conn->read_paused) maybe_resume(conn);
    if (conn->closed) continue;
    if (config_.idle_timeout_ms != 0 && !conn->stalled &&
        conn->inflight.load(std::memory_order_relaxed) == 0 &&
        conn->writebuf.size() == conn->woff && now - conn->last_activity > idle_cutoff) {
      // A reply may have landed in the outbox after this tick's drain pass;
      // closing then would drop an answered request.
      bool reply_pending;
      {
        std::lock_guard lk(shared_->mu);
        reply_pending = !conn->outbox.empty();
      }
      if (reply_pending) continue;
      metrics_.idle_closes.fetch_add(1, std::memory_order_relaxed);
      close_conn(conn);
    }
  }
}

void NetServer::close_conn(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard lk(shared_->mu);
    if (conn->closed) return;
    conn->closed = true;
    conn->outbox.clear();
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(conn->fd);
  metrics_.closed.fetch_add(1, std::memory_order_relaxed);
  metrics_.active.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace mccls::netd
