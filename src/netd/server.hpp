// netd — the epoll-based TCP front end that takes verifyd and kgcd from
// in-process queues to real sockets.
//
// NAMING: src/net is the *simulated wireless* layer (channel model, mobility,
// interface queues) the MANET evaluation runs on; src/netd is the *real
// socket* layer a deployed verifier/KGC serves. They never link each other.
//
// One NetServer owns one listening socket and one event-loop thread running
// epoll in edge-triggered mode. The loop does only cheap work — accept,
// non-blocking read/write, frame assembly, dispatch hand-off — and all
// expensive work (pairings, WAL appends) happens on the existing worker
// pools behind a FrameSink. Connection lifecycle:
//
//   accept -> read -> [FrameDecoder] -> dispatch -> write-queue -> drain
//      \________________ idle timeout / protocol violation -> close
//
// Backpressure propagates to TCP instead of dropping: when a connection's
// in-flight count reaches the cap, or the sink refuses a frame (worker
// queue saturated), the loop simply stops reading that socket (its EPOLLIN
// interest is effectively off — edge-triggered epoll never re-notifies
// unread data). Bytes then accumulate in the kernel receive buffer, the
// TCP window closes, and the *sender* blocks — exactly the behavior a
// saturated radio interface queue models in src/net, but end to end across
// the wire. Reading resumes when replies drain the in-flight count below
// the cap and the stalled frame (if any) is accepted.
//
// Thread-safety: the loop thread owns all connection I/O state. Worker
// threads touch a connection only through its Reply closure, which appends
// the encoded response to the connection's outbox under the server-wide
// reply mutex and wakes the loop through an eventfd. A closed connection's
// outstanding replies are dropped under that same mutex, so a reply can
// never write into a freed connection (the Conn itself is shared_ptr-kept).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "netd/frame.hpp"

namespace mccls::netd {

/// Where decoded frames go. Implementations must be thread-safe (the loop
/// thread dispatches; replies may be invoked from any worker thread).
class FrameSink {
 public:
  /// Delivers one encoded response payload; must be invoked exactly once
  /// per accepted frame. Cheap and thread-safe (it takes one mutex and
  /// writes one eventfd).
  using Reply = std::function<void(crypto::Bytes)>;

  virtual ~FrameSink() = default;

  /// Accepts `frame` for processing (may move from it, may invoke `reply`
  /// synchronously), or returns false WITHOUT consuming the frame or ever
  /// invoking `reply` — the sink is saturated, and the caller must hold the
  /// frame and retry later. Saturation-refusal is what converts worker-queue
  /// drop-tail into stop-reading backpressure at the socket.
  virtual bool try_dispatch(crypto::Bytes& frame, const Reply& reply) = 0;
};

struct NetdConfig {
  std::string bind_host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see NetServer::port()
  std::size_t max_connections = 16384;
  /// Per-connection in-flight cap: frames dispatched but not yet answered.
  /// Reading stops at the cap and resumes once replies bring it back under.
  std::size_t max_inflight_per_conn = 64;
  std::size_t max_frame = kMaxFrameLen;
  /// Close a connection with no traffic and nothing in flight for this long
  /// (0 = never).
  std::uint32_t idle_timeout_ms = 30000;
  /// Loop heartbeat: stalled-dispatch retries and idle scans run this often.
  std::uint32_t tick_ms = 10;
  int listen_backlog = 4096;
};

/// Relaxed-atomic counters, mirroring svc::ServiceMetrics style.
class NetdMetrics {
 public:
  struct Snapshot {
    std::uint64_t accepted = 0;
    std::uint64_t closed = 0;
    std::uint64_t active = 0;
    std::uint64_t refused_over_capacity = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t replies_out = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t protocol_errors = 0;
    std::uint64_t idle_closes = 0;
    std::uint64_t backpressure_pauses = 0;
    std::uint64_t backpressure_resumes = 0;
    std::uint64_t dispatch_retries = 0;
  };
  [[nodiscard]] Snapshot snapshot() const {
    Snapshot s;
    s.accepted = accepted.load(std::memory_order_relaxed);
    s.closed = closed.load(std::memory_order_relaxed);
    s.active = active.load(std::memory_order_relaxed);
    s.refused_over_capacity = refused_over_capacity.load(std::memory_order_relaxed);
    s.frames_in = frames_in.load(std::memory_order_relaxed);
    s.replies_out = replies_out.load(std::memory_order_relaxed);
    s.bytes_in = bytes_in.load(std::memory_order_relaxed);
    s.bytes_out = bytes_out.load(std::memory_order_relaxed);
    s.protocol_errors = protocol_errors.load(std::memory_order_relaxed);
    s.idle_closes = idle_closes.load(std::memory_order_relaxed);
    s.backpressure_pauses = backpressure_pauses.load(std::memory_order_relaxed);
    s.backpressure_resumes = backpressure_resumes.load(std::memory_order_relaxed);
    s.dispatch_retries = dispatch_retries.load(std::memory_order_relaxed);
    return s;
  }

  std::atomic<std::uint64_t> accepted{0}, closed{0}, active{0}, refused_over_capacity{0};
  std::atomic<std::uint64_t> frames_in{0}, replies_out{0}, bytes_in{0}, bytes_out{0};
  std::atomic<std::uint64_t> protocol_errors{0}, idle_closes{0};
  std::atomic<std::uint64_t> backpressure_pauses{0}, backpressure_resumes{0},
      dispatch_retries{0};
};

class NetServer {
 public:
  /// `sink` is not owned and must outlive the server (stop() before the
  /// sink's own shutdown so no new dispatches land on a closing service).
  NetServer(NetdConfig config, FrameSink* sink);
  ~NetServer();  ///< stop()

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and starts the event-loop thread. False on any socket
  /// error (the message lands in error()).
  bool start();
  /// Closes the listener and every connection, then joins the loop.
  /// Idempotent. In-flight work already handed to the sink still completes
  /// inside the sink; its replies are dropped here.
  void stop();

  /// The bound port (resolves config.port == 0) — valid after start().
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] const NetdMetrics& metrics() const { return metrics_; }
  /// Current connection count (loop-thread gauge, racy by nature).
  [[nodiscard]] std::size_t connections() const {
    return metrics_.active.load(std::memory_order_relaxed);
  }

 private:
  struct Conn;
  /// Reply-side state shared with worker threads; outlives the loop so a
  /// straggler reply after stop() degrades to a locked no-op.
  struct Shared {
    std::mutex mu;
    int event_fd = -1;
    bool stopped = false;
    std::vector<std::shared_ptr<Conn>> wake;
  };

  void loop(std::stop_token stop);
  void handle_accept();
  void handle_readable(const std::shared_ptr<Conn>& conn);
  bool dispatch_buffered(const std::shared_ptr<Conn>& conn);  ///< false = close needed
  void flush_writes(const std::shared_ptr<Conn>& conn);
  void maybe_resume(const std::shared_ptr<Conn>& conn);
  void drain_wakeups();
  void scan_idle_and_stalled();
  void close_conn(const std::shared_ptr<Conn>& conn);
  FrameSink::Reply make_reply(const std::shared_ptr<Conn>& conn);

  NetdConfig config_;
  FrameSink* sink_;
  NetdMetrics metrics_;
  std::string error_;
  std::uint16_t port_ = 0;
  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  std::shared_ptr<Shared> shared_;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;  ///< loop thread only
  std::jthread thread_;
  bool started_ = false;
};

}  // namespace mccls::netd
