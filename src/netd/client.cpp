#include "netd/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace mccls::netd {
namespace {

bool resolve(const std::string& host, std::uint16_t port, sockaddr_in& addr,
             std::string& error) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string node = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, node.c_str(), &addr.sin_addr) != 1) {
    error = "unresolvable host (IPv4 dotted quad or 'localhost'): " + host;
    return false;
  }
  return true;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool send_all(int fd, const std::uint8_t* data, std::size_t len, std::string& error) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    error = std::string("send: ") + std::strerror(errno);
    return false;
  }
  return true;
}

}  // namespace

// ---- BlockingClient --------------------------------------------------------

bool BlockingClient::connect(const std::string& host, std::uint16_t port) {
  close();
  sockaddr_in addr{};
  if (!resolve(host, port, addr, error_)) return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    error_ = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  set_nodelay(fd);
  fd_ = fd;
  decoder_ = FrameDecoder();  // fresh stream, fresh frame sync
  error_.clear();
  return true;
}

std::optional<crypto::Bytes> BlockingClient::call(std::span<const std::uint8_t> payload,
                                                  std::uint32_t timeout_ms) {
  if (fd_ < 0) {
    error_ = "not connected";
    return std::nullopt;
  }
  const crypto::Bytes framed = encode_frame(payload);
  if (!send_all(fd_, framed.data(), framed.size(), error_)) {
    close();
    return std::nullopt;
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  std::uint8_t buf[16 * 1024];
  for (;;) {
    if (auto frame = decoder_.next()) return frame;
    if (decoder_.poisoned()) {
      error_ = "protocol violation in response stream";
      close();
      return std::nullopt;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      error_ = "timed out waiting for response";
      close();
      return std::nullopt;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count();
    const int pr = ::poll(&pfd, 1, static_cast<int>(left));
    if (pr < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("poll: ") + std::strerror(errno);
      close();
      return std::nullopt;
    }
    if (pr == 0) continue;  // loop re-checks the deadline
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      error_ = "connection closed by server";
      close();
      return std::nullopt;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("recv: ") + std::strerror(errno);
      close();
      return std::nullopt;
    }
    if (!decoder_.feed({buf, static_cast<std::size_t>(n)})) {
      error_ = "protocol violation in response stream";
      close();
      return std::nullopt;
    }
  }
}

void BlockingClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---- MultiClient -----------------------------------------------------------

namespace {

struct McConn {
  enum class State { kUnstarted, kConnecting, kActive, kClosed };
  State state = State::kUnstarted;
  int fd = -1;
  FrameDecoder decoder;
  crypto::Bytes writebuf;
  std::size_t woff = 0;
  std::size_t outstanding = 0;
  std::size_t seq = 0;
  bool done = false;  ///< generator exhausted for this connection
};

}  // namespace

bool MultiClient::run(const RequestGen& next, const ResponseFn& on_response,
                      const SentFn& on_sent) {
  peak_connected_ = 0;
  failed_ = 0;
  responses_ = 0;
  error_.clear();

  sockaddr_in addr{};
  if (!resolve(config_.host, config_.port, addr, error_)) return false;
  const int epfd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd < 0) {
    error_ = std::string("epoll_create1: ") + std::strerror(errno);
    return false;
  }

  const std::size_t total = config_.connections == 0 ? 1 : config_.connections;
  const std::size_t wave = config_.connect_wave == 0 ? 1 : config_.connect_wave;
  const std::size_t pipeline = config_.pipeline == 0 ? 1 : config_.pipeline;
  std::vector<McConn> conns(total);
  std::size_t next_unstarted = 0;
  std::size_t connecting = 0;
  std::size_t active = 0;
  std::size_t finished = 0;  // closed, whether completed or failed

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.run_timeout_ms);

  auto update_interest = [&](std::size_t idx, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = idx;
    ::epoll_ctl(epfd, EPOLL_CTL_MOD, conns[idx].fd, &ev);
  };

  auto close_one = [&](std::size_t idx, bool failed) {
    McConn& c = conns[idx];
    if (c.state == McConn::State::kClosed) return;
    if (c.state == McConn::State::kConnecting) --connecting;
    if (c.state == McConn::State::kActive) --active;
    if (c.fd >= 0) {
      ::epoll_ctl(epfd, EPOLL_CTL_DEL, c.fd, nullptr);
      ::close(c.fd);
      c.fd = -1;
    }
    c.state = McConn::State::kClosed;
    ++finished;
    if (failed) ++failed_;
  };

  // Queue requests up to the pipeline depth and push bytes to the socket;
  // EPOLLOUT interest tracks whether the write buffer drained.
  auto pump_writes = [&](std::size_t idx) {
    McConn& c = conns[idx];
    while (!c.done && c.outstanding < pipeline) {
      auto payload = next(idx, c.seq);
      if (!payload) {
        c.done = true;
        break;
      }
      append_frame(c.writebuf, *payload);
      if (on_sent) on_sent(idx, c.seq, std::chrono::steady_clock::now());
      ++c.seq;
      ++c.outstanding;
    }
    while (c.woff < c.writebuf.size()) {
      const ssize_t n = ::send(c.fd, c.writebuf.data() + c.woff,
                               c.writebuf.size() - c.woff, MSG_NOSIGNAL);
      if (n > 0) {
        c.woff += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        update_interest(idx, EPOLLIN | EPOLLOUT);
        return true;
      }
      close_one(idx, /*failed=*/true);
      return false;
    }
    c.writebuf.clear();
    c.woff = 0;
    update_interest(idx, EPOLLIN);
    if (c.done && c.outstanding == 0) close_one(idx, /*failed=*/false);
    return true;
  };

  // Non-blocking connects in bounded waves: never more than `wave` in
  // flight, so a 10k ramp cannot overflow the server's listen backlog.
  auto launch_connects = [&]() {
    while (connecting < wave && next_unstarted < total) {
      const std::size_t idx = next_unstarted++;
      McConn& c = conns[idx];
      const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
      if (fd < 0) {
        c.state = McConn::State::kClosed;
        ++finished;
        ++failed_;
        continue;
      }
      c.fd = fd;
      const int rc =
          ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
      epoll_event ev{};
      ev.data.u64 = idx;
      if (rc == 0) {
        set_nodelay(fd);
        c.state = McConn::State::kActive;
        ++active;
        peak_connected_ = std::max(peak_connected_, active);
        ev.events = EPOLLIN;
        ::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev);
        pump_writes(idx);
      } else if (errno == EINPROGRESS) {
        c.state = McConn::State::kConnecting;
        ++connecting;
        ev.events = EPOLLOUT;
        ::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev);
      } else {
        ::close(fd);
        c.fd = -1;
        c.state = McConn::State::kClosed;
        ++finished;
        ++failed_;
      }
    }
  };

  auto handle_readable = [&](std::size_t idx) {
    McConn& c = conns[idx];
    std::uint8_t buf[16 * 1024];
    for (;;) {
      const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        if (!c.decoder.feed({buf, static_cast<std::size_t>(n)})) {
          close_one(idx, /*failed=*/true);
          return;
        }
        while (auto frame = c.decoder.next()) {
          if (c.outstanding > 0) --c.outstanding;
          ++responses_;
          on_response(idx, std::move(*frame));
        }
        if (c.decoder.poisoned()) {
          close_one(idx, /*failed=*/true);
          return;
        }
        if (static_cast<std::size_t>(n) < sizeof(buf)) break;  // likely drained
        continue;
      }
      if (n == 0) {  // server closed; unanswered requests make this a failure
        close_one(idx, /*failed=*/c.outstanding > 0 || !c.done);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_one(idx, /*failed=*/true);
      return;
    }
    pump_writes(idx);  // freed pipeline slots -> queue more requests
  };

  std::vector<epoll_event> events(1024);
  bool ok = true;
  launch_connects();
  while (finished < total) {
    if (std::chrono::steady_clock::now() >= deadline) {
      error_ = "run deadline exceeded with " + std::to_string(total - finished) +
               " connections outstanding";
      ok = false;
      break;
    }
    const int n = ::epoll_wait(epfd, events.data(), static_cast<int>(events.size()), 50);
    if (n < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("epoll_wait: ") + std::strerror(errno);
      ok = false;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::size_t idx = static_cast<std::size_t>(events[i].data.u64);
      McConn& c = conns[idx];
      if (c.state == McConn::State::kClosed) continue;
      if (c.state == McConn::State::kConnecting) {
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0 || err != 0) {
          close_one(idx, /*failed=*/true);
          continue;
        }
        set_nodelay(c.fd);
        --connecting;
        c.state = McConn::State::kActive;
        ++active;
        peak_connected_ = std::max(peak_connected_, active);
        update_interest(idx, EPOLLIN);
        pump_writes(idx);
        continue;
      }
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        // Drain what the server managed to send before the hangup.
        handle_readable(idx);
        if (conns[idx].state != McConn::State::kClosed) close_one(idx, /*failed=*/true);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        if (!pump_writes(idx)) continue;
      }
      if ((events[i].events & EPOLLIN) != 0 &&
          conns[idx].state == McConn::State::kActive) {
        handle_readable(idx);
      }
    }
    launch_connects();  // refill the connect wave as slots free up
  }

  for (std::size_t i = 0; i < total; ++i) close_one(i, /*failed=*/false);
  ::close(epfd);
  if (ok && failed_ == total) {
    error_ = "every connection failed";
    ok = false;
  }
  return ok;
}

}  // namespace mccls::netd
