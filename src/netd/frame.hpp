// Length-prefixed framing for the TCP boundary — the only thing netd adds
// to the existing v2 wire formats. A frame is
//
//   frame := length:u32 (big-endian)  payload:length bytes
//
// where the payload is one complete svc/kgc wire request or response. The
// framing layer is where byte streams become discrete messages, so it
// follows the same totality contract as every other boundary decoder in the
// tree (svc/wire, kgc/wire, aodv/codec): any byte sequence either yields
// frames or a protocol-violation verdict — never UB, never a throw, never
// an attacker-sized allocation.
//
// Two decoders share one length check:
//
//   * FrameDecoder — the incremental stream decoder the server and client
//     run: bytes arrive in arbitrary splits (one syscall may carry half a
//     length prefix, or three frames and the start of a fourth), are
//     buffered, and complete frames pop out in order. A declared length of
//     zero or above `max_frame` poisons the decoder permanently (the
//     connection is past repair — resynchronizing inside a hostile stream
//     is how desync bugs become request smuggling), and nothing is
//     allocated for a payload until its full length has actually arrived,
//     so a "slow loris" peer dribbling a huge length prefix holds buffer
//     space proportional to bytes actually sent, never to bytes declared.
//
//   * decode_frame — the pure one-shot form (exactly one frame, nothing
//     before or after) the mcqc fuzz target drives; implemented on the
//     incremental decoder so fuzzing exercises the real code path.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "crypto/encoding.hpp"

namespace mccls::netd {

/// Frame payload cap. Generous: the largest legal payload is a kind-1 svc
/// request whose message field alone may reach svc::kMaxMessageLen (1 MiB);
/// headers, identity, key and signature fields add at most a few KiB.
inline constexpr std::size_t kMaxFrameLen = (1u << 20) + 8192;

/// Prepends the u32 big-endian length to `payload`.
crypto::Bytes encode_frame(std::span<const std::uint8_t> payload);
/// Appends the framed payload to `out` without an intermediate copy (the
/// write path builds one contiguous buffer per flush).
void append_frame(crypto::Bytes& out, std::span<const std::uint8_t> payload);

/// Incremental stream decoder; one instance per connection direction.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame = kMaxFrameLen) : max_frame_(max_frame) {}

  /// Buffers `bytes`. Returns false — and poisons the decoder — when the
  /// stream declares a zero or over-cap length; the caller must close the
  /// connection (there is no way back into frame sync).
  bool feed(std::span<const std::uint8_t> bytes);

  /// Pops the next complete frame's payload, or nullopt when the buffered
  /// bytes end mid-header or mid-payload (more input needed) — or when the
  /// decoder is poisoned.
  std::optional<crypto::Bytes> next();

  /// True once the stream has violated the framing protocol (feed returned
  /// false). Poisoning is permanent.
  [[nodiscard]] bool poisoned() const { return poisoned_; }
  /// Bytes currently buffered (received but not yet popped as frames).
  [[nodiscard]] std::size_t buffered() const { return buffer_.size() - pos_; }

 private:
  std::size_t max_frame_;
  crypto::Bytes buffer_;
  std::size_t pos_ = 0;  ///< consumed prefix of buffer_ (compacted lazily)
  bool poisoned_ = false;
};

/// One-shot decoder: accepts iff `bytes` is exactly one well-formed frame
/// (length in [1, max_frame], payload fully present, no trailing bytes) and
/// returns its payload. The fuzz-target form of the stream decoder.
std::optional<crypto::Bytes> decode_frame(std::span<const std::uint8_t> bytes,
                                          std::size_t max_frame = kMaxFrameLen);

}  // namespace mccls::netd
