// FrameSink adapters: where netd's byte frames meet the existing services.
//
// Both services already have total wire entry points (VerifyService::
// submit_bytes, Kgcd::handle_frame); what the adapters add is the refusal
// contract NetServer needs for backpressure — try_dispatch returning false,
// without consuming the frame or replying, when the workers are saturated.
// How each adapter obtains that refusal differs, because the two services
// signal saturation differently:
//
//   * VerifyService answers Status::kBusy — and the service guarantees kBusy
//     is only ever delivered *synchronously from submit()* (drop-tail at
//     admission; workers never produce it). VerifydFrontEnd exploits exactly
//     that: it submits with a completion that swallows kBusy into a flag
//     instead of replying, and converts the flag into a dispatch refusal.
//     The wire's kBusy status still exists for direct in-process callers;
//     over TCP it becomes stopped reads instead of a busy reply, which is
//     the whole point of the tentpole. (Each refused retry counts one busy
//     admission in the service's own metrics — expected under sustained
//     backpressure.)
//
//   * The kgc wire has no busy status at all (and widening its status enum
//     would invalidate the frozen corpus contract), so KgcdFrontEnd owns the
//     queue: a BoundedQueue<Job> in front of a small worker pool calling the
//     synchronous Kgcd::handle_frame. try_push failure is the refusal.
#pragma once

#include <thread>
#include <vector>

#include "kgc/kgcd.hpp"
#include "netd/server.hpp"
#include "svc/queue.hpp"
#include "svc/service.hpp"

namespace mccls::netd {

/// Serves svc wire frames (verify / verify-by-identity) by submitting them
/// to a VerifyService; replies carry the encoded VerifyResponse.
class VerifydFrontEnd final : public FrameSink {
 public:
  /// `service` is not owned; stop the NetServer before shutting it down.
  explicit VerifydFrontEnd(svc::VerifyService& service) : service_(service) {}

  bool try_dispatch(crypto::Bytes& frame, const Reply& reply) override;

 private:
  svc::VerifyService& service_;
};

struct KgcdFrontConfig {
  unsigned workers = 2;
  std::size_t queue_capacity = 256;  ///< drop-tail bound == refusal point
};

/// Serves kgc wire frames through a bounded queue + worker pool in front of
/// the (synchronous, internally thread-safe) Kgcd daemon.
class KgcdFrontEnd final : public FrameSink {
 public:
  /// `daemon` is not owned and must outlive this front end.
  explicit KgcdFrontEnd(kgc::Kgcd& daemon, KgcdFrontConfig config = {});
  ~KgcdFrontEnd();  ///< shutdown()

  KgcdFrontEnd(const KgcdFrontEnd&) = delete;
  KgcdFrontEnd& operator=(const KgcdFrontEnd&) = delete;

  bool try_dispatch(crypto::Bytes& frame, const Reply& reply) override;

  /// Close-then-stop per BoundedQueue's contract: admission ends first, the
  /// workers drain every accepted job (each still gets its reply), then the
  /// stop request ends their wait. Idempotent.
  void shutdown();

 private:
  struct Job {
    crypto::Bytes frame;
    Reply reply;
  };

  kgc::Kgcd& daemon_;
  svc::BoundedQueue<Job> queue_;
  std::vector<std::jthread> threads_;
};

}  // namespace mccls::netd
