// FrameSink adapters: where netd's byte frames meet the existing services.
//
// Both services already have total wire entry points (VerifyService::
// submit_bytes, Kgcd::handle_frame); what the adapters add is the refusal
// contract NetServer needs for backpressure — try_dispatch returning false,
// without consuming the frame or replying, when the workers are saturated.
// How each adapter obtains that refusal differs, because the two services
// signal saturation differently:
//
//   * VerifyService answers Status::kBusy — and the service guarantees kBusy
//     is only ever delivered *synchronously from submit()* (drop-tail at
//     admission; workers never produce it). VerifydFrontEnd exploits exactly
//     that: it submits with a completion that swallows kBusy into a flag
//     instead of replying, and converts the flag into a dispatch refusal.
//     The wire's kBusy status still exists for direct in-process callers;
//     over TCP it becomes stopped reads instead of a busy reply, which is
//     the whole point of the tentpole. (Each refused retry counts one busy
//     admission in the service's own metrics — expected under sustained
//     backpressure.)
//
//   * The kgc wire has no busy status, so KgcdFrontEnd owns the queue: a
//     BoundedQueue<Job> in front of a small worker pool calling a synchronous
//     kgc frame handler. try_push failure is the refusal. The handler is a
//     std::function so the same front end serves a primary (Kgcd) or a read
//     replica (kgc::Replica) — replicas answer mutating ops kReadOnly
//     themselves, the front end does not care which role it fronts.
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "kgc/kgcd.hpp"
#include "kgc/replica.hpp"
#include "netd/server.hpp"
#include "svc/queue.hpp"
#include "svc/service.hpp"

namespace mccls::netd {

/// Serves svc wire frames (verify / verify-by-identity) by submitting them
/// to a VerifyService; replies carry the encoded VerifyResponse.
class VerifydFrontEnd final : public FrameSink {
 public:
  /// `service` is not owned; stop the NetServer before shutting it down.
  explicit VerifydFrontEnd(svc::VerifyService& service) : service_(service) {}

  bool try_dispatch(crypto::Bytes& frame, const Reply& reply) override;

 private:
  svc::VerifyService& service_;
};

struct KgcdFrontConfig {
  unsigned workers = 2;
  std::size_t queue_capacity = 256;  ///< drop-tail bound == refusal point
};

/// Serves kgc wire frames through a bounded queue + worker pool in front of
/// a synchronous, thread-safe kgc frame handler (primary or replica).
class KgcdFrontEnd final : public FrameSink {
 public:
  /// One frame in, one encoded response out; called from the worker pool
  /// concurrently, so it must be thread-safe.
  using Handler = std::function<crypto::Bytes(std::span<const std::uint8_t>)>;

  /// `daemon` is not owned and must outlive this front end.
  explicit KgcdFrontEnd(kgc::Kgcd& daemon, KgcdFrontConfig config = {});
  /// Read-replica front: kLookup/kReplicate served locally, mutations answer
  /// kReadOnly. Lookups are safe concurrently with the replica's sync loop.
  explicit KgcdFrontEnd(kgc::Replica& replica, KgcdFrontConfig config = {});
  /// Fully custom handler (tests; role multiplexers).
  explicit KgcdFrontEnd(Handler handler, KgcdFrontConfig config = {});
  ~KgcdFrontEnd();  ///< shutdown()

  KgcdFrontEnd(const KgcdFrontEnd&) = delete;
  KgcdFrontEnd& operator=(const KgcdFrontEnd&) = delete;

  bool try_dispatch(crypto::Bytes& frame, const Reply& reply) override;

  /// Close-then-stop per BoundedQueue's contract: admission ends first, the
  /// workers drain every accepted job (each still gets its reply), then the
  /// stop request ends their wait. Idempotent.
  void shutdown();

 private:
  struct Job {
    crypto::Bytes frame;
    Reply reply;
  };

  Handler handler_;
  svc::BoundedQueue<Job> queue_;
  std::vector<std::jthread> threads_;
};

}  // namespace mccls::netd
