#include "svc/wire.hpp"

#include "cls/registry.hpp"

namespace mccls::svc {

namespace {

constexpr std::uint8_t kKindRequest = 1;
constexpr std::uint8_t kKindResponse = 2;
constexpr std::uint8_t kKindRequestById = 3;

// Reads and checks the two-byte header; nullopt unless (kWireVersion, kind).
bool read_header(crypto::ByteReader& reader, std::uint8_t kind) {
  const auto version = reader.get_u8();
  const auto got_kind = reader.get_u8();
  return version && *version == kWireVersion && got_kind && *got_kind == kind;
}

}  // namespace

std::optional<std::uint8_t> scheme_wire_id(std::string_view name) {
  const auto names = cls::scheme_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<std::uint8_t>(i);
  }
  return std::nullopt;
}

std::optional<std::string_view> scheme_from_wire_id(std::uint8_t wire_id) {
  const auto names = cls::scheme_names();
  if (wire_id >= names.size()) return std::nullopt;
  return names[wire_id];
}

crypto::Bytes encode_request(const VerifyRequest& request) {
  crypto::ByteWriter w;
  w.put_u8(kWireVersion);
  w.put_u8(request.by_identity ? kKindRequestById : kKindRequest);
  w.put_u64(request.request_id);
  // Unknown scheme names encode as 0xFF, which no decoder accepts — an
  // encode/decode round trip cannot launder a bad scheme into a valid one.
  w.put_u8(scheme_wire_id(request.scheme).value_or(0xFF));
  w.put_field(request.id);
  if (!request.by_identity) w.put_field(request.public_key.to_bytes());
  w.put_field(request.message);
  w.put_field(request.signature);
  return w.take();
}

std::optional<VerifyRequest> decode_request(std::span<const std::uint8_t> bytes) {
  crypto::ByteReader reader(bytes);
  const auto version = reader.get_u8();
  const auto kind = reader.get_u8();
  if (!version || *version != kWireVersion || !kind) return std::nullopt;
  if (*kind != kKindRequest && *kind != kKindRequestById) return std::nullopt;
  const bool by_identity = *kind == kKindRequestById;
  const auto request_id = reader.get_u64();
  const auto scheme_id = reader.get_u8();
  if (!request_id || !scheme_id) return std::nullopt;
  const auto scheme = scheme_from_wire_id(*scheme_id);
  if (!scheme) return std::nullopt;
  const auto id = reader.get_field(kMaxIdLen);
  if (!id) return std::nullopt;
  cls::PublicKey public_key;
  if (!by_identity) {
    const auto pk_bytes = reader.get_field(kMaxPublicKeyLen);
    if (!pk_bytes) return std::nullopt;
    auto decoded = cls::PublicKey::from_bytes(*pk_bytes);
    if (!decoded) return std::nullopt;
    public_key = std::move(*decoded);
  } else if (id->empty()) {
    return std::nullopt;  // nothing to resolve by
  }
  const auto message = reader.get_field(kMaxMessageLen);
  const auto signature = reader.get_field(kMaxSignatureLen);
  if (!message || !signature || !reader.exhausted()) return std::nullopt;
  return VerifyRequest{.request_id = *request_id,
                       .scheme = std::string(*scheme),
                       .id = std::string(id->begin(), id->end()),
                       .by_identity = by_identity,
                       .public_key = std::move(public_key),
                       .message = *message,
                       .signature = *signature};
}

crypto::Bytes encode_response(const VerifyResponse& response) {
  crypto::ByteWriter w;
  w.put_u8(kWireVersion);
  w.put_u8(kKindResponse);
  w.put_u64(response.request_id);
  w.put_u8(static_cast<std::uint8_t>(response.status));
  return w.take();
}

std::optional<VerifyResponse> decode_response(std::span<const std::uint8_t> bytes) {
  crypto::ByteReader reader(bytes);
  if (!read_header(reader, kKindResponse)) return std::nullopt;
  const auto request_id = reader.get_u64();
  const auto status = reader.get_u8();
  if (!request_id || !status || !reader.exhausted()) return std::nullopt;
  if (*status > static_cast<std::uint8_t>(Status::kUnavailable)) return std::nullopt;
  return VerifyResponse{.request_id = *request_id, .status = Status{*status}};
}

}  // namespace mccls::svc
