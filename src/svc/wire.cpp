#include "svc/wire.hpp"

#include "cls/registry.hpp"

namespace mccls::svc {

namespace {

constexpr std::uint8_t kKindRequest = 1;
constexpr std::uint8_t kKindResponse = 2;

// Reads and checks the two-byte header; nullopt unless (kWireVersion, kind).
bool read_header(crypto::ByteReader& reader, std::uint8_t kind) {
  const auto version = reader.get_u8();
  const auto got_kind = reader.get_u8();
  return version && *version == kWireVersion && got_kind && *got_kind == kind;
}

}  // namespace

std::optional<std::uint8_t> scheme_wire_id(std::string_view name) {
  const auto names = cls::scheme_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<std::uint8_t>(i);
  }
  return std::nullopt;
}

std::optional<std::string_view> scheme_from_wire_id(std::uint8_t wire_id) {
  const auto names = cls::scheme_names();
  if (wire_id >= names.size()) return std::nullopt;
  return names[wire_id];
}

crypto::Bytes encode_request(const VerifyRequest& request) {
  crypto::ByteWriter w;
  w.put_u8(kWireVersion);
  w.put_u8(kKindRequest);
  w.put_u64(request.request_id);
  // Unknown scheme names encode as 0xFF, which no decoder accepts — an
  // encode/decode round trip cannot launder a bad scheme into a valid one.
  w.put_u8(scheme_wire_id(request.scheme).value_or(0xFF));
  w.put_field(request.id);
  w.put_field(request.public_key.to_bytes());
  w.put_field(request.message);
  w.put_field(request.signature);
  return w.take();
}

std::optional<VerifyRequest> decode_request(std::span<const std::uint8_t> bytes) {
  crypto::ByteReader reader(bytes);
  if (!read_header(reader, kKindRequest)) return std::nullopt;
  const auto request_id = reader.get_u64();
  const auto scheme_id = reader.get_u8();
  if (!request_id || !scheme_id) return std::nullopt;
  const auto scheme = scheme_from_wire_id(*scheme_id);
  if (!scheme) return std::nullopt;
  const auto id = reader.get_field(kMaxIdLen);
  const auto pk_bytes = reader.get_field(kMaxPublicKeyLen);
  const auto message = reader.get_field(kMaxMessageLen);
  const auto signature = reader.get_field(kMaxSignatureLen);
  if (!id || !pk_bytes || !message || !signature || !reader.exhausted()) {
    return std::nullopt;
  }
  auto public_key = cls::PublicKey::from_bytes(*pk_bytes);
  if (!public_key) return std::nullopt;
  return VerifyRequest{.request_id = *request_id,
                       .scheme = std::string(*scheme),
                       .id = std::string(id->begin(), id->end()),
                       .public_key = std::move(*public_key),
                       .message = *message,
                       .signature = *signature};
}

crypto::Bytes encode_response(const VerifyResponse& response) {
  crypto::ByteWriter w;
  w.put_u8(kWireVersion);
  w.put_u8(kKindResponse);
  w.put_u64(response.request_id);
  w.put_u8(static_cast<std::uint8_t>(response.status));
  return w.take();
}

std::optional<VerifyResponse> decode_response(std::span<const std::uint8_t> bytes) {
  crypto::ByteReader reader(bytes);
  if (!read_header(reader, kKindResponse)) return std::nullopt;
  const auto request_id = reader.get_u64();
  const auto status = reader.get_u8();
  if (!request_id || !status || !reader.exhausted()) return std::nullopt;
  if (*status > static_cast<std::uint8_t>(Status::kMalformed)) return std::nullopt;
  return VerifyResponse{.request_id = *request_id, .status = Status{*status}};
}

}  // namespace mccls::svc
