// Canonical wire framing for verifyd requests and responses — the boundary
// format a remote client (or the load generator) speaks to the service.
// Built on crypto/encoding's length-prefixed ByteWriter/ByteReader, in the
// style of aodv/codec: versioned header, and *total* decoders — malformed,
// truncated, unknown-version and trailing-garbage inputs all yield nullopt,
// never UB or exceptions.
//
//   request  := version:u8=2  kind:u8=1  request_id:u64  scheme:u8
//               field(identity)  field(public_key)  field(message)
//               field(signature)
//   by-id    := version:u8=2  kind:u8=3  request_id:u64  scheme:u8
//               field(identity)  field(message)  field(signature)
//   response := version:u8=2  kind:u8=2  request_id:u64  status:u8
//
// `scheme` is the u8 index into cls::scheme_names() (Table 1 order), and
// `field(x)` is a u32-length-prefixed byte string. Kind 3 (verify-by-
// identity) omits the public key: the service resolves it from its
// configured PkResolver (the kgcd directory) at verification time, and
// answers kUnknownSigner when the directory definitively cannot vouch for
// the identity — or the retryable kUnavailable when resolution failed
// transiently (directory unreachable, deadline exceeded, breaker open).
//
// Version 2 added Status::kUnavailable; a v1 peer would misread status 5,
// so the version byte was bumped and v1 frames are rejected.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "cls/keys.hpp"

namespace mccls::svc {

inline constexpr std::uint8_t kWireVersion = 2;  ///< v2: Status::kUnavailable

/// Per-field size caps enforced by decode_request (first mutation-fuzz
/// findings: a frame whose length prefix far exceeds any legitimate field —
/// e.g. 0xFFFFFFFF — must be rejected from the prefix alone, before any
/// read or allocation is attempted). Generous relative to real traffic:
/// identities are short strings, a public key is at most two 33-byte points
/// behind a 1-byte count, and no Table 1 signature exceeds 98 bytes.
inline constexpr std::size_t kMaxIdLen = 1024;
inline constexpr std::size_t kMaxPublicKeyLen = 256;
inline constexpr std::size_t kMaxMessageLen = 1 << 20;
inline constexpr std::size_t kMaxSignatureLen = 4096;

/// Final verdict (or admission failure) for one request.
enum class Status : std::uint8_t {
  kVerified = 0,   ///< signature accepted
  kRejected = 1,   ///< signature (or its encoding) invalid for (id, pk, msg)
  kBusy = 2,       ///< dropped at admission: worker queue full (backpressure)
  kMalformed = 3,  ///< request frame undecodable or unknown scheme
  /// verify-by-identity only: the directory has no resolvable key for the
  /// signer (never enrolled, revoked, outside the epoch window, or the
  /// service has no resolver configured). A definitive trust verdict.
  kUnknownSigner = 4,
  /// verify-by-identity only: resolution failed *transiently* — directory
  /// unreachable, per-call deadline exceeded, or circuit breaker open. The
  /// client may retry; this is an availability outcome, never a statement
  /// about the signer's standing (that would let an outage forge a
  /// revocation).
  kUnavailable = 5,
};

struct VerifyRequest {
  std::uint64_t request_id = 0;
  std::string scheme;  ///< Table 1 name, e.g. "McCLS" (see cls::scheme_names)
  std::string id;      ///< signer identity
  /// true for kind-3 frames: public_key is empty on the wire and resolved
  /// from the service's PkResolver when the request is processed.
  bool by_identity = false;
  cls::PublicKey public_key;
  crypto::Bytes message;
  crypto::Bytes signature;
};

struct VerifyResponse {
  std::uint64_t request_id = 0;
  Status status = Status::kRejected;
};

/// Scheme name <-> compact wire id (index into cls::scheme_names()).
/// nullopt for names/ids outside Table 1.
std::optional<std::uint8_t> scheme_wire_id(std::string_view name);
std::optional<std::string_view> scheme_from_wire_id(std::uint8_t wire_id);

crypto::Bytes encode_request(const VerifyRequest& request);
std::optional<VerifyRequest> decode_request(std::span<const std::uint8_t> bytes);

crypto::Bytes encode_response(const VerifyResponse& response);
std::optional<VerifyResponse> decode_response(std::span<const std::uint8_t> bytes);

}  // namespace mccls::svc
