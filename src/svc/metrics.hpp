// Service counters: request outcomes, coalescing effectiveness (batch-size
// histogram), queue pressure and end-to-end latency percentiles. All relaxed
// atomics — metrics never order anything; they are written from workers and
// producers concurrently and read by whoever dumps them.
//
// to_json() emits the flat BENCH_*.json schema (bench/bench_json.hpp):
// latency percentiles as "results" entries and the counters under
// "derived", so tools/bench_compare can parse and gate a service metrics
// dump exactly like a benchmark trajectory file.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

namespace mccls::svc {

class ServiceMetrics {
 public:
  /// Batch-size histogram buckets: log2(size), i.e. 1, 2, 4, ... 128, 256+.
  static constexpr std::size_t kBatchBuckets = 9;
  /// Latency histogram buckets: [2^i, 2^{i+1}) ns, i < 48 (≈ 3.2 days).
  static constexpr std::size_t kLatencyBuckets = 48;

  void on_submitted() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void on_busy() { busy_.fetch_add(1, std::memory_order_relaxed); }
  void on_malformed() { malformed_.fetch_add(1, std::memory_order_relaxed); }
  void on_verified() { verified_.fetch_add(1, std::memory_order_relaxed); }
  void on_rejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }

  void on_single_verify() { single_verifies_.fetch_add(1, std::memory_order_relaxed); }
  void on_batch(std::size_t size) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    batched_signatures_.fetch_add(size, std::memory_order_relaxed);
    batch_hist_[log2_bucket(size, kBatchBuckets)].fetch_add(1, std::memory_order_relaxed);
  }
  /// A batch that failed the small-exponent test and was re-verified
  /// signature by signature.
  void on_batch_fallback() { batch_fallbacks_.fetch_add(1, std::memory_order_relaxed); }
  /// One multi_pair product evaluation covering `groups` coalesced batches
  /// (the number of ê(·,·) factors sharing one Miller loop).
  void on_multi_pair(std::size_t groups) {
    multi_pair_batches_.fetch_add(1, std::memory_order_relaxed);
    multi_pair_groups_.fetch_add(groups, std::memory_order_relaxed);
  }

  void on_latency_ns(std::uint64_t ns) {
    latency_hist_[log2_bucket(ns, kLatencyBuckets)].fetch_add(1, std::memory_order_relaxed);
  }

  // -- kgcd directory + store instrumentation -------------------------------
  /// Identity resolved from the decoded-key LRU (no point decompression).
  void on_dir_hit() { dir_hits_.fetch_add(1, std::memory_order_relaxed); }
  /// Identity resolved from stored bytes (paid the decompression sqrt).
  void on_dir_miss() { dir_misses_.fetch_add(1, std::memory_order_relaxed); }
  /// verify-by-identity request whose signer the directory could not vouch for.
  void on_unknown_signer() { unknown_signer_.fetch_add(1, std::memory_order_relaxed); }
  /// verify-by-identity request answered kUnavailable (transient resolver
  /// failure — a retryable availability outcome, never a trust verdict).
  void on_unavailable() { unavailable_.fetch_add(1, std::memory_order_relaxed); }

  // -- resolver pipeline (failure-typed contract + ResilientResolver) -------
  /// One outcome counter per ResolveOutcome value, recorded by the service
  /// for whatever resolver it is configured with.
  void on_resolve_ok() { resolve_ok_.fetch_add(1, std::memory_order_relaxed); }
  void on_resolve_not_vouched() {
    resolve_not_vouched_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_resolve_unavailable() {
    resolve_unavailable_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_resolve_timeout() {
    resolve_timeout_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Wall time of one top-level resolve() call (retries/backoff included).
  void on_resolve_latency_ns(std::uint64_t ns) {
    resolve_hist_[log2_bucket(ns, kLatencyBuckets)].fetch_add(1,
                                                             std::memory_order_relaxed);
  }
  /// ResilientResolver machinery: one retry sleep taken.
  void on_resolve_retry() { resolve_retries_.fetch_add(1, std::memory_order_relaxed); }
  /// Call answered kUnavailable without touching the inner resolver because
  /// the breaker was open (or a half-open probe was already out).
  void on_breaker_fast_fail() {
    breaker_fast_fails_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Breaker transitioned (back) to open.
  void on_breaker_trip() { breaker_trips_.fetch_add(1, std::memory_order_relaxed); }
  /// Gauge: current BreakerState as its numeric value (0 closed, 1 open,
  /// 2 half-open).
  void set_breaker_state(std::uint8_t state) {
    breaker_state_.store(state, std::memory_order_relaxed);
  }
  /// kNotVouched verdict replayed from the negative TTL cache.
  void on_negative_cache_hit() {
    negative_cache_hits_.fetch_add(1, std::memory_order_relaxed);
  }

  // -- voucher path (kgc::VoucherVerifyingResolver) --------------------------
  /// Identity resolved from a cached, verified, unexpired voucher — no
  /// directory call.
  void on_voucher_hit() { voucher_hits_.fetch_add(1, std::memory_order_relaxed); }
  /// Cached voucher found but past not_after; treated as a miss.
  void on_voucher_expired() {
    voucher_expired_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Presented chain failed verification (bad signature, untrusted issuer,
  /// or structurally broken) and was dropped, never trusted.
  void on_voucher_bad_sig() {
    voucher_bad_sig_.fetch_add(1, std::memory_order_relaxed);
  }
  /// One durable WAL append: fsync (or write, when fsync is off) latency.
  void on_wal_fsync_ns(std::uint64_t ns) {
    wal_fsyncs_.fetch_add(1, std::memory_order_relaxed);
    wal_fsync_hist_[log2_bucket(ns, kLatencyBuckets)].fetch_add(1, std::memory_order_relaxed);
  }

  // -- segmented store + replication (kgc::LogStore / kgc::Replica) ---------
  /// One active segment sealed and rotated.
  void on_segment_sealed() { segments_sealed_.fetch_add(1, std::memory_order_relaxed); }
  /// One shard compacted (snapshot written, folded segments deleted).
  void on_compaction() { compactions_.fetch_add(1, std::memory_order_relaxed); }
  /// WAL records applied from kReplicate batches (follower side).
  void on_replica_records(std::size_t n) {
    replica_records_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Snapshot entries staged from kReplicate bootstrap chunks.
  void on_replica_snapshot_entries(std::size_t n) {
    replica_snapshot_entries_.fetch_add(n, std::memory_order_relaxed);
  }
  /// ReplicaSetResolver moved past a transient endpoint to the next one.
  void on_resolve_failover() {
    resolve_failovers_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_queue_depth(std::size_t depth) {
    std::uint64_t peak = queue_depth_peak_.load(std::memory_order_relaxed);
    while (depth > peak &&
           !queue_depth_peak_.compare_exchange_weak(peak, depth, std::memory_order_relaxed)) {
    }
  }

  struct Snapshot {
    std::uint64_t submitted = 0;
    std::uint64_t verified = 0;
    std::uint64_t rejected = 0;
    std::uint64_t busy = 0;
    std::uint64_t malformed = 0;
    std::uint64_t batches = 0;
    std::uint64_t batched_signatures = 0;
    std::uint64_t batch_fallbacks = 0;
    std::uint64_t multi_pair_batches = 0;
    std::uint64_t multi_pair_groups = 0;
    std::uint64_t single_verifies = 0;
    std::uint64_t queue_depth_peak = 0;
    std::uint64_t dir_hits = 0;
    std::uint64_t dir_misses = 0;
    std::uint64_t unknown_signer = 0;
    std::uint64_t unavailable = 0;
    std::uint64_t wal_fsyncs = 0;
    std::uint64_t resolve_ok = 0;
    std::uint64_t resolve_not_vouched = 0;
    std::uint64_t resolve_unavailable = 0;
    std::uint64_t resolve_timeout = 0;
    std::uint64_t resolve_retries = 0;
    std::uint64_t breaker_fast_fails = 0;
    std::uint64_t breaker_trips = 0;
    std::uint64_t breaker_state = 0;
    std::uint64_t negative_cache_hits = 0;
    std::uint64_t voucher_hits = 0;
    std::uint64_t voucher_expired = 0;
    std::uint64_t voucher_bad_sig = 0;
    std::uint64_t segments_sealed = 0;
    std::uint64_t compactions = 0;
    std::uint64_t replica_records = 0;
    std::uint64_t replica_snapshot_entries = 0;
    std::uint64_t resolve_failovers = 0;
    std::array<std::uint64_t, kBatchBuckets> batch_hist{};
    double latency_p50_ns = 0;
    double latency_p99_ns = 0;
    double wal_fsync_p50_ns = 0;
    double wal_fsync_p99_ns = 0;
    double resolve_p50_ns = 0;
    double resolve_p99_ns = 0;
    /// Fraction of directory resolutions served from the decoded-key cache.
    [[nodiscard]] double dir_hit_rate() const {
      const std::uint64_t total = dir_hits + dir_misses;
      return total == 0 ? 0.0
                        : static_cast<double>(dir_hits) / static_cast<double>(total);
    }
    /// Mean signatures per batch_verify call (1.0 when nothing coalesced).
    [[nodiscard]] double mean_batch_size() const {
      return batches == 0 ? 1.0
                          : static_cast<double>(batched_signatures) /
                                static_cast<double>(batches);
    }
    /// Mean ê(·,·) factors per multi_pair product (1.0 when none ran).
    [[nodiscard]] double mean_multi_pair_width() const {
      return multi_pair_batches == 0 ? 1.0
                                     : static_cast<double>(multi_pair_groups) /
                                           static_cast<double>(multi_pair_batches);
    }
  };

  [[nodiscard]] Snapshot snapshot() const {
    Snapshot s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.verified = verified_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.busy = busy_.load(std::memory_order_relaxed);
    s.malformed = malformed_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.batched_signatures = batched_signatures_.load(std::memory_order_relaxed);
    s.batch_fallbacks = batch_fallbacks_.load(std::memory_order_relaxed);
    s.multi_pair_batches = multi_pair_batches_.load(std::memory_order_relaxed);
    s.multi_pair_groups = multi_pair_groups_.load(std::memory_order_relaxed);
    s.single_verifies = single_verifies_.load(std::memory_order_relaxed);
    s.queue_depth_peak = queue_depth_peak_.load(std::memory_order_relaxed);
    s.dir_hits = dir_hits_.load(std::memory_order_relaxed);
    s.dir_misses = dir_misses_.load(std::memory_order_relaxed);
    s.unknown_signer = unknown_signer_.load(std::memory_order_relaxed);
    s.unavailable = unavailable_.load(std::memory_order_relaxed);
    s.wal_fsyncs = wal_fsyncs_.load(std::memory_order_relaxed);
    s.resolve_ok = resolve_ok_.load(std::memory_order_relaxed);
    s.resolve_not_vouched = resolve_not_vouched_.load(std::memory_order_relaxed);
    s.resolve_unavailable = resolve_unavailable_.load(std::memory_order_relaxed);
    s.resolve_timeout = resolve_timeout_.load(std::memory_order_relaxed);
    s.resolve_retries = resolve_retries_.load(std::memory_order_relaxed);
    s.breaker_fast_fails = breaker_fast_fails_.load(std::memory_order_relaxed);
    s.breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
    s.breaker_state = breaker_state_.load(std::memory_order_relaxed);
    s.negative_cache_hits = negative_cache_hits_.load(std::memory_order_relaxed);
    s.voucher_hits = voucher_hits_.load(std::memory_order_relaxed);
    s.voucher_expired = voucher_expired_.load(std::memory_order_relaxed);
    s.voucher_bad_sig = voucher_bad_sig_.load(std::memory_order_relaxed);
    s.segments_sealed = segments_sealed_.load(std::memory_order_relaxed);
    s.compactions = compactions_.load(std::memory_order_relaxed);
    s.replica_records = replica_records_.load(std::memory_order_relaxed);
    s.replica_snapshot_entries =
        replica_snapshot_entries_.load(std::memory_order_relaxed);
    s.resolve_failovers = resolve_failovers_.load(std::memory_order_relaxed);
    std::array<std::uint64_t, kLatencyBuckets> lat{};
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
      lat[i] = latency_hist_[i].load(std::memory_order_relaxed);
      total += lat[i];
    }
    for (std::size_t i = 0; i < kBatchBuckets; ++i) {
      s.batch_hist[i] = batch_hist_[i].load(std::memory_order_relaxed);
    }
    s.latency_p50_ns = percentile(lat, total, 0.50);
    s.latency_p99_ns = percentile(lat, total, 0.99);
    std::array<std::uint64_t, kLatencyBuckets> fsync{};
    std::uint64_t fsync_total = 0;
    for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
      fsync[i] = wal_fsync_hist_[i].load(std::memory_order_relaxed);
      fsync_total += fsync[i];
    }
    s.wal_fsync_p50_ns = percentile(fsync, fsync_total, 0.50);
    s.wal_fsync_p99_ns = percentile(fsync, fsync_total, 0.99);
    std::array<std::uint64_t, kLatencyBuckets> resolve{};
    std::uint64_t resolve_total = 0;
    for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
      resolve[i] = resolve_hist_[i].load(std::memory_order_relaxed);
      resolve_total += resolve[i];
    }
    s.resolve_p50_ns = percentile(resolve, resolve_total, 0.50);
    s.resolve_p99_ns = percentile(resolve, resolve_total, 0.99);
    return s;
  }

  /// Flat BENCH-schema JSON (see file comment). `name` becomes "bench".
  [[nodiscard]] std::string to_json(const std::string& name = "verifyd") const {
    const Snapshot s = snapshot();
    std::string out = "{\n  \"bench\": \"" + name + "\",\n  \"results\": [\n";
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"latency_p50\", \"iters\": %llu, \"median_ns\": %.1f, "
                  "\"mean_ns\": %.1f, \"min_ns\": %.1f},\n",
                  static_cast<unsigned long long>(s.verified + s.rejected),
                  s.latency_p50_ns, s.latency_p50_ns, s.latency_p50_ns);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"latency_p99\", \"iters\": %llu, \"median_ns\": %.1f, "
                  "\"mean_ns\": %.1f, \"min_ns\": %.1f},\n",
                  static_cast<unsigned long long>(s.verified + s.rejected),
                  s.latency_p99_ns, s.latency_p99_ns, s.latency_p99_ns);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"wal_fsync_p50\", \"iters\": %llu, \"median_ns\": %.1f, "
                  "\"mean_ns\": %.1f, \"min_ns\": %.1f},\n",
                  static_cast<unsigned long long>(s.wal_fsyncs), s.wal_fsync_p50_ns,
                  s.wal_fsync_p50_ns, s.wal_fsync_p50_ns);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"wal_fsync_p99\", \"iters\": %llu, \"median_ns\": %.1f, "
                  "\"mean_ns\": %.1f, \"min_ns\": %.1f},\n",
                  static_cast<unsigned long long>(s.wal_fsyncs), s.wal_fsync_p99_ns,
                  s.wal_fsync_p99_ns, s.wal_fsync_p99_ns);
    out += buf;
    const unsigned long long resolves =
        static_cast<unsigned long long>(s.resolve_ok + s.resolve_not_vouched +
                                        s.resolve_unavailable + s.resolve_timeout);
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"resolve_p50\", \"iters\": %llu, \"median_ns\": %.1f, "
                  "\"mean_ns\": %.1f, \"min_ns\": %.1f},\n",
                  resolves, s.resolve_p50_ns, s.resolve_p50_ns, s.resolve_p50_ns);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"resolve_p99\", \"iters\": %llu, \"median_ns\": %.1f, "
                  "\"mean_ns\": %.1f, \"min_ns\": %.1f}\n",
                  resolves, s.resolve_p99_ns, s.resolve_p99_ns, s.resolve_p99_ns);
    out += buf;
    out += "  ],\n  \"derived\": {\n";
    const auto counter = [&](const char* key, double value, bool last = false) {
      std::snprintf(buf, sizeof buf, "    \"%s\": %.4f%s\n", key, value, last ? "" : ",");
      out += buf;
    };
    counter("submitted", static_cast<double>(s.submitted));
    counter("verified", static_cast<double>(s.verified));
    counter("rejected", static_cast<double>(s.rejected));
    counter("busy", static_cast<double>(s.busy));
    counter("malformed", static_cast<double>(s.malformed));
    counter("batches", static_cast<double>(s.batches));
    counter("batched_signatures", static_cast<double>(s.batched_signatures));
    counter("batch_fallbacks", static_cast<double>(s.batch_fallbacks));
    counter("multi_pair_batches", static_cast<double>(s.multi_pair_batches));
    counter("multi_pair_groups", static_cast<double>(s.multi_pair_groups));
    counter("mean_multi_pair_width", s.mean_multi_pair_width());
    counter("single_verifies", static_cast<double>(s.single_verifies));
    counter("mean_batch_size", s.mean_batch_size());
    // Coalesced-batch-size log2 histogram: bucket i counts batches of
    // [2^i, 2^{i+1}) signatures. This is what makes a throughput claim
    // attributable to actual batch depth under a given arrival skew.
    for (std::size_t i = 0; i < kBatchBuckets; ++i) {
      char key[32];
      std::snprintf(key, sizeof key, "batch_hist_%llu",
                    static_cast<unsigned long long>(std::uint64_t{1} << i));
      counter(key, static_cast<double>(s.batch_hist[i]));
    }
    counter("queue_depth_peak", static_cast<double>(s.queue_depth_peak));
    counter("dir_hits", static_cast<double>(s.dir_hits));
    counter("dir_misses", static_cast<double>(s.dir_misses));
    counter("dir_hit_rate", s.dir_hit_rate());
    counter("unknown_signer", static_cast<double>(s.unknown_signer));
    counter("unavailable", static_cast<double>(s.unavailable));
    counter("resolve_ok", static_cast<double>(s.resolve_ok));
    counter("resolve_not_vouched", static_cast<double>(s.resolve_not_vouched));
    counter("resolve_unavailable", static_cast<double>(s.resolve_unavailable));
    counter("resolve_timeout", static_cast<double>(s.resolve_timeout));
    counter("resolve_retries", static_cast<double>(s.resolve_retries));
    counter("breaker_fast_fails", static_cast<double>(s.breaker_fast_fails));
    counter("breaker_trips", static_cast<double>(s.breaker_trips));
    counter("breaker_state", static_cast<double>(s.breaker_state));
    counter("negative_cache_hits", static_cast<double>(s.negative_cache_hits));
    counter("voucher_hits", static_cast<double>(s.voucher_hits));
    counter("voucher_expired", static_cast<double>(s.voucher_expired));
    counter("voucher_bad_sig", static_cast<double>(s.voucher_bad_sig));
    counter("resolve_failovers", static_cast<double>(s.resolve_failovers));
    counter("segments_sealed", static_cast<double>(s.segments_sealed));
    counter("compactions", static_cast<double>(s.compactions));
    counter("replica_records", static_cast<double>(s.replica_records));
    counter("replica_snapshot_entries", static_cast<double>(s.replica_snapshot_entries));
    counter("wal_fsyncs", static_cast<double>(s.wal_fsyncs), true);
    out += "  }\n}\n";
    return out;
  }

  /// floor(log2(v)) clamped to [0, buckets); v == 0 lands in bucket 0, so
  /// bucket 0 covers [0, 2) while every later bucket i covers [2^i, 2^{i+1}).
  /// Public: the bucket boundaries are part of the dump's meaning and tests
  /// pin them.
  static std::size_t log2_bucket(std::uint64_t v, std::size_t buckets) {
    std::size_t b = 0;
    while (v > 1 && b + 1 < buckets) {
      v >>= 1;
      ++b;
    }
    return b;
  }

  /// Representative value reported for bucket i: the midpoint 1.0 for bucket
  /// 0 (whose honest range is [0, 2) — it absorbs v == 0, so the geometric
  /// midpoint of [1, 2) would overstate zero-valued samples), and the
  /// geometric midpoint 1.5 * 2^i of [2^i, 2^{i+1}) for every later bucket.
  static double bucket_midpoint(std::size_t i) {
    if (i == 0) return 1.0;
    return static_cast<double>(std::uint64_t{1} << i) * 1.5;
  }

 private:
  template <std::size_t N>
  static double percentile(const std::array<std::uint64_t, N>& hist, std::uint64_t total,
                           double q) {
    if (total == 0) return 0;
    const double target = q * static_cast<double>(total);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < N; ++i) {
      seen += hist[i];
      if (static_cast<double>(seen) >= target) return bucket_midpoint(i);
    }
    return static_cast<double>(std::uint64_t{1} << (N - 1));
  }

  std::atomic<std::uint64_t> submitted_{0}, verified_{0}, rejected_{0}, busy_{0},
      malformed_{0};
  std::atomic<std::uint64_t> batches_{0}, batched_signatures_{0}, batch_fallbacks_{0},
      single_verifies_{0}, multi_pair_batches_{0}, multi_pair_groups_{0};
  std::atomic<std::uint64_t> queue_depth_peak_{0};
  std::atomic<std::uint64_t> dir_hits_{0}, dir_misses_{0}, unknown_signer_{0},
      unavailable_{0}, wal_fsyncs_{0};
  std::atomic<std::uint64_t> resolve_ok_{0}, resolve_not_vouched_{0},
      resolve_unavailable_{0}, resolve_timeout_{0}, resolve_retries_{0};
  std::atomic<std::uint64_t> breaker_fast_fails_{0}, breaker_trips_{0},
      breaker_state_{0}, negative_cache_hits_{0};
  std::atomic<std::uint64_t> voucher_hits_{0}, voucher_expired_{0}, voucher_bad_sig_{0};
  std::atomic<std::uint64_t> segments_sealed_{0}, compactions_{0}, replica_records_{0},
      replica_snapshot_entries_{0}, resolve_failovers_{0};
  std::array<std::atomic<std::uint64_t>, kBatchBuckets> batch_hist_{};
  std::array<std::atomic<std::uint64_t>, kLatencyBuckets> latency_hist_{};
  std::array<std::atomic<std::uint64_t>, kLatencyBuckets> wal_fsync_hist_{};
  std::array<std::atomic<std::uint64_t>, kLatencyBuckets> resolve_hist_{};
};

}  // namespace mccls::svc
