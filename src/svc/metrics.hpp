// Service counters: request outcomes, coalescing effectiveness (batch-size
// histogram), queue pressure and end-to-end latency percentiles. All relaxed
// atomics — metrics never order anything; they are written from workers and
// producers concurrently and read by whoever dumps them.
//
// to_json() emits the flat BENCH_*.json schema (bench/bench_json.hpp):
// latency percentiles as "results" entries and the counters under
// "derived", so tools/bench_compare can parse and gate a service metrics
// dump exactly like a benchmark trajectory file.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

namespace mccls::svc {

class ServiceMetrics {
 public:
  /// Batch-size histogram buckets: log2(size), i.e. 1, 2, 4, ... 128, 256+.
  static constexpr std::size_t kBatchBuckets = 9;
  /// Latency histogram buckets: [2^i, 2^{i+1}) ns, i < 48 (≈ 3.2 days).
  static constexpr std::size_t kLatencyBuckets = 48;

  void on_submitted() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void on_busy() { busy_.fetch_add(1, std::memory_order_relaxed); }
  void on_malformed() { malformed_.fetch_add(1, std::memory_order_relaxed); }
  void on_verified() { verified_.fetch_add(1, std::memory_order_relaxed); }
  void on_rejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }

  void on_single_verify() { single_verifies_.fetch_add(1, std::memory_order_relaxed); }
  void on_batch(std::size_t size) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    batched_signatures_.fetch_add(size, std::memory_order_relaxed);
    batch_hist_[log2_bucket(size, kBatchBuckets)].fetch_add(1, std::memory_order_relaxed);
  }
  /// A batch that failed the small-exponent test and was re-verified
  /// signature by signature.
  void on_batch_fallback() { batch_fallbacks_.fetch_add(1, std::memory_order_relaxed); }

  void on_latency_ns(std::uint64_t ns) {
    latency_hist_[log2_bucket(ns, kLatencyBuckets)].fetch_add(1, std::memory_order_relaxed);
  }
  void on_queue_depth(std::size_t depth) {
    std::uint64_t peak = queue_depth_peak_.load(std::memory_order_relaxed);
    while (depth > peak &&
           !queue_depth_peak_.compare_exchange_weak(peak, depth, std::memory_order_relaxed)) {
    }
  }

  struct Snapshot {
    std::uint64_t submitted = 0;
    std::uint64_t verified = 0;
    std::uint64_t rejected = 0;
    std::uint64_t busy = 0;
    std::uint64_t malformed = 0;
    std::uint64_t batches = 0;
    std::uint64_t batched_signatures = 0;
    std::uint64_t batch_fallbacks = 0;
    std::uint64_t single_verifies = 0;
    std::uint64_t queue_depth_peak = 0;
    std::array<std::uint64_t, kBatchBuckets> batch_hist{};
    double latency_p50_ns = 0;
    double latency_p99_ns = 0;
    /// Mean signatures per batch_verify call (1.0 when nothing coalesced).
    [[nodiscard]] double mean_batch_size() const {
      return batches == 0 ? 1.0
                          : static_cast<double>(batched_signatures) /
                                static_cast<double>(batches);
    }
  };

  [[nodiscard]] Snapshot snapshot() const {
    Snapshot s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.verified = verified_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.busy = busy_.load(std::memory_order_relaxed);
    s.malformed = malformed_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.batched_signatures = batched_signatures_.load(std::memory_order_relaxed);
    s.batch_fallbacks = batch_fallbacks_.load(std::memory_order_relaxed);
    s.single_verifies = single_verifies_.load(std::memory_order_relaxed);
    s.queue_depth_peak = queue_depth_peak_.load(std::memory_order_relaxed);
    std::array<std::uint64_t, kLatencyBuckets> lat{};
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
      lat[i] = latency_hist_[i].load(std::memory_order_relaxed);
      total += lat[i];
    }
    for (std::size_t i = 0; i < kBatchBuckets; ++i) {
      s.batch_hist[i] = batch_hist_[i].load(std::memory_order_relaxed);
    }
    s.latency_p50_ns = percentile(lat, total, 0.50);
    s.latency_p99_ns = percentile(lat, total, 0.99);
    return s;
  }

  /// Flat BENCH-schema JSON (see file comment). `name` becomes "bench".
  [[nodiscard]] std::string to_json(const std::string& name = "verifyd") const {
    const Snapshot s = snapshot();
    std::string out = "{\n  \"bench\": \"" + name + "\",\n  \"results\": [\n";
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"latency_p50\", \"iters\": %llu, \"median_ns\": %.1f, "
                  "\"mean_ns\": %.1f, \"min_ns\": %.1f},\n",
                  static_cast<unsigned long long>(s.verified + s.rejected),
                  s.latency_p50_ns, s.latency_p50_ns, s.latency_p50_ns);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"latency_p99\", \"iters\": %llu, \"median_ns\": %.1f, "
                  "\"mean_ns\": %.1f, \"min_ns\": %.1f}\n",
                  static_cast<unsigned long long>(s.verified + s.rejected),
                  s.latency_p99_ns, s.latency_p99_ns, s.latency_p99_ns);
    out += buf;
    out += "  ],\n  \"derived\": {\n";
    const auto counter = [&](const char* key, double value, bool last = false) {
      std::snprintf(buf, sizeof buf, "    \"%s\": %.4f%s\n", key, value, last ? "" : ",");
      out += buf;
    };
    counter("submitted", static_cast<double>(s.submitted));
    counter("verified", static_cast<double>(s.verified));
    counter("rejected", static_cast<double>(s.rejected));
    counter("busy", static_cast<double>(s.busy));
    counter("malformed", static_cast<double>(s.malformed));
    counter("batches", static_cast<double>(s.batches));
    counter("batched_signatures", static_cast<double>(s.batched_signatures));
    counter("batch_fallbacks", static_cast<double>(s.batch_fallbacks));
    counter("single_verifies", static_cast<double>(s.single_verifies));
    counter("mean_batch_size", s.mean_batch_size());
    counter("queue_depth_peak", static_cast<double>(s.queue_depth_peak), true);
    out += "  }\n}\n";
    return out;
  }

 private:
  /// floor(log2(v)) clamped to [0, buckets); v == 0 lands in bucket 0.
  static std::size_t log2_bucket(std::uint64_t v, std::size_t buckets) {
    std::size_t b = 0;
    while (v > 1 && b + 1 < buckets) {
      v >>= 1;
      ++b;
    }
    return b;
  }

  template <std::size_t N>
  static double percentile(const std::array<std::uint64_t, N>& hist, std::uint64_t total,
                           double q) {
    if (total == 0) return 0;
    const double target = q * static_cast<double>(total);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < N; ++i) {
      seen += hist[i];
      if (static_cast<double>(seen) >= target) {
        // Report the bucket's geometric midpoint: [2^i, 2^{i+1}).
        return static_cast<double>(std::uint64_t{1} << i) * 1.5;
      }
    }
    return static_cast<double>(std::uint64_t{1} << (N - 1));
  }

  std::atomic<std::uint64_t> submitted_{0}, verified_{0}, rejected_{0}, busy_{0},
      malformed_{0};
  std::atomic<std::uint64_t> batches_{0}, batched_signatures_{0}, batch_fallbacks_{0},
      single_verifies_{0};
  std::atomic<std::uint64_t> queue_depth_peak_{0};
  std::array<std::atomic<std::uint64_t>, kBatchBuckets> batch_hist_{};
  std::array<std::atomic<std::uint64_t>, kLatencyBuckets> latency_hist_{};
};

}  // namespace mccls::svc
