#include "svc/service.hpp"

#include <unordered_map>
#include <utility>

#include "cls/batch.hpp"
#include "cls/mccls.hpp"
#include "cls/registry.hpp"
#include "pairing/pairing.hpp"

namespace mccls::svc {

namespace {

/// Coalescing key: signatures are batchable iff identity, public key AND the
/// signer-static S component all agree (batch_verify's precondition). Keying
/// on S rather than trusting it makes the coalescer fall back to single
/// verification automatically when S components differ.
std::string group_key(const VerifyRequest& request, const cls::McclsSignature& sig) {
  crypto::ByteWriter w;
  w.put_field(request.id);
  w.put_field(request.public_key.to_bytes());
  const auto s_bytes = sig.s.to_bytes();
  w.put_field(s_bytes);
  return std::string(w.bytes().begin(), w.bytes().end());
}

}  // namespace

VerifyService::VerifyService(const cls::SystemParams& params, ServiceConfig config)
    : params_(params), config_(config), cache_(config.cache_shards) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.min_batch < 2) config_.min_batch = 2;
  // Populate the lazy p-is-generator cache before any worker exists:
  // SystemParams caches the comparison in a mutable field, which would be a
  // write-write race if first evaluated concurrently.
  (void)params_.p_is_generator();
  // A ResilientResolver shares this service's metrics, so its breaker /
  // retry / negative-cache counters land in the same BENCH dump as the
  // per-outcome counters the service records itself.
  if (auto* resilient = dynamic_cast<ResilientResolver*>(config_.resolver)) {
    resilient->set_metrics(&metrics_);
  }
  for (const std::string_view name : cls::scheme_names()) {
    schemes_.push_back(cls::make_scheme(name));
  }
  queues_.reserve(config_.workers);
  for (unsigned i = 0; i < config_.workers; ++i) {
    queues_.push_back(std::make_unique<BoundedQueue<Job>>(config_.queue_capacity));
  }
  threads_.reserve(config_.workers);
  for (unsigned i = 0; i < config_.workers; ++i) {
    threads_.emplace_back(
        [this, i](std::stop_token stop) { worker_main(std::move(stop), i); });
  }
}

VerifyService::~VerifyService() { shutdown(); }

void VerifyService::shutdown() {
  for (auto& queue : queues_) queue->close();
  threads_.clear();  // jthread dtors join; workers exit after draining
}

bool VerifyService::submit(VerifyRequest request, Completion done) {
  metrics_.on_submitted();
  if (!scheme_wire_id(request.scheme)) {
    metrics_.on_malformed();
    if (done) done(VerifyResponse{request.request_id, Status::kMalformed});
    return false;
  }
  const std::size_t shard =
      std::hash<std::string_view>{}(std::string_view(request.id)) % queues_.size();
  Job job{std::move(request), std::move(done), std::chrono::steady_clock::now()};
  if (!queues_[shard]->try_push(std::move(job))) {
    // try_push leaves its argument intact on refusal, so `job` still holds
    // the request and completion.
    metrics_.on_busy();
    if (job.done) job.done(VerifyResponse{job.request.request_id, Status::kBusy});
    return false;
  }
  metrics_.on_queue_depth(queues_[shard]->size());
  return true;
}

bool VerifyService::submit_bytes(std::span<const std::uint8_t> frame, Completion done) {
  auto request = decode_request(frame);
  if (!request) {
    metrics_.on_submitted();
    metrics_.on_malformed();
    if (done) done(VerifyResponse{0, Status::kMalformed});
    return false;
  }
  return submit(std::move(*request), std::move(done));
}

void VerifyService::worker_main(std::stop_token stop, unsigned index) {
  // Per-worker DRBG: only consumed for batch_verify's blinding exponents
  // δ_i, which need unpredictability, not cross-worker coordination.
  crypto::HmacDrbg rng(config_.seed ^ (0x9E3779B97F4A7C15ULL * (index + 1)));
  std::vector<Job> chunk;
  chunk.reserve(config_.max_drain);
  while (queues_[index]->drain(chunk, config_.max_drain, stop)) {
    process_chunk(chunk, rng);
    chunk.clear();
  }
}

void VerifyService::process_chunk(std::vector<Job>& jobs, crypto::HmacDrbg& rng) {
  std::vector<bool> done(jobs.size(), false);

  // Resolve by-identity jobs before anything looks at their public key. The
  // outcome type keeps trust and availability apart: a definitive
  // kNotVouched (unknown, revoked, outside the epoch window, or no resolver
  // configured) answers kUnknownSigner, while a transient failure
  // (unreachable directory, deadline, open breaker) answers the retryable
  // kUnavailable — a stalled directory must never read as a revocation.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!jobs[i].request.by_identity) continue;
    const auto t0 = std::chrono::steady_clock::now();
    ResolveResult resolved = config_.resolver != nullptr
                                 ? config_.resolver->resolve(jobs[i].request.id)
                                 : ResolveResult::not_vouched();
    metrics_.on_resolve_latency_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    switch (resolved.outcome) {
      case ResolveOutcome::kOk:
        metrics_.on_resolve_ok();
        jobs[i].request.public_key = std::move(*resolved.key);
        continue;
      case ResolveOutcome::kNotVouched:
        metrics_.on_resolve_not_vouched();
        finish(jobs[i], Status::kUnknownSigner);
        break;
      case ResolveOutcome::kUnavailable:
        metrics_.on_resolve_unavailable();
        finish(jobs[i], Status::kUnavailable);
        break;
      case ResolveOutcome::kTimeout:
        metrics_.on_resolve_timeout();
        finish(jobs[i], Status::kUnavailable);
        break;
    }
    done[i] = true;
  }

  if (!config_.coalesce) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (!done[i]) verify_single(jobs[i]);
    }
    return;
  }

  // Pass 1: split the chunk into batchable McCLS groups and singles.
  // Resolved by-identity jobs coalesce like inline ones: their key is now
  // populated, so same-signer runs batch regardless of how the key arrived.
  std::vector<std::optional<cls::McclsSignature>> parsed(jobs.size());
  std::unordered_map<std::string, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (done[i]) continue;
    const VerifyRequest& request = jobs[i].request;
    if (request.scheme != "McCLS" || request.public_key.points.size() != 1) continue;
    parsed[i] = cls::McclsSignature::from_bytes(request.signature);
    if (!parsed[i]) continue;  // malformed -> single path -> kRejected
    groups[group_key(request, *parsed[i])].push_back(i);
  }

  // Pass 2: derive each group's product equation, then evaluate EVERY
  // group's pairing with one shared Miller loop: the chunk-wide product
  //   ∏_g ê(combined_g, S_g) · rhs_g == 1
  // where a cached rhs contributes a (cheap) GT power and an uncached one a
  // second pair in the multi_pair span. Distinct groups have distinct
  // (id, pk, S) and independent blinding scalars, so the small-exponent
  // soundness argument applies to the cross-group product exactly as it
  // does within one batch.
  struct PendingGroup {
    const std::vector<std::size_t>* members;
    cls::BatchEquation eq;
  };
  std::vector<PendingGroup> pending;
  for (auto& [key, members] : groups) {
    if (members.size() < config_.min_batch) continue;  // below crossover
    std::vector<cls::BatchItem> items;
    items.reserve(members.size());
    for (const std::size_t i : members) {
      items.push_back(cls::BatchItem{.message = jobs[i].request.message,
                                     .signature = *parsed[i]});
    }
    const VerifyRequest& head = jobs[members.front()].request;
    auto eq = cls::batch_equation(params_, head.id, head.public_key.primary(), items,
                                  rng, &cache_);
    if (!eq) {
      // Structurally unbatchable (mixed S slipped past grouping, zero
      // challenge, ...): the per-item path below decides each verdict.
      metrics_.on_batch_fallback();
      continue;
    }
    pending.push_back(PendingGroup{&members, std::move(*eq)});
  }

  if (!pending.empty()) {
    std::vector<std::pair<ec::G1, ec::G1>> product;
    product.reserve(pending.size() * 2);
    pairing::Gt cached_rhs = pairing::Gt::one();
    for (const PendingGroup& group : pending) {
      product.emplace_back(group.eq.combined, group.eq.s);
      if (group.eq.base) {
        cached_rhs *= group.eq.base->pow(group.eq.delta_sum).inv();
      } else {
        product.emplace_back(group.eq.rhs_point, group.eq.q_id);
      }
    }
    metrics_.on_multi_pair(pending.size());
    const bool all_ok = (pairing::multi_pair(product) * cached_rhs).is_one();
    for (const PendingGroup& group : pending) {
      // On a cross-group miss, re-test each group's own equation (same
      // blinding scalars — no re-derivation) so unrelated groups are not
      // penalized by one bad batch.
      const bool ok = all_ok || cls::batch_equation_holds(group.eq);
      if (ok) {
        metrics_.on_batch(group.members->size());
        for (const std::size_t i : *group.members) {
          finish(jobs[i], Status::kVerified);
          done[i] = true;
        }
      } else {
        // At least one member is bad (or the whole context is): re-verify
        // individually so valid members still pass and verdicts match the
        // single-threaded path exactly.
        metrics_.on_batch_fallback();
      }
    }
  }

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!done[i]) verify_single(jobs[i]);
  }
}

void VerifyService::verify_single(Job& job) {
  const VerifyRequest& request = job.request;
  const auto wire_id = scheme_wire_id(request.scheme);
  if (!wire_id) {  // unreachable via submit(), kept total
    finish(job, Status::kMalformed);
    return;
  }
  metrics_.on_single_verify();
  const bool ok = schemes_[*wire_id]->verify(params_, request.id, request.public_key,
                                             request.message, request.signature, &cache_);
  finish(job, ok ? Status::kVerified : Status::kRejected);
}

void VerifyService::finish(Job& job, Status status) {
  switch (status) {
    case Status::kVerified:
      metrics_.on_verified();
      break;
    case Status::kRejected:
      metrics_.on_rejected();
      break;
    case Status::kBusy:
      metrics_.on_busy();
      break;
    case Status::kMalformed:
      metrics_.on_malformed();
      break;
    case Status::kUnknownSigner:
      metrics_.on_unknown_signer();
      break;
    case Status::kUnavailable:
      metrics_.on_unavailable();
      break;
  }
  metrics_.on_latency_ns(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - job.enqueued)
          .count()));
  if (job.done) job.done(VerifyResponse{job.request.request_id, status});
}

}  // namespace mccls::svc
