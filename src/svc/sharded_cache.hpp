// Thread-safe, mutex-striped pairing cache for the verification service.
//
// The single-threaded cls::PairingCache keeps one unordered_map; concurrent
// get()/warm() calls would race, and (before the GtCache by-value contract)
// a warm()-induced rehash could invalidate a reference a reader was still
// holding. This cache stripes identities across independently locked shards:
// readers of different identities rarely contend, and every lookup copies
// the 64-byte GT element out under the shard lock, so no caller ever
// observes a rehash.
//
// Misses are computed *outside* the shard lock (a pairing is ~1 ms; holding
// a lock that long would serialize every worker hitting the shard). Two
// threads racing on the same cold identity may both compute the pairing;
// both arrive at the same canonical value and try_emplace keeps the first —
// duplicated work, never an inconsistent cache.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>

#include "cls/scheme.hpp"

namespace mccls::svc {

class ShardedPairingCache final : public cls::GtCache {
 public:
  explicit ShardedPairingCache(std::size_t shards = 16);

  pairing::Gt get(const cls::SystemParams& params, std::string_view id) override;

  /// Precomputes entries for every identity in `ids`. Like
  /// cls::PairingCache::warm, all final exponentiations of one shard share a
  /// single batched inversion; safe to call concurrently with get().
  void warm(const cls::SystemParams& params, std::span<const std::string> ids);

  [[nodiscard]] std::size_t size() const;  ///< distinct cached identities
  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }
  void clear();

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, pairing::Gt> map;
  };

  Shard& shard_for(std::string_view id);

  std::size_t shard_count_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace mccls::svc
