#include "svc/resolver.hpp"

#include <algorithm>
#include <thread>

namespace mccls::svc {

// ---------------------------------------------------------------------------
// FaultInjectingResolver

FaultInjectingResolver::FaultInjectingResolver(PkResolver* inner, FaultConfig config)
    : inner_(inner), config_(config), rng_(config.seed) {}

ResolveResult FaultInjectingResolver::resolve(std::string_view id) {
  bool inject = false;
  std::uint32_t stall_ms = 0;
  {
    std::lock_guard lock(mutex_);
    stall_ms = config_.stall_ms;
    inject = rng_.chance(config_.fail_rate);
    if (inject) {
      ++injected_;
    } else {
      ++forwarded_;
    }
  }
  // The stall applies to injected failures too: a dead remote directory
  // costs a timeout's worth of waiting, not an instant error.
  if (stall_ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  if (inject) return ResolveResult::unavailable();
  return inner_ != nullptr ? inner_->resolve(id) : ResolveResult::not_vouched();
}

void FaultInjectingResolver::set_fail_rate(double rate) {
  std::lock_guard lock(mutex_);
  config_.fail_rate = rate;
}

void FaultInjectingResolver::set_stall_ms(std::uint32_t ms) {
  std::lock_guard lock(mutex_);
  config_.stall_ms = ms;
}

std::uint64_t FaultInjectingResolver::injected_failures() const {
  std::lock_guard lock(mutex_);
  return injected_;
}

std::uint64_t FaultInjectingResolver::forwarded() const {
  std::lock_guard lock(mutex_);
  return forwarded_;
}

// ---------------------------------------------------------------------------
// ResilientResolver

ResilientResolver::ResilientResolver(PkResolver* inner, ResilientConfig config)
    : inner_(inner), config_(config), rng_(sim::Rng(config.seed).fork("backoff")) {
  if (config_.max_attempts == 0) config_.max_attempts = 1;
  if (config_.breaker_window == 0) config_.breaker_window = 1;
  if (config_.breaker_min_samples == 0) config_.breaker_min_samples = 1;
  if (config_.half_open_probes == 0) config_.half_open_probes = 1;
  window_.assign(config_.breaker_window, 0);
}

BreakerState ResilientResolver::breaker_state() const {
  std::lock_guard lock(mutex_);
  return state_;
}

void ResilientResolver::clear_negative_cache() {
  std::lock_guard lock(mutex_);
  negative_.clear();
  negative_lru_.clear();
}

ResilientResolver::Admission ResilientResolver::admit(Clock::time_point now) {
  // Caller holds mutex_.
  switch (state_) {
    case BreakerState::kClosed:
      return Admission{.allowed = true, .probe = false};
    case BreakerState::kOpen:
      if (now - opened_at_ < config_.breaker_open) return Admission{};
      // Open window elapsed: move to half-open and admit this call as the
      // probe that decides whether the directory has recovered.
      state_ = BreakerState::kHalfOpen;
      half_open_successes_ = 0;
      probe_in_flight_ = false;
      if (metrics_ != nullptr) {
        metrics_->set_breaker_state(static_cast<std::uint8_t>(state_));
      }
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) return Admission{};  // one probe at a time
      probe_in_flight_ = true;
      return Admission{.allowed = true, .probe = true};
  }
  return Admission{};
}

void ResilientResolver::trip(Clock::time_point now) {
  // Caller holds mutex_.
  state_ = BreakerState::kOpen;
  opened_at_ = now;
  consecutive_failures_ = 0;
  window_.assign(config_.breaker_window, 0);
  window_next_ = 0;
  window_filled_ = 0;
  if (metrics_ != nullptr) {
    metrics_->on_breaker_trip();
    metrics_->set_breaker_state(static_cast<std::uint8_t>(state_));
  }
}

void ResilientResolver::close() {
  // Caller holds mutex_.
  state_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  probe_in_flight_ = false;
  window_.assign(config_.breaker_window, 0);
  window_next_ = 0;
  window_filled_ = 0;
  if (metrics_ != nullptr) {
    metrics_->set_breaker_state(static_cast<std::uint8_t>(state_));
  }
}

void ResilientResolver::on_attempt_failure(bool probe, Clock::time_point now) {
  std::lock_guard lock(mutex_);
  if (state_ == BreakerState::kHalfOpen) {
    // The recovery probe failed: the directory is still down. Reopen and
    // restart the open window.
    if (probe) probe_in_flight_ = false;
    trip(now);
    return;
  }
  if (state_ != BreakerState::kClosed) return;  // already open: nothing to count
  ++consecutive_failures_;
  window_[window_next_] = 1;
  window_next_ = (window_next_ + 1) % window_.size();
  window_filled_ = std::min(window_filled_ + 1, window_.size());
  const auto failures = static_cast<unsigned>(
      std::count(window_.begin(), window_.begin() + static_cast<std::ptrdiff_t>(window_filled_), 1));
  const bool consecutive_trip = consecutive_failures_ >= config_.breaker_consecutive;
  const bool rate_trip =
      window_filled_ >= config_.breaker_min_samples &&
      static_cast<double>(failures) >= config_.breaker_error_rate *
                                           static_cast<double>(window_filled_);
  if (consecutive_trip || rate_trip) trip(now);
}

void ResilientResolver::on_attempt_success(bool probe) {
  std::lock_guard lock(mutex_);
  if (state_ == BreakerState::kHalfOpen && probe) {
    probe_in_flight_ = false;
    if (++half_open_successes_ >= config_.half_open_probes) close();
    return;
  }
  if (state_ != BreakerState::kClosed) return;
  consecutive_failures_ = 0;
  window_[window_next_] = 0;
  window_next_ = (window_next_ + 1) % window_.size();
  window_filled_ = std::min(window_filled_ + 1, window_.size());
}

ResolveResult ResilientResolver::resolve(std::string_view id) {
  const Clock::time_point start = Clock::now();
  Admission admission;
  {
    std::lock_guard lock(mutex_);
    // Negative cache first: a fresh kNotVouched verdict answers without
    // touching the breaker or the inner resolver — this is what keeps a
    // revoked signer answering kUnknownSigner even mid-outage.
    if (const auto it = negative_.find(std::string(id)); it != negative_.end()) {
      if (start < it->second.expires) {
        if (metrics_ != nullptr) metrics_->on_negative_cache_hit();
        return ResolveResult::not_vouched();
      }
      negative_lru_.erase(it->second.lru_it);
      negative_.erase(it);
    }
    admission = admit(start);
  }
  if (!admission.allowed) {
    if (metrics_ != nullptr) metrics_->on_breaker_fast_fail();
    return ResolveResult::unavailable();
  }

  ResolveResult result = ResolveResult::unavailable();
  for (unsigned attempt = 0;; ++attempt) {
    const Clock::time_point t0 = Clock::now();
    result = inner_ != nullptr ? inner_->resolve(id) : ResolveResult::not_vouched();
    if (Clock::now() - t0 > config_.call_deadline) {
      // Late answers are classified kTimeout even when a key arrived: the
      // deadline is the contract, and an unbounded "eventually" is exactly
      // what this wrapper exists to prevent.
      result = ResolveResult::timeout();
    }
    if (!result.transient()) {
      on_attempt_success(admission.probe);
      break;
    }
    on_attempt_failure(admission.probe, Clock::now());
    if (attempt + 1 >= config_.max_attempts) break;
    std::chrono::nanoseconds backoff{};
    {
      std::lock_guard lock(mutex_);
      if (state_ != BreakerState::kClosed && !admission.probe) break;
      if (state_ == BreakerState::kOpen) break;  // probe's failure reopened it
      // Full jitter: uniform in (0, min(cap, base * 2^attempt)].
      const double cap = static_cast<double>(
          std::min(config_.backoff_cap.count(),
                   config_.backoff_base.count() << std::min(attempt, 30u)));
      backoff = std::chrono::nanoseconds(
          1 + static_cast<std::int64_t>(rng_.uniform() * cap));
    }
    if (metrics_ != nullptr) metrics_->on_resolve_retry();
    std::this_thread::sleep_for(backoff);
  }

  if (result.outcome == ResolveOutcome::kNotVouched) {
    std::lock_guard lock(mutex_);
    if (config_.negative_capacity > 0 &&
        negative_.find(std::string(id)) == negative_.end()) {
      if (negative_.size() >= config_.negative_capacity) {
        negative_.erase(negative_lru_.back());
        negative_lru_.pop_back();
      }
      negative_lru_.emplace_front(id);
      negative_.emplace(std::string(id),
                        NegativeEntry{.expires = Clock::now() + config_.negative_ttl,
                                      .lru_it = negative_lru_.begin()});
    }
  }
  return result;
}

// ---- ReplicaSetResolver ----------------------------------------------------

ReplicaSetResolver::ReplicaSetResolver(std::vector<PkResolver*> endpoints,
                                       ResilientConfig config) {
  wrapped_.reserve(endpoints.size());
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    // Fork the jitter seed per endpoint so simultaneous retries against
    // different endpoints stay decorrelated even under one configured seed.
    ResilientConfig per_endpoint = config;
    per_endpoint.seed = config.seed + i;
    wrapped_.push_back(std::make_unique<ResilientResolver>(endpoints[i], per_endpoint));
  }
}

ResolveResult ReplicaSetResolver::resolve(std::string_view id) {
  ResolveResult last = ResolveResult::unavailable();
  for (std::size_t i = 0; i < wrapped_.size(); ++i) {
    ResolveResult result = wrapped_[i]->resolve(id);
    if (!result.transient()) return result;  // definitive: kOk / kNotVouched
    last = std::move(result);
    // Transient at this endpoint (breaker open, deadline blown, transport
    // down): fail over to the next one. Counted once per hop actually taken.
    if (i + 1 < wrapped_.size() && metrics_ != nullptr) metrics_->on_resolve_failover();
  }
  return last;
}

BreakerState ReplicaSetResolver::breaker_state(std::size_t index) const {
  return wrapped_.at(index)->breaker_state();
}

void ReplicaSetResolver::set_metrics(ServiceMetrics* metrics) {
  metrics_ = metrics;
  for (const auto& resolver : wrapped_) resolver->set_metrics(metrics);
}

}  // namespace mccls::svc
