// Identity→public-key resolution interface for verify-by-identity requests.
//
// A VerifyRequest can arrive without the signer's public key (wire kind 3);
// the service then asks its configured PkResolver to vouch for the signer.
// The canonical implementation is kgc::KeyDirectory — the KGC daemon's
// validating key directory — but the interface lives here so svc does not
// depend on the kgc subsystem (the dependency points the other way).
//
// Contract: resolve() is called from worker threads concurrently and must be
// thread-safe. It returns the directory's public key for `id` (decoded and
// validated at enrollment time), or nullopt when the directory cannot vouch
// for the signer — unknown, revoked, or epoch-scoped outside the acceptance
// window. A nullopt resolution answers the request with
// Status::kUnknownSigner without attempting verification.
#pragma once

#include <optional>
#include <string_view>

#include "cls/keys.hpp"

namespace mccls::svc {

class PkResolver {
 public:
  virtual ~PkResolver() = default;

  /// Thread-safe identity→key lookup; nullopt = cannot vouch for `id`.
  virtual std::optional<cls::PublicKey> resolve(std::string_view id) = 0;
};

}  // namespace mccls::svc
