// Identity→public-key resolution for verify-by-identity requests, with a
// failure-typed contract and the resilience machinery around it.
//
// A VerifyRequest can arrive without the signer's public key (wire kind 3);
// the service then asks its configured PkResolver to vouch for the signer.
// The canonical implementation is kgc::KeyDirectory — the KGC daemon's
// validating key directory — but the interface lives here so svc does not
// depend on the kgc subsystem (the dependency points the other way).
//
// The contract distinguishes *trust* verdicts from *availability* failures,
// because conflating them turns a stalled directory into a forged revocation:
// answering kUnknownSigner (a cacheable trust verdict) for a transient fault
// is exactly the availability→trust confusion Pakniat's CLS analysis warns
// about. A resolver therefore answers one of four outcomes:
//
//   kOk          — here is the validated key; verify the signature.
//   kNotVouched  — definitive: unknown, revoked, or epoch-rejected. The
//                  service answers Status::kUnknownSigner.
//   kUnavailable — transient: the directory could not be reached (remote
//                  transport down, fault injected, breaker open). The
//                  service answers the retryable Status::kUnavailable.
//   kTimeout     — transient: the directory did not answer within the
//                  caller's deadline. Also maps to Status::kUnavailable.
//
// resolve() is called from worker threads concurrently and must be
// thread-safe.
//
// Composition (outermost first) on a degraded verifier:
//
//   VerifyService → ResilientResolver → FaultInjectingResolver → KeyDirectory
//
// ResilientResolver adds a per-call deadline, bounded retries with jittered
// exponential backoff, a circuit breaker and a negative-result TTL cache on
// top of any raw resolver; FaultInjectingResolver is the deterministic fault
// model used by tests, bench_service's degraded series and the loadgens'
// --fault mode.
#pragma once

#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cls/keys.hpp"
#include "sim/rng.hpp"
#include "svc/metrics.hpp"

namespace mccls::svc {

/// Typed resolution outcome (see file comment). Wire values are load-bearing:
/// metrics and the breaker classify kUnavailable/kTimeout as transient.
enum class ResolveOutcome : std::uint8_t {
  kOk = 0,           ///< key is present and validated
  kNotVouched = 1,   ///< definitive trust verdict: do not verify
  kUnavailable = 2,  ///< transient: resolver unreachable / fast-failed
  kTimeout = 3,      ///< transient: resolver exceeded the call deadline
};

struct ResolveResult {
  ResolveOutcome outcome = ResolveOutcome::kNotVouched;
  /// Engaged iff outcome == kOk.
  std::optional<cls::PublicKey> key;

  static ResolveResult ok(cls::PublicKey pk) {
    return ResolveResult{ResolveOutcome::kOk, std::move(pk)};
  }
  static ResolveResult not_vouched() { return ResolveResult{}; }
  static ResolveResult unavailable() {
    return ResolveResult{ResolveOutcome::kUnavailable, std::nullopt};
  }
  static ResolveResult timeout() {
    return ResolveResult{ResolveOutcome::kTimeout, std::nullopt};
  }

  /// True for the retryable outcomes (kUnavailable, kTimeout) — the ones a
  /// verifier must never launder into a trust verdict.
  [[nodiscard]] bool transient() const {
    return outcome == ResolveOutcome::kUnavailable || outcome == ResolveOutcome::kTimeout;
  }
  /// True iff a key was resolved (outcome == kOk).
  [[nodiscard]] bool has_key() const { return key.has_value(); }
};

class PkResolver {
 public:
  virtual ~PkResolver() = default;

  /// Thread-safe identity→key lookup. Must be total: every failure mode maps
  /// to one of the four ResolveOutcome values, never an exception.
  virtual ResolveResult resolve(std::string_view id) = 0;
};

/// Deterministic fault model wrapped around a real resolver: with
/// probability `fail_rate` a call answers kUnavailable without consulting
/// the inner resolver, and every forwarded call is first stalled `stall_ms`
/// (which an upstream ResilientResolver deadline classifies as kTimeout).
/// Draws come from sim::Rng, so a seed reproduces the exact fault sequence.
/// Used by tests, bench_service's degraded series and `--fault` loadgen
/// runs; fail rate and stall are mutable mid-run so a test can stage an
/// outage and then clear it.
struct FaultConfig {
  double fail_rate = 0.0;      ///< P(kUnavailable) per call, in [0, 1]
  std::uint32_t stall_ms = 0;  ///< sleep before answering (deadline fodder)
  std::uint64_t seed = 0xFA17ED5EEDULL;
};

class FaultInjectingResolver final : public PkResolver {
 public:
  explicit FaultInjectingResolver(PkResolver* inner, FaultConfig config = {});

  ResolveResult resolve(std::string_view id) override;

  void set_fail_rate(double rate);
  void set_stall_ms(std::uint32_t ms);
  /// Calls answered kUnavailable by the fault model (not the inner resolver).
  [[nodiscard]] std::uint64_t injected_failures() const;
  /// Calls forwarded to the inner resolver.
  [[nodiscard]] std::uint64_t forwarded() const;

 private:
  PkResolver* inner_;
  mutable std::mutex mutex_;
  FaultConfig config_;
  sim::Rng rng_;
  std::uint64_t injected_ = 0;
  std::uint64_t forwarded_ = 0;
};

/// Circuit-breaker state (the breaker-state metrics gauge reports the
/// numeric value).
enum class BreakerState : std::uint8_t {
  kClosed = 0,    ///< normal operation; failures are being counted
  kOpen = 1,      ///< fast-failing every call until the open window elapses
  kHalfOpen = 2,  ///< letting one probe through; others still fast-fail
};

struct ResilientConfig {
  /// Per-call deadline on the *inner* resolver: a call that takes longer is
  /// classified kTimeout even if a result eventually arrived (the answer is
  /// already late; honest deadline semantics keep tail latency bounded).
  std::chrono::nanoseconds call_deadline = std::chrono::milliseconds(50);
  /// Total attempts per resolve() (1 = no retry). Only transient outcomes
  /// retry; kNotVouched is definitive and returns immediately.
  unsigned max_attempts = 3;
  /// Backoff before retry k is uniform in (0, min(cap, base * 2^k)] — "full
  /// jitter", so a thundering herd of retries decorrelates. Deterministic
  /// given `seed` (draws come from a forked sim::Rng stream).
  std::chrono::nanoseconds backoff_base = std::chrono::microseconds(100);
  std::chrono::nanoseconds backoff_cap = std::chrono::milliseconds(10);
  /// Breaker trip condition 1: this many consecutive transient failures.
  unsigned breaker_consecutive = 8;
  /// Breaker trip condition 2: error rate over the last `breaker_window`
  /// attempts reaches `breaker_error_rate`, once at least
  /// `breaker_min_samples` attempts are in the window.
  unsigned breaker_window = 32;
  unsigned breaker_min_samples = 16;
  double breaker_error_rate = 0.5;
  /// How long the breaker fast-fails before letting a half-open probe out.
  std::chrono::nanoseconds breaker_open = std::chrono::milliseconds(100);
  /// Consecutive successful probes required to close again.
  unsigned half_open_probes = 2;
  /// Negative-result TTL cache: a kNotVouched verdict for an identity is
  /// replayed from memory for `negative_ttl`, so a flood of lookups for one
  /// revoked signer does not hammer the directory — and keeps answering
  /// kUnknownSigner even while the directory is down. Transient outcomes
  /// are never cached (that would launder an outage into a trust verdict).
  std::size_t negative_capacity = 256;
  std::chrono::nanoseconds negative_ttl = std::chrono::milliseconds(250);
  /// Seed for the backoff-jitter stream.
  std::uint64_t seed = 0x0BACC0FFULL;
};

/// Availability wrapper around any PkResolver (see file comment). All public
/// methods are thread-safe; the inner resolver is called outside the
/// internal lock, so a stalled inner call never blocks other workers'
/// breaker checks or cache hits.
class ResilientResolver final : public PkResolver {
 public:
  explicit ResilientResolver(PkResolver* inner, ResilientConfig config = {});

  ResolveResult resolve(std::string_view id) override;

  [[nodiscard]] BreakerState breaker_state() const;
  /// Drops every cached negative verdict (tests; epoch rolls).
  void clear_negative_cache();
  /// Metrics sink for breaker/retry/cache instrumentation; not owned, may be
  /// nullptr. The *outcome* counters are the caller's job (the service
  /// records them for whatever resolver it talks to).
  void set_metrics(ServiceMetrics* metrics) { metrics_ = metrics; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Admission {
    bool allowed = false;
    bool probe = false;  ///< admitted as the half-open probe
  };

  Admission admit(Clock::time_point now);
  void on_attempt_failure(bool probe, Clock::time_point now);
  void on_attempt_success(bool probe);
  void trip(Clock::time_point now);
  void close();

  PkResolver* inner_;
  ResilientConfig config_;
  ServiceMetrics* metrics_ = nullptr;

  mutable std::mutex mutex_;
  sim::Rng rng_;
  BreakerState state_ = BreakerState::kClosed;
  Clock::time_point opened_at_{};
  unsigned consecutive_failures_ = 0;
  unsigned half_open_successes_ = 0;
  bool probe_in_flight_ = false;
  /// Sliding outcome window: ring of 0 (success/definitive) / 1 (transient).
  std::vector<std::uint8_t> window_;
  std::size_t window_next_ = 0;
  std::size_t window_filled_ = 0;
  /// Negative cache: id → expiry, with an LRU list bounding capacity.
  struct NegativeEntry {
    Clock::time_point expires;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, NegativeEntry> negative_;
  std::list<std::string> negative_lru_;  ///< front = most recently inserted
};

/// Replica-set routing over N endpoints (primary first, read replicas after):
/// each endpoint gets its *own* ResilientResolver — deadline, retries,
/// breaker and negative cache are per endpoint, so a dead primary's open
/// breaker fast-fails while the followers' stay closed. resolve() walks the
/// set in order: a definitive verdict (kOk / kNotVouched) answers
/// immediately; a transient outcome records a failover and tries the next
/// endpoint; only when every endpoint failed transiently does the caller see
/// a transient result. Because every endpoint serves the same directory,
/// failing over on transience never launders an outage into a trust verdict —
/// a kNotVouched from a follower is as definitive as one from the primary.
class ReplicaSetResolver final : public PkResolver {
 public:
  /// `endpoints` are borrowed, primary first; each must be thread-safe.
  explicit ReplicaSetResolver(std::vector<PkResolver*> endpoints,
                              ResilientConfig config = {});

  ResolveResult resolve(std::string_view id) override;

  [[nodiscard]] std::size_t size() const { return wrapped_.size(); }
  /// Breaker state of endpoint `index` (0 = primary).
  [[nodiscard]] BreakerState breaker_state(std::size_t index) const;
  /// Metrics sink, shared by every per-endpoint wrapper (failovers land on
  /// the resolve_failovers counter).
  void set_metrics(ServiceMetrics* metrics);

 private:
  std::vector<std::unique_ptr<ResilientResolver>> wrapped_;
  ServiceMetrics* metrics_ = nullptr;
};

}  // namespace mccls::svc
