// Bounded MPMC job queue with drop-tail backpressure — the admission point
// of the verification service. Mirrors the interface-queue semantics of
// src/net (PhyConfig::queue_limit): when full, try_push refuses immediately
// (the caller reports "busy") instead of blocking or growing without bound,
// so a flooded verifier sheds load the same way a saturated radio does.
//
// Plain mutex + condition_variable_any: consumers drain in chunks (the batch
// coalescer wants runs, not single items), so the lock is taken once per
// drained chunk, not once per element — queue overhead is noise next to a
// ~1 ms pairing.
//
// Shutdown comes in two flavors, and the distinction matters because an
// accepted item carries a promise (the service owes it a completion):
//
//   close()        — ends *admission*: try_push fails from now on, but
//                    consumers keep receiving the backlog until it is empty,
//                    then observe end-of-stream. The graceful path.
//   stop_token     — ends *waiting*, not *draining*: a stop request wakes
//                    blocked consumers, but pop()/drain() still hand out any
//                    items already accepted and only report end-of-stream
//                    once the queue is empty. A stop can therefore never
//                    silently abandon accepted work — the consumer decides
//                    when to quit, and it always gets the chance to finish
//                    the backlog first.
//
// Note stop alone does NOT end admission; a producer racing a stop can still
// push (and that item will be drained). Pair request_stop() with close()
// when admission must end too — VerifyService::shutdown() closes first,
// then stops.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <stop_token>
#include <vector>

namespace mccls::svc {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking admission. Returns false — leaving `item` untouched, so
  /// the caller can still answer with it — when the queue is full
  /// (drop-tail) or closed.
  bool try_push(T&& item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available; nullopt once the queue is empty AND
  /// no more items can be waited for (closed, or `stop` requested). A stop
  /// request with items still queued drains them first — see the file
  /// comment's stop-vs-close contract.
  std::optional<T> pop(std::stop_token stop) {
    std::unique_lock lock(mutex_);
    // The wait's return value is deliberately ignored: whether it ended by
    // predicate or by stop, the backlog decides — accepted items are always
    // handed out before end-of-stream is reported.
    ready_.wait(lock, stop, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed-and-drained or stopped-empty
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  /// Blocks for the first item, then greedily moves up to `max` immediately
  /// available items into `out` (appending). Returns false — with `out`
  /// unmodified — only once the queue is empty and closed/stopped; like
  /// pop(), a stop request still drains the remaining backlog first, so a
  /// worker loop using the return value as its run condition finishes every
  /// accepted job before exiting.
  bool drain(std::vector<T>& out, std::size_t max, std::stop_token stop) {
    std::unique_lock lock(mutex_);
    ready_.wait(lock, stop, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    const std::size_t n = std::min(max, items_.size());
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return true;
  }

  /// Closes admission: subsequent try_push fails, blocked consumers finish
  /// the backlog and then observe end-of-stream. Idempotent.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable_any ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mccls::svc
