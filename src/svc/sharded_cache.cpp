#include "svc/sharded_cache.hpp"

#include <functional>
#include <vector>

#include "pairing/pairing.hpp"

namespace mccls::svc {

ShardedPairingCache::ShardedPairingCache(std::size_t shards)
    : shard_count_(shards == 0 ? 1 : shards),
      shards_(std::make_unique<Shard[]>(shard_count_)) {}

ShardedPairingCache::Shard& ShardedPairingCache::shard_for(std::string_view id) {
  return shards_[std::hash<std::string_view>{}(id) % shard_count_];
}

pairing::Gt ShardedPairingCache::get(const cls::SystemParams& params, std::string_view id) {
  Shard& shard = shard_for(id);
  {
    std::lock_guard lock(shard.mutex);
    const auto it = shard.map.find(std::string(id));
    if (it != shard.map.end()) return it->second;
  }
  // Miss: pair outside the lock (see header). Racing computations of the
  // same identity produce the same canonical value; first insert wins.
  const pairing::Gt value = pairing::pair(params.p_pub, cls::hash_id(id));
  std::lock_guard lock(shard.mutex);
  return shard.map.try_emplace(std::string(id), value).first->second;
}

void ShardedPairingCache::warm(const cls::SystemParams& params,
                               std::span<const std::string> ids) {
  // Partition by shard so each shard's misses reduce with one batched final
  // exponentiation, mirroring the single-threaded warm().
  std::vector<std::vector<const std::string*>> per_shard(shard_count_);
  for (const std::string& id : ids) {
    per_shard[std::hash<std::string_view>{}(id) % shard_count_].push_back(&id);
  }
  for (std::size_t s = 0; s < shard_count_; ++s) {
    if (per_shard[s].empty()) continue;
    Shard& shard = shards_[s];

    std::vector<const std::string*> missing;
    {
      std::lock_guard lock(shard.mutex);
      for (const std::string* id : per_shard[s]) {
        if (shard.map.contains(*id)) continue;
        // Dedupe within the request (ids may repeat).
        bool seen = false;
        for (const std::string* m : missing) seen = seen || *m == *id;
        if (!seen) missing.push_back(id);
      }
    }
    if (missing.empty()) continue;

    std::vector<math::Fp2> fs;
    fs.reserve(missing.size());
    for (const std::string* id : missing) {
      fs.push_back(pairing::miller_loop(params.p_pub, cls::hash_id(*id)));
    }
    const std::vector<pairing::Gt> gts = pairing::final_exponentiation_batch(fs);

    std::lock_guard lock(shard.mutex);
    for (std::size_t i = 0; i < missing.size(); ++i) {
      shard.map.try_emplace(*missing[i], gts[i]);  // keep entries raced in meanwhile
    }
  }
}

std::size_t ShardedPairingCache::size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    std::lock_guard lock(shards_[s].mutex);
    total += shards_[s].map.size();
  }
  return total;
}

void ShardedPairingCache::clear() {
  for (std::size_t s = 0; s < shard_count_; ++s) {
    std::lock_guard lock(shards_[s].mutex);
    shards_[s].map.clear();
  }
}

}  // namespace mccls::svc
