// verifyd — multithreaded signature-verification service over the cls
// schemes.
//
// Threading model: requests are dispatched to one of `workers` bounded
// queues by **signer-identity hash**, and each std::jthread worker drains
// its own queue in chunks. Sharding by signer is what makes worker count an
// *algorithmic* lever, not just a parallelism one: each worker sees only
// 1/workers of the signer population, so a drained chunk contains longer
// same-signer runs, the coalescer forms larger cls::batch_verify batches,
// and the single amortized pairing is split over more signatures. Throughput
// therefore scales with workers even on a single core (bench_service
// measures ≥2x at 4 workers), on top of ordinary multicore scaling.
//
// Backpressure: admission never blocks. When the signer's worker queue is
// full, submit() reports Status::kBusy immediately (drop-tail, like
// src/net's interface queues) — a flooded verifier degrades by shedding
// load, not by growing an unbounded backlog.
//
// Coalescing policy: within a drained chunk, McCLS requests are grouped by
// (identity, public key, S component). Groups reaching `min_batch` (the
// bench_batch crossover, 2) go through cls::batch_verify — one pairing for
// the whole group; smaller groups, non-McCLS schemes, and undecodable
// signatures take the single-verification path. A batch that fails the
// small-exponent test falls back to per-signature verification, so every
// verdict is byte-identical to single-threaded Scheme::verify.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "cls/scheme.hpp"
#include "crypto/drbg.hpp"
#include "svc/metrics.hpp"
#include "svc/queue.hpp"
#include "svc/resolver.hpp"
#include "svc/sharded_cache.hpp"
#include "svc/wire.hpp"

namespace mccls::svc {

struct ServiceConfig {
  unsigned workers = 4;
  std::size_t queue_capacity = 256;  ///< per-worker queue bound (drop-tail)
  std::size_t max_drain = 64;        ///< chunk size a worker takes per wakeup
  bool coalesce = true;              ///< group same-signer McCLS into batch_verify
  std::size_t min_batch = 2;         ///< batch crossover (measured by bench_batch)
  std::size_t cache_shards = 16;     ///< ShardedPairingCache stripe count
  std::uint64_t seed = 0x5EC7BA7C4ULL;  ///< per-worker DRBG seed (batch deltas)
  /// Directory consulted for verify-by-identity (kind-3) requests; not
  /// owned, must outlive the service. With no resolver every by-identity
  /// request answers kUnknownSigner.
  PkResolver* resolver = nullptr;
};

class VerifyService {
 public:
  /// Invoked exactly once per submitted request, on a worker thread (or
  /// synchronously from submit() for kBusy/kMalformed). Must be
  /// thread-safe; keep it cheap — it runs on the verification path.
  using Completion = std::function<void(const VerifyResponse&)>;

  explicit VerifyService(const cls::SystemParams& params, ServiceConfig config = {});
  ~VerifyService();  ///< graceful: drains queued work, then joins workers

  VerifyService(const VerifyService&) = delete;
  VerifyService& operator=(const VerifyService&) = delete;

  /// Enqueues a verify request. Returns false when the request was answered
  /// immediately instead of enqueued: kBusy (signer's queue full) or
  /// kMalformed (scheme name outside Table 1). Never blocks.
  bool submit(VerifyRequest request, Completion done);

  /// Wire entry point: total-decodes the frame, then submit(). Undecodable
  /// frames get an immediate kMalformed response (request_id 0 — the frame
  /// cannot be trusted to contain one).
  bool submit_bytes(std::span<const std::uint8_t> frame, Completion done);

  /// Closes admission, finishes the backlog, joins all workers. Idempotent;
  /// called by the destructor. After shutdown, submit() reports kBusy.
  void shutdown();

  [[nodiscard]] const ServiceMetrics& metrics() const { return metrics_; }
  /// Mutable access so composed resolvers (ResilientResolver,
  /// kgc::VoucherVerifyingResolver) can share the service's sink.
  [[nodiscard]] ServiceMetrics& metrics() { return metrics_; }
  [[nodiscard]] ShardedPairingCache& cache() { return cache_; }
  [[nodiscard]] const cls::SystemParams& params() const { return params_; }
  [[nodiscard]] unsigned workers() const { return static_cast<unsigned>(queues_.size()); }

 private:
  struct Job {
    VerifyRequest request;
    Completion done;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_main(std::stop_token stop, unsigned index);
  void process_chunk(std::vector<Job>& jobs, crypto::HmacDrbg& rng);
  void verify_single(Job& job);
  void finish(Job& job, Status status);

  cls::SystemParams params_;
  ServiceConfig config_;
  ServiceMetrics metrics_;
  ShardedPairingCache cache_;
  std::vector<std::unique_ptr<cls::Scheme>> schemes_;  ///< index == wire id
  std::vector<std::unique_ptr<BoundedQueue<Job>>> queues_;
  std::vector<std::jthread> threads_;
};

}  // namespace mccls::svc
