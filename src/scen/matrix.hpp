// Deterministic parallel scenario-matrix runner (ROADMAP item 5).
//
// A matrix is a list of cells; each cell is one point of the evaluation
// sweep (node count × protocol × attack × security × workload) replicated
// across N seeds. run_matrix() executes the flattened (cell, seed) job list
// over a worker-thread pool.
//
// Determinism contract: every job builds its ENTIRE simulation world —
// simulator, RNG tree, mobility, channel, agents — from (cell config, seed)
// alone and shares no mutable state with any other job. Results land in
// per-job slots and are reduced serially in seed order afterwards. Metrics
// are therefore bit-identical for any worker count and any execution order;
// tests/test_scen_matrix.cpp pins this at 1/4/8 workers, and a TSan build
// of the whole stack (tsan/scen_matrix) guards the no-shared-state claim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aodv/scenario.hpp"
#include "dsr/dsr_scenario.hpp"

namespace mccls::scen {

enum class Protocol { kAodv, kDsr };

/// One cell of the sweep. `base.seed` is ignored: replication r runs with
/// seed `seed_base + r`, so a cell's identity is (configs, seed_base, seeds).
struct Cell {
  std::string name;  ///< unique key; becomes the SCEN_matrix.json entry name
  Protocol protocol = Protocol::kAodv;
  aodv::ScenarioConfig base;
  dsr::DsrConfig dsr;  ///< protocol knobs when protocol == kDsr
  unsigned seeds = 8;
  std::uint64_t seed_base = 1;
};

struct CellResult {
  std::string name;
  /// Raw counters summed over all seeds (ratios are workload-weighted).
  aodv::ScenarioResult pooled;
  /// Per-replication results in seed order, for determinism comparisons.
  std::vector<aodv::ScenarioResult> per_seed;
};

struct MatrixResult {
  std::vector<CellResult> cells;  ///< same order as the input cells
};

/// Runs one (cell, seed) job in the calling thread. The building block the
/// matrix parallelizes; exposed so tests can compare serial vs pooled runs.
aodv::ScenarioResult run_cell_seed(const Cell& cell, unsigned seed_index);

/// Executes all cells × seeds on `workers` threads (clamped to >= 1).
/// Throws std::invalid_argument on empty/duplicate cell names or zero seeds;
/// worker exceptions are rethrown on the calling thread.
MatrixResult run_matrix(const std::vector<Cell>& cells, unsigned workers = 1);

}  // namespace mccls::scen
