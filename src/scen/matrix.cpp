#include "scen/matrix.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_set>

namespace mccls::scen {

aodv::ScenarioResult run_cell_seed(const Cell& cell, unsigned seed_index) {
  aodv::ScenarioConfig config = cell.base;
  config.seed = cell.seed_base + seed_index;
  return cell.protocol == Protocol::kDsr ? dsr::run_dsr_scenario(config, cell.dsr)
                                         : aodv::run_scenario(config);
}

MatrixResult run_matrix(const std::vector<Cell>& cells, unsigned workers) {
  std::unordered_set<std::string> names;
  for (const Cell& cell : cells) {
    if (cell.name.empty()) throw std::invalid_argument("run_matrix: unnamed cell");
    if (!names.insert(cell.name).second) {
      throw std::invalid_argument("run_matrix: duplicate cell name " + cell.name);
    }
    if (cell.seeds == 0) throw std::invalid_argument("run_matrix: cell with zero seeds");
  }
  if (workers < 1) workers = 1;

  // Flatten to one job per (cell, seed); each job owns a dedicated result
  // slot, so workers never contend on anything but the job counter.
  struct Job {
    std::size_t cell;
    unsigned seed_index;
  };
  std::vector<Job> jobs;
  std::vector<std::size_t> first_slot(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    first_slot[c] = jobs.size();
    for (unsigned s = 0; s < cells[c].seeds; ++s) jobs.push_back(Job{c, s});
  }
  std::vector<aodv::ScenarioResult> slots(jobs.size());

  std::atomic<std::size_t> next_job{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  const auto worker = [&] {
    for (;;) {
      const std::size_t j = next_job.fetch_add(1, std::memory_order_relaxed);
      if (j >= jobs.size()) return;
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error) return;  // stop claiming work after a failure
      }
      try {
        slots[j] = run_cell_seed(cells[jobs[j].cell], jobs[j].seed_index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  if (workers == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  // Serial reduction in seed order: addition over the metric counters is
  // order-sensitive only for the floating-point delay sum, so a fixed order
  // keeps even that bit-identical across worker counts.
  MatrixResult result;
  result.cells.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    CellResult cr;
    cr.name = cells[c].name;
    cr.per_seed.reserve(cells[c].seeds);
    for (unsigned s = 0; s < cells[c].seeds; ++s) {
      const aodv::ScenarioResult& one = slots[first_slot[c] + s];
      cr.pooled.metrics += one.metrics;
      cr.pooled.channel += one.channel;
      cr.pooled.disconnected_placements += one.disconnected_placements;
      cr.per_seed.push_back(one);
    }
    result.cells.push_back(std::move(cr));
  }
  return result;
}

}  // namespace mccls::scen
