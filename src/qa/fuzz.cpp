#include "qa/fuzz.hpp"

#include <algorithm>
#include <optional>

#include "aodv/codec.hpp"
#include "cls/ap.hpp"
#include "cls/keyfile.hpp"
#include "cls/mccls.hpp"
#include "cls/registry.hpp"
#include "cls/yhg.hpp"
#include "cls/zwxf.hpp"
#include "dsr/dsr_codec.hpp"
#include "kgc/logstore.hpp"
#include "kgc/replica.hpp"
#include "kgc/store.hpp"
#include "kgc/voucher.hpp"
#include "kgc/wire.hpp"
#include "netd/frame.hpp"
#include "qa/gen.hpp"
#include "svc/wire.hpp"

namespace mccls::qa {

using crypto::Bytes;

namespace {

// Decode→re-encode→decode fixpoint: rejection is stable; acceptance must
// re-encode canonically (the first decode may canonicalize, e.g. the AODV
// codec's microsecond time quantization, so the fixpoint is checked on the
// re-encoded bytes, not the input).
template <class T, class DecodeFn, class EncodeFn>
bool stable_impl(std::span<const std::uint8_t> bytes, DecodeFn decode, EncodeFn encode) {
  const std::optional<T> first = decode(bytes);
  if (!first) return true;
  const Bytes canonical = encode(*first);
  const std::optional<T> second = decode(canonical);
  if (!second) return false;
  return encode(*second) == canonical;
}

template <class T, class DecodeFn, class EncodeFn>
FuzzTarget make_target(std::string name, std::function<Bytes(sim::Rng&)> sample,
                       DecodeFn decode, EncodeFn encode) {
  FuzzTarget t;
  t.name = std::move(name);
  t.sample = std::move(sample);
  t.accepts = [decode](std::span<const std::uint8_t> b) { return decode(b).has_value(); };
  t.stable = [decode, encode](std::span<const std::uint8_t> b) {
    return stable_impl<T>(b, decode, encode);
  };
  return t;
}

cls::PublicKey sample_public_key(sim::Rng& rng, std::size_t points) {
  cls::PublicKey pk;
  for (std::size_t i = 0; i < points; ++i) pk.points.push_back(gen_g1_nonzero(rng));
  return pk;
}

aodv::AuthExt sample_auth(sim::Rng& rng) {
  aodv::AuthExt a;
  a.signer = static_cast<aodv::NodeId>(rng.next_u64());
  a.public_key = gen_bytes(rng, 67);
  a.signature = gen_bytes(rng, 98);
  return a;
}

std::optional<aodv::AuthExt> maybe_auth(sim::Rng& rng) {
  if (rng.chance(0.5)) return sample_auth(rng);
  return std::nullopt;
}

Bytes sample_aodv(sim::Rng& rng) {
  aodv::AodvPayload payload;
  switch (rng.uniform_int(5)) {
    case 0: {
      aodv::Rreq m;
      m.rreq_id = static_cast<std::uint32_t>(rng.next_u64());
      m.origin = static_cast<aodv::NodeId>(rng.uniform_int(64));
      m.origin_seq = static_cast<std::uint32_t>(rng.next_u64());
      m.dest = static_cast<aodv::NodeId>(rng.uniform_int(64));
      m.dest_seq = static_cast<std::uint32_t>(rng.next_u64());
      m.unknown_dest_seq = rng.chance(0.5);
      m.issued_at = static_cast<double>(rng.uniform_int(1u << 20)) / 1e6;
      m.hop_count = static_cast<std::uint8_t>(rng.uniform_int(256));
      m.ttl = static_cast<std::uint8_t>(rng.uniform_int(256));
      m.origin_auth = maybe_auth(rng);
      m.hop_auth = maybe_auth(rng);
      payload.msg = m;
      break;
    }
    case 1: {
      aodv::Rrep m;
      m.origin = static_cast<aodv::NodeId>(rng.uniform_int(64));
      m.dest = static_cast<aodv::NodeId>(rng.uniform_int(64));
      m.dest_seq = static_cast<std::uint32_t>(rng.next_u64());
      m.replier = static_cast<aodv::NodeId>(rng.uniform_int(64));
      m.hop_count = static_cast<std::uint8_t>(rng.uniform_int(256));
      m.lifetime = static_cast<double>(rng.uniform_int(1u << 20)) / 1e6;
      m.origin_auth = maybe_auth(rng);
      m.hop_auth = maybe_auth(rng);
      payload.msg = m;
      break;
    }
    case 2: {
      aodv::Rerr m;
      const std::size_t n = rng.uniform_int(4);
      for (std::size_t i = 0; i < n; ++i) {
        m.unreachable.emplace_back(static_cast<aodv::NodeId>(rng.uniform_int(64)),
                                   static_cast<std::uint32_t>(rng.next_u64()));
      }
      m.origin_auth = maybe_auth(rng);
      payload.msg = m;
      break;
    }
    case 3: {
      aodv::Hello m;
      m.node = static_cast<aodv::NodeId>(rng.uniform_int(64));
      m.seq = static_cast<std::uint32_t>(rng.next_u64());
      m.origin_auth = maybe_auth(rng);
      payload.msg = m;
      break;
    }
    default: {
      aodv::DataPacket m;
      m.src = static_cast<aodv::NodeId>(rng.uniform_int(64));
      m.dst = static_cast<aodv::NodeId>(rng.uniform_int(64));
      m.seq = static_cast<std::uint32_t>(rng.next_u64());
      m.sent_at = static_cast<double>(rng.uniform_int(1u << 20)) / 1e6;
      m.payload_bytes = rng.uniform_int(2048);
      payload.msg = m;
      break;
    }
  }
  return aodv::encode_packet(payload);
}

std::vector<aodv::NodeId> sample_route(sim::Rng& rng) {
  std::vector<aodv::NodeId> route(rng.uniform_int(6));
  for (auto& n : route) n = static_cast<aodv::NodeId>(rng.uniform_int(64));
  return route;
}

Bytes sample_dsr(sim::Rng& rng) {
  dsr::DsrPayload payload;
  switch (rng.uniform_int(4)) {
    case 0: {
      dsr::DsrRreq m;
      m.request_id = static_cast<std::uint32_t>(rng.next_u64());
      m.origin = static_cast<dsr::NodeId>(rng.uniform_int(64));
      m.target = static_cast<dsr::NodeId>(rng.uniform_int(64));
      m.route = sample_route(rng);
      m.ttl = static_cast<std::uint8_t>(rng.uniform_int(256));
      m.issued_at = static_cast<double>(rng.uniform_int(1u << 20)) / 1e6;
      m.origin_auth = maybe_auth(rng);
      m.hop_auth = maybe_auth(rng);
      payload.msg = m;
      break;
    }
    case 1: {
      dsr::DsrRrep m;
      m.request_id = static_cast<std::uint32_t>(rng.next_u64());
      m.origin = static_cast<dsr::NodeId>(rng.uniform_int(64));
      m.target = static_cast<dsr::NodeId>(rng.uniform_int(64));
      m.route = sample_route(rng);
      // Struct invariant the decoder enforces: hop_index indexes into route.
      m.hop_index = static_cast<std::uint8_t>(rng.uniform_int(m.route.size() + 1));
      m.origin_auth = maybe_auth(rng);
      m.hop_auth = maybe_auth(rng);
      payload.msg = m;
      break;
    }
    case 2: {
      dsr::DsrRerr m;
      m.reporter = static_cast<dsr::NodeId>(rng.uniform_int(64));
      m.broken_from = static_cast<dsr::NodeId>(rng.uniform_int(64));
      m.broken_to = static_cast<dsr::NodeId>(rng.uniform_int(64));
      m.origin_auth = maybe_auth(rng);
      payload.msg = m;
      break;
    }
    default: {
      dsr::DsrData m;
      m.src = static_cast<dsr::NodeId>(rng.uniform_int(64));
      m.dst = static_cast<dsr::NodeId>(rng.uniform_int(64));
      m.seq = static_cast<std::uint32_t>(rng.next_u64());
      m.sent_at = static_cast<double>(rng.uniform_int(1u << 20)) / 1e6;
      m.payload_bytes = rng.uniform_int(2048);
      m.route = sample_route(rng);
      m.hop_index = static_cast<std::uint8_t>(rng.uniform_int(m.route.size() + 1));
      payload.msg = m;
      break;
    }
  }
  return dsr::encode_packet(payload);
}

kgc::Voucher sample_voucher(sim::Rng& rng) {
  kgc::Voucher v;
  v.issuer = gen_id(rng);
  v.subject = gen_id(rng);
  // The chain *verifier* demands a scoped subject; the codec is agnostic, so
  // sample both forms to exercise the full accept surface.
  if (rng.chance(0.5)) v.subject += "@epoch-" + std::to_string(rng.uniform_int(8));
  v.pk_bytes = sample_public_key(rng, 1).to_bytes();
  v.epoch = rng.uniform_int(1u << 16);
  v.not_before = rng.next_u64();
  v.not_after = rng.next_u64();
  v.serial = rng.next_u64();
  v.signature = gen_g1(rng);
  return v;
}

std::vector<FuzzTarget> build_targets() {
  std::vector<FuzzTarget> targets;

  targets.push_back(make_target<svc::VerifyRequest>(
      "wire_request",
      [](sim::Rng& rng) {
        svc::VerifyRequest req;
        req.request_id = rng.next_u64();
        const auto names = cls::scheme_names();
        req.scheme = std::string(names[rng.uniform_int(names.size())]);
        req.id = gen_id(rng);
        req.by_identity = rng.chance(0.25);  // kind-3 frames carry no key
        if (!req.by_identity) {
          req.public_key = sample_public_key(rng, req.scheme == "AP" ? 2 : 1);
        }
        req.message = gen_bytes(rng, 128);
        req.signature = gen_bytes(rng, 98);
        return svc::encode_request(req);
      },
      [](std::span<const std::uint8_t> b) { return svc::decode_request(b); },
      [](const svc::VerifyRequest& r) { return svc::encode_request(r); }));

  targets.push_back(make_target<svc::VerifyResponse>(
      "wire_response",
      [](sim::Rng& rng) {
        svc::VerifyResponse resp;
        resp.request_id = rng.next_u64();
        resp.status = static_cast<svc::Status>(rng.uniform_int(6));  // incl. kUnavailable
        return svc::encode_response(resp);
      },
      [](std::span<const std::uint8_t> b) { return svc::decode_response(b); },
      [](const svc::VerifyResponse& r) { return svc::encode_response(r); }));

  targets.push_back(make_target<math::Fq>(
      "keyfile_master",
      [](sim::Rng& rng) { return cls::encode_master_key(gen_fq_nonzero(rng)); },
      [](std::span<const std::uint8_t> b) { return cls::decode_master_key(b); },
      [](const math::Fq& s) { return cls::encode_master_key(s); }));

  targets.push_back(make_target<cls::UserKeys>(
      "keyfile_user",
      [](sim::Rng& rng) {
        cls::UserKeys keys{.id = gen_id(rng),
                           .partial_key = gen_g1_nonzero(rng),
                           .secret = gen_fq_nonzero(rng),
                           .public_key = sample_public_key(rng, 1 + rng.uniform_int(2))};
        return cls::encode_user_keys(keys);
      },
      [](std::span<const std::uint8_t> b) { return cls::decode_user_keys(b); },
      [](const cls::UserKeys& k) { return cls::encode_user_keys(k); }));

  targets.push_back(make_target<cls::PublicKey>(
      "public_key",
      [](sim::Rng& rng) { return sample_public_key(rng, 1 + rng.uniform_int(2)).to_bytes(); },
      [](std::span<const std::uint8_t> b) { return cls::PublicKey::from_bytes(b); },
      [](const cls::PublicKey& pk) { return pk.to_bytes(); }));

  targets.push_back(make_target<cls::McclsSignature>(
      "sig_mccls",
      [](sim::Rng& rng) {
        return cls::McclsSignature{.v = gen_fq(rng), .s = gen_g1(rng), .r = gen_g1(rng)}
            .to_bytes();
      },
      [](std::span<const std::uint8_t> b) { return cls::McclsSignature::from_bytes(b); },
      [](const cls::McclsSignature& s) { return s.to_bytes(); }));

  targets.push_back(make_target<cls::ApSignature>(
      "sig_ap",
      [](sim::Rng& rng) {
        return cls::ApSignature{.u = gen_g1(rng), .v = gen_fq(rng)}.to_bytes();
      },
      [](std::span<const std::uint8_t> b) { return cls::ApSignature::from_bytes(b); },
      [](const cls::ApSignature& s) { return s.to_bytes(); }));

  targets.push_back(make_target<cls::ZwxfSignature>(
      "sig_zwxf",
      [](sim::Rng& rng) {
        return cls::ZwxfSignature{.u = gen_g1(rng), .v = gen_g1(rng)}.to_bytes();
      },
      [](std::span<const std::uint8_t> b) { return cls::ZwxfSignature::from_bytes(b); },
      [](const cls::ZwxfSignature& s) { return s.to_bytes(); }));

  targets.push_back(make_target<cls::YhgSignature>(
      "sig_yhg",
      [](sim::Rng& rng) {
        return cls::YhgSignature{.u = gen_g1(rng), .v = gen_g1(rng)}.to_bytes();
      },
      [](std::span<const std::uint8_t> b) { return cls::YhgSignature::from_bytes(b); },
      [](const cls::YhgSignature& s) { return s.to_bytes(); }));

  targets.push_back(make_target<kgc::KgcRequest>(
      "kgc_request",
      [](sim::Rng& rng) {
        kgc::KgcRequest req;
        req.op = static_cast<kgc::KgcOp>(1 + rng.uniform_int(5));  // incl. kVouch
        req.request_id = rng.next_u64();
        // Canonical shape is op-dependent (the decoder enforces it): only
        // enroll carries a key, snapshot carries nothing.
        if (req.op != kgc::KgcOp::kSnapshot) req.id = gen_id(rng);
        if (req.op == kgc::KgcOp::kEnroll) {
          // Enroll ids must be unscoped (the decoder rejects the separator);
          // gen_id's alphabet can, very rarely, spell it out.
          while (req.id.find(cls::kEpochSeparator) != std::string::npos) {
            req.id = gen_id(rng);
          }
          req.pk_bytes = sample_public_key(rng, 1 + rng.uniform_int(2)).to_bytes();
        }
        return kgc::encode_kgc_request(req);
      },
      [](std::span<const std::uint8_t> b) { return kgc::decode_kgc_request(b); },
      [](const kgc::KgcRequest& r) { return kgc::encode_kgc_request(r); }));

  targets.push_back(make_target<kgc::KgcResponse>(
      "kgc_response",
      [](sim::Rng& rng) {
        kgc::KgcResponse resp;
        resp.op = static_cast<kgc::KgcOp>(rng.uniform_int(6));  // incl. kVouch
        resp.request_id = rng.next_u64();
        resp.status = static_cast<kgc::KgcStatus>(rng.uniform_int(7));
        resp.epoch = rng.uniform_int(1u << 16);
        // Payload only on successful enroll/lookup/vouch (canonical shape);
        // a vouch payload is an encoded chain under its own larger cap.
        if (resp.status == kgc::KgcStatus::kOk) {
          if (resp.op == kgc::KgcOp::kEnroll || resp.op == kgc::KgcOp::kLookup) {
            resp.payload = sample_public_key(rng, 1).to_bytes();
          } else if (resp.op == kgc::KgcOp::kVouch) {
            resp.payload = kgc::encode_voucher_chain({sample_voucher(rng)});
          }
        }
        return kgc::encode_kgc_response(resp);
      },
      [](std::span<const std::uint8_t> b) { return kgc::decode_kgc_response(b); },
      [](const kgc::KgcResponse& r) { return kgc::encode_kgc_response(r); }));

  // Voucher chains as they cross the wire (kVouch payload) and land in
  // offline verifiers' caches. The decoder is total: version + per-field
  // caps + exact-size G1 signature + depth in [1, 2] + exhaustion, so
  // truncated signatures, oversized chains and zero-length identities all
  // reject, and accepted bytes re-encode to a fixpoint.
  targets.push_back(make_target<kgc::VoucherChain>(
      "kgc_voucher",
      [](sim::Rng& rng) {
        kgc::VoucherChain chain{sample_voucher(rng)};
        if (rng.chance(0.4)) chain.push_back(sample_voucher(rng));
        return kgc::encode_voucher_chain(chain);
      },
      [](std::span<const std::uint8_t> b) { return kgc::decode_voucher_chain(b); },
      [](const kgc::VoucherChain& c) { return kgc::encode_voucher_chain(c); }));

  // The WAL record as it sits on disk: CRC frame around the record codec.
  // The decoder demands a single exhaustive frame, so bit flips in length,
  // CRC or payload all reject (what replay treats as end-of-log).
  targets.push_back(make_target<kgc::WalRecord>(
      "kgc_wal_record",
      [](sim::Rng& rng) {
        kgc::WalRecord record;
        const std::size_t kind = rng.uniform_int(10);
        record.type = kind < 7   ? kgc::WalRecordType::kEnroll
                      : kind < 9 ? kgc::WalRecordType::kRevoke
                                 : kgc::WalRecordType::kVoucher;
        record.epoch = rng.uniform_int(1u << 16);
        record.id = gen_id(rng);
        if (record.type == kgc::WalRecordType::kEnroll) {
          record.pk_bytes = sample_public_key(rng, 1).to_bytes();
        }
        if (record.type == kgc::WalRecordType::kVoucher) record.serial = rng.next_u64();
        return kgc::frame_payload(kgc::encode_wal_record(record));
      },
      [](std::span<const std::uint8_t> b) -> std::optional<kgc::WalRecord> {
        const auto frame = kgc::read_frame(b);
        if (!frame || frame->consumed != b.size()) return std::nullopt;
        return kgc::decode_wal_record(frame->payload);
      },
      [](const kgc::WalRecord& r) {
        return kgc::frame_payload(kgc::encode_wal_record(r));
      }));

  targets.push_back(make_target<kgc::Snapshot>(
      "kgc_snapshot",
      [](sim::Rng& rng) {
        kgc::Snapshot snapshot;
        snapshot.applied_seq = 1 + rng.uniform_int(1u << 20);
        const std::size_t n = rng.uniform_int(4);
        for (std::size_t i = 0; i < n; ++i) {
          kgc::SnapshotEntry entry;
          entry.id = gen_id(rng) + "-" + std::to_string(i);  // ids need not be unique here
          entry.pk_bytes = sample_public_key(rng, 1).to_bytes();
          entry.enrolled_epoch = rng.uniform_int(1u << 16);
          entry.revoked = rng.chance(0.3);
          entry.revoked_epoch = entry.revoked ? entry.enrolled_epoch + rng.uniform_int(8) : 0;
          snapshot.entries.push_back(std::move(entry));
        }
        return kgc::encode_snapshot(snapshot);
      },
      [](std::span<const std::uint8_t> b) { return kgc::decode_snapshot(b); },
      [](const kgc::Snapshot& s) { return kgc::encode_snapshot(s); }));

  // A whole WAL segment file as one value (header frame + record frames),
  // via the strict codec — shard-id range, base-sequence ≥ 1, and every
  // frame's CRC must all hold for acceptance.
  targets.push_back(make_target<kgc::SegmentImage>(
      "kgc_segment",
      [](sim::Rng& rng) {
        kgc::SegmentImage image;
        image.header.shard = static_cast<std::uint32_t>(rng.uniform_int(kgc::kMaxLogShards));
        image.header.base_seq = 1 + rng.uniform_int(1u << 20);
        const std::size_t n = rng.uniform_int(4);
        for (std::size_t i = 0; i < n; ++i) {
          kgc::WalRecord record;
          record.type = rng.chance(0.7) ? kgc::WalRecordType::kEnroll
                                        : kgc::WalRecordType::kRevoke;
          record.epoch = rng.uniform_int(1u << 16);
          record.id = gen_id(rng);
          if (record.type == kgc::WalRecordType::kEnroll) {
            record.pk_bytes = sample_public_key(rng, 1).to_bytes();
          }
          image.records.push_back(std::move(record));
        }
        return kgc::encode_segment(image);
      },
      [](std::span<const std::uint8_t> b) { return kgc::decode_segment(b); },
      [](const kgc::SegmentImage& s) { return kgc::encode_segment(s); }));

  // The replication batch (snapshot chunks + record runs). The decoder's
  // structural checks — item caps, cursor+count ≤ total, strictly
  // consecutive sequences — are exactly what keeps a malicious primary from
  // poisoning a replica, so they all get adversarial coverage here.
  targets.push_back(make_target<kgc::ReplicateBatch>(
      "kgc_replicate",
      [](sim::Rng& rng) {
        kgc::ReplicateBatch batch;
        batch.shard = static_cast<std::uint32_t>(rng.uniform_int(kgc::kMaxLogShards));
        if (rng.chance(0.5)) {
          batch.kind = kgc::ReplicateKind::kSnapshotChunk;
          const std::uint64_t count = rng.uniform_int(4);
          batch.total = count + rng.uniform_int(16);
          batch.cursor = rng.uniform_int(
              static_cast<std::uint32_t>(batch.total - count + 1));
          batch.applied_seq = rng.uniform_int(1u << 20);
          for (std::uint64_t i = 0; i < count; ++i) {
            kgc::SnapshotEntry entry;
            entry.id = gen_id(rng);
            entry.pk_bytes = sample_public_key(rng, 1).to_bytes();
            entry.enrolled_epoch = rng.uniform_int(1u << 16);
            batch.entries.push_back(std::move(entry));
          }
        } else {
          batch.kind = kgc::ReplicateKind::kRecords;
          batch.first_seq = 1 + rng.uniform_int(1u << 20);
          batch.caught_up = rng.chance(0.5);
          const std::size_t n = rng.uniform_int(4);
          for (std::size_t i = 0; i < n; ++i) {
            kgc::WalRecord record;
            record.type = kgc::WalRecordType::kRevoke;
            record.epoch = rng.uniform_int(1u << 16);
            record.id = gen_id(rng);
            batch.records.push_back(std::move(record));
          }
        }
        return kgc::encode_replicate_batch(batch);
      },
      [](std::span<const std::uint8_t> b) { return kgc::decode_replicate_batch(b); },
      [](const kgc::ReplicateBatch& r) { return kgc::encode_replicate_batch(r); }));

  targets.push_back(make_target<aodv::AodvPayload>(
      "aodv_packet", sample_aodv,
      [](std::span<const std::uint8_t> b) { return aodv::decode_packet(b); },
      [](const aodv::AodvPayload& p) { return aodv::encode_packet(p); }));

  targets.push_back(make_target<dsr::DsrPayload>(
      "dsr_packet", sample_dsr,
      [](std::span<const std::uint8_t> b) { return dsr::decode_packet(b); },
      [](const dsr::DsrPayload& p) { return dsr::encode_packet(p); }));

  // The netd TCP frame layer (u32 big-endian length + payload), one-shot
  // form: accepts exactly one complete frame with a length in [1, cap] and
  // no trailing bytes — so truncations, pipelined frames, trailing garbage,
  // zero and over-cap lengths all reject. Identity re-encode makes the
  // stability fixpoint exact.
  targets.push_back(make_target<Bytes>(
      "net_frame",
      [](sim::Rng& rng) {
        Bytes payload = gen_bytes(rng, 256);
        if (payload.empty()) payload.push_back(0x01);  // length 0 is illegal
        return netd::encode_frame(payload);
      },
      [](std::span<const std::uint8_t> b) { return netd::decode_frame(b); },
      [](const Bytes& payload) { return netd::encode_frame(payload); }));

  return targets;
}

}  // namespace

const std::vector<FuzzTarget>& fuzz_targets() {
  static const std::vector<FuzzTarget> targets = build_targets();
  return targets;
}

const FuzzTarget* find_target(std::string_view name) {
  for (const FuzzTarget& t : fuzz_targets()) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

Bytes mutate(sim::Rng& rng, std::span<const std::uint8_t> input) {
  Bytes out(input.begin(), input.end());
  if (out.empty()) {
    out.push_back(static_cast<std::uint8_t>(rng.next_u64()));
    return out;
  }
  switch (rng.uniform_int(9)) {
    case 0: {  // flip one bit
      const std::size_t i = rng.uniform_int(out.size());
      out[i] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(8));
      break;
    }
    case 1: {  // overwrite one byte
      out[rng.uniform_int(out.size())] = static_cast<std::uint8_t>(rng.next_u64());
      break;
    }
    case 2:  // truncate
      out.resize(rng.uniform_int(out.size()));
      break;
    case 3: {  // delete a middle chunk
      const std::size_t from = rng.uniform_int(out.size());
      const std::size_t len = 1 + rng.uniform_int(out.size() - from);
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(from),
                out.begin() + static_cast<std::ptrdiff_t>(from + len));
      break;
    }
    case 4: {  // duplicate a chunk (bounded growth)
      const std::size_t from = rng.uniform_int(out.size());
      const std::size_t len = 1 + rng.uniform_int(std::min<std::size_t>(16, out.size() - from));
      const Bytes chunk(out.begin() + static_cast<std::ptrdiff_t>(from),
                        out.begin() + static_cast<std::ptrdiff_t>(from + len));
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(from), chunk.begin(), chunk.end());
      break;
    }
    case 5: {  // insert random bytes
      const std::size_t at = rng.uniform_int(out.size() + 1);
      const std::size_t n = 1 + rng.uniform_int(8);
      Bytes extra(n);
      for (auto& b : extra) b = static_cast<std::uint8_t>(rng.next_u64());
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(at), extra.begin(), extra.end());
      break;
    }
    case 6:
    case 7: {  // stamp a length-prefix-shaped extreme at a random offset
      const std::uint8_t fill = rng.chance(0.5) ? 0xFF : 0x00;
      const std::size_t at = rng.uniform_int(out.size());
      for (std::size_t i = at; i < std::min(out.size(), at + 4); ++i) out[i] = fill;
      break;
    }
    default: {  // append random bytes
      const std::size_t n = 1 + rng.uniform_int(8);
      for (std::size_t i = 0; i < n; ++i) {
        out.push_back(static_cast<std::uint8_t>(rng.next_u64()));
      }
      break;
    }
  }
  return out;
}

Bytes mutate_n(sim::Rng& rng, std::span<const std::uint8_t> input, int n) {
  Bytes out(input.begin(), input.end());
  for (int i = 0; i < n; ++i) out = mutate(rng, out);
  return out;
}

Bytes minimize(std::span<const std::uint8_t> input,
               const std::function<bool(std::span<const std::uint8_t>)>& interesting) {
  Bytes current(input.begin(), input.end());
  if (!interesting(current)) return current;  // nothing to preserve

  // Phase 1: chunk removal, halving granularity each sweep.
  for (std::size_t chunk = std::max<std::size_t>(1, current.size() / 2); chunk >= 1;
       chunk /= 2) {
    bool removed_any = true;
    while (removed_any) {
      removed_any = false;
      for (std::size_t at = 0; at + chunk <= current.size();) {
        Bytes candidate = current;
        candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(at),
                        candidate.begin() + static_cast<std::ptrdiff_t>(at + chunk));
        if (interesting(candidate)) {
          current = std::move(candidate);
          removed_any = true;
        } else {
          at += chunk;
        }
      }
    }
    if (chunk == 1) break;
  }

  // Phase 2: zero out remaining bytes where that preserves interest.
  for (std::size_t i = 0; i < current.size(); ++i) {
    if (current[i] == 0) continue;
    const std::uint8_t saved = current[i];
    current[i] = 0;
    if (!interesting(current)) current[i] = saved;
  }
  return current;
}

}  // namespace mccls::qa
