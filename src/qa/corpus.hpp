// Failure-corpus storage and replay.
//
// Layout: one file per finding under tests/corpus/, named
//   <target>__<description>__<accept|reject>.bin
// where <target> is a FuzzTarget name (fuzz.hpp), the body is the raw input
// bytes, and the suffix records the expected decoder outcome. Tier-1 replays
// the whole directory FIRST (tests/test_qa_corpus.cpp): every entry must
// decode without crashing, match its expected accept/reject outcome, and be
// decode→re-encode→decode stable. qa_fuzz --corpus replays the same way,
// and qa_fuzz --emit-corpus regenerates the built-in findings from the real
// encoders (deterministically), so the corpus is reviewable and rebuildable.
#pragma once

#include <string>
#include <vector>

#include "crypto/encoding.hpp"

namespace mccls::qa {

struct CorpusEntry {
  std::string filename;
  std::string target;       ///< FuzzTarget name parsed from the filename
  bool expect_accept = false;
  crypto::Bytes bytes;
};

/// Loads every *.bin under `dir`, sorted by filename. Files whose names do
/// not parse (or name an unknown target) are returned with an empty target —
/// the replay driver treats those as failures rather than skipping them.
std::vector<CorpusEntry> load_corpus(const std::string& dir);

/// Replays one entry: totality (implicit — we are still alive), expected
/// accept/reject outcome, and re-encode stability. Empty string on success,
/// else a human-readable failure description.
std::string replay_entry(const CorpusEntry& entry);

/// Writes `bytes` as a corpus entry; returns the full path.
std::string write_corpus_entry(const std::string& dir, const std::string& target,
                               const std::string& description, bool expect_accept,
                               const crypto::Bytes& bytes);

/// Regenerates the built-in findings (the first mutation-fuzz results the
/// decoders were hardened against: truncation mid length-prefix, oversized
/// length prefixes, unknown version/tag bytes, out-of-range enums,
/// non-canonical scalars) plus one known-good frame per target. Returns the
/// number of files written. Deterministic: fixed seeds, no wall clock.
std::size_t emit_builtin_corpus(const std::string& dir);

}  // namespace mccls::qa
