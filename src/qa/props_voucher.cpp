// Registered properties for the voucher-chain trust layer (kgc/voucher):
//
//   voucher_roundtrip — a chain a real issuer signed survives
//     decode(encode(·)) bit-exactly and still verifies afterwards, at both
//     depths, for edge-biased validity windows and epochs.
//
//   voucher_chain_never_accepts_untrusted — the adversarial closure: no
//     chain whose trust root is missing, whose signature is forged or whose
//     structure is off (depth, link mismatch, epoch mismatch) ever verifies
//     kOk, no matter how the fields are tweaked.
//
//   offline_resolve_eq_online_resolve — the differential oracle: for a
//     vouched signer inside the voucher's validity window, a
//     VoucherVerifyingResolver whose inner resolver is 100% unavailable
//     returns exactly the verdict (and key bytes) the live KeyDirectory
//     returns, across plain/scoped identities and epoch bumps. Revocation
//     here is the epoch-bump model the voucher layer implements — directory
//     revoke() is intentionally out of scope (its offline bound is the
//     voucher TTL, not instantaneous parity).
//
// Each case carries its own DRBG-free scalar seeds, so every
// counterexample replays from the harness seed contract (property.hpp).
#include <optional>
#include <sstream>
#include <string>

#include "kgc/directory.hpp"
#include "kgc/voucher.hpp"
#include "qa/gen.hpp"
#include "qa/property.hpp"
#include "svc/resolver.hpp"

namespace mccls::qa {

namespace {

using crypto::Bytes;

/// One voucher-layer test case: two independent issuer keys (root + domain),
/// one subject keypair, and edge-biased window/epoch/clock values.
struct VoucherCase {
  math::Fq root_key;
  math::Fq domain_key;
  math::Fq subject_secret;
  std::string id;
  cls::Epoch epoch = 0;
  cls::Epoch bump = 0;          ///< epochs rolled after issuance (0..3)
  std::uint64_t not_before = 0;
  std::uint64_t lifetime = 0;   ///< not_after = not_before + 1 + lifetime
  std::uint64_t serial = 0;
};

Gen<VoucherCase> voucher_case_gen() {
  Gen<VoucherCase> gen;
  gen.create = [](sim::Rng& rng) {
    return VoucherCase{.root_key = gen_fq_nonzero(rng),
                       .domain_key = gen_fq_nonzero(rng),
                       .subject_secret = gen_fq_nonzero(rng),
                       .id = gen_id(rng),
                       .epoch = static_cast<cls::Epoch>(rng.uniform_int(1u << 10)),
                       .bump = static_cast<cls::Epoch>(rng.uniform_int(4)),
                       .not_before = rng.chance(0.25) ? 0 : rng.next_u64() >> 1,
                       .lifetime = rng.chance(0.25) ? 0 : rng.uniform_int(1u << 20),
                       .serial = rng.next_u64()};
  };
  gen.shrink = [](const VoucherCase& c) {
    std::vector<VoucherCase> out;
    if (c.id != "a") {
      VoucherCase smaller = c;
      smaller.id = "a";
      out.push_back(std::move(smaller));
    }
    if (c.epoch != 0 || c.bump != 0 || c.not_before != 0 || c.lifetime != 0) {
      VoucherCase smaller = c;
      smaller.epoch = 0;
      smaller.bump = 0;
      smaller.not_before = 0;
      smaller.lifetime = 0;
      out.push_back(std::move(smaller));
    }
    return out;
  };
  gen.show = [](const VoucherCase& c) {
    std::ostringstream os;
    os << "{id=\"" << c.id << "\" epoch=" << c.epoch << " bump=" << c.bump
       << " not_before=" << c.not_before << " lifetime=" << c.lifetime
       << " serial=" << c.serial << "}";
    return os.str();
  };
  return gen;
}

/// Subject public key derived exactly as the scheme does: X = x·P.
Bytes subject_pk_bytes(const VoucherCase& c) {
  return cls::PublicKey{.points = {ec::G1::mul_generator(c.subject_secret)}}.to_bytes();
}

struct IssuedChain {
  kgc::VoucherChain depth1;
  kgc::VoucherChain depth2;
  kgc::TrustAnchors root_anchor;   ///< trusts only the federation root
  kgc::TrustAnchors domain_anchor; ///< trusts only the domain issuer
  std::string scoped_id;
  std::uint64_t valid_at = 0;      ///< an instant inside both windows
  std::uint64_t not_after = 0;
};

IssuedChain issue(const VoucherCase& c) {
  IssuedChain out;
  const kgc::VoucherIssuer root(c.root_key, "root");
  const kgc::VoucherIssuer domain(c.domain_key, "domain");
  out.scoped_id = cls::scoped_identity(c.id, c.epoch);
  out.not_after = c.not_before + 1 + c.lifetime;  // non-degenerate window
  out.valid_at = c.not_before + c.lifetime / 2;
  const kgc::Voucher leaf = domain.issue(out.scoped_id, subject_pk_bytes(c), c.epoch,
                                         c.not_before, out.not_after, c.serial);
  out.depth1 = {leaf};
  out.depth2 = {leaf, root.vouch_for_issuer(domain, c.not_before, out.not_after,
                                            c.serial + 1)};
  out.root_anchor.add("root", root.public_key());
  out.domain_anchor.add("domain", domain.public_key());
  return out;
}

}  // namespace

void register_voucher_properties() {
  // ---- codec + signature round-trip over real issued chains ---------------
  define_property<VoucherCase>(
      "scheme", "voucher_roundtrip", 16, voucher_case_gen(),
      [](const VoucherCase& c) {
        const IssuedChain issued = issue(c);
        for (const kgc::VoucherChain& chain : {issued.depth1, issued.depth2}) {
          const auto decoded = kgc::decode_voucher_chain(kgc::encode_voucher_chain(chain));
          if (!decoded || *decoded != chain) return false;
          // The decoded chain must still verify against the right anchor set
          // (depth 1 stands on the domain key, depth 2 on the root).
          const kgc::TrustAnchors& anchors =
              chain.size() == 1 ? issued.domain_anchor : issued.root_anchor;
          const kgc::ChainCheck check =
              kgc::verify_voucher_chain(*decoded, anchors, issued.valid_at, c.epoch);
          if (check.verdict != kgc::ChainVerdict::kOk) return false;
          if (check.subject != issued.scoped_id) return false;
          if (check.key.to_bytes() != subject_pk_bytes(c)) return false;
        }
        return true;
      });

  // ---- adversarial closure: untrusted/forged/misshapen never verify -------
  define_property<VoucherCase>(
      "scheme", "voucher_chain_never_accepts_untrusted", 8, voucher_case_gen(),
      [](const VoucherCase& c) {
        const IssuedChain issued = issue(c);
        const std::uint64_t now = issued.valid_at;
        const auto rejects = [&](const kgc::VoucherChain& chain,
                                 const kgc::TrustAnchors& anchors) {
          return kgc::verify_voucher_chain(chain, anchors, now, c.epoch).verdict !=
                 kgc::ChainVerdict::kOk;
        };

        const kgc::TrustAnchors empty;
        if (!rejects(issued.depth1, empty)) return false;
        if (!rejects(issued.depth2, empty)) return false;
        // Each chain against the *other* depth's anchor set: the trust root
        // is wrong even though every signature is genuine.
        if (!rejects(issued.depth1, issued.root_anchor)) return false;
        if (!rejects(issued.depth2, issued.domain_anchor)) return false;

        // Depth overflow built from genuine links.
        kgc::VoucherChain deep = issued.depth2;
        deep.push_back(issued.depth2.back());
        if (!rejects(deep, issued.root_anchor)) return false;
        if (!rejects({}, issued.root_anchor)) return false;

        // Forgeries: an unrelated key re-signs the same fields; a genuine
        // voucher is re-pointed at a different subject key; the epoch field
        // disagrees with the scoped subject.
        const kgc::VoucherIssuer mallory(math::Fq::from_u64(0x5EC237), "domain");
        kgc::VoucherChain forged = {mallory.issue(issued.scoped_id, subject_pk_bytes(c),
                                                  c.epoch, c.not_before,
                                                  issued.not_after, c.serial)};
        if (!rejects(forged, issued.domain_anchor)) return false;
        kgc::VoucherChain swapped = issued.depth1;
        swapped.front().pk_bytes =
            cls::PublicKey{.points = {ec::G1::mul_generator(c.root_key)}}.to_bytes();
        if (!rejects(swapped, issued.domain_anchor)) return false;
        kgc::VoucherChain skewed = issued.depth1;
        skewed.front().epoch = c.epoch + 1;
        if (!rejects(skewed, issued.domain_anchor)) return false;

        // Outside the window or the epoch grace, even the genuine chain
        // stops verifying.
        if (kgc::verify_voucher_chain(issued.depth1, issued.domain_anchor,
                                      issued.not_after, c.epoch)
                .verdict == kgc::ChainVerdict::kOk) {
          return false;
        }
        return kgc::verify_voucher_chain(issued.depth1, issued.domain_anchor, now,
                                         c.epoch + 2)
                   .verdict == kgc::ChainVerdict::kEpochRejected;
      });

  // ---- differential: offline (vouched, directory dead) == online ----------
  define_property<VoucherCase>(
      "scheme", "offline_resolve_eq_online_resolve", 8, voucher_case_gen(),
      [](const VoucherCase& c) {
        const Bytes pk_bytes = subject_pk_bytes(c);
        kgc::KeyDirectory directory(
            kgc::DirectoryConfig{.shards = 2, .lru_per_shard = 8, .epoch = c.epoch});
        if (directory.enroll(c.id, pk_bytes, c.epoch) != kgc::DirStatus::kOk) {
          return false;
        }

        const kgc::VoucherIssuer issuer(c.domain_key, "kgc");
        kgc::TrustAnchors anchors;
        anchors.add("kgc", issuer.public_key());
        const std::string scoped = cls::scoped_identity(c.id, c.epoch);
        const std::uint64_t not_after = c.not_before + 1 + c.lifetime;
        const std::uint64_t now = c.not_before + c.lifetime / 2;

        svc::FaultInjectingResolver faulty(&directory);
        kgc::VoucherResolverConfig config;
        config.now = [now] { return now; };
        config.current_epoch = [&directory] { return directory.epoch(); };
        kgc::VoucherVerifyingResolver offline(&faulty, &anchors, std::move(config));
        if (offline.ingest({issuer.issue(scoped, pk_bytes, c.epoch, c.not_before,
                                         not_after, c.serial)}) !=
            kgc::ChainVerdict::kOk) {
          return false;
        }
        faulty.set_fail_rate(1.0);

        // Roll the epoch forward 0..3 steps; inside the grace window both
        // sides answer kOk, beyond it both answer kNotVouched — and the
        // offline side must never answer kUnavailable for the vouched
        // signer (that would be the availability→trust laundering the
        // resolver contract forbids).
        directory.set_epoch(c.epoch + c.bump);
        const std::string unknown_scoped = cls::scoped_identity(c.id + "~", c.epoch);
        for (const std::string& id : {c.id, scoped, unknown_scoped}) {
          const svc::ResolveResult live = directory.resolve(id);
          const svc::ResolveResult cached = offline.resolve(id);
          const bool vouched = (id == c.id || id == scoped);
          if (vouched) {
            if (cached.outcome != live.outcome) return false;
            if (live.outcome == svc::ResolveOutcome::kOk &&
                live.key->to_bytes() != cached.key->to_bytes()) {
              return false;
            }
          } else {
            // Unvouched scoped id: with the epoch still acceptable the
            // offline side reports the honest transient outcome; once the
            // epoch gate rejects, both sides answer the same definitive
            // verdict even with the directory dead.
            const bool epoch_ok =
                cls::epoch_acceptable(c.epoch, directory.epoch(), /*grace=*/1);
            if (live.outcome != svc::ResolveOutcome::kNotVouched) return false;
            if (cached.outcome != (epoch_ok ? svc::ResolveOutcome::kUnavailable
                                            : svc::ResolveOutcome::kNotVouched)) {
              return false;
            }
          }
        }
        return true;
      });
}

}  // namespace mccls::qa
