// Registered properties for every boundary codec, generated from the fuzz
// target table (fuzz.cpp) so a decoder added there is automatically covered
// by both properties in tier-1:
//   roundtrip_<target>       decode(encode(x)) == x on valid samples
//   mutation_total_<target>  on mutated bytes the decoder is total and
//                            decode→re-encode→decode stable
// The mutation property's generated value IS the mutated byte string, so a
// failing input shrinks to a minimal crashing/unstable frame — ready to be
// checked into tests/corpus/.
#include <sstream>

#include "qa/fuzz.hpp"
#include "qa/gen.hpp"
#include "qa/property.hpp"

namespace mccls::qa {

namespace {

using crypto::Bytes;

Gen<std::uint64_t> seed_gen() {
  Gen<std::uint64_t> gen;
  gen.create = [](sim::Rng& rng) { return rng.next_u64(); };
  gen.show = [](const std::uint64_t& s) { return "sample_seed=" + std::to_string(s); };
  return gen;
}

Gen<Bytes> mutated_gen(const FuzzTarget& target) {
  Gen<Bytes> gen = bytes_gen(0);  // shrink + show from the bytes generator
  gen.create = [&target](sim::Rng& rng) {
    const Bytes valid = target.sample(rng);
    return mutate_n(rng, valid, 1 + static_cast<int>(rng.uniform_int(3)));
  };
  return gen;
}

}  // namespace

void register_codec_properties() {
  for (const FuzzTarget& target : fuzz_targets()) {
    define_property<std::uint64_t>(
        "codec", "roundtrip_" + target.name, 48, seed_gen(),
        [&target](const std::uint64_t& seed) {
          sim::Rng rng(seed);
          const Bytes valid = target.sample(rng);
          return target.accepts(valid) && target.stable(valid);
        });

    define_property<Bytes>("codec", "mutation_total_" + target.name, 96,
                           mutated_gen(target),
                           [&target](const Bytes& bytes) { return target.stable(bytes); });
  }
}

}  // namespace mccls::qa
