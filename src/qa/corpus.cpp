#include "qa/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "aodv/codec.hpp"
#include "cls/keyfile.hpp"
#include "dsr/dsr_codec.hpp"
#include "ec/g1.hpp"
#include "kgc/logstore.hpp"
#include "kgc/replica.hpp"
#include "kgc/store.hpp"
#include "kgc/voucher.hpp"
#include "kgc/wire.hpp"
#include "netd/frame.hpp"
#include "qa/fuzz.hpp"
#include "svc/wire.hpp"

namespace mccls::qa {

namespace fs = std::filesystem;
using crypto::Bytes;

namespace {

// <target>__<description>__<accept|reject>.bin
bool parse_name(const std::string& stem, std::string& target, bool& expect_accept) {
  const std::size_t first = stem.find("__");
  const std::size_t last = stem.rfind("__");
  if (first == std::string::npos || last == first) return false;
  const std::string expect = stem.substr(last + 2);
  if (expect == "accept") {
    expect_accept = true;
  } else if (expect == "reject") {
    expect_accept = false;
  } else {
    return false;
  }
  target = stem.substr(0, first);
  return find_target(target) != nullptr;
}

void stamp_u32(Bytes& bytes, std::size_t at, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes[at + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (8 * (3 - i)));
  }
}

}  // namespace

std::vector<CorpusEntry> load_corpus(const std::string& dir) {
  std::vector<CorpusEntry> entries;
  std::error_code ec;
  for (const auto& file : fs::directory_iterator(dir, ec)) {
    if (!file.is_regular_file() || file.path().extension() != ".bin") continue;
    CorpusEntry entry;
    entry.filename = file.path().filename().string();
    if (!parse_name(file.path().stem().string(), entry.target, entry.expect_accept)) {
      entry.target.clear();  // replay driver reports this as a failure
    }
    std::ifstream in(file.path(), std::ios::binary);
    entry.bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) { return a.filename < b.filename; });
  return entries;
}

std::string replay_entry(const CorpusEntry& entry) {
  if (entry.target.empty()) {
    return entry.filename + ": unparseable corpus filename (want <target>__<desc>__<accept|reject>.bin)";
  }
  const FuzzTarget* target = find_target(entry.target);
  if (target == nullptr) return entry.filename + ": unknown target " + entry.target;
  const bool accepted = target->accepts(entry.bytes);
  if (accepted != entry.expect_accept) {
    return entry.filename + ": expected " + (entry.expect_accept ? "accept" : "reject") +
           " but decoder " + (accepted ? "accepted" : "rejected");
  }
  if (!target->stable(entry.bytes)) {
    return entry.filename + ": decode/re-encode not a fixpoint";
  }
  return {};
}

std::string write_corpus_entry(const std::string& dir, const std::string& target,
                               const std::string& description, bool expect_accept,
                               const Bytes& bytes) {
  fs::create_directories(dir);
  const std::string name =
      target + "__" + description + "__" + (expect_accept ? "accept" : "reject") + ".bin";
  const fs::path path = fs::path(dir) / name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return path.string();
}

std::size_t emit_builtin_corpus(const std::string& dir) {
  std::size_t count = 0;
  const auto emit = [&](const std::string& target, const std::string& desc,
                        bool expect_accept, const Bytes& bytes) {
    write_corpus_entry(dir, target, desc, expect_accept, bytes);
    ++count;
  };

  const ec::G1& g = ec::G1::generator();
  const auto g_bytes = g.to_bytes();

  // A minimal valid request: id "a", one-point key, empty message/signature.
  svc::VerifyRequest request;
  request.request_id = 7;
  request.scheme = "McCLS";
  request.id = "a";
  request.public_key.points.push_back(g);
  const Bytes valid_request = svc::encode_request(request);
  emit("wire_request", "minimal_valid", true, valid_request);

  // Frame layout: version(1) kind(1) request_id(8) scheme(1) = 11-byte
  // header, then the id field's u32 length prefix.
  constexpr std::size_t kIdPrefixOffset = 11;

  {  // truncation mid length-prefix
    Bytes b(valid_request.begin(),
            valid_request.begin() + static_cast<std::ptrdiff_t>(kIdPrefixOffset + 2));
    emit("wire_request", "truncated_mid_prefix", false, b);
  }
  {  // oversized length prefix: 0xFFFFFFFF can never be read or allocated
    Bytes b = valid_request;
    stamp_u32(b, kIdPrefixOffset, 0xFFFFFFFFu);
    emit("wire_request", "oversized_prefix", false, b);
  }
  {  // id above the kMaxIdLen cap, with the declared bytes actually present
     // and every later field intact — the cap is the ONLY reason to reject
    crypto::ByteWriter w;
    w.put_u8(svc::kWireVersion);
    w.put_u8(1);  // request kind
    w.put_u64(7);
    w.put_u8(*svc::scheme_wire_id("McCLS"));
    w.put_field(Bytes(svc::kMaxIdLen + 1, 'a'));
    w.put_field(request.public_key.to_bytes());
    w.put_field(Bytes{});
    w.put_field(Bytes{});
    emit("wire_request", "id_over_cap", false, w.take());
  }
  {  // unknown version byte
    Bytes b = valid_request;
    b[0] = 0x7F;
    emit("wire_request", "unknown_version", false, b);
  }
  {  // scheme id outside Table 1
    Bytes b = valid_request;
    b[10] = 0x09;
    emit("wire_request", "unknown_scheme", false, b);
  }
  {  // trailing garbage
    Bytes b = valid_request;
    b.push_back(0x00);
    emit("wire_request", "trailing_garbage", false, b);
  }

  {  // a v1 frame: the version was bumped when kUnavailable was added, so
     // yesterday's wire bytes must reject rather than silently misparse
    Bytes b = valid_request;
    b[0] = 0x01;
    emit("wire_request", "previous_version", false, b);
  }

  svc::VerifyResponse response;
  response.request_id = 7;
  response.status = svc::Status::kVerified;
  const Bytes valid_response = svc::encode_response(response);
  emit("wire_response", "minimal_valid", true, valid_response);
  {  // status byte outside the enum
    Bytes b = valid_response;
    b.back() = 0x09;
    emit("wire_response", "status_out_of_range", false, b);
  }
  {  // the v2 addition: kUnavailable (5) is a legal status byte
    svc::VerifyResponse unavailable = response;
    unavailable.status = svc::Status::kUnavailable;
    emit("wire_response", "unavailable_status", true,
         svc::encode_response(unavailable));
  }

  // Key files. Master key: exact-32-byte canonical scalar.
  emit("keyfile_master", "zero_scalar", false, Bytes(32, 0x00));
  {
    const auto q = math::Fq::modulus().to_be_bytes();
    emit("keyfile_master", "noncanonical_scalar", false, Bytes(q.begin(), q.end()));
  }
  emit("keyfile_master", "wrong_length", false, Bytes(31, 0x01));

  const cls::UserKeys user{.id = "a",
                           .partial_key = g,
                           .secret = math::Fq::from_u64(1),
                           .public_key = cls::PublicKey{.points = {g}}};
  const Bytes valid_user = cls::encode_user_keys(user);
  emit("keyfile_user", "minimal_valid", true, valid_user);
  {  // unknown record version
    Bytes b = valid_user;
    b[0] = 0x00;
    emit("keyfile_user", "unknown_version", false, b);
  }
  {  // truncation mid id-length prefix (version byte + 2 of 4 prefix bytes)
    Bytes b(valid_user.begin(), valid_user.begin() + 3);
    emit("keyfile_user", "truncated_mid_prefix", false, b);
  }
  {  // oversized id length prefix
    Bytes b = valid_user;
    stamp_u32(b, 1, 0xFFFFFFFFu);
    emit("keyfile_user", "oversized_prefix", false, b);
  }

  // Public keys: the point count must be 1 or 2.
  emit("public_key", "zero_points", false, Bytes{0x00});
  emit("public_key", "too_many_points", false, Bytes{0x03});
  {
    Bytes b{0x01};
    b.insert(b.end(), g_bytes.begin(), g_bytes.end());
    emit("public_key", "single_point", true, b);
  }
  {  // invalid curve-point tag
    Bytes b{0x01};
    b.insert(b.end(), g_bytes.begin(), g_bytes.end());
    b[1] = 0x07;
    emit("public_key", "bad_point_tag", false, b);
  }

  {  // non-canonical challenge scalar in a McCLS signature
    Bytes b(32, 0xFF);
    b.insert(b.end(), g_bytes.begin(), g_bytes.end());
    b.insert(b.end(), g_bytes.begin(), g_bytes.end());
    emit("sig_mccls", "noncanonical_scalar", false, b);
  }

  // kgc wire protocol.
  {
    const kgc::KgcRequest lookup{.op = kgc::KgcOp::kLookup, .request_id = 7, .id = "a"};
    const Bytes valid_lookup = kgc::encode_kgc_request(lookup);
    emit("kgc_request", "minimal_lookup", true, valid_lookup);
    {  // a lookup must not carry a key (canonical shape)
      kgc::KgcRequest bad = lookup;
      bad.pk_bytes = Bytes{0x01};
      emit("kgc_request", "lookup_with_key", false, kgc::encode_kgc_request(bad));
    }
    {  // op byte outside the enum
      Bytes b = valid_lookup;
      b[2] = 0x09;
      emit("kgc_request", "op_out_of_range", false, b);
    }
    {  // id length prefix over the cap (header: version kind op request_id = 11 bytes)
      Bytes b = valid_lookup;
      stamp_u32(b, 11, 0xFFFFFFFFu);
      emit("kgc_request", "oversized_id_prefix", false, b);
    }
    {  // enrolling an already-scoped identity: scoped_identity would throw
       // on "a@epoch-1", so the decoder rejects it at wire admission
      kgc::KgcRequest prescoped{.op = kgc::KgcOp::kEnroll, .request_id = 7,
                                .id = "a@epoch-1"};
      prescoped.pk_bytes = Bytes{0x01};
      prescoped.pk_bytes.insert(prescoped.pk_bytes.end(), g_bytes.begin(), g_bytes.end());
      emit("kgc_request", "enroll_prescoped_id", false,
           kgc::encode_kgc_request(prescoped));
    }
  }
  {
    kgc::KgcResponse ok{.op = kgc::KgcOp::kLookup, .request_id = 7,
                        .status = kgc::KgcStatus::kOk};
    ok.payload = Bytes{0x01};
    ok.payload.insert(ok.payload.end(), g_bytes.begin(), g_bytes.end());
    const Bytes valid = kgc::encode_kgc_response(ok);
    emit("kgc_response", "lookup_ok", true, valid);
    Bytes b = valid;
    b[11] = 0x09;  // status byte (after version kind op request_id)
    emit("kgc_response", "status_out_of_range", false, b);
  }

  // Voucher chains: the offline-trust decision surface. The decoder runs
  // before any signature check, so everything here is reachable from a
  // hostile kVouch response or a poisoned cache file.
  {
    const auto make_voucher = [&](std::string subject, std::uint64_t serial) {
      kgc::Voucher v;
      v.issuer = "kgc";
      v.subject = std::move(subject);
      v.pk_bytes = Bytes{0x01};
      v.pk_bytes.insert(v.pk_bytes.end(), g_bytes.begin(), g_bytes.end());
      v.epoch = 0;
      v.not_before = 100;
      v.not_after = 200;
      v.serial = serial;
      v.signature = g;  // codec seeds need shape, not a real signature
      return v;
    };
    const kgc::Voucher leaf = make_voucher("a@epoch-0", 1);
    const kgc::Voucher mid = make_voucher("kgc", 2);
    const Bytes single = kgc::encode_voucher_chain({leaf});
    emit("kgc_voucher", "single_binding", true, single);
    emit("kgc_voucher", "cross_domain_depth2", true,
         kgc::encode_voucher_chain({leaf, mid}));
    {  // signature cut mid-point: the leaf's G1 field is no longer 33 bytes
      Bytes b(single.begin(), single.end() - 5);
      emit("kgc_voucher", "truncated_sig", false, b);
    }
    emit("kgc_voucher", "oversized_chain", false,
         kgc::encode_voucher_chain({leaf, mid, mid}));
    emit("kgc_voucher", "empty_chain", false, kgc::encode_voucher_chain({}));
    {  // zero-length subject identity, honestly declared
      kgc::Voucher anonymous = leaf;
      anonymous.subject.clear();
      emit("kgc_voucher", "zero_length_id", false,
           kgc::encode_voucher_chain({anonymous}));
    }
    {  // unknown chain version byte
      Bytes b = single;
      b[0] = kgc::kVoucherVersion + 1;
      emit("kgc_voucher", "unknown_version", false, b);
    }
    {  // trailing garbage after the declared links
      Bytes b = single;
      b.push_back(0x00);
      emit("kgc_voucher", "trailing_garbage", false, b);
    }
  }

  // kgc store formats: the crash-recovery decision surface.
  {
    kgc::WalRecord record{.type = kgc::WalRecordType::kEnroll, .epoch = 0, .id = "a"};
    record.pk_bytes = Bytes{0x01};
    record.pk_bytes.insert(record.pk_bytes.end(), g_bytes.begin(), g_bytes.end());
    const Bytes framed = kgc::frame_payload(kgc::encode_wal_record(record));
    emit("kgc_wal_record", "minimal_enroll", true, framed);
    {  // torn tail: a crash mid-append leaves a prefix of the frame
      Bytes b(framed.begin(),
              framed.begin() + static_cast<std::ptrdiff_t>(framed.size() / 2));
      emit("kgc_wal_record", "truncated_tail", false, b);
    }
    {  // bit rot inside the payload: the CRC is the only thing catching it
      Bytes b = framed;
      b[b.size() / 2] ^= 0x01;
      emit("kgc_wal_record", "bad_crc", false, b);
    }
    {  // id above kMaxStoreIdLen, declared honestly and fully present in a
       // correctly CRC'd frame — the cap is the only reason to reject
      kgc::WalRecord big{.type = kgc::WalRecordType::kRevoke, .epoch = 0,
                         .id = std::string(kgc::kMaxStoreIdLen + 1, 'a')};
      emit("kgc_wal_record", "id_over_cap", false,
           kgc::frame_payload(kgc::encode_wal_record(big)));
    }
    {  // an enroll without a key breaks the record-shape invariant
      kgc::WalRecord keyless{.type = kgc::WalRecordType::kEnroll, .epoch = 0, .id = "a"};
      emit("kgc_wal_record", "enroll_without_key", false,
           kgc::frame_payload(kgc::encode_wal_record(keyless)));
    }
  }
  {
    kgc::Snapshot snapshot;
    snapshot.applied_seq = 1;
    kgc::SnapshotEntry entry{.id = "a", .enrolled_epoch = 0};
    entry.pk_bytes = Bytes{0x01};
    entry.pk_bytes.insert(entry.pk_bytes.end(), g_bytes.begin(), g_bytes.end());
    snapshot.entries.push_back(entry);
    const Bytes valid = kgc::encode_snapshot(snapshot);
    emit("kgc_snapshot", "single_entry", true, valid);
    {  // correctly CRC-framed header that promises entries the file lacks
      crypto::ByteWriter h;
      h.put_u8('K');
      h.put_u8('S');
      h.put_u8(kgc::kStoreVersion);
      h.put_u64(1);  // applied_seq
      h.put_u64(2);  // declares 2 entries; none follow
      emit("kgc_snapshot", "count_over_contents", false, kgc::frame_payload(h.take()));
    }
    {  // trailing garbage after the declared entries
      Bytes b = valid;
      b.push_back(0x00);
      emit("kgc_snapshot", "trailing_garbage", false, b);
    }
  }

  // Segmented WAL files: the per-shard recovery decision surface.
  {
    kgc::WalRecord record{.type = kgc::WalRecordType::kEnroll, .epoch = 0, .id = "a"};
    record.pk_bytes = Bytes{0x01};
    record.pk_bytes.insert(record.pk_bytes.end(), g_bytes.begin(), g_bytes.end());
    kgc::SegmentImage image;
    image.header = kgc::SegmentHeader{.shard = 3, .base_seq = 1};
    image.records.push_back(record);
    const Bytes valid = kgc::encode_segment(image);
    emit("kgc_segment", "minimal_enroll_stream", true, valid);
    {  // crash mid-write of the very first frame: not even a header survives
      const Bytes header_frame = kgc::frame_payload(kgc::encode_segment_header(image.header));
      Bytes b(header_frame.begin(),
              header_frame.begin() + static_cast<std::ptrdiff_t>(header_frame.size() / 2));
      emit("kgc_segment", "truncated_header", false, b);
    }
    {  // header claims a shard id no configuration can own — cross-wired
       // file (or corruption); recovery discards the segment
      kgc::SegmentImage wrong = image;
      wrong.header.shard = kgc::kMaxLogShards;
      emit("kgc_segment", "shard_out_of_range", false, kgc::encode_segment(wrong));
    }
    {  // a zero base sequence (sequences start at 1)
      kgc::SegmentImage zero = image;
      zero.header.base_seq = 0;
      emit("kgc_segment", "zero_base_seq", false, kgc::encode_segment(zero));
    }
    {  // bit rot inside a record frame: only the CRC catches it
      Bytes b = valid;
      b[b.size() - 2] ^= 0x01;
      emit("kgc_segment", "crc_flip", false, b);
    }
  }

  // Replication batches: what a follower will apply to its own store, so the
  // structural checks here are a trust boundary against a hostile primary.
  {
    kgc::WalRecord record{.type = kgc::WalRecordType::kRevoke, .epoch = 0, .id = "a"};
    kgc::ReplicateBatch records;
    records.shard = 3;
    records.kind = kgc::ReplicateKind::kRecords;
    records.first_seq = 5;
    records.caught_up = true;
    records.records.push_back(record);
    emit("kgc_replicate", "records_batch", true, kgc::encode_replicate_batch(records));
    {
      kgc::ReplicateBatch chunk;
      chunk.shard = 3;
      chunk.kind = kgc::ReplicateKind::kSnapshotChunk;
      chunk.applied_seq = 9;
      chunk.cursor = 1;
      chunk.total = 2;
      kgc::SnapshotEntry entry{.id = "a", .enrolled_epoch = 0};
      entry.pk_bytes = Bytes{0x01};
      entry.pk_bytes.insert(entry.pk_bytes.end(), g_bytes.begin(), g_bytes.end());
      chunk.entries.push_back(entry);
      emit("kgc_replicate", "snapshot_chunk", true, kgc::encode_replicate_batch(chunk));
    }
    {  // a gap in the record sequence numbers would silently desynchronize
       // the follower — hand-built, since the encoder can't produce one
      crypto::ByteWriter w;
      w.put_u8(kgc::kStoreVersion);
      w.put_u32(3);   // shard
      w.put_u8(2);    // kRecords
      w.put_u64(5);   // first_seq
      w.put_u8(1);    // caught_up
      w.put_u32(2);   // count
      w.put_u64(5);
      w.put_field(kgc::encode_wal_record(record));
      w.put_u64(7);   // expected 6
      w.put_field(kgc::encode_wal_record(record));
      emit("kgc_replicate", "seq_gap", false, w.take());
    }
    {  // item count above kMaxReplicateItems, honestly declared
      crypto::ByteWriter w;
      w.put_u8(kgc::kStoreVersion);
      w.put_u32(3);
      w.put_u8(2);
      w.put_u64(5);
      w.put_u8(0);
      w.put_u32(static_cast<std::uint32_t>(kgc::kMaxReplicateItems + 1));
      emit("kgc_replicate", "oversized_batch", false, w.take());
    }
    {  // a snapshot page sticking out past its declared total
      kgc::ReplicateBatch chunk;
      chunk.shard = 3;
      chunk.kind = kgc::ReplicateKind::kSnapshotChunk;
      chunk.applied_seq = 9;
      chunk.cursor = 2;
      chunk.total = 2;
      kgc::SnapshotEntry entry{.id = "a", .enrolled_epoch = 0};
      entry.pk_bytes = Bytes{0x01};
      entry.pk_bytes.insert(entry.pk_bytes.end(), g_bytes.begin(), g_bytes.end());
      chunk.entries.push_back(entry);
      emit("kgc_replicate", "page_past_total", false, kgc::encode_replicate_batch(chunk));
    }
  }

  // Routing codecs.
  {
    aodv::AodvPayload hello{aodv::Hello{.node = 1, .seq = 1}};
    const Bytes b = aodv::encode_packet(hello);
    emit("aodv_packet", "minimal_hello", true, b);
    Bytes unknown_tag = b;
    unknown_tag[0] = 0xEE;
    emit("aodv_packet", "unknown_tag", false, unknown_tag);
  }
  {  // data-packet timestamp above the 2^50 µs cap (can't round-trip through
     // double, so it could never re-encode canonically)
    aodv::AodvPayload data{
        aodv::DataPacket{.src = 1, .dst = 2, .seq = 3, .sent_at = 0.25, .payload_bytes = 64}};
    Bytes b = aodv::encode_packet(data);
    for (std::size_t i = 13; i < 21; ++i) b[i] = 0xFF;  // sent_us field
    emit("aodv_packet", "timestamp_over_cap", false, b);
  }
  {
    dsr::DsrPayload rerr{dsr::DsrRerr{.reporter = 1, .broken_from = 2, .broken_to = 3}};
    const Bytes b = dsr::encode_packet(rerr);
    emit("dsr_packet", "minimal_rerr", true, b);
    emit("dsr_packet", "truncated", false,
         Bytes(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(b.size() / 2)));
  }
  {  // same timestamp-over-cap finding on the DSR data path
    dsr::DsrPayload data{
        dsr::DsrData{.src = 1, .dst = 2, .seq = 3, .sent_at = 0.25, .payload_bytes = 64}};
    Bytes b = dsr::encode_packet(data);
    for (std::size_t i = 13; i < 21; ++i) b[i] = 0xFF;  // sent_us field
    emit("dsr_packet", "timestamp_over_cap", false, b);
  }

  // The netd TCP frame layer. The one-shot decoder demands exactly one
  // complete frame, so everything a hostile byte stream can do to the
  // framing — zero/oversized lengths, truncation, dribbled headers,
  // pipelined trailing bytes — is a seed here.
  {
    const Bytes framed = netd::encode_frame(Bytes{0xA5, 0x5A, 0x00, 0xFF});
    emit("net_frame", "single_frame", true, framed);
    emit("net_frame", "length_zero", false, Bytes{0x00, 0x00, 0x00, 0x00});
    // Declared length one past the cap, no payload behind it: must reject
    // from the prefix alone (the decoder never allocates declared bytes).
    const auto over = static_cast<std::uint32_t>(netd::kMaxFrameLen) + 1;
    emit("net_frame", "length_over_cap", false,
         Bytes{static_cast<std::uint8_t>(over >> 24), static_cast<std::uint8_t>(over >> 16),
               static_cast<std::uint8_t>(over >> 8), static_cast<std::uint8_t>(over)});
    emit("net_frame", "truncated_payload", false,
         Bytes(framed.begin(), framed.end() - 2));
    // A slow-loris opener: half a length prefix and nothing more.
    emit("net_frame", "partial_header", false, Bytes(framed.begin(), framed.begin() + 2));
    Bytes pipelined = framed;
    pipelined.insert(pipelined.end(), framed.begin(), framed.end());
    emit("net_frame", "pipelined_second_frame", false, pipelined);
    Bytes trailing = framed;
    trailing.push_back(0x00);
    emit("net_frame", "trailing_garbage", false, trailing);
  }

  return count;
}

}  // namespace mccls::qa
