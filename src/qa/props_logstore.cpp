// Registered properties for the segmented log store (kgc/logstore) and the
// replication layer on top of it (kgc/replica):
//
//   compacted_store_eq_replayed_store — driving a LogStore with a random
//     mutation schedule while compacting arbitrary shards at arbitrary
//     points, then rebooting, reconstructs exactly the state a pure replay
//     (no compaction ever) produces: same entry map, same shard sequences.
//     Segment sizes are drawn adversarially small so rotation happens on
//     nearly every append.
//
//   replica_catchup_eq_primary — a follower that catches up through
//     build_replicate_batch (records when the tail is on disk, paged
//     snapshot chunks when it was compacted away) converges to bit-identical
//     state, including when it syncs mid-history, falls behind across a
//     compaction, and catches up again. Every batch also round-trips the
//     wire codec en route, so the transfer the property checks is the one a
//     real TCP follower would see.
//
// Both properties run against real files in a fresh temp directory per case
// (fsync off — crash durability is tests/test_logstore.cpp's job; these
// check state equivalence).
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "kgc/logstore.hpp"
#include "kgc/replica.hpp"
#include "qa/property.hpp"

namespace mccls::qa {

namespace {

namespace fs = std::filesystem;
using kgc::LogStore;
using kgc::LogStoreConfig;
using kgc::SnapshotEntry;
using kgc::WalRecord;
using kgc::WalRecordType;

/// One scheduled mutation: kind 0 = enroll, 1 = revoke, 2 = voucher, drawn
/// over a deliberately small identity pool so revokes and conflicts hit.
struct LogOp {
  std::uint8_t kind = 0;
  std::uint8_t ident = 0;
  bool compact_after = false;  ///< compact the touched shard after this op
};

struct LogCase {
  std::size_t shards = 1;
  std::size_t segment_bytes = 1;  ///< 1 ⇒ rotate on every append
  std::vector<LogOp> ops;
};

Gen<LogCase> log_case_gen() {
  Gen<LogCase> gen;
  gen.create = [](sim::Rng& rng) {
    LogCase c;
    c.shards = 1 + static_cast<std::size_t>(rng.uniform_int(4));
    c.segment_bytes = rng.chance(0.5) ? 1 : 256;
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(48));
    c.ops.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      c.ops.push_back(LogOp{.kind = static_cast<std::uint8_t>(rng.uniform_int(3)),
                            .ident = static_cast<std::uint8_t>(rng.uniform_int(8)),
                            .compact_after = rng.chance(0.2)});
    }
    return c;
  };
  gen.shrink = [](const LogCase& c) {
    std::vector<LogCase> out;
    if (c.ops.size() > 1) {
      LogCase half = c;
      half.ops.resize(c.ops.size() / 2);
      out.push_back(std::move(half));
    }
    if (c.shards > 1) {
      LogCase one = c;
      one.shards = 1;
      out.push_back(std::move(one));
    }
    return out;
  };
  gen.show = [](const LogCase& c) {
    std::ostringstream os;
    os << "{shards=" << c.shards << " segment_bytes=" << c.segment_bytes << " ops=[";
    for (const LogOp& op : c.ops) {
      os << static_cast<int>(op.kind) << ":" << static_cast<int>(op.ident)
         << (op.compact_after ? "c " : " ");
    }
    os << "]}";
    return os.str();
  };
  return gen;
}

/// Fresh per-case scratch directory (cases run sequentially; shrink reruns
/// get their own).
fs::path fresh_dir(const char* tag) {
  static std::atomic<std::uint64_t> counter{0};
  fs::path dir = fs::temp_directory_path() /
                 ("mccls_qa_" + std::string(tag) + "_" + std::to_string(::getpid()) + "_" +
                  std::to_string(counter.fetch_add(1)));
  fs::remove_all(dir);
  return dir;
}

/// Canonical record→state interpretation — the same rules Kgcd's recovery
/// applies (vouchers carry no directory state).
void apply_record(std::map<std::string, SnapshotEntry>& state, const WalRecord& record) {
  if (record.type == WalRecordType::kEnroll) {
    state.emplace(record.id, SnapshotEntry{.id = record.id,
                                           .pk_bytes = record.pk_bytes,
                                           .enrolled_epoch = record.epoch});
  } else if (record.type == WalRecordType::kRevoke) {
    auto it = state.find(record.id);
    if (it != state.end() && !it->second.revoked) {
      it->second.revoked = true;
      it->second.revoked_epoch = record.epoch;
    }
  }
}

std::vector<SnapshotEntry> entries_of_shard(const std::map<std::string, SnapshotEntry>& state,
                                            std::size_t shard, std::size_t shards) {
  std::vector<SnapshotEntry> out;
  for (const auto& [id, entry] : state) {
    if (kgc::shard_index(id, shards) == shard) out.push_back(entry);
  }
  return out;
}

/// Drives the schedule into `store`, mirroring it in `model` (decide-then-log:
/// no-op mutations are not logged). False on an unexpected I/O failure.
bool drive(LogStore& store, const LogCase& c, std::map<std::string, SnapshotEntry>& model) {
  for (const LogOp& op : c.ops) {
    const std::string id = "u" + std::to_string(op.ident);
    const std::size_t shard = kgc::shard_index(id, c.shards);
    WalRecord record{.epoch = static_cast<cls::Epoch>(op.ident % 3), .id = id};
    bool log_it = true;
    switch (op.kind) {
      case 0:
        record.type = WalRecordType::kEnroll;
        record.pk_bytes = crypto::Bytes{static_cast<std::uint8_t>(0x10 + op.ident)};
        log_it = model.find(id) == model.end();
        break;
      case 1: {
        record.type = WalRecordType::kRevoke;
        const auto it = model.find(id);
        log_it = it != model.end() && !it->second.revoked;
        break;
      }
      default:
        record.type = WalRecordType::kVoucher;
        record.serial = store.total_sequence() + 1;
        break;
    }
    if (log_it) {
      if (!store.append(shard, record)) return false;
      apply_record(model, record);
    }
    if (op.compact_after &&
        !store.compact_shard(shard, entries_of_shard(model, shard, c.shards))) {
      return false;
    }
  }
  return true;
}

/// Reboots a store directory and checks it reconstructs `model` with the
/// expected per-shard sequences.
bool replays_to(const fs::path& dir, const LogCase& c,
                const std::map<std::string, SnapshotEntry>& model,
                const std::vector<std::uint64_t>& want_seq) {
  LogStore store(LogStoreConfig{.dir = dir.string(),
                                .shards = c.shards,
                                .fsync = false,
                                .segment_bytes = c.segment_bytes});
  std::map<std::string, SnapshotEntry> got;
  const auto report = store.recover(
      [&](std::size_t, const SnapshotEntry& entry) { got[entry.id] = entry; },
      [&](std::size_t, const WalRecord& record) { apply_record(got, record); });
  if (report.snapshot_corrupt || report.torn_bytes != 0) return false;
  if (got != model) return false;
  for (std::size_t s = 0; s < c.shards; ++s) {
    if (store.shard_sequence(s) != want_seq[s]) return false;
  }
  return true;
}

/// One follower catch-up pass over every shard, via build_replicate_batch +
/// the wire codec. `limit` forces paging when small. False on any protocol
/// or I/O failure.
bool catch_up(const LogStore& primary, LogStore& follower, std::size_t shards,
              std::size_t limit) {
  for (std::size_t s = 0; s < shards; ++s) {
    const std::uint32_t shard = static_cast<std::uint32_t>(s);
    for (;;) {
      const std::uint64_t from = follower.shard_sequence(s) + 1;
      auto batch = kgc::build_replicate_batch(primary, shard, from, 0, limit);
      if (!batch) return false;
      // The transfer must survive the wire bit-exactly.
      const auto wire =
          kgc::decode_replicate_batch(kgc::encode_replicate_batch(*batch));
      if (!wire || !(*wire == *batch)) return false;
      if (batch->kind == kgc::ReplicateKind::kRecords) {
        std::uint64_t seq = batch->first_seq;
        for (const WalRecord& record : batch->records) {
          if (follower.append(s, record) != seq) return false;
          ++seq;
        }
        if (batch->caught_up) break;
        continue;
      }
      // Snapshot bootstrap: page until the staged entries cover the total.
      std::vector<SnapshotEntry> staged = batch->entries;
      const std::uint64_t applied = batch->applied_seq;
      std::uint64_t cursor = batch->cursor + batch->entries.size();
      while (cursor < batch->total) {
        auto page = kgc::build_replicate_batch(primary, shard, 0, cursor, limit);
        if (!page || page->kind != kgc::ReplicateKind::kSnapshotChunk) return false;
        if (page->applied_seq != applied || page->cursor != cursor) return false;
        staged.insert(staged.end(), page->entries.begin(), page->entries.end());
        cursor += page->entries.size();
      }
      if (!follower.install_snapshot(s, staged, applied)) return false;
    }
  }
  return true;
}

}  // namespace

void register_logstore_properties() {
  define_property<LogCase>(
      "codec", "compacted_store_eq_replayed_store", 8, log_case_gen(),
      [](const LogCase& c) {
        const fs::path dir = fresh_dir("logstore");
        std::map<std::string, SnapshotEntry> model;
        std::vector<std::uint64_t> seq(c.shards, 0);
        bool ok = false;
        {
          LogStore store(LogStoreConfig{.dir = dir.string(),
                                        .shards = c.shards,
                                        .fsync = false,
                                        .segment_bytes = c.segment_bytes});
          store.recover([](std::size_t, const SnapshotEntry&) {},
                        [](std::size_t, const WalRecord&) {});
          ok = drive(store, c, model);
          for (std::size_t s = 0; s < c.shards; ++s) seq[s] = store.shard_sequence(s);
        }
        ok = ok && replays_to(dir, c, model, seq);
        fs::remove_all(dir);
        return ok;
      });

  define_property<LogCase>(
      "codec", "replica_catchup_eq_primary", 8, log_case_gen(),
      [](const LogCase& c) {
        const fs::path primary_dir = fresh_dir("primary");
        const fs::path follower_dir = fresh_dir("follower");
        std::map<std::string, SnapshotEntry> model;
        std::vector<std::uint64_t> seq(c.shards, 0);
        bool ok = false;
        {
          LogStore primary(LogStoreConfig{.dir = primary_dir.string(),
                                          .shards = c.shards,
                                          .fsync = false,
                                          .segment_bytes = c.segment_bytes});
          primary.recover([](std::size_t, const SnapshotEntry&) {},
                          [](std::size_t, const WalRecord&) {});
          LogStore follower(LogStoreConfig{.dir = follower_dir.string(),
                                           .shards = c.shards,
                                           .fsync = false,
                                           .segment_bytes = c.segment_bytes});
          follower.recover([](std::size_t, const SnapshotEntry&) {},
                           [](std::size_t, const WalRecord&) {});
          // First half of the history, then a mid-history catch-up (small
          // batch limit so snapshot paging actually pages), then the rest —
          // including compactions that fold away what the follower still
          // lacks — then the final catch-up.
          LogCase first = c;
          first.ops.resize(c.ops.size() / 2);
          LogCase rest = c;
          rest.ops.erase(rest.ops.begin(),
                         rest.ops.begin() + static_cast<std::ptrdiff_t>(first.ops.size()));
          ok = drive(primary, first, model) && catch_up(primary, follower, c.shards, 3) &&
               drive(primary, rest, model) && catch_up(primary, follower, c.shards, 3);
          for (std::size_t s = 0; s < c.shards; ++s) {
            ok = ok && follower.shard_sequence(s) == primary.shard_sequence(s);
            seq[s] = primary.shard_sequence(s);
          }
        }
        ok = ok && replays_to(follower_dir, c, model, seq);
        fs::remove_all(primary_dir);
        fs::remove_all(follower_dir);
        return ok;
      });
}

}  // namespace mccls::qa
