// Seeded generators and shrinkers for the repository's core value types.
// Generators are edge-biased: a substantial fraction of draws are the values
// that break carry chains, canonical-encoding checks and group-law corner
// cases (0, 1, 2^k ± 1, all-ones, values straddling the two moduli, the
// point at infinity, 2-torsion points outside the order-q subgroup).
//
// Everything here draws from sim::Rng only — see property.hpp for the seed
// contract that makes whole cases replayable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/encoding.hpp"
#include "ec/g1.hpp"
#include "math/fe.hpp"
#include "math/fp2.hpp"
#include "math/u256.hpp"
#include "pairing/gt.hpp"
#include "qa/property.hpp"
#include "sim/rng.hpp"

namespace mccls::qa {

// ---- scalars and field elements ------------------------------------------

/// Edge-biased 256-bit integer: ~half the draws are structured edge values
/// (0, 1, small, 2^k ± 1, all-ones, near either modulus), the rest uniform.
math::U256 gen_u256(sim::Rng& rng);

math::Fp gen_fp(sim::Rng& rng);
math::Fq gen_fq(sim::Rng& rng);
math::Fq gen_fq_nonzero(sim::Rng& rng);
math::Fp2 gen_fp2(sim::Rng& rng);

// ---- group elements ------------------------------------------------------

/// Uniform point of the order-q subgroup; ~1/16 of draws are infinity.
ec::G1 gen_g1(sim::Rng& rng);
/// Subgroup point guaranteed non-infinity.
ec::G1 gen_g1_nonzero(sim::Rng& rng);
/// On-curve point provably OUTSIDE the order-q subgroup (a subgroup point
/// translated by the 2-torsion point (0,0); #E = 4q, so it has even order).
ec::G1 gen_g1_non_subgroup(sim::Rng& rng);
/// Element of GT (pairing target subgroup); ~1/16 of draws are the identity.
pairing::Gt gen_gt(sim::Rng& rng);

// ---- bytes and identities ------------------------------------------------

/// Byte string of length in [0, max_len], content uniform with occasional
/// all-0x00 / all-0xFF runs.
crypto::Bytes gen_bytes(sim::Rng& rng, std::size_t max_len);
/// Printable identity string of length in [1, 24].
std::string gen_id(sim::Rng& rng);

// ---- shrinkers -----------------------------------------------------------

/// Candidates toward zero: 0, high-half cleared, halved, decremented.
std::vector<math::U256> shrink_u256(const math::U256& x);
/// Candidates toward empty/zeroed: empty, halves, one-shorter, bytes zeroed.
std::vector<crypto::Bytes> shrink_bytes(const crypto::Bytes& b);

// ---- display helpers -----------------------------------------------------

std::string show_u256(const math::U256& x);
std::string show_bytes(const crypto::Bytes& b);

// ---- composite generators ------------------------------------------------

/// Fixed-arity vector of edge-biased scalars, with element-wise shrinking
/// and hex display. Most math properties consume one of these and derive
/// field/group elements from the scalars, which makes every math
/// counterexample shrink toward small readable integers.
Gen<std::vector<math::U256>> scalar_vec_gen(std::size_t n);

/// Byte-string generator with shrinking + hex display (codec properties).
Gen<crypto::Bytes> bytes_gen(std::size_t max_len);

}  // namespace mccls::qa
