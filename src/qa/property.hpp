// mccls_qa — a small QuickCheck-style property-testing harness.
//
// A property is a named predicate over generated values. The harness runs it
// over a stream of seeded random cases; on failure it greedily shrinks the
// counterexample and reports a one-line repro command.
//
// Seed contract (the whole harness is deterministic given one 64-bit seed):
//   root stream       = sim::Rng(seed)
//   property stream   = root.fork(property_name)     (fork-by-name, FNV-1a)
//   case stream i     = property_stream.fork(i)
// A failure in property P at iteration i therefore reproduces with
//   qa_fuzz --prop P --seed <seed>
// regardless of which other properties ran before it, in any order, in any
// binary. The gtest suites (tests/test_qa_*.cpp) and the qa_fuzz tool both
// run the same registry through this contract.
//
// Randomness *inside* a case (e.g. a scheme's signing nonce) must also come
// from the case stream: generators emit a drbg seed as part of the generated
// value and the property constructs its crypto::HmacDrbg from it, so the
// whole case — inputs and nonces — replays from (seed, name, i).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/rng.hpp"

namespace mccls::qa {

/// Execution budget for one property run. Environment overrides
/// (RunConfig::from_env, used by the gtest suites and qa_fuzz defaults):
///   MCCLS_QA_SEED   root seed (decimal or 0x-hex)
///   MCCLS_QA_ITERS  iteration override for every property (0 = per-property
///                   default, chosen so each stays well under 2 s in tier-1)
///   MCCLS_QA_SOAK   total soak budget in seconds; when set, callers switch
///                   to time-budget mode (keep drawing fresh cases until the
///                   per-property share of the budget is spent)
struct RunConfig {
  static constexpr std::uint64_t kDefaultSeed = 0x6d63636c73ULL;  // "mccls"

  std::uint64_t seed = kDefaultSeed;
  int iterations = 0;        ///< 0 = use the property's default
  double soak_seconds = 0;   ///< > 0 = time-budget mode (overrides iterations)

  static RunConfig from_env();
};

/// Result of running one property.
struct Outcome {
  std::string property;
  std::uint64_t seed = RunConfig::kDefaultSeed;
  bool ok = true;
  int iterations_run = 0;
  int failing_iteration = -1;  ///< case stream index of the original failure
  int shrink_steps = 0;        ///< accepted shrink candidates
  std::string counterexample;  ///< shown form of the (shrunk) failing value

  /// Copy-pasteable repro: `qa_fuzz --prop <name> --seed <seed>`.
  [[nodiscard]] std::string repro() const;
  /// Full human-readable failure report (empty-ish when ok).
  [[nodiscard]] std::string message() const;
};

/// A generator bundle for values of type T: creation from a seeded stream,
/// shrink candidates (most aggressive first; empty = atomic value), and a
/// display form for failure reports.
template <class T>
struct Gen {
  std::function<T(sim::Rng&)> create;
  std::function<std::vector<T>(const T&)> shrink = [](const T&) { return std::vector<T>{}; };
  std::function<std::string(const T&)> show = [](const T&) { return std::string("<value>"); };
};

namespace detail {
/// Upper bound on accepted shrink steps. Sized so a greedy halving chain can
/// walk a full 256-bit scalar down to its minimal failing value (~256 rounds)
/// with headroom; only failing runs ever pay for shrinking.
inline constexpr int kMaxShrinkRounds = 512;
}

/// Runs `holds` over generated values per the seed contract above. On the
/// first failure, greedily shrinks: repeatedly adopt the first shrink
/// candidate that still fails, until a fixpoint (or the round cap).
template <class T>
Outcome for_all(std::string_view name, const RunConfig& cfg, const Gen<T>& gen,
                const std::function<bool(const T&)>& holds) {
  Outcome out;
  out.property = std::string(name);
  out.seed = cfg.seed;

  const sim::Rng prop_stream = sim::Rng(cfg.seed).fork(name);
  const auto start = std::chrono::steady_clock::now();
  const auto budget_spent = [&] {
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    return elapsed.count() >= cfg.soak_seconds;
  };

  for (std::uint64_t i = 0;; ++i) {
    if (cfg.soak_seconds > 0) {
      if (i > 0 && budget_spent()) break;
    } else if (i >= static_cast<std::uint64_t>(cfg.iterations > 0 ? cfg.iterations : 1)) {
      break;
    }
    sim::Rng case_stream = prop_stream.fork(i);
    T value = gen.create(case_stream);
    ++out.iterations_run;
    if (holds(value)) continue;

    out.ok = false;
    out.failing_iteration = static_cast<int>(i);
    T current = std::move(value);
    for (int round = 0; round < detail::kMaxShrinkRounds; ++round) {
      bool advanced = false;
      for (T& candidate : gen.shrink(current)) {
        if (!holds(candidate)) {
          current = std::move(candidate);
          ++out.shrink_steps;
          advanced = true;
          break;
        }
      }
      if (!advanced) break;
    }
    out.counterexample = gen.show(current);
    return out;
  }
  return out;
}

/// A registered property: a named, self-contained runner. The registry is
/// the single source every driver iterates — the test_qa_* gtest suites,
/// qa_fuzz, and the soak loop all see exactly the same set.
struct Property {
  std::string name;
  std::string layer;  ///< "math", "scheme" or "codec" (one gtest suite each)
  int default_iterations = 64;
  std::function<Outcome(const RunConfig&)> run;
};

/// All registered properties (built once, thread-compatible after that).
const std::vector<Property>& registry();
/// Registry subset for one layer (pointers into registry()).
std::vector<const Property*> properties_in_layer(std::string_view layer);
/// Lookup by exact name; nullptr when absent.
const Property* find_property(std::string_view name);

namespace detail {
/// Called by the per-layer registration units; not for direct use.
void add_property(Property p);
}  // namespace detail

/// Defines and registers a property over Gen<T>. `iters` is the tier-1
/// default; MCCLS_QA_ITERS / --iters override it globally.
template <class T>
void define_property(std::string layer, std::string name, int iters, Gen<T> gen,
                     std::function<bool(const T&)> holds) {
  Property p;
  p.name = name;
  p.layer = std::move(layer);
  p.default_iterations = iters;
  p.run = [name = std::move(name), iters, gen = std::move(gen),
           holds = std::move(holds)](const RunConfig& cfg) {
    RunConfig effective = cfg;
    if (effective.iterations <= 0 && effective.soak_seconds <= 0) {
      effective.iterations = iters;
    }
    return for_all<T>(name, effective, gen, holds);
  };
  detail::add_property(std::move(p));
}

}  // namespace mccls::qa
