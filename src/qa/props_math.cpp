// Registered properties for the math → pairing layers: algebraic laws the
// optimized kernels must satisfy for ALL inputs, plus the differential
// oracles pair() vs pair_affine() and batched vs individual operations.
//
// Every property consumes a fixed-arity vector of edge-biased U256 scalars
// and derives its field/group elements from them, so counterexamples shrink
// toward small readable integers.
#include <functional>

#include "math/batch_inv.hpp"
#include "pairing/pairing.hpp"
#include "qa/gen.hpp"
#include "qa/property.hpp"

namespace mccls::qa {

namespace {

using math::Fp;
using math::Fp2;
using math::Fq;
using math::U256;
using math::U512;
using Scalars = std::vector<U256>;
using pairing::Gt;

void prop(std::string name, int iters, std::size_t arity,
          std::function<bool(const Scalars&)> holds) {
  define_property<Scalars>("math", std::move(name), iters, scalar_vec_gen(arity),
                           std::move(holds));
}

U256 mod_m(const U256& x, const U256& m) {
  U256 r = x;
  while (cmp(r, m) >= 0) sub(r, r, m);
  return r;
}

ec::G1 point_from(const U256& k) { return ec::G1::mul_generator(mod_m(k, Fq::modulus())); }

}  // namespace

void register_math_properties() {
  // ---- u256 ----------------------------------------------------------------
  prop("u256_add_sub_roundtrip", 256, 2, [](const Scalars& s) {
    U256 sum, back;
    add(sum, s[0], s[1]);
    sub(back, sum, s[1]);  // exact mod 2^256, carries included
    return back == s[0];
  });

  prop("u256_mul_wide_laws", 256, 2, [](const Scalars& s) {
    const U512 ab = mul_wide(s[0], s[1]);
    const U512 ba = mul_wide(s[1], s[0]);
    const U512 a1 = mul_wide(s[0], U256::one());
    return ab == ba && a1.lo() == s[0] && a1.hi().is_zero() &&
           mul_wide(s[0], U256::zero()) == U512{};
  });

  prop("u256_hex_roundtrip", 256, 1,
       [](const Scalars& s) { return U256::from_hex(s[0].to_hex()) == s[0]; });

  prop("u256_bytes_roundtrip", 256, 1,
       [](const Scalars& s) { return U256::from_be_bytes(s[0].to_be_bytes()) == s[0]; });

  // ---- Montgomery fields ---------------------------------------------------
  prop("fp_montgomery_roundtrip", 256, 1, [](const Scalars& s) {
    return Fp::from_u256(s[0]).to_u256() == mod_m(s[0], Fp::modulus()) &&
           Fq::from_u256(s[0]).to_u256() == mod_m(s[0], Fq::modulus());
  });

  prop("fp_ring_laws", 128, 3, [](const Scalars& s) {
    const Fp a = Fp::from_u256(s[0]), b = Fp::from_u256(s[1]), c = Fp::from_u256(s[2]);
    return a * b == b * a && (a * b) * c == a * (b * c) &&
           a * (b + c) == a * b + a * c && a + a.neg() == Fp::zero() &&
           a - b == a + b.neg() && a.square() == a * a && a.dbl() == a + a;
  });

  prop("fp_inv_identity", 48, 1, [](const Scalars& s) {
    const Fp a = Fp::from_u256(s[0]);
    if (a.is_zero()) return true;  // inv() precondition excludes zero
    U256 p_minus_1;
    sub(p_minus_1, Fp::modulus(), U256::one());
    // Binary-extgcd inverse must agree with Fermat, and a^{p-1} == 1.
    return a * a.inv() == Fp::one() && a.pow(p_minus_1) == Fp::one();
  });

  prop("fp_batch_inv_matches_inv", 24, 4, [](const Scalars& s) {
    std::vector<Fp> xs;
    for (const U256& x : s) {
      const Fp fx = Fp::from_u256(x);
      if (!fx.is_zero()) xs.push_back(fx);
    }
    if (xs.empty()) return true;
    std::vector<Fp> batched = xs;
    math::batch_invert(batched);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (!(batched[i] == xs[i].inv())) return false;
    }
    return true;
  });

  prop("fp_from_wide_consistent", 128, 2, [](const Scalars& s) {
    // from_wide(lo, hi) must equal lo + hi·2^256 mod p.
    const U512 wide = U512::from_halves(s[0], s[1]);
    U256 two128{};
    two128.w[2] = 1;  // 2^128
    const Fp two256 = Fp::from_u256(two128).square();
    const Fp expected = Fp::from_u256(s[0]) + Fp::from_u256(s[1]) * two256;
    return Fp::from_wide(wide) == expected;
  });

  // ---- Montgomery backends (CIOS vs portable) ------------------------------
  prop("montgomery_cios_eq_portable", 96, 4, [](const Scalars& s) {
    // The unrolled compile-time-modulus kernels must be bit-identical to the
    // loop-form runtime-modulus reference on every operation the field layer
    // routes through them: multiply, dedicated squaring, and standalone REDC.
    using FpP = math::FpPortable;
    const Fp a = Fp::from_u256(s[0]), b = Fp::from_u256(s[1]);
    const FpP ap = FpP::from_raw(a.raw()), bp = FpP::from_raw(b.raw());
    if (!((a * b).raw() == (ap * bp).raw())) return false;
    if (!(a.square().raw() == ap.square().raw())) return false;
    // sqr_wide is the CIOS square's front half; pin it to mul_wide exactly.
    if (!(sqr_wide(s[2]) == mul_wide(s[2], s[2]))) return false;
    // REDC on a lazy-accumulated t < m * 2^256 (a reduced, s[1] arbitrary).
    const U512 t = mul_wide(a.raw(), s[1]);
    return Fp::redc(t).raw() == FpP::redc(t).raw();
  });

  prop("fp2_lazy_eq_eager", 128, 4, [](const Scalars& s) {
    // The lazy-reduction Fp2 multiply against eager Karatsuba on both
    // backends: same canonical residues, coefficient for coefficient.
    const Fp2 x{Fp::from_u256(s[0]), Fp::from_u256(s[1])};
    const Fp2 y{Fp::from_u256(s[2]), Fp::from_u256(s[3])};
    const Fp2 lazy = Fp2::mul_lazy(x, y);
    if (!(lazy == Fp2::mul_eager(x, y))) return false;
    using Fp2P = math::Fp2Portable;
    using FpP = math::FpPortable;
    const Fp2P xp{FpP::from_raw(x.re().raw()), FpP::from_raw(x.im().raw())};
    const Fp2P yp{FpP::from_raw(y.re().raw()), FpP::from_raw(y.im().raw())};
    const Fp2P ep = xp * yp;
    return lazy.re().raw() == ep.re().raw() && lazy.im().raw() == ep.im().raw();
  });

  prop("fp2_field_laws", 96, 6, [](const Scalars& s) {
    const Fp2 x{Fp::from_u256(s[0]), Fp::from_u256(s[1])};
    const Fp2 y{Fp::from_u256(s[2]), Fp::from_u256(s[3])};
    const Fp2 z{Fp::from_u256(s[4]), Fp::from_u256(s[5])};
    if (!(x * y == y * x && (x * y) * z == x * (y * z) && x * (y + z) == x * y + x * z &&
          x.square() == x * x)) {
      return false;
    }
    if (!((x * y).conjugate() == x.conjugate() * y.conjugate() &&
          (x * y).norm() == x.norm() * y.norm())) {
      return false;
    }
    return x.is_zero() || x * x.inv() == Fp2::one();
  });

  // ---- G1 ------------------------------------------------------------------
  prop("g1_group_laws", 24, 3, [](const Scalars& s) {
    const ec::G1 p = point_from(s[0]), q = point_from(s[1]), r = point_from(s[2]);
    const ec::G1 sum = p + q;
    return sum == q + p && (sum + r) == p + (q + r) && p + p.neg() == ec::G1::infinity() &&
           p + ec::G1::infinity() == p && p.dbl() == p + p &&
           (sum.is_infinity() || sum.is_on_curve());
  });

  prop("g1_scalar_laws", 12, 2, [](const Scalars& s) {
    const Fq a = Fq::from_u256(s[0]), b = Fq::from_u256(s[1]);
    const ec::G1& g = ec::G1::generator();
    const ec::G1 ag = g.mul(a), bg = g.mul(b);
    // (a+b)·G == a·G + b·G, fixed-base table agrees with generic mul,
    // and Shamir's mul2 agrees with the two-mul sum.
    return g.mul(a + b) == ag + bg && ec::G1::mul_generator(a) == ag &&
           ec::G1::mul2(a.to_u256(), g, b.to_u256(), ag) == ag + ag.mul(b);
  });

  prop("g1_codec_roundtrip", 48, 1, [](const Scalars& s) {
    const ec::G1 p = s[0].is_zero() ? ec::G1::infinity() : point_from(s[0]);
    const auto decoded = ec::G1::from_bytes(p.to_bytes());
    return decoded.has_value() && *decoded == p;
  });

  prop("g1_subgroup_classifier", 12, 1, [](const Scalars& s) {
    const ec::G1 in = point_from(s[0]);
    if (!in.in_subgroup()) return false;
    // Translating by the 2-torsion point (0,0) leaves the curve but exits
    // the odd-order subgroup (unless the result is infinity itself).
    const auto t2 = ec::G1::from_affine(Fp::zero(), Fp::zero());
    if (!t2.has_value()) return false;
    const ec::G1 out = in + *t2;
    return out.is_on_curve() && !out.in_subgroup();
  });

  // ---- pairing -------------------------------------------------------------
  prop("pair_matches_pair_affine", 6, 2, [](const Scalars& s) {
    // Differential oracle: the inversion-free Jacobian Miller loop against
    // the affine reference, including infinity edges.
    const ec::G1 p = point_from(s[0]), q = point_from(s[1]);
    return pairing::pair(p, q) == pairing::pair_affine(p, q) &&
           pairing::pair(ec::G1::infinity(), q) == Gt::one() &&
           pairing::pair(p, ec::G1::infinity()) == Gt::one();
  });

  prop("pair_bilinear", 4, 2, [](const Scalars& s) {
    const Fq a = Fq::from_u256(s[0]), b = Fq::from_u256(s[1]);
    const ec::G1& g = ec::G1::generator();
    const Gt base = pairing::pair(g, g);
    return pairing::pair(g.mul(a), g.mul(b)) == base.pow(a.to_u256()).pow(b.to_u256()) &&
           pairing::pair(g.mul(a) + g.mul(b), g) == base.pow((a + b).to_u256());
  });

  prop("multi_pair_eq_product_of_pairs", 3, 9, [](const Scalars& s) {
    // One shared Miller loop over k ∈ [0,16] pairs must equal the product of
    // individual pair() AND pair_affine() values — including pairs at
    // infinity (contribute 1) and degenerate non-subgroup inputs (2-torsion
    // translates), whose zero Miller values every path maps to Gt::one().
    const std::uint64_t k = s[8].w[0] % 17;
    const auto t2 = ec::G1::from_affine(Fp::zero(), Fp::zero());
    if (!t2.has_value()) return false;
    std::vector<std::pair<ec::G1, ec::G1>> pairs;
    pairs.reserve(k);
    Gt product = Gt::one();
    Gt product_affine = Gt::one();
    for (std::uint64_t j = 0; j < k; ++j) {
      U256 a = s[j % 4], b = s[4 + (j % 4)];
      a.w[1] ^= j + 1;  // de-duplicate the recycled scalars
      b.w[2] ^= (j + 1) * 0x9e3779b97f4a7c15ULL;
      ec::G1 p = point_from(a);
      ec::G1 q = point_from(b);
      switch ((s[8].w[1] >> (2 * j)) & 3) {
        case 1: p = ec::G1::infinity(); break;
        case 2: p = p + *t2; break;  // on curve, outside the q-subgroup
        case 3: q = q + *t2; break;
        default: break;
      }
      pairs.emplace_back(p, q);
      product *= pairing::pair(p, q);
      product_affine *= pairing::pair_affine(p, q);
    }
    const Gt got = pairing::multi_pair(pairs);
    return got == product && got == product_affine;
  });

  prop("final_exp_batch_matches", 6, 3, [](const Scalars& s) {
    std::vector<Fp2> fs;
    for (const U256& x : s) {
      const Fp2 f{Fp::from_u256(x), Fp::from_u256(x) + Fp::one()};
      if (!f.is_zero()) fs.push_back(f);
    }
    const auto batched = pairing::final_exponentiation_batch(fs);
    if (batched.size() != fs.size()) return false;
    for (std::size_t i = 0; i < fs.size(); ++i) {
      if (!(batched[i] == pairing::final_exponentiation(fs[i]))) return false;
    }
    return true;
  });
}

}  // namespace mccls::qa
