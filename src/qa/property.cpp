#include "qa/property.hpp"

#include <cstdlib>
#include <sstream>

namespace mccls::qa {

namespace {

std::vector<Property>& mutable_registry() {
  static std::vector<Property> r;
  return r;
}

std::uint64_t parse_u64(const char* s, std::uint64_t fallback) {
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 0);  // base 0: 0x ok
  if (end == nullptr || *end != '\0') return fallback;
  return static_cast<std::uint64_t>(v);
}

}  // namespace

// Defined in props_math.cpp / props_scheme.cpp / props_codec.cpp. Explicit
// registration calls (rather than static-initializer objects) keep the
// property units alive inside the static library — a linker is free to drop
// an object file nothing references, and silently losing half the registry
// is exactly the kind of bug this harness exists to prevent.
void register_math_properties();
void register_scheme_properties();
void register_codec_properties();
void register_voucher_properties();
void register_logstore_properties();

RunConfig RunConfig::from_env() {
  RunConfig cfg;
  cfg.seed = parse_u64(std::getenv("MCCLS_QA_SEED"), kDefaultSeed);
  cfg.iterations = static_cast<int>(parse_u64(std::getenv("MCCLS_QA_ITERS"), 0));
  const char* soak = std::getenv("MCCLS_QA_SOAK");
  if (soak != nullptr && *soak != '\0') {
    char* end = nullptr;
    const double v = std::strtod(soak, &end);
    if (end != nullptr && *end == '\0' && v > 0) cfg.soak_seconds = v;
  }
  return cfg;
}

std::string Outcome::repro() const {
  std::ostringstream os;
  os << "qa_fuzz --prop " << property << " --seed " << seed;
  return os.str();
}

std::string Outcome::message() const {
  if (ok) {
    std::ostringstream os;
    os << property << ": OK (" << iterations_run << " cases, seed " << seed << ")";
    return os.str();
  }
  std::ostringstream os;
  os << property << ": FAILED at iteration " << failing_iteration << " (seed " << seed
     << ", " << shrink_steps << " shrink steps)\n"
     << "  counterexample: " << counterexample << "\n"
     << "  repro: " << repro();
  return os.str();
}

namespace detail {
void add_property(Property p) { mutable_registry().push_back(std::move(p)); }
}  // namespace detail

const std::vector<Property>& registry() {
  static const bool initialized = [] {
    register_math_properties();
    register_scheme_properties();
    register_codec_properties();
    register_voucher_properties();
    register_logstore_properties();
    return true;
  }();
  (void)initialized;
  return mutable_registry();
}

std::vector<const Property*> properties_in_layer(std::string_view layer) {
  std::vector<const Property*> out;
  for (const Property& p : registry()) {
    if (p.layer == layer) out.push_back(&p);
  }
  return out;
}

const Property* find_property(std::string_view name) {
  for (const Property& p : registry()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

}  // namespace mccls::qa
