// Byte-mutation fuzzing over the repository's total decoders.
//
// Every boundary decoder (svc wire frames, key files, public keys, the four
// signature codecs, AODV/DSR packet codecs) is wrapped as a FuzzTarget: a
// sampler that produces a valid encoding, an acceptance probe, and a
// decode→re-encode→decode stability check. The drivers are:
//   * the registered codec properties (props_codec.cpp): sample, mutate,
//     assert the decoder is total and stable — run in tier-1;
//   * qa_fuzz --fuzz: the same loop at configurable volume;
//   * tests/corpus replay: checked-in minimized findings, replayed first.
//
// "Total" means: any byte string either decodes to a value or yields
// nullopt — never UB, never a throw, never an unbounded allocation. Crashes
// surface as process death (tier-1 runs the kernels under ASan/UBSan too).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/encoding.hpp"
#include "sim/rng.hpp"

namespace mccls::qa {

/// One decoder under fuzz.
struct FuzzTarget {
  std::string name;
  /// Produces a valid encoding (used as the mutation substrate).
  std::function<crypto::Bytes(sim::Rng&)> sample;
  /// Runs the decoder; true iff the input decoded to a value.
  std::function<bool(std::span<const std::uint8_t>)> accepts;
  /// Decode→re-encode→decode fixpoint check. Rejection is trivially stable;
  /// an accepted input must re-encode to a byte string that decodes to the
  /// same value (checked via a second re-encode).
  std::function<bool(std::span<const std::uint8_t>)> stable;
};

/// All fuzzable decoders (built once; stable order).
const std::vector<FuzzTarget>& fuzz_targets();
/// Lookup by exact name; nullptr when absent.
const FuzzTarget* find_target(std::string_view name);

/// Applies one random structural mutation: bit/byte corruption, truncation,
/// chunk deletion/duplication, random insertion, or stamping a 32-bit
/// length-prefix-shaped extreme (0x00000000 / 0xFFFFFFFF) at a random
/// offset. The empty input always grows by one byte; a non-empty input may
/// very occasionally come back byte-identical (overwriting a byte with the
/// value it already had).
crypto::Bytes mutate(sim::Rng& rng, std::span<const std::uint8_t> input);
/// `n` stacked mutations.
crypto::Bytes mutate_n(sim::Rng& rng, std::span<const std::uint8_t> input, int n);

/// Greedy delta-debugging minimizer: repeatedly drops chunks and zeroes
/// bytes while `interesting` keeps returning true. Deterministic; used by
/// qa_fuzz --minimize and the corpus generator.
crypto::Bytes minimize(std::span<const std::uint8_t> input,
                       const std::function<bool(std::span<const std::uint8_t>)>& interesting);

}  // namespace mccls::qa
