// Registered properties for the four CLS schemes: sign/verify round-trips
// with inline tamper rejection, the batch-vs-single differential oracle for
// McCLS, verdict parity between the concurrent verifyd service (batch
// coalescing on) and direct single-threaded verification for ALL schemes,
// and cross-scheme rejection.
//
// Each case carries its own DRBG seed, so key material, nonces and messages
// all replay from the harness seed contract (see property.hpp).
#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "cls/batch.hpp"
#include "cls/mccls.hpp"
#include "cls/registry.hpp"
#include "qa/gen.hpp"
#include "qa/property.hpp"
#include "svc/service.hpp"

namespace mccls::qa {

namespace {

using crypto::Bytes;

/// One scheme-level test case: everything derives from these three values.
struct SchemeCase {
  std::uint64_t drbg_seed = 0;
  std::string id;
  Bytes message;
};

Gen<SchemeCase> scheme_case_gen(std::size_t max_message) {
  Gen<SchemeCase> gen;
  gen.create = [max_message](sim::Rng& rng) {
    return SchemeCase{.drbg_seed = rng.next_u64(),
                      .id = gen_id(rng),
                      .message = gen_bytes(rng, max_message)};
  };
  gen.shrink = [](const SchemeCase& c) {
    std::vector<SchemeCase> out;
    for (Bytes& smaller : shrink_bytes(c.message)) {
      out.push_back(SchemeCase{c.drbg_seed, c.id, std::move(smaller)});
    }
    if (c.id != "a") out.push_back(SchemeCase{c.drbg_seed, "a", c.message});
    return out;
  };
  gen.show = [](const SchemeCase& c) {
    std::ostringstream os;
    os << "{drbg_seed=" << c.drbg_seed << " id=\"" << c.id
       << "\" message=" << show_bytes(c.message) << "}";
    return os.str();
  };
  return gen;
}

Bytes tweaked_message(const Bytes& message) {
  Bytes other = message;
  if (other.empty()) {
    other.push_back(0x01);
  } else {
    other[0] ^= 0x01;
  }
  return other;
}

}  // namespace

void register_scheme_properties() {
  // ---- sign/verify round-trip + inline tamper rejection, per scheme -------
  for (const std::string_view name : cls::scheme_names()) {
    define_property<SchemeCase>(
        "scheme", "sign_verify_" + std::string(name), 5, scheme_case_gen(96),
        [name](const SchemeCase& c) {
          crypto::HmacDrbg drbg(c.drbg_seed);
          const cls::Kgc kgc = cls::Kgc::setup(drbg);
          const auto scheme = cls::make_scheme(name);
          const cls::UserKeys user = scheme->enroll(kgc, c.id, drbg);
          const Bytes sig = scheme->sign(kgc.params(), user, c.message, drbg);
          if (sig.size() != scheme->signature_size()) return false;
          if (!scheme->verify(kgc.params(), c.id, user.public_key, c.message, sig)) {
            return false;
          }
          // A different message, a different identity, and a truncated
          // signature must all reject.
          if (scheme->verify(kgc.params(), c.id, user.public_key,
                             tweaked_message(c.message), sig)) {
            return false;
          }
          if (scheme->verify(kgc.params(), c.id + "~", user.public_key, c.message, sig)) {
            return false;
          }
          const std::span<const std::uint8_t> truncated{sig.data(), sig.size() - 1};
          return !scheme->verify(kgc.params(), c.id, user.public_key, c.message, truncated);
        });
  }

  // ---- batch_verify vs per-signature verify (McCLS) ------------------------
  define_property<SchemeCase>(
      "scheme", "batch_vs_single_mccls", 4, scheme_case_gen(48),
      [](const SchemeCase& c) {
        crypto::HmacDrbg drbg(c.drbg_seed);
        const cls::Kgc kgc = cls::Kgc::setup(drbg);
        const cls::Mccls scheme;
        const cls::UserKeys user = scheme.enroll(kgc, c.id, drbg);
        const ec::G1& pk = user.public_key.primary();

        // Batch of n derived messages; the generated message is member 0.
        const std::size_t n = 2 + c.drbg_seed % 4;
        std::vector<cls::BatchItem> items;
        for (std::size_t i = 0; i < n; ++i) {
          Bytes msg = c.message;
          msg.push_back(static_cast<std::uint8_t>(i));
          items.push_back(cls::BatchItem{
              .message = msg,
              .signature = cls::Mccls::sign_typed(kgc.params(), user, msg, drbg)});
        }
        for (const auto& item : items) {
          if (!cls::Mccls::verify_typed(kgc.params(), c.id, pk, item.message,
                                        item.signature)) {
            return false;
          }
        }
        if (!cls::batch_verify(kgc.params(), c.id, pk, items, drbg)) return false;

        // Tamper with one member: both paths must now reject it.
        const std::size_t victim = c.drbg_seed % n;
        items[victim].signature.v += math::Fq::from_u64(1);
        if (cls::Mccls::verify_typed(kgc.params(), c.id, pk, items[victim].message,
                                     items[victim].signature)) {
          return false;
        }
        return !cls::batch_verify(kgc.params(), c.id, pk, items, drbg);
      });

  // ---- verifyd (coalesced batch path) vs direct verify, all schemes --------
  define_property<SchemeCase>(
      "scheme", "service_verdict_parity", 2, scheme_case_gen(32),
      [](const SchemeCase& c) {
        crypto::HmacDrbg drbg(c.drbg_seed);
        const cls::Kgc kgc = cls::Kgc::setup(drbg);

        struct Request {
          svc::VerifyRequest wire;
          bool expected = false;
        };
        std::vector<Request> requests;
        std::uint64_t next_id = 0;
        for (const std::string_view name : cls::scheme_names()) {
          const auto scheme = cls::make_scheme(name);
          const cls::UserKeys user = scheme->enroll(kgc, c.id, drbg);
          for (int k = 0; k < 4; ++k) {
            Bytes msg = c.message;
            msg.push_back(static_cast<std::uint8_t>(k));
            Bytes sig = scheme->sign(kgc.params(), user, msg, drbg);
            const bool corrupt = (k % 2) == 1;
            if (corrupt) sig[sig.size() / 2] ^= 0x10;
            const bool expected =
                scheme->verify(kgc.params(), c.id, user.public_key, msg, sig);
            if (!corrupt && !expected) return false;  // honest sig must verify
            requests.push_back(Request{
                .wire = svc::VerifyRequest{.request_id = next_id++,
                                           .scheme = std::string(name),
                                           .id = c.id,
                                           .public_key = user.public_key,
                                           .message = std::move(msg),
                                           .signature = std::move(sig)},
                .expected = expected});
          }
        }

        svc::ServiceConfig config;
        config.workers = 2;
        config.coalesce = true;
        config.seed = c.drbg_seed;
        std::vector<std::atomic<int>> verdicts(requests.size());
        for (auto& v : verdicts) v.store(-1);
        {
          svc::VerifyService service(kgc.params(), config);
          for (const Request& r : requests) {
            service.submit(r.wire, [&verdicts](const svc::VerifyResponse& resp) {
              verdicts[resp.request_id].store(
                  resp.status == svc::Status::kVerified ? 1 : 0);
            });
          }
          service.shutdown();  // drains the backlog before joining
        }
        for (std::size_t i = 0; i < requests.size(); ++i) {
          if (verdicts[i].load() != (requests[i].expected ? 1 : 0)) return false;
        }
        return true;
      });

  // ---- a signature from scheme A never verifies under scheme B -------------
  define_property<SchemeCase>(
      "scheme", "cross_scheme_rejection", 2, scheme_case_gen(32),
      [](const SchemeCase& c) {
        crypto::HmacDrbg drbg(c.drbg_seed);
        const cls::Kgc kgc = cls::Kgc::setup(drbg);
        const auto names = cls::scheme_names();
        struct Enrolled {
          std::unique_ptr<cls::Scheme> scheme;
          cls::UserKeys user;
          Bytes signature;
        };
        std::vector<Enrolled> all;
        for (const std::string_view name : names) {
          auto scheme = cls::make_scheme(name);
          cls::UserKeys user = scheme->enroll(kgc, c.id, drbg);
          Bytes sig = scheme->sign(kgc.params(), user, c.message, drbg);
          all.push_back(Enrolled{std::move(scheme), std::move(user), std::move(sig)});
        }
        for (std::size_t a = 0; a < all.size(); ++a) {
          for (std::size_t b = 0; b < all.size(); ++b) {
            if (a == b) continue;
            // Scheme B, B's own key material, but A's signature bytes: must
            // reject (same-size pairs like ZWXF/YHG decode fine and must
            // fail the verification equation instead).
            if (all[b].scheme->verify(kgc.params(), c.id, all[b].user.public_key,
                                      c.message, all[a].signature)) {
              return false;
            }
          }
        }
        return true;
      });

  // ---- resolver pipeline: breaker-state + anti-conflation invariants -------
  // Under any seeded fault sequence: (1) the wrapper's outcome is kOk iff a
  // key is attached, (2) a vouching inner resolver NEVER surfaces as
  // kNotVouched through injected faults — transient failure must not read
  // as a trust verdict, (3) breaker_state() is always a legal state, and
  // (4) once the fault clears the pipeline recovers to kOk with the breaker
  // closed (liveness).
  define_property<SchemeCase>(
      "scheme", "resolver_breaker_invariants", 2, scheme_case_gen(16),
      [](const SchemeCase& c) {
        crypto::HmacDrbg drbg(c.drbg_seed);
        const cls::Kgc kgc = cls::Kgc::setup(drbg);
        const cls::Mccls mccls;
        const cls::PublicKey pk =
            mccls.derive_public(kgc.params(), drbg.next_nonzero_fq());

        struct VouchingResolver final : svc::PkResolver {
          cls::PublicKey pk;
          explicit VouchingResolver(cls::PublicKey k) : pk(std::move(k)) {}
          svc::ResolveResult resolve(std::string_view) override {
            return svc::ResolveResult::ok(pk);
          }
        };
        VouchingResolver inner(pk);

        sim::Rng rng(c.drbg_seed);
        svc::FaultConfig fault;
        fault.fail_rate = rng.uniform();
        fault.seed = rng.next_u64();
        svc::FaultInjectingResolver faulty(&inner, fault);

        svc::ResilientConfig config;
        config.max_attempts = 1 + static_cast<unsigned>(rng.uniform_int(3));
        config.backoff_base = std::chrono::microseconds(1);
        config.backoff_cap = std::chrono::microseconds(20);
        config.breaker_consecutive = 2 + static_cast<unsigned>(rng.uniform_int(6));
        config.breaker_open = std::chrono::microseconds(200);
        config.half_open_probes = 1 + static_cast<unsigned>(rng.uniform_int(2));
        config.seed = rng.next_u64();
        svc::ResilientResolver resolver(&faulty, config);

        for (int i = 0; i < 48; ++i) {
          const svc::ResolveResult result = resolver.resolve(c.id);
          if (result.has_key() != (result.outcome == svc::ResolveOutcome::kOk)) {
            return false;
          }
          if (result.outcome == svc::ResolveOutcome::kNotVouched) {
            return false;  // fault laundered into a trust verdict
          }
          const auto state = resolver.breaker_state();
          if (state != svc::BreakerState::kClosed && state != svc::BreakerState::kOpen &&
              state != svc::BreakerState::kHalfOpen) {
            return false;
          }
        }

        // Liveness: fault cleared, the breaker must recover and serve keys.
        faulty.set_fail_rate(0.0);
        bool recovered = false;
        for (int i = 0; i < 200 && !recovered; ++i) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          // Closed, not just a successful half-open probe: with
          // half_open_probes > 1 the first kOk still leaves the breaker
          // half-open.
          recovered = resolver.resolve(c.id).outcome == svc::ResolveOutcome::kOk &&
                      resolver.breaker_state() == svc::BreakerState::kClosed;
        }
        return recovered;
      });
}

}  // namespace mccls::qa
