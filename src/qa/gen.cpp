#include "qa/gen.hpp"

#include "pairing/pairing.hpp"

namespace mccls::qa {

using math::Fp;
using math::Fq;
using math::U256;

namespace {

U256 uniform_u256(sim::Rng& rng) {
  return U256{{rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64()}};
}

U256 power_of_two_ish(sim::Rng& rng) {
  const unsigned k = static_cast<unsigned>(rng.uniform_int(256));
  U256 v{};
  v.w[k / 64] = std::uint64_t{1} << (k % 64);
  switch (rng.uniform_int(3)) {
    case 0:
      return v;  // 2^k
    case 1: {    // 2^k - 1
      U256 out;
      sub(out, v, U256::one());
      return out;
    }
    default: {  // 2^k + 1
      U256 out;
      add(out, v, U256::one());
      return out;
    }
  }
}

U256 near_modulus(sim::Rng& rng, const U256& m) {
  U256 out;
  const std::uint64_t delta = rng.uniform_int(3);  // m-1, m, m+1
  if (delta == 0) {
    sub(out, m, U256::one());
  } else if (delta == 1) {
    out = m;
  } else {
    add(out, m, U256::one());
  }
  return out;
}

}  // namespace

U256 gen_u256(sim::Rng& rng) {
  switch (rng.uniform_int(10)) {
    case 0:
      return U256::zero();
    case 1:
      return U256::one();
    case 2:
      return U256::from_u64(rng.uniform_int(1024));
    case 3:
      return power_of_two_ish(rng);
    case 4:
      return U256{{~0ULL, ~0ULL, ~0ULL, ~0ULL}};
    case 5:
      return near_modulus(rng, Fp::modulus());
    case 6:
      return near_modulus(rng, Fq::modulus());
    default:
      return uniform_u256(rng);
  }
}

Fp gen_fp(sim::Rng& rng) { return Fp::from_u256(gen_u256(rng)); }

Fq gen_fq(sim::Rng& rng) { return Fq::from_u256(gen_u256(rng)); }

Fq gen_fq_nonzero(sim::Rng& rng) {
  for (;;) {
    const Fq x = gen_fq(rng);
    if (!x.is_zero()) return x;
  }
}

math::Fp2 gen_fp2(sim::Rng& rng) { return {gen_fp(rng), gen_fp(rng)}; }

ec::G1 gen_g1(sim::Rng& rng) {
  if (rng.uniform_int(16) == 0) return ec::G1::infinity();
  return gen_g1_nonzero(rng);
}

ec::G1 gen_g1_nonzero(sim::Rng& rng) {
  for (;;) {
    const Fq k = gen_fq(rng);
    if (k.is_zero()) continue;
    return ec::G1::mul_generator(k.to_u256());
  }
}

ec::G1 gen_g1_non_subgroup(sim::Rng& rng) {
  // (0, 0) is the 2-torsion point of y^2 = x^3 + x: translating any subgroup
  // point by it yields a point of even order, hence outside the odd-order-q
  // subgroup (q·(P + T2) = q·T2 = T2 ≠ O).
  const auto t2 = ec::G1::from_affine(Fp::zero(), Fp::zero());
  return gen_g1(rng) + *t2;
}

pairing::Gt gen_gt(sim::Rng& rng) {
  if (rng.uniform_int(16) == 0) return pairing::Gt::one();
  // Fixed base ê(G, G) computed once; random exponents stay in the subgroup.
  static const pairing::Gt base =
      pairing::pair(ec::G1::generator(), ec::G1::generator());
  return base.pow(gen_fq_nonzero(rng));
}

crypto::Bytes gen_bytes(sim::Rng& rng, std::size_t max_len) {
  const std::size_t n = rng.uniform_int(max_len + 1);
  crypto::Bytes out(n);
  const std::uint64_t mode = rng.uniform_int(8);
  for (auto& b : out) {
    if (mode == 0) {
      b = 0x00;
    } else if (mode == 1) {
      b = 0xFF;
    } else {
      b = static_cast<std::uint8_t>(rng.next_u64());
    }
  }
  return out;
}

std::string gen_id(sim::Rng& rng) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789@.-_";
  const std::size_t n = 1 + rng.uniform_int(24);
  std::string s(n, 'x');
  for (auto& c : s) c = kAlphabet[rng.uniform_int(sizeof(kAlphabet) - 1)];
  return s;
}

std::vector<U256> shrink_u256(const U256& x) {
  std::vector<U256> out;
  if (x.is_zero()) return out;
  out.push_back(U256::zero());
  U256 top_cleared = x;
  top_cleared.w[3] = 0;
  top_cleared.w[2] = 0;
  if (!(top_cleared == x)) out.push_back(top_cleared);
  out.push_back(shr1(x));
  U256 dec;
  sub(dec, x, U256::one());
  out.push_back(dec);
  return out;
}

std::vector<crypto::Bytes> shrink_bytes(const crypto::Bytes& b) {
  std::vector<crypto::Bytes> out;
  if (b.empty()) return out;
  out.emplace_back();                                        // empty
  out.emplace_back(b.begin(), b.begin() + b.size() / 2);     // first half
  out.emplace_back(b.begin() + b.size() / 2, b.end());       // second half
  out.emplace_back(b.begin(), b.end() - 1);                  // one shorter
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (b[i] == 0) continue;
    crypto::Bytes zeroed = b;
    zeroed[i] = 0;
    out.push_back(std::move(zeroed));
    if (out.size() > 24) break;  // cap candidate fan-out per round
  }
  return out;
}

std::string show_u256(const U256& x) { return "0x" + x.to_hex(); }

std::string show_bytes(const crypto::Bytes& b) {
  return "hex:" + crypto::to_hex(b) + " (" + std::to_string(b.size()) + " bytes)";
}

Gen<std::vector<U256>> scalar_vec_gen(std::size_t n) {
  Gen<std::vector<U256>> gen;
  gen.create = [n](sim::Rng& rng) {
    std::vector<U256> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.push_back(gen_u256(rng));
    return v;
  };
  gen.shrink = [](const std::vector<U256>& v) {
    std::vector<std::vector<U256>> out;
    for (std::size_t i = 0; i < v.size(); ++i) {
      for (const U256& cand : shrink_u256(v[i])) {
        std::vector<U256> copy = v;
        copy[i] = cand;
        out.push_back(std::move(copy));
      }
    }
    return out;
  };
  gen.show = [](const std::vector<U256>& v) {
    std::string s = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i != 0) s += ", ";
      s += show_u256(v[i]);
    }
    return s + "]";
  };
  return gen;
}

Gen<crypto::Bytes> bytes_gen(std::size_t max_len) {
  Gen<crypto::Bytes> gen;
  gen.create = [max_len](sim::Rng& rng) { return gen_bytes(rng, max_len); };
  gen.shrink = [](const crypto::Bytes& b) { return shrink_bytes(b); };
  gen.show = [](const crypto::Bytes& b) { return show_bytes(b); };
  return gen;
}

}  // namespace mccls::qa
