#include "dsr/dsr_traffic.hpp"

#include <cstdint>
#include <stdexcept>

namespace mccls::dsr {

namespace {

void schedule_tick(sim::Simulator& simulator, std::vector<std::unique_ptr<DsrAgent>>& agents,
                   const aodv::CbrFlow& flow, std::uint64_t tick) {
  const sim::SimTime t = flow.start + static_cast<double>(tick) * flow.interval;
  if (t >= flow.stop) return;
  simulator.schedule_at(t, [&simulator, &agents, flow, tick] {
    agents[flow.src]->send_data(flow.dst, flow.payload_bytes);
    schedule_tick(simulator, agents, flow, tick + 1);
  });
}

}  // namespace

void install_flow(sim::Simulator& simulator, std::vector<std::unique_ptr<DsrAgent>>& agents,
                  const aodv::CbrFlow& flow) {
  if (flow.src >= agents.size() || flow.dst >= agents.size() || flow.src == flow.dst) {
    throw std::invalid_argument("dsr::install_flow: bad endpoints");
  }
  if (flow.interval <= 0) throw std::invalid_argument("dsr::install_flow: bad interval");
  schedule_tick(simulator, agents, flow, 0);
}

}  // namespace mccls::dsr
