// Binary wire codec for DSR packets — the DSR counterpart of aodv/codec.hpp
// (export/import boundary format with total, hardened decoders).
#pragma once

#include <optional>

#include "dsr/dsr_agent.hpp"

namespace mccls::dsr {

crypto::Bytes encode_packet(const DsrPayload& payload);
std::optional<DsrPayload> decode_packet(std::span<const std::uint8_t> bytes);

}  // namespace mccls::dsr
