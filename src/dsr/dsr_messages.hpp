// DSR (Dynamic Source Routing, Johnson-Maltz) message set. The paper's
// reference [12] applies signature extensions to "AODV and DSR routing
// security"; this module provides the DSR side so the two protocols can be
// compared under the same CLS authentication and the same attacks.
//
// DSR differs from AODV in that routes are carried in packets: RREQs
// accumulate the traversed node list, RREPs return the complete path, and
// data packets are source-routed along it.
#pragma once

#include <optional>
#include <vector>

#include "aodv/messages.hpp"  // AuthExt, NodeId, wire-size helpers

namespace mccls::dsr {

using aodv::AuthExt;
using aodv::NodeId;

struct DsrRreq {
  std::uint32_t request_id = 0;
  NodeId origin = 0;
  NodeId target = 0;
  std::vector<NodeId> route;  ///< accumulated path, excluding origin & target
  std::uint8_t ttl = 35;
  /// Origination timestamp, covered by the origin signature. Secured nodes
  /// reject requests older than DsrConfig::rreq_freshness (replay defense).
  sim::SimTime issued_at = 0;
  std::optional<AuthExt> origin_auth;  ///< origin's signature (immutable fields)
  std::optional<AuthExt> hop_auth;     ///< last forwarder's signature incl. route
};

struct DsrRrep {
  std::uint32_t request_id = 0;
  NodeId origin = 0;
  NodeId target = 0;
  std::vector<NodeId> route;  ///< full relay list origin -> target order
  std::uint8_t hop_index = 0; ///< position while travelling back (mutable)
  std::optional<AuthExt> origin_auth;  ///< target's signature over the route
  std::optional<AuthExt> hop_auth;
};

struct DsrRerr {
  NodeId reporter = 0;
  NodeId broken_from = 0;  ///< the detected dead link (from -> to)
  NodeId broken_to = 0;
  std::optional<AuthExt> origin_auth;
};

struct DsrData {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t seq = 0;
  sim::SimTime sent_at = 0;
  std::size_t payload_bytes = 0;
  std::vector<NodeId> route;   ///< relays only (src and dst excluded)
  std::uint8_t hop_index = 0;  ///< next relay to visit; == route.size() => dst
};

/// Immutable-field transcripts for signing. For DSR the accumulated route is
/// part of what the hop signature covers (Ariadne-style), so tampering with
/// the path invalidates the forwarder's signature.
crypto::Bytes signable_origin(const DsrRreq& rreq);
crypto::Bytes signable_hop(const DsrRreq& rreq);  ///< includes current route
crypto::Bytes signable_origin(const DsrRrep& rrep);
crypto::Bytes signable_origin(const DsrRerr& rerr);

/// On-air sizes (IP/UDP framing + DSR option headers), excluding auth.
std::size_t base_wire_size(const DsrRreq& rreq);
std::size_t base_wire_size(const DsrRrep& rrep);
std::size_t base_wire_size(const DsrRerr& rerr);
std::size_t wire_size(const DsrData& data);

}  // namespace mccls::dsr
