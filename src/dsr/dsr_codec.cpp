#include "dsr/dsr_codec.hpp"

#include <cmath>

namespace mccls::dsr {

namespace {

constexpr std::uint8_t kTagRreq = 0x11;
constexpr std::uint8_t kTagRrep = 0x12;
constexpr std::uint8_t kTagRerr = 0x13;
constexpr std::uint8_t kTagData = 0x14;
constexpr std::uint32_t kMaxRouteLen = 64;  // decode sanity bound

// Time fields travel as integer microseconds; same two hardening rules as
// aodv/codec.cpp (property-fuzz findings): round on encode — truncation
// loses a microsecond per decode→re-encode cycle whenever the time has no
// exact double representation — and reject values above 2^50 µs on decode,
// past which the µs→double→µs round-trip stops being exact.
constexpr std::uint64_t kMaxTimeMicros = std::uint64_t{1} << 50;

std::uint64_t time_to_micros(double seconds) {
  return static_cast<std::uint64_t>(std::llround(seconds * 1e6));
}

std::optional<double> micros_to_time(std::uint64_t micros) {
  if (micros > kMaxTimeMicros) return std::nullopt;
  return static_cast<double>(micros) / 1e6;
}

void put_auth(crypto::ByteWriter& w, const std::optional<AuthExt>& auth) {
  w.put_u8(auth.has_value() ? 1 : 0);
  if (!auth) return;
  w.put_u32(auth->signer);
  w.put_field(auth->public_key);
  w.put_field(auth->signature);
}

bool get_auth(crypto::ByteReader& r, std::optional<AuthExt>& out) {
  const auto present = r.get_u8();
  if (!present) return false;
  if (*present == 0) {
    out = std::nullopt;
    return true;
  }
  if (*present != 1) return false;
  AuthExt auth;
  const auto signer = r.get_u32();
  auto pk = r.get_field();
  auto sig = r.get_field();
  if (!signer || !pk || !sig) return false;
  auth.signer = *signer;
  auth.public_key = std::move(*pk);
  auth.signature = std::move(*sig);
  out = auth;
  return true;
}

void put_route(crypto::ByteWriter& w, const std::vector<NodeId>& route) {
  w.put_u32(static_cast<std::uint32_t>(route.size()));
  for (const NodeId n : route) w.put_u32(n);
}

bool get_route(crypto::ByteReader& r, std::vector<NodeId>& out) {
  const auto count = r.get_u32();
  if (!count || *count > kMaxRouteLen) return false;
  out.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto n = r.get_u32();
    if (!n) return false;
    out.push_back(*n);
  }
  return true;
}

void encode(crypto::ByteWriter& w, const DsrRreq& m) {
  w.put_u8(kTagRreq);
  w.put_u32(m.request_id);
  w.put_u32(m.origin);
  w.put_u32(m.target);
  w.put_u8(m.ttl);
  w.put_u64(time_to_micros(m.issued_at));
  put_route(w, m.route);
  put_auth(w, m.origin_auth);
  put_auth(w, m.hop_auth);
}

void encode(crypto::ByteWriter& w, const DsrRrep& m) {
  w.put_u8(kTagRrep);
  w.put_u32(m.request_id);
  w.put_u32(m.origin);
  w.put_u32(m.target);
  w.put_u8(m.hop_index);
  put_route(w, m.route);
  put_auth(w, m.origin_auth);
  put_auth(w, m.hop_auth);
}

void encode(crypto::ByteWriter& w, const DsrRerr& m) {
  w.put_u8(kTagRerr);
  w.put_u32(m.reporter);
  w.put_u32(m.broken_from);
  w.put_u32(m.broken_to);
  put_auth(w, m.origin_auth);
}

void encode(crypto::ByteWriter& w, const DsrData& m) {
  w.put_u8(kTagData);
  w.put_u32(m.src);
  w.put_u32(m.dst);
  w.put_u32(m.seq);
  w.put_u64(time_to_micros(m.sent_at));
  w.put_u64(m.payload_bytes);
  w.put_u8(m.hop_index);
  put_route(w, m.route);
}

std::optional<DsrRreq> decode_rreq(crypto::ByteReader& r) {
  DsrRreq m;
  const auto request_id = r.get_u32();
  const auto origin = r.get_u32();
  const auto target = r.get_u32();
  const auto ttl = r.get_u8();
  const auto issued_us = r.get_u64();
  if (!request_id || !origin || !target || !ttl || !issued_us) return std::nullopt;
  m.request_id = *request_id;
  m.origin = *origin;
  m.target = *target;
  m.ttl = *ttl;
  const auto issued_at = micros_to_time(*issued_us);
  if (!issued_at) return std::nullopt;
  m.issued_at = *issued_at;
  if (!get_route(r, m.route)) return std::nullopt;
  if (!get_auth(r, m.origin_auth) || !get_auth(r, m.hop_auth)) return std::nullopt;
  return m;
}

std::optional<DsrRrep> decode_rrep(crypto::ByteReader& r) {
  DsrRrep m;
  const auto request_id = r.get_u32();
  const auto origin = r.get_u32();
  const auto target = r.get_u32();
  const auto hop_index = r.get_u8();
  if (!request_id || !origin || !target || !hop_index.has_value()) return std::nullopt;
  m.request_id = *request_id;
  m.origin = *origin;
  m.target = *target;
  m.hop_index = *hop_index;
  if (!get_route(r, m.route)) return std::nullopt;
  if (m.hop_index > m.route.size()) return std::nullopt;
  if (!get_auth(r, m.origin_auth) || !get_auth(r, m.hop_auth)) return std::nullopt;
  return m;
}

std::optional<DsrRerr> decode_rerr(crypto::ByteReader& r) {
  DsrRerr m;
  const auto reporter = r.get_u32();
  const auto broken_from = r.get_u32();
  const auto broken_to = r.get_u32();
  if (!reporter || !broken_from || !broken_to) return std::nullopt;
  m.reporter = *reporter;
  m.broken_from = *broken_from;
  m.broken_to = *broken_to;
  if (!get_auth(r, m.origin_auth)) return std::nullopt;
  return m;
}

std::optional<DsrData> decode_data(crypto::ByteReader& r) {
  DsrData m;
  const auto src = r.get_u32();
  const auto dst = r.get_u32();
  const auto seq = r.get_u32();
  const auto sent_us = r.get_u64();
  const auto payload = r.get_u64();
  const auto hop_index = r.get_u8();
  if (!src || !dst || !seq || !sent_us || !payload || !hop_index.has_value()) {
    return std::nullopt;
  }
  m.src = *src;
  m.dst = *dst;
  m.seq = *seq;
  const auto sent_at = micros_to_time(*sent_us);
  if (!sent_at) return std::nullopt;
  m.sent_at = *sent_at;
  m.payload_bytes = static_cast<std::size_t>(*payload);
  m.hop_index = *hop_index;
  if (!get_route(r, m.route)) return std::nullopt;
  if (m.hop_index > m.route.size()) return std::nullopt;
  return m;
}

}  // namespace

crypto::Bytes encode_packet(const DsrPayload& payload) {
  crypto::ByteWriter w;
  std::visit([&w](const auto& msg) { encode(w, msg); }, payload.msg);
  return w.take();
}

std::optional<DsrPayload> decode_packet(std::span<const std::uint8_t> bytes) {
  crypto::ByteReader r(bytes);
  const auto tag = r.get_u8();
  if (!tag) return std::nullopt;
  std::optional<DsrPayload> out;
  switch (*tag) {
    case kTagRreq:
      if (auto m = decode_rreq(r)) out = DsrPayload{std::move(*m)};
      break;
    case kTagRrep:
      if (auto m = decode_rrep(r)) out = DsrPayload{std::move(*m)};
      break;
    case kTagRerr:
      if (auto m = decode_rerr(r)) out = DsrPayload{std::move(*m)};
      break;
    case kTagData:
      if (auto m = decode_data(r)) out = DsrPayload{std::move(*m)};
      break;
    default:
      return std::nullopt;
  }
  if (!out || !r.exhausted()) return std::nullopt;
  return out;
}

}  // namespace mccls::dsr
