#include "dsr/dsr_messages.hpp"

#include <cmath>

namespace mccls::dsr {

namespace {
constexpr std::size_t kIpUdpHeader = 28;

void put_route(crypto::ByteWriter& w, const std::vector<NodeId>& route) {
  w.put_u32(static_cast<std::uint32_t>(route.size()));
  for (const NodeId n : route) w.put_u32(n);
}
}  // namespace

crypto::Bytes signable_origin(const DsrRreq& rreq) {
  crypto::ByteWriter w;
  w.put_u8(0x11);
  w.put_u32(rreq.request_id);
  w.put_u32(rreq.origin);
  w.put_u32(rreq.target);
  // Same µs rounding as the codec, so a decoded copy re-signs identically.
  w.put_u64(static_cast<std::uint64_t>(std::llround(rreq.issued_at * 1e6)));
  return w.take();
}

crypto::Bytes signable_hop(const DsrRreq& rreq) {
  crypto::ByteWriter w;
  w.put_u8(0x12);
  w.put_u32(rreq.request_id);
  w.put_u32(rreq.origin);
  w.put_u32(rreq.target);
  put_route(w, rreq.route);  // the forwarder vouches for the path so far
  return w.take();
}

crypto::Bytes signable_origin(const DsrRrep& rrep) {
  crypto::ByteWriter w;
  w.put_u8(0x13);
  w.put_u32(rrep.request_id);
  w.put_u32(rrep.origin);
  w.put_u32(rrep.target);
  put_route(w, rrep.route);  // the whole returned path is authenticated
  return w.take();
}

crypto::Bytes signable_origin(const DsrRerr& rerr) {
  crypto::ByteWriter w;
  w.put_u8(0x14);
  w.put_u32(rerr.reporter);
  w.put_u32(rerr.broken_from);
  w.put_u32(rerr.broken_to);
  return w.take();
}

std::size_t base_wire_size(const DsrRreq& rreq) {
  return kIpUdpHeader + 24 + 4 * rreq.route.size();
}
std::size_t base_wire_size(const DsrRrep& rrep) {
  return kIpUdpHeader + 16 + 4 * rrep.route.size();
}
std::size_t base_wire_size(const DsrRerr&) { return kIpUdpHeader + 16; }
std::size_t wire_size(const DsrData& data) {
  // Source route rides in every data packet — DSR's per-packet overhead.
  return kIpUdpHeader + data.payload_bytes + 4 + 4 * data.route.size();
}

}  // namespace mccls::dsr
