// DSR routing agent (Johnson-Maltz Dynamic Source Routing, simplified to
// the mechanisms that matter for this study): route discovery with
// accumulating route records, a per-destination route cache, source-routed
// data forwarding with link-layer failure feedback, and route-error
// reporting. Supports the same McCLS authentication extension and the same
// black-hole / rushing attacker roles as the AODV agent, enabling the
// protocol comparison the paper's reference [12] targets.
#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <variant>

#include "aodv/agent.hpp"  // AttackType, Metrics, SecurityProvider
#include "dsr/dsr_messages.hpp"

namespace mccls::dsr {

using aodv::AttackType;
using aodv::Metrics;
using aodv::SecurityProvider;

struct DsrConfig {
  double route_lifetime = 10.0;      ///< cache entry lifetime, seconds
  double net_traversal_time = 0.75;  ///< discovery timeout, attempt 1
  int rreq_retries = 2;
  double forward_jitter_max = 0.01;
  std::size_t buffer_capacity = 64;
  std::uint8_t max_route_len = 16;  ///< relays per route record
  std::uint8_t rreq_ttl = 35;
  double request_table_lifetime = 5.0;  ///< RREQ dedup window
  std::uint8_t rerr_ttl = 3;            ///< small flood for error reports

  /// Replay defense: secured nodes drop RREQs whose signed origination
  /// timestamp is older than this many seconds (0 disables).
  double rreq_freshness = 3.0;

  // Attack knobs (only read by agents running the matching AttackType).
  std::size_t sybil_pool = 4;          ///< fabricated identities per attacker
  double replay_storm_interval = 1.0;  ///< seconds between reflood bursts
  std::size_t replay_record_cap = 16;  ///< overheard RREQs retained
  int replay_copies = 3;               ///< id-mutated copies per RREQ per burst
};

struct DsrPayload {
  std::variant<DsrRreq, DsrRrep, DsrRerr, DsrData> msg;
};

class DsrAgent final : public net::RadioListener {
 public:
  DsrAgent(sim::Simulator& simulator, net::Channel& channel, NodeId id,
           const DsrConfig& config, sim::Rng rng, Metrics& metrics,
           SecurityProvider* security = nullptr, AttackType attack = AttackType::kNone);

  /// Application entry point.
  void send_data(NodeId dst, std::size_t payload_bytes);

  void on_frame(const net::Frame& frame) override;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] AttackType attack() const { return attack_; }
  /// Current cached route to `dst` (relays only), if fresh. For tests.
  [[nodiscard]] const std::vector<NodeId>* cached_route(NodeId dst) const;

 private:
  struct CachedRoute {
    std::vector<NodeId> relays;
    sim::SimTime expires = 0;
  };
  struct Discovery {
    int attempt = 0;
    sim::EventId timeout = 0;
  };

  // Control plane.
  void handle_rreq(DsrRreq rreq, NodeId from);
  void handle_rrep(DsrRrep rrep, NodeId from);
  void handle_rerr(const DsrRerr& rerr, NodeId from);
  void handle_data(DsrData data, NodeId from);

  void originate_discovery(NodeId dst);
  void send_rreq(NodeId dst, int attempt);
  void reply_as_target(const DsrRreq& rreq);
  void black_hole_reply(const DsrRreq& rreq);
  [[nodiscard]] NodeId sybil_identity(std::size_t k) const;
  void sybil_reply(const DsrRreq& rreq);
  void replay_storm_tick();
  void forward_rrep(DsrRrep rrep);
  void report_broken_link(NodeId from, NodeId to);

  // Data plane.
  void transmit_data(DsrData data);
  void flush_buffer(NodeId dst);
  void abandon_discovery(NodeId dst);

  // Cache.
  void cache_route(NodeId dst, std::vector<NodeId> relays);
  void drop_routes_containing(NodeId from, NodeId to);

  // Security helpers (shared latency/op accounting with the AODV agent).
  [[nodiscard]] double sign_latency() const;
  [[nodiscard]] double verify_latency(int signatures) const;
  bool verify_auth(const std::optional<AuthExt>& auth,
                   std::span<const std::uint8_t> transcript);
  [[nodiscard]] std::size_t auth_overhead(const std::optional<AuthExt>& a,
                                          const std::optional<AuthExt>& b) const;

  bool request_seen(NodeId origin, std::uint32_t request_id);
  bool rerr_seen(const DsrRerr& rerr);

  sim::Simulator& sim_;
  net::Channel& channel_;
  NodeId id_;
  DsrConfig cfg_;
  sim::Rng rng_;
  Metrics& metrics_;
  SecurityProvider* security_;
  AttackType attack_;

  std::uint32_t next_request_id_ = 1;
  std::uint32_t next_data_seq_ = 1;
  std::unordered_map<NodeId, CachedRoute> cache_;
  std::unordered_map<NodeId, Discovery> pending_;
  std::unordered_map<NodeId, std::deque<DsrData>> buffer_;
  std::unordered_map<std::uint64_t, sim::SimTime> seen_requests_;
  std::unordered_set<std::uint64_t> seen_rerrs_;

  // Attacker state (sybil / replay-storm).
  std::size_t sybil_cursor_ = 0;
  std::vector<std::pair<DsrRreq, NodeId>> replay_log_;  ///< (packet, transmitter)
  std::uint32_t replay_mutation_ = 0;
};

}  // namespace mccls::dsr
