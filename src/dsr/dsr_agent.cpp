#include "dsr/dsr_agent.hpp"

#include <algorithm>

namespace mccls::dsr {

DsrAgent::DsrAgent(sim::Simulator& simulator, net::Channel& channel, NodeId id,
                   const DsrConfig& config, sim::Rng rng, Metrics& metrics,
                   SecurityProvider* security, AttackType attack)
    : sim_(simulator),
      channel_(channel),
      id_(id),
      cfg_(config),
      rng_(rng),
      metrics_(metrics),
      security_(security),
      attack_(attack) {
  channel_.attach(id_, this);
  if (attack_ == AttackType::kRushing) channel_.set_zero_backoff(id_, true);
  if (attack_ == AttackType::kReplayStorm && cfg_.replay_storm_interval > 0) {
    sim_.schedule_in(rng_.uniform(0, cfg_.replay_storm_interval),
                     [this] { replay_storm_tick(); });
  }
}

// --------------------------------------------------------------- security

double DsrAgent::sign_latency() const {
  return security_ != nullptr ? security_->costs().sign_delay : 0.0;
}

double DsrAgent::verify_latency(int signatures) const {
  return security_ != nullptr ? signatures * security_->costs().verify_delay : 0.0;
}

bool DsrAgent::verify_auth(const std::optional<AuthExt>& auth,
                           std::span<const std::uint8_t> transcript) {
  if (security_ == nullptr) return true;
  ++metrics_.verify_ops;
  if (!auth || !security_->verify(*auth, transcript)) {
    ++metrics_.auth_rejected;
    return false;
  }
  return true;
}

std::size_t DsrAgent::auth_overhead(const std::optional<AuthExt>& a,
                                    const std::optional<AuthExt>& b) const {
  std::size_t n = 0;
  if (a) n += wire_size(*a);
  if (b) n += wire_size(*b);
  return n;
}

// ------------------------------------------------------------------ cache

void DsrAgent::cache_route(NodeId dst, std::vector<NodeId> relays) {
  const auto it = cache_.find(dst);
  const sim::SimTime expires = sim_.now() + cfg_.route_lifetime;
  if (it == cache_.end() || it->second.expires <= sim_.now() ||
      relays.size() < it->second.relays.size()) {
    cache_[dst] = CachedRoute{.relays = std::move(relays), .expires = expires};
  } else {
    it->second.expires = std::max(it->second.expires, expires);
  }
}

const std::vector<NodeId>* DsrAgent::cached_route(NodeId dst) const {
  const auto it = cache_.find(dst);
  if (it == cache_.end() || it->second.expires <= sim_.now()) return nullptr;
  return &it->second.relays;
}

void DsrAgent::drop_routes_containing(NodeId from, NodeId to) {
  std::erase_if(cache_, [&](const auto& kv) {
    const std::vector<NodeId>& r = kv.second.relays;
    // Expand to the full node sequence id_ -> relays -> dst and look for the
    // directed link (from, to).
    NodeId prev = id_;
    for (const NodeId n : r) {
      if (prev == from && n == to) return true;
      prev = n;
    }
    return prev == from && kv.first == to;
  });
}

// -------------------------------------------------------------- dispatch

void DsrAgent::on_frame(const net::Frame& frame) {
  const auto* payload = std::any_cast<DsrPayload>(&frame.payload);
  if (payload == nullptr) return;
  const NodeId from = frame.from;

  if (const auto* data = std::get_if<DsrData>(&payload->msg)) {
    handle_data(*data, from);
    return;
  }
  if (const auto* rreq = std::get_if<DsrRreq>(&payload->msg)) {
    if (attack_ == AttackType::kBlackHole) {
      if (rreq->origin != id_ && rreq->target != id_ &&
          !request_seen(rreq->origin, rreq->request_id)) {
        black_hole_reply(*rreq);
      }
      return;
    }
    if (attack_ == AttackType::kSybil) {
      if (rreq->origin != id_ && rreq->target != id_ &&
          !request_seen(rreq->origin, rreq->request_id)) {
        sybil_reply(*rreq);
      }
      return;
    }
    if (attack_ == AttackType::kReplayStorm) {
      // Harvest raw floods for later refloods; never forward honestly.
      if (rreq->origin != id_ && replay_log_.size() < cfg_.replay_record_cap) {
        replay_log_.emplace_back(*rreq, from);
      }
      return;
    }
    if (attack_ == AttackType::kRushing) {
      DsrRreq copy = *rreq;
      handle_rreq(std::move(copy), from);  // zero jitter inside
      return;
    }
    DsrRreq copy = *rreq;
    sim_.schedule_in(verify_latency(2), [this, copy = std::move(copy), from]() mutable {
      // Replay defense, checked before the (costlier) signature work: the
      // timestamp is covered by the origin signature, so replayers cannot
      // refresh it. Only meaningful when secured.
      if (security_ != nullptr && cfg_.rreq_freshness > 0 &&
          sim_.now() - copy.issued_at > cfg_.rreq_freshness) {
        ++metrics_.replay_rejected;
        return;
      }
      if (security_ != nullptr) {
        // Binding rules: origin signature by the claimed origin; hop
        // signature by the transmitting neighbour, who must also be the
        // last node on the accumulated route (or the origin itself).
        const NodeId expected_last = copy.route.empty() ? copy.origin : copy.route.back();
        if (!copy.origin_auth || !copy.hop_auth ||
            copy.origin_auth->signer != copy.origin || copy.hop_auth->signer != from ||
            expected_last != from) {
          ++metrics_.auth_rejected;
          return;
        }
      }
      if (!verify_auth(copy.origin_auth, signable_origin(copy)) ||
          !verify_auth(copy.hop_auth, signable_hop(copy))) {
        return;
      }
      handle_rreq(std::move(copy), from);
    });
    return;
  }
  if (const auto* rrep = std::get_if<DsrRrep>(&payload->msg)) {
    if (attack_ == AttackType::kReplayStorm) return;  // pure flooder
    if (attack_ == AttackType::kBlackHole || attack_ == AttackType::kRushing ||
        attack_ == AttackType::kSybil) {
      DsrRrep copy = *rrep;
      handle_rrep(std::move(copy), from);
      return;
    }
    DsrRrep copy = *rrep;
    sim_.schedule_in(verify_latency(1), [this, copy = std::move(copy), from]() mutable {
      if (security_ != nullptr &&
          (!copy.origin_auth || copy.origin_auth->signer != copy.target)) {
        ++metrics_.auth_rejected;
        return;
      }
      if (!verify_auth(copy.origin_auth, signable_origin(copy))) return;
      handle_rrep(std::move(copy), from);
    });
    return;
  }
  if (const auto* rerr = std::get_if<DsrRerr>(&payload->msg)) {
    if (attack_ == AttackType::kBlackHole || attack_ == AttackType::kRushing ||
        attack_ == AttackType::kSybil || attack_ == AttackType::kReplayStorm) {
      return;
    }
    DsrRerr copy = *rerr;
    sim_.schedule_in(verify_latency(1), [this, copy = std::move(copy), from] {
      if (!verify_auth(copy.origin_auth, signable_origin(copy))) return;
      handle_rerr(copy, from);
    });
    return;
  }
}

// ------------------------------------------------------------------ RREQ

bool DsrAgent::request_seen(NodeId origin, std::uint32_t request_id) {
  const std::uint64_t key = (static_cast<std::uint64_t>(origin) << 32) | request_id;
  const sim::SimTime now = sim_.now();
  if (seen_requests_.size() > 512) {
    std::erase_if(seen_requests_, [now](const auto& kv) { return kv.second <= now; });
  }
  const auto [it, inserted] =
      seen_requests_.try_emplace(key, now + cfg_.request_table_lifetime);
  if (!inserted) {
    if (it->second > now) return true;
    it->second = now + cfg_.request_table_lifetime;
  }
  return false;
}

void DsrAgent::handle_rreq(DsrRreq rreq, NodeId from) {
  (void)from;
  if (rreq.origin == id_) return;
  if (request_seen(rreq.origin, rreq.request_id)) return;
  if (std::find(rreq.route.begin(), rreq.route.end(), id_) != rreq.route.end()) return;

  if (rreq.target == id_) {
    reply_as_target(rreq);
    return;
  }
  if (rreq.ttl <= 1 || rreq.route.size() >= cfg_.max_route_len) return;

  // Forward: append ourselves to the route record and rebroadcast.
  --rreq.ttl;
  rreq.route.push_back(id_);
  ++metrics_.rreq_forwarded;
  double latency = 0;
  if (security_ != nullptr) {
    ++metrics_.sign_ops;
    rreq.hop_auth = security_->sign(id_, signable_hop(rreq));
    latency += sign_latency();
  }
  if (attack_ != AttackType::kRushing) {
    latency += rng_.uniform(0, cfg_.forward_jitter_max);
  }
  const std::size_t bytes = base_wire_size(rreq) + auth_overhead(rreq.origin_auth, rreq.hop_auth);
  sim_.schedule_in(latency, [this, rreq = std::move(rreq), bytes] {
    channel_.broadcast(id_, bytes, DsrPayload{rreq});
  });
}

void DsrAgent::reply_as_target(const DsrRreq& rreq) {
  ++metrics_.rrep_generated;
  DsrRrep rrep{.request_id = rreq.request_id,
               .origin = rreq.origin,
               .target = id_,
               .route = rreq.route,
               .hop_index = static_cast<std::uint8_t>(rreq.route.size())};
  double latency = 0;
  if (security_ != nullptr) {
    ++metrics_.sign_ops;
    rrep.origin_auth = security_->sign(id_, signable_origin(rrep));
    latency += sign_latency();
  }
  const NodeId next =
      rrep.route.empty() ? rrep.origin : rrep.route.back();
  const std::size_t bytes =
      base_wire_size(rrep) + auth_overhead(rrep.origin_auth, rrep.hop_auth);
  sim_.schedule_in(latency, [this, rrep = std::move(rrep), next, bytes] {
    channel_.unicast(id_, next, bytes, DsrPayload{rrep},
                     [this, next](bool ok) {
                       if (!ok) report_broken_link(id_, next);
                     });
  });
}

void DsrAgent::black_hole_reply(const DsrRreq& rreq) {
  // Claim origin -> attacker -> target: the shortest possible relayed route,
  // so the origin prefers it over longer honest replies.
  ++metrics_.rrep_generated;
  DsrRrep rrep{.request_id = rreq.request_id,
               .origin = rreq.origin,
               .target = rreq.target,
               .route = {id_},
               .hop_index = 1};
  if (security_ != nullptr) {
    // Best effort: forge the target's signature (invalid — we are not the
    // target and hold no credentials).
    rrep.origin_auth = security_->sign(id_, signable_origin(rrep));
  }
  // We are route[0]; send toward the origin as if forwarding a genuine
  // reply that arrived from the target.
  const std::size_t bytes =
      base_wire_size(rrep) + auth_overhead(rrep.origin_auth, rrep.hop_auth);
  rrep.hop_index = 0;
  channel_.unicast(id_, rrep.origin, bytes, DsrPayload{rrep}, {});
}

// ------------------------------------------------- sybil / replay-storm

NodeId DsrAgent::sybil_identity(std::size_t k) const {
  // Well above any real node id; distinct pools per attacker.
  return 0x10000u + static_cast<NodeId>(id_) * 64u + static_cast<NodeId>(k);
}

void DsrAgent::sybil_reply(const DsrRreq& rreq) {
  // Route-cache poisoning: a forged reply routing origin -> <phantom> ->
  // target. Unsecured origins cache it and then unicast data at a node that
  // does not exist — every packet burns the full MAC retry budget and dies
  // (link_fail_drops), a different failure mode from black-hole absorption.
  // Secured origins reject it at the binding check (the origin signature
  // must come from the claimed target, and no sybil identity is enrolled).
  const NodeId fake = sybil_identity(sybil_cursor_++ % cfg_.sybil_pool);
  ++metrics_.rrep_generated;
  DsrRrep rrep{.request_id = rreq.request_id,
               .origin = rreq.origin,
               .target = rreq.target,
               .route = {fake},
               .hop_index = 0};
  if (security_ != nullptr) {
    rrep.origin_auth = security_->sign(fake, signable_origin(rrep));
  }
  const std::size_t bytes =
      base_wire_size(rrep) + auth_overhead(rrep.origin_auth, rrep.hop_auth);
  channel_.unicast(id_, rreq.origin, bytes, DsrPayload{rrep}, {});
}

void DsrAgent::replay_storm_tick() {
  for (const auto& [recorded, orig_from] : replay_log_) {
    // Verbatim reflood with the original transmitter spoofed; stale signed
    // timestamps are the secured network's tell (replay_rejected).
    const std::size_t bytes =
        base_wire_size(recorded) + auth_overhead(recorded.origin_auth, recorded.hop_auth);
    channel_.broadcast_as(id_, orig_from, bytes, DsrPayload{recorded});
    // Id-mutated copies defeat the request-table dedup; the mutation breaks
    // the origin signature (request_id is signed) in secured networks.
    for (int c = 0; c < cfg_.replay_copies; ++c) {
      DsrRreq mutated = recorded;
      mutated.request_id += 0x40000000u + ++replay_mutation_;
      channel_.broadcast_as(id_, orig_from, bytes, DsrPayload{mutated});
    }
  }
  sim_.schedule_in(cfg_.replay_storm_interval * rng_.uniform(0.95, 1.05),
                   [this] { replay_storm_tick(); });
}

// ------------------------------------------------------------------ RREP

void DsrAgent::handle_rrep(DsrRrep rrep, NodeId from) {
  (void)from;
  if (rrep.origin == id_) {
    // Discovery complete: cache and drain.
    cache_route(rrep.target, rrep.route);
    if (const auto it = pending_.find(rrep.target); it != pending_.end()) {
      sim_.cancel(it->second.timeout);
      pending_.erase(it);
    }
    flush_buffer(rrep.target);
    return;
  }
  // We are (supposed to be) route[hop_index - 1]; pass it along.
  if (rrep.hop_index == 0) return;  // malformed
  --rrep.hop_index;
  if (rrep.hop_index >= rrep.route.size() || rrep.route[rrep.hop_index] != id_) return;
  ++metrics_.rrep_forwarded;
  forward_rrep(std::move(rrep));
}

void DsrAgent::forward_rrep(DsrRrep rrep) {
  const NodeId next = rrep.hop_index == 0 ? rrep.origin : rrep.route[rrep.hop_index - 1];
  double latency = 0;
  if (security_ != nullptr) {
    ++metrics_.sign_ops;
    rrep.hop_auth = security_->sign(id_, signable_origin(rrep));
    latency += sign_latency();
  }
  const std::size_t bytes =
      base_wire_size(rrep) + auth_overhead(rrep.origin_auth, rrep.hop_auth);
  sim_.schedule_in(latency, [this, rrep = std::move(rrep), next, bytes] {
    channel_.unicast(id_, next, bytes, DsrPayload{rrep},
                     [this, next](bool ok) {
                       if (!ok) report_broken_link(id_, next);
                     });
  });
}

// ------------------------------------------------------------------ RERR

bool DsrAgent::rerr_seen(const DsrRerr& rerr) {
  const std::uint64_t key = (static_cast<std::uint64_t>(rerr.broken_from) << 32) |
                            rerr.broken_to;
  return !seen_rerrs_.insert(key ^ (static_cast<std::uint64_t>(rerr.reporter) << 16)).second;
}

void DsrAgent::report_broken_link(NodeId from, NodeId to) {
  drop_routes_containing(from, to);
  ++metrics_.rerr_sent;
  DsrRerr rerr{.reporter = id_, .broken_from = from, .broken_to = to};
  double latency = 0;
  if (security_ != nullptr) {
    ++metrics_.sign_ops;
    rerr.origin_auth = security_->sign(id_, signable_origin(rerr));
    latency += sign_latency();
  }
  const std::size_t bytes =
      base_wire_size(rerr) + (rerr.origin_auth ? wire_size(*rerr.origin_auth) : 0);
  (void)rerr_seen(rerr);  // don't re-flood our own report
  sim_.schedule_in(latency, [this, rerr = std::move(rerr), bytes] {
    channel_.broadcast(id_, bytes, DsrPayload{rerr});
  });
}

void DsrAgent::handle_rerr(const DsrRerr& rerr, NodeId from) {
  (void)from;
  if (rerr_seen(rerr)) return;
  drop_routes_containing(rerr.broken_from, rerr.broken_to);
  // Small re-flood so sources a few hops away learn of the break.
  const std::size_t bytes =
      base_wire_size(rerr) + (rerr.origin_auth ? wire_size(*rerr.origin_auth) : 0);
  sim_.schedule_in(rng_.uniform(0, cfg_.forward_jitter_max), [this, rerr, bytes] {
    channel_.broadcast(id_, bytes, DsrPayload{rerr});
  });
}

// ------------------------------------------------------------------ data

void DsrAgent::send_data(NodeId dst, std::size_t payload_bytes) {
  ++metrics_.data_sent;
  DsrData data{.src = id_,
               .dst = dst,
               .seq = next_data_seq_++,
               .sent_at = sim_.now(),
               .payload_bytes = payload_bytes,
               .route = {},
               .hop_index = 0};
  if (const auto* route = cached_route(dst)) {
    data.route = *route;
    transmit_data(std::move(data));
    return;
  }
  auto& q = buffer_[dst];
  q.push_back(std::move(data));
  if (q.size() > cfg_.buffer_capacity) {
    q.pop_front();
    ++metrics_.buffer_drops;
  }
  originate_discovery(dst);
}

void DsrAgent::handle_data(DsrData data, NodeId from) {
  (void)from;
  if (data.dst != id_) {
    if (attack_ == AttackType::kBlackHole || attack_ == AttackType::kRushing ||
        attack_ == AttackType::kSybil || attack_ == AttackType::kReplayStorm) {
      ++metrics_.attacker_dropped;
      return;
    }
    if (attack_ == AttackType::kGrayHole && rng_.chance(aodv::kGrayHoleDropProbability)) {
      ++metrics_.attacker_dropped;
      return;
    }
  }
  if (data.dst == id_) {
    ++metrics_.data_delivered;
    metrics_.total_delay += sim_.now() - data.sent_at;
    ++metrics_.delay_samples;
    return;
  }
  // We must be the relay at hop_index; advance the source route.
  if (data.hop_index >= data.route.size() || data.route[data.hop_index] != id_) return;
  ++data.hop_index;
  ++metrics_.data_forwarded;
  transmit_data(std::move(data));
}

void DsrAgent::transmit_data(DsrData data) {
  const NodeId next =
      data.hop_index < data.route.size() ? data.route[data.hop_index] : data.dst;
  const std::size_t bytes = wire_size(data);
  channel_.unicast(id_, next, bytes, DsrPayload{std::move(data)},
                   [this, next](bool ok) {
                     if (!ok) {
                       ++metrics_.link_fail_drops;
                       report_broken_link(id_, next);
                     }
                   });
}

void DsrAgent::flush_buffer(NodeId dst) {
  const auto it = buffer_.find(dst);
  if (it == buffer_.end()) return;
  const auto* route = cached_route(dst);
  std::deque<DsrData> queued = std::move(it->second);
  buffer_.erase(it);
  for (auto& data : queued) {
    if (route == nullptr) {
      ++metrics_.buffer_drops;
      continue;
    }
    data.route = *route;
    data.hop_index = 0;
    transmit_data(std::move(data));
  }
}

void DsrAgent::abandon_discovery(NodeId dst) {
  pending_.erase(dst);
  const auto it = buffer_.find(dst);
  if (it == buffer_.end()) return;
  metrics_.buffer_drops += it->second.size();
  buffer_.erase(it);
}

// ------------------------------------------------------------- discovery

void DsrAgent::originate_discovery(NodeId dst) {
  if (pending_.contains(dst)) return;
  pending_[dst] = Discovery{};
  send_rreq(dst, 0);
}

void DsrAgent::send_rreq(NodeId dst, int attempt) {
  if (attempt == 0) {
    ++metrics_.rreq_initiated;
  } else {
    ++metrics_.rreq_retries;
  }
  DsrRreq rreq{.request_id = next_request_id_++,
               .origin = id_,
               .target = dst,
               .route = {},
               .ttl = cfg_.rreq_ttl,
               .issued_at = sim_.now()};
  request_seen(id_, rreq.request_id);  // suppress our own echoes

  double latency = 0;
  if (security_ != nullptr) {
    metrics_.sign_ops += 2;
    rreq.origin_auth = security_->sign(id_, signable_origin(rreq));
    rreq.hop_auth = security_->sign(id_, signable_hop(rreq));
    latency += sign_latency();
  }
  const std::size_t bytes =
      base_wire_size(rreq) + auth_overhead(rreq.origin_auth, rreq.hop_auth);
  sim_.schedule_in(latency, [this, rreq = std::move(rreq), bytes] {
    channel_.broadcast(id_, bytes, DsrPayload{rreq});
  });

  const double timeout = cfg_.net_traversal_time * static_cast<double>(1 << std::min(attempt, 8));
  auto& disc = pending_[dst];
  disc.attempt = attempt;
  disc.timeout = sim_.schedule_in(timeout, [this, dst, attempt] {
    const auto it = pending_.find(dst);
    if (it == pending_.end()) return;
    if (attempt < cfg_.rreq_retries) {
      send_rreq(dst, attempt + 1);
    } else {
      abandon_discovery(dst);
    }
  });
}

}  // namespace mccls::dsr
