// CBR traffic sources over DSR agents — the dsr counterpart of
// aodv/traffic.hpp, reusing aodv::CbrFlow so both protocols share one
// workload description.
#pragma once

#include <memory>
#include <vector>

#include "aodv/traffic.hpp"
#include "dsr/dsr_agent.hpp"

namespace mccls::dsr {

/// Installs `flow` as a self-rescheduling event chain: packet k fires at
/// start + k*interval computed from the integer tick index (no accumulated
/// floating-point drift, O(1) pending closures per flow). `agents` must
/// outlive the simulation.
void install_flow(sim::Simulator& simulator, std::vector<std::unique_ptr<DsrAgent>>& agents,
                  const aodv::CbrFlow& flow);

}  // namespace mccls::dsr
