// DSR counterpart of the AODV scenario runner: the same field, workload,
// security and attack matrix (aodv::ScenarioConfig) executed over DSR
// agents, enabling like-for-like protocol comparisons (bench_protocols).
#pragma once

#include "aodv/scenario.hpp"
#include "dsr/dsr_agent.hpp"

namespace mccls::dsr {

/// Runs the scenario with DSR agents. The AODV-specific knobs in
/// `config.aodv` are ignored; `dsr_config` supplies the protocol knobs.
aodv::ScenarioResult run_dsr_scenario(const aodv::ScenarioConfig& config,
                                      const DsrConfig& dsr_config = {});

/// Multi-replication accumulation (counterpart of run_scenario_averaged).
aodv::ScenarioResult run_dsr_scenario_averaged(aodv::ScenarioConfig config, unsigned seeds,
                                               const DsrConfig& dsr_config = {});

}  // namespace mccls::dsr
