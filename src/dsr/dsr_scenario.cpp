#include "dsr/dsr_scenario.hpp"

#include <stdexcept>

#include "cls/registry.hpp"
#include "dsr/dsr_traffic.hpp"
#include "net/mobility.hpp"

namespace mccls::dsr {

using aodv::AttackType;
using aodv::ScenarioConfig;
using aodv::ScenarioResult;
using aodv::SecurityMode;

ScenarioResult run_dsr_scenario(const ScenarioConfig& config, const DsrConfig& dsr_config) {
  if (config.num_nodes < 2) throw std::invalid_argument("run_dsr_scenario: need >= 2 nodes");
  if (config.num_attackers >= config.num_nodes - 1 && config.attack != AttackType::kNone) {
    throw std::invalid_argument("run_dsr_scenario: too many attackers");
  }

  sim::Simulator simulator;
  sim::Rng rng(config.seed);

  const net::RandomWaypointMobility::Config mob_cfg{
      .width = config.area_width,
      .height = config.area_height,
      .max_speed = config.max_speed,
      .min_speed = 0.1,
      .pause = config.pause,
      .connect_range = config.phy.range,
      .placement_attempts = config.placement_attempts,
  };
  sim::Rng mobility_rng = rng.fork(0x10B);
  net::RandomWaypointMobility base_mobility(config.num_nodes, mob_cfg, mobility_rng);

  const std::size_t first_attacker =
      config.attack == AttackType::kNone ? config.num_nodes
                                         : config.num_nodes - config.num_attackers;
  const bool pin = config.pin_attackers && config.attack != AttackType::kNone;
  net::PinnedTailMobility pinned_mobility(base_mobility, first_attacker, config.num_nodes,
                                          config.area_width, config.area_height);
  net::MobilityModel& mobility =
      pin ? static_cast<net::MobilityModel&>(pinned_mobility) : base_mobility;

  net::Channel channel(simulator, rng.fork(0xC4A), mobility, config.phy);

  std::unique_ptr<aodv::SecurityProvider> security;
  if (config.security == SecurityMode::kModeled) {
    const auto scheme = cls::make_scheme(config.scheme);
    if (scheme == nullptr) throw std::invalid_argument("run_dsr_scenario: unknown scheme");
    const std::size_t pk_bytes = 1 + scheme->costs().public_key_points * ec::G1::kEncodedSize;
    security = std::make_unique<aodv::ModeledClsSecurity>(config.seed ^ 0x5EC,
                                                          scheme->signature_size(), pk_bytes);
  } else if (config.security == SecurityMode::kReal) {
    security = std::make_unique<aodv::RealClsSecurity>(config.scheme, config.seed ^ 0x5EC);
  }
  if (security != nullptr) {
    security->set_costs(config.crypto_costs.sign_delay > 0 || config.crypto_costs.verify_delay > 0
                            ? config.crypto_costs
                            : aodv::derive_crypto_costs(config.scheme));
  }

  aodv::Metrics metrics;
  std::vector<std::unique_ptr<DsrAgent>> agents;
  agents.reserve(config.num_nodes);
  for (std::size_t i = 0; i < config.num_nodes; ++i) {
    const bool is_attacker = i >= first_attacker;
    const AttackType role = is_attacker ? config.attack : AttackType::kNone;
    if (security != nullptr && (!is_attacker || config.attack == AttackType::kGrayHole)) {
      security->enroll(static_cast<NodeId>(i));  // gray holes are insiders
    }
    agents.push_back(std::make_unique<DsrAgent>(simulator, channel,
                                                static_cast<NodeId>(i), dsr_config,
                                                rng.fork(0xA6E0 + i), metrics,
                                                security.get(), role));
  }

  sim::Rng traffic_rng = rng.fork(0x7F0);
  for (std::size_t f = 0; f < config.num_flows; ++f) {
    const NodeId src = static_cast<NodeId>(traffic_rng.uniform_int(first_attacker));
    NodeId dst = src;
    while (dst == src) dst = static_cast<NodeId>(traffic_rng.uniform_int(first_attacker));
    install_flow(simulator, agents,
                 aodv::CbrFlow{.src = src,
                               .dst = dst,
                               .start = traffic_rng.uniform(config.traffic_start_min,
                                                            config.traffic_start_max),
                               .stop = config.duration,
                               .interval = config.cbr_interval,
                               .payload_bytes = config.payload_bytes});
  }

  simulator.run_until(config.duration);
  return ScenarioResult{
      .metrics = metrics,
      .channel = channel.stats(),
      .disconnected_placements = base_mobility.placement_connected() ? 0u : 1u};
}

ScenarioResult run_dsr_scenario_averaged(ScenarioConfig config, unsigned seeds,
                                         const DsrConfig& dsr_config) {
  if (seeds == 0) throw std::invalid_argument("run_dsr_scenario_averaged: seeds > 0");
  ScenarioResult total{};
  for (unsigned i = 0; i < seeds; ++i) {
    if (i > 0) ++config.seed;
    const ScenarioResult one = run_dsr_scenario(config, dsr_config);
    total.metrics += one.metrics;
    total.channel += one.channel;
    total.disconnected_placements += one.disconnected_placements;
  }
  return total;
}

}  // namespace mccls::dsr
