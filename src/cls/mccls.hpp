// McCLS — the paper's scheme (§4), implemented exactly as published.
//
//   Sign(M):   r ← Zq*;  R = (r − x)·P;  h = H2(M, R, P_ID);  V = h·r;
//              S = x⁻¹·D_ID.   σ = (V, S, R)
//   Verify(σ): h = H2(M, R, P_ID); accept iff
//              ê(V·P − h·R, h⁻¹·S) == ê(Ppub, Q_ID)
//
// Correctness: V·P − h·R = h·x·P and ê(h·x·P, (h·x)⁻¹·D_ID) = ê(P, D_ID).
// Only one pairing is evaluated per verification; ê(Ppub, Q_ID) is constant
// per identity and served from a PairingCache when supplied.
//
// Fidelity note (see DESIGN.md §3): the verification equation binds P_ID only
// through the hash h, and S is signer-static — both weaknesses of the
// published scheme are reproduced deliberately and characterized in
// tests/test_adversary.cpp.
#pragma once

#include <optional>

#include "cls/scheme.hpp"

namespace mccls::cls {

/// Typed McCLS signature: σ = (V, S, R).
struct McclsSignature {
  math::Fq v;
  ec::G1 s;
  ec::G1 r;

  static constexpr std::size_t kSize = 32 + ec::G1::kEncodedSize * 2;
  [[nodiscard]] crypto::Bytes to_bytes() const;
  static std::optional<McclsSignature> from_bytes(std::span<const std::uint8_t> bytes);
};

class Mccls final : public Scheme {
 public:
  [[nodiscard]] std::string_view name() const override { return "McCLS"; }
  /// Table 1: Sign 2s, Verify 1p+1s, public key 1 point.
  [[nodiscard]] OpCounts costs() const override {
    return OpCounts{.sign_pairings = 0,
                    .sign_scalar_mults = 2,
                    .verify_pairings = 1,
                    .verify_scalar_mults = 1,
                    .verify_exponentiations = 0,
                    .public_key_points = 1};
  }

  /// P_ID = x·Ppub (one point).
  [[nodiscard]] PublicKey derive_public(const SystemParams& params,
                                        const math::Fq& secret) const override {
    return PublicKey{.points = {params.p_pub.mul(secret)}};
  }

  /// Typed API (public key is the single point P_ID).
  [[nodiscard]] static McclsSignature sign_typed(const SystemParams& params,
                                                 const UserKeys& signer,
                                                 std::span<const std::uint8_t> message,
                                                 crypto::HmacDrbg& rng);
  [[nodiscard]] static bool verify_typed(const SystemParams& params, std::string_view id,
                                         const ec::G1& public_key,
                                         std::span<const std::uint8_t> message,
                                         const McclsSignature& sig,
                                         GtCache* cache = nullptr);

  [[nodiscard]] crypto::Bytes sign(const SystemParams& params, const UserKeys& signer,
                                   std::span<const std::uint8_t> message,
                                   crypto::HmacDrbg& rng) const override;
  [[nodiscard]] bool verify(const SystemParams& params, std::string_view id,
                            const PublicKey& public_key,
                            std::span<const std::uint8_t> message,
                            std::span<const std::uint8_t> signature,
                            GtCache* cache = nullptr) const override;
  [[nodiscard]] std::size_t signature_size() const override { return McclsSignature::kSize; }
};

/// H2(M, R, P_ID) — exposed so batch verification and the adversary tests
/// compute the exact same challenge scalar as the scheme.
math::Fq mccls_challenge(std::span<const std::uint8_t> message, const ec::G1& r,
                         const ec::G1& public_key);

}  // namespace mccls::cls
