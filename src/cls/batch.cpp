#include "cls/batch.hpp"

#include "pairing/pairing.hpp"

namespace mccls::cls {

bool batch_verify(const SystemParams& params, std::string_view id, const ec::G1& public_key,
                  std::span<const BatchItem> items, crypto::HmacDrbg& rng,
                  PairingCache* cache) {
  if (items.empty()) return true;

  // All signatures must carry the signer-static S; otherwise fall back to
  // rejecting (callers group by S before batching).
  const ec::G1& s = items.front().signature.s;
  for (const auto& item : items) {
    if (!(item.signature.s == s)) return false;
  }
  if (s.is_infinity()) return false;

  ec::G1 combined = ec::G1::infinity();
  math::Fq delta_sum = math::Fq::zero();
  for (const auto& item : items) {
    const math::Fq h = mccls_challenge(item.message, item.signature.r, public_key);
    if (h.is_zero()) return false;
    // δ_i: random kDeltaBits-bit non-zero scalar.
    std::array<std::uint8_t, kDeltaBits / 8> raw;
    do {
      rng.generate(raw);
    } while (math::U256::from_be_bytes(raw).is_zero());
    const math::Fq delta = math::Fq::from_u256(math::U256::from_be_bytes(raw));

    // δ_i·h_i⁻¹·(V_i·P − h_i·R_i) = (δ_i·V_i/h_i)·P − δ_i·R_i
    const math::Fq coeff_p = delta * item.signature.v * h.inv();
    combined += params.p.mul(coeff_p) - item.signature.r.mul(delta);
    delta_sum += delta;
  }
  if (combined.is_infinity()) return false;

  const pairing::Gt lhs = pairing::pair(combined, s);
  const pairing::Gt base = cache != nullptr ? cache->get(params, id)
                                            : pairing::pair(params.p_pub, hash_id(id));
  return lhs == base.pow(delta_sum);
}

}  // namespace mccls::cls
